// Ablation: all four Boolean-division engines from identical starting
// points — the paper's Sec. I survey made quantitative:
//   espresso-dc  — two-level minimizer + don't cares (the "ad-hoc setup")
//   bdd          — Stanion–Sechen generalized-cofactor division [14]
//   ext          — this paper's RAR-based extended division
//   ext_gdc      — + global internal don't cares
// plus the algebraic `resub -d` floor.

#include <cstdio>
#include <cstdlib>
#include <functional>

#include "benchcir/suite.hpp"
#include "division/substitute.hpp"
#include "obs/obs.hpp"
#include "opt/scripts.hpp"
#include "resub/algebraic_resub.hpp"
#include "resub/boolean_baselines.hpp"
#include "verify/equivalence.hpp"

using namespace rarsub;

int main() {
  const bool small = std::getenv("RARSUB_SMALL") != nullptr;
  const auto suite = small ? benchmark_suite_small() : benchmark_suite();

  struct Engine {
    const char* name;
    std::function<void(Network&)> run;
  };
  const std::vector<Engine> engines{
      {"sis", [](Network& n) { algebraic_resub(n); }},
      {"esprdc",
       [](Network& n) {
         BaselineOptions o;
         o.kind = BooleanBaseline::EspressoDc;
         boolean_baseline_resub(n, o);
       }},
      {"bdd",
       [](Network& n) {
         BaselineOptions o;
         o.kind = BooleanBaseline::BddDivision;
         boolean_baseline_resub(n, o);
       }},
      {"ext",
       [](Network& n) {
         SubstituteOptions o;
         o.method = SubstMethod::Extended;
         substitute_network(n, o);
       }},
      {"ext_gdc",
       [](Network& n) {
         SubstituteOptions o;
         o.method = SubstMethod::ExtendedGdc;
         substitute_network(n, o);
       }},
  };

  std::printf("Ablation — Boolean division engines (Sec. I survey)\n%-10s %6s",
              "circuit", "init");
  for (const Engine& e : engines) std::printf(" | %7s %8s", e.name, "ms");
  std::printf("\n");

  long tot_init = 0;
  std::vector<long> tot(engines.size(), 0);
  int failures = 0;
  for (const BenchmarkEntry& b : suite) {
    Network prepared = b.build();
    script_a(prepared);
    tot_init += prepared.factored_literals();
    std::printf("%-10s %6d", b.name.c_str(), prepared.factored_literals());
    for (std::size_t i = 0; i < engines.size(); ++i) {
      Network net = prepared;
      const obs::Timer timer;
      engines[i].run(net);
      const double ms = timer.elapsed_ms();
      if (!check_equivalence(prepared, net).equivalent) ++failures;
      tot[i] += net.factored_literals();
      std::printf(" | %7d %8.1f", net.factored_literals(), ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("%-10s %6ld", "total", tot_init);
  for (long t : tot) std::printf(" | %7ld %8s", t, "");
  std::printf("\n");
  if (failures) std::printf("EQUIVALENCE FAILURES: %d\n", failures);
  return failures;
}
