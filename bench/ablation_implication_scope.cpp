// Ablation: the paper's implication-effort dial (Sec. III-B / Sec. V).
// Extended division is run with three implication configurations:
//   region          — implications confined to the division region
//   global          — whole-circuit implications (GDCs), no learning
//   global+learn1   — whole-circuit implications with depth-1 recursive
//                     learning (the ext+GDC experimental configuration)
// Quality (factored literals) should improve monotonically while CPU
// grows — the trade-off the paper calls out explicitly.

#include <cstdio>
#include <cstdlib>

#include "benchcir/suite.hpp"
#include "division/substitute.hpp"
#include "obs/obs.hpp"
#include "opt/scripts.hpp"
#include "verify/equivalence.hpp"

using namespace rarsub;

int main() {
  const bool small = std::getenv("RARSUB_SMALL") != nullptr;
  const auto suite = small ? benchmark_suite_small() : benchmark_suite();
  std::printf(
      "Ablation — implication scope for extended division\n"
      "%-10s %6s | %8s %8s | %8s %8s | %8s %8s\n",
      "circuit", "init", "region", "ms", "global", "ms", "glob+rl1", "ms");

  long tot[4] = {0, 0, 0, 0};
  double ms_tot[3] = {0, 0, 0};
  int failures = 0;
  for (const BenchmarkEntry& e : suite) {
    Network prepared = e.build();
    script_a(prepared);
    const int init = prepared.factored_literals();
    tot[0] += init;
    std::printf("%-10s %6d", e.name.c_str(), init);
    for (int cfg = 0; cfg < 3; ++cfg) {
      Network net = prepared;
      SubstituteOptions opts;
      opts.method = cfg == 0 ? SubstMethod::Extended : SubstMethod::ExtendedGdc;
      opts.gdc_learning_depth = cfg == 2 ? 1 : 0;
      const obs::Timer timer;
      substitute_network(net, opts);
      const double ms = timer.elapsed_ms();
      if (!check_equivalence(prepared, net).equivalent) ++failures;
      tot[cfg + 1] += net.factored_literals();
      ms_tot[cfg] += ms;
      std::printf(" | %8d %8.1f", net.factored_literals(), ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("%-10s %6ld | %8ld %8.1f | %8ld %8.1f | %8ld %8.1f\n", "total",
              tot[0], tot[1], ms_tot[0], tot[2], ms_tot[1], tot[3], ms_tot[2]);
  if (failures) std::printf("EQUIVALENCE FAILURES: %d\n", failures);
  return failures;
}
