// Ablation: product-of-sums substitution (paper Sec. I / III-A — "we can
// also perform substitution in the flavor of product-of-sum form").
// Extended division with and without the POS dual views.

#include <cstdio>
#include <cstdlib>

#include "benchcir/suite.hpp"
#include "division/substitute.hpp"
#include "obs/obs.hpp"
#include "opt/scripts.hpp"
#include "verify/equivalence.hpp"

using namespace rarsub;

int main() {
  const bool small = std::getenv("RARSUB_SMALL") != nullptr;
  const auto suite = small ? benchmark_suite_small() : benchmark_suite();
  std::printf(
      "Ablation — SOS-only vs SOS+POS substitution (extended division)\n"
      "%-10s %6s | %8s %8s | %8s %8s\n",
      "circuit", "init", "sos", "ms", "sos+pos", "ms");

  long tot[3] = {0, 0, 0};
  int failures = 0;
  for (const BenchmarkEntry& e : suite) {
    Network prepared = e.build();
    script_a(prepared);
    tot[0] += prepared.factored_literals();
    std::printf("%-10s %6d", e.name.c_str(), prepared.factored_literals());
    for (int cfg = 0; cfg < 2; ++cfg) {
      Network net = prepared;
      SubstituteOptions opts;
      opts.method = SubstMethod::Extended;
      opts.try_pos = (cfg == 1);
      const obs::Timer timer;
      substitute_network(net, opts);
      const double ms = timer.elapsed_ms();
      if (!check_equivalence(prepared, net).equivalent) ++failures;
      tot[cfg + 1] += net.factored_literals();
      std::printf(" | %8d %8.1f", net.factored_literals(), ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("%-10s %6ld | %8ld %8s | %8ld\n", "total", tot[0], tot[1], "",
              tot[2]);
  if (failures) std::printf("EQUIVALENCE FAILURES: %d\n", failures);
  return failures;
}
