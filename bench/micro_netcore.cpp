// micro_netcore: network-core micro-bench — simulation, ATPG implication,
// gate-net decomposition and topological ordering over a ~10k-node
// synthetic circuit. This is the measurement harness for the flat
// struct-of-arrays NodeTable refactor: every method exercises exactly the
// adjacency / function-walk machinery the layout change targets, none of
// them transforms the circuit, so literal counts are bit-stable across
// runs and layouts (the strict literal gate in tools/bench_compare.py
// doubles as a "the refactor changed nothing" check).
//
// With RARSUB_REPORT=<file> the bench writes the same JSON schema as the
// table benches (circuits / methods / literals / cpu_ms / obs), so
// tools/bench_compare.py and the bench-regression CI job consume it
// unchanged. Per-method checksums are printed so byte-identical behaviour
// across layouts is visible directly in the log.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "atpg/implication.hpp"
#include "benchcir/synth.hpp"
#include "gatenet/build.hpp"
#include "network/network.hpp"
#include "network/simulate.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace rarsub {
namespace {

// Iteration counts are fixed (not time-targeted) so cpu_ms is comparable
// between runs and across the legacy/flat layouts.
constexpr int kSimIters = 150;
constexpr int kImpIters = 800;
constexpr int kBuildIters = 15;
constexpr int kTopoIters = 800;
constexpr int kTopoMutateIters = 400;

Network make_circuit() {
  SynthSpec spec;
  spec.name = "syn10k";
  spec.seed = 424242;
  spec.num_pis = 64;
  spec.num_bases = 768;
  spec.num_mids = 24576;
  spec.num_outputs = 4096;
  spec.max_cubes = 4;
  // No pre-collapse: the bench wants raw traversal volume, not the
  // resubstitution opportunity structure.
  spec.collapse_fraction = 0.0;
  return make_synthetic(spec);
}

std::uint64_t run_simulate(const Network& net) {
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> pi_words(net.pis().size());
  std::uint64_t checksum = 0;
  for (int it = 0; it < kSimIters; ++it) {
    for (std::uint64_t& w : pi_words) w = rng();
    const std::vector<std::uint64_t> out = simulate64(net, pi_words);
    for (std::uint64_t w : out) checksum = checksum * 1099511628211ULL + w;
  }
  return checksum;
}

std::uint64_t run_implication(const GateNet& gn) {
  // Deterministic seed gates: every ~17th AND/OR gate.
  std::vector<int> seeds;
  for (int g = 0; g < gn.num_gates(); ++g) {
    const Gate& gd = gn.gate(g);
    if (gd.type != GateType::And && gd.type != GateType::Or) continue;
    if (static_cast<int>(seeds.size()) * 17 <= g) seeds.push_back(g);
  }
  ImplicationEngine engine(gn, /*learning_depth=*/0);
  std::uint64_t checksum = 0;
  for (int it = 0; it < kImpIters; ++it) {
    const int g = seeds[static_cast<std::size_t>(it) % seeds.size()];
    engine.reset();
    const bool ok = engine.assign(g, (it & 1) != 0);
    int assigned = 0;
    for (TV v : engine.values())
      if (v != TV::X) ++assigned;
    checksum = checksum * 31 + static_cast<std::uint64_t>(assigned) + (ok ? 1 : 0);
  }
  return checksum;
}

std::uint64_t run_gatenet_build(const Network& net) {
  std::uint64_t checksum = 0;
  for (int it = 0; it < kBuildIters; ++it) {
    GateNetMap map;
    const GateNet gn = build_gatenet(net, map);
    checksum = checksum * 31 + static_cast<std::uint64_t>(gn.num_gates());
  }
  return checksum;
}

std::uint64_t run_topo(const Network& net) {
  std::uint64_t checksum = 0;
  for (int it = 0; it < kTopoIters; ++it) {
    const std::vector<NodeId> order = net.topo_order();
    checksum = checksum * 31 + static_cast<std::uint64_t>(order.size()) +
               static_cast<std::uint64_t>(order.back());
  }
  return checksum;
}

std::uint64_t run_topo_mutate(Network& net) {
  // Reinstall an identical function each round: the journal moves (every
  // stamped cache must invalidate and rebuild) but the network function —
  // and thus the literal gate — is untouched.
  const NodeId victim = net.topo_order().front();
  std::uint64_t checksum = 0;
  for (int it = 0; it < kTopoMutateIters; ++it) {
    const auto nd = net.node(victim);
    std::vector<NodeId> fanins(nd.fanins.begin(), nd.fanins.end());
    Sop func = nd.func;
    net.set_function(victim, std::move(fanins), std::move(func));
    const std::vector<NodeId> order = net.topo_order();
    checksum = checksum * 31 + static_cast<std::uint64_t>(order.size());
  }
  return checksum;
}

struct MethodResult {
  std::string name;
  double cpu_ms = 0.0;
  std::uint64_t checksum = 0;
  int literals = 0;
  obs::Snapshot snap;
};

}  // namespace
}  // namespace rarsub

int main() {
  using namespace rarsub;

  Network net = make_circuit();
  int alive = 0;
  long adjacency = 0;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const auto nd = net.node(id);
    if (!nd.alive) continue;
    ++alive;
    adjacency += static_cast<long>(nd.fanins.size() + nd.fanouts.size());
  }
  const int init_lits = net.factored_literals();
  std::printf("micro_netcore: %s nodes=%d alive=%d adjacency=%ld pis=%zu pos=%zu lits=%d\n",
              net.name().c_str(), net.num_nodes(), alive, adjacency,
              net.pis().size(), net.pos().size(), init_lits);

  GateNetMap map;
  const GateNet gn = build_gatenet(net, map);

  std::vector<MethodResult> results;
  auto run = [&](const std::string& name, auto&& fn) {
    obs::reset();
    MethodResult r;
    r.name = name;
    obs::Timer timer;
    r.checksum = fn();
    r.cpu_ms = timer.elapsed_ms();
    r.literals = net.factored_literals();
    r.snap = obs::snapshot();
    std::printf("%-14s %9.1f ms  checksum=%016llx  lits=%d\n", name.c_str(),
                r.cpu_ms, static_cast<unsigned long long>(r.checksum),
                r.literals);
    std::fflush(stdout);
    results.push_back(std::move(r));
  };

  run("simulate", [&] { return run_simulate(net); });
  run("implication", [&] { return run_implication(gn); });
  run("gatenet_build", [&] { return run_gatenet_build(net); });
  run("topo", [&] { return run_topo(net); });
  run("topo_mutate", [&] { return run_topo_mutate(net); });

  const char* report_path = obs::env_path("RARSUB_REPORT");
  if (report_path != nullptr) {
    std::string report;
    obs::JsonWriter w(&report);
    w.begin_object();
    w.key("table");
    w.value("micro_netcore: network-core hot paths (10k-node synth)");
    w.key("suite");
    w.value("netcore");
    w.key("circuits");
    w.begin_array();
    w.begin_object();
    w.key("name");
    w.value(net.name());
    w.key("init_literals");
    w.value(init_lits);
    w.key("nodes");
    w.value(alive);
    w.key("methods");
    w.begin_array();
    for (const MethodResult& r : results) {
      w.begin_object();
      w.key("method");
      w.value(r.name);
      w.key("literals");
      w.value(r.literals);
      w.key("cpu_ms");
      w.value(r.cpu_ms);
      w.key("equivalent");
      w.value(true);
      w.key("checksum");
      w.value(std::to_string(r.checksum));
      w.key("obs");
      obs::snapshot_to_json(w, r.snap);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_array();
    w.key("total_init_literals");
    w.value(init_lits);
    w.key("equivalence_failures");
    w.value(0);
    w.end_object();
    report += '\n';
    std::ofstream out(report_path);
    if (out) {
      out << report;
      std::printf("report written to %s\n", report_path);
    } else {
      std::fprintf(stderr, "cannot write report to %s\n", report_path);
      return 1;
    }
  }
  return 0;
}
