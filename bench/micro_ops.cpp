// google-benchmark microbenches for the primitive operations every higher
// layer leans on: cube algebra, tautology/complement, algebraic division,
// kernels, factoring, implication closure, fault analysis, and the two
// Boolean division procedures.

#include <benchmark/benchmark.h>

#include <random>

#include "atpg/fault.hpp"
#include "bdd/bdd.hpp"
#include "benchcir/suite.hpp"
#include "division/candidates.hpp"
#include "division/division.hpp"
#include "division/substitute.hpp"
#include "gatenet/build.hpp"
#include "gatenet/incremental.hpp"
#include "network/complement_cache.hpp"
#include "opt/scripts.hpp"
#include "sop/algdiv.hpp"
#include "sop/espresso.hpp"
#include "sop/factor.hpp"
#include "sop/kernel.hpp"

namespace rarsub {
namespace {

Sop random_sop(std::mt19937& rng, int num_vars, int num_cubes, double density) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Sop f(num_vars);
  for (int i = 0; i < num_cubes; ++i) {
    Cube c(num_vars);
    for (int v = 0; v < num_vars; ++v) {
      const double r = coin(rng);
      if (r < density / 2) c.set_lit(v, Lit::Pos);
      else if (r < density) c.set_lit(v, Lit::Neg);
    }
    f.add_cube(c);
  }
  return f;
}

void BM_CubeContainment(benchmark::State& state) {
  std::mt19937 rng(1);
  const Sop f = random_sop(rng, 32, 64, 0.3);
  const Sop d = random_sop(rng, 32, 16, 0.2);
  for (auto _ : state) {
    int n = 0;
    for (const Cube& c : f.cubes()) n += d.scc_contains(c);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_CubeContainment);

void BM_CubeIntersect(benchmark::State& state) {
  std::mt19937 rng(2);
  const Sop f = random_sop(rng, 64, 64, 0.3);
  for (auto _ : state) {
    Cube acc(64);
    for (const Cube& c : f.cubes()) acc = acc.intersect(c);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CubeIntersect);

void BM_Tautology(benchmark::State& state) {
  std::mt19937 rng(3);
  const Sop f = random_sop(rng, static_cast<int>(state.range(0)), 24, 0.35);
  for (auto _ : state) benchmark::DoNotOptimize(f.is_tautology());
}
BENCHMARK(BM_Tautology)->Arg(8)->Arg(12)->Arg(16);

void BM_Complement(benchmark::State& state) {
  std::mt19937 rng(4);
  const Sop f = random_sop(rng, static_cast<int>(state.range(0)), 12, 0.4);
  for (auto _ : state) benchmark::DoNotOptimize(f.complement());
}
BENCHMARK(BM_Complement)->Arg(8)->Arg(12);

void BM_EspressoLite(benchmark::State& state) {
  std::mt19937 rng(5);
  const Sop f = random_sop(rng, 10, 16, 0.4);
  for (auto _ : state) benchmark::DoNotOptimize(simplify_cover(f));
}
BENCHMARK(BM_EspressoLite);

void BM_WeakDivide(benchmark::State& state) {
  std::mt19937 rng(6);
  const Sop f = random_sop(rng, 16, 32, 0.3);
  const Sop d = random_sop(rng, 16, 4, 0.2);
  for (auto _ : state) benchmark::DoNotOptimize(weak_divide(f, d));
}
BENCHMARK(BM_WeakDivide);

void BM_Kernels(benchmark::State& state) {
  std::mt19937 rng(7);
  const Sop f = random_sop(rng, 12, 20, 0.35);
  for (auto _ : state) benchmark::DoNotOptimize(find_kernels(f));
}
BENCHMARK(BM_Kernels);

void BM_FactoredCount(benchmark::State& state) {
  std::mt19937 rng(8);
  const Sop f = random_sop(rng, 12, 20, 0.35);
  for (auto _ : state) benchmark::DoNotOptimize(factored_literal_count(f));
}
BENCHMARK(BM_FactoredCount);

GateNet make_chain_net(int stages) {
  GateNet gn;
  std::vector<Signal> prev;
  for (int i = 0; i < 8; ++i) prev.push_back({gn.add_pi(), false});
  std::mt19937 rng(9);
  for (int s = 0; s < stages; ++s) {
    std::vector<Signal> next;
    for (int i = 0; i < 8; ++i) {
      const Signal a = prev[rng() % prev.size()];
      const Signal b = prev[rng() % prev.size()];
      const int g = gn.add_gate((s + i) % 2 ? GateType::And : GateType::Or,
                                {a, {b.gate, !b.neg}});
      next.push_back({g, false});
    }
    prev = next;
  }
  gn.add_output(prev[0].gate);
  gn.add_output(prev[1].gate);
  return gn;
}

void BM_ImplicationClosure(benchmark::State& state) {
  GateNet gn = make_chain_net(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ImplicationEngine eng(gn);
    eng.assign(gn.outputs()[0], true);
    benchmark::DoNotOptimize(eng.in_conflict());
  }
}
BENCHMARK(BM_ImplicationClosure)->Arg(4)->Arg(16)->Arg(64);

void BM_FaultAnalysis(benchmark::State& state) {
  GateNet gn = make_chain_net(16);
  // First AND/OR gate with fanins.
  WireRef w{-1, 0};
  for (int g = 0; g < gn.num_gates() && w.gate < 0; ++g)
    if (!gn.gate(g).fanins.empty()) w.gate = g;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        analyze_fault(gn, w, removal_stuck_value(gn.gate(w.gate).type)));
}
BENCHMARK(BM_FaultAnalysis);

void BM_BasicBooleanDivide(benchmark::State& state) {
  std::mt19937 rng(10);
  const Sop f = random_sop(rng, 10, 12, 0.4);
  const Sop d = random_sop(rng, 10, 4, 0.25);
  for (auto _ : state) benchmark::DoNotOptimize(basic_boolean_divide(f, d));
}
BENCHMARK(BM_BasicBooleanDivide);

void BM_ExtendedBooleanDivide(benchmark::State& state) {
  std::mt19937 rng(11);
  const Sop f = random_sop(rng, 10, 12, 0.4);
  const Sop d = random_sop(rng, 10, 4, 0.25);
  for (auto _ : state) benchmark::DoNotOptimize(extended_boolean_divide(f, d));
}
BENCHMARK(BM_ExtendedBooleanDivide);

// The substitution candidate filter (division/candidates.hpp): cost of
// refreshing one node's signature/support view after its function changed,
// and steady-state pair-classification throughput over a real circuit.

void BM_FilterSignatureUpdate(benchmark::State& state) {
  Network net = build_benchmark("syn_c432");
  script_a(net);
  const std::vector<NodeId> order = net.topo_order();
  const NodeId f = order[order.size() / 2];
  const NodeId d = order[order.size() / 2 + 1];
  const Sop f0 = net.node(f).func;
  Sop f1 = f0;
  f1.add_cube(Cube(f0.num_vars()));  // tautology cube: cheap, version-bumping
  const std::vector<NodeId> fi(net.fanins(f).begin(), net.fanins(f).end());

  SubstituteOptions opts;
  ComplementCache comps;
  CandidateFilter filter(net, opts, &comps);
  filter.begin_target(f);
  bool flip = false;
  for (auto _ : state) {
    net.set_function(f, fi, flip ? f1 : f0);  // invalidates f's cached view
    flip = !flip;
    benchmark::DoNotOptimize(filter.check(f, d));
  }
}
BENCHMARK(BM_FilterSignatureUpdate);

void BM_PairFilterThroughput(benchmark::State& state) {
  Network net = build_benchmark("syn_c432");
  script_a(net);
  const std::vector<NodeId> order = net.topo_order();

  SubstituteOptions opts;
  ComplementCache comps;
  CandidateFilter filter(net, opts, &comps);
  std::int64_t pairs = 0;
  for (auto _ : state) {
    for (const NodeId f : order) {
      filter.begin_target(f);
      for (const NodeId d : order) {
        if (d == f) continue;
        benchmark::DoNotOptimize(filter.check(f, d));
        ++pairs;
      }
    }
  }
  state.SetItemsProcessed(pairs);
}
BENCHMARK(BM_PairFilterThroughput);

// The incremental gate view (gatenet/incremental.hpp): cost of tracking
// one function change by patching the view vs. rebuilding the whole
// two-level decomposition from scratch — the delta the GDC substitution
// base pays per network state.

void BM_GateViewScratchRebuild(benchmark::State& state) {
  Network net = build_benchmark("syn_c432");
  script_a(net);
  const std::vector<NodeId> order = net.topo_order();
  const NodeId f = order[order.size() / 2];
  const std::vector<NodeId> fi(net.fanins(f).begin(), net.fanins(f).end());
  const Sop f0 = net.node(f).func;
  for (auto _ : state) {
    net.set_function(f, fi, f0);  // same cover, new network state
    GateNetMap map;
    benchmark::DoNotOptimize(build_gatenet(net, map));
  }
}
BENCHMARK(BM_GateViewScratchRebuild);

void BM_GateViewIncrementalPatch(benchmark::State& state) {
  Network net = build_benchmark("syn_c432");
  script_a(net);
  const std::vector<NodeId> order = net.topo_order();
  const NodeId f = order[order.size() / 2];
  const std::vector<NodeId> fi(net.fanins(f).begin(), net.fanins(f).end());
  const Sop f0 = net.node(f).func;
  IncrementalGateView view(net);
  for (auto _ : state) {
    net.set_function(f, fi, f0);
    benchmark::DoNotOptimize(view.refresh());
  }
}
BENCHMARK(BM_GateViewIncrementalPatch);

void BM_BddFromSop(benchmark::State& state) {
  std::mt19937 rng(12);
  const Sop f = random_sop(rng, 16, 24, 0.3);
  for (auto _ : state) {
    BddManager mgr(16);
    benchmark::DoNotOptimize(mgr.from_sop(f));
  }
}
BENCHMARK(BM_BddFromSop);

}  // namespace
}  // namespace rarsub

BENCHMARK_MAIN();
