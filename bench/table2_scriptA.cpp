// Regenerates paper Table II: initial circuits prepared with
//   Script A: eliminate 0; simplify
// then each resubstitution method applied once — SIS `resub -d` baseline
// vs basic division vs extended division vs extended+GDC. Reported:
// factored literals and CPU per method, totals and % improvement.

#include "table_common.hpp"

int main() {
  rarsub::benchtool::TableConfig config;
  config.title = "Table II — Script A (eliminate 0; simplify)";
  config.prepare = [](rarsub::Network& net) { rarsub::script_a(net); };
  const rarsub::ResubTuning tuning = rarsub::benchtool::tuning_from_env();
  config.apply = [tuning](rarsub::Network& net, rarsub::ResubMethod m) {
    rarsub::run_resub(net, m, tuning);
  };
  return rarsub::benchtool::run_table(config);
}
