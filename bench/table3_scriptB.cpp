// Regenerates paper Table III: Script B (eliminate 0; simplify; gcx) as
// the starting point, then the four resubstitution methods.

#include "table_common.hpp"

int main() {
  rarsub::benchtool::TableConfig config;
  config.title = "Table III — Script B (eliminate 0; simplify; gcx)";
  config.prepare = [](rarsub::Network& net) { rarsub::script_b(net); };
  const rarsub::ResubTuning tuning = rarsub::benchtool::tuning_from_env();
  config.apply = [tuning](rarsub::Network& net, rarsub::ResubMethod m) {
    rarsub::run_resub(net, m, tuning);
  };
  return rarsub::benchtool::run_table(config);
}
