// Regenerates paper Table III: Script B (eliminate 0; simplify; gcx) as
// the starting point, then the four resubstitution methods.

#include "table_common.hpp"

int main() {
  rarsub::benchtool::TableConfig config;
  config.title = "Table III — Script B (eliminate 0; simplify; gcx)";
  config.prepare = [](rarsub::Network& net) { rarsub::script_b(net); };
  config.apply = [](rarsub::Network& net, rarsub::ResubMethod m) {
    rarsub::run_resub(net, m);
  };
  return rarsub::benchtool::run_table(config);
}
