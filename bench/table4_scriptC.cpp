// Regenerates paper Table IV: Script C (eliminate 0; simplify; gkx) as
// the starting point, then the four resubstitution methods.

#include "table_common.hpp"

int main() {
  rarsub::benchtool::TableConfig config;
  config.title = "Table IV — Script C (eliminate 0; simplify; gkx)";
  config.prepare = [](rarsub::Network& net) { rarsub::script_c(net); };
  const rarsub::ResubTuning tuning = rarsub::benchtool::tuning_from_env();
  config.apply = [tuning](rarsub::Network& net, rarsub::ResubMethod m) {
    rarsub::run_resub(net, m, tuning);
  };
  return rarsub::benchtool::run_table(config);
}
