// Regenerates paper Table V: the full script.algebraic flow with every
// `resub` occurrence replaced by the method under test. The paper notes an
// anomaly in this table — ext+GDC can on average underperform ext because
// of the locally greedy first-positive-gain strategy.

#include "table_common.hpp"

int main() {
  rarsub::benchtool::TableConfig config;
  config.title =
      "Table V — script.algebraic with resub replaced by each method";
  config.prepare = [](rarsub::Network& net) { net.sweep(); };
  const rarsub::ResubTuning tuning = rarsub::benchtool::tuning_from_env();
  config.apply = [tuning](rarsub::Network& net, rarsub::ResubMethod m) {
    rarsub::script_algebraic(net, m, tuning);
  };
  return rarsub::benchtool::run_table(config);
}
