#include "table_common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "benchcir/suite.hpp"
#include "verify/equivalence.hpp"

namespace rarsub::benchtool {

int run_table(const TableConfig& config) {
  const bool small =
      config.small_suite || std::getenv("RARSUB_SMALL") != nullptr;
  const auto suite = small ? benchmark_suite_small() : benchmark_suite();

  std::printf("%s\n", config.title.c_str());
  std::printf("%-10s %6s", "circuit", "init");
  for (ResubMethod m : config.methods)
    std::printf(" | %8s %8s", method_name(m).c_str(), "cpu_ms");
  std::printf("\n");

  int failures = 0;
  long total_init = 0;
  std::vector<long> total_lits(config.methods.size(), 0);
  std::vector<double> total_ms(config.methods.size(), 0.0);

  for (const BenchmarkEntry& e : suite) {
    Network prepared = e.build();
    config.prepare(prepared);
    const int init = prepared.factored_literals();
    total_init += init;
    std::printf("%-10s %6d", e.name.c_str(), init);

    for (std::size_t i = 0; i < config.methods.size(); ++i) {
      Network net = prepared;
      const auto t0 = std::chrono::steady_clock::now();
      config.apply(net, config.methods[i]);
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      const int lits = net.factored_literals();
      total_lits[i] += lits;
      total_ms[i] += ms;
      bool ok = true;
      if (config.verify) {
        const EquivalenceResult eq = check_equivalence(prepared, net);
        ok = eq.equivalent;
        if (!ok) ++failures;
      }
      std::printf(" | %7d%c %8.1f", lits, ok ? ' ' : '!', ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("%-10s %6ld", "total", total_init);
  for (std::size_t i = 0; i < config.methods.size(); ++i)
    std::printf(" | %8ld %8.1f", total_lits[i], total_ms[i]);
  std::printf("\n%-10s %6s", "improve", "");
  for (std::size_t i = 0; i < config.methods.size(); ++i) {
    const double pct =
        100.0 * static_cast<double>(total_init - total_lits[i]) /
        static_cast<double>(total_init);
    std::printf(" | %7.2f%% %8s", pct, "");
  }
  std::printf("\n");
  if (failures > 0)
    std::printf("EQUIVALENCE FAILURES: %d\n", failures);
  return failures;
}

}  // namespace rarsub::benchtool
