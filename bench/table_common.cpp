#include "table_common.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "benchcir/suite.hpp"
#include "mem/arena.hpp"
#include "obs/hwc.hpp"
#include "obs/json.hpp"
#include "obs/memstat.hpp"
#include "obs/obs.hpp"
#include "obs/prof.hpp"
#include "verify/equivalence.hpp"

namespace rarsub::benchtool {

ResubTuning tuning_from_env() {
  ResubTuning tuning;
  tuning.prune = !obs::env_flag("RARSUB_NO_PRUNE");
  tuning.incremental = !obs::env_flag("RARSUB_NO_INCREMENTAL");
  return tuning;
}

int run_table(const TableConfig& config) {
  const bool small = config.small_suite || obs::env_flag("RARSUB_SMALL");
  SuiteTableConfig sc;
  sc.title = config.title;
  sc.suite_label = small ? "small" : "full";
  sc.circuits = small ? benchmark_suite_small() : benchmark_suite();
  sc.prepare = config.prepare;
  for (ResubMethod m : config.methods) {
    const auto apply = config.apply;
    sc.methods.push_back(
        MethodSpec{method_name(m), [apply, m](Network& n) { apply(n, m); }});
  }
  sc.verify = config.verify;
  sc.report_path = config.report_path;
  return run_suite_table(sc);
}

int run_suite_table(const SuiteTableConfig& config) {
  const char* report_env = obs::env_path("RARSUB_REPORT");
  const std::string report_path =
      report_env != nullptr ? report_env : config.report_path;
  const bool reporting = !report_path.empty();
  std::string report;
  obs::JsonWriter w(&report);
  if (reporting) {
    w.begin_object();
    w.key("table");
    w.value(config.title);
    w.key("suite");
    w.value(config.suite_label);
    w.key("circuits");
    w.begin_array();
  }

  std::printf("%s\n", config.title.c_str());
  std::printf("%-10s %6s", "circuit", "init");
  for (const MethodSpec& m : config.methods)
    std::printf(" | %8s %8s", m.name.c_str(), "cpu_ms");
  std::printf("\n");

  int failures = 0;
  long total_init = 0;
  std::vector<long> total_lits(config.methods.size(), 0);
  std::vector<double> total_ms(config.methods.size(), 0.0);

  for (const BenchmarkEntry& e : config.circuits) {
    Network prepared = e.build();
    if (config.prepare) config.prepare(prepared);
    const int init = prepared.factored_literals();
    total_init += init;
    std::printf("%-10s %6d", e.name.c_str(), init);
    if (reporting) {
      w.begin_object();
      w.key("name");
      w.value(e.name);
      w.key("init_literals");
      w.value(init);
      w.key("methods");
      w.begin_array();
    }

    for (std::size_t i = 0; i < config.methods.size(); ++i) {
      Network net = prepared;
      // Per-method observability window: everything the method touches
      // (division regions, implications, espresso calls, …) lands in this
      // snapshot and nothing from the previous method leaks in. The
      // memory window resets with it (obs::reset -> memstat_reset);
      // kernel peak-RSS is re-armed where /proc/self/clear_refs allows,
      // otherwise VmHWM stays process-monotonic — still gateable as a
      // per-method max.
      obs::reset();  // also re-arms the windowed mem.arena.* gauges
      obs::try_reset_peak_rss();
      obs::HwcGroup hwc;
      obs::Timer timer;
      hwc.start();
      config.methods[i].run(net);
      hwc.stop();
      const mem::ArenaStats arena = mem::arena_stats();
      const double ms = timer.elapsed_ms();
      const obs::HwcReading hw = hwc.read();
      const obs::MemSnapshot mem = obs::memstat_snapshot();
      // Window prof snapshot before obs::snapshot() so the prof.* gauges
      // in the obs block describe the same sample set as prof_phases.
      const obs::ProfSnapshot prof = obs::prof_snapshot();
      const obs::Snapshot snap = obs::snapshot();
      const int lits = net.factored_literals();
      total_lits[i] += lits;
      total_ms[i] += ms;
      bool ok = true;
      if (config.verify) {
        const EquivalenceResult eq = check_equivalence(prepared, net);
        ok = eq.equivalent;
        if (!ok) ++failures;
      }
      std::printf(" | %7d%c %8.1f", lits, ok ? ' ' : '!', ms);
      std::fflush(stdout);
      if (reporting) {
        w.begin_object();
        w.key("method");
        w.value(config.methods[i].name);
        w.key("literals");
        w.value(lits);
        w.key("cpu_ms");
        w.value(ms);
        // The method's committed wall-clock budget; bench_compare.py
        // gates cpu_ms against the baseline's copy of this field.
        if (config.methods[i].time_budget_s > 0) {
          w.key("time_budget_s");
          w.value(config.methods[i].time_budget_s);
        }
        w.key("equivalent");
        w.value(ok);
        // Memory telemetry: RSS always (from /proc); allocation fields
        // only when the tracker recorded this window (RARSUB_MEMSTAT=1),
        // so a memstat-off report stays comparable to old baselines and
        // bench_compare can tell "no data" from "zero allocations".
        if (mem.peak_rss_kb >= 0) {
          w.key("peak_rss_kb");
          w.value(mem.peak_rss_kb);
        }
        if (mem.enabled) {
          w.key("allocs");
          w.value(mem.allocs);
          w.key("alloc_bytes");
          w.value(mem.alloc_bytes);
          w.key("peak_live_bytes");
          w.value(mem.peak_live_bytes);
          w.key("mem_phases");
          w.begin_object();
          int shown = 0;
          for (const obs::MemPhaseSnap& p : mem.phases) {
            if (p.alloc_bytes <= 0) continue;
            w.key(p.phase);
            w.begin_object();
            w.key("allocs");
            w.value(p.allocs);
            w.key("alloc_bytes");
            w.value(p.alloc_bytes);
            w.end_object();
            if (++shown == 8) break;
          }
          w.end_object();
        }
        // Scratch-arena telemetry: capacity plus the window's high-water
        // and frame count. Absent when the arena is latched off
        // (RARSUB_ARENA=0 / --no-arena), so arena-off reports stay
        // comparable to pre-arena baselines.
        if (mem::arena_enabled()) {
          w.key("arena");
          w.begin_object();
          w.key("chunks");
          w.value(static_cast<std::int64_t>(arena.chunks));
          w.key("bytes_reserved");
          w.value(static_cast<std::int64_t>(arena.bytes_reserved));
          w.key("high_water");
          w.value(static_cast<std::int64_t>(arena.high_water));
          w.key("resets");
          w.value(static_cast<std::int64_t>(arena.resets));
          w.end_object();
        }
        // CPU self-time profile: only when the sampler ran this window
        // (RARSUB_PROF), mirroring the mem_phases "no data vs zero"
        // distinction. Top-8 phases by samples; est self-CPU from the
        // sampling period.
        if (prof.enabled || prof.samples > 0) {
          w.key("prof_status");
          w.value(obs::prof_status());
          w.key("prof_samples");
          w.value(prof.samples);
          w.key("prof_phases");
          w.begin_object();
          int pshown = 0;
          for (const obs::ProfPhaseSelf& p : obs::prof_self_phases(prof)) {
            w.key(p.phase);
            w.begin_object();
            w.key("samples");
            w.value(p.samples);
            w.key("self_ms");
            w.value(p.est_ms);
            w.end_object();
            if (++pshown == 8) break;
          }
          w.end_object();
        }
        w.key("hwc_status");
        w.value(obs::hwc_status());
        if (hw.valid) {
          w.key("hwc");
          w.begin_object();
          w.key("cycles");
          w.value(hw.cycles);
          w.key("instructions");
          w.value(hw.instructions);
          if (hw.cache_misses >= 0) {
            w.key("cache_misses");
            w.value(hw.cache_misses);
          }
          if (hw.branch_misses >= 0) {
            w.key("branch_misses");
            w.value(hw.branch_misses);
          }
          w.end_object();
        }
        w.key("obs");
        obs::snapshot_to_json(w, snap);
        w.end_object();
      }
    }
    std::printf("\n");
    if (reporting) {
      w.end_array();
      w.end_object();
    }
  }

  std::printf("%-10s %6ld", "total", total_init);
  for (std::size_t i = 0; i < config.methods.size(); ++i)
    std::printf(" | %8ld %8.1f", total_lits[i], total_ms[i]);
  std::printf("\n%-10s %6s", "improve", "");
  for (std::size_t i = 0; i < config.methods.size(); ++i) {
    const double pct =
        100.0 * static_cast<double>(total_init - total_lits[i]) /
        static_cast<double>(total_init);
    std::printf(" | %7.2f%% %8s", pct, "");
  }
  std::printf("\n");
  if (failures > 0)
    std::printf("EQUIVALENCE FAILURES: %d\n", failures);

  if (reporting) {
    w.end_array();
    w.key("total_init_literals");
    w.value(static_cast<std::int64_t>(total_init));
    w.key("equivalence_failures");
    w.value(failures);
    w.end_object();
    report += '\n';
    std::ofstream out(report_path);
    if (out) {
      out << report;
      std::printf("report written to %s\n", report_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write report to %s\n", report_path.c_str());
    }
  }
  return failures;
}

}  // namespace rarsub::benchtool
