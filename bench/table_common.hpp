#pragma once
// Shared harness for the table-regeneration benches (paper Tables II-V):
// runs every benchmark circuit through a preparation script, applies each
// resubstitution method to a fresh copy, and prints the paper's row format
// (per-circuit factored literals + CPU, a totals row, and the percentage
// improvement over the initial literal count).
//
// With RARSUB_REPORT=<file> (or TableConfig::report_path) the harness also
// writes a machine-readable JSON report: per circuit and per method the
// literal counts, wall time, equivalence verdict, and the full
// observability snapshot (counters / distributions / phase timers) of that
// method's run. See docs/OBSERVABILITY.md for the schema.

#include <functional>
#include <string>
#include <vector>

#include "benchcir/suite.hpp"
#include "network/network.hpp"
#include "opt/scripts.hpp"

namespace rarsub::benchtool {

struct TableConfig {
  std::string title;
  /// Preparation applied once per circuit (Scripts A/B/C); identity for
  /// Table V where the method runs inside the full flow.
  std::function<void(Network&)> prepare;
  /// Per-method transformation from the prepared (Table II-IV) or raw
  /// (Table V) circuit.
  std::function<void(Network&, ResubMethod)> apply;
  std::vector<ResubMethod> methods{ResubMethod::SisAlgebraic, ResubMethod::Basic,
                                   ResubMethod::Extended,
                                   ResubMethod::ExtendedGdc};
  /// Check PO equivalence of every transformed circuit against the
  /// prepared one (on by default: the tables double as a soundness run).
  bool verify = true;
  /// Use the reduced suite (also triggered by env RARSUB_SMALL=1).
  bool small_suite = false;
  /// Write the JSON report here; env RARSUB_REPORT=<file> overrides.
  std::string report_path;
};

/// Run and print the table; returns the number of equivalence failures
/// (0 expected).
int run_table(const TableConfig& config);

/// A named method column of the generalized harness. `time_budget_s` > 0
/// is written into the report row; bench_compare.py turns it into a hard
/// per-method wall-clock gate once the row is blessed into a baseline.
struct MethodSpec {
  std::string name;
  std::function<void(Network&)> run;
  double time_budget_s = 0.0;
};

/// Generalized table config: an explicit circuit list and named method
/// columns instead of the ResubMethod enum. run_table() is an adapter
/// over this; bench/table_large.cpp drives it directly with script+RR
/// pipelines and per-method budgets.
struct SuiteTableConfig {
  std::string title;
  std::string suite_label;  ///< "small" / "full" / "large" in the report
  std::vector<BenchmarkEntry> circuits;
  std::function<void(Network&)> prepare;  ///< optional; identity if empty
  std::vector<MethodSpec> methods;
  /// PO equivalence of every transformed circuit against the prepared
  /// one. The large tier turns this off: exact checking at 10^5+ nodes
  /// would dwarf the methods; soundness is covered by the small tiers
  /// and the fuzzer.
  bool verify = true;
  std::string report_path;  ///< env RARSUB_REPORT=<file> overrides
};

/// Run and print the generalized table; returns equivalence failures.
int run_suite_table(const SuiteTableConfig& config);

/// Resubstitution tuning from the environment, so A/B reports for
/// tools/bench_compare.py can toggle sound-to-disable machinery without
/// rebuilding: RARSUB_NO_PRUNE=1 disables the candidate filter,
/// RARSUB_NO_INCREMENTAL=1 rebuilds the GDC gate view per network state
/// (both documented in docs/PERFORMANCE.md; results are identical either
/// way, only CPU moves).
ResubTuning tuning_from_env();

}  // namespace rarsub::benchtool
