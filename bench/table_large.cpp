// The large workload tier (ROADMAP item 3): ISCAS'89-scale stand-ins and
// synthetic 10^5–10^6-node circuits from benchmark_suite_large(), plus any
// external BLIF suite dropped into a directory. Each method column is a
// full pipeline — Script A/B/C preparation followed by one-pass redundancy
// removal, and a bare RR column isolating the kernel — with a committed
// wall-clock budget per method that bench_compare.py enforces against
// bench/baseline_large.json.
//
// Knobs (all environment, so the CI job and the nightly share one binary):
//   RARSUB_LARGE_MAX_NODES  keep only circuits up to ~N nodes (the CI job
//                           runs 100000; unset/0 = the full tier)
//   RARSUB_LARGE_BLIF_DIR   import every *.blif in the directory as an
//                           extra circuit (external suites via
//                           src/network/blif.hpp)
//   RARSUB_LARGE_IMPL_BUDGET  implication visits per closure drain for the
//                           RR kernel (default 0 = exact/unlimited)
//   RARSUB_REPORT           write the standard report schema here
//
// Equivalence verification is off: exact PO checking at 10^5+ nodes would
// dwarf the methods under test. Soundness is covered by the small-tier
// tables (verify on), the one-pass byte-equality tests and the fuzzer.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "network/blif.hpp"
#include "opt/scripts.hpp"
#include "rar/network_rr.hpp"
#include "table_common.hpp"

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

}  // namespace

int main() {
  using rarsub::benchtool::MethodSpec;
  using rarsub::benchtool::SuiteTableConfig;

  const int max_nodes = env_int("RARSUB_LARGE_MAX_NODES", 0);

  SuiteTableConfig config;
  config.title = "Table L — large tier (Scripts A/B/C + one-pass RR)";
  config.suite_label = "large";
  config.verify = false;
  config.report_path = "";
  config.circuits = rarsub::benchmark_suite_large(max_nodes);

  // External suites: every *.blif in the directory becomes a circuit.
  if (const char* dir = std::getenv("RARSUB_LARGE_BLIF_DIR");
      dir != nullptr && *dir != '\0') {
    std::vector<std::string> paths;
    for (const auto& entry : std::filesystem::directory_iterator(dir))
      if (entry.path().extension() == ".blif")
        paths.push_back(entry.path().string());
    std::sort(paths.begin(), paths.end());
    for (const std::string& p : paths)
      config.circuits.push_back(
          {std::filesystem::path(p).stem().string(),
           [p] { return rarsub::read_blif_file(p); }});
  }

  // Per-method wall-clock budgets, sized for the largest circuit of the
  // selected cut (smaller circuits pass trivially; their regressions are
  // caught by the cpu-threshold gate instead). The committed
  // baseline_large.json is blessed at the CI cut (100k), so those are the
  // budget values the gate enforces; rates are measured numbers from
  // docs/PERFORMANCE.md with ~4x headroom for slower CI runners, on top
  // of bench_compare's --budget-scale.
  int largest = 1;
  for (const auto& e : config.circuits) largest = std::max(largest, e.approx_nodes);
  const double scale = static_cast<double>(largest) / 100000.0;
  const auto budget = [scale](double base_s, double per_100k_s) {
    return base_s + per_100k_s * scale;
  };

  // Measured at the 100k cut (single core, Release, idle machine):
  // rr 123.0 s, scriptA 129.6 s, scriptB 127.4 s, scriptC 129.5 s — and
  // 20k -> 100k scales linearly (24.1 s -> 123.0 s bare rr), so the
  // per-100k linear budget model holds across the tier.
  rarsub::NetworkRrOptions rr_opts;  // one-pass, both polarities
  // Escape hatch for pathological imports: cap closure drains (sound —
  // missed conflicts only keep removable wires). Exact by default; the
  // tier's own circuits have bounded cones, so exact sweeps stay linear.
  rr_opts.implication_budget = env_int("RARSUB_LARGE_IMPL_BUDGET", 0);
  const auto rr = [rr_opts](rarsub::Network& net) {
    rarsub::network_redundancy_removal(net, rr_opts);
  };
  config.methods.push_back(MethodSpec{
      "rr", rr, budget(20.0, 480.0)});
  config.methods.push_back(MethodSpec{
      "scriptA",
      [rr](rarsub::Network& net) {
        rarsub::script_a(net);
        rr(net);
      },
      budget(30.0, 500.0)});
  config.methods.push_back(MethodSpec{
      "scriptB",
      [rr](rarsub::Network& net) {
        rarsub::script_b(net);
        rr(net);
      },
      budget(30.0, 500.0)});
  config.methods.push_back(MethodSpec{
      "scriptC",
      [rr](rarsub::Network& net) {
        rarsub::script_c(net);
        rr(net);
      },
      budget(30.0, 500.0)});

  return rarsub::benchtool::run_suite_table(config);
}
