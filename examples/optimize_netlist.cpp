// End-to-end netlist optimization: read a BLIF file (or use a built-in
// benchmark when no path is given), run the paper's Script A preparation
// and extended Boolean substitution, verify equivalence, and write the
// optimized BLIF to stdout.
//
// Usage: optimize_netlist [file.blif | benchmark-name] [basic|ext|ext_gdc]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "benchcir/suite.hpp"
#include "division/substitute.hpp"
#include "network/blif.hpp"
#include "opt/scripts.hpp"
#include "verify/equivalence.hpp"

using namespace rarsub;

int main(int argc, char** argv) {
  Network net;
  const char* source = argc > 1 ? argv[1] : "syn_c432";
  try {
    std::ifstream file(source);
    net = file ? read_blif(file) : build_benchmark(source);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "cannot load '%s': %s\n", source, ex.what());
    return 1;
  }

  SubstituteOptions opts;
  opts.method = SubstMethod::Extended;
  if (argc > 2) {
    if (std::strcmp(argv[2], "basic") == 0) opts.method = SubstMethod::Basic;
    if (std::strcmp(argv[2], "ext_gdc") == 0)
      opts.method = SubstMethod::ExtendedGdc;
  }

  const Network original = net;
  std::fprintf(stderr, "loaded %s: %zu PIs, %zu POs, %d factored literals\n",
               source, net.pis().size(), net.pos().size(),
               net.factored_literals());

  script_a(net);
  std::fprintf(stderr, "after Script A (eliminate 0; simplify): %d literals\n",
               net.factored_literals());

  const SubstituteStats st = substitute_network(net, opts);
  std::fprintf(stderr,
               "after Boolean substitution: %d literals "
               "(%d substitutions, %d through POS, %d divisor splits)\n",
               net.factored_literals(), st.substitutions,
               st.pos_substitutions, st.decompositions);

  const EquivalenceResult eq = check_equivalence(original, net);
  std::fprintf(stderr, "equivalence check: %s %s\n",
               eq.equivalent ? "PASS" : "FAIL", eq.message.c_str());
  if (!eq.equivalent) return 1;

  write_blif(net, std::cout);
  return 0;
}
