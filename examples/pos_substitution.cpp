// Product-of-sums substitution (paper Sec. I): with h = (a+b)(c+d) and an
// existing node x = a+b, the rewrite h = x(c+d) "is completely not
// possible in the traditional approaches" that operate on sum-of-products
// expressions, while the RAR formulation gets it from the POS dual
// (Lemma 2) for free.

#include <cstdio>

#include "division/substitute.hpp"
#include "sop/factor.hpp"
#include "verify/equivalence.hpp"

using namespace rarsub;

namespace {

void print_node(const Network& net, const char* name) {
  const NodeId id = net.find_node(name);
  const Node& nd = net.node(id);
  std::vector<std::string> names;
  for (NodeId f : nd.fanins) names.emplace_back(net.node(f).name);
  const auto tree = quick_factor(nd.func);
  std::printf("  %s = %s   (%d literals)\n", name,
              factor_to_string(*tree, names).c_str(), tree->literal_count());
}

}  // namespace

int main() {
  Network net("pos_demo");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId d = net.add_pi("d");
  // h = (a+b)(c+d), stored as the flat SOP ac + ad + bc + bd.
  const NodeId h = net.add_node(
      "h", {a, b, c, d}, Sop::from_strings({"1-1-", "1--1", "-11-", "-1-1"}));
  const NodeId x = net.add_node("x", {a, b}, Sop::from_strings({"1-", "-1"}));
  net.add_po("h", h);
  net.add_po("x", x);

  std::printf("Before substitution:\n");
  print_node(net, "h");
  print_node(net, "x");

  const Network before = net;
  SubstituteOptions opts;
  opts.method = SubstMethod::Basic;
  opts.try_pos = true;
  const SubstituteStats st = substitute_network(net, opts);

  std::printf("\nAfter Boolean substitution (%d rewrites, %d via POS dual):\n",
              st.substitutions, st.pos_substitutions);
  print_node(net, "h");
  print_node(net, "x");

  const EquivalenceResult eq = check_equivalence(before, net);
  std::printf("\nEquivalence check: %s\n", eq.equivalent ? "PASS" : "FAIL");
  std::printf("Factored literals: %d -> %d\n", before.factored_literals(),
              net.factored_literals());
  bool ok = eq.equivalent &&
            net.factored_literals() < before.factored_literals();

  // Second act: a substitution algebraic division CANNOT perform because
  // the factors share support. f2 = (a+b+c)(a+d) = a + bd + cd; divisor
  // x2 = a+b+c. Weak division's quotient is empty (f2/a is the universe,
  // f2/b = {d}), but Boolean division rewrites f2 = x2·(a+d).
  Network net2("pos_demo2");
  const NodeId a2 = net2.add_pi("a");
  const NodeId b2 = net2.add_pi("b");
  const NodeId c2 = net2.add_pi("c");
  const NodeId d2 = net2.add_pi("d");
  const NodeId f2 = net2.add_node(
      "f2", {a2, b2, c2, d2},
      Sop::from_strings({"1---", "-1-1", "--11"}));  // a + bd + cd
  const NodeId x2 = net2.add_node(
      "x2", {a2, b2, c2}, Sop::from_strings({"1--", "-1-", "--1"}));
  net2.add_po("f2", f2);
  net2.add_po("x2", x2);

  std::printf("\nBoolean-only case (shared support, no algebraic product):\n");
  print_node(net2, "f2");
  print_node(net2, "x2");
  const Network before2 = net2;
  const SubstituteStats st2 = substitute_network(net2, opts);
  std::printf("\nAfter Boolean substitution (%d rewrites):\n",
              st2.substitutions);
  print_node(net2, "f2");
  const EquivalenceResult eq2 = check_equivalence(before2, net2);
  std::printf("Equivalence check: %s, factored literals %d -> %d\n",
              eq2.equivalent ? "PASS" : "FAIL", before2.factored_literals(),
              net2.factored_literals());
  ok = ok && eq2.equivalent &&
       net2.factored_literals() < before2.factored_literals();
  return ok ? 0 : 1;
}
