// Quickstart: Boolean division of two covers with the RAR-based algorithm,
// next to algebraic (weak) division — the paper's Sec. I comparison.
//
//   f = ab' + ac + bc' + b'c      divisor d = ab + b'c
//
// Algebraic division finds no useful quotient (no cube of f is an exact
// literal superset of both divisor cubes), while the RAR-based Boolean
// division rewrites the region and returns f = q·d + r with fewer
// literals.

#include <cstdio>

#include "division/division.hpp"
#include "sop/algdiv.hpp"
#include "sop/factor.hpp"

using namespace rarsub;

namespace {

void show(const char* label, const Sop& f,
          const std::vector<std::string>& names) {
  const auto tree = quick_factor(f);
  std::printf("  %-9s = %-28s (%d literals factored)\n", label,
              factor_to_string(*tree, names).c_str(), tree->literal_count());
}

}  // namespace

int main() {
  const std::vector<std::string> names{"a", "b", "c"};
  // Variables a,b,c -> columns 0,1,2.
  const Sop f = Sop::from_strings({"10-", "1-1", "-10", "-01"});
  const Sop d = Sop::from_strings({"11-", "-01"});

  std::printf("Dividend and divisor (paper Sec. I example family):\n");
  show("f", f, names);
  show("d", d, names);

  std::printf("\nAlgebraic (weak) division f / d:\n");
  const AlgDivResult alg = weak_divide(f, d);
  show("quotient", alg.quotient, names);
  show("remainder", alg.remainder, names);

  std::printf("\nRAR-based Boolean division f / d:\n");
  const DivisionResult boolean = basic_boolean_divide(f, d);
  if (!boolean.success) {
    std::printf("  (no non-zero quotient)\n");
    return 1;
  }
  show("quotient", boolean.quotient, names);
  show("remainder", boolean.remainder, names);

  const int before = factored_literal_count(f);
  const int after = factored_literal_count(boolean.quotient) +
                    factored_literal_count(boolean.remainder) + 1;  // +1 for y_d
  std::printf(
      "\nWith a node y = d available, f becomes  y*(quotient) + remainder:\n"
      "  %d literals before, %d after Boolean substitution.\n",
      before, after);

  // Sanity: f == q*d + r.
  const Sop rebuilt = boolean.quotient.boolean_and(d).boolean_or(boolean.remainder);
  std::printf("Reconstruction f == q*d + r: %s\n",
              rebuilt.equals(f) ? "OK" : "FAILED");
  return rebuilt.equals(f) ? 0 : 1;
}
