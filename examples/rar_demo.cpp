// The classic redundancy-addition-and-removal move the paper builds on
// (Sec. II, Fig. 1): adding one redundant connection makes other wires
// redundant; removing them shrinks the circuit while the outputs stay the
// same. This example runs the general single-wire RAR optimizer and then
// shows the paper's key twist — in the division configuration the added
// gate is redundant A PRIORI, no testing needed.

#include <cstdio>

#include "division/division.hpp"
#include "rar/rar_opt.hpp"
#include "rar/redundancy.hpp"

using namespace rarsub;

namespace {

int wire_count(const GateNet& gn) {
  int n = 0;
  for (int g = 0; g < gn.num_gates(); ++g)
    n += static_cast<int>(gn.gate(g).fanins.size());
  return n;
}

}  // namespace

int main() {
  // A circuit with reconvergent redundancy: f = ab + a'c + bc (the bc cube
  // is the consensus of the other two, i.e. redundant).
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int c = gn.add_pi("c");
  const int c1 = gn.add_gate(GateType::And, {{a, false}, {b, false}}, "ab");
  const int c2 = gn.add_gate(GateType::And, {{a, true}, {c, false}}, "a'c");
  const int c3 = gn.add_gate(GateType::And, {{b, false}, {c, false}}, "bc");
  const int f = gn.add_gate(GateType::Or,
                            {{c1, false}, {c2, false}, {c3, false}}, "f");
  gn.add_output(f);

  std::printf("Initial circuit: %d gates, %d wires (f = ab + a'c + bc)\n",
              gn.num_gates(), wire_count(gn));

  // Plain redundancy removal already finds the consensus cube.
  GateNet rr = gn;
  const int removed = remove_all_redundancies(rr);
  std::printf("Redundancy removal deletes %d wires -> %d wires left\n",
              removed, wire_count(rr));

  // The general add-one-remove-many optimizer.
  GateNet opt = gn;
  const RarStats st = rar_optimize(opt);
  std::printf(
      "Classic RAR: %d connections added, %d wires removed, "
      "%d transformations committed -> %d wires\n",
      st.wires_added, st.wires_removed, st.transformations, wire_count(opt));

  // The paper's specialization: in the division configuration the added
  // AND gate is redundant by the SOS property (Lemma 1) — watch the
  // region redundancy removal shrink a quotient with zero redundancy
  // tests spent on the *addition*.
  const Sop fd = Sop::from_strings({"111--", "110--", "-11--", "----1"});
  const Sop d = Sop::from_strings({"11---", "-11--"});
  const DivisionResult res = basic_boolean_divide(fd, d);
  std::printf(
      "\nDivision configuration: f(5 vars, %d literals) / d(%d literals)\n",
      fd.num_literals(), d.num_literals());
  if (res.success) {
    std::printf("  quotient  = %s\n  remainder = %s\n",
                res.quotient.to_string().c_str(),
                res.remainder.to_string().c_str());
    std::printf("  region literals %d -> %d after removal\n",
                fd.num_literals(),
                res.quotient.num_literals() + res.remainder.num_literals());
  }
  return res.success ? 0 : 1;
}
