// rarsub_cli — command-line front end to the library, in the spirit of the
// SIS shell the paper's experiments ran in.
//
//   rarsub_cli stats     <circuit>                     network statistics
//   rarsub_cli optimize  <circuit> [method] [script]   optimize + verify,
//                                                      BLIF on stdout
//   rarsub_cli verify    <circuit-a> <circuit-b>       PO equivalence
//   rarsub_cli fuzz      [--iters N] [--seed S] ...    differential fuzzing
//   rarsub_cli ledger-summary <file.jsonl>             digest a flight record
//   rarsub_cli list                                    built-in benchmarks
//
// <circuit> is a .blif path, a .pla path, or a built-in benchmark name.
// method: sis | basic | ext | ext_gdc (default ext)
// script: none | a | b | c | algebraic (default a; `algebraic` runs the
// full flow, `none` optimizes the raw circuit — fuzz-corpus replays)
//
// Global observability flags (any command):
//   --stats           print the counter/timer table to stderr afterwards,
//                     plus a one-line memory summary (peak RSS always;
//                     allocation totals when tracking is on)
//   --memstat         enable allocation tracking (same as RARSUB_MEMSTAT=1)
//                     and print the memory summary line
//   --stats-out <file> write the full observability snapshot as JSON
//                     (obs instruments + memory + hwc/prof status)
//   --profile <file>  sample the run's CPU time against the phase stack
//                     and write a flamegraph-compatible folded profile
//                     (same as RARSUB_PROF=<file>; see docs/OBSERVABILITY.md)
//   --trace <file>    write a Chrome trace-event JSON of the run
//   --report <file>   write the observability snapshot as JSON
//   --ledger <file>   record the optimization flight ledger as JSONL
//   --jobs <n>        worker threads for best-gain evaluation (results are
//                     identical for every n; see docs/PERFORMANCE.md)
//   --no-prune        disable the substitution candidate filter (sound to
//                     toggle: changes run time only, never the result)
//   --no-incremental  rebuild the GDC gate view from scratch per network
//                     state instead of patching it from the mutation
//                     journal (sound to toggle, like --no-prune)
//   --no-arena        route substitution scratch through the global heap
//                     instead of the thread-local bump arenas (same as
//                     RARSUB_ARENA=0; byte-identical results, slower)
//   --verify          paranoid self-verification: replay an equivalence
//                     check on the affected output cone after every
//                     committed substitution (docs/FUZZING.md)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "benchcir/suite.hpp"
#include "fuzz/driver.hpp"
#include "mem/arena.hpp"
#include "network/blif.hpp"
#include "obs/hwc.hpp"
#include "obs/json.hpp"
#include "obs/ledger.hpp"
#include "obs/memstat.hpp"
#include "obs/obs.hpp"
#include "obs/prof.hpp"
#include "network/eqn.hpp"
#include "network/pla.hpp"
#include "opt/decomp.hpp"
#include "opt/full_simplify.hpp"
#include "opt/scripts.hpp"
#include "rar/network_rr.hpp"
#include "verify/equivalence.hpp"

using namespace rarsub;

namespace {

Network load(const std::string& source) {
  std::ifstream file(source);
  if (file) {
    if (source.size() > 4 && source.substr(source.size() - 4) == ".pla")
      return read_pla(file);
    return read_blif(file);
  }
  return build_benchmark(source);
}

int cmd_stats(const std::string& source) {
  const Network net = load(source);
  int nodes = 0, cubes = 0, max_fanin = 0;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Node& nd = net.node(id);
    if (!nd.alive || nd.is_pi) continue;
    ++nodes;
    cubes += nd.func.num_cubes();
    max_fanin = std::max(max_fanin, static_cast<int>(nd.fanins.size()));
  }
  std::printf("%-22s %s\n", "circuit", net.name().c_str());
  std::printf("%-22s %zu\n", "primary inputs", net.pis().size());
  std::printf("%-22s %zu\n", "primary outputs", net.pos().size());
  std::printf("%-22s %d\n", "internal nodes", nodes);
  std::printf("%-22s %d\n", "cubes", cubes);
  std::printf("%-22s %d\n", "max fanin", max_fanin);
  std::printf("%-22s %d\n", "SOP literals", net.sop_literals());
  std::printf("%-22s %d\n", "factored literals", net.factored_literals());
  return 0;
}

int cmd_optimize(const std::string& source, const std::string& method,
                 const std::string& script, const ResubTuning& tuning) {
  Network net = load(source);
  const Network original = net;

  ResubMethod m = ResubMethod::Extended;
  if (method == "sis") m = ResubMethod::SisAlgebraic;
  else if (method == "basic") m = ResubMethod::Basic;
  else if (method == "ext") m = ResubMethod::Extended;
  else if (method == "ext_gdc") m = ResubMethod::ExtendedGdc;
  else {
    std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
    return 2;
  }

  std::fprintf(stderr, "initial: %d factored literals\n",
               net.factored_literals());
  if (script == "algebraic") {
    script_algebraic(net, m, tuning);
  } else {
    if (script == "a") script_a(net);
    else if (script == "b") script_b(net);
    else if (script == "c") script_c(net);
    else if (script == "none") {}  // raw circuit (fuzz-corpus replays)
    else {
      std::fprintf(stderr, "unknown script '%s'\n", script.c_str());
      return 2;
    }
    std::fprintf(stderr, "after script %s: %d literals\n", script.c_str(),
                 net.factored_literals());
    run_resub(net, m, tuning);
  }
  std::fprintf(stderr, "after %s resubstitution: %d literals\n",
               method.c_str(), net.factored_literals());

  const EquivalenceResult eq = check_equivalence(original, net);
  std::fprintf(stderr, "equivalence: %s %s\n", eq.equivalent ? "PASS" : "FAIL",
               eq.message.c_str());
  if (!eq.equivalent) return 1;
  write_blif(net, std::cout);
  return 0;
}

int cmd_verify(const std::string& a, const std::string& b) {
  const Network na = load(a);
  const Network nb = load(b);
  const EquivalenceResult eq = check_equivalence(na, nb);
  std::printf("%s%s%s\n", eq.equivalent ? "EQUIVALENT" : "NOT EQUIVALENT",
              eq.message.empty() ? "" : " — ", eq.message.c_str());
  if (!eq.equivalent && eq.counterexample)
    std::printf("counterexample: PI assignment 0x%llx\n",
                static_cast<unsigned long long>(*eq.counterexample));
  return eq.equivalent ? 0 : 1;
}

int cmd_print(const std::string& source) {
  const Network net = load(source);
  std::cout << write_eqn_string(net);
  return 0;
}

int cmd_pass(const std::string& source, const std::string& pass) {
  Network net = load(source);
  const Network original = net;
  const int before = net.factored_literals();
  if (pass == "rr") network_redundancy_removal(net);
  else if (pass == "rr_legacy") {
    // The pre-one-pass per-wire loop, kept as the byte-equality oracle:
    // identical result network, just slower. Exists so a surprising rr
    // outcome can be cross-checked from the command line.
    NetworkRrOptions opts;
    opts.one_pass = false;
    network_redundancy_removal(net, opts);
  }
  else if (pass == "full_simplify") full_simplify_network(net);
  else if (pass == "decomp") decomp_network(net);
  else if (pass == "eliminate") eliminate(net, 0);
  else if (pass == "simplify") simplify_network(net);
  else if (pass == "sweep") net.sweep();
  else {
    std::fprintf(stderr, "unknown pass '%s'\n", pass.c_str());
    return 2;
  }
  const EquivalenceResult eq = check_equivalence(original, net);
  std::fprintf(stderr, "%s: %d -> %d literals, equivalence %s\n",
               pass.c_str(), before, net.factored_literals(),
               eq.equivalent ? "PASS" : "FAIL");
  if (!eq.equivalent) return 1;
  write_blif(net, std::cout);
  return 0;
}

int cmd_fuzz(const std::vector<std::string>& args) {
  fuzz::FuzzOptions opts;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--iters" && i + 1 < args.size())
      opts.iters = std::atoll(args[++i].c_str());
    else if (a == "--seed" && i + 1 < args.size())
      opts.seed = static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
    else if (a == "--time-budget" && i + 1 < args.size())
      opts.time_budget_sec = std::atof(args[++i].c_str());
    else if (a == "--corpus" && i + 1 < args.size())
      opts.corpus_dir = args[++i];
    else if (a == "--plant-bug" && i + 1 < args.size()) {
      const std::string b = args[++i];
      if (b == "skip-remainder") opts.plant = fuzz::PlantedBug::SkipRemainder;
      else {
        std::fprintf(stderr, "unknown planted bug '%s'\n", b.c_str());
        return 2;
      }
    } else if (a == "--verbose") {
      opts.verbose = true;
    } else {
      std::fprintf(stderr, "unknown fuzz option '%s'\n", a.c_str());
      return 2;
    }
  }

  const fuzz::FuzzReport report = fuzz::run_fuzz(opts);
  std::printf("fuzz: %lld iterations, %zu failure(s)\n", report.iterations,
              report.failures.size());
  for (const fuzz::FuzzFailure& f : report.failures) {
    std::printf("  iter %lld  check %-20s  repro %s (%d nodes, replay %s)\n",
                f.iter, f.check.c_str(),
                f.repro_path.empty() ? "<unwritten>" : f.repro_path.c_str(),
                f.repro_nodes, f.repro_confirmed ? "confirmed" : "FAILED");
    std::printf("    %s\n", f.detail.c_str());
  }
  return report.clean() ? 0 : 1;
}

int cmd_ledger_summary(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open ledger %s\n", path.c_str());
    return 2;
  }
  const obs::LedgerSummary s = obs::summarize_ledger(in);
  std::printf("%s", obs::render_ledger_summary(s).c_str());
  return 0;
}

int cmd_list() {
  for (const BenchmarkEntry& e : benchmark_suite()) {
    const Network net = e.build();
    std::printf("%-12s %3zu PI %3zu PO %5d literals\n", e.name.c_str(),
                net.pis().size(), net.pos().size(), net.factored_literals());
  }
  return 0;
}

// --stats-out: the machine-readable sibling of --stats. One JSON object
// with the obs snapshot plus the telemetry --stats prints around it
// (memory, hardware-counter status, profiler status/top phases), so a
// scripted run collects everything in one file without bench-report
// plumbing.
bool write_stats_json(const std::string& path, const obs::Snapshot& snap) {
  std::string out;
  obs::JsonWriter w(&out);
  w.begin_object();
  w.key("obs");
  obs::snapshot_to_json(w, snap);
  const obs::MemSnapshot mem = obs::memstat_snapshot();
  w.key("mem");
  w.begin_object();
  w.key("enabled");
  w.value(mem.enabled);
  w.key("rss_kb");
  w.value(mem.rss_kb);
  w.key("peak_rss_kb");
  w.value(mem.peak_rss_kb);
  if (mem.enabled) {
    w.key("allocs");
    w.value(mem.allocs);
    w.key("frees");
    w.value(mem.frees);
    w.key("alloc_bytes");
    w.value(mem.alloc_bytes);
    w.key("freed_bytes");
    w.value(mem.freed_bytes);
    w.key("live_bytes");
    w.value(mem.live_bytes);
    w.key("peak_live_bytes");
    w.value(mem.peak_live_bytes);
    w.key("phases");
    w.begin_object();
    for (const obs::MemPhaseSnap& p : mem.phases) {
      w.key(p.phase);
      w.begin_object();
      w.key("allocs");
      w.value(p.allocs);
      w.key("alloc_bytes");
      w.value(p.alloc_bytes);
      w.key("peak_live_bytes");
      w.value(p.peak_live_bytes);
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();
  w.key("hwc_status");
  w.value(obs::hwc_status());
  w.key("prof_status");
  w.value(obs::prof_status());
  const obs::ProfSnapshot prof = obs::prof_snapshot();
  if (prof.enabled || prof.samples > 0) {
    w.key("prof");
    w.begin_object();
    w.key("samples");
    w.value(prof.samples);
    w.key("samples_dropped");
    w.value(prof.dropped);
    w.key("interval_us");
    w.value(prof.interval_us);
    w.key("phases");
    w.begin_object();
    for (const obs::ProfPhaseSelf& p : obs::prof_self_phases(prof)) {
      w.key(p.phase);
      w.begin_object();
      w.key("samples");
      w.value(p.samples);
      w.key("self_ms");
      w.value(p.est_ms);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  out += '\n';
  std::ofstream f(path);
  if (!f) return false;
  f << out;
  return f.good();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global observability flags; everything else is positional.
  bool show_stats = false;
  bool want_memstat = false;
  std::string trace_path, report_path, ledger_path, stats_out_path,
      profile_path;
  ResubTuning tuning;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--stats") show_stats = true;
    else if (a == "--memstat") want_memstat = true;
    else if (a == "--stats-out" && i + 1 < argc) stats_out_path = argv[++i];
    else if (a == "--profile" && i + 1 < argc) profile_path = argv[++i];
    else if (a == "--trace" && i + 1 < argc) trace_path = argv[++i];
    else if (a == "--report" && i + 1 < argc) report_path = argv[++i];
    else if (a == "--ledger" && i + 1 < argc) ledger_path = argv[++i];
    else if (a == "--jobs" && i + 1 < argc) tuning.jobs = std::atoi(argv[++i]);
    else if (a == "--no-prune") tuning.prune = false;
    else if (a == "--no-incremental") tuning.incremental = false;
    else if (a == "--no-arena") mem::set_arena_enabled(false);
    else if (a == "--verify") tuning.verify = true;
    else args.push_back(a);
  }
  if (tuning.jobs < 1) {
    std::fprintf(stderr, "--jobs must be >= 1\n");
    return 2;
  }
  if (want_memstat && !obs::memstat_enable())
    std::fprintf(stderr,
                 "--memstat: allocation hooks not compiled into this build "
                 "(RSS summary still available)\n");
  if (!trace_path.empty()) obs::trace_begin(trace_path);
  if (!ledger_path.empty() && !obs::ledger_begin(ledger_path))
    std::fprintf(stderr, "cannot write ledger to %s\n", ledger_path.c_str());
  // --profile degrades gracefully: a host without working profiling
  // timers runs the command anyway and the reason lands on stderr.
  bool profiling = false;
  if (!profile_path.empty()) {
    profiling = obs::prof_start();
    if (!profiling)
      std::fprintf(stderr, "--profile: sampling unavailable (%s)\n",
                   obs::prof_status().c_str());
  }

  int rc = -1;
  try {
    const std::string cmd = !args.empty() ? args[0] : "";
    if (cmd == "stats" && args.size() >= 2) rc = cmd_stats(args[1]);
    else if (cmd == "optimize" && args.size() >= 2)
      rc = cmd_optimize(args[1], args.size() > 2 ? args[2] : "ext",
                        args.size() > 3 ? args[3] : "a", tuning);
    else if (cmd == "verify" && args.size() >= 3) rc = cmd_verify(args[1], args[2]);
    else if (cmd == "print" && args.size() >= 2) rc = cmd_print(args[1]);
    else if (cmd == "pass" && args.size() >= 3) rc = cmd_pass(args[1], args[2]);
    else if (cmd == "fuzz") rc = cmd_fuzz(args);
    else if (cmd == "ledger-summary" && args.size() >= 2)
      rc = cmd_ledger_summary(args[1]);
    else if (cmd == "list") rc = cmd_list();
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    rc = 1;
  }

  if (rc >= 0) {
    const obs::Snapshot snap = obs::snapshot();
    if (show_stats)
      std::fprintf(stderr, "%s", obs::render_text(snap).c_str());
    // The /proc part of this line is always cheap to produce, so --stats
    // reports memory even when allocation tracking is off.
    if (show_stats || want_memstat)
      std::fprintf(stderr, "%s\n", obs::render_mem_summary().c_str());
    if (!report_path.empty()) {
      std::ofstream out(report_path);
      if (out) out << obs::render_json(snap);
      else std::fprintf(stderr, "cannot write report to %s\n",
                        report_path.c_str());
    }
    if (!stats_out_path.empty() && !write_stats_json(stats_out_path, snap))
      std::fprintf(stderr, "cannot write stats to %s\n",
                   stats_out_path.c_str());
    if (profiling) {
      obs::prof_stop();
      if (obs::write_folded_profile(profile_path))
        std::fprintf(stderr, "folded profile written to %s\n",
                     profile_path.c_str());
      else
        std::fprintf(stderr, "cannot write profile to %s\n",
                     profile_path.c_str());
    }
    if (!trace_path.empty()) obs::trace_end();
    if (!ledger_path.empty()) obs::ledger_end();
    return rc;
  }

  std::fprintf(stderr,
               "usage:\n"
               "  rarsub_cli stats    <circuit>\n"
               "  rarsub_cli optimize <circuit> [sis|basic|ext|ext_gdc] "
               "[none|a|b|c|algebraic]\n"
               "  rarsub_cli verify   <circuit-a> <circuit-b>\n"
               "  rarsub_cli print    <circuit>            (factored equations)\n"
               "  rarsub_cli pass     <circuit> <rr|rr_legacy|full_simplify|"
               "decomp|eliminate|simplify|sweep>\n"
               "  rarsub_cli fuzz     [--iters N] [--seed S] "
               "[--time-budget SEC] [--corpus DIR]\n"
               "                      [--plant-bug skip-remainder] [--verbose]"
               "  (differential fuzzing)\n"
               "  rarsub_cli ledger-summary <file.jsonl>\n"
               "  rarsub_cli list\n"
               "global flags: --stats | --memstat (allocation tracking + "
               "memory summary) | --stats-out <file> |\n"
               "              --profile <file> (folded CPU profile) | "
               "--trace <file> | --report <file> |\n"
               "              --ledger <file> | "
               "--jobs <n> (parallel gain evaluation,\n"
               "              deterministic) | --no-prune | --no-incremental "
               "| --no-arena | --verify\n"
               "(<circuit> = .blif path, .pla path, or built-in name)\n");
  return 2;
}
