// Extended division walkthrough (paper Sec. IV, Table I and Fig. 4):
// every wire of the dividend votes — via fault implications — for the
// divisor cubes whose implied value is 0; a maximum clique over
// intersecting votes selects the core divisor; the divisor is decomposed
// and basic division by the core finishes the job.

#include <cstdio>

#include "division/division.hpp"

using namespace rarsub;

int main() {
  // Dividend f = abx + cdx over (a,b,c,d,e,x); divisor g = ab + cd + e.
  // Basic division by g leaves part of f in the remainder; extended
  // division discovers the embedded core.
  const Sop f = Sop::from_strings({"11---1", "--11-1"});
  const Sop d = Sop::from_strings({"11----", "--11--", "----1-"});

  std::printf("f = %s\nd = %s\n\nVote table (paper Table I):\n",
              f.to_string().c_str(), d.to_string().c_str());
  std::printf("%-6s %-4s | %-16s | %s\n", "cube", "var", "votes(d-cubes)",
              "valid");
  for (const VoteEntry& e : vote_table(f, d)) {
    std::string votes;
    for (int k : e.candidates) votes += "c" + std::to_string(k) + " ";
    std::printf("%-6d %-4d | %-16s | %s\n", e.cube, e.var,
                votes.empty() ? "(none)" : votes.c_str(),
                e.valid ? "yes" : "no");
  }

  const ExtendedResult res = extended_boolean_divide(f, d);
  if (!res.success) {
    std::printf("\nextended division failed\n");
    return 1;
  }
  std::string core;
  for (int k : res.core_cubes) core += "c" + std::to_string(k) + " ";
  std::printf("\nChosen core divisor (max clique): %s\n", core.c_str());
  std::printf("quotient  = %s\nremainder = %s\n",
              res.quotient.to_string().c_str(),
              res.remainder.to_string().c_str());

  // Verify f == q·core + r.
  Sop core_cover(d.num_vars());
  for (int k : res.core_cubes) core_cover.add_cube(d.cube(k));
  const Sop rebuilt =
      res.quotient.boolean_and(core_cover).boolean_or(res.remainder);
  std::printf("reconstruction f == q*core + r: %s\n",
              rebuilt.equals(f) ? "OK" : "FAILED");
  return rebuilt.equals(f) ? 0 : 1;
}
