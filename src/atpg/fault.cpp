#include "atpg/fault.hpp"

#include <algorithm>
#include <cassert>

#include "obs/ledger.hpp"
#include "obs/obs.hpp"

namespace rarsub {

bool removal_stuck_value(GateType t) {
  assert(t == GateType::And || t == GateType::Or);
  return t == GateType::And;  // AND: stuck-at-1 removable; OR: stuck-at-0
}

std::vector<int> propagation_dominators(const GateNet& net, int g) {
  // Post-dominator sets over the fanout cone of g, bitset per gate,
  // computed in reverse topological order:
  //   postdom(x) = {x}                         if x is observable
  //   postdom(x) = {x} ∪ ∩ postdom(fanouts)    otherwise
  // Dead ends (no fanout, not observable) get the universal set so they do
  // not weaken the intersection — no detecting path goes through them.
  const std::vector<bool> in_cone_mask = net.tfo_mask(g);
  std::vector<int> cone;  // local indexing: cone[0] == g
  std::vector<int> local(static_cast<std::size_t>(net.num_gates()), -1);
  cone.push_back(g);
  local[static_cast<std::size_t>(g)] = 0;
  for (int x : net.topo_order()) {
    if (x != g && in_cone_mask[static_cast<std::size_t>(x)]) {
      local[static_cast<std::size_t>(x)] = static_cast<int>(cone.size());
      cone.push_back(x);
    }
  }
  const int n = static_cast<int>(cone.size());
  const int words = (n + 63) / 64;
  std::vector<std::vector<std::uint64_t>> postdom(
      static_cast<std::size_t>(n),
      std::vector<std::uint64_t>(static_cast<std::size_t>(words), ~0ULL));

  std::vector<bool> observable(static_cast<std::size_t>(net.num_gates()), false);
  for (int o : net.outputs()) observable[static_cast<std::size_t>(o)] = true;

  // Process in reverse topological order of the cone. topo_order() lists
  // fanins first, so iterate the cone backwards after sorting by topo rank.
  std::vector<int> rank(static_cast<std::size_t>(net.num_gates()), 0);
  {
    int r = 0;
    for (int x : net.topo_order()) rank[static_cast<std::size_t>(x)] = r++;
  }
  std::vector<int> order = cone;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return rank[static_cast<std::size_t>(a)] > rank[static_cast<std::size_t>(b)];
  });

  for (int x : order) {
    const int lx = local[static_cast<std::size_t>(x)];
    auto& pd = postdom[static_cast<std::size_t>(lx)];
    if (observable[static_cast<std::size_t>(x)]) {
      std::fill(pd.begin(), pd.end(), 0ULL);
    } else {
      bool any_fanout = false;
      std::vector<std::uint64_t> acc(static_cast<std::size_t>(words), ~0ULL);
      for (int fo : net.gate(x).fanouts) {
        const int lf = local[static_cast<std::size_t>(fo)];
        if (lf < 0) continue;  // fanout outside cone: impossible by def
        any_fanout = true;
        const auto& fpd = postdom[static_cast<std::size_t>(lf)];
        for (int w = 0; w < words; ++w)
          acc[static_cast<std::size_t>(w)] &= fpd[static_cast<std::size_t>(w)];
      }
      if (any_fanout) pd = std::move(acc);
      // else: dead end, keep universal set.
    }
    pd[static_cast<std::size_t>(lx / 64)] |= 1ULL << (lx % 64);
  }

  const auto& gd = postdom[0];
  std::vector<int> doms;
  for (int i = 1; i < n; ++i)
    if (gd[static_cast<std::size_t>(i / 64)] >> (i % 64) & 1) doms.push_back(cone[static_cast<std::size_t>(i)]);
  return doms;
}

FaultResult analyze_fault(const GateNet& net, WireRef w, bool stuck_value,
                          int learning_depth) {
  OBS_COUNT("atpg.faults", 1);
  OBS_PHASE("atpg.fault");
  FaultResult res;
  const Gate& gd = net.gate(w.gate);
  assert(gd.type == GateType::And || gd.type == GateType::Or);
  assert(w.pin >= 0 && w.pin < static_cast<int>(gd.fanins.size()));

  // One ledger record per fault analysis: a = untestable verdict,
  // b = stuck value tested.
  auto record = [&](bool untestable) {
    OBS_EVENT(.kind = obs::EventKind::RedundancyTest, .node = w.gate,
              .divisor = w.pin, .a = untestable ? 1 : 0,
              .b = stuck_value ? 1 : 0);
  };

  // Observability precheck: if nothing observable is reachable from the
  // fault site, the wire is trivially redundant.
  {
    std::vector<bool> blocked(static_cast<std::size_t>(net.num_gates()), false);
    if (!net.reaches_output(w.gate, blocked)) {
      res.untestable = true;
      res.unobservable = true;
      OBS_COUNT("atpg.faults.untestable", 1);
      record(true);
      return res;
    }
  }

  ImplicationEngine eng(net, learning_depth);

  auto fail = [&]() {
    res.untestable = true;
    res.values = eng.values();
    OBS_COUNT("atpg.faults.untestable", 1);
    record(true);
    return res;
  };

  // 1. Activation: the wire must carry the opposite of its stuck value.
  const Signal& s = gd.fanins[static_cast<std::size_t>(w.pin)];
  const bool seen_val = !stuck_value;
  if (!eng.assign(s.gate, s.neg ? !seen_val : seen_val)) return fail();

  // 2. Side inputs of the faulted gate must be non-controlling so the
  //    fault effect reaches the gate output.
  const bool nctrl_seen = (gd.type == GateType::And);
  for (int p = 0; p < static_cast<int>(gd.fanins.size()); ++p) {
    if (p == w.pin) continue;
    const Signal& sp = gd.fanins[static_cast<std::size_t>(p)];
    if (!eng.assign(sp.gate, sp.neg ? !nctrl_seen : nctrl_seen)) return fail();
  }

  // 3. Every propagation dominator needs its off-cone inputs
  //    non-controlling.
  const std::vector<bool> cone = net.tfo_mask(w.gate);
  for (int d : propagation_dominators(net, w.gate)) {
    const Gate& dg = net.gate(d);
    if (dg.type != GateType::And && dg.type != GateType::Or) continue;
    const bool d_nctrl = (dg.type == GateType::And);
    for (const Signal& sp : dg.fanins) {
      if (sp.gate == w.gate || cone[static_cast<std::size_t>(sp.gate)])
        continue;  // carries (or may carry) the fault effect
      if (!eng.assign(sp.gate, sp.neg ? !d_nctrl : d_nctrl)) return fail();
    }
  }

  res.values = eng.values();
  record(false);
  return res;
}

}  // namespace rarsub
