#include "atpg/fault.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/ledger.hpp"
#include "obs/obs.hpp"

namespace rarsub {

bool removal_stuck_value(GateType t) {
  assert(t == GateType::And || t == GateType::Or);
  return t == GateType::And;  // AND: stuck-at-1 removable; OR: stuck-at-0
}

std::vector<int> propagation_dominators(const GateNet& net, int g) {
  // Post-dominator sets over the fanout cone of g, bitset per gate,
  // computed in reverse topological order:
  //   postdom(x) = {x}                         if x is observable
  //   postdom(x) = {x} ∪ ∩ postdom(fanouts)    otherwise
  // Dead ends (no fanout, not observable) get the universal set so they do
  // not weaken the intersection — no detecting path goes through them.
  const std::vector<bool> in_cone_mask = net.tfo_mask(g);
  std::vector<int> cone;  // local indexing: cone[0] == g
  std::vector<int> local(static_cast<std::size_t>(net.num_gates()), -1);
  cone.push_back(g);
  local[static_cast<std::size_t>(g)] = 0;
  for (int x : net.topo_order()) {
    if (x != g && in_cone_mask[static_cast<std::size_t>(x)]) {
      local[static_cast<std::size_t>(x)] = static_cast<int>(cone.size());
      cone.push_back(x);
    }
  }
  const int n = static_cast<int>(cone.size());
  const int words = (n + 63) / 64;
  std::vector<std::vector<std::uint64_t>> postdom(
      static_cast<std::size_t>(n),
      std::vector<std::uint64_t>(static_cast<std::size_t>(words), ~0ULL));

  std::vector<bool> observable(static_cast<std::size_t>(net.num_gates()), false);
  for (int o : net.outputs()) observable[static_cast<std::size_t>(o)] = true;

  // Process in reverse topological order of the cone. topo_order() lists
  // fanins first, so iterate the cone backwards after sorting by topo rank.
  std::vector<int> rank(static_cast<std::size_t>(net.num_gates()), 0);
  {
    int r = 0;
    for (int x : net.topo_order()) rank[static_cast<std::size_t>(x)] = r++;
  }
  std::vector<int> order = cone;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return rank[static_cast<std::size_t>(a)] > rank[static_cast<std::size_t>(b)];
  });

  for (int x : order) {
    const int lx = local[static_cast<std::size_t>(x)];
    auto& pd = postdom[static_cast<std::size_t>(lx)];
    if (observable[static_cast<std::size_t>(x)]) {
      std::fill(pd.begin(), pd.end(), 0ULL);
    } else {
      bool any_fanout = false;
      std::vector<std::uint64_t> acc(static_cast<std::size_t>(words), ~0ULL);
      for (int fo : net.gate(x).fanouts) {
        const int lf = local[static_cast<std::size_t>(fo)];
        if (lf < 0) continue;  // fanout outside cone: impossible by def
        any_fanout = true;
        const auto& fpd = postdom[static_cast<std::size_t>(lf)];
        for (int w = 0; w < words; ++w)
          acc[static_cast<std::size_t>(w)] &= fpd[static_cast<std::size_t>(w)];
      }
      if (any_fanout) pd = std::move(acc);
      // else: dead end, keep universal set.
    }
    pd[static_cast<std::size_t>(lx / 64)] |= 1ULL << (lx % 64);
  }

  const auto& gd = postdom[0];
  std::vector<int> doms;
  for (int i = 1; i < n; ++i)
    if (gd[static_cast<std::size_t>(i / 64)] >> (i % 64) & 1) doms.push_back(cone[static_cast<std::size_t>(i)]);
  return doms;
}

FaultResult analyze_fault(const GateNet& net, WireRef w, bool stuck_value,
                          int learning_depth) {
  OBS_COUNT("atpg.faults", 1);
  OBS_PHASE("atpg.fault");
  FaultResult res;
  const Gate& gd = net.gate(w.gate);
  assert(gd.type == GateType::And || gd.type == GateType::Or);
  assert(w.pin >= 0 && w.pin < static_cast<int>(gd.fanins.size()));

  // One ledger record per fault analysis: a = untestable verdict,
  // b = stuck value tested.
  auto record = [&](bool untestable) {
    OBS_EVENT(.kind = obs::EventKind::RedundancyTest, .node = w.gate,
              .divisor = w.pin, .a = untestable ? 1 : 0,
              .b = stuck_value ? 1 : 0);
  };

  // Observability precheck: if nothing observable is reachable from the
  // fault site, the wire is trivially redundant.
  {
    std::vector<bool> blocked(static_cast<std::size_t>(net.num_gates()), false);
    if (!net.reaches_output(w.gate, blocked)) {
      res.untestable = true;
      res.unobservable = true;
      OBS_COUNT("atpg.faults.untestable", 1);
      record(true);
      return res;
    }
  }

  ImplicationEngine eng(net, learning_depth);

  auto fail = [&]() {
    res.untestable = true;
    res.values = eng.values();
    OBS_COUNT("atpg.faults.untestable", 1);
    record(true);
    return res;
  };

  // 1. Activation: the wire must carry the opposite of its stuck value.
  const Signal& s = gd.fanins[static_cast<std::size_t>(w.pin)];
  const bool seen_val = !stuck_value;
  if (!eng.assign(s.gate, s.neg ? !seen_val : seen_val)) return fail();

  // 2. Side inputs of the faulted gate must be non-controlling so the
  //    fault effect reaches the gate output.
  const bool nctrl_seen = (gd.type == GateType::And);
  for (int p = 0; p < static_cast<int>(gd.fanins.size()); ++p) {
    if (p == w.pin) continue;
    const Signal& sp = gd.fanins[static_cast<std::size_t>(p)];
    if (!eng.assign(sp.gate, sp.neg ? !nctrl_seen : nctrl_seen)) return fail();
  }

  // 3. Every propagation dominator needs its off-cone inputs
  //    non-controlling.
  const std::vector<bool> cone = net.tfo_mask(w.gate);
  for (int d : propagation_dominators(net, w.gate)) {
    const Gate& dg = net.gate(d);
    if (dg.type != GateType::And && dg.type != GateType::Or) continue;
    const bool d_nctrl = (dg.type == GateType::And);
    for (const Signal& sp : dg.fanins) {
      if (sp.gate == w.gate || cone[static_cast<std::size_t>(sp.gate)])
        continue;  // carries (or may carry) the fault effect
      if (!eng.assign(sp.gate, sp.neg ? !d_nctrl : d_nctrl)) return fail();
    }
  }

  res.values = eng.values();
  record(false);
  return res;
}

FaultAnalyzer::FaultAnalyzer(const GateNet& net, int learning_depth,
                             int implication_budget)
    : net_(&net), learning_depth_(learning_depth), eng_(net, learning_depth) {
  eng_.set_trail(true);
  eng_.set_visit_budget(implication_budget);
}

void FaultAnalyzer::note_remove_fanin(int gate, int source) {
  OBS_COUNT("rr.onepass.journal_events", 1);
  eng_.rewind_to(0);
  eng_.rebase(gate);  // a gate emptied of pins becomes a constant
  dirty_ = true;
  region_gate_ = -1;
  if (built_) pending_.push_back(source);
}

void FaultAnalyzer::note_make_const(int gate,
                                    const std::vector<Signal>& former_fanins) {
  OBS_COUNT("rr.onepass.journal_events", 1);
  eng_.rewind_to(0);
  eng_.rebase(gate);
  dirty_ = true;
  region_gate_ = -1;
  if (built_)
    for (const Signal& s : former_fanins) pending_.push_back(s.gate);
}

void FaultAnalyzer::rebuild() {
  OBS_COUNT("rr.onepass.rebuilds", 1);
  OBS_PHASE("rr.onepass.rebuild");
  const std::size_t n = static_cast<std::size_t>(net_->num_gates());
  const int exit = net_->num_gates();
  const std::vector<int> topo = net_->topo_order();
  rank_.assign(n, 0);
  for (std::size_t i = 0; i < topo.size(); ++i)
    rank_[static_cast<std::size_t>(topo[i])] = static_cast<int>(i);
  observable_.assign(n, 0);
  for (int o : net_->outputs()) observable_[static_cast<std::size_t>(o)] = 1;

  // Exit-reachability and immediate post-dominators in one reverse-topo
  // sweep each: fanouts have strictly higher rank, so they are final when
  // their fanin is processed. Dead ends (unreachable gates) are skipped,
  // matching the universal-set convention of propagation_dominators().
  reach_.assign(n, 0);
  idom_.assign(n, -1);
  const auto rnk = [&](int g) {
    return g == exit ? static_cast<int>(n) : rank_[static_cast<std::size_t>(g)];
  };
  const auto intersect = [&](int a, int b) {
    while (a != b) {
      if (rnk(a) < rnk(b)) a = idom_[static_cast<std::size_t>(a)];
      else b = idom_[static_cast<std::size_t>(b)];
    }
    return a;
  };
  for (std::size_t i = topo.size(); i-- > 0;) {
    const int g = topo[i];
    const std::size_t gi = static_cast<std::size_t>(g);
    if (observable_[gi]) {
      reach_[gi] = 1;
      idom_[gi] = exit;  // every path is observed right here
      continue;
    }
    int cur = -1;
    for (int fo : net_->gate(g).fanouts) {
      if (!reach_[static_cast<std::size_t>(fo)]) continue;
      cur = cur < 0 ? fo : intersect(cur, fo);
    }
    if (cur >= 0) {
      reach_[gi] = 1;
      idom_[gi] = cur;
    }
  }

  cone_stamp_.assign(n, 0);
  work_stamp_.assign(n, 0);
  pending_.clear();
  work_epoch_ = 0;
  cone_epoch_ = 0;
  dirty_ = false;
  built_ = true;
  region_gate_ = -1;
}

void FaultAnalyzer::refresh() {
  if (!built_) {
    rebuild();
    return;
  }
  // Incremental dominator repair. A removal only shrinks the fanout sets
  // of the recorded sources, so reach/idom can change only there and, by
  // the defining recurrences, at gates upstream of a change. Walk a
  // max-rank worklist seeded at the sources: when a gate recomputes to its
  // old (reach, idom) pair the walk cuts off; otherwise its fanins are
  // enqueued. Decreasing-rank order means every gate sees final fanout
  // values exactly as in the full reverse-topo pass, so the repaired
  // arrays equal a from-scratch rebuild. rank_ itself needs no repair:
  // deleting edges cannot invalidate a topological numbering.
  OBS_COUNT("rr.onepass.updates", 1);
  OBS_PHASE("rr.onepass.update");
  const std::size_t n = static_cast<std::size_t>(net_->num_gates());
  const int exit = net_->num_gates();
  const auto rnk = [&](int g) {
    return g == exit ? static_cast<int>(n) : rank_[static_cast<std::size_t>(g)];
  };
  const auto intersect = [&](int a, int b) {
    while (a != b) {
      if (rnk(a) < rnk(b)) a = idom_[static_cast<std::size_t>(a)];
      else b = idom_[static_cast<std::size_t>(b)];
    }
    return a;
  };
  ++work_epoch_;
  std::vector<std::pair<int, int>> heap;  // (rank, gate), max-heap
  heap.reserve(pending_.size());
  for (int s : pending_) {
    std::size_t si = static_cast<std::size_t>(s);
    if (work_stamp_[si] == work_epoch_) continue;
    work_stamp_[si] = work_epoch_;
    heap.emplace_back(rank_[si], s);
  }
  pending_.clear();
  std::make_heap(heap.begin(), heap.end());
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end());
    const int g = heap.back().second;
    heap.pop_back();
    const std::size_t gi = static_cast<std::size_t>(g);
    char new_reach = 0;
    int new_idom = -1;
    if (observable_[gi]) {
      new_reach = 1;
      new_idom = exit;
    } else {
      int cur = -1;
      for (int fo : net_->gate(g).fanouts) {
        if (!reach_[static_cast<std::size_t>(fo)]) continue;
        cur = cur < 0 ? fo : intersect(cur, fo);
      }
      if (cur >= 0) {
        new_reach = 1;
        new_idom = cur;
      }
    }
    if (new_reach == reach_[gi] && new_idom == idom_[gi]) continue;
    reach_[gi] = new_reach;
    idom_[gi] = new_idom;
    OBS_COUNT("rr.onepass.update_nodes", 1);
    for (const Signal& s : net_->gate(g).fanins) {
      const std::size_t si = static_cast<std::size_t>(s.gate);
      if (work_stamp_[si] == work_epoch_) continue;
      work_stamp_[si] = work_epoch_;
      heap.emplace_back(rank_[si], s.gate);
      std::push_heap(heap.begin(), heap.end());
    }
  }
  dirty_ = false;
  region_gate_ = -1;
}

// Mark the fanout cone of g (and g itself), pruned at gates whose rank is
// >= max_rank: ranks grow strictly along edges, so no pruned gate can lead
// back to a side-input query (all of which rank below the last dominator).
void FaultAnalyzer::stamp_cone(int g, int max_rank) {
  ++cone_epoch_;
  cone_stamp_[static_cast<std::size_t>(g)] = cone_epoch_;
  stack_.clear();
  stack_.push_back(g);
  while (!stack_.empty()) {
    const int x = stack_.back();
    stack_.pop_back();
    for (int fo : net_->gate(x).fanouts) {
      const std::size_t fi = static_cast<std::size_t>(fo);
      if (cone_stamp_[fi] == cone_epoch_ || rank_[fi] >= max_rank) continue;
      cone_stamp_[fi] = cone_epoch_;
      stack_.push_back(fo);
    }
  }
}

bool FaultAnalyzer::push_dominator_conditions(int g) {
  chain_.clear();
  const int exit = net_->num_gates();
  for (int d = idom_[static_cast<std::size_t>(g)]; d != exit;
       d = idom_[static_cast<std::size_t>(d)])
    chain_.push_back(d);
  if (chain_.empty()) return true;
  stamp_cone(g, rank_[static_cast<std::size_t>(chain_.back())]);
  // Depth 0: post the whole condition set and run the closure once —
  // confluence of direct implications makes this verdict-equal to the
  // per-condition drains, which recursive learning still needs.
  const bool batched = learning_depth_ == 0;
  for (int d : chain_) {
    const Gate& dg = net_->gate(d);
    if (dg.type != GateType::And && dg.type != GateType::Or) continue;
    const bool d_nctrl = (dg.type == GateType::And);
    for (const Signal& sp : dg.fanins) {
      if (cone_stamp_[static_cast<std::size_t>(sp.gate)] == cone_epoch_)
        continue;  // carries (or may carry) the fault effect
      const bool v = sp.neg ? !d_nctrl : d_nctrl;
      if (batched ? !eng_.post(sp.gate, v) : !eng_.assign(sp.gate, v))
        return false;
    }
  }
  return batched ? eng_.flush() : true;
}

bool FaultAnalyzer::push_pin_conditions(const Gate& gd, WireRef w,
                                        bool stuck_value) {
  const bool batched = learning_depth_ == 0;
  const auto put = [&](const Signal& s, bool seen_val) {
    const bool v = s.neg ? !seen_val : seen_val;
    return batched ? eng_.post(s.gate, v) : eng_.assign(s.gate, v);
  };
  const Signal& s = gd.fanins[static_cast<std::size_t>(w.pin)];
  if (!put(s, !stuck_value)) return false;
  const bool nctrl_seen = (gd.type == GateType::And);
  for (int p = 0; p < static_cast<int>(gd.fanins.size()); ++p) {
    if (p == w.pin) continue;
    if (!put(gd.fanins[static_cast<std::size_t>(p)], nctrl_seen)) return false;
  }
  return batched ? eng_.flush() : true;
}

bool FaultAnalyzer::untestable(WireRef w, bool stuck_value) {
  OBS_COUNT("atpg.faults", 1);
  OBS_COUNT("rr.onepass.faults", 1);
  OBS_PHASE("atpg.fault");
  if (dirty_) refresh();
  const Gate& gd = net_->gate(w.gate);
  assert(gd.type == GateType::And || gd.type == GateType::Or);
  assert(w.pin >= 0 && w.pin < static_cast<int>(gd.fanins.size()));

  const auto record = [&](bool verdict) {
    if (verdict) OBS_COUNT("atpg.faults.untestable", 1);
    OBS_EVENT(.kind = obs::EventKind::RedundancyTest, .node = w.gate,
              .divisor = w.pin, .a = verdict ? 1 : 0,
              .b = stuck_value ? 1 : 0);
    return verdict;
  };

  if (!reach_[static_cast<std::size_t>(w.gate)]) return record(true);

  if (learning_depth_ == 0) {
    // Dominator conditions depend only on the gate: push them once, keep
    // them on the trail and test each pin/polarity above the mark.
    // Verdict-equal to the legacy activation-first order because direct
    // implication closure is confluent.
    if (region_gate_ != w.gate) {
      eng_.rewind_to(0);
      region_gate_ = w.gate;
      region_ok_ = push_dominator_conditions(w.gate);
      if (!region_ok_) eng_.rewind_to(0);
      region_mark_ = eng_.trail_mark();
    } else {
      OBS_COUNT("rr.onepass.region_reuse", 1);
    }
    if (!region_ok_) return record(true);
    const bool ok = push_pin_conditions(gd, w, stuck_value);
    eng_.rewind_to(region_mark_);
    return record(!ok);
  }

  // Recursive learning runs after every assignment, so the verdict may
  // depend on assignment order: replicate analyze_fault's exact sequence
  // (activation, side inputs, dominator side inputs).
  eng_.rewind_to(0);
  bool ok = push_pin_conditions(gd, w, stuck_value);
  if (ok) ok = push_dominator_conditions(w.gate);
  eng_.rewind_to(0);
  return record(!ok);
}

}  // namespace rarsub
