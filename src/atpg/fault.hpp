#pragma once
// Stuck-at fault analysis by static implication of necessary detection
// conditions (activation + non-controlling side inputs of every
// propagation dominator). A conflict proves the fault untestable, i.e. the
// wire redundant — the removal half of the paper's RAR machinery.

#include <vector>

#include "atpg/implication.hpp"
#include "gatenet/gatenet.hpp"

namespace rarsub {

struct FaultResult {
  /// Necessary conditions conflict: the fault is untestable, the wire may
  /// be replaced by its stuck value.
  bool untestable = false;
  /// No structural path from the fault site to any observable output
  /// (implies untestable).
  bool unobservable = false;
  /// Final implication values (good-machine necessary values); the vote
  /// table of extended division reads the divisor-cube entries from here.
  std::vector<TV> values;
};

/// Gates through which every path from `g` to an observable output passes
/// (excluding `g` itself), in topological order. Empty when `g` is itself
/// observable.
std::vector<int> propagation_dominators(const GateNet& net, int g);

/// Analyze the stuck-at-`stuck_value` fault on wire `w` (an input pin).
/// `learning_depth` > 0 enables recursive learning in the implications
/// (the paper's "more time ... to incorporate a large amount of internal
/// don't cares").
FaultResult analyze_fault(const GateNet& net, WireRef w, bool stuck_value,
                          int learning_depth = 0);

/// The stuck value whose untestability lets us delete the pin outright:
/// the non-controlling value of the gate (AND input stuck-at-1, OR input
/// stuck-at-0).
bool removal_stuck_value(GateType t);

}  // namespace rarsub
