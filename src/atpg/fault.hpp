#pragma once
// Stuck-at fault analysis by static implication of necessary detection
// conditions (activation + non-controlling side inputs of every
// propagation dominator). A conflict proves the fault untestable, i.e. the
// wire redundant — the removal half of the paper's RAR machinery.

#include <vector>

#include "atpg/implication.hpp"
#include "gatenet/gatenet.hpp"

namespace rarsub {

struct FaultResult {
  /// Necessary conditions conflict: the fault is untestable, the wire may
  /// be replaced by its stuck value.
  bool untestable = false;
  /// No structural path from the fault site to any observable output
  /// (implies untestable).
  bool unobservable = false;
  /// Final implication values (good-machine necessary values); the vote
  /// table of extended division reads the divisor-cube entries from here.
  std::vector<TV> values;
};

/// Gates through which every path from `g` to an observable output passes
/// (excluding `g` itself), in topological order. Empty when `g` is itself
/// observable.
std::vector<int> propagation_dominators(const GateNet& net, int g);

/// Analyze the stuck-at-`stuck_value` fault on wire `w` (an input pin).
/// `learning_depth` > 0 enables recursive learning in the implications
/// (the paper's "more time ... to incorporate a large amount of internal
/// don't cares").
FaultResult analyze_fault(const GateNet& net, WireRef w, bool stuck_value,
                          int learning_depth = 0);

/// The stuck value whose untestability lets us delete the pin outright:
/// the non-controlling value of the gate (AND input stuck-at-1, OR input
/// stuck-at-0).
bool removal_stuck_value(GateType t);

/// Persistent fault analyzer for the one-pass redundancy remover
/// (Teslenko & Dubrova's heuristic, PAPERS.md): instead of paying a fresh
/// implication engine, an O(gates) reachability DFS and cone-local
/// post-dominator bitsets per wire, it keeps
///   - one trail-mode ImplicationEngine alive for the whole sweep
///     (per-fault cost is O(implied values), not O(gates)),
///   - a global post-dominator tree (idom per gate, single reverse-topo
///     Cooper-Harvey-Kennedy pass) whose ancestor chain *is*
///     propagation_dominators(g) in the same order,
///   - an epoch-stamped fanout-cone DFS pruned at the last dominator's
///     topological rank (the Teslenko-Dubrova "region"),
///   - shared dominator mandatory assignments across the pins and both
///     fault polarities of one gate (sound at learning depth 0 because
///     direct implication closure is confluent).
/// Structural edits are fed back through the journal hooks; verdicts are
/// exactly those of analyze_fault() on the current net, which is what
/// makes the one-pass sweep byte-identical to the legacy loop.
class FaultAnalyzer {
 public:
  explicit FaultAnalyzer(const GateNet& net, int learning_depth = 0,
                         int implication_budget = 0);

  /// Verdict of analyze_fault(net, w, stuck_value, learning_depth), with
  /// the same ledger record and untestability counters.
  bool untestable(WireRef w, bool stuck_value);

  /// Journal hooks: call right after the corresponding GateNet mutation so
  /// the engine base values and the dominator structures stay exact.
  /// `source` is the gate that fed the removed pin (`WireKey::src`); for
  /// make_const pass the gate's fanins as captured before the mutation.
  /// Only the sources' fanout sets change, so the dominator tree is
  /// repaired by a worklist walk seeded there instead of a full rebuild.
  void note_remove_fanin(int gate, int source);
  void note_make_const(int gate, const std::vector<Signal>& former_fanins);

 private:
  void rebuild();
  void refresh();
  bool push_dominator_conditions(int g);
  bool push_pin_conditions(const Gate& gd, WireRef w, bool stuck_value);
  void stamp_cone(int g, int max_rank);

  const GateNet* net_;
  int learning_depth_;
  ImplicationEngine eng_;
  // rank_ is computed once: the sweep only ever deletes edges, so a topo
  // numbering of the initial net stays strictly increasing along every
  // surviving edge — which is all the pruning and intersect walks need.
  std::vector<int> rank_;       ///< topological rank, stable for the sweep
  std::vector<char> observable_;  ///< primary-output gates (never changes)
  std::vector<char> reach_;     ///< reaches an observable output
  std::vector<int> idom_;       ///< immediate post-dominator; num_gates()=exit
  std::vector<int> cone_stamp_;
  std::vector<int> chain_;      ///< dominator chain scratch
  std::vector<int> stack_;      ///< DFS scratch
  std::vector<int> pending_;    ///< sources whose fanout set changed
  std::vector<int> work_stamp_;  ///< worklist dedupe, epoch per refresh
  int work_epoch_ = 0;
  int cone_epoch_ = 0;
  bool dirty_ = true;
  bool built_ = false;
  // Region sharing (learning depth 0): dominator conditions of this gate
  // are on the trail below region_mark_.
  int region_gate_ = -1;
  bool region_ok_ = false;
  std::size_t region_mark_ = 0;
};

}  // namespace rarsub
