#include "atpg/implication.hpp"

#include <cassert>

#include "obs/obs.hpp"

namespace rarsub {

ImplicationEngine::ImplicationEngine(const GateNet& net, int learning_depth)
    : net_(&net), learning_depth_(learning_depth) {
  reset();
}

void ImplicationEngine::reset() {
  val_.assign(static_cast<std::size_t>(net_->num_gates()), TV::X);
  queued_.assign(static_cast<std::size_t>(net_->num_gates()), false);
  queue_.clear();
  trail_.clear();
  conflict_ = false;
  // Constants and degenerate gates have fixed values from the start.
  for (int g = 0; g < net_->num_gates(); ++g) {
    const Gate& gd = net_->gate(g);
    switch (gd.type) {
      case GateType::Const0: val_[static_cast<std::size_t>(g)] = TV::Zero; break;
      case GateType::Const1: val_[static_cast<std::size_t>(g)] = TV::One; break;
      case GateType::And:
        if (gd.fanins.empty()) val_[static_cast<std::size_t>(g)] = TV::One;
        break;
      case GateType::Or:
        if (gd.fanins.empty()) val_[static_cast<std::size_t>(g)] = TV::Zero;
        break;
      case GateType::PI: break;
    }
  }
}

bool ImplicationEngine::set_value(int g, TV v) {
  assert(v != TV::X);
  TV& cur = val_[static_cast<std::size_t>(g)];
  if (cur == v) return true;
  if (cur != TV::X) {
    conflict_ = true;
    OBS_COUNT("atpg.conflicts", 1);
    return false;
  }
  cur = v;
  if (trail_on_) trail_.push_back(g);  // cur was X: rewind restores X
  // Re-examine this gate (backward rules) and its fanouts (forward rules).
  auto enqueue = [&](int x) {
    if (!queued_[static_cast<std::size_t>(x)]) {
      queued_[static_cast<std::size_t>(x)] = true;
      queue_.push_back(x);
    }
  };
  enqueue(g);
  for (int fo : net_->gate(g).fanouts) enqueue(fo);
  return true;
}

bool ImplicationEngine::set_seen(const Signal& s, TV v) {
  return set_value(s.gate, s.neg ? tv_neg(v) : v);
}

void ImplicationEngine::rewind_to(std::size_t mark) {
  assert(trail_on_);
  while (trail_.size() > mark) {
    val_[static_cast<std::size_t>(trail_.back())] = TV::X;
    trail_.pop_back();
  }
  for (int g : queue_) queued_[static_cast<std::size_t>(g)] = false;
  queue_.clear();
  conflict_ = false;
}

void ImplicationEngine::rebase(int g) {
  assert(trail_.empty());
  const Gate& gd = net_->gate(g);
  TV v = TV::X;
  switch (gd.type) {
    case GateType::Const0: v = TV::Zero; break;
    case GateType::Const1: v = TV::One; break;
    case GateType::And:
      if (gd.fanins.empty()) v = TV::One;
      break;
    case GateType::Or:
      if (gd.fanins.empty()) v = TV::Zero;
      break;
    case GateType::PI: break;
  }
  val_[static_cast<std::size_t>(g)] = v;
}

bool ImplicationEngine::imply_gate(int g) {
  const Gate& gd = net_->gate(g);
  if (gd.type != GateType::And && gd.type != GateType::Or) return true;
  // Uniform view: for AND the controlling seen-value is 0, for OR it is 1.
  const TV ctrl = (gd.type == GateType::And) ? TV::Zero : TV::One;
  const TV nctrl = tv_neg(ctrl);
  // Output value when some input is controlling / all are non-controlling.
  const TV out_ctrl = ctrl;    // AND: 0 -> 0; OR: 1 -> 1
  const TV out_nctrl = nctrl;  // AND: all 1 -> 1; OR: all 0 -> 0

  int n_ctrl = 0, n_x = 0;
  const Signal* last_x = nullptr;
  for (const Signal& s : gd.fanins) {
    const TV v = seen(s);
    if (v == ctrl) ++n_ctrl;
    else if (v == TV::X) {
      ++n_x;
      last_x = &s;
    }
  }

  // Forward implications.
  if (n_ctrl > 0) {
    if (!set_value(g, out_ctrl)) return false;
  } else if (n_x == 0 && !gd.fanins.empty()) {
    if (!set_value(g, out_nctrl)) return false;
  }

  // Backward implications.
  const TV out = val_[static_cast<std::size_t>(g)];
  if (out == out_nctrl) {
    // Every input must be non-controlling.
    for (const Signal& s : gd.fanins)
      if (!set_seen(s, nctrl)) return false;
  } else if (out == out_ctrl && n_ctrl == 0) {
    if (n_x == 0) {
      conflict_ = true;  // output demands a controlling input; none possible
      OBS_COUNT("atpg.conflicts", 1);
      return false;
    }
    if (n_x == 1) {
      if (!set_seen(*last_x, ctrl)) return false;
    }
  }
  return true;
}

bool ImplicationEngine::propagate() {
  // Clock-free phase marker: same hot-path reasoning as the batched
  // counter below, a scoped timer's steady_clock reads would show up.
  OBS_PHASE("atpg.implication");
  // Counted in one batch per drain: the pop loop is the engine's hottest
  // path, one atomic per gate visit would be measurable.
  int visits = 0;
  bool ok = true;
  // FIFO drain: a gate enqueued by several neighbours is examined once
  // after all of them settled instead of once per trigger. Any drain order
  // reaches the same closure (direct implications are confluent), so this
  // is a pure visit-count optimization — breadth-first roughly halves the
  // re-examinations a depth-first stack pays on reconvergent fanout.
  std::size_t head = 0;
  while (head < queue_.size()) {
    if (visit_budget_ > 0 && visits >= visit_budget_) {
      // Budget exhausted: drop the pending frontier. The values already
      // derived stay valid necessary assignments; we just stop looking
      // for more (and for the conflicts they might have exposed).
      OBS_COUNT("atpg.implications.truncated", 1);
      break;
    }
    const int g = queue_[head++];
    queued_[static_cast<std::size_t>(g)] = false;
    ++visits;
    if (!imply_gate(g)) {
      ok = false;
      break;
    }
  }
  for (std::size_t i = head; i < queue_.size(); ++i)
    queued_[static_cast<std::size_t>(queue_[i])] = false;
  queue_.clear();
  OBS_COUNT("atpg.implications", visits);
  if (!ok) return false;
  if (learning_depth_ > 0) {
    if (!learn_pass()) return false;
    // learn_pass re-queues on success; drain if anything was learned.
    if (!queue_.empty()) return propagate();
  }
  return true;
}

bool ImplicationEngine::learn_pass() {
  // Bounded recursive learning (Kunz–Pradhan style): case-split on each
  // unjustified gate, run direct implications in each branch, and keep the
  // values common to all non-conflicting branches.
  constexpr int kMaxSplits = 48;
  OBS_COUNT("atpg.learn.passes", 1);
  int splits = 0;
  for (int g = 0; g < net_->num_gates() && splits < kMaxSplits; ++g) {
    const Gate& gd = net_->gate(g);
    if (gd.type != GateType::And && gd.type != GateType::Or) continue;
    const TV ctrl = (gd.type == GateType::And) ? TV::Zero : TV::One;
    if (val_[static_cast<std::size_t>(g)] != ctrl) continue;
    // Unjustified: output at controlling value, no input controlling yet,
    // two or more X inputs to choose from.
    int n_ctrl = 0, n_x = 0;
    for (const Signal& s : gd.fanins) {
      const TV v = seen(s);
      if (v == ctrl) ++n_ctrl;
      else if (v == TV::X) ++n_x;
    }
    if (n_ctrl > 0 || n_x < 2) continue;
    ++splits;
    OBS_COUNT("atpg.learn.splits", 1);

    std::vector<TV> common;
    bool first = true;
    bool all_conflict = true;
    for (const Signal& s : gd.fanins) {
      if (seen(s) != TV::X) continue;
      ImplicationEngine branch = *this;
      branch.learning_depth_ = learning_depth_ - 1;
      if (!branch.set_seen(s, ctrl) || !branch.propagate()) continue;
      all_conflict = false;
      if (first) {
        common = branch.val_;
        first = false;
      } else {
        for (std::size_t i = 0; i < common.size(); ++i)
          if (common[i] != branch.val_[i]) common[i] = TV::X;
      }
    }
    if (all_conflict) {
      conflict_ = true;
      OBS_COUNT("atpg.conflicts", 1);
      return false;
    }
    for (std::size_t i = 0; i < common.size(); ++i) {
      if (common[i] != TV::X && val_[i] == TV::X) {
        if (!set_value(static_cast<int>(i), common[i])) return false;
      }
    }
    if (!queue_.empty()) return true;  // let the caller re-propagate
  }
  return true;
}

bool ImplicationEngine::assign(int g, bool v) {
  OBS_COUNT("atpg.assigns", 1);
  if (conflict_) return false;
  if (!set_value(g, tv_of(v))) return false;
  return propagate();
}

bool ImplicationEngine::post(int g, bool v) {
  OBS_COUNT("atpg.assigns", 1);
  assert(learning_depth_ == 0);
  if (conflict_) return false;
  return set_value(g, tv_of(v));
}

bool ImplicationEngine::flush() {
  if (conflict_) return false;
  return propagate();
}

}  // namespace rarsub
