#pragma once
// Three-valued implication engine over a GateNet: assignment, worklist
// closure of direct forward/backward implications, and conflict detection.
//
// This is the paper's workhorse. Redundancy of a wire is decided by
// implying the necessary conditions of its stuck-at fault (activation +
// non-controlling side inputs of every dominator) and watching for a
// conflict (Sec. III-B walkthrough: "a conflict during the implication
// process means the fault ... is untestable"). The engine computes
// *necessary* implications only, so a conflict soundly proves
// untestability; absence of a conflict proves nothing — exactly the
// asymmetry redundancy *removal* needs.
//
// The paper points out that the implication effort is a dial ("with
// different implication methods we can actually adjust the tradeoff
// between the run time and the quality of result"): `max_level` bounds how
// deep optional recursive-learning case splits go (0 = direct implications
// only, 1 = the depth-1 learning used by the ext+GDC configuration).

#include <cstdint>
#include <vector>

#include "gatenet/gatenet.hpp"

namespace rarsub {

enum class TV : std::uint8_t { X = 0, Zero = 1, One = 2 };

inline TV tv_of(bool b) { return b ? TV::One : TV::Zero; }
inline TV tv_neg(TV v) {
  if (v == TV::X) return TV::X;
  return v == TV::One ? TV::Zero : TV::One;
}

class ImplicationEngine {
 public:
  explicit ImplicationEngine(const GateNet& net, int learning_depth = 0);

  /// Forget all assignments.
  void reset();

  /// Assign gate `g` the value `v` and run implications to closure.
  /// Returns false if a conflict was reached (engine stays in conflict
  /// state until reset()).
  bool assign(int g, bool v);

  bool in_conflict() const { return conflict_; }
  TV value(int g) const { return val_[static_cast<std::size_t>(g)]; }
  const std::vector<TV>& values() const { return val_; }

 private:
  /// Value of signal s as seen through its optional inversion.
  TV seen(const Signal& s) const {
    const TV v = val_[static_cast<std::size_t>(s.gate)];
    return s.neg ? tv_neg(v) : v;
  }

  bool set_value(int g, TV v);          // records + enqueues; false on conflict
  bool set_seen(const Signal& s, TV v); // assign through edge polarity
  bool propagate();                     // drain the worklist
  bool imply_gate(int g);               // direct rules at one gate
  bool learn_pass();                    // bounded recursive learning

  const GateNet* net_;
  int learning_depth_;
  std::vector<TV> val_;
  std::vector<int> queue_;
  std::vector<bool> queued_;
  bool conflict_ = false;
};

}  // namespace rarsub
