#pragma once
// Three-valued implication engine over a GateNet: assignment, worklist
// closure of direct forward/backward implications, and conflict detection.
//
// This is the paper's workhorse. Redundancy of a wire is decided by
// implying the necessary conditions of its stuck-at fault (activation +
// non-controlling side inputs of every dominator) and watching for a
// conflict (Sec. III-B walkthrough: "a conflict during the implication
// process means the fault ... is untestable"). The engine computes
// *necessary* implications only, so a conflict soundly proves
// untestability; absence of a conflict proves nothing — exactly the
// asymmetry redundancy *removal* needs.
//
// The paper points out that the implication effort is a dial ("with
// different implication methods we can actually adjust the tradeoff
// between the run time and the quality of result"): `max_level` bounds how
// deep optional recursive-learning case splits go (0 = direct implications
// only, 1 = the depth-1 learning used by the ext+GDC configuration).

#include <cstdint>
#include <vector>

#include "gatenet/gatenet.hpp"

namespace rarsub {

enum class TV : std::uint8_t { X = 0, Zero = 1, One = 2 };

inline TV tv_of(bool b) { return b ? TV::One : TV::Zero; }
inline TV tv_neg(TV v) {
  if (v == TV::X) return TV::X;
  return v == TV::One ? TV::Zero : TV::One;
}

class ImplicationEngine {
 public:
  explicit ImplicationEngine(const GateNet& net, int learning_depth = 0);

  /// Forget all assignments.
  void reset();

  /// Assign gate `g` the value `v` and run implications to closure.
  /// Returns false if a conflict was reached (engine stays in conflict
  /// state until reset()).
  bool assign(int g, bool v);

  /// Batched assignment: set the value and enqueue, but leave the closure
  /// to a later flush(). Direct implications are confluent, so posting a
  /// whole condition set and flushing once reaches the same closure (and
  /// the same conflict verdict) as assign() per condition — minus the
  /// repeated drains over overlapping cascades. Only sound at learning
  /// depth 0: recursive learning is order-sensitive by design.
  bool post(int g, bool v);
  bool flush();

  /// Implication-effort dial (the paper: "with different implication
  /// methods we can actually adjust the tradeoff between the run time and
  /// the quality of result"): cap the gate visits of each closure drain.
  /// A truncated drain simply stops deriving necessary assignments — any
  /// conflict already found stands, later ones are missed — so verdicts
  /// stay sound (a missed conflict keeps a removable wire, never removes
  /// an irremovable one) and per-fault cost becomes O(budget) instead of
  /// O(circuit). 0 = unlimited (the exact default everywhere but the
  /// large workload tier).
  void set_visit_budget(int budget) { visit_budget_ = budget; }

  /// Trail mode: every value set after this point is recorded so it can be
  /// undone in O(assignments) by rewind_to(), instead of the O(gates)
  /// reset(). The one-pass redundancy remover keeps one engine alive for a
  /// whole sweep this way.
  void set_trail(bool on) { trail_on_ = on; }
  std::size_t trail_mark() const { return trail_.size(); }

  /// Undo every recorded assignment above `mark` (back to X), drop the
  /// pending worklist and clear any conflict. Only valid in trail mode.
  void rewind_to(std::size_t mark);

  /// Recompute the reset()-time base value of `g` after a structural edit
  /// (pin removal emptying a gate, constant-ization). Requires an empty
  /// trail: base values are below every mark.
  void rebase(int g);

  bool in_conflict() const { return conflict_; }
  TV value(int g) const { return val_[static_cast<std::size_t>(g)]; }
  const std::vector<TV>& values() const { return val_; }

 private:
  /// Value of signal s as seen through its optional inversion.
  TV seen(const Signal& s) const {
    const TV v = val_[static_cast<std::size_t>(s.gate)];
    return s.neg ? tv_neg(v) : v;
  }

  bool set_value(int g, TV v);          // records + enqueues; false on conflict
  bool set_seen(const Signal& s, TV v); // assign through edge polarity
  bool propagate();                     // drain the worklist
  bool imply_gate(int g);               // direct rules at one gate
  bool learn_pass();                    // bounded recursive learning

  const GateNet* net_;
  int learning_depth_;
  std::vector<TV> val_;
  std::vector<int> queue_;
  std::vector<bool> queued_;
  std::vector<int> trail_;  ///< gates whose value was set (was X before)
  int visit_budget_ = 0;    ///< max visits per drain; 0 = unlimited
  bool trail_on_ = false;
  bool conflict_ = false;
};

}  // namespace rarsub
