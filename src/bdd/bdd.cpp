#include "bdd/bdd.hpp"

#include <cassert>
#include <cmath>

namespace rarsub {

BddManager::BddManager(int num_vars) : num_vars_(num_vars) {
  // Node 0 = constant 0, node 1 = constant 1; terminals sit below all vars.
  nodes_.push_back(Node{num_vars_, 0, 0});
  nodes_.push_back(Node{num_vars_, 1, 1});
}

BddRef BddManager::mk(int var, BddRef low, BddRef high) {
  if (low == high) return low;
  const NodeKey key{var, low, high};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  nodes_.push_back(Node{var, low, high});
  const BddRef r = static_cast<BddRef>(nodes_.size() - 1);
  unique_.emplace(key, r);
  return r;
}

BddRef BddManager::var(int v) {
  assert(v >= 0 && v < num_vars_);
  return mk(v, zero(), one());
}

BddRef BddManager::nvar(int v) {
  assert(v >= 0 && v < num_vars_);
  return mk(v, one(), zero());
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == one()) return g;
  if (f == zero()) return h;
  if (g == h) return g;
  if (g == one() && h == zero()) return f;

  const IteKey key{f, g, h};
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const int v = std::min({top_var(f), top_var(g), top_var(h)});
  auto cof = [&](BddRef x, bool val) {
    if (top_var(x) != v) return x;
    return val ? nodes_[x].high : nodes_[x].low;
  };
  const BddRef lo = ite(cof(f, false), cof(g, false), cof(h, false));
  const BddRef hi = ite(cof(f, true), cof(g, true), cof(h, true));
  const BddRef r = mk(v, lo, hi);
  ite_cache_.emplace(key, r);
  return r;
}

BddRef BddManager::bdd_xor(BddRef f, BddRef g) { return ite(f, bdd_not(g), g); }

BddRef BddManager::restrict_var(BddRef f, int v, bool value) {
  if (top_var(f) > v) return f;
  if (top_var(f) == v) return value ? nodes_[f].high : nodes_[f].low;
  // top_var(f) < v: rebuild children.
  const int tv = top_var(f);
  return mk(tv, restrict_var(nodes_[f].low, v, value),
            restrict_var(nodes_[f].high, v, value));
}

BddRef BddManager::exists(BddRef f, int v) {
  return bdd_or(restrict_var(f, v, false), restrict_var(f, v, true));
}

BddRef BddManager::constrain(BddRef f, BddRef c) {
  assert(c != zero());  // constrain by 0 is undefined
  if (c == one() || f == zero() || f == one()) return f;
  if (f == c) return one();

  const IteKey key{f, c, 0xFFFFFFFFu};
  auto it = constrain_cache_.find(key);
  if (it != constrain_cache_.end()) return it->second;

  const int v = std::min(top_var(f), top_var(c));
  auto cof = [&](BddRef x, bool val) {
    if (top_var(x) != v) return x;
    return val ? nodes_[x].high : nodes_[x].low;
  };
  const BddRef c0 = cof(c, false), c1 = cof(c, true);
  BddRef r;
  if (c0 == zero()) {
    r = constrain(cof(f, true), c1);
  } else if (c1 == zero()) {
    r = constrain(cof(f, false), c0);
  } else {
    r = mk(v, constrain(cof(f, false), c0), constrain(cof(f, true), c1));
  }
  constrain_cache_.emplace(key, r);
  return r;
}

BddRef BddManager::from_sop(const Sop& f) {
  assert(f.num_vars() <= num_vars_);
  BddRef acc = zero();
  for (const Cube& c : f.cubes()) {
    if (c.is_empty()) continue;
    BddRef cube = one();
    for (int v = f.num_vars() - 1; v >= 0; --v) {
      const Lit l = c.lit(v);
      if (l == Lit::Pos) cube = bdd_and(var(v), cube);
      if (l == Lit::Neg) cube = bdd_and(nvar(v), cube);
    }
    acc = bdd_or(acc, cube);
  }
  return acc;
}

Sop BddManager::to_sop(BddRef f) {
  Sop out(num_vars_);
  if (f == zero()) return out;
  // DFS over 1-paths.
  std::vector<std::pair<BddRef, Cube>> stack;
  stack.emplace_back(f, Cube(num_vars_));
  while (!stack.empty()) {
    auto [node, path] = stack.back();
    stack.pop_back();
    if (node == zero()) continue;
    if (node == one()) {
      out.add_cube(path);
      continue;
    }
    const int v = top_var(node);
    Cube lo = path, hi = path;
    lo.set_lit(v, Lit::Neg);
    hi.set_lit(v, Lit::Pos);
    stack.emplace_back(nodes_[node].low, std::move(lo));
    stack.emplace_back(nodes_[node].high, std::move(hi));
  }
  out.scc_minimize();
  return out;
}

double BddManager::count_minterms(BddRef f) {
  if (f == zero()) return 0.0;
  std::unordered_map<BddRef, double> memo;
  // Fraction-of-space count, then scale.
  auto rec = [&](auto&& self, BddRef n) -> double {
    if (n == zero()) return 0.0;
    if (n == one()) return 1.0;
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const double r =
        0.5 * self(self, nodes_[n].low) + 0.5 * self(self, nodes_[n].high);
    memo.emplace(n, r);
    return r;
  };
  return rec(rec, f) * std::pow(2.0, num_vars_);
}

bool BddManager::eval(BddRef f, std::uint64_t assignment) const {
  while (f != zero() && f != one()) {
    const int v = nodes_[f].var;
    f = ((assignment >> v) & 1) ? nodes_[f].high : nodes_[f].low;
  }
  return f == one();
}

}  // namespace rarsub
