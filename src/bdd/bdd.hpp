#pragma once
// A compact ROBDD package: unique table, ITE with memoization, restrict,
// compose, and the generalized cofactor (constrain) operator needed by the
// Stanion–Sechen BDD division baseline [14] and by the verification module.
//
// Complemented edges are not used; the node count stays small for the
// node-local functions this project manipulates (tens of variables).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sop/sop.hpp"

namespace rarsub {

/// Handle to a BDD node owned by a BddManager.
using BddRef = std::uint32_t;

class BddManager {
 public:
  explicit BddManager(int num_vars);

  int num_vars() const { return num_vars_; }

  BddRef zero() const { return 0; }
  BddRef one() const { return 1; }

  /// The projection function of variable v (ordered by index).
  BddRef var(int v);
  BddRef nvar(int v);

  BddRef ite(BddRef f, BddRef g, BddRef h);
  BddRef bdd_and(BddRef f, BddRef g) { return ite(f, g, zero()); }
  BddRef bdd_or(BddRef f, BddRef g) { return ite(f, one(), g); }
  BddRef bdd_xor(BddRef f, BddRef g);
  BddRef bdd_not(BddRef f) { return ite(f, zero(), one()); }

  /// Shannon cofactor w.r.t. var v = value.
  BddRef restrict_var(BddRef f, int v, bool value);

  /// Existential quantification of variable v.
  BddRef exists(BddRef f, int v);

  /// Generalized cofactor (constrain): f ⇓ c. Agrees with f wherever c=1.
  /// The identity behind BDD division [14]: f = c·(f ⇓ c) + c'·(f ⇓ c').
  BddRef constrain(BddRef f, BddRef c);

  /// Build a BDD from an SOP cover (variable i of the cover = BDD var i).
  BddRef from_sop(const Sop& f);

  /// Enumerate an irredundant(ish) SOP from the BDD (one cube per 1-path).
  Sop to_sop(BddRef f);

  /// Number of minterms over the full variable space (as double).
  double count_minterms(BddRef f);

  bool eval(BddRef f, std::uint64_t assignment) const;

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    int var;      // variable index; num_vars_ for terminals
    BddRef low;   // cofactor var=0
    BddRef high;  // cofactor var=1
  };

  struct NodeKey {
    int var;
    BddRef low, high;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::size_t h = static_cast<std::size_t>(k.var);
      h = h * 0x9e3779b97f4a7c15ULL + k.low;
      h = h * 0x9e3779b97f4a7c15ULL + k.high;
      return h;
    }
  };
  struct IteKey {
    BddRef f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::size_t h = k.f;
      h = h * 0x100000001b3ULL + k.g;
      h = h * 0x100000001b3ULL + k.h;
      return h;
    }
  };

  BddRef mk(int var, BddRef low, BddRef high);
  int top_var(BddRef f) const { return nodes_[f].var; }

  int num_vars_;
  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, BddRef, NodeKeyHash> unique_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> ite_cache_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> constrain_cache_;
};

}  // namespace rarsub
