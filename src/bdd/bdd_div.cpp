#include "bdd/bdd_div.hpp"

namespace rarsub {

BddDivResult bdd_divide(const Sop& f, const Sop& d) {
  BddDivResult res;
  BddManager mgr(f.num_vars());
  const BddRef fb = mgr.from_sop(f);
  const BddRef db = mgr.from_sop(d);
  if (db == mgr.zero() || db == mgr.one()) return res;  // constant divisor

  const BddRef q = mgr.constrain(fb, db);
  const BddRef nd = mgr.bdd_not(db);
  const BddRef r = mgr.bdd_and(nd, mgr.constrain(fb, nd));

  res.success = true;
  res.quotient = mgr.to_sop(q);
  res.remainder = mgr.to_sop(r);
  return res;
}

}  // namespace rarsub
