#pragma once
// BDD-based Boolean division (Stanion & Sechen, TCAD'94 — reference [14] of
// the paper). Built on the generalized-cofactor identity
//   f = d·(f ⇓ d) + d'·(f ⇓ d')
// so that, viewing f divided by d, the quotient is q = f ⇓ d and the
// remainder is r = d'·(f ⇓ d'). Implemented as a comparison baseline for
// the paper's RAR-based division.

#include "bdd/bdd.hpp"
#include "sop/sop.hpp"

namespace rarsub {

struct BddDivResult {
  bool success = false;
  Sop quotient;
  Sop remainder;
};

/// Divide `f` by `d` (both covers over the same variable space) using
/// generalized cofactors. Fails when d is constant.
BddDivResult bdd_divide(const Sop& f, const Sop& d);

}  // namespace rarsub
