#include "benchcir/classics.hpp"

#include <bit>
#include <cassert>
#include <string>

namespace rarsub {

namespace {

// Helpers for two-input building blocks.
NodeId nand2(Network& net, const std::string& name, NodeId a, NodeId b) {
  return net.add_node(name, {a, b}, Sop::from_strings({"0-", "-0"}));
}
NodeId and2(Network& net, const std::string& name, NodeId a, NodeId b) {
  return net.add_node(name, {a, b}, Sop::from_strings({"11"}));
}
NodeId or2(Network& net, const std::string& name, NodeId a, NodeId b) {
  return net.add_node(name, {a, b}, Sop::from_strings({"1-", "-1"}));
}
NodeId xor2(Network& net, const std::string& name, NodeId a, NodeId b) {
  return net.add_node(name, {a, b}, Sop::from_strings({"10", "01"}));
}

}  // namespace

Network make_c17() {
  Network net("c17");
  const NodeId n1 = net.add_pi("1");
  const NodeId n2 = net.add_pi("2");
  const NodeId n3 = net.add_pi("3");
  const NodeId n6 = net.add_pi("6");
  const NodeId n7 = net.add_pi("7");
  const NodeId g10 = nand2(net, "10", n1, n3);
  const NodeId g11 = nand2(net, "11", n3, n6);
  const NodeId g16 = nand2(net, "16", n2, g11);
  const NodeId g19 = nand2(net, "19", g11, n7);
  const NodeId g22 = nand2(net, "22", g10, g16);
  const NodeId g23 = nand2(net, "23", g16, g19);
  net.add_po("22", g22);
  net.add_po("23", g23);
  return net;
}

Network make_adder(int bits) {
  Network net("add" + std::to_string(bits));
  std::vector<NodeId> a(static_cast<std::size_t>(bits)),
      b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = net.add_pi("a" + std::to_string(i));
  for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = net.add_pi("b" + std::to_string(i));
  NodeId carry = kNoNode;
  for (int i = 0; i < bits; ++i) {
    const NodeId ai = a[static_cast<std::size_t>(i)];
    const NodeId bi = b[static_cast<std::size_t>(i)];
    const std::string s = std::to_string(i);
    if (carry == kNoNode) {
      net.add_po("s" + s, xor2(net, "sum" + s, ai, bi));
      carry = and2(net, "c" + s, ai, bi);
    } else {
      const NodeId axb = xor2(net, "axb" + s, ai, bi);
      net.add_po("s" + s, xor2(net, "sum" + s, axb, carry));
      // carry_out = ab + carry(a ^ b)
      const NodeId ab = and2(net, "ab" + s, ai, bi);
      const NodeId cx = and2(net, "cx" + s, carry, axb);
      carry = or2(net, "c" + s, ab, cx);
    }
  }
  net.add_po("cout", carry);
  return net;
}

Network make_parity(int bits) {
  Network net("parity" + std::to_string(bits));
  std::vector<NodeId> layer;
  for (int i = 0; i < bits; ++i) layer.push_back(net.add_pi("x" + std::to_string(i)));
  int id = 0;
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(xor2(net, "p" + std::to_string(id++), layer[i], layer[i + 1]));
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  net.add_po("parity", layer[0]);
  return net;
}

Network make_majority(int bits) {
  assert(bits % 2 == 1 && bits <= 16);
  Network net("maj" + std::to_string(bits));
  std::vector<NodeId> pis;
  for (int i = 0; i < bits; ++i) pis.push_back(net.add_pi("x" + std::to_string(i)));
  Sop func(bits);
  // All cubes with (bits+1)/2 positive literals.
  const int need = (bits + 1) / 2;
  for (unsigned mask = 0; mask < (1u << bits); ++mask) {
    if (std::popcount(mask) != need) continue;
    Cube c(bits);
    for (int v = 0; v < bits; ++v)
      if ((mask >> v) & 1) c.set_lit(v, Lit::Pos);
    func.add_cube(c);
  }
  net.add_po("maj", net.add_node("maj", pis, func));
  return net;
}

Network make_sym_threshold(int bits, int lo, int hi) {
  assert(bits <= 12);
  Network net("sym" + std::to_string(bits));
  std::vector<NodeId> pis;
  for (int i = 0; i < bits; ++i) pis.push_back(net.add_pi("x" + std::to_string(i)));
  // Build as a small tree of one-hot "count" logic: layer of half adders is
  // overkill; use the flat minterm cover and let the scripts restructure.
  Sop func(bits);
  for (unsigned mask = 0; mask < (1u << bits); ++mask) {
    const int ones = std::popcount(mask);
    if (ones < lo || ones > hi) continue;
    Cube c(bits);
    for (int v = 0; v < bits; ++v) c.set_lit(v, ((mask >> v) & 1) ? Lit::Pos : Lit::Neg);
    func.add_cube(c);
  }
  func.scc_minimize();
  net.add_po("f", net.add_node("f", pis, func));
  return net;
}

Network make_decoder(int select_bits) {
  Network net("dec" + std::to_string(select_bits));
  std::vector<NodeId> sel;
  for (int i = 0; i < select_bits; ++i) sel.push_back(net.add_pi("s" + std::to_string(i)));
  for (unsigned out = 0; out < (1u << select_bits); ++out) {
    Sop func(select_bits);
    Cube c(select_bits);
    for (int v = 0; v < select_bits; ++v)
      c.set_lit(v, ((out >> v) & 1) ? Lit::Pos : Lit::Neg);
    func.add_cube(c);
    const std::string name = "y" + std::to_string(out);
    net.add_po(name, net.add_node(name, sel, func));
  }
  return net;
}

Network make_mux(int select_bits) {
  Network net("mux" + std::to_string(select_bits));
  std::vector<NodeId> sel, data;
  for (int i = 0; i < select_bits; ++i) sel.push_back(net.add_pi("s" + std::to_string(i)));
  for (unsigned i = 0; i < (1u << select_bits); ++i)
    data.push_back(net.add_pi("d" + std::to_string(i)));
  const int nv = select_bits + (1 << select_bits);
  std::vector<NodeId> fanins = sel;
  fanins.insert(fanins.end(), data.begin(), data.end());
  Sop func(nv);
  for (unsigned i = 0; i < (1u << select_bits); ++i) {
    Cube c(nv);
    for (int v = 0; v < select_bits; ++v)
      c.set_lit(v, ((i >> v) & 1) ? Lit::Pos : Lit::Neg);
    c.set_lit(select_bits + static_cast<int>(i), Lit::Pos);
    func.add_cube(c);
  }
  net.add_po("y", net.add_node("y", fanins, func));
  return net;
}

Network make_comparator(int bits) {
  Network net("cmp" + std::to_string(bits));
  std::vector<NodeId> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(net.add_pi("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) b.push_back(net.add_pi("b" + std::to_string(i)));
  // eq_i = a_i xnor b_i ; chain from MSB.
  NodeId eq_all = kNoNode, lt = kNoNode, gt = kNoNode;
  for (int i = bits - 1; i >= 0; --i) {
    const std::string s = std::to_string(i);
    const NodeId eq_i = net.add_node("eq" + s, {a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]},
                                     Sop::from_strings({"11", "00"}));
    const NodeId lt_i = net.add_node("lt" + s, {a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]},
                                     Sop::from_strings({"01"}));
    const NodeId gt_i = net.add_node("gt" + s, {a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]},
                                     Sop::from_strings({"10"}));
    if (eq_all == kNoNode) {
      eq_all = eq_i;
      lt = lt_i;
      gt = gt_i;
    } else {
      lt = or2(net, "LT" + s, lt, and2(net, "elt" + s, eq_all, lt_i));
      gt = or2(net, "GT" + s, gt, and2(net, "egt" + s, eq_all, gt_i));
      eq_all = and2(net, "EQ" + s, eq_all, eq_i);
    }
  }
  net.add_po("lt", lt);
  net.add_po("eq", eq_all);
  net.add_po("gt", gt);
  return net;
}

Network make_alu_slice(int bits) {
  Network net("alu" + std::to_string(bits));
  std::vector<NodeId> a, b;
  const NodeId op0 = net.add_pi("op0");
  const NodeId op1 = net.add_pi("op1");
  for (int i = 0; i < bits; ++i) a.push_back(net.add_pi("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) b.push_back(net.add_pi("b" + std::to_string(i)));
  NodeId carry = kNoNode;
  for (int i = 0; i < bits; ++i) {
    const std::string s = std::to_string(i);
    const NodeId ai = a[static_cast<std::size_t>(i)], bi = b[static_cast<std::size_t>(i)];
    const NodeId land = and2(net, "and" + s, ai, bi);
    const NodeId lor = or2(net, "or" + s, ai, bi);
    const NodeId lxor = xor2(net, "xor" + s, ai, bi);
    NodeId sum;
    if (carry == kNoNode) {
      sum = lxor;
      carry = land;
    } else {
      sum = xor2(net, "sum" + s, lxor, carry);
      carry = or2(net, "cc" + s,
                  land, and2(net, "cx" + s, carry, lxor));
    }
    // y = op1'op0'·AND + op1'op0·OR + op1 op0'·XOR + op1 op0·SUM
    const NodeId y = net.add_node(
        "y" + s, {op1, op0, land, lor, lxor, sum},
        Sop::from_strings({"001---", "01-1--", "10--1-", "11---1"}));
    net.add_po("y" + s, y);
  }
  net.add_po("cout", carry);
  return net;
}

Network make_multiplier(int bits) {
  Network net("mul" + std::to_string(bits));
  std::vector<NodeId> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(net.add_pi("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) b.push_back(net.add_pi("b" + std::to_string(i)));

  // Partial products, then ripple accumulation column by column.
  std::vector<std::vector<NodeId>> column(static_cast<std::size_t>(2 * bits));
  for (int i = 0; i < bits; ++i)
    for (int j = 0; j < bits; ++j)
      column[static_cast<std::size_t>(i + j)].push_back(
          and2(net, "pp" + std::to_string(i) + "_" + std::to_string(j),
               a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(j)]));

  int uid = 0;
  for (int col = 0; col < 2 * bits; ++col) {
    auto& bitsv = column[static_cast<std::size_t>(col)];
    while (bitsv.size() > 1) {
      if (bitsv.size() >= 3) {
        // Full adder on three bits.
        const NodeId x = bitsv[bitsv.size() - 1];
        const NodeId y = bitsv[bitsv.size() - 2];
        const NodeId z = bitsv[bitsv.size() - 3];
        bitsv.resize(bitsv.size() - 3);
        const std::string s = std::to_string(uid++);
        const NodeId sum = net.add_node(
            "fs" + s, {x, y, z},
            Sop::from_strings({"100", "010", "001", "111"}));
        const NodeId carry = net.add_node(
            "fc" + s, {x, y, z}, Sop::from_strings({"11-", "1-1", "-11"}));
        bitsv.push_back(sum);
        if (col + 1 < 2 * bits)
          column[static_cast<std::size_t>(col + 1)].push_back(carry);
      } else {
        const NodeId x = bitsv[bitsv.size() - 1];
        const NodeId y = bitsv[bitsv.size() - 2];
        bitsv.resize(bitsv.size() - 2);
        const std::string s = std::to_string(uid++);
        bitsv.push_back(xor2(net, "hs" + s, x, y));
        if (col + 1 < 2 * bits)
          column[static_cast<std::size_t>(col + 1)].push_back(
              and2(net, "hc" + s, x, y));
      }
    }
    if (bitsv.empty()) {
      // Constant-zero product bit (only possible for degenerate widths).
      bitsv.push_back(net.add_node("z" + std::to_string(uid++), {}, Sop::zero(0)));
    }
    net.add_po("p" + std::to_string(col), bitsv[0]);
  }
  return net;
}

Network make_bcd7seg() {
  Network net("bcd7seg");
  std::vector<NodeId> in;
  for (int i = 0; i < 4; ++i) in.push_back(net.add_pi("d" + std::to_string(i)));
  // Segment truth table for digits 0..9 (a..g), standard layout.
  static const char* kSegments = "abcdefg";
  static const int kOn[10] = {  // bit i = segment i lit for that digit
      0b0111111, 0b0000110, 0b1011011, 0b1001111, 0b1100110,
      0b1101101, 0b1111101, 0b0000111, 0b1111111, 0b1101111};
  for (int seg = 0; seg < 7; ++seg) {
    Sop func(4);
    for (int digit = 0; digit < 10; ++digit) {
      if (!((kOn[digit] >> seg) & 1)) continue;
      Cube c(4);
      for (int v = 0; v < 4; ++v)
        c.set_lit(v, ((digit >> v) & 1) ? Lit::Pos : Lit::Neg);
      func.add_cube(c);
    }
    func.scc_minimize();
    const std::string name(1, kSegments[seg]);
    net.add_po(name, net.add_node(name, in, func));
  }
  return net;
}

Network make_priority_encoder(int lines) {
  assert(lines >= 2 && lines <= 16);
  Network net("prienc" + std::to_string(lines));
  std::vector<NodeId> req;
  for (int i = 0; i < lines; ++i) req.push_back(net.add_pi("r" + std::to_string(i)));
  int out_bits = 0;
  while ((1 << out_bits) < lines) ++out_bits;

  // index output bit b = OR over lines i with bit b set of
  //                      (r_i AND no higher-priority request), highest = 0.
  for (int bit = 0; bit < out_bits; ++bit) {
    Sop func(lines);
    for (int i = 0; i < lines; ++i) {
      if (!((i >> bit) & 1)) continue;
      Cube c(lines);
      c.set_lit(i, Lit::Pos);
      for (int h = 0; h < i; ++h) c.set_lit(h, Lit::Neg);  // line 0 wins
      func.add_cube(c);
    }
    const std::string name = "y" + std::to_string(bit);
    net.add_po(name, net.add_node(name, req, func));
  }
  Sop any(lines);
  for (int i = 0; i < lines; ++i) {
    Cube c(lines);
    c.set_lit(i, Lit::Pos);
    any.add_cube(c);
  }
  net.add_po("valid", net.add_node("valid", req, any));
  return net;
}

}  // namespace rarsub
