#pragma once
// Fully specified classic circuits: small ISCAS/MCNC-style functions whose
// definitions are public knowledge (c17, adders, parity, majority,
// symmetric thresholds, mux/decoder trees, comparators). These anchor the
// benchmark suite with exactly reproducible functions; the synthetic
// generator (synth.hpp) provides the larger MCNC-scale circuits.

#include "network/network.hpp"

namespace rarsub {

/// ISCAS c17 (the textbook 6-gate NAND circuit), built from its netlist.
Network make_c17();

/// Ripple-carry adder: 2k inputs + carry-in style structure, k+1 outputs.
Network make_adder(int bits);

/// Odd-parity tree over `bits` inputs.
Network make_parity(int bits);

/// Majority-of-n (n odd), flat SOP node.
Network make_majority(int bits);

/// 9sym-style symmetric function: 1 iff the number of ones in the 9 (or
/// `bits`) inputs lies in {3,4,5,6} — the classic MCNC 9sym profile.
Network make_sym_threshold(int bits, int lo, int hi);

/// k-to-2^k decoder.
Network make_decoder(int select_bits);

/// 2^k-to-1 multiplexer with k select lines.
Network make_mux(int select_bits);

/// Unsigned comparator: two k-bit operands, outputs lt/eq/gt.
Network make_comparator(int bits);

/// Two-bit ALU slice bank (alu-style): add/and/or/xor selected by 2 ops.
Network make_alu_slice(int bits);

/// k x k unsigned array multiplier (2k outputs).
Network make_multiplier(int bits);

/// BCD digit (4 bits) to 7-segment decoder (segments a..g; inputs 10-15
/// treated as don't-produce: all segments off).
Network make_bcd7seg();

/// Priority encoder: n request lines -> ceil(log2 n) index outputs + valid.
Network make_priority_encoder(int lines);

}  // namespace rarsub
