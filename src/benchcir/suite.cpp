#include "benchcir/suite.hpp"

#include <algorithm>
#include <stdexcept>

#include "benchcir/classics.hpp"
#include "benchcir/synth.hpp"

namespace rarsub {

namespace {

SynthSpec spec(const char* name, std::uint64_t seed, int pis, int bases,
               int mids, int outs) {
  SynthSpec s;
  s.name = name;
  s.seed = seed;
  s.num_pis = pis;
  s.num_bases = bases;
  s.num_mids = mids;
  s.num_outputs = outs;
  return s;
}

}  // namespace

std::vector<BenchmarkEntry> benchmark_suite() {
  std::vector<BenchmarkEntry> v;
  // Exact classics.
  v.push_back({"c17", [] { return make_c17(); }});
  v.push_back({"add8", [] { return make_adder(8); }});
  v.push_back({"cmp8", [] { return make_comparator(8); }});
  v.push_back({"alu4", [] { return make_alu_slice(4); }});
  v.push_back({"mux8", [] { return make_mux(3); }});
  v.push_back({"dec4", [] { return make_decoder(4); }});
  v.push_back({"9sym", [] { return make_sym_threshold(9, 3, 6); }});
  v.push_back({"maj7", [] { return make_majority(7); }});
  v.push_back({"parity16", [] { return make_parity(16); }});
  v.push_back({"mul3", [] { return make_multiplier(3); }});
  v.push_back({"bcd7seg", [] { return make_bcd7seg(); }});
  v.push_back({"prienc8", [] { return make_priority_encoder(8); }});
  // Synthetic MCNC/ISCAS-scale stand-ins (DESIGN.md §4).
  v.push_back({"syn_c432", [] { return make_synthetic(spec("syn_c432", 432, 18, 10, 28, 7)); }});
  v.push_back({"syn_c880", [] { return make_synthetic(spec("syn_c880", 880, 24, 14, 40, 12)); }});
  v.push_back({"syn_c1355", [] { return make_synthetic(spec("syn_c1355", 1355, 28, 16, 52, 16)); }});
  v.push_back({"syn_c2670", [] { return make_synthetic(spec("syn_c2670", 2670, 32, 20, 68, 20)); }});
  v.push_back({"syn_apex7", [] { return make_synthetic(spec("syn_apex7", 77, 24, 14, 44, 12)); }});
  v.push_back({"syn_frg2", [] { return make_synthetic(spec("syn_frg2", 1492, 28, 18, 56, 16)); }});
  v.push_back({"syn_dalu", [] { return make_synthetic(spec("syn_dalu", 314, 26, 16, 48, 12)); }});
  v.push_back({"syn_rot", [] { return make_synthetic(spec("syn_rot", 2718, 30, 18, 60, 18)); }});
  v.push_back({"syn_t481", [] { return make_synthetic(spec("syn_t481", 481, 16, 12, 36, 8)); }});
  v.push_back({"syn_k2", [] { return make_synthetic(spec("syn_k2", 1618, 22, 14, 44, 12)); }});
  v.push_back({"syn_vda", [] { return make_synthetic(spec("syn_vda", 640, 22, 15, 46, 13)); }});
  return v;
}

std::vector<BenchmarkEntry> benchmark_suite_small() {
  std::vector<BenchmarkEntry> v;
  v.push_back({"c17", [] { return make_c17(); }});
  v.push_back({"add8", [] { return make_adder(8); }});
  v.push_back({"alu4", [] { return make_alu_slice(4); }});
  v.push_back({"syn_c432", [] { return make_synthetic(spec("syn_c432", 432, 18, 10, 28, 7)); }});
  v.push_back({"syn_t481", [] { return make_synthetic(spec("syn_t481", 481, 16, 12, 36, 8)); }});
  // The largest member of the quick suite: wide enough that the candidate
  // filter and the negative-pair memo dominate the sweep cost, so quick
  // regression runs exercise the pruning layer for real.
  v.push_back({"syn_vda", [] { return make_synthetic(spec("syn_vda", 640, 22, 15, 46, 13)); }});
  return v;
}

std::vector<BenchmarkEntry> benchmark_suite_large(int max_nodes) {
  // Specs scale the synthetic generator by target node count: the middle
  // layer dominates, bases are kept proportional so no single shared
  // divisor accumulates a degenerate fanout list.
  const auto large = [](const char* name, std::uint64_t seed, int target) {
    SynthSpec s;
    s.name = name;
    s.seed = seed;
    s.num_mids = target;
    s.num_bases = std::max(16, target / 50);
    s.num_pis = std::max(64, target / 200);
    s.num_outputs = std::max(16, target / 40);
    // Bounded cone sizes, like real netlists (see SynthSpec::cluster):
    // without this the tier measures random-DAG pathology — every
    // implication closure and TFI walk spans the whole circuit — instead
    // of large-circuit behaviour.
    s.cluster = 2000;
    return s;
  };
  std::vector<BenchmarkEntry> v;
  const auto add = [&](const char* name, std::uint64_t seed, int target) {
    if (max_nodes > 0 && target > max_nodes) return;
    SynthSpec s = large(name, seed, target);
    v.push_back({name, [s] { return make_synthetic(s); }, target});
  };
  // ISCAS'89-scale stand-ins, sized after their namesakes.
  add("syn_s9234", 9234, 6000);
  add("syn_s15850", 15850, 10000);
  add("syn_s38584", 38584, 20000);
  // The synthetic giants of ROADMAP item 3.
  add("syn_x100k", 100001, 100000);
  add("syn_x300k", 300001, 300000);
  add("syn_x1m", 1000001, 1000000);
  return v;
}

Network build_benchmark(const std::string& name) {
  for (const BenchmarkEntry& e : benchmark_suite())
    if (e.name == name) return e.build();
  for (const BenchmarkEntry& e : benchmark_suite_large())
    if (e.name == name) return e.build();
  throw std::out_of_range("unknown benchmark: " + name);
}

}  // namespace rarsub
