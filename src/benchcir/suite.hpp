#pragma once
// The benchmark suite of the experiment harness: the circuit list playing
// the role of the paper's MCNC/ISCAS selection (see DESIGN.md §4 for the
// substitution rationale). Names with a `syn_` prefix are deterministic
// synthetic stand-ins sized after their namesakes; the rest are exact
// classic circuits.

#include <functional>
#include <string>
#include <vector>

#include "network/network.hpp"

namespace rarsub {

struct BenchmarkEntry {
  std::string name;
  std::function<Network()> build;
  /// Approximate alive-node count, used by the large tier to cut the
  /// suite down for CI-sized runs; 0 (small/full suites) means "tiny".
  int approx_nodes = 0;
};

/// The full suite used by the table benches.
std::vector<BenchmarkEntry> benchmark_suite();

/// A reduced suite for quick runs and tests.
std::vector<BenchmarkEntry> benchmark_suite_small();

/// The large workload tier (ROADMAP item 3): ISCAS'89-scale stand-ins
/// plus synthetic 10^5–10^6-node networks. `max_nodes` > 0 keeps only
/// circuits whose approximate node count fits — the bench-large CI job
/// runs the ~100k cut, the nightly runs everything.
std::vector<BenchmarkEntry> benchmark_suite_large(int max_nodes = 0);

/// Build a single circuit by name (searches the full and large suites);
/// throws std::out_of_range when unknown.
Network build_benchmark(const std::string& name);

}  // namespace rarsub
