#pragma once
// The benchmark suite of the experiment harness: the circuit list playing
// the role of the paper's MCNC/ISCAS selection (see DESIGN.md §4 for the
// substitution rationale). Names with a `syn_` prefix are deterministic
// synthetic stand-ins sized after their namesakes; the rest are exact
// classic circuits.

#include <functional>
#include <string>
#include <vector>

#include "network/network.hpp"

namespace rarsub {

struct BenchmarkEntry {
  std::string name;
  std::function<Network()> build;
};

/// The full suite used by the table benches.
std::vector<BenchmarkEntry> benchmark_suite();

/// A reduced suite for quick runs and tests.
std::vector<BenchmarkEntry> benchmark_suite_small();

/// Build a single circuit by name; throws std::out_of_range when unknown.
Network build_benchmark(const std::string& name);

}  // namespace rarsub
