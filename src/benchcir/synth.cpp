#include "benchcir/synth.hpp"

#include <algorithm>
#include <random>

namespace rarsub {

namespace {

// Random cover over `k` fanins: `cubes` cubes, 2-3 literals each.
Sop random_cover(std::mt19937_64& rng, int k, int cubes) {
  Sop f(k);
  std::uniform_int_distribution<int> nlits(2, std::min(3, k));
  std::uniform_int_distribution<int> pick(0, k - 1);
  for (int i = 0; i < cubes; ++i) {
    Cube c(k);
    const int n = nlits(rng);
    for (int j = 0; j < n; ++j)
      c.set_lit(pick(rng), (rng() & 1) ? Lit::Pos : Lit::Neg);
    f.add_cube(c);
  }
  f.scc_minimize();
  if (f.num_cubes() == 0) f = Sop::one(k);
  return f;
}

}  // namespace

Network make_synthetic(const SynthSpec& spec) {
  Network net(spec.name);
  std::mt19937_64 rng(spec.seed);

  std::vector<NodeId> pis;
  for (int i = 0; i < spec.num_pis; ++i)
    pis.push_back(net.add_pi("x" + std::to_string(i)));

  // Shared subfunctions over small PI subsets. Regular bases stay visible
  // and get *inlined copies* in consumers (the resubstitution opportunity:
  // the consumer's complex SOP contains the still-existing base). Shadow
  // bases model the paper's extended-division scenario: the useful core is
  // only available embedded inside a bigger visible divisor (core + extra
  // cube), so basic division by existing nodes cannot recover it but
  // divisor decomposition can.
  struct Base {
    NodeId visible;        // the node present in the circuit
    NodeId inline_source;  // node whose function gets copied into users
    bool shadow;
  };
  std::vector<Base> bases;
  for (int i = 0; i < spec.num_bases; ++i) {
    std::uniform_int_distribution<int> nfan(2, 4);
    const int k = nfan(rng);
    std::vector<NodeId> fanins;
    while (static_cast<int>(fanins.size()) < k) {
      const NodeId cand = pis[rng() % pis.size()];
      if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
        fanins.push_back(cand);
    }
    std::uniform_int_distribution<int> ncubes(2, spec.max_cubes);
    const Sop core = random_cover(rng, k, ncubes(rng));
    const bool shadow = (i % 3 == 2);
    if (!shadow) {
      const NodeId b =
          net.add_node("b" + std::to_string(i), fanins, core);
      bases.push_back(Base{b, b, false});
    } else {
      // Visible divisor = core + one extra cube; the bare core is kept in
      // a scratch node that will be swept once its copies are inlined.
      Sop visible_func = core;
      Cube extra(k);
      extra.set_lit(static_cast<int>(rng() % k),
                    (rng() & 1) ? Lit::Pos : Lit::Neg);
      extra.set_lit(static_cast<int>(rng() % k),
                    (rng() & 1) ? Lit::Neg : Lit::Pos);
      visible_func.add_cube(extra);
      visible_func.scc_minimize();
      const NodeId vis =
          net.add_node("b" + std::to_string(i), fanins, visible_func);
      const NodeId scratch =
          net.add_node("bs" + std::to_string(i), fanins, core);
      bases.push_back(Base{vis, scratch, true});
    }
  }

  // Middle layer: random SOPs over PIs, bases, and earlier mids. Base
  // fanins are inlined (composed away) with probability; the base node
  // itself stays alive through its other users. In clustered mode each
  // tile of `cluster` mids works over its own PI subset and its own
  // earlier mids, so transitive cones stay design-bounded.
  const bool clustered = spec.cluster > 0;
  std::vector<NodeId> mids;
  std::vector<NodeId> pool = pis;
  std::vector<const Base*> base_pool;
  for (const Base& b : bases) base_pool.push_back(&b);
  if (!clustered)
    for (const Base& b : bases) pool.push_back(b.visible);
  for (int i = 0; i < spec.num_mids; ++i) {
    if (clustered && i % spec.cluster == 0) {
      // Fresh tile: a handful of PIs and library bases of its own (about
      // twice a proportional share each, so neighbouring tiles overlap a
      // little). Tiles must localize *both* pools: a base referenced from
      // every tile turns each implication closure into a circuit-wide
      // cascade, which is the very pathology the tier avoids.
      pool.clear();
      const int share = std::max(
          8, 2 * spec.num_pis * spec.cluster / std::max(1, spec.num_mids));
      for (int j = 0; j < std::min(share, spec.num_pis); ++j)
        pool.push_back(pis[rng() % pis.size()]);
      if (!bases.empty()) {
        base_pool.clear();
        const int bshare = std::max<int>(
            4, 2 * static_cast<int>(bases.size()) * spec.cluster /
                   std::max(1, spec.num_mids));
        for (int j = 0; j < bshare && j < static_cast<int>(bases.size()); ++j)
          base_pool.push_back(&bases[rng() % bases.size()]);
      }
    }
    std::uniform_int_distribution<int> nfan(2, 5);
    const int k = std::min<int>(nfan(rng), static_cast<int>(pool.size()));
    std::vector<NodeId> fanins;
    std::vector<const Base*> base_fanins;
    while (static_cast<int>(fanins.size()) < k) {
      NodeId cand;
      const Base* from_base = nullptr;
      if (rng() % 2 == 0 && !base_pool.empty()) {
        from_base = base_pool[rng() % base_pool.size()];
        // Inlined copies come from the core; shadow cores are *only*
        // available inlined.
        cand = from_base->inline_source;
      } else {
        cand = pool[rng() % pool.size()];
      }
      if (std::find(fanins.begin(), fanins.end(), cand) != fanins.end())
        continue;
      fanins.push_back(cand);
      base_fanins.push_back(from_base);
    }
    std::uniform_int_distribution<int> ncubes(2, spec.max_cubes);
    const NodeId m = net.add_node("m" + std::to_string(i), fanins,
                                  random_cover(rng, k, ncubes(rng)));
    // Inline the copies: shadow cores always, regular bases usually.
    for (std::size_t j = 0; j < base_fanins.size(); ++j) {
      const Base* b = base_fanins[j];
      if (b == nullptr) continue;
      if (b->shadow || rng() % 4 != 0) net.compose(m, b->inline_source, 64);
    }
    mids.push_back(m);
    pool.push_back(m);
  }

  // Outputs: deepest mids first, then enough visible bases to keep every
  // divisor alive. Clustered circuits spread the outputs evenly so each
  // tile keeps observable logic (deepest-first would anchor only the last
  // tile and let the sweep eat the rest).
  int po = 0;
  const std::size_t stride =
      clustered && spec.num_outputs > 0
          ? std::max<std::size_t>(
                1, mids.size() / static_cast<std::size_t>(spec.num_outputs))
          : 1;
  for (int i = 0; i < spec.num_outputs &&
                  static_cast<std::size_t>(i) * stride < mids.size();
       ++i)
    net.add_po("o" + std::to_string(po++),
               mids[mids.size() - 1 - static_cast<std::size_t>(i) * stride]);
  for (const Base& b : bases)
    if (net.fanout_refs(b.visible) == 0)
      net.add_po("o" + std::to_string(po++), b.visible);
  net.sweep();  // scratch core nodes disappear here

  // Light extra obfuscation: collapse a few internal single-fanout chains
  // beyond what Script A will do, mimicking technology-independent churn.
  std::vector<NodeId> internals;
  for (NodeId id = 0; id < net.num_nodes(); ++id)
    if (net.node(id).alive && !net.node(id).is_pi && net.num_po_refs(id) == 0)
      internals.push_back(id);
  std::shuffle(internals.begin(), internals.end(), rng);
  const int to_collapse = static_cast<int>(
      spec.collapse_fraction * 0.3 * static_cast<double>(internals.size()));
  int collapsed = 0;
  for (NodeId id : internals) {
    if (collapsed >= to_collapse) break;
    if (!net.node(id).alive || net.num_po_refs(id) > 0) continue;
    if (net.fanout_refs(id) > 2) continue;  // keep shared divisors intact
    if (net.collapse_into_fanouts(id, /*cube_limit=*/64)) ++collapsed;
  }
  net.sweep();
  return net;
}

}  // namespace rarsub
