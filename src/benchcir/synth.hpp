#pragma once
// Deterministic synthetic benchmark generator (MCNC/ISCAS stand-ins; see
// DESIGN.md §4). Networks are built with deliberately *shared hidden
// structure* — a library of subfunctions reused by many nodes — and then
// partially collapsed, which is exactly the state the paper's Script A
// ("eliminate 0" creating complex gates) prepares for resubstitution: the
// sharing is recoverable by a good division algorithm.

#include <cstdint>

#include "network/network.hpp"

namespace rarsub {

struct SynthSpec {
  std::string name = "syn";
  std::uint64_t seed = 1;
  int num_pis = 16;
  int num_bases = 8;    ///< hidden shared subfunctions
  int num_mids = 24;    ///< nodes combining bases and PIs
  int num_outputs = 8;
  int max_cubes = 4;    ///< cubes per generated node function
  double collapse_fraction = 0.6;  ///< bases/mids collapsed away
  /// Mid-layer clustering: partition the mids into tiles of `cluster`
  /// nodes, each drawing its non-base fanins from its own PI subset and
  /// its own earlier mids (0 = one global pool, the historical
  /// behaviour). A single global pool makes late nodes' transitive-fanin
  /// cones span the whole circuit, so every cone-walking algorithm —
  /// implication closure above all — degrades to O(nodes) per query. Real
  /// netlists are modular with design-bounded cones; the large workload
  /// tier clusters for that reason (bases stay global, playing the shared
  /// library).
  int cluster = 0;
};

/// Generate a combinational network from the spec; the same spec always
/// yields the same circuit.
Network make_synthetic(const SynthSpec& spec);

}  // namespace rarsub
