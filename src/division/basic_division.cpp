#include <cassert>

#include "division/division.hpp"
#include "gatenet/build.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "rar/redundancy.hpp"

namespace rarsub {

DivisionRegion build_division_region(const Sop& fprime, const Sop& remainder,
                                     const Sop& d, bool connect_bold) {
  OBS_COUNT("division.regions", 1);
  OBS_EVENT(.kind = obs::EventKind::DivisionRegion,
            .a = fprime.num_cubes(), .b = d.num_cubes(),
            .c = remainder.num_cubes());
  assert(fprime.num_vars() == d.num_vars());
  DivisionRegion r;
  const int nv = fprime.num_vars();
  std::vector<Signal> var_signal;
  for (int v = 0; v < nv; ++v) {
    const int pi = r.gn.add_pi("v" + std::to_string(v));
    r.var_pi.push_back(pi);
    var_signal.push_back(Signal{pi, false});
  }

  const Signal q = build_sop_gates(r.gn, fprime, var_signal, &r.fcube_gate, "f.");
  r.q_or = q.gate;
  const Signal ds = build_sop_gates(r.gn, d, var_signal, &r.dcube_gate, "d.");
  r.d_or = ds.gate;

  if (connect_bold) {
    r.bold_and = r.gn.add_gate(GateType::And, {q, ds}, "bold");
    std::vector<Signal> outs{Signal{r.bold_and, false}};
    std::vector<int> rem_gates;
    const Signal rem =
        build_sop_gates(r.gn, remainder, var_signal, &rem_gates, "r.");
    // Attach the remainder cube gates directly to the output OR; the
    // intermediate remainder OR gate stays as a harmless alias.
    for (int g : rem_gates) outs.push_back(Signal{g, false});
    (void)rem;
    r.out_or = r.gn.add_gate(GateType::Or, std::move(outs), "out");
    r.gn.add_output(r.out_or);
  } else {
    assert(remainder.num_cubes() == 0);
    r.out_or = r.q_or;
    r.gn.add_output(r.q_or);
  }
  return r;
}

int region_redundancy_removal(GateNet& gn, const std::vector<int>& fcube_gates,
                              int q_or, int learning_depth) {
  OBS_SCOPED_TIMER("division.region_rr");
  std::vector<WireRef> wires;
  for (int g : fcube_gates)
    for (int p = 0; p < static_cast<int>(gn.gate(g).fanins.size()); ++p)
      wires.push_back(WireRef{g, p});
  // Cube wires: the pins of the Q OR gate that come from region cube
  // gates. O(1) bitset membership — on the GDC path q_or is the whole
  // circuit's OR root and a linear scan per pin is quadratic.
  std::vector<std::uint8_t> is_fcube(static_cast<std::size_t>(gn.num_gates()), 0);
  for (int g : fcube_gates) is_fcube[static_cast<std::size_t>(g)] = 1;
  const Gate& qg = gn.gate(q_or);
  for (int p = 0; p < static_cast<int>(qg.fanins.size()); ++p) {
    const int src = qg.fanins[static_cast<std::size_t>(p)].gate;
    if (is_fcube[static_cast<std::size_t>(src)]) wires.push_back(WireRef{q_or, p});
  }
  RemoveOptions opts;
  opts.learning_depth = learning_depth;
  opts.to_fixpoint = true;
  const int removed = remove_redundant_wires(gn, wires, opts);
  OBS_COUNT("division.region_wires_removed", removed);
  return removed;
}

Sop extract_quotient(const GateNet& gn, const std::vector<int>& fcube_gates,
                     int q_or, const std::vector<int>& gate_var, int num_vars) {
  Sop q(num_vars);
  std::vector<std::uint8_t> is_fcube(static_cast<std::size_t>(gn.num_gates()), 0);
  for (int g : fcube_gates) is_fcube[static_cast<std::size_t>(g)] = 1;
  const Gate& qg = gn.gate(q_or);
  for (const Signal& s : qg.fanins) {
    if (!is_fcube[static_cast<std::size_t>(s.gate)]) continue;
    Cube c(num_vars);
    bool bad = false;
    for (const Signal& lit : gn.gate(s.gate).fanins) {
      const int v = gate_var[static_cast<std::size_t>(lit.gate)];
      if (v < 0) {
        bad = true;  // literal rewired to a non-variable source
        break;
      }
      c.set_lit(v, lit.neg ? Lit::Neg : Lit::Pos);
    }
    if (!bad) q.add_cube(std::move(c));
  }
  q.scc_minimize();
  return q;
}

DivisionResult basic_boolean_divide(const Sop& f, const Sop& d,
                                    const DivisionOptions& opts) {
  OBS_SCOPED_TIMER("division.basic");
  DivisionResult res;
  res.quotient = Sop(f.num_vars());
  res.remainder = Sop(f.num_vars());
  if (d.num_cubes() == 0) {
    res.remainder = f;
    return res;
  }

  // Step 1 (Fig. 2(b)): the cubes of f not contained by any cube of d form
  // the remainder; the rest is a sum-of-subproducts of d.
  Sop fprime(f.num_vars());
  for (const Cube& c : f.cubes()) {
    if (d.scc_contains(c)) fprime.add_cube(c);
    else res.remainder.add_cube(c);
  }
  if (fprime.num_cubes() == 0) return res;  // quotient is zero

  // Step 2 (Fig. 2(c)): AND the region with d — redundant by Lemma 1.
  DivisionRegion region =
      build_division_region(fprime, res.remainder, d, /*connect_bold=*/true);

  // Step 3 (Fig. 2(d)): remove redundancies inside the region.
  region_redundancy_removal(region.gn, region.fcube_gate, region.q_or,
                            opts.learning_depth);

  std::vector<int> gate_var(static_cast<std::size_t>(region.gn.num_gates()), -1);
  for (int v = 0; v < f.num_vars(); ++v)
    gate_var[static_cast<std::size_t>(region.var_pi[static_cast<std::size_t>(v)])] = v;
  res.quotient = extract_quotient(region.gn, region.fcube_gate, region.q_or,
                                  gate_var, f.num_vars());
  res.success = res.quotient.num_cubes() > 0;
  return res;
}

}  // namespace rarsub
