#include "division/candidates.hpp"

#include <bit>
#include <cassert>

#include "mem/arena.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"

namespace rarsub {

namespace {

// Deterministic per-node 64-bit words (splitmix64 of the node id): bit k
// of word_of(x) is node x's value in the k-th sampled assignment. Keying
// on node ids — not local variable indices — makes the samples consistent
// across every node that shares a fanin, which is what lets signatures of
// a dividend and a divisor be compared at all.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t word_of(NodeId x) {
  return splitmix64(static_cast<std::uint64_t>(x) + 1);
}

// One Bloom bit per (node, polarity) literal. A set bit outside the
// other side's mask is a witness that the literal cannot be matched.
std::uint64_t lit_bit(NodeId x, bool neg) {
  return 1ULL
         << (splitmix64(2 * static_cast<std::uint64_t>(x) + (neg ? 1 : 0) +
                        0x51ed270b0a5bd4f1ULL) &
             63);
}

// Signature and literal-Bloom mask of one cube over `fanins`.
void cube_masks(const Cube& c, std::span<const NodeId> fanins,
                std::uint64_t* sig, std::uint64_t* bloom) {
  if (c.is_empty()) {
    // Empty cubes evaluate false everywhere and are structurally contained
    // by anything; make them unable to refute (sig 0 passes every
    // containment test, bloom ~0 treats every divisor cube as fitting).
    *sig = 0;
    *bloom = ~0ULL;
    return;
  }
  std::uint64_t s = ~0ULL;
  std::uint64_t b = 0;
  for (int v = 0; v < c.num_vars(); ++v) {
    const Lit l = c.lit(v);
    if (l == Lit::Absent) continue;
    const NodeId x = fanins[static_cast<std::size_t>(v)];
    if (l == Lit::Pos) {
      s &= word_of(x);
      b |= lit_bit(x, false);
    } else {
      s &= ~word_of(x);
      b |= lit_bit(x, true);
    }
  }
  *sig = s;
  *bloom = b;
}

void cover_masks(const Sop& cover, std::span<const NodeId> fanins,
                 std::uint64_t* sig, std::uint64_t* lit_union,
                 std::vector<std::uint64_t>* cube_sig,
                 std::vector<std::uint64_t>* cube_bloom) {
  *sig = 0;
  *lit_union = 0;
  cube_sig->clear();
  cube_bloom->clear();
  cube_sig->reserve(static_cast<std::size_t>(cover.num_cubes()));
  cube_bloom->reserve(static_cast<std::size_t>(cover.num_cubes()));
  for (const Cube& c : cover.cubes()) {
    std::uint64_t s, b;
    cube_masks(c, fanins, &s, &b);
    *sig |= s;
    if (b != ~0ULL) *lit_union |= b;
    cube_sig->push_back(s);
    cube_bloom->push_back(b);
  }
}

// Can division view (dividend, divisor) possibly produce a candidate?
// attempt() only evaluates a view when some dividend cube is structurally
// contained by some divisor cube (sos_possible). Containment of cube c by
// cube t demands (a) t's literal set is a subset of c's — witnessed
// through the Bloom masks — and (b) wherever c evaluates 1, the divisor
// evaluates 1 — witnessed through the exact 64-sample signatures. If no
// (c, t) pair survives both witnesses, the view cannot contribute.
bool view_possible(const std::vector<std::uint64_t>& divd_cube_sig,
                   const std::vector<std::uint64_t>& divd_cube_bloom,
                   std::uint64_t divd_lit_union,
                   const std::vector<std::uint64_t>& divr_cube_sig,
                   const std::vector<std::uint64_t>& divr_cube_bloom,
                   std::uint64_t divr_sig) {
  // Node-level rejection first: some divisor cube must fit inside the
  // dividend's literal union for any pairwise fit to exist.
  bool any_t = false;
  for (std::uint64_t b : divr_cube_bloom) {
    if ((b & ~divd_lit_union) == 0) {
      any_t = true;
      break;
    }
  }
  if (!any_t) return false;
  for (std::size_t i = 0; i < divd_cube_sig.size(); ++i) {
    // c must be contained by the divisor as a whole before any single
    // divisor cube can contain it.
    if ((divd_cube_sig[i] & ~divr_sig) != 0) continue;
    for (std::size_t j = 0; j < divr_cube_sig.size(); ++j) {
      if ((divr_cube_bloom[j] & ~divd_cube_bloom[i]) == 0 &&
          (divd_cube_sig[i] & ~divr_cube_sig[j]) == 0)
        return true;
    }
  }
  return false;
}

int union_popcount(const std::vector<std::uint64_t>& a,
                   const std::vector<std::uint64_t>& b) {
  int n = 0;
  const std::size_t lo = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < lo; ++i) n += std::popcount(a[i] | b[i]);
  const std::vector<std::uint64_t>& rest = a.size() > b.size() ? a : b;
  for (std::size_t i = lo; i < rest.size(); ++i) n += std::popcount(rest[i]);
  return n;
}

std::uint64_t pair_key(NodeId f, NodeId d) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f)) << 32) |
         static_cast<std::uint32_t>(d);
}

}  // namespace

CandidateFilter::CandidateFilter(const Network& net,
                                 const SubstituteOptions& opts,
                                 ComplementCache* comps)
    : net_(net), opts_(opts), comps_(comps) {
  views_.resize(static_cast<std::size_t>(net.num_nodes()));
  // Nothing is cached yet, so the whole history up to here is moot.
  cursor_ = net.journal().seq();
}

void CandidateFilter::sync() {
  const MutationJournal& j = net_.journal();
  if (cursor_ == j.seq()) return;
  const bool in_window = j.visit_since(cursor_, [&](const NetEvent& e) {
    if (e.kind == NetEventKind::OutputChanged) return;
    const std::size_t i = static_cast<std::size_t>(e.node);
    if (i < views_.size()) {
      views_[i].built = false;
      views_[i].has_comp = false;
    }
  });
  if (!in_window) {
    // Journal trimmed past our cursor: drop everything.
    views_.assign(views_.size(), NodeView{});
  }
  cursor_ = j.seq();
}

CandidateFilter::NodeView& CandidateFilter::base_view(NodeId id) {
  if (static_cast<std::size_t>(id) >= views_.size())
    views_.resize(static_cast<std::size_t>(id) + 1);
  NodeView& v = views_[static_cast<std::size_t>(id)];
  const Node& nd = net_.node(id);
  if (v.built) return v;
  OBS_COUNT("subst.filter.node_refresh", 1);
  v.built = true;
  v.has_comp = false;
  v.comp_cubes = -1;
  cover_masks(nd.func, nd.fanins, &v.sig, &v.lit_bloom, &v.cube_sig,
              &v.cube_bloom);
  v.supp.clear();
  for (NodeId x : nd.fanins) {
    const std::size_t w = static_cast<std::size_t>(x) / 64;
    if (w >= v.supp.size()) v.supp.resize(w + 1, 0);
    v.supp[w] |= 1ULL << (static_cast<std::uint64_t>(x) % 64);
  }
  return v;
}

CandidateFilter::NodeView& CandidateFilter::comp_view(NodeId id) {
  NodeView& v = base_view(id);
  if (v.has_comp) return v;
  const Sop& comp = comps_->get(net_, id);
  v.comp_cubes = comp.num_cubes();
  std::uint64_t comp_sig;  // exactly ~sig by construction; not stored
  cover_masks(comp, net_.node(id).fanins, &comp_sig, &v.comp_lit_bloom,
              &v.comp_cube_sig, &v.comp_cube_bloom);
  assert(comp_sig == static_cast<std::uint64_t>(~v.sig));
  v.has_comp = true;
  return v;
}

void CandidateFilter::begin_target(NodeId f) {
  sync();
  target_ = f;
  target_mutations_ = net_.mutations();
  tfo_.assign((static_cast<std::size_t>(net_.num_nodes()) + 63) / 64, 0);
  auto mark = [&](NodeId x) {
    const std::size_t w = static_cast<std::size_t>(x) / 64;
    const std::uint64_t bit = 1ULL << (static_cast<std::uint64_t>(x) % 64);
    const bool seen = (tfo_[w] & bit) != 0;
    tfo_[w] |= bit;
    return seen;
  };
  mem::ScratchScope scratch;
  mem::ScratchVector<NodeId> stack;
  stack.push_back(f);
  mark(f);
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (NodeId o : net_.node(n).fanouts)
      if (!mark(o)) stack.push_back(o);
  }
}

PairDecision CandidateFilter::check(NodeId f, NodeId d) {
  sync();  // one compare when the network is unchanged
  PairDecision dec;
  // Grow the view table up front: base_view/comp_view hand out references
  // into it, which a mid-check resize would invalidate.
  const std::size_t hi = static_cast<std::size_t>(f > d ? f : d);
  if (hi >= views_.size()) views_.resize(hi + 1);
  const Node& fn = net_.node(f);
  const Node& dn = net_.node(d);
  // Pairs one of attempt()'s cheap guards would reject go straight
  // through: the guard keeps its counter/event, and the rejection is too
  // cheap to be worth memoizing.
  if (fn.is_pi || dn.is_pi || !fn.alive || !dn.alive || f == d) return dec;
  if (fn.func.num_cubes() == 0 || dn.func.num_cubes() == 0) return dec;
  if (fn.func.num_cubes() > opts_.max_node_cubes ||
      dn.func.num_cubes() > opts_.max_divisor_cubes)
    return dec;

  const auto it = memo_.find(pair_key(f, d));
  if (it != memo_.end() && it->second.f_version == fn.version &&
      it->second.d_version == dn.version &&
      (opts_.method != SubstMethod::ExtendedGdc ||
       it->second.mutations == net_.mutations())) {
    OBS_COUNT("subst.pairs_pruned_memo", 1);
    OBS_EVENT(.kind = obs::EventKind::PairPruned, .node = f, .divisor = d,
              .reason = "memo");
    dec.verdict = PairDecision::Verdict::PrunedMemo;
    dec.reason = "memo";
    return dec;
  }

  if (f == target_ && target_mutations_ == net_.mutations()) {
    dec.cycle_checked = true;
    const std::size_t w = static_cast<std::size_t>(d) / 64;
    if (w < tfo_.size() &&
        (tfo_[w] >> (static_cast<std::uint64_t>(d) % 64)) & 1) {
      OBS_COUNT("subst.pairs_pruned_cycle", 1);
      OBS_EVENT(.kind = obs::EventKind::PairPruned, .node = f, .divisor = d,
                .reason = "cycle");
      dec.verdict = PairDecision::Verdict::PrunedCycle;
      dec.reason = "cycle";
      return dec;
    }
  }

  const NodeView& vf = base_view(f);
  const NodeView& vd = base_view(d);

  // Exact |fanins(f) ∪ fanins(d)|: the common space attempt() would build
  // has precisely this many variables, so exceeding the guard here is the
  // same rejection without the two cover remaps.
  if (union_popcount(vf.supp, vd.supp) > opts_.max_common_vars) {
    OBS_COUNT("subst.pairs_pruned_sig", 1);
    OBS_EVENT(.kind = obs::EventKind::PairPruned, .node = f, .divisor = d,
              .a = union_popcount(vf.supp, vd.supp), .reason = "support");
    dec.verdict = PairDecision::Verdict::PrunedSig;
    dec.reason = "support";
    return dec;
  }

  unsigned mask = 0;
  if (view_possible(vf.cube_sig, vf.cube_bloom, vf.lit_bloom, vd.cube_sig,
                    vd.cube_bloom, vd.sig))
    mask |= kViewSosSos;
  if (opts_.try_pos) {
    const NodeView& cf = comp_view(f);
    const NodeView& cd = comp_view(d);
    // Mirrors attempt()'s pos_ok: both complements must be non-trivial and
    // within the role-specific cube caps or no POS view runs at all.
    const bool pos_ok = cf.comp_cubes > 0 &&
                        cf.comp_cubes <= opts_.max_node_cubes &&
                        cd.comp_cubes > 0 &&
                        cd.comp_cubes <= opts_.max_divisor_cubes;
    if (pos_ok) {
      const std::uint64_t sig_dbar = ~vd.sig;
      if (view_possible(vf.cube_sig, vf.cube_bloom, vf.lit_bloom,
                        cd.comp_cube_sig, cd.comp_cube_bloom, sig_dbar))
        mask |= kViewSosPos;
      if (view_possible(cf.comp_cube_sig, cf.comp_cube_bloom,
                        cf.comp_lit_bloom, cd.comp_cube_sig,
                        cd.comp_cube_bloom, sig_dbar))
        mask |= kViewPosPos;
      if (view_possible(cf.comp_cube_sig, cf.comp_cube_bloom,
                        cf.comp_lit_bloom, vd.cube_sig, vd.cube_bloom,
                        vd.sig))
        mask |= kViewPosSos;
    }
  }
  if (mask == 0) {
    OBS_COUNT("subst.pairs_pruned_sig", 1);
    OBS_EVENT(.kind = obs::EventKind::PairPruned, .node = f, .divisor = d,
              .reason = "views");
    dec.verdict = PairDecision::Verdict::PrunedSig;
    dec.reason = "views";
    return dec;
  }

  OBS_COUNT("subst.pairs_tried", 1);
  dec.view_mask = mask;
  return dec;
}

void CandidateFilter::record_failure(NodeId f, NodeId d) {
  memo_[pair_key(f, d)] = MemoEntry{net_.node(f).version,
                                    net_.node(d).version, net_.mutations()};
}

}  // namespace rarsub
