#pragma once
// Candidate pruning layer for the substitution sweep.
//
// substitute_network tries every alive node as a divisor for every target
// — an O(n²) cross-product per pass in which the vast majority of (f, d)
// pairs cannot possibly yield a positive-gain division. This filter
// rejects those pairs (and, at finer grain, individual division views)
// from cheap per-node evidence before any cover is remapped, complemented
// or divided. Three stacked mechanisms:
//
//   1. Signature / support pruning. Each node caches, keyed by its
//      Node::version: an exact fanin-support bitset, a polarity-aware
//      64-bit literal Bloom mask per cube, and a 64-bit random-simulation
//      signature per cube (the node function evaluated on 64 fixed
//      pseudo-random assignments of its fanin *node ids*, so signatures of
//      different nodes are comparable wherever their supports overlap).
//      The same data is kept for the node's complement cover (shared with
//      the ComplementCache the evaluator uses), which makes all four
//      division views of a pair — (f,d), (f,d̄), (f̄,d̄), (f̄,d) —
//      individually refutable. A kill is always a *witness* of
//      impossibility (a divisor cube literal outside the dividend's
//      literal union; a sampled assignment where the dividend cube holds
//      but the divisor doesn't), never a probabilistic guess, so pruning
//      cannot change the optimization result.
//
//   2. Negative-pair memoization. A pair that was evaluated and produced
//      no commit is remembered with both endpoints' versions (plus the
//      network-wide mutation stamp for the ExtendedGdc method, whose
//      outcome depends on the whole circuit). Later passes skip the pair
//      until an endpoint actually changes — the sweep revisits only the
//      dirty frontier.
//
//   3. Transitive-fanout cycle test. The per-pair depends_on DFS is
//      replaced by one fanout-cone bitset per target, making the
//      would-create-a-cycle test O(1) per divisor.
//
// Every decision is published through src/obs/ counters
// (subst.pairs_tried / subst.pairs_pruned_{sig,memo,cycle}) and, when a
// ledger session is active, as pair_pruned flight-recorder events.
// docs/PERFORMANCE.md describes the pipeline and the invalidation rules.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "division/substitute.hpp"
#include "network/complement_cache.hpp"
#include "network/network.hpp"

namespace rarsub {

// Bits of PairDecision::view_mask, matching the order attempt() runs the
// four division views of a pair.
inline constexpr unsigned kViewSosSos = 1u << 0;  ///< (f , d )
inline constexpr unsigned kViewSosPos = 1u << 1;  ///< (f , d̄)
inline constexpr unsigned kViewPosPos = 1u << 2;  ///< (f̄, d̄)
inline constexpr unsigned kViewPosSos = 1u << 3;  ///< (f̄, d )
inline constexpr unsigned kAllViews = 0xFu;

struct PairDecision {
  enum class Verdict { Try, PrunedSig, PrunedMemo, PrunedCycle };
  Verdict verdict = Verdict::Try;
  /// Views that may still produce a candidate (valid when Try). The
  /// evaluator skips cleared views — and the whole complement machinery
  /// when no POS view survives.
  unsigned view_mask = kAllViews;
  /// True when the filter already proved d is not in f's fanout cone, so
  /// the evaluator can skip its own depends_on DFS.
  bool cycle_checked = false;
  /// Static string naming the prune evidence (ledger event payload).
  const char* reason = nullptr;
};

class CandidateFilter {
 public:
  /// The filter holds references to all three arguments; they must outlive
  /// it. `comps` is shared with the evaluation path so complements are
  /// computed once per node version for both.
  CandidateFilter(const Network& net, const SubstituteOptions& opts,
                  ComplementCache* comps);

  /// Prepare for a scan of divisors for target `f`: builds f's
  /// transitive-fanout bitset (the O(1) cycle test for every subsequent
  /// check of this target).
  void begin_target(NodeId f);

  /// Classify pair (f, d). Never mutates the network. Pairs that one of
  /// attempt()'s own cheap guards would reject (PI/dead/empty/cube caps)
  /// are passed through as Try so those guards keep their counters.
  PairDecision check(NodeId f, NodeId d);

  /// Record that a full evaluation of (f, d) produced no commit, keyed by
  /// the endpoints' current versions (and the global mutation stamp for
  /// ExtendedGdc). Call only for pairs check() classified as Try.
  void record_failure(NodeId f, NodeId d);

  /// Number of memoized negative pairs (tests / introspection).
  std::size_t memo_size() const { return memo_.size(); }

 private:
  struct NodeView {
    bool built = false;     ///< invalidated by sync() from journal events
    bool has_comp = false;  ///< complement-side fields are filled
    int comp_cubes = -1;    ///< cube count of the complement cover
    std::uint64_t sig = 0;        ///< OR of cube_sig (exact 64-sample eval)
    std::uint64_t lit_bloom = 0;  ///< OR of cube_bloom
    std::vector<std::uint64_t> cube_sig;
    std::vector<std::uint64_t> cube_bloom;
    std::uint64_t comp_lit_bloom = 0;
    std::vector<std::uint64_t> comp_cube_sig;
    std::vector<std::uint64_t> comp_cube_bloom;
    std::vector<std::uint64_t> supp;  ///< fanin-id bitset
  };

  struct MemoEntry {
    int f_version = -1;
    int d_version = -1;
    std::uint64_t mutations = 0;  ///< checked for ExtendedGdc only
  };

  NodeView& base_view(NodeId id);
  NodeView& comp_view(NodeId id);

  /// Consume mutation-journal events newer than the cursor and mark the
  /// touched nodes' views stale. One integer compare when nothing
  /// changed; O(delta) otherwise — the journal replaces any per-access
  /// version polling or whole-table scan.
  void sync();

  const Network& net_;
  const SubstituteOptions& opts_;
  ComplementCache* comps_;
  std::uint64_t cursor_ = 0;  ///< journal position views_ reflects
  std::vector<NodeView> views_;
  std::unordered_map<std::uint64_t, MemoEntry> memo_;
  // Fanout cone of the current target (begin_target).
  NodeId target_ = kNoNode;
  std::uint64_t target_mutations_ = ~0ull;
  std::vector<std::uint64_t> tfo_;
};

}  // namespace rarsub
