#include "division/clique.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

namespace rarsub {

namespace {

// Exact search on <= 64 vertices with bitset adjacency.
struct BnB {
  std::vector<std::uint64_t> adj;
  std::uint64_t best = 0;
  int best_size = 0;

  void expand(std::uint64_t clique, int size, std::uint64_t cand) {
    if (size + std::popcount(cand) <= best_size) return;  // bound
    if (cand == 0) {
      if (size > best_size) {
        best_size = size;
        best = clique;
      }
      return;
    }
    while (cand) {
      if (size + std::popcount(cand) <= best_size) return;
      const int v = std::countr_zero(cand);
      cand &= cand - 1;
      expand(clique | (1ULL << v), size + 1,
             (cand | 0) & adj[static_cast<std::size_t>(v)] &
                 ~((2ULL << v) - 1));
    }
  }
};

}  // namespace

std::vector<int> max_clique(const std::vector<std::vector<bool>>& adj,
                            int exact_limit) {
  const int n = static_cast<int>(adj.size());
  if (n == 0) return {};
  if (n <= std::min(exact_limit, 64)) {
    BnB bnb;
    bnb.adj.assign(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        if (i != j && adj[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)])
          bnb.adj[static_cast<std::size_t>(i)] |= 1ULL << j;
    std::uint64_t all = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
    bnb.expand(0, 0, all);
    std::vector<int> out;
    for (int v = 0; v < n; ++v)
      if (bnb.best >> v & 1) out.push_back(v);
    return out;
  }

  // Greedy: repeatedly add the highest-degree vertex compatible with the
  // clique built so far.
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (i != j && adj[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)])
        ++degree[static_cast<std::size_t>(i)];
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return degree[static_cast<std::size_t>(a)] > degree[static_cast<std::size_t>(b)];
  });
  std::vector<int> clique;
  for (int v : order) {
    bool compatible = true;
    for (int u : clique)
      if (!adj[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)]) {
        compatible = false;
        break;
      }
    if (compatible) clique.push_back(v);
  }
  std::sort(clique.begin(), clique.end());
  return clique;
}

}  // namespace rarsub
