#pragma once
// Maximum clique for the extended-division vote graph (paper Sec. IV,
// Fig. 4: "The problem of finding the best core divisor that would
// potentially remove most wires is, therefore, reduced to a maximal clique
// problem"). Exact branch-and-bound for the small graphs the vote tables
// produce, greedy fallback beyond.

#include <vector>

namespace rarsub {

/// Vertices of a maximum clique of the undirected graph `adj` (symmetric
/// adjacency matrix, no self loops). Exact for <= `exact_limit` vertices,
/// greedy (largest-degree-first with common-neighbour filtering) above.
std::vector<int> max_clique(const std::vector<std::vector<bool>>& adj,
                            int exact_limit = 40);

}  // namespace rarsub
