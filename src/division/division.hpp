#pragma once
// The paper's core contribution: Boolean division via redundancy addition
// and removal.
//
// Basic division (Sec. III): given dividend f and divisor d over a common
// variable space,
//   1. split f into the remainder r (cubes not contained by any cube of d)
//      and the quotient region F' = f − r;
//   2. AND the region with d — redundant *a priori* by Lemma 1, because F'
//      is a sum-of-subproducts of d;
//   3. run redundancy removal on the region's literal and cube wires; the
//      surviving region is the Boolean quotient q, giving f = q·d + r.
//
// Extended division (Sec. IV): the divisor itself may be decomposed. Every
// region wire "votes" (via fault implications) for the subset of d's cubes
// whose implied value is 0; a maximum clique over wires with intersecting
// votes selects the core divisor d_c ⊆ cubes(d); d is re-expressed as
// d = d_c + d_rem and basic division by d_c follows.
//
// Both run over a self-contained region circuit (this header) or spliced
// into the full circuit for global-don't-care operation (substitute.hpp).

#include <vector>

#include "gatenet/gatenet.hpp"
#include "sop/sop.hpp"

namespace rarsub {

struct DivisionOptions {
  /// Recursive-learning depth for the implications (the paper's don't-care
  /// effort dial; the ext+GDC configuration uses >= 1 in global mode).
  int learning_depth = 0;
};

struct DivisionResult {
  bool success = false;  ///< non-zero quotient was produced
  Sop quotient;          ///< over the common variable space
  Sop remainder;         ///< over the common variable space
};

/// Basic Boolean division f = q·d + r (region-local implications).
DivisionResult basic_boolean_divide(const Sop& f, const Sop& d,
                                    const DivisionOptions& opts = {});

/// One row of the paper's Table I.
struct VoteEntry {
  int cube = -1;                ///< f-cube index of the voting wire
  int var = -1;                 ///< variable of the voting literal wire
  std::vector<int> candidates;  ///< d-cube indices implied to 0 by the fault
  bool valid = false;  ///< some candidate cube contains the wire's cube
};

/// The vote table of extended division (region-local implications).
std::vector<VoteEntry> vote_table(const Sop& f, const Sop& d,
                                  const DivisionOptions& opts = {});

/// Core-divisor selection of extended division: vote, build the graph,
/// take a maximum clique and intersect its candidate sets. Falls back to
/// the full cube set when no usable vote exists. Returns sorted d-cube
/// indices (never empty for a non-empty d).
std::vector<int> choose_core_divisor(const Sop& f, const Sop& d,
                                     const DivisionOptions& opts = {});

/// Remainder split of basic division (Fig. 2(b)): cubes of `f` contained
/// by some cube of `d` go to `fprime`, the rest to `remainder`.
void split_remainder(const Sop& f, const Sop& d, Sop* fprime, Sop* remainder);

struct ExtendedResult {
  bool success = false;
  /// Chosen core-divisor cube indices into d (all of them == basic case).
  std::vector<int> core_cubes;
  Sop quotient;   ///< over the common variable space, w.r.t. the core divisor
  Sop remainder;  ///< cubes of f not contained by any core-divisor cube
};

/// Extended Boolean division: vote, pick the core divisor by maximum
/// clique, then divide by it.
ExtendedResult extended_boolean_divide(const Sop& f, const Sop& d,
                                       const DivisionOptions& opts = {});

// ---------------------------------------------------------------------
// Region plumbing shared with the substitution driver (exposed for reuse
// and white-box tests).

/// The specialized multi-gate configuration of Fig. 2(c): F' cube gates
/// feeding the Q OR gate, the divisor, the bold AND, and the output OR
/// that re-adds the remainder cubes.
struct DivisionRegion {
  GateNet gn;
  std::vector<int> var_pi;      ///< variable -> PI gate
  std::vector<int> fcube_gate;  ///< F' cube AND gates (region wires)
  std::vector<int> dcube_gate;  ///< divisor cube AND gates (vote targets)
  int q_or = -1;
  int d_or = -1;
  int bold_and = -1;
  int out_or = -1;
};

/// Build the self-contained region circuit. When `connect_bold` is false,
/// the divisor side is left dangling (the voting configuration of
/// Fig. 3(a)); F' then is all of f and `remainder` must be empty.
DivisionRegion build_division_region(const Sop& fprime, const Sop& remainder,
                                     const Sop& d, bool connect_bold = true);

/// Run the paper's redundancy-removal step on a region embedded in `gn`:
/// literal pins of `fcube_gates` are tested stuck-at-1 and their cube pins
/// on `q_or` stuck-at-0, to fixpoint. Returns the number of removals.
int region_redundancy_removal(GateNet& gn, const std::vector<int>& fcube_gates,
                              int q_or, int learning_depth);

/// Read the surviving quotient cover out of a (possibly rewritten) region.
/// `pi_of_gate[g]` maps a gate id back to its variable (-1 otherwise).
Sop extract_quotient(const GateNet& gn, const std::vector<int>& fcube_gates,
                     int q_or, const std::vector<int>& gate_var, int num_vars);

}  // namespace rarsub
