#include <algorithm>
#include <cassert>

#include "atpg/fault.hpp"
#include "division/clique.hpp"
#include "division/division.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"

namespace rarsub {

namespace {

// Pin index of variable v's literal inside cube gate of `c` (pins follow
// ascending variable order of present literals).
int literal_pin(const Cube& c, int v) {
  int pin = 0;
  for (int u = 0; u < v; ++u)
    if (c.lit(u) != Lit::Absent) ++pin;
  return pin;
}

}  // namespace

void split_remainder(const Sop& f, const Sop& d, Sop* fprime, Sop* remainder) {
  *fprime = Sop(f.num_vars());
  *remainder = Sop(f.num_vars());
  for (const Cube& c : f.cubes()) {
    if (d.scc_contains(c)) fprime->add_cube(c);
    else remainder->add_cube(c);
  }
}

std::vector<VoteEntry> vote_table(const Sop& f, const Sop& d,
                                  const DivisionOptions& opts) {
  OBS_SCOPED_TIMER("division.vote_table");
  std::vector<VoteEntry> table;
  if (f.num_cubes() == 0 || d.num_cubes() == 0) return table;

  // Fig. 3(a) configuration: the dividend drives the observable output;
  // the divisor cubes sit beside it, fed by the same variables, and pick
  // up implication values during each fault analysis.
  DivisionRegion region =
      build_division_region(f, Sop(f.num_vars()), d, /*connect_bold=*/false);

  for (int ci = 0; ci < f.num_cubes(); ++ci) {
    const Cube& c = f.cube(ci);
    for (int v = 0; v < f.num_vars(); ++v) {
      if (c.lit(v) == Lit::Absent) continue;
      VoteEntry e;
      e.cube = ci;
      e.var = v;
      const WireRef w{region.fcube_gate[static_cast<std::size_t>(ci)],
                      literal_pin(c, v)};
      const FaultResult fr =
          analyze_fault(region.gn, w, /*stuck=*/true, opts.learning_depth);
      if (fr.untestable) {
        // Redundant regardless of the divisor: votes for every cube.
        for (int k = 0; k < d.num_cubes(); ++k) e.candidates.push_back(k);
      } else {
        for (int k = 0; k < d.num_cubes(); ++k) {
          const int g = region.dcube_gate[static_cast<std::size_t>(k)];
          if (fr.values[static_cast<std::size_t>(g)] == TV::Zero)
            e.candidates.push_back(k);
        }
      }
      // Redundancy-addition check (paper Sec. IV): the wire's cube must be
      // contained by a candidate core-divisor cube, otherwise the cube ends
      // up in the remainder and the expected conflict never forms.
      for (int k : e.candidates)
        if (d.cube(k).contains(c)) {
          e.valid = true;
          break;
        }
      OBS_COUNT("division.votes", e.candidates.size());
      table.push_back(std::move(e));
    }
  }
  OBS_VALUE("division.vote_table.entries", table.size());
  return table;
}

std::vector<int> choose_core_divisor(const Sop& f, const Sop& d,
                                     const DivisionOptions& opts) {
  std::vector<int> all;
  for (int k = 0; k < d.num_cubes(); ++k) all.push_back(k);
  if (d.num_cubes() <= 1 || f.num_cubes() == 0) return all;

  const std::vector<VoteEntry> table = vote_table(f, d, opts);
  std::vector<const VoteEntry*> wires;
  for (const VoteEntry& e : table)
    if (e.valid && !e.candidates.empty()) wires.push_back(&e);
  if (wires.empty()) return all;

  // Vote graph (Fig. 4): wires are vertices, an edge means the candidate
  // core divisors intersect.
  const int n = static_cast<int>(wires.size());
  std::vector<std::vector<bool>> adj(
      static_cast<std::size_t>(n),
      std::vector<bool>(static_cast<std::size_t>(n), false));
  auto intersects = [](const std::vector<int>& a, const std::vector<int>& b) {
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] == b[j]) return true;
      if (a[i] < b[j]) ++i;
      else ++j;
    }
    return false;
  };
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (intersects(wires[static_cast<std::size_t>(i)]->candidates,
                     wires[static_cast<std::size_t>(j)]->candidates))
        adj[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            adj[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = true;

  std::vector<int> clique = max_clique(adj);
  OBS_VALUE("division.clique.size", clique.size());
  // Core divisor = intersection of the clique's candidate sets. Pairwise
  // intersection does not guarantee a common element, so shrink the clique
  // from the back until the intersection is non-empty.
  while (!clique.empty()) {
    std::vector<int> core = wires[static_cast<std::size_t>(clique[0])]->candidates;
    for (std::size_t i = 1; i < clique.size() && !core.empty(); ++i) {
      std::vector<int> next;
      const auto& other =
          wires[static_cast<std::size_t>(clique[i])]->candidates;
      std::set_intersection(core.begin(), core.end(), other.begin(),
                            other.end(), std::back_inserter(next));
      core = std::move(next);
    }
    if (!core.empty()) {
      OBS_VALUE("division.core.size", core.size());
      OBS_EVENT(.kind = obs::EventKind::CoreDivisor,
                .a = static_cast<std::int64_t>(table.size()),
                .b = static_cast<std::int64_t>(clique.size()),
                .c = static_cast<std::int64_t>(core.size()));
      return core;
    }
    clique.pop_back();
  }
  return all;
}

ExtendedResult extended_boolean_divide(const Sop& f, const Sop& d,
                                       const DivisionOptions& opts) {
  OBS_SCOPED_TIMER("division.extended");
  ExtendedResult res;
  if (d.num_cubes() == 0) {
    res.remainder = f;
    return res;
  }

  std::vector<int> core = choose_core_divisor(f, d, opts);
  Sop core_divisor(d.num_vars());
  for (int k : core) core_divisor.add_cube(d.cube(k));

  DivisionResult basic = basic_boolean_divide(f, core_divisor, opts);
  if (!basic.success && static_cast<int>(core.size()) != d.num_cubes()) {
    // Fall back to the whole divisor before giving up.
    DivisionResult full = basic_boolean_divide(f, d, opts);
    if (full.success) {
      core.clear();
      for (int k = 0; k < d.num_cubes(); ++k) core.push_back(k);
      basic = std::move(full);
    }
  }
  res.success = basic.success;
  res.core_cubes = std::move(core);
  res.quotient = std::move(basic.quotient);
  res.remainder = std::move(basic.remainder);
  return res;
}

}  // namespace rarsub
