#include "division/substitute.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <climits>
#include <optional>
#include <stdexcept>
#include <thread>

#include "division/candidates.hpp"
#include "gatenet/build.hpp"
#include "gatenet/incremental.hpp"
#include "mem/arena.hpp"
#include "network/complement_cache.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "rar/redundancy.hpp"
#include "sop/factor.hpp"
#include "verify/equivalence.hpp"

namespace rarsub {

namespace {

// ---------------------------------------------------------------------
// Common variable space of a dividend/divisor pair: the union of the two
// fanin lists. Division is an identity over these free variables.
struct CommonSpace {
  std::vector<NodeId> vars;  // var index -> node id
  std::vector<int> dmap;     // d's local var -> common var
  Sop f_sop;                 // dividend in the common space
  Sop d_sop;                 // divisor in the common space
};

CommonSpace make_common_space(const Network& net, NodeId f, NodeId d) {
  CommonSpace cs;
  const Node& fn = net.node(f);
  const Node& dn = net.node(d);
  cs.vars.assign(fn.fanins.begin(), fn.fanins.end());
  for (NodeId x : dn.fanins) {
    auto it = std::find(cs.vars.begin(), cs.vars.end(), x);
    if (it == cs.vars.end()) {
      cs.vars.push_back(x);
      cs.dmap.push_back(static_cast<int>(cs.vars.size() - 1));
    } else {
      cs.dmap.push_back(static_cast<int>(it - cs.vars.begin()));
    }
  }
  const int nv = static_cast<int>(cs.vars.size());
  mem::ScratchScope scratch;
  mem::ScratchVector<int> fmap(fn.fanins.size());
  for (std::size_t i = 0; i < fn.fanins.size(); ++i) fmap[i] = static_cast<int>(i);
  cs.f_sop = fn.func.remap(nv, std::span<const int>(fmap));
  cs.d_sop = dn.func.remap(nv, cs.dmap);
  return cs;
}

// ---------------------------------------------------------------------
// A fully evaluated rewrite, ready to commit.
struct Candidate {
  int gain = INT_MIN;
  /// The dividend was complemented (full POS dual: complement the result
  /// back, Lemma 2).
  bool comp_f = false;
  /// The divided cover was the divisor's complement (the divisor literal
  /// enters the rewrite negated; a decomposition splits d̄, so d is
  /// rebuilt as an AND).
  bool comp_d = false;
  bool decompose = false;  // extended division split the divisor
  Sop new_f;               // over common space + divisor variable (index nv)
  // Pieces for a decomposition commit, all in d's local space:
  Sop nc_local;            // the new core-divisor node's function
  Sop d_rest_local;        // undivided rest of the (possibly complemented) cover
};

// d's function after a decomposition commit, in local space + y_nc:
//   SOS: d = y_nc + rest          POS: d = y_nc · comp(rest)
Sop divisor_after_split(const Candidate& cand, int m) {
  mem::ScratchScope scratch;
  mem::ScratchVector<int> ext(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) ext[static_cast<std::size_t>(i)] = i;
  Sop d_new(m + 1);
  if (!cand.comp_d) {
    const Sop rest_ext =
        cand.d_rest_local.remap(m + 1, std::span<const int>(ext));
    for (const Cube& c : rest_ext.cubes()) d_new.add_cube(c);
    Cube yc(m + 1);
    yc.set_lit(m, Lit::Pos);
    d_new.add_cube(yc);
  } else {
    const Sop comp_rest =
        cand.d_rest_local.complement().remap(m + 1, std::span<const int>(ext));
    for (Cube c : comp_rest.cubes()) {
      c.set_lit(m, Lit::Pos);
      d_new.add_cube(std::move(c));
    }
    if (d_new.num_cubes() == 0) {
      // comp(rest) == 0 would make d constant; keep d = y_nc.
      Cube yc(m + 1);
      yc.set_lit(m, Lit::Pos);
      d_new.add_cube(yc);
    }
  }
  d_new.scc_minimize();
  return d_new;
}

// Assemble new_f in common-space+1 coordinates from a division outcome and
// score the candidate. `d_local_cover` is the divided cover in d's local
// space with cube order matching `divided_cover` (dn.func for SOS, the
// cached local complement for POS). Returns nullopt when the divisor
// variable ends up unused or a size guard trips.
std::optional<Candidate> score(const Network& net, NodeId f, NodeId d,
                               const CommonSpace& cs, bool comp_f, bool comp_d,
                               const SubstituteOptions& opts,
                               const Sop& divided_cover,
                               const Sop& d_local_cover,
                               const std::vector<int>& core,
                               const Sop& quotient, const Sop& remainder) {
  if (quotient.num_cubes() == 0) return std::nullopt;
  const int nv = static_cast<int>(cs.vars.size());

  Candidate cand;
  cand.comp_f = comp_f;
  cand.comp_d = comp_d;
  cand.decompose = static_cast<int>(core.size()) != divided_cover.num_cubes();

  // g = quotient·(y or !y) + remainder over nv+1 variables.
  mem::ScratchScope scratch;
  mem::ScratchVector<int> ext(static_cast<std::size_t>(nv));
  for (int i = 0; i < nv; ++i) ext[static_cast<std::size_t>(i)] = i;
  Sop g(nv + 1);
  g.cubes().reserve(
      static_cast<std::size_t>(quotient.num_cubes() + remainder.num_cubes()));
  // Divisor literal polarity: dividing by d̄ uses the negated literal. The
  // final complement (comp_f) flips nothing here — it complements g whole.
  const Lit ylit = comp_d ? Lit::Neg : Lit::Pos;
  const Sop q_ext = quotient.remap(nv + 1, std::span<const int>(ext));
  for (Cube c : q_ext.cubes()) {
    c.set_lit(nv, ylit);
    g.add_cube(std::move(c));
  }
  const Sop r_ext = remainder.remap(nv + 1, std::span<const int>(ext));
  for (const Cube& c : r_ext.cubes()) g.add_cube(c);
  g.scc_minimize();

  if (comp_f) {
    // Lemma 2 dual: we divided the complemented dividend; complement back.
    if (g.num_cubes() > opts.max_complement_cubes) {
      OBS_COUNT("subst.reject.max_complement_cubes", 1);
      OBS_EVENT(.kind = obs::EventKind::SubstituteReject, .node = f,
                .divisor = d, .a = g.num_cubes(),
                .reason = "max_complement_cubes");
      return std::nullopt;
    }
    g = g.complement();
    if (g.num_cubes() > 2 * opts.max_node_cubes) {
      OBS_COUNT("subst.reject.max_node_cubes", 1);
      OBS_EVENT(.kind = obs::EventKind::SubstituteReject, .node = f,
                .divisor = d, .a = g.num_cubes(),
                .reason = "max_node_cubes");
      return std::nullopt;
    }
  }
  // The rewrite must actually use the divisor.
  bool uses_y = false;
  for (const Cube& c : g.cubes())
    if (c.lit(nv) != Lit::Absent) uses_y = true;
  if (!uses_y) return std::nullopt;
  cand.new_f = std::move(g);

  if (cand.decompose) {
    assert(d_local_cover.num_cubes() == divided_cover.num_cubes());
    const int m = net.node(d).func.num_vars();
    Sop nc(m), rest(m);
    mem::ScratchVector<unsigned char> in_core(
        static_cast<std::size_t>(d_local_cover.num_cubes()), 0);
    for (int k : core) {
      assert(k < d_local_cover.num_cubes());
      in_core[static_cast<std::size_t>(k)] = 1;
    }
    for (int k = 0; k < d_local_cover.num_cubes(); ++k)
      (in_core[static_cast<std::size_t>(k)] ? nc : rest)
          .add_cube(d_local_cover.cube(k));
    if (comp_d) {
      // The new node carries comp(core): d = y_nc · comp(rest).
      nc = nc.complement();
      if (nc.num_cubes() > opts.max_complement_cubes) {
        OBS_COUNT("subst.reject.max_complement_cubes", 1);
        OBS_EVENT(.kind = obs::EventKind::SubstituteReject, .node = f,
                  .divisor = d, .a = nc.num_cubes(),
                  .reason = "max_complement_cubes");
        return std::nullopt;
      }
    }
    if (nc.num_cubes() == 0) return std::nullopt;
    cand.nc_local = std::move(nc);
    cand.d_rest_local = std::move(rest);
  }

  const Node& dn = net.node(d);
  const int old_cost = factored_literal_count(net.node(f).func) +
                       factored_literal_count(dn.func);
  int new_divisor_cost = factored_literal_count(dn.func);
  if (cand.decompose)
    new_divisor_cost =
        factored_literal_count(cand.nc_local) +
        factored_literal_count(divisor_after_split(cand, dn.func.num_vars()));
  const int new_cost = factored_literal_count(cand.new_f) + new_divisor_cost;
  cand.gain = old_cost - new_cost;
  return cand;
}

// ---------------------------------------------------------------------
// Region-mode evaluation (Basic / Extended).
std::optional<Candidate> evaluate_region(const Network& net, NodeId f, NodeId d,
                                         const CommonSpace& cs, bool comp_f,
                                         bool comp_d,
                                         const SubstituteOptions& opts,
                                         const Sop& f_cover, const Sop& d_cover,
                                         const Sop& d_local_cover) {
  DivisionOptions dopts;
  std::optional<Candidate> best;
  {
    const DivisionResult r = basic_boolean_divide(f_cover, d_cover, dopts);
    if (r.success) {
      std::vector<int> core;
      for (int k = 0; k < d_cover.num_cubes(); ++k) core.push_back(k);
      best = score(net, f, d, cs, comp_f, comp_d, opts, d_cover, d_local_cover,
                   core, r.quotient, r.remainder);
    }
  }
  if (opts.method != SubstMethod::Basic) {
    // Extended division: the vote-selected core divisor competes against
    // the whole-divisor result above.
    const ExtendedResult r = extended_boolean_divide(f_cover, d_cover, dopts);
    if (r.success) {
      std::optional<Candidate> ext =
          score(net, f, d, cs, comp_f, comp_d, opts, d_cover, d_local_cover,
                r.core_cubes, r.quotient, r.remainder);
      if (ext && (!best || ext->gain > best->gain)) best = std::move(ext);
    }
  }
  return best;
}

// ---------------------------------------------------------------------
// Global-mode evaluation (ExtendedGdc): core selection via region votes,
// then the division gadget is spliced into the full circuit and redundancy
// removal runs with whole-circuit implications — every internal don't care
// the implications can reach becomes usable.
std::optional<Candidate> evaluate_gdc(const Network& net, NodeId f, NodeId d,
                                      const CommonSpace& cs, bool comp_f,
                                      bool comp_d,
                                      const SubstituteOptions& opts,
                                      const GateNet& base, const GateNetMap& map,
                                      const Sop& f_cover, const Sop& d_cover,
                                      const Sop& d_local_cover) {
  DivisionOptions dopts;  // votes stay region-local (cheap)
  std::vector<int> core = choose_core_divisor(f_cover, d_cover, dopts);
  Sop core_cover(d_cover.num_vars());
  for (int k : core) core_cover.add_cube(d_cover.cube(k));

  Sop fprime, remainder;
  split_remainder(f_cover, core_cover, &fprime, &remainder);
  if (fprime.num_cubes() == 0 &&
      static_cast<int>(core.size()) != d_cover.num_cubes()) {
    // Retry against the whole divisor.
    core.clear();
    for (int k = 0; k < d_cover.num_cubes(); ++k) core.push_back(k);
    core_cover = d_cover;
    split_remainder(f_cover, core_cover, &fprime, &remainder);
  }
  if (fprime.num_cubes() == 0) return std::nullopt;

  // Splice the gadget into a copy of the full circuit (Fig. 3(b), but with
  // the whole network around it).
  GateNet gn = base;
  const int nv = static_cast<int>(cs.vars.size());
  std::vector<Signal> var_signal;
  for (NodeId x : cs.vars)
    var_signal.push_back(Signal{map.node_out[static_cast<std::size_t>(x)], false});

  std::vector<int> fcube_gates;
  const Signal q = build_sop_gates(gn, fprime, var_signal, &fcube_gates, "q.");

  Signal core_sig;
  if (static_cast<int>(core.size()) == d_cover.num_cubes()) {
    // Whole divisor: reuse the node's own signal (sharing maximizes the
    // don't cares the implications can exploit); a complemented-divisor
    // division reads it inverted.
    core_sig = Signal{map.node_out[static_cast<std::size_t>(d)], comp_d};
  } else {
    core_sig = build_sop_gates(gn, core_cover, var_signal, nullptr, "dc.");
  }
  const int bold = gn.add_gate(GateType::And, {q, core_sig}, "bold");

  std::vector<int> rem_gates;
  (void)build_sop_gates(gn, remainder, var_signal, &rem_gates, "rm.");
  std::vector<Signal> outs{Signal{bold, false}};
  for (int g : rem_gates) outs.push_back(Signal{g, false});
  const int out_or = gn.add_gate(GateType::Or, std::move(outs), "fnew");
  // comp_f: the gadget computed comp(f); a negated buffer restores polarity.
  const int fout = gn.add_gate(GateType::Or, {Signal{out_or, comp_f}}, "fbuf");

  // Repoint every reader of f's old root to the gadget output.
  const int old_root = map.node_out[static_cast<std::size_t>(f)];
  for (int g = 0; g < gn.num_gates(); ++g) {
    if (g == fout) continue;
    Gate& gd = gn.gate(g);
    for (Signal& s : gd.fanins) {
      if (s.gate != old_root) continue;
      auto& fo = gn.gate(old_root).fanouts;
      auto it = std::find(fo.begin(), fo.end(), g);
      if (it != fo.end()) fo.erase(it);
      s.gate = fout;
      gn.gate(fout).fanouts.push_back(g);
    }
  }
  gn.replace_output(old_root, fout);

  region_redundancy_removal(gn, fcube_gates, q.gate, opts.gdc_learning_depth);

  std::vector<int> gate_var(static_cast<std::size_t>(gn.num_gates()), -1);
  for (int v = 0; v < nv; ++v)
    gate_var[static_cast<std::size_t>(var_signal[static_cast<std::size_t>(v)].gate)] = v;
  const Sop quotient = extract_quotient(gn, fcube_gates, q.gate, gate_var, nv);
  if (quotient.num_cubes() == 0) return std::nullopt;
  return score(net, f, d, cs, comp_f, comp_d, opts, d_cover, d_local_cover,
               core, quotient, remainder);
}

// Planted bug for the fuzz harness (opts.inject_skip_remainder): forget
// to re-attach the remainder, i.e. drop every cube of the rewritten cover
// that does not use the divisor literal. A no-op when the division had an
// empty remainder — the corruption only bites where it matters.
Sop drop_remainder_cubes(const Sop& new_f, int y_var) {
  Sop out(new_f.num_vars());
  for (const Cube& c : new_f.cubes())
    if (c.lit(y_var) != Lit::Absent) out.add_cube(c);
  return out;
}

// ---------------------------------------------------------------------
void commit(Network& net, NodeId f, NodeId d, const CommonSpace& cs,
            const Candidate& cand, const SubstituteOptions& opts,
            SubstituteStats* stats) {
  OBS_COUNT("subst.commits", 1);
  if (cand.comp_f) OBS_COUNT("subst.commits.pos", 1);
  if (cand.decompose) OBS_COUNT("subst.decompositions", 1);
  // The commit event precedes the node_update events its set_function /
  // add_node calls emit, so a replay sees cause before effect.
  OBS_EVENT(.kind = obs::EventKind::SubstituteCommit, .node = f, .divisor = d,
            .a = cand.gain, .b = cand.new_f.num_cubes(),
            .reason = cand.comp_f ? (cand.decompose ? "pos+split" : "pos")
                                  : (cand.decompose ? "sos+split" : "sos"));
  NodeId y = d;
  if (cand.decompose) {
    const int m = net.node(d).func.num_vars();
    const NodeId nc = net.add_node(
        net.fresh_name(std::string(net.node(d).name) + "_c"),
        {net.fanins(d).begin(), net.fanins(d).end()}, cand.nc_local);
    std::vector<NodeId> dfanins(net.fanins(d).begin(), net.fanins(d).end());
    dfanins.push_back(nc);
    net.set_function(d, std::move(dfanins), divisor_after_split(cand, m));
    y = nc;
    if (stats) ++stats->decompositions;
  }

  // Final fanin list of f: support-filtered common space + the divisor.
  const int nv = static_cast<int>(cs.vars.size());
  const Sop& committed_f = opts.inject_skip_remainder
                               ? drop_remainder_cubes(cand.new_f, nv)
                               : cand.new_f;
  std::vector<NodeId> fanins;
  std::vector<int> var_map(static_cast<std::size_t>(nv + 1), 0);
  const std::vector<int> supp = committed_f.support();
  for (int v : supp) {
    const NodeId node = (v == nv) ? y : cs.vars[static_cast<std::size_t>(v)];
    auto it = std::find(fanins.begin(), fanins.end(), node);
    if (it == fanins.end()) {
      fanins.push_back(node);
      var_map[static_cast<std::size_t>(v)] = static_cast<int>(fanins.size() - 1);
    } else {
      var_map[static_cast<std::size_t>(v)] = static_cast<int>(it - fanins.begin());
    }
  }
  Sop func = committed_f.remap(static_cast<int>(fanins.size()), var_map);
  func.scc_minimize();
  net.set_function(f, std::move(fanins), std::move(func));
  if (stats) {
    ++stats->substitutions;
    if (cand.comp_f) ++stats->pos_substitutions;
  }
}

// Quick structural pre-filter: a division can only produce a non-zero
// quotient when some cube of the dividend cover is contained by a cube of
// the divisor cover.
bool sos_possible(const Sop& f_cover, const Sop& d_cover) {
  for (const Cube& c : f_cover.cubes())
    if (d_cover.scc_contains(c)) return true;
  return false;
}

// Per-network-state gate view for the GDC method, full-rebuild flavor:
// the --no-incremental escape hatch. The default path keeps an
// IncrementalGateView patched from the mutation journal instead.
struct GdcBase {
  GateNet base;
  GateNetMap map;
  std::uint64_t mutations = ~0ULL;
};

// Pre-verified facts the candidate filter hands to the evaluator so it can
// skip work: views with a cleared mask bit cannot produce a candidate, and
// cycle_checked means d was already proven outside f's fanout cone.
struct AttemptHooks {
  unsigned view_mask = kAllViews;
  bool cycle_checked = false;
  const GateNet* gdc_base = nullptr;
  const GateNetMap* gdc_map = nullptr;
};

// Evaluation half of an attempt: never mutates the network (safe to run
// concurrently for distinct divisors). On success fills *out_cand /
// *out_cs for a later serial commit and returns the raw gain.
std::optional<int> attempt_impl(const Network& net, NodeId f, NodeId d,
                                const SubstituteOptions& opts,
                                ComplementCache* comps,
                                const AttemptHooks& hooks, Candidate* out_cand,
                                CommonSpace* out_cs) {
  const Node& fn = net.node(f);
  const Node& dn = net.node(d);
  if (fn.is_pi || dn.is_pi || !fn.alive || !dn.alive || f == d)
    return std::nullopt;
  if (fn.func.num_cubes() == 0 || dn.func.num_cubes() == 0) return std::nullopt;
  if (fn.func.num_cubes() > opts.max_node_cubes) {
    OBS_COUNT("subst.reject.max_node_cubes", 1);
    OBS_EVENT(.kind = obs::EventKind::SubstituteReject, .node = f,
              .divisor = d, .a = fn.func.num_cubes(),
              .reason = "max_node_cubes");
    return std::nullopt;
  }
  if (dn.func.num_cubes() > opts.max_divisor_cubes) {
    OBS_COUNT("subst.reject.max_divisor_cubes", 1);
    OBS_EVENT(.kind = obs::EventKind::SubstituteReject, .node = f,
              .divisor = d, .a = dn.func.num_cubes(),
              .reason = "max_divisor_cubes");
    return std::nullopt;
  }
  if (!hooks.cycle_checked && net.depends_on(d, f)) {
    OBS_EVENT(.kind = obs::EventKind::SubstituteReject, .node = f,
              .divisor = d, .reason = "cycle");
    return std::nullopt;  // would create a cycle
  }

  OBS_COUNT("subst.attempts", 1);
  OBS_EVENT(.kind = obs::EventKind::SubstituteAttempt, .node = f, .divisor = d,
            .a = fn.func.num_cubes(), .b = dn.func.num_cubes());
  OBS_SCOPED_TIMER("subst.attempt");
  // The attempt transaction's arena frame: every scratch allocation made
  // while evaluating this (f, d) pair — quotient/remainder cube lists,
  // espresso covers, recursion temporaries — is reclaimed in O(1) when the
  // attempt returns. Each parallel gain-evaluation worker has its own
  // thread-local arena, so jobs=1 and jobs=N behave identically.
  mem::ScratchScope attempt_scratch;
  CommonSpace cs = make_common_space(net, f, d);
  if (static_cast<int>(cs.vars.size()) > opts.max_common_vars) {
    OBS_COUNT("subst.reject.max_common_vars", 1);
    OBS_EVENT(.kind = obs::EventKind::SubstituteReject, .node = f,
              .divisor = d, .a = static_cast<std::int64_t>(cs.vars.size()),
              .reason = "max_common_vars");
    return std::nullopt;
  }
  const int nv = static_cast<int>(cs.vars.size());

  // Complements for the POS dual, computed once in local spaces so cube
  // orders stay aligned between the common-space and local covers. When
  // the filter already refuted every POS view, the complements (and their
  // remaps into the common space) are not needed at all. The cache's
  // values are reference-stable (node-based map) and no node version can
  // change during a const evaluation, so the local complements are
  // borrowed rather than copied.
  Sop f_comp, d_comp;
  const Sop* d_comp_local = nullptr;
  bool pos_ok = opts.try_pos &&
                (hooks.view_mask & (kViewSosPos | kViewPosPos | kViewPosSos));
  if (pos_ok) {
    const Sop& f_comp_ref = comps->get(net, f);
    const Sop& d_comp_ref = comps->get(net, d);
    if (f_comp_ref.num_cubes() > opts.max_node_cubes ||
        f_comp_ref.num_cubes() == 0 ||
        d_comp_ref.num_cubes() > opts.max_divisor_cubes ||
        d_comp_ref.num_cubes() == 0) {
      // The POS views are skipped; the SOS views still run.
      if (f_comp_ref.num_cubes() > opts.max_node_cubes)
        OBS_COUNT("subst.reject.max_node_cubes", 1);
      if (d_comp_ref.num_cubes() > opts.max_divisor_cubes)
        OBS_COUNT("subst.reject.max_divisor_cubes", 1);
      pos_ok = false;
    } else {
      mem::ScratchVector<int> fmap(fn.fanins.size());
      for (std::size_t i = 0; i < fn.fanins.size(); ++i)
        fmap[i] = static_cast<int>(i);
      f_comp = f_comp_ref.remap(nv, std::span<const int>(fmap));
      d_comp = d_comp_ref.remap(nv, cs.dmap);
      d_comp_local = &d_comp_ref;
    }
  }

  // The GDC method needs the full-circuit gate view: use the caller's
  // hoisted copy when provided (substitute_network keeps one per network
  // state), else build locally.
  GateNet local_base;
  GateNetMap local_map;
  const GateNet* basep = &local_base;
  const GateNetMap* mapp = &local_map;
  if (opts.method == SubstMethod::ExtendedGdc) {
    if (hooks.gdc_base != nullptr) {
      basep = hooks.gdc_base;
      mapp = hooks.gdc_map;
    } else {
      local_base = build_gatenet(net, local_map);
    }
  }

  std::optional<Candidate> best;
  // A divisor decomposition must pay for the structural churn it causes
  // (one extra node, later-pass interference): require one literal of
  // margin over a plain division.
  auto effective = [](const Candidate& c) {
    return c.gain - (c.decompose ? 1 : 0);
  };
  auto consider = [&](std::optional<Candidate> c) {
    if (c && (!best || effective(*c) > effective(*best))) best = std::move(c);
  };
  // Four division views of the same pair (the SOS/POS symmetry of the
  // paper plus the complemented-divisor move of SIS `resub -d`):
  //   (f , d ) -> f = q·y + r          (f , d̄) -> f = q·y' + r
  //   (f̄, d̄) -> POS dual (Lemma 2)    (f̄, d ) -> dual with y positive
  auto run = [&](bool comp_f, bool comp_d, const Sop& f_cover,
                 const Sop& d_cover, const Sop& d_local_cover) {
    if (!sos_possible(f_cover, d_cover)) return;
    consider(evaluate_region(net, f, d, cs, comp_f, comp_d, opts, f_cover,
                             d_cover, d_local_cover));
    // Global don't cares come on top of — never instead of — the
    // region-local result: take whichever scores better.
    if (opts.method == SubstMethod::ExtendedGdc)
      consider(evaluate_gdc(net, f, d, cs, comp_f, comp_d, opts, *basep, *mapp,
                            f_cover, d_cover, d_local_cover));
  };
  if (hooks.view_mask & kViewSosSos)
    run(false, false, cs.f_sop, cs.d_sop, dn.func);
  if (pos_ok) {
    if (hooks.view_mask & kViewSosPos)
      run(false, true, cs.f_sop, d_comp, *d_comp_local);
    if (hooks.view_mask & kViewPosSos)
      run(true, false, f_comp, cs.d_sop, dn.func);
    if (hooks.view_mask & kViewPosPos)
      run(true, true, f_comp, d_comp, *d_comp_local);
  }

  if (!best || effective(*best) <= 0) {
    OBS_EVENT(.kind = obs::EventKind::SubstituteReject, .node = f,
              .divisor = d, .a = best ? best->gain : 0,
              .reason = best ? "no_gain" : "no_division");
    return std::nullopt;
  }
  const int gain = best->gain;
  if (out_cand != nullptr) *out_cand = std::move(*best);
  if (out_cs != nullptr) *out_cs = std::move(cs);
  return gain;
}

std::optional<int> attempt(Network& net, NodeId f, NodeId d,
                           const SubstituteOptions& opts, bool commit_it,
                           SubstituteStats* stats, ComplementCache* comps,
                           const AttemptHooks& hooks = {}) {
  Candidate cand;
  CommonSpace cs;
  const std::optional<int> gain =
      attempt_impl(net, f, d, opts, comps, hooks, &cand, &cs);
  if (gain && commit_it) commit(net, f, d, cs, cand, opts, stats);
  return gain;
}

// Paranoid self-verification (SubstituteOptions::verify_commits): hold a
// pristine copy of the input plus a journal cursor, and after every
// committed substitution replay check_equivalence on the affected output
// cone — the POs forward-reachable from the nodes touched since the last
// check. A miscompare throws immediately, naming the commit, instead of
// surfacing as an end-of-flow "non-equivalent".
class CommitVerifier {
 public:
  CommitVerifier(const Network& net, bool enabled) : enabled_(enabled) {
    if (!enabled_) return;
    original_ = net;
    cursor_ = net.journal().seq();
  }

  void after_commit(const Network& net, NodeId f, NodeId d) {
    if (!enabled_) return;
    OBS_SCOPED_TIMER("verify.commit_check");
    OBS_COUNT("verify.commits_checked", 1);
    std::vector<NodeId> touched;
    const bool in_window =
        net.journal().visit_since(cursor_, [&](const NetEvent& e) {
          if (e.kind != NetEventKind::OutputChanged) touched.push_back(e.node);
        });
    cursor_ = net.journal().seq();
    EquivalenceOptions eo;
    if (in_window) {
      const std::vector<std::string> cone = net.outputs_affected_by(touched);
      // A commit inside a dead cone cannot change any PO.
      if (cone.empty()) return;
      OBS_VALUE("verify.cone_pos", static_cast<std::int64_t>(cone.size()));
      eo.only_pos = cone;
    }  // journal trimmed past the cursor: fall back to a full check
    const EquivalenceResult eq = check_equivalence(original_, net, eo);
    if (!eq.equivalent) {
      OBS_COUNT("verify.failures", 1);
      throw std::runtime_error("verify_commits: substituting divisor " +
                               std::string(net.node(d).name) + " into node " +
                               std::string(net.node(f).name) +
                               " broke equivalence: " + eq.message);
    }
  }

 private:
  bool enabled_;
  Network original_;
  std::uint64_t cursor_ = 0;
};

}  // namespace


std::optional<int> try_pool_substitution(Network& net, NodeId f,
                                         const std::vector<NodeId>& divisors,
                                         const SubstituteOptions& opts) {
  const Node& fn = net.node(f);
  if (fn.is_pi || !fn.alive || fn.func.num_cubes() == 0 ||
      fn.func.num_cubes() > opts.max_node_cubes) {
    if (!fn.is_pi && fn.alive && fn.func.num_cubes() > opts.max_node_cubes)
      OBS_COUNT("subst.reject.max_node_cubes", 1);
    return std::nullopt;
  }
  OBS_COUNT("subst.pool.attempts", 1);

  // Common variable space: f's fanins plus every pooled divisor's fanins.
  std::vector<NodeId> vars(fn.fanins.begin(), fn.fanins.end());
  auto var_of = [&](NodeId x) {
    auto it = std::find(vars.begin(), vars.end(), x);
    if (it == vars.end()) {
      vars.push_back(x);
      return static_cast<int>(vars.size() - 1);
    }
    return static_cast<int>(it - vars.begin());
  };
  struct PoolCube {
    NodeId owner;
    int local_index;
  };
  std::vector<PoolCube> owners;
  std::vector<std::vector<int>> dmaps;
  std::vector<NodeId> used;
  for (NodeId d : divisors) {
    const Node& dn = net.node(d);
    if (dn.is_pi || !dn.alive || d == f) continue;
    if (dn.func.num_cubes() == 0 ||
        dn.func.num_cubes() > opts.max_divisor_cubes)
      continue;
    if (net.depends_on(d, f)) continue;
    std::vector<int> dmap;
    for (NodeId x : dn.fanins) dmap.push_back(var_of(x));
    if (static_cast<int>(vars.size()) > opts.max_common_vars) {
      OBS_COUNT("subst.reject.max_common_vars", 1);
      return std::nullopt;
    }
    dmaps.push_back(std::move(dmap));
    used.push_back(d);
  }
  if (used.size() < 2) return std::nullopt;  // single-node case is covered

  const int nv = static_cast<int>(vars.size());
  std::vector<int> fmap(fn.fanins.size());
  for (std::size_t i = 0; i < fn.fanins.size(); ++i)
    fmap[i] = static_cast<int>(i);
  const Sop f_sop = fn.func.remap(nv, fmap);

  // Pretend all cubes come from one node (Fig. 3(c)).
  Sop pool(nv);
  for (std::size_t k = 0; k < used.size(); ++k) {
    const Sop d_sop = net.node(used[k]).func.remap(nv, dmaps[k]);
    for (int ci = 0; ci < d_sop.num_cubes(); ++ci) {
      pool.add_cube(d_sop.cube(ci));
      owners.push_back(PoolCube{used[k], ci});
    }
  }
  if (!sos_possible(f_sop, pool)) return std::nullopt;

  DivisionOptions dopts;
  const std::vector<int> core = choose_core_divisor(f_sop, pool, dopts);
  if (core.empty() ||
      static_cast<int>(core.size()) == pool.num_cubes())
    return std::nullopt;  // nothing sharper than "everything"

  // Single-owner cores that cover the whole owner are plain divisions the
  // single-divisor pass already tried.
  bool single_owner = true;
  for (int k : core)
    if (owners[static_cast<std::size_t>(k)].owner !=
        owners[static_cast<std::size_t>(core[0])].owner)
      single_owner = false;
  if (single_owner &&
      static_cast<int>(core.size()) ==
          net.node(owners[static_cast<std::size_t>(core[0])].owner)
              .func.num_cubes())
    return std::nullopt;

  Sop core_cover(nv);
  for (int k : core) core_cover.add_cube(pool.cube(k));
  const DivisionResult div = basic_boolean_divide(f_sop, core_cover, dopts);
  if (!div.success) return std::nullopt;

  // Materialize the pooled core as a brand-new node over the union of the
  // variables it mentions.
  const std::vector<int> supp = core_cover.support();
  if (supp.empty()) return std::nullopt;
  std::vector<NodeId> nc_fanins;
  std::vector<int> back(static_cast<std::size_t>(nv), 0);
  for (std::size_t i = 0; i < supp.size(); ++i) {
    back[static_cast<std::size_t>(supp[i])] = static_cast<int>(i);
    nc_fanins.push_back(vars[static_cast<std::size_t>(supp[i])]);
  }
  Sop nc_func = core_cover.remap(static_cast<int>(supp.size()), back);
  nc_func.scc_minimize();

  // f_new = q·y + r over nv+1 variables.
  std::vector<int> ext(static_cast<std::size_t>(nv));
  for (int i = 0; i < nv; ++i) ext[static_cast<std::size_t>(i)] = i;
  Sop g(nv + 1);
  const Sop q_ext = div.quotient.remap(nv + 1, ext);
  for (Cube c : q_ext.cubes()) {
    c.set_lit(nv, Lit::Pos);
    g.add_cube(std::move(c));
  }
  const Sop r_ext = div.remainder.remap(nv + 1, ext);
  for (const Cube& c : r_ext.cubes()) g.add_cube(c);
  g.scc_minimize();
  bool uses_y = false;
  for (const Cube& c : g.cubes())
    if (c.lit(nv) != Lit::Absent) uses_y = true;
  if (!uses_y) return std::nullopt;

  // The new node is pure cost here (existing divisors stay untouched), so
  // demand the dividend's savings pay for it with margin.
  const int gain = factored_literal_count(fn.func) -
                   factored_literal_count(g) -
                   factored_literal_count(nc_func) - 1;
  if (gain <= 0) return std::nullopt;

  const NodeId nc =
      net.add_node(net.fresh_name(std::string(fn.name) + "_p"), nc_fanins,
                   nc_func);
  std::vector<NodeId> new_fanins;
  std::vector<int> var_map(static_cast<std::size_t>(nv + 1), 0);
  for (int v : g.support()) {
    const NodeId node = (v == nv) ? nc : vars[static_cast<std::size_t>(v)];
    auto it = std::find(new_fanins.begin(), new_fanins.end(), node);
    if (it == new_fanins.end()) {
      new_fanins.push_back(node);
      var_map[static_cast<std::size_t>(v)] =
          static_cast<int>(new_fanins.size() - 1);
    } else {
      var_map[static_cast<std::size_t>(v)] =
          static_cast<int>(it - new_fanins.begin());
    }
  }
  Sop func = g.remap(static_cast<int>(new_fanins.size()), var_map);
  func.scc_minimize();
  net.set_function(f, std::move(new_fanins), std::move(func));
  return gain;
}

std::optional<int> try_substitution(Network& net, NodeId f, NodeId d,
                                    const SubstituteOptions& opts,
                                    bool commit_it, ComplementCache* comps) {
  ComplementCache local;
  return attempt(net, f, d, opts, commit_it, nullptr,
                 comps != nullptr ? comps : &local);
}

SubstituteStats substitute_network(Network& net, const SubstituteOptions& opts) {
  OBS_SCOPED_TIMER("subst.network");
  SubstituteStats stats;
  stats.literals_before = net.factored_literals();
  CommitVerifier verifier(net, opts.verify_commits);
  ComplementCache comps;
  std::optional<CandidateFilter> filter;
  if (opts.enable_prune) filter.emplace(net, opts, &comps);

  // The GDC method's whole-circuit gate view. Default: an incremental
  // view patched from the mutation journal, so a commit costs O(touched
  // nodes) instead of O(network). --no-incremental falls back to a full
  // rebuild per network state (and serves as the A/B oracle in tests).
  // Both are refreshed only from this serial loop; workers see a const
  // snapshot.
  std::optional<IncrementalGateView> gdc_view;
  GdcBase gdc;
  auto attach_gdc = [&](AttemptHooks& hooks) {
    if (opts.method != SubstMethod::ExtendedGdc) return;
    if (opts.enable_incremental) {
      if (!gdc_view)
        gdc_view.emplace(net);
      else
        gdc_view->refresh();
      hooks.gdc_base = &gdc_view->gatenet();
      hooks.gdc_map = &gdc_view->map();
    } else {
      if (gdc.mutations != net.mutations()) {
        gdc.map = GateNetMap{};
        gdc.base = build_gatenet(net, gdc.map);
        gdc.mutations = net.mutations();
      }
      hooks.gdc_base = &gdc.base;
      hooks.gdc_map = &gdc.map;
    }
  };

  // Classify (f, d) through the filter; true means evaluate.
  auto screen = [&](NodeId f, NodeId d, AttemptHooks* hooks) {
    if (!filter) return true;
    const PairDecision dec = filter->check(f, d);
    switch (dec.verdict) {
      case PairDecision::Verdict::Try:
        hooks->view_mask = dec.view_mask;
        hooks->cycle_checked = dec.cycle_checked;
        ++stats.pairs_tried;
        return true;
      case PairDecision::Verdict::PrunedSig:
        ++stats.pairs_pruned_sig;
        return false;
      case PairDecision::Verdict::PrunedMemo:
        ++stats.pairs_pruned_memo;
        return false;
      case PairDecision::Verdict::PrunedCycle:
        ++stats.pairs_pruned_cycle;
        return false;
    }
    return true;
  };

  const int jobs = opts.jobs > 1 ? opts.jobs : 1;
  std::vector<ComplementCache> worker_comps;
  if (!opts.first_positive && jobs > 1)
    worker_comps.resize(static_cast<std::size_t>(jobs));

  for (int pass = 0; pass < opts.max_passes; ++pass) {
    OBS_SCOPED_TIMER("subst.pass");
    OBS_COUNT("subst.passes", 1);
    bool changed = false;
    const std::vector<NodeId> order = net.topo_order();
    for (NodeId f : order) {
      if (!net.node(f).alive || net.node(f).is_pi) continue;
      if (filter) filter->begin_target(f);

      if (opts.first_positive) {
        // The paper's locally greedy strategy: commit the first division
        // with a positive gain ("our implementation takes the first
        // division that has a positive gain, which can be marginal").
        for (NodeId d : order) {
          if (!net.node(d).alive || d == f) continue;
          AttemptHooks hooks;
          if (!screen(f, d, &hooks)) continue;
          attach_gdc(hooks);
          const std::optional<int> gain =
              attempt(net, f, d, opts, /*commit=*/true, &stats, &comps, hooks);
          if (gain && *gain > 0) {
            verifier.after_commit(net, f, d);
            changed = true;
            break;
          }
          if (filter) filter->record_failure(f, d);
        }
      } else {
        // Best-gain strategy: collect the divisors that survive the
        // filter, evaluate them all without committing — across the
        // worker pool when jobs > 1 — then commit the winner serially.
        // Selection is a strictly-greater scan in topological order, so
        // any jobs value produces the same network.
        std::vector<NodeId> cand_d;
        std::vector<AttemptHooks> cand_hooks;
        for (NodeId d : order) {
          if (!net.node(d).alive || d == f) continue;
          AttemptHooks hooks;
          if (!screen(f, d, &hooks)) continue;
          attach_gdc(hooks);
          cand_d.push_back(d);
          cand_hooks.push_back(hooks);
        }
        const std::size_t n = cand_d.size();
        std::vector<std::optional<int>> gains(n);
        std::vector<Candidate> cands(n);
        std::vector<CommonSpace> css(n);
        if (jobs > 1 && n > 1) {
          std::atomic<std::size_t> next{0};
          // Workers have a fresh (empty) phase stack of their own; re-open
          // the spawner's full phase path on each so their allocations —
          // and the sampling profiler's SIGPROF samples — attribute to
          // the same phase paths as the jobs=1 sweep instead of "(none)".
          // Per-thread stacks mean the workers never race on each other's
          // phase state.
          const obs::PhasePath parent_path = obs::capture_phase_path();
          auto work = [&](int w) {
            obs::PhasePathScope inherit(parent_path);
            ComplementCache& wc = worker_comps[static_cast<std::size_t>(w)];
            for (;;) {
              const std::size_t i =
                  next.fetch_add(1, std::memory_order_relaxed);
              if (i >= n) break;
              gains[i] = attempt_impl(net, f, cand_d[i], opts, &wc,
                                      cand_hooks[i], &cands[i], &css[i]);
            }
          };
          std::vector<std::thread> pool;
          const std::size_t nw = std::min(static_cast<std::size_t>(jobs), n);
          pool.reserve(nw);
          for (std::size_t w = 0; w < nw; ++w)
            pool.emplace_back(work, static_cast<int>(w));
          for (std::thread& t : pool) t.join();
        } else {
          for (std::size_t i = 0; i < n; ++i)
            gains[i] = attempt_impl(net, f, cand_d[i], opts, &comps,
                                    cand_hooks[i], &cands[i], &css[i]);
        }
        std::size_t best = n;
        int best_gain = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (!gains[i]) {
            if (filter) filter->record_failure(f, cand_d[i]);
            continue;
          }
          if (*gains[i] > best_gain) {
            best = i;
            best_gain = *gains[i];
          }
        }
        if (best < n) {
          commit(net, f, cand_d[best], css[best], cands[best], opts, &stats);
          verifier.after_commit(net, f, cand_d[best]);
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  net.sweep();
  stats.literals_after = net.factored_literals();
  // Mirror the public struct into the registry so --stats / RARSUB_REPORT
  // show one unified table (commit() already counted the per-event
  // subst.commits / subst.commits.pos / subst.decompositions).
  OBS_VALUE("subst.literals_before", stats.literals_before);
  OBS_VALUE("subst.literals_after", stats.literals_after);
  return stats;
}

}  // namespace rarsub
