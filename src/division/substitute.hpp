#pragma once
// Network-level Boolean substitution driver (the paper's three
// experimental configurations):
//
//   Basic        — basic division, region-local implications
//   Extended     — extended division (divisor decomposition), region-local
//   ExtendedGdc  — extended division with global internal don't cares: the
//                  division gadget is spliced into the full circuit and the
//                  implications run to the primary outputs
//
// Every configuration also tries the product-of-sums dual (Lemma 2): both
// dividend and divisor are complemented, divided with the same machinery,
// and the result complemented back — "performing substitution through
// sum-of-product form or product-of-sum form are basically the same".

#include <optional>

#include "division/division.hpp"
#include "network/network.hpp"

namespace rarsub {

class ComplementCache;

enum class SubstMethod { Basic, Extended, ExtendedGdc };

struct SubstituteOptions {
  SubstMethod method = SubstMethod::Basic;
  /// Size cap for try_pool_substitution's divisor list.
  int max_pool_divisors = 6;
  /// Also try the POS dual of every division.
  bool try_pos = true;
  /// Commit the first division with positive literal gain (the paper's
  /// locally greedy strategy, responsible for the Table V anomaly); when
  /// false, evaluate all candidate divisors and commit the best.
  bool first_positive = true;
  /// Recursive-learning depth used by the GDC configuration.
  int gdc_learning_depth = 1;
  /// Passes over the network (each node gets at most one substitution per
  /// pass); iteration stops early at a fixpoint.
  int max_passes = 4;
  // Size guards.
  int max_node_cubes = 64;
  int max_divisor_cubes = 24;
  int max_common_vars = 48;
  int max_complement_cubes = 48;
  /// Candidate pruning (signature/support view filter + negative-pair
  /// memoization, docs/PERFORMANCE.md). Sound: disabling it must not
  /// change the optimized network, only the run time (`--no-prune`).
  bool enable_prune = true;
  /// Maintain the GDC method's whole-circuit gate view incrementally from
  /// the network's mutation journal instead of rebuilding it from scratch
  /// after every committed substitution. Results are byte-identical
  /// either way; false (--no-incremental) is the escape hatch / oracle.
  bool enable_incremental = true;
  /// Worker threads for best-gain candidate evaluation. Only effective
  /// when first_positive is false (the paper's greedy strategy commits
  /// mid-scan and is inherently serial). Results are deterministic and
  /// byte-identical across any jobs value.
  int jobs = 1;
  /// Paranoid self-verification (CLI --verify): after every committed
  /// substitution, replay check_equivalence on the affected output cone —
  /// the POs reachable from the nodes the mutation journal reports
  /// touched since the last check — against the pristine input network.
  /// Throws std::runtime_error naming the (f, d) pair on the first
  /// miscompare, so a bad commit is caught at the commit, not at the end
  /// of the flow. Costs one network copy up front plus one bounded
  /// simulation per commit.
  bool verify_commits = false;
  /// Fault injection for the fuzz harness and the self-verify tests:
  /// drop the remainder cubes (those not using the divisor literal) from
  /// the rewritten cover at commit time. This miscompiles exactly when
  /// the division had a non-trivial remainder — the planted bug
  /// verify_commits and the differential fuzzer must catch. Never set
  /// outside tests/fuzzing.
  bool inject_skip_remainder = false;
};

struct SubstituteStats {
  int substitutions = 0;      ///< committed rewrites (SOS + POS)
  int pos_substitutions = 0;  ///< committed through the POS dual
  int decompositions = 0;     ///< divisor splits performed (extended)
  int literals_before = 0;    ///< factored literals before the pass(es)
  int literals_after = 0;
  // Candidate-filter accounting (zero when enable_prune is false).
  long pairs_tried = 0;        ///< pairs that survived the filter
  long pairs_pruned_sig = 0;   ///< killed by signature/support evidence
  long pairs_pruned_memo = 0;  ///< skipped by the negative-pair memo
  long pairs_pruned_cycle = 0; ///< skipped by the fanout-cone cycle test
};

/// Run Boolean substitution over the whole network.
SubstituteStats substitute_network(Network& net, const SubstituteOptions& opts = {});

/// A single dividend/divisor attempt. Evaluates SOS (and optionally POS)
/// division of node `f` by node `d` and returns the best achievable
/// factored-literal gain, committing the rewrite when `commit` is true.
/// nullopt when no division applies. Pass a caller-owned `comps` to reuse
/// node complements across calls (rar_opt/baseline loops); when null a
/// throwaway cache is used.
std::optional<int> try_substitution(Network& net, NodeId f, NodeId d,
                                    const SubstituteOptions& opts, bool commit,
                                    ComplementCache* comps = nullptr);

/// The multi-node generalization (paper Fig. 3(c)): treat the cubes of all
/// `divisors` as if they came from one node, vote, pick the core by
/// maximum clique, and — when the core spans several nodes or only part of
/// one — create a new node for it and divide `f` by that node. Returns the
/// committed gain, or nullopt when no profitable pooled division exists.
///
/// Exposed as a primitive rather than wired into substitute_network: under
/// per-node factored-literal accounting a pooled core serving a single
/// dividend can never pay for its own node (quick-factor already shares
/// the core inside the dividend, so the gain is bounded by -2); it only
/// profits when the caller amortizes the new node across several
/// dividends. EXPERIMENTS.md discusses this finding.
std::optional<int> try_pool_substitution(Network& net, NodeId f,
                                         const std::vector<NodeId>& divisors,
                                         const SubstituteOptions& opts);

}  // namespace rarsub
