#include "fuzz/driver.hpp"

#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "bdd/bdd.hpp"
#include "fuzz/shrink.hpp"
#include "gatenet/incremental.hpp"
#include "mem/arena.hpp"
#include "network/blif.hpp"
#include "obs/memstat.hpp"
#include "obs/obs.hpp"
#include "rar/network_rr.hpp"
#include "verify/equivalence.hpp"

namespace rarsub::fuzz {
namespace {

const char* method_tag(SubstMethod m) {
  switch (m) {
    case SubstMethod::Basic: return "basic";
    case SubstMethod::Extended: return "ext";
    case SubstMethod::ExtendedGdc: return "ext_gdc";
  }
  return "?";
}

int alive_internal_nodes(const Network& net) {
  int n = 0;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Node& nd = net.node(id);
    if (nd.alive && !nd.is_pi) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// BDD oracle: an independent engine double-checking the simulation-based
// equivalence verdict for small union-PI spaces. Variables are ordered as
// in EquivalenceResult::counterexample — `a`'s PIs first, then b-only PIs.
// ---------------------------------------------------------------------------

std::map<std::string, BddRef> po_bdds(const Network& net, BddManager& mgr,
                                      const std::map<std::string, int>& var_of) {
  std::vector<BddRef> node_bdd(static_cast<std::size_t>(net.num_nodes()),
                               mgr.zero());
  for (NodeId pi : net.pis())
    node_bdd[static_cast<std::size_t>(pi)] =
        mgr.var(var_of.at(std::string(net.node(pi).name)));
  for (NodeId id : net.topo_order()) {
    const Node& nd = net.node(id);
    BddRef sum = mgr.zero();
    for (const Cube& c : nd.func.cubes()) {
      BddRef prod = mgr.one();
      for (int v = 0; v < nd.func.num_vars(); ++v) {
        Lit l = c.lit(v);
        if (l == Lit::Absent) continue;
        BddRef x = node_bdd[static_cast<std::size_t>(nd.fanins[
            static_cast<std::size_t>(v)])];
        prod = mgr.bdd_and(prod, l == Lit::Pos ? x : mgr.bdd_not(x));
      }
      sum = mgr.bdd_or(sum, prod);
    }
    node_bdd[static_cast<std::size_t>(id)] = sum;
  }
  std::map<std::string, BddRef> out;
  for (const Output& po : net.pos())
    out[po.name] = node_bdd[static_cast<std::size_t>(po.driver)];
  return out;
}

/// BDD-based PO comparison, or nullopt when the union PI space is too big.
/// BddRefs are canonical within one manager, so comparison is ref equality.
std::optional<CheckOutcome> bdd_oracle(const Network& a, const Network& b,
                                       int max_pis) {
  std::map<std::string, int> var_of;
  for (NodeId pi : a.pis())
    var_of.emplace(a.node(pi).name, static_cast<int>(var_of.size()));
  for (NodeId pi : b.pis())
    var_of.emplace(b.node(pi).name, static_cast<int>(var_of.size()));
  if (static_cast<int>(var_of.size()) > max_pis) return std::nullopt;

  BddManager mgr(static_cast<int>(var_of.size()));
  std::map<std::string, BddRef> fa = po_bdds(a, mgr, var_of);
  std::map<std::string, BddRef> fb = po_bdds(b, mgr, var_of);
  for (const auto& [name, ref] : fa) {
    auto it = fb.find(name);
    if (it == fb.end() || it->second != ref)
      return CheckOutcome{"bdd_oracle",
                          "BDD for PO '" + name +
                              "' differs while simulation said equivalent"};
  }
  return CheckOutcome{};
}

std::string blif_of(const Network& net) { return write_blif_string(net); }

}  // namespace

CheckOutcome differential_check(const Network& input, const FuzzConfig& cfg) {
  try {
    // Preparation script; the final equivalence check validates it too.
    Network base = input;
    apply_script(base, cfg.script);
    if (!base.check())
      return {"script_check", "Network::check failed after script"};

    // Canonical run: serial, prune + incremental on, paranoid self-verify.
    SubstituteOptions o1 = cfg.opts;
    o1.jobs = 1;
    o1.enable_prune = true;
    o1.enable_incremental = true;
    o1.verify_commits = true;
    Network run1 = base;
    try {
      substitute_network(run1, o1);
    } catch (const std::exception& e) {
      return {"verify_commits", e.what()};
    }
    if (!run1.check())
      return {"net_check", "Network::check failed after substitution"};
    OBS_COUNT("fuzz.checks", 1);

    // End-to-end equivalence against the untouched input.
    EquivalenceResult eq = check_equivalence(input, run1);
    if (!eq.equivalent) return {"equivalence", eq.message};
    OBS_COUNT("fuzz.checks", 1);

    // Independent-engine double check for small PI spaces.
    if (auto oracle = bdd_oracle(input, run1, 14)) {
      if (oracle->failed()) return *oracle;
      OBS_COUNT("fuzz.checks", 1);
    }

    const std::string canon = blif_of(run1);

    // Prune on vs off must be byte-identical (witness-sound filter).
    {
      SubstituteOptions o = o1;
      o.enable_prune = false;
      o.verify_commits = false;
      Network run = base;
      substitute_network(run, o);
      if (blif_of(run) != canon)
        return {"prune_differs",
                "prune-off network differs from prune-on network"};
      OBS_COUNT("fuzz.checks", 1);
    }

    // Arena on vs off must be byte-identical: the scratch arena changes
    // where bytes come from, never what is computed. The latch is flipped
    // to the opposite of the ambient state so both directions get
    // exercised (the arena-off smoke job runs this battery under
    // RARSUB_ARENA=0, where "toggled" means arena ON).
    {
      const bool ambient = mem::arena_enabled();
      struct RestoreLatch {
        bool prev;
        ~RestoreLatch() { mem::set_arena_enabled(prev); }
      } restore{ambient};
      mem::set_arena_enabled(!ambient);
      SubstituteOptions o = o1;
      o.verify_commits = false;
      Network run = base;
      substitute_network(run, o);
      if (blif_of(run) != canon)
        return {"arena_differs",
                "arena-toggled network differs from canonical network"};
      OBS_COUNT("fuzz.checks", 1);

      // jobs=4 under the toggled latch completes the jobs x arena cross
      // (jobs=4 under the ambient latch is the leg below).
      if (!cfg.opts.first_positive) {
        SubstituteOptions oj = o;
        oj.jobs = 4;
        Network runj = base;
        substitute_network(runj, oj);
        if (blif_of(runj) != canon)
          return {"arena_jobs_differ",
                  "arena-toggled jobs=4 network differs from canonical"};
        OBS_COUNT("fuzz.checks", 1);
      }
    }

    // jobs=1 vs jobs=4 (only meaningful for best-gain evaluation).
    if (!cfg.opts.first_positive) {
      SubstituteOptions o = o1;
      o.jobs = 4;
      o.verify_commits = false;
      Network run = base;
      substitute_network(run, o);
      if (blif_of(run) != canon)
        return {"jobs_differ", "jobs=4 network differs from jobs=1 network"};
      OBS_COUNT("fuzz.checks", 1);
    }

    // Incremental vs full-rebuild gate view (GDC method only).
    if (cfg.opts.method == SubstMethod::ExtendedGdc) {
      SubstituteOptions o = o1;
      o.enable_incremental = false;
      o.verify_commits = false;
      Network run = base;
      substitute_network(run, o);
      if (blif_of(run) != canon)
        return {"incremental_differs",
                "full-rebuild network differs from incremental network"};
      OBS_COUNT("fuzz.checks", 1);
    }

    // network_rr with vs without a live incremental view, plus its own
    // end-to-end equivalence.
    if (cfg.run_rr) {
      Network rr_plain = base;
      network_redundancy_removal(rr_plain);
      Network rr_view = base;
      IncrementalGateView view(rr_view);
      network_redundancy_removal(rr_view, {}, &view);
      if (blif_of(rr_plain) != blif_of(rr_view))
        return {"rr_view_differs",
                "network_rr result differs with a live gate view"};
      // The legacy per-wire loop is the one-pass sweep's byte oracle.
      Network rr_legacy = base;
      NetworkRrOptions legacy_opts;
      legacy_opts.one_pass = false;
      network_redundancy_removal(rr_legacy, legacy_opts);
      if (blif_of(rr_plain) != blif_of(rr_legacy))
        return {"rr_onepass_differs",
                "one-pass network_rr differs from the legacy per-wire loop"};
      EquivalenceResult rr_eq = check_equivalence(input, rr_plain);
      if (!rr_eq.equivalent) return {"rr_equivalence", rr_eq.message};
      OBS_COUNT("fuzz.checks", 1);
    }
  } catch (const std::exception& e) {
    return {"exception", e.what()};
  }
  return {};
}

namespace {

FuzzConfig random_config(std::mt19937_64& rng, PlantedBug plant) {
  FuzzConfig cfg;
  cfg.script = random_script(rng);
  cfg.opts = random_substitute_options(rng);
  cfg.opts.inject_skip_remainder = (plant == PlantedBug::SkipRemainder);
  cfg.run_rr = chance(rng, 0.35);
  return cfg;
}

std::string config_comment(const FuzzConfig& cfg, const FuzzFailure& f,
                           std::uint64_t seed) {
  std::ostringstream os;
  os << "# rarsub fuzz repro (iter " << f.iter << ", seed " << seed << ")\n"
     << "# check: " << f.check << "\n"
     << "# detail: " << f.detail << "\n"
     << "# script=" << fuzz_script_name(cfg.script)
     << " method=" << method_tag(cfg.opts.method)
     << " try_pos=" << cfg.opts.try_pos
     << " first_positive=" << cfg.opts.first_positive
     << " max_passes=" << cfg.opts.max_passes
     << " gdc_depth=" << cfg.opts.gdc_learning_depth
     << " run_rr=" << cfg.run_rr
     << " inject_skip_remainder=" << cfg.opts.inject_skip_remainder << "\n"
     << "# guards: node_cubes=" << cfg.opts.max_node_cubes
     << " divisor_cubes=" << cfg.opts.max_divisor_cubes
     << " common_vars=" << cfg.opts.max_common_vars
     << " complement_cubes=" << cfg.opts.max_complement_cubes << "\n"
     << "# replay: rarsub_cli optimize <this file> " << method_tag(cfg.opts.method)
     << " " << fuzz_script_name(cfg.script) << " --verify\n";
  return os.str();
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& opts) {
  FuzzReport report;
  const auto start = std::chrono::steady_clock::now();
  auto out_of_budget = [&] {
    if (opts.time_budget_sec <= 0) return false;
    std::chrono::duration<double> el = std::chrono::steady_clock::now() - start;
    return el.count() >= opts.time_budget_sec;
  };

  for (long long iter = 0; iter < opts.iters; ++iter) {
    if (out_of_budget()) break;
    if (static_cast<int>(report.failures.size()) >= opts.max_failures) break;
    // RSS sampled once per 64-iteration batch: the distribution's min/max
    // across batches is what exposes growth or leak trends in the nightly
    // run's fuzz-obs.json artifact.
    if ((iter & 63) == 0) {
      const std::int64_t rss = obs::read_rss_kb();
      if (rss >= 0) OBS_VALUE("fuzz.peak_rss_kb", rss);
      const mem::ArenaStats as = mem::arena_stats();
      if (as.high_water > 0)
        OBS_VALUE("fuzz.arena_high_water",
                  static_cast<std::int64_t>(as.high_water));
    }
    OBS_SCOPED_TIMER("fuzz.iteration");
    OBS_COUNT("fuzz.iterations", 1);
    ++report.iterations;

    // Self-seeded per iteration: a failing iteration replays standalone,
    // independent of how much randomness earlier iterations consumed.
    std::mt19937_64 rng(opts.seed * 0x9e3779b97f4a7c15ULL +
                        static_cast<std::uint64_t>(iter) + 1);
    // Canonicalize through one BLIF round trip: the writer inserts buffer
    // nodes for POs whose name differs from their driver's, so the first
    // round trip is not structurally the identity — but it IS a fixed
    // point, and fuzzing the fixed point makes every corpus artifact
    // behave exactly like the network that failed in memory.
    Network net =
        read_blif_string(write_blif_string(random_network(rng, opts.gen)));
    FuzzConfig cfg = random_config(rng, opts.plant);

    CheckOutcome outcome = differential_check(net, cfg);
    if (opts.verbose)
      std::cerr << "fuzz iter " << iter << " script="
                << fuzz_script_name(cfg.script) << " method="
                << method_tag(cfg.opts.method) << " -> "
                << (outcome.failed() ? outcome.check : "ok") << "\n";
    if (!outcome.failed()) continue;

    OBS_COUNT("fuzz.failures", 1);
    FuzzFailure fail;
    fail.iter = iter;
    fail.check = outcome.check;
    fail.detail = outcome.detail;
    fail.config = cfg;

    // Shrink: keep the configuration fixed, require the same check to
    // keep failing — and judge every candidate through a BLIF round trip,
    // since that is the form the corpus artifact replays from (the round
    // trip renumbers nodes, which can reorder the candidate scan). Falls
    // back to the in-memory predicate for the rare failure that only
    // manifests pre-round-trip.
    auto fails_roundtripped = [&cfg, &outcome](const Network& cand) {
      try {
        const Network rt = read_blif_string(write_blif_string(cand));
        return differential_check(rt, cfg).check == outcome.check;
      } catch (const std::exception&) {
        return false;
      }
    };
    auto fails_in_memory = [&cfg, &outcome](const Network& cand) {
      return differential_check(cand, cfg).check == outcome.check;
    };
    const bool roundtrip_ok = fails_roundtripped(net);
    Network small = shrink_network(
        net, roundtrip_ok
                 ? std::function<bool(const Network&)>(fails_roundtripped)
                 : std::function<bool(const Network&)>(fails_in_memory));
    fail.repro_nodes = alive_internal_nodes(small);

    // Persist, then replay from the file to prove the artifact stands on
    // its own (BLIF comments are stripped by the reader).
    std::error_code ec;
    std::filesystem::create_directories(opts.corpus_dir, ec);
    std::ostringstream name;
    name << "repro_i" << iter << "_" << outcome.check << ".blif";
    std::filesystem::path path =
        std::filesystem::path(opts.corpus_dir) / name.str();
    {
      std::ofstream out(path);
      if (out) {
        out << config_comment(cfg, fail, opts.seed) << write_blif_string(small);
        fail.repro_path = path.string();
      }
    }
    if (!fail.repro_path.empty()) {
      try {
        Network reread = read_blif_file(fail.repro_path);
        fail.repro_confirmed =
            differential_check(reread, cfg).check == outcome.check;
      } catch (const std::exception&) {
        fail.repro_confirmed = false;
      }
    }
    report.failures.push_back(std::move(fail));
  }
  // Closing sample so short runs (< one batch) still report a value.
  const std::int64_t rss = obs::read_rss_kb();
  if (rss >= 0) OBS_VALUE("fuzz.peak_rss_kb", rss);
  const mem::ArenaStats as = mem::arena_stats();
  if (as.high_water > 0)
    OBS_VALUE("fuzz.arena_high_water", static_cast<std::int64_t>(as.high_water));
  return report;
}

}  // namespace rarsub::fuzz
