#pragma once
// Differential fuzzing driver.
//
// Each iteration generates a random network (gen.hpp), samples a
// preparation script and a SubstituteOptions configuration, and
// cross-checks every soundness claim the optimization stack makes:
//
//   - prune on vs prune off            (candidate filter is witness-sound)
//   - jobs=1 vs jobs=N                 (parallel evaluation is deterministic)
//   - incremental vs full-rebuild      (GDC gate view patching is exact)
//   - network_rr with vs without a live IncrementalGateView
//   - post-optimization check_equivalence against the untouched input,
//     double-checked by a BDD oracle for networks with <= 14 union PIs
//   - the paranoid per-commit replay (SubstituteOptions::verify_commits)
//
// Any failure is delta-debugged down to a minimal repro (shrink.hpp),
// written to the corpus directory as a commented BLIF, re-read from that
// file and confirmed to still fail — so every artifact a nightly run
// uploads is replayable as-is.

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/gen.hpp"
#include "network/network.hpp"

namespace rarsub::fuzz {

/// Deliberately corrupted optimizer behavior, used to prove the harness
/// can actually catch, shrink and replay a miscompare.
enum class PlantedBug {
  None,
  SkipRemainder,  ///< drop the remainder re-attach on every commit
};

struct FuzzOptions {
  long long iters = 100;
  std::uint64_t seed = 1;
  /// Stop after this many seconds (0 = run all iterations). The iteration
  /// in flight is finished, never interrupted.
  double time_budget_sec = 0;
  /// Where minimized repros are written (created on first failure).
  std::string corpus_dir = "fuzz/corpus";
  /// Stop after this many failures (each one costs a shrink run).
  int max_failures = 8;
  PlantedBug plant = PlantedBug::None;
  /// Per-iteration progress lines on stderr.
  bool verbose = false;
  GenOptions gen;
};

/// The sampled configuration of one iteration (recorded in the repro
/// header so a failure is replayable without the seed).
struct FuzzConfig {
  FuzzScript script = FuzzScript::None;
  SubstituteOptions opts;
  bool run_rr = false;  ///< also differential-test network_redundancy_removal
};

/// One differential check outcome; empty `check` means the network passed
/// the whole battery.
struct CheckOutcome {
  std::string check;   ///< failing cross-check id, e.g. "prune_differs"
  std::string detail;  ///< human-readable specifics
  bool failed() const { return !check.empty(); }
};

/// Run the full cross-check battery for one (network, config) pair.
/// Deterministic: same inputs, same outcome. Exposed for the shrinker's
/// predicate and for replaying corpus repros.
CheckOutcome differential_check(const Network& input, const FuzzConfig& cfg);

struct FuzzFailure {
  long long iter = 0;
  std::string check;
  std::string detail;
  FuzzConfig config;
  int repro_nodes = 0;        ///< alive internal nodes after shrinking
  std::string repro_path;     ///< corpus BLIF (empty if the write failed)
  bool repro_confirmed = false;  ///< re-read from disk and still failing
};

struct FuzzReport {
  long long iterations = 0;
  std::vector<FuzzFailure> failures;
  bool clean() const { return failures.empty(); }
};

/// The fuzzing loop: iterate, cross-check, shrink and persist failures.
FuzzReport run_fuzz(const FuzzOptions& opts);

}  // namespace rarsub::fuzz
