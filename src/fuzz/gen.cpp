#include "fuzz/gen.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "opt/scripts.hpp"

namespace rarsub::fuzz {

int pick(std::mt19937_64& rng, int lo, int hi) {
  if (hi <= lo) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(rng() % span);
}

bool chance(std::mt19937_64& rng, double p) {
  // 53 uniform mantissa bits -> [0, 1); exact same value on every stdlib.
  const double u =
      static_cast<double>(rng() >> 11) * (1.0 / 9007199254740992.0);
  return u < p;
}

namespace {

// A random cube over `nv` variables; may come out unconstrained (the
// universe cube — a constant-1 row), which is a shape worth fuzzing.
Cube random_cube(std::mt19937_64& rng, int nv, double density) {
  Cube c(nv);
  for (int v = 0; v < nv; ++v) {
    if (!chance(rng, density)) continue;
    c.set_lit(v, chance(rng, 0.5) ? Lit::Pos : Lit::Neg);
  }
  return c;
}

}  // namespace

Network random_network(std::mt19937_64& rng, const GenOptions& opts) {
  OBS_COUNT("fuzz.networks", 1);
  Network net("fuzz");
  const int npis = pick(rng, opts.min_pis, opts.max_pis);
  std::vector<NodeId> pool;
  for (int i = 0; i < npis; ++i)
    pool.push_back(net.add_pi("x" + std::to_string(i)));

  // Fanin selection: reconvergence comes from biasing picks toward a
  // recent window of the signal pool, so several consumers share the same
  // local structure instead of spreading uniformly over the whole DAG.
  auto pick_fanin = [&]() {
    const int limit = static_cast<int>(pool.size());
    if (chance(rng, opts.reconvergence)) {
      const int window = std::min(limit, 6);
      return pool[static_cast<std::size_t>(pick(rng, limit - window, limit - 1))];
    }
    return pool[static_cast<std::size_t>(pick(rng, 0, limit - 1))];
  };

  const int nnodes = pick(rng, opts.min_nodes, opts.max_nodes);
  for (int i = 0; i < nnodes; ++i) {
    const std::string name = "n" + std::to_string(i);
    if (chance(rng, opts.p_const)) {
      // Constant node: empty cover = 0, universe cube = 1.
      Sop f(0);
      if (chance(rng, 0.5)) f.add_cube(Cube(0));
      pool.push_back(net.add_node(name, {}, std::move(f)));
      continue;
    }
    if (chance(rng, opts.p_single_lit)) {
      // Buffer or inverter — the shapes sweep() collapses.
      const NodeId in = pick_fanin();
      Sop f(1);
      Cube c(1);
      c.set_lit(0, chance(rng, 0.5) ? Lit::Pos : Lit::Neg);
      f.add_cube(c);
      pool.push_back(net.add_node(name, {in}, std::move(f)));
      continue;
    }
    const int avail = static_cast<int>(pool.size());
    const int k = pick(rng, 1, std::min(opts.max_fanins, avail));
    std::vector<NodeId> fanins;
    for (int j = 0; j < k && static_cast<int>(fanins.size()) < avail; ++j) {
      NodeId f = pick_fanin();
      // Distinct fanins (add_node would merge duplicates anyway; distinct
      // picks keep the cube columns meaningful).
      int tries = 0;
      while (std::find(fanins.begin(), fanins.end(), f) != fanins.end() &&
             tries++ < 8)
        f = pick_fanin();
      if (std::find(fanins.begin(), fanins.end(), f) == fanins.end())
        fanins.push_back(f);
    }
    const int nv = static_cast<int>(fanins.size());
    Sop func(nv);
    const int ncubes = pick(rng, 1, opts.max_cubes);
    for (int c = 0; c < ncubes; ++c)
      func.add_cube(random_cube(rng, nv, opts.lit_density));
    func.scc_minimize();
    pool.push_back(net.add_node(name, std::move(fanins), std::move(func)));
  }

  // POs: sample drivers from the pool; whatever stays unreferenced is a
  // dead cone, and PIs nothing picked become dangling inputs. Distinct
  // drivers, so the PO name <-> function relation stays unambiguous.
  const int npos =
      pick(rng, 1, std::min(opts.max_pos, static_cast<int>(pool.size())));
  std::vector<NodeId> drivers;
  for (int i = 0; i < npos; ++i) {
    NodeId d = kNoNode;
    for (int tries = 0; tries < 16 && d == kNoNode; ++tries) {
      NodeId cand;
      if (chance(rng, opts.p_pi_po)) {
        cand = pool[static_cast<std::size_t>(pick(rng, 0, npis - 1))];
      } else {
        cand = pool[static_cast<std::size_t>(
            pick(rng, npis, static_cast<int>(pool.size()) - 1))];
      }
      if (std::find(drivers.begin(), drivers.end(), cand) == drivers.end())
        d = cand;
    }
    if (d == kNoNode) break;
    drivers.push_back(d);
    net.add_po("z" + std::to_string(i), d);
  }
  if (net.pos().empty())
    net.add_po("z0", pool.back());
  return net;
}

const char* fuzz_script_name(FuzzScript s) {
  switch (s) {
    case FuzzScript::None: return "none";
    case FuzzScript::A: return "a";
    case FuzzScript::B: return "b";
    case FuzzScript::C: return "c";
  }
  return "?";
}

FuzzScript random_script(std::mt19937_64& rng) {
  switch (pick(rng, 0, 3)) {
    case 0: return FuzzScript::None;
    case 1: return FuzzScript::A;
    case 2: return FuzzScript::B;
    default: return FuzzScript::C;
  }
}

void apply_script(Network& net, FuzzScript s) {
  switch (s) {
    case FuzzScript::None: return;
    case FuzzScript::A: script_a(net); return;
    case FuzzScript::B: script_b(net); return;
    case FuzzScript::C: script_c(net); return;
  }
}

SubstituteOptions random_substitute_options(std::mt19937_64& rng) {
  SubstituteOptions o;
  switch (pick(rng, 0, 2)) {
    case 0: o.method = SubstMethod::Basic; break;
    case 1: o.method = SubstMethod::Extended; break;
    default: o.method = SubstMethod::ExtendedGdc; break;
  }
  o.try_pos = chance(rng, 0.75);
  o.first_positive = chance(rng, 0.5);
  o.max_passes = pick(rng, 1, 2);
  o.gdc_learning_depth = pick(rng, 0, 1);
  if (chance(rng, 0.2)) o.max_node_cubes = pick(rng, 2, 16);
  if (chance(rng, 0.2)) o.max_divisor_cubes = pick(rng, 2, 8);
  if (chance(rng, 0.2)) o.max_common_vars = pick(rng, 2, 12);
  if (chance(rng, 0.2)) o.max_complement_cubes = pick(rng, 2, 16);
  return o;
}

}  // namespace rarsub::fuzz
