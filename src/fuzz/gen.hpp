#pragma once
// Seeded random network generator for the differential fuzzing harness.
//
// Produces structurally diverse SOP networks: parameterized PI/node/cube/
// literal distributions, deliberate reconvergence (fanin picks biased
// toward recent signals), dead nodes (never reached from any PO),
// dangling PIs, constant-0/constant-1 nodes and single-literal buffer/
// inverter nodes — every shape the optimization passes claim to handle.
//
// Determinism contract: for a fixed rng state the generated network is
// byte-identical across runs, platforms and standard libraries. All
// randomness is drawn from the raw mt19937_64 stream through the local
// helpers below — never through std::uniform_*_distribution, whose output
// is implementation-defined.

#include <cstdint>
#include <random>

#include "division/substitute.hpp"
#include "network/network.hpp"

namespace rarsub::fuzz {

struct GenOptions {
  int min_pis = 3;
  int max_pis = 10;
  int min_nodes = 4;
  int max_nodes = 22;
  int max_fanins = 5;  ///< per general node
  int max_cubes = 6;   ///< per general node
  int max_pos = 6;
  double p_const = 0.04;        ///< constant-0 or constant-1 node
  double p_single_lit = 0.08;   ///< buffer / inverter node
  double p_pi_po = 0.1;         ///< a PO driven directly by a PI
  double reconvergence = 0.55;  ///< fanin picked from the recent window
  double lit_density = 0.7;     ///< chance a cube constrains a variable
};

/// Deterministic helpers shared by generator and option sampler: uniform
/// integer in [lo, hi] and a Bernoulli coin, both defined purely in terms
/// of the mt19937_64 output stream.
int pick(std::mt19937_64& rng, int lo, int hi);
bool chance(std::mt19937_64& rng, double p);

/// Generate one random network. Node names are n<i>, PIs x<i>, POs z<i>.
Network random_network(std::mt19937_64& rng, const GenOptions& opts = {});

/// The preparation scripts the driver samples from (mirrors the CLI's
/// script argument; None leaves the raw generated network).
enum class FuzzScript { None, A, B, C };
const char* fuzz_script_name(FuzzScript s);
FuzzScript random_script(std::mt19937_64& rng);
void apply_script(Network& net, FuzzScript s);

/// Sample a SubstituteOptions configuration: method, SOS/POS duals,
/// greedy-vs-best strategy, pass count, and occasionally tightened size
/// guards — the knob space the differential driver cross-checks.
SubstituteOptions random_substitute_options(std::mt19937_64& rng);

}  // namespace rarsub::fuzz
