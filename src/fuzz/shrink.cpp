#include "fuzz/shrink.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "obs/obs.hpp"

namespace rarsub::fuzz {

namespace {

int alive_internal(const Network& net) {
  int n = 0;
  for (NodeId id = 0; id < net.num_nodes(); ++id)
    if (net.node(id).alive && !net.node(id).is_pi) ++n;
  return n;
}

/// Rebuild without one fanout-free node (internal or PI). Complements
/// compact_network for repros whose interesting structure is itself dead
/// (a dead divisor, say): whole-network compaction would delete it and be
/// rejected by the predicate, while this peels the other corpses off one
/// at a time. Renumbers node ids like any rebuild.
Network without_node(const Network& net, NodeId victim) {
  Network out(net.name());
  std::vector<NodeId> remap(static_cast<std::size_t>(net.num_nodes()), kNoNode);
  for (NodeId pi : net.pis())
    if (pi != victim)
      remap[static_cast<std::size_t>(pi)] = out.add_pi(net.node(pi).name);
  for (NodeId id : net.topo_order()) {
    if (id == victim) continue;
    const Node& nd = net.node(id);
    std::vector<NodeId> fanins;
    fanins.reserve(nd.fanins.size());
    for (NodeId f : nd.fanins)
      fanins.push_back(remap[static_cast<std::size_t>(f)]);
    remap[static_cast<std::size_t>(id)] =
        out.add_node(nd.name, std::move(fanins), nd.func);
  }
  for (const Output& o : net.pos())
    out.add_po(o.name, remap[static_cast<std::size_t>(o.driver)]);
  return out;
}

}  // namespace

Network compact_network(const Network& net) {
  // Backward reachability from the PO drivers over alive fanins.
  std::vector<bool> keep(static_cast<std::size_t>(net.num_nodes()), false);
  std::vector<NodeId> stack;
  for (const Output& o : net.pos())
    if (o.driver != kNoNode && !keep[static_cast<std::size_t>(o.driver)]) {
      keep[static_cast<std::size_t>(o.driver)] = true;
      stack.push_back(o.driver);
    }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId f : net.node(id).fanins)
      if (!keep[static_cast<std::size_t>(f)]) {
        keep[static_cast<std::size_t>(f)] = true;
        stack.push_back(f);
      }
  }

  Network out(net.name());
  std::vector<NodeId> remap(static_cast<std::size_t>(net.num_nodes()), kNoNode);
  for (NodeId pi : net.pis())
    if (keep[static_cast<std::size_t>(pi)])
      remap[static_cast<std::size_t>(pi)] = out.add_pi(net.node(pi).name);
  for (NodeId id : net.topo_order()) {
    if (!keep[static_cast<std::size_t>(id)]) continue;
    const Node& nd = net.node(id);
    std::vector<NodeId> fanins;
    fanins.reserve(nd.fanins.size());
    for (NodeId f : nd.fanins)
      fanins.push_back(remap[static_cast<std::size_t>(f)]);
    remap[static_cast<std::size_t>(id)] =
        out.add_node(nd.name, std::move(fanins), nd.func);
  }
  for (const Output& o : net.pos())
    out.add_po(o.name, remap[static_cast<std::size_t>(o.driver)]);
  return out;
}

Network shrink_network(const Network& failing,
                       const std::function<bool(const Network&)>& still_fails,
                       const ShrinkOptions& opts, ShrinkStats* stats) {
  OBS_SCOPED_TIMER("fuzz.shrink");
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  st.nodes_before = alive_internal(failing);

  Network cur = failing;
  auto probe = [&](const Network& candidate) {
    if (st.probes >= opts.max_probes) return false;
    ++st.probes;
    OBS_COUNT("fuzz.shrink.probes", 1);
    if (!still_fails(candidate)) return false;
    ++st.accepted;
    OBS_COUNT("fuzz.shrink.accepted", 1);
    return true;
  };
  // NOTE: compact_network renumbers node ids, so it must never run while
  // a move sweep is holding NodeIds into `cur` — compaction happens only
  // between rounds (and is itself predicate-guarded).
  auto accept = [&](Network candidate) { cur = std::move(candidate); };
  auto try_compact = [&]() {
    Network compacted = compact_network(cur);
    if (still_fails(compacted)) cur = std::move(compacted);
  };
  // Peel off fanout-free nodes one at a time (covers the case where the
  // repro needs a *dead* node, so compaction as a whole is rejected).
  // Each acceptance renumbers ids, hence the restart.
  auto try_drop_dead = [&]() {
    bool again = true;
    while (again && st.probes < opts.max_probes) {
      again = false;
      for (NodeId id = 0; id < cur.num_nodes(); ++id) {
        if (!cur.node(id).alive || cur.fanout_refs(id) != 0) continue;
        Network cand = without_node(cur, id);
        if (probe(cand)) {
          accept(std::move(cand));
          again = true;
          break;
        }
      }
    }
  };
  try_compact();
  try_drop_dead();

  for (int round = 0; round < opts.max_rounds; ++round) {
    ++st.rounds;
    bool changed = false;

    // 1. Drop primary outputs (largest structural cut first).
    for (std::size_t i = cur.pos().size(); i-- > 0 && cur.pos().size() > 1;) {
      Network cand = cur;
      cand.pos().erase(cand.pos().begin() + static_cast<std::ptrdiff_t>(i));
      if (probe(cand)) {
        accept(std::move(cand));
        changed = true;
      }
    }

    // 2. Per-node structural moves: constant-0 / constant-1 replacement,
    // then forwarding a single fanin (turning the node into a buffer).
    // Reverse topological order tends to free whole cones at once.
    std::vector<NodeId> order = cur.topo_order();
    std::reverse(order.begin(), order.end());
    for (NodeId id : order) {
      if (!cur.node(id).alive) continue;
      bool node_done = false;
      for (int move = 0; move < 2 && !node_done; ++move) {
        Network cand = cur;
        Sop f(0);
        if (move == 1) f.add_cube(Cube(0));
        cand.set_function(id, {}, std::move(f));
        if (probe(cand)) {
          accept(std::move(cand));
          changed = node_done = true;
        }
      }
      if (node_done) continue;
      const std::size_t nf = cur.node(id).fanins.size();
      for (std::size_t j = 0; j < nf && !node_done; ++j) {
        Network cand = cur;
        const NodeId in = cand.node(id).fanins[j];
        Sop f(1);
        Cube c(1);
        c.set_lit(0, Lit::Pos);
        f.add_cube(c);
        cand.set_function(id, {in}, std::move(f));
        if (probe(cand)) {
          accept(std::move(cand));
          changed = node_done = true;
        }
      }
    }

    // 3. Drop cubes, then literals, from every surviving cover.
    for (NodeId id : cur.topo_order()) {
      if (!cur.node(id).alive) continue;
      for (int ci = cur.node(id).func.num_cubes(); ci-- > 0;) {
        if (cur.node(id).func.num_cubes() <= 1) break;
        Network cand = cur;
        const Node& nd = cand.node(id);
        Sop f(nd.func.num_vars());
        for (int k = 0; k < nd.func.num_cubes(); ++k)
          if (k != ci) f.add_cube(nd.func.cube(k));
        cand.set_function(id, {nd.fanins.begin(), nd.fanins.end()},
                          std::move(f));
        if (probe(cand)) {
          accept(std::move(cand));
          changed = true;
        }
      }
    }
    for (NodeId id : cur.topo_order()) {
      if (!cur.node(id).alive) continue;
      const int nv = cur.node(id).func.num_vars();
      for (int v = 0; v < nv; ++v) {
        for (int ci = 0; ci < cur.node(id).func.num_cubes(); ++ci) {
          if (cur.node(id).func.cube(ci).lit(v) == Lit::Absent) continue;
          Network cand = cur;
          const Node& nd = cand.node(id);
          Sop f = nd.func;
          f.cubes()[static_cast<std::size_t>(ci)].set_lit(v, Lit::Absent);
          cand.set_function(id, {nd.fanins.begin(), nd.fanins.end()},
                            std::move(f));
          if (probe(cand)) {
            accept(std::move(cand));
            changed = true;
          }
        }
      }
    }

    if (changed) {
      try_compact();
      try_drop_dead();
    }
    if (!changed || st.probes >= opts.max_probes) break;
  }

  st.nodes_after = alive_internal(cur);
  OBS_VALUE("fuzz.shrink.nodes_after", st.nodes_after);
  return cur;
}

}  // namespace rarsub::fuzz
