#pragma once
// Delta-debugging minimizer for failing fuzz networks.
//
// Given a network on which some differential check fails and a predicate
// that re-runs the check, greedily applies structure-shrinking moves —
// dropping primary outputs, replacing nodes by constants or by one of
// their fanins, deleting cubes and literals — keeping every move that
// still reproduces the failure, until a fixpoint (or the round cap).
// The result is a small self-contained repro the driver writes to
// fuzz/corpus/ as BLIF.
//
// Every move strictly shrinks the DAG, so shrinking always terminates;
// the predicate is re-evaluated from scratch per candidate (the failure
// modes are deterministic given the network and the sampled options).

#include <functional>

#include "network/network.hpp"

namespace rarsub::fuzz {

struct ShrinkOptions {
  /// Full move-sweep rounds before giving up on reaching a fixpoint.
  int max_rounds = 6;
  /// Hard cap on predicate evaluations (each one re-runs the failing
  /// optimization pipeline).
  long long max_probes = 4000;
};

struct ShrinkStats {
  int rounds = 0;
  long long probes = 0;    ///< predicate evaluations
  long long accepted = 0;  ///< moves kept
  int nodes_before = 0;    ///< alive internal nodes in the input
  int nodes_after = 0;
};

/// Rebuild `net` without unreachable (dead) cones and dangling PIs, with
/// node ids renumbered densely. Function-preserving on every PO.
Network compact_network(const Network& net);

/// Minimize `failing` under `still_fails` (true = the failure still
/// reproduces on the candidate). Returns the smallest network found;
/// `still_fails` is guaranteed true on the returned network.
Network shrink_network(const Network& failing,
                       const std::function<bool(const Network&)>& still_fails,
                       const ShrinkOptions& opts = {},
                       ShrinkStats* stats = nullptr);

}  // namespace rarsub::fuzz
