#include "gatenet/build.hpp"

#include <cassert>

#include "obs/obs.hpp"

namespace rarsub {

Signal build_sop_gates(GateNet& gn, const Sop& f,
                       const std::vector<Signal>& var_signal,
                       std::vector<int>* cube_gates,
                       const std::string& label_prefix) {
  assert(static_cast<int>(var_signal.size()) == f.num_vars());
  std::vector<Signal> cube_signals;
  if (cube_gates) cube_gates->clear();
  for (int ci = 0; ci < f.num_cubes(); ++ci) {
    const Cube& c = f.cube(ci);
    std::vector<Signal> lits;
    for (int v = 0; v < f.num_vars(); ++v) {
      const Lit l = c.lit(v);
      if (l == Lit::Absent) continue;
      Signal s = var_signal[static_cast<std::size_t>(v)];
      if (l == Lit::Neg) s.neg = !s.neg;
      lits.push_back(s);
    }
    const int g = gn.add_gate(GateType::And, std::move(lits),
                              label_prefix + "c" + std::to_string(ci));
    if (cube_gates) cube_gates->push_back(g);
    cube_signals.push_back(Signal{g, false});
  }
  const int root =
      gn.add_gate(GateType::Or, std::move(cube_signals), label_prefix + "or");
  return Signal{root, false};
}

GateNet build_gatenet(const Network& net, GateNetMap& map) {
  // Every from-scratch whole-network decomposition is counted here, so
  // `gateview.full_rebuilds` measures exactly what the incremental gate
  // view avoids.
  OBS_COUNT("gateview.full_rebuilds", 1);
  GateNet gn;
  map.node_out.assign(static_cast<std::size_t>(net.num_nodes()), -1);
  map.node_cubes.assign(static_cast<std::size_t>(net.num_nodes()), {});

  for (NodeId pi : net.pis())
    map.node_out[static_cast<std::size_t>(pi)] = gn.add_pi(std::string(net.node(pi).name));

  for (NodeId id : net.topo_order()) {
    const Node& nd = net.node(id);
    std::vector<Signal> var_signal;
    var_signal.reserve(nd.fanins.size());
    for (NodeId f : nd.fanins) {
      const int g = map.node_out[static_cast<std::size_t>(f)];
      assert(g >= 0);
      var_signal.push_back(Signal{g, false});
    }
    const Signal out = build_sop_gates(gn, nd.func, var_signal,
                                       &map.node_cubes[static_cast<std::size_t>(id)],
                                       std::string(nd.name) + ".");
    map.node_out[static_cast<std::size_t>(id)] = out.gate;
  }

  for (const Output& o : net.pos())
    gn.add_output(map.node_out[static_cast<std::size_t>(o.driver)]);
  return gn;
}

}  // namespace rarsub
