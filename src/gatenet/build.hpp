#pragma once
// Two-level decomposition of a Boolean network into a GateNet: every node
// becomes a layer of cube AND gates feeding one OR gate (the paper's
// Sec. I preprocessing), with complemented fanin edges for negative
// literals. The returned map records where each node's output and cube
// gates landed so the division machinery can address individual wires.

#include <vector>

#include "gatenet/gatenet.hpp"
#include "network/network.hpp"

namespace rarsub {

struct GateNetMap {
  /// NodeId -> gate id of the node's output signal (-1 for dead nodes).
  std::vector<int> node_out;
  /// NodeId -> AND gate per cube, aligned with the node's func cube order.
  /// Pin k of a cube gate is the k-th present literal in ascending variable
  /// order.
  std::vector<std::vector<int>> node_cubes;
};

/// Build the gate-level view of the whole network. Primary outputs become
/// the GateNet's observables.
GateNet build_gatenet(const Network& net, GateNetMap& map);

/// Decompose one SOP into cube AND gates + an OR root inside `gn`.
/// `var_signal[v]` is the signal carrying variable v. Returns the root
/// signal and fills `cube_gates` (one AND gate per cube of `f`, in order;
/// constant-1 cubes get an empty AND gate).
Signal build_sop_gates(GateNet& gn, const Sop& f,
                       const std::vector<Signal>& var_signal,
                       std::vector<int>* cube_gates,
                       const std::string& label_prefix = "");

}  // namespace rarsub
