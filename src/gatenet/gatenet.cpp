#include "gatenet/gatenet.hpp"

#include <algorithm>
#include <cassert>

namespace rarsub {

int GateNet::add_pi(const std::string& label) {
  Gate g;
  g.type = GateType::PI;
  g.label = label;
  gates_.push_back(std::move(g));
  const int id = static_cast<int>(gates_.size() - 1);
  pis_.push_back(id);
  return id;
}

int GateNet::add_const(bool value) {
  Gate g;
  g.type = value ? GateType::Const1 : GateType::Const0;
  gates_.push_back(std::move(g));
  return static_cast<int>(gates_.size() - 1);
}

int GateNet::add_gate(GateType type, std::vector<Signal> fanins,
                      const std::string& label) {
  assert(type == GateType::And || type == GateType::Or);
  int id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
    Gate& g = gates_[static_cast<std::size_t>(id)];
    g.type = type;
    g.fanins = std::move(fanins);
    g.label = label;
    g.free = false;
  } else {
    Gate g;
    g.type = type;
    g.fanins = std::move(fanins);
    g.label = label;
    gates_.push_back(std::move(g));
    id = static_cast<int>(gates_.size() - 1);
  }
  for (const Signal& s : gates_[static_cast<std::size_t>(id)].fanins)
    gates_[static_cast<std::size_t>(s.gate)].fanouts.push_back(id);
  return id;
}

void GateNet::recycle_gate(int g) {
  Gate& gd = gate(g);
  assert(gd.type != GateType::PI && "cannot recycle a primary input");
  assert(gd.fanouts.empty() && "recycled gate still has consumers");
  assert(!gd.free);
  for (const Signal& s : gd.fanins) {
    auto& fo = gates_[static_cast<std::size_t>(s.gate)].fanouts;
    auto it = std::find(fo.begin(), fo.end(), g);
    if (it != fo.end()) fo.erase(it);
  }
  gd.fanins.clear();
  gd.type = GateType::Const0;
  gd.label.clear();
  gd.free = true;
  free_.push_back(g);
}

WireRef GateNet::add_fanin(int g, Signal s) {
  Gate& gd = gate(g);
  gd.fanins.push_back(s);
  gates_[static_cast<std::size_t>(s.gate)].fanouts.push_back(g);
  return WireRef{g, static_cast<int>(gd.fanins.size() - 1)};
}

void GateNet::remove_fanin(WireRef w) {
  Gate& gd = gate(w.gate);
  assert(w.pin >= 0 && w.pin < static_cast<int>(gd.fanins.size()));
  const Signal s = gd.fanins[static_cast<std::size_t>(w.pin)];
  gd.fanins.erase(gd.fanins.begin() + w.pin);
  auto& fo = gates_[static_cast<std::size_t>(s.gate)].fanouts;
  auto it = std::find(fo.begin(), fo.end(), w.gate);
  assert(it != fo.end());
  fo.erase(it);
}

void GateNet::make_const(int g, bool value) {
  Gate& gd = gate(g);
  assert(gd.type == GateType::And || gd.type == GateType::Or);
  for (const Signal& s : gd.fanins) {
    auto& fo = gates_[static_cast<std::size_t>(s.gate)].fanouts;
    auto it = std::find(fo.begin(), fo.end(), g);
    if (it != fo.end()) fo.erase(it);
  }
  gd.fanins.clear();
  gd.type = value ? GateType::Const1 : GateType::Const0;
}

std::vector<int> GateNet::topo_order() const {
  std::vector<int> order;
  order.reserve(gates_.size());
  std::vector<int> state(gates_.size(), 0);
  std::vector<int> stack;
  for (int i = 0; i < num_gates(); ++i) {
    if (state[static_cast<std::size_t>(i)] == 2) continue;
    stack.push_back(i);
    while (!stack.empty()) {
      const int g = stack.back();
      auto& st = state[static_cast<std::size_t>(g)];
      if (st == 2) {
        stack.pop_back();
        continue;
      }
      if (st == 1) {
        st = 2;
        order.push_back(g);
        stack.pop_back();
        continue;
      }
      st = 1;
      for (const Signal& s : gate(g).fanins) {
        assert(state[static_cast<std::size_t>(s.gate)] != 1 && "combinational cycle");
        if (state[static_cast<std::size_t>(s.gate)] == 0) stack.push_back(s.gate);
      }
    }
  }
  return order;
}

std::vector<bool> GateNet::tfo_mask(int g) const {
  std::vector<bool> mask(gates_.size(), false);
  std::vector<int> stack{g};
  while (!stack.empty()) {
    const int n = stack.back();
    stack.pop_back();
    for (int fo : gate(n).fanouts) {
      if (!mask[static_cast<std::size_t>(fo)]) {
        mask[static_cast<std::size_t>(fo)] = true;
        stack.push_back(fo);
      }
    }
  }
  return mask;
}

bool GateNet::reaches_output(int g, const std::vector<bool>& blocked) const {
  std::vector<bool> seen(gates_.size(), false);
  std::vector<int> stack{g};
  seen[static_cast<std::size_t>(g)] = true;
  auto is_output = [&](int x) {
    return std::find(outputs_.begin(), outputs_.end(), x) != outputs_.end();
  };
  if (!blocked[static_cast<std::size_t>(g)] && is_output(g)) return true;
  while (!stack.empty()) {
    const int n = stack.back();
    stack.pop_back();
    for (int fo : gate(n).fanouts) {
      const auto f = static_cast<std::size_t>(fo);
      if (seen[f] || blocked[f]) continue;
      seen[f] = true;
      if (is_output(fo)) return true;
      stack.push_back(fo);
    }
  }
  return false;
}

std::vector<bool> GateNet::eval(const std::vector<bool>& pi_values) const {
  assert(pi_values.size() == pis_.size());
  std::vector<std::uint64_t> words(pis_.size());
  for (std::size_t i = 0; i < pis_.size(); ++i)
    words[i] = pi_values[i] ? ~0ULL : 0ULL;
  const std::vector<std::uint64_t> out = eval64(words);
  std::vector<bool> vals(gates_.size());
  for (std::size_t i = 0; i < gates_.size(); ++i) vals[i] = (out[i] & 1) != 0;
  return vals;
}

std::vector<std::uint64_t> GateNet::eval64(
    const std::vector<std::uint64_t>& pi_words) const {
  assert(pi_words.size() == pis_.size());
  std::vector<std::uint64_t> val(gates_.size(), 0);
  for (std::size_t i = 0; i < pis_.size(); ++i)
    val[static_cast<std::size_t>(pis_[i])] = pi_words[i];
  for (int g : topo_order()) {
    const Gate& gd = gate(g);
    switch (gd.type) {
      case GateType::PI: break;
      case GateType::Const0: val[static_cast<std::size_t>(g)] = 0; break;
      case GateType::Const1: val[static_cast<std::size_t>(g)] = ~0ULL; break;
      case GateType::And: {
        std::uint64_t acc = ~0ULL;
        for (const Signal& s : gd.fanins) {
          const std::uint64_t w = val[static_cast<std::size_t>(s.gate)];
          acc &= s.neg ? ~w : w;
        }
        val[static_cast<std::size_t>(g)] = acc;
        break;
      }
      case GateType::Or: {
        std::uint64_t acc = 0;
        for (const Signal& s : gd.fanins) {
          const std::uint64_t w = val[static_cast<std::size_t>(s.gate)];
          acc |= s.neg ? ~w : w;
        }
        val[static_cast<std::size_t>(g)] = acc;
        break;
      }
    }
  }
  return val;
}

}  // namespace rarsub
