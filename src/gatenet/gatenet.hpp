#pragma once
// GateNet: the structural AND/OR circuit the RAR machinery operates on.
//
// The paper's first step is to "decompose each node's internal
// sum-of-product form into two-level AND and OR gates" so the circuit is
// alternating AND/OR levels (Sec. I). Inverters are edge attributes
// (signals carry an optional complement flag), which keeps the SOS and POS
// views perfectly symmetric: dualizing a circuit swaps gate types and
// nothing else.

#include <cstdint>
#include <string>
#include <vector>

namespace rarsub {

enum class GateType : std::uint8_t {
  PI,      ///< primary input (free variable)
  And,     ///< AND of fanins; with zero fanins == constant 1
  Or,      ///< OR of fanins; with zero fanins == constant 0
  Const0,
  Const1,
};

/// A signal: a gate output, possibly complemented at the consuming edge.
struct Signal {
  int gate = -1;
  bool neg = false;
  bool operator==(const Signal&) const = default;
};

/// A specific input pin of a gate (the paper's "wire").
struct WireRef {
  int gate = -1;
  int pin = -1;
  bool operator==(const WireRef&) const = default;
};

struct Gate {
  GateType type = GateType::And;
  std::vector<Signal> fanins;
  std::vector<int> fanouts;  ///< gates listing this gate among their fanins
  std::string label;
  /// Slot recycled by recycle_gate and not yet reused. Free slots sit in
  /// the array as fanin-less Const0 gates, which every traversal
  /// (topo_order, eval, implication) already handles.
  bool free = false;
};

class GateNet {
 public:
  int add_pi(const std::string& label = "");
  int add_const(bool value);
  int add_gate(GateType type, std::vector<Signal> fanins,
               const std::string& label = "");

  int num_gates() const { return static_cast<int>(gates_.size()); }
  const Gate& gate(int g) const { return gates_[static_cast<std::size_t>(g)]; }
  Gate& gate(int g) { return gates_[static_cast<std::size_t>(g)]; }

  /// Observable points: redundancy is judged with respect to these.
  void add_output(int g) { outputs_.push_back(g); }
  const std::vector<int>& outputs() const { return outputs_; }
  /// Drop all observables (incremental view rebuilds the list on
  /// OutputChanged events).
  void clear_outputs() { outputs_.clear(); }

  /// Retarget every observable entry equal to `old_gate` to `new_gate`
  /// (used when a gadget replaces a node's root gate).
  void replace_output(int old_gate, int new_gate) {
    for (int& o : outputs_)
      if (o == old_gate) o = new_gate;
  }

  /// Append a fanin pin to an existing gate (redundancy *addition*).
  WireRef add_fanin(int g, Signal s);

  /// Remove the fanin pin `w` (redundancy *removal*). Remaining pins shift
  /// down; an AND with no pins left is constant 1, an OR constant 0.
  void remove_fanin(WireRef w);

  /// Replace the whole gate by a constant (used when an input stuck-at of
  /// the controlling value is untestable).
  void make_const(int g, bool value);

  /// Return gate `g`'s slot to the freelist: detach its fanins, clear it
  /// to a Const0 placeholder and let a later add_gate reuse the id. The
  /// gate must have no fanouts. Used by the incremental gate view when a
  /// node's cube gates are rebuilt or a node dies.
  void recycle_gate(int g);

  int num_free() const { return static_cast<int>(free_.size()); }
  bool is_free(int g) const { return gate(g).free; }

  /// Gates in topological order (fanins first); PIs/constants included.
  std::vector<int> topo_order() const;

  /// Gates in the transitive fanout of `g` (excluding `g` itself).
  std::vector<bool> tfo_mask(int g) const;

  /// Is any observable output reachable from `g` without passing through a
  /// gate marked in `blocked`?
  bool reaches_output(int g, const std::vector<bool>& blocked) const;

  /// Evaluate the full circuit on an assignment of PI values (indexed by
  /// PI creation order). Returns one bool per gate.
  std::vector<bool> eval(const std::vector<bool>& pi_values) const;

  /// 64-way bit-parallel evaluation for the verification tests.
  std::vector<std::uint64_t> eval64(const std::vector<std::uint64_t>& pi_words) const;

  const std::vector<int>& pis() const { return pis_; }

 private:
  std::vector<Gate> gates_;
  std::vector<int> pis_;
  std::vector<int> outputs_;
  std::vector<int> free_;  ///< recycled slots, reused LIFO by add_gate
};

}  // namespace rarsub
