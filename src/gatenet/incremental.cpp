#include "gatenet/incremental.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_map>

#include "obs/obs.hpp"

namespace rarsub {

IncrementalGateView::IncrementalGateView(const Network& net) : net_(net) {
  full_rebuild();
}

void IncrementalGateView::full_rebuild() {
  gn_ = build_gatenet(net_, map_);
  cursor_ = net_.journal().seq();
}

void IncrementalGateView::clear_node_cubes(NodeId id) {
  const int root = map_.node_out[static_cast<std::size_t>(id)];
  assert(root >= 0);
  Gate& rg = gn_.gate(root);
  // Invariant: the root's pins are exactly the node's cube signals, so
  // detaching them leaves every cube gate consumer-free and recyclable.
  for (const Signal& s : rg.fanins) {
    auto& fo = gn_.gate(s.gate).fanouts;
    auto it = std::find(fo.begin(), fo.end(), root);
    assert(it != fo.end());
    fo.erase(it);
  }
  rg.fanins.clear();
  for (int g : map_.node_cubes[static_cast<std::size_t>(id)]) gn_.recycle_gate(g);
  map_.node_cubes[static_cast<std::size_t>(id)].clear();
}

int IncrementalGateView::patch_node(NodeId id) {
  const Node& nd = net_.node(id);
  int root = map_.node_out[static_cast<std::size_t>(id)];
  int written = 0;
  if (root < 0) {
    // First sighting: the OR root keeps this id for the node's whole
    // life, so consumer pins placed later never need rewiring.
    root = gn_.add_gate(GateType::Or, {}, std::string(nd.name) + ".or");
    map_.node_out[static_cast<std::size_t>(id)] = root;
    ++written;
  } else {
    clear_node_cubes(id);
  }
  std::vector<Signal> var_signal;
  var_signal.reserve(nd.fanins.size());
  for (NodeId f : nd.fanins) {
    const int g = map_.node_out[static_cast<std::size_t>(f)];
    assert(g >= 0 && "fanin has no root gate");
    var_signal.push_back(Signal{g, false});
  }
  auto& cubes = map_.node_cubes[static_cast<std::size_t>(id)];
  for (int ci = 0; ci < nd.func.num_cubes(); ++ci) {
    const Cube& c = nd.func.cube(ci);
    std::vector<Signal> lits;
    for (int v = 0; v < nd.func.num_vars(); ++v) {
      const Lit l = c.lit(v);
      if (l == Lit::Absent) continue;
      Signal s = var_signal[static_cast<std::size_t>(v)];
      if (l == Lit::Neg) s.neg = !s.neg;
      lits.push_back(s);
    }
    const int g = gn_.add_gate(GateType::And, std::move(lits),
                               std::string(nd.name) + ".c" + std::to_string(ci));
    cubes.push_back(g);
    gn_.add_fanin(root, Signal{g, false});
    ++written;
  }
  return written;
}

int IncrementalGateView::refresh() {
  const MutationJournal& j = net_.journal();
  if (cursor_ == j.seq()) return 0;

  const std::size_t n = static_cast<std::size_t>(net_.num_nodes());
  // Coalesced per-node dirt: a node touched many times in the window is
  // patched once, from its final state.
  constexpr std::uint8_t kAdded = 1, kDirty = 2, kDied = 4;
  std::vector<std::uint8_t> flag(n, 0);
  bool outputs_dirty = false;
  const bool in_window = j.visit_since(cursor_, [&](const NetEvent& e) {
    switch (e.kind) {
      case NetEventKind::NodeAdded:
        flag[static_cast<std::size_t>(e.node)] |= kAdded;
        break;
      case NetEventKind::FunctionChanged:
        flag[static_cast<std::size_t>(e.node)] |= kDirty;
        break;
      case NetEventKind::NodeDied:
        flag[static_cast<std::size_t>(e.node)] |= kDied;
        break;
      case NetEventKind::OutputChanged:
        outputs_dirty = true;
        break;
    }
  });
  if (!in_window) {
    // The journal was trimmed past our cursor; the delta is gone.
    full_rebuild();
    return net_.num_nodes();
  }

  map_.node_out.resize(n, -1);
  map_.node_cubes.resize(n);

  // Phase 1: roots for every new node (ascending id = creation order,
  // which keeps the GateNet's PI list aligned with net.pis()). Internal
  // roots start empty so phase 2 can patch nodes in any order — an older
  // node may have been re-pointed at a newer one within the window.
  for (std::size_t i = 0; i < n; ++i) {
    if ((flag[i] & kAdded) == 0 || (flag[i] & kDied) != 0) continue;
    const NodeId id = static_cast<NodeId>(i);
    if (net_.node(id).is_pi)
      map_.node_out[i] = gn_.add_pi(std::string(net_.node(id).name));
    else
      map_.node_out[i] =
          gn_.add_gate(GateType::Or, {}, std::string(net_.node(id).name) + ".or");
  }

  // Phase 2: rebuild gates of added/changed alive nodes. Any order works
  // — every fanin's root already exists (phase 1 or an earlier window).
  int patched_nodes = 0;
  int patched_gates = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if ((flag[i] & (kAdded | kDirty)) == 0 || (flag[i] & kDied) != 0) continue;
    const NodeId id = static_cast<NodeId>(i);
    if (net_.node(id).is_pi) continue;
    assert(net_.node(id).alive);
    patched_gates += patch_node(id);
    ++patched_nodes;
  }

  // Phase 3: recycle dead nodes' gates — cube layers first, then roots,
  // so a dying node's cubes can still detach from a dying fanin's root.
  for (std::size_t i = 0; i < n; ++i) {
    if ((flag[i] & kDied) == 0 || (flag[i] & kAdded) != 0) continue;
    clear_node_cubes(static_cast<NodeId>(i));
    ++patched_nodes;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if ((flag[i] & kDied) == 0 || (flag[i] & kAdded) != 0) continue;
    const int root = map_.node_out[i];
    // Every consumer was re-pointed before the node died (the Network
    // enforces that only fanout-free nodes die), so the root is free.
    gn_.recycle_gate(root);
    ++patched_gates;
    map_.node_out[i] = -1;
  }

  if (outputs_dirty) {
    gn_.clear_outputs();
    for (const Output& o : net_.pos())
      gn_.add_output(map_.node_out[static_cast<std::size_t>(o.driver)]);
  }

  cursor_ = j.seq();
  if (patched_nodes > 0) {
    OBS_COUNT("gateview.patches", 1);
    OBS_COUNT("gateview.patched_nodes", patched_nodes);
    OBS_COUNT("gateview.patched_gates", patched_gates);
  }

  // Compaction: once free slots dominate, a fresh build is cheaper for
  // every downstream copy/traversal than dragging dead weight along.
  if (gn_.num_free() > 64 && gn_.num_free() > gn_.num_gates() / 2)
    full_rebuild();
  return patched_nodes;
}

namespace {

std::string gate_desc(int g) { return "gate " + std::to_string(g); }

}  // namespace

bool IncrementalGateView::check(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (cursor_ != net_.journal().seq())
    return fail("view is stale (cursor behind journal)");

  // Global fanin/fanout symmetry, counted as edge multisets.
  std::unordered_map<std::uint64_t, int> edges;
  auto key = [](int src, int dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(dst);
  };
  for (int g = 0; g < gn_.num_gates(); ++g)
    for (const Signal& s : gn_.gate(g).fanins) edges[key(s.gate, g)]++;
  for (int g = 0; g < gn_.num_gates(); ++g)
    for (int fo : gn_.gate(g).fanouts)
      if (--edges[key(g, fo)] < 0)
        return fail(gate_desc(g) + ": fanout edge without matching fanin");
  for (const auto& [k, cnt] : edges)
    if (cnt != 0) return fail("fanin edge without matching fanout");

  // Free slots must be inert placeholders.
  int free_count = 0;
  for (int g = 0; g < gn_.num_gates(); ++g) {
    const Gate& gd = gn_.gate(g);
    if (!gd.free) continue;
    ++free_count;
    if (gd.type != GateType::Const0 || !gd.fanins.empty() || !gd.fanouts.empty())
      return fail(gate_desc(g) + ": free slot is not an empty Const0");
  }
  if (free_count != gn_.num_free())
    return fail("freelist size disagrees with free flags");

  if (static_cast<int>(map_.node_out.size()) != net_.num_nodes())
    return fail("map size disagrees with network");

  // Per-node canonical decomposition: what build_gatenet would produce.
  for (NodeId id = 0; id < net_.num_nodes(); ++id) {
    const Node& nd = net_.node(id);
    const int root = map_.node_out[static_cast<std::size_t>(id)];
    if (!nd.alive) continue;
    if (root < 0) return fail("alive node " + std::string(nd.name) + " has no root gate");
    if (gn_.is_free(root)) return fail("node " + std::string(nd.name) + " root is free");
    if (nd.is_pi) {
      if (gn_.gate(root).type != GateType::PI)
        return fail("PI " + std::string(nd.name) + " root is not a PI gate");
      continue;
    }
    const Gate& rg = gn_.gate(root);
    if (rg.type != GateType::Or)
      return fail("node " + std::string(nd.name) + " root is not an OR gate");
    const auto& cubes = map_.node_cubes[static_cast<std::size_t>(id)];
    if (static_cast<int>(cubes.size()) != nd.func.num_cubes())
      return fail("node " + std::string(nd.name) + " cube-gate count mismatch");
    if (rg.fanins.size() != cubes.size())
      return fail("node " + std::string(nd.name) + " root pin count mismatch");
    for (std::size_t ci = 0; ci < cubes.size(); ++ci) {
      if (rg.fanins[ci] != Signal{cubes[ci], false})
        return fail("node " + std::string(nd.name) + " root pin " + std::to_string(ci) +
                    " does not feed from its cube gate");
      const Gate& cg = gn_.gate(cubes[ci]);
      if (cg.type != GateType::And || cg.free)
        return fail("node " + std::string(nd.name) + " cube " + std::to_string(ci) +
                    " is not an AND gate");
      // Expected pins: present literals in ascending variable order.
      const Cube& c = nd.func.cube(static_cast<int>(ci));
      std::vector<Signal> want;
      for (int v = 0; v < nd.func.num_vars(); ++v) {
        const Lit l = c.lit(v);
        if (l == Lit::Absent) continue;
        const NodeId f = nd.fanins[static_cast<std::size_t>(v)];
        want.push_back(
            Signal{map_.node_out[static_cast<std::size_t>(f)], l == Lit::Neg});
      }
      if (cg.fanins != want)
        return fail("node " + std::string(nd.name) + " cube " + std::to_string(ci) +
                    " pins disagree with the cover");
    }
  }

  if (gn_.outputs().size() != net_.pos().size())
    return fail("output count mismatch");
  for (std::size_t i = 0; i < net_.pos().size(); ++i)
    if (gn_.outputs()[i] !=
        map_.node_out[static_cast<std::size_t>(net_.pos()[i].driver)])
      return fail("output " + net_.pos()[i].name + " mis-wired");

  return true;
}

}  // namespace rarsub
