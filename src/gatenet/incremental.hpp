#pragma once
// IncrementalGateView: a whole-network two-level AND/OR view kept live
// across Network mutations.
//
// The GDC substitution path and network-level redundancy removal both
// operate on the gate-level decomposition of the entire network. Before
// this layer, that view was rebuilt from scratch (`build_gatenet`) after
// every committed substitution — an O(network) cost per commit. The view
// instead subscribes to the Network's mutation journal with a cursor and
// patches only the touched nodes: a node's OR root gate is allocated once
// and keeps its id for the node's whole life (so consumers' pins never
// move), while its cube AND gates are recycled through the GateNet
// freelist and rebuilt from the node's current cover on each
// FunctionChanged event. `build_gatenet` remains the from-scratch oracle;
// `check()` compares the view against the canonical decomposition.

#include <cstdint>
#include <string>
#include <vector>

#include "gatenet/build.hpp"
#include "gatenet/gatenet.hpp"
#include "network/network.hpp"

namespace rarsub {

class IncrementalGateView {
 public:
  /// Builds the initial view from scratch (one `gateview.full_rebuilds`).
  explicit IncrementalGateView(const Network& net);

  /// Consume journal events newer than the cursor and patch the view.
  /// Returns the number of nodes whose gates were touched (0 when already
  /// up to date). Falls back to a full rebuild when the freelist has
  /// grown past half the gate array or the journal suffix was trimmed.
  int refresh();

  /// True when the cursor matches the journal (no pending deltas).
  bool up_to_date() const { return cursor_ == net_.journal().seq(); }

  const GateNet& gatenet() const { return gn_; }
  const GateNetMap& map() const { return map_; }

  std::uint64_t cursor() const { return cursor_; }
  int free_gates() const { return gn_.num_free(); }

  /// Structural oracle check: the view must equal the canonical
  /// decomposition `build_gatenet` would produce — per alive node, the
  /// same cube gates (same literals, ascending variable order) feeding
  /// the same OR root, the same PI list and the same observable outputs —
  /// modulo gate ids and free slots. O(network); tests only. On failure
  /// returns false and, if `why` is given, describes the first mismatch.
  bool check(std::string* why = nullptr) const;

 private:
  void full_rebuild();
  /// Recycle `id`'s cube gates and detach them from the root.
  void clear_node_cubes(NodeId id);
  /// Rebuild `id`'s cube gates + root pins from its current cover.
  /// Returns the number of gates written.
  int patch_node(NodeId id);

  const Network& net_;
  GateNet gn_;
  GateNetMap map_;
  std::uint64_t cursor_ = 0;
};

}  // namespace rarsub
