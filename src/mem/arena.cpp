#include "mem/arena.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

namespace rarsub::mem {

namespace {

constexpr std::size_t kMinChunk = 64 * 1024;
constexpr std::size_t kMaxChunk = 1024 * 1024;

// Process-wide gauges. Single-writer per arena (arenas are thread-local),
// so relaxed ordering is enough; readers only need eventually-consistent
// telemetry. high_water is maintained at frame close: usage grows
// monotonically between rewinds, so the value just before a rewind IS the
// running maximum.
std::atomic<std::size_t> g_chunks{0};
std::atomic<std::size_t> g_reserved{0};
std::atomic<std::size_t> g_used{0};
std::atomic<std::size_t> g_high{0};
std::atomic<std::size_t> g_resets{0};

void note_high_water() noexcept {
  const std::size_t used = g_used.load(std::memory_order_relaxed);
  std::size_t high = g_high.load(std::memory_order_relaxed);
  while (used > high &&
         !g_high.compare_exchange_weak(high, used, std::memory_order_relaxed)) {
  }
}

// The latch reads the environment once; RARSUB_ARENA=0 disables (any other
// value, or unset, leaves the arena on — the default). obs::env_flag can't
// express "on unless explicitly zero", so the raw value is inspected here.
std::atomic<bool>& enabled_latch() noexcept {
  static std::atomic<bool> latch{[] {
    const char* v = std::getenv("RARSUB_ARENA");
    return !(v != nullptr && std::strcmp(v, "0") == 0);
  }()};
  return latch;
}

}  // namespace

bool arena_enabled() noexcept {
  return enabled_latch().load(std::memory_order_relaxed);
}

void set_arena_enabled(bool on) noexcept {
  enabled_latch().store(on, std::memory_order_relaxed);
}

ArenaStats arena_stats() noexcept {
  note_high_water();  // capture an open frame's usage too
  ArenaStats s;
  s.chunks = g_chunks.load(std::memory_order_relaxed);
  s.bytes_reserved = g_reserved.load(std::memory_order_relaxed);
  s.high_water = g_high.load(std::memory_order_relaxed);
  s.resets = g_resets.load(std::memory_order_relaxed);
  return s;
}

void arena_stats_reset() noexcept {
  g_high.store(g_used.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  g_resets.store(0, std::memory_order_relaxed);
}

Arena::~Arena() {
  for (const Chunk& c : chunks_) ::operator delete(c.data);
  g_chunks.fetch_sub(chunks_.size(), std::memory_order_relaxed);
  g_reserved.fetch_sub(reserved_, std::memory_order_relaxed);
  g_used.fetch_sub(used_, std::memory_order_relaxed);
}

void Arena::grow(std::size_t min_bytes) {
  std::size_t size = chunks_.empty() ? kMinChunk : chunks_.back().size * 2;
  if (size > kMaxChunk) size = kMaxChunk;
  if (size < min_bytes) size = min_bytes;
  Chunk c{static_cast<std::byte*>(::operator new(size)), size};
  chunks_.push_back(c);
  cur_ = chunks_.size() - 1;
  off_ = 0;
  reserved_ += size;
  g_chunks.fetch_add(1, std::memory_order_relaxed);
  g_reserved.fetch_add(size, std::memory_order_relaxed);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  assert(align <= alignof(std::max_align_t));
  assert((align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (cur_ < chunks_.size()) {
      const Chunk& c = chunks_[cur_];
      const std::size_t aligned = (off_ + (align - 1)) & ~(align - 1);
      if (aligned + bytes <= c.size) {
        void* p = c.data + aligned;
        const std::size_t consumed = (aligned - off_) + bytes;
        off_ = aligned + bytes;
        used_ += consumed;
        g_used.fetch_add(consumed, std::memory_order_relaxed);
        return p;
      }
      if (cur_ + 1 < chunks_.size()) {  // spill into the next kept chunk
        ++cur_;
        off_ = 0;
        continue;
      }
    }
    grow(bytes + align);
  }
}

bool Arena::owns(const void* p) const noexcept {
  const std::byte* b = static_cast<const std::byte*>(p);
  for (const Chunk& c : chunks_)
    if (b >= c.data && b < c.data + c.size) return true;
  return false;
}

void Arena::rewind(const Mark& m) noexcept {
  assert(m.used <= used_);
  note_high_water();
  g_used.fetch_sub(used_ - m.used, std::memory_order_relaxed);
  g_resets.fetch_add(1, std::memory_order_relaxed);
  cur_ = m.chunk;
  off_ = m.offset;
  used_ = m.used;
}

Arena& scratch_arena() noexcept {
  thread_local Arena arena;
  return arena;
}

}  // namespace rarsub::mem
