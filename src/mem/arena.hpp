#pragma once
// Monotonic bump-pointer region allocator for the substitution hot path.
//
// The attempt transaction (subst.attempt) churns tens of millions of tiny,
// short-lived allocations — quotient/remainder cube lists, espresso scratch
// covers, recursion temporaries — over 99% of which die inside the attempt
// that made them (docs/PERFORMANCE.md). An Arena turns each of those into a
// pointer bump: memory is carved from reusable chunks, handed out with no
// per-object bookkeeping, and reclaimed wholesale by rewinding to a mark.
//
//   Arena           chunked bump allocator; O(1) reset(), chunks are kept
//                   and reused across attempts so steady state performs no
//                   system allocation at all
//   ScratchScope    RAII frame over the calling thread's scratch arena:
//                   records a mark on entry, rewinds on exit; nests freely
//   ArenaAllocator  STL-compatible allocator; falls back to the heap when
//                   the arena is disabled, and deallocate() distinguishes
//                   arena from heap pointers so the latch can be flipped at
//                   runtime (the fuzz battery's arena on/off leg)
//   ScratchVector   std::vector<T, ArenaAllocator<T>> over the thread arena
//
// The arena changes only where bytes come from, never what is computed:
// results are byte-identical with the feature on or off. Disable with
// RARSUB_ARENA=0 (or --no-arena in the CLI), or at runtime through
// set_arena_enabled(). Each thread owns its scratch arena (scratch_arena()
// is thread_local), so parallel gain-evaluation workers never share one.
//
// Gauges (published as mem.arena.* by obs::snapshot()):
//   chunks / bytes_reserved   live chunk count and capacity, process-wide
//   high_water                max bytes simultaneously in use since the
//                             last obs::reset() (measured at frame close)
//   resets                    scratch frames closed since obs::reset()

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rarsub::mem {

/// Latch: true unless RARSUB_ARENA=0 in the environment or
/// set_arena_enabled(false) was called. Checked at allocation time, so
/// flipping mid-process is safe (owns() keeps deallocation consistent).
bool arena_enabled() noexcept;
void set_arena_enabled(bool on) noexcept;

/// Process-wide aggregates across every live arena.
struct ArenaStats {
  std::size_t chunks = 0;          ///< live chunks
  std::size_t bytes_reserved = 0;  ///< total chunk capacity
  std::size_t high_water = 0;      ///< max bytes in use since last stats reset
  std::size_t resets = 0;          ///< frames rewound since last stats reset
};
ArenaStats arena_stats() noexcept;

/// Re-arm the windowed gauges (high_water, resets) for a fresh measurement
/// window; chunk capacity gauges persist. Called from obs::reset() so bench
/// windows isolate arena telemetry the way they isolate mem.* gauges.
void arena_stats_reset() noexcept;

class Arena {
 public:
  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Position to rewind to; everything allocated after it is reclaimed.
  struct Mark {
    std::size_t chunk = 0;
    std::size_t offset = 0;
    std::size_t used = 0;
  };

  /// Bump-allocate `bytes` aligned to `align` (<= alignof(max_align_t)).
  void* allocate(std::size_t bytes, std::size_t align);

  /// Does `p` point into one of this arena's chunks? Used by
  /// ArenaAllocator::deallocate to tell arena memory (no-op) from heap
  /// fallback memory (operator delete) regardless of the current latch.
  bool owns(const void* p) const noexcept;

  Mark mark() const noexcept { return Mark{cur_, off_, used_}; }

  /// O(1): drop back to `m`, keeping every chunk for reuse.
  void rewind(const Mark& m) noexcept;

  /// O(1): rewind to empty (chunks retained).
  void reset() noexcept { rewind(Mark{}); }

  std::size_t chunk_count() const noexcept { return chunks_.size(); }
  std::size_t bytes_reserved() const noexcept { return reserved_; }
  std::size_t bytes_used() const noexcept { return used_; }

 private:
  struct Chunk {
    std::byte* data;
    std::size_t size;
  };

  void grow(std::size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;       // chunk currently bumped
  std::size_t off_ = 0;       // bump offset within it
  std::size_t used_ = 0;      // bytes handed out since reset (monotonic)
  std::size_t reserved_ = 0;  // sum of chunk sizes
};

/// The calling thread's scratch arena (one per thread, so the parallel
/// gain-evaluation workers of substitute_network each own one).
Arena& scratch_arena() noexcept;

/// RAII frame over the thread's scratch arena: every scratch allocation
/// made inside the scope is reclaimed, in O(1), when it closes. Nests.
class ScratchScope {
 public:
  ScratchScope() noexcept : arena_(scratch_arena()), mark_(arena_.mark()) {}
  ~ScratchScope() { arena_.rewind(mark_); }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;
  Arena& arena() noexcept { return arena_; }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// STL-compatible allocator over an Arena. Individual deallocation is a
/// no-op for arena memory (reclaimed by the enclosing ScratchScope); when
/// the arena latch is off, allocation falls back to the global heap and
/// deallocate() frees it normally — so containers stay correct across a
/// runtime flip of the latch.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept : arena_(&scratch_arena()) {}
  explicit ArenaAllocator(Arena* a) noexcept : arena_(a) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) noexcept : arena_(o.arena()) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_enabled())
      return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t) noexcept {
    if (!arena_->owns(p)) ::operator delete(p);
  }

  Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_;
};

/// Scratch container alias: a vector whose buffer lives in the calling
/// thread's scratch arena (while the latch is on). Must not escape the
/// ScratchScope active at construction time.
template <typename T>
using ScratchVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace rarsub::mem
