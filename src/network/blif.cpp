#include "network/blif.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace rarsub {

namespace {

// Split on whitespace.
std::vector<std::string> tokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string t;
  while (ss >> t) out.push_back(t);
  return out;
}

struct RawNames {
  std::vector<std::string> signals;  // inputs... output
  std::vector<std::pair<std::string, char>> rows;  // (input plane, output char)
};

}  // namespace

Network read_blif(std::istream& in) {
  Network net;
  std::vector<std::string> input_names, output_names;
  std::vector<RawNames> blocks;
  RawNames* current = nullptr;

  std::string line, pending;
  while (std::getline(in, line)) {
    // Strip comments and handle '\' continuations.
    if (auto pos = line.find('#'); pos != std::string::npos) line.resize(pos);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.pop_back();
    if (!line.empty() && line.back() == '\\') {
      line.pop_back();
      pending += line + " ";
      continue;
    }
    line = pending + line;
    pending.clear();

    const std::vector<std::string> tok = tokens(line);
    if (tok.empty()) continue;

    if (tok[0] == ".model") {
      if (tok.size() > 1) net.set_name(tok[1]);
      current = nullptr;
    } else if (tok[0] == ".inputs") {
      input_names.insert(input_names.end(), tok.begin() + 1, tok.end());
      current = nullptr;
    } else if (tok[0] == ".outputs") {
      output_names.insert(output_names.end(), tok.begin() + 1, tok.end());
      current = nullptr;
    } else if (tok[0] == ".names") {
      blocks.push_back(RawNames{{tok.begin() + 1, tok.end()}, {}});
      current = &blocks.back();
    } else if (tok[0] == ".end") {
      current = nullptr;
    } else if (tok[0][0] == '.') {
      throw std::runtime_error("read_blif: unsupported construct " + tok[0]);
    } else {
      if (current == nullptr)
        throw std::runtime_error("read_blif: cover row outside .names");
      if (current->signals.size() == 1) {
        // Constant node: rows like "1" (const 1); absence means const 0.
        if (tok.size() != 1 || (tok[0] != "1" && tok[0] != "0"))
          throw std::runtime_error("read_blif: bad constant row");
        current->rows.emplace_back("", tok[0][0]);
      } else {
        if (tok.size() != 2)
          throw std::runtime_error("read_blif: bad cover row '" + line + "'");
        current->rows.emplace_back(tok[0], tok[1][0]);
      }
    }
  }

  // Create PIs, then nodes in dependency order (two passes: declare, fill).
  std::map<std::string, NodeId> by_name;
  for (const std::string& n : input_names) by_name[n] = net.add_pi(n);

  // Declare all .names outputs first with placeholder functions so fanins
  // can be resolved regardless of order.
  for (const RawNames& b : blocks) {
    const std::string& out = b.signals.back();
    if (by_name.count(out))
      throw std::runtime_error("read_blif: signal defined twice: " + out);
    by_name[out] = net.add_node(out, {}, Sop(0));
  }
  for (const RawNames& b : blocks) {
    const std::string& out_name = b.signals.back();
    std::vector<NodeId> fanins;
    for (std::size_t i = 0; i + 1 < b.signals.size(); ++i) {
      auto it = by_name.find(b.signals[i]);
      if (it == by_name.end())
        throw std::runtime_error("read_blif: undefined signal " + b.signals[i]);
      fanins.push_back(it->second);
    }
    const int nv = static_cast<int>(fanins.size());
    Sop on(nv), off(nv);
    bool has_on = false, has_off = false;
    for (const auto& [plane, out_char] : b.rows) {
      Cube c(nv);
      for (int v = 0; v < nv; ++v) {
        const char ch = plane[static_cast<std::size_t>(v)];
        if (ch == '1') c.set_lit(v, Lit::Pos);
        else if (ch == '0') c.set_lit(v, Lit::Neg);
        else if (ch != '-')
          throw std::runtime_error("read_blif: bad plane char");
      }
      if (out_char == '1') {
        on.add_cube(c);
        has_on = true;
      } else {
        off.add_cube(c);
        has_off = true;
      }
    }
    if (has_on && has_off)
      throw std::runtime_error("read_blif: mixed on/off rows for " + out_name);
    Sop func = has_off ? off.complement() : on;
    net.set_function(by_name[out_name], std::move(fanins), std::move(func));
  }

  for (const std::string& n : output_names) {
    auto it = by_name.find(n);
    if (it == by_name.end())
      throw std::runtime_error("read_blif: undefined output " + n);
    net.add_po(n, it->second);
  }
  return net;
}

Network read_blif_string(const std::string& text) {
  std::istringstream ss(text);
  return read_blif(ss);
}

Network read_blif_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_blif_file: cannot open " + path);
  return read_blif(f);
}

void write_blif(const Network& net, std::ostream& out) {
  out << ".model " << (net.name().empty() ? "rarsub" : net.name()) << "\n";
  out << ".inputs";
  for (NodeId pi : net.pis()) out << " " << net.node(pi).name;
  out << "\n.outputs";
  for (const Output& o : net.pos()) out << " " << o.name;
  out << "\n";

  // PO name differing from driver name needs a buffer .names block.
  for (const Output& o : net.pos()) {
    if (net.node(o.driver).name != o.name) {
      out << ".names " << net.node(o.driver).name << " " << o.name << "\n1 1\n";
    }
  }

  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Node& nd = net.node(id);
    if (!nd.alive || nd.is_pi) continue;
    out << ".names";
    for (NodeId f : nd.fanins) out << " " << net.node(f).name;
    out << " " << nd.name << "\n";
    if (nd.fanins.empty()) {
      if (!nd.func.is_zero()) out << "1\n";
    } else {
      for (const Cube& c : nd.func.cubes()) out << c.to_string() << " 1\n";
    }
  }
  out << ".end\n";
}

std::string write_blif_string(const Network& net) {
  std::ostringstream ss;
  write_blif(net, ss);
  return ss.str();
}

}  // namespace rarsub
