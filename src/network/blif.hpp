#pragma once
// BLIF reader/writer for combinational networks (.model/.inputs/.outputs/
// .names/.end), the interchange format of the SIS environment the paper's
// experiments ran in.

#include <iosfwd>
#include <string>

#include "network/network.hpp"

namespace rarsub {

/// Parse a BLIF description; throws std::runtime_error on malformed input.
Network read_blif(std::istream& in);
Network read_blif_string(const std::string& text);
Network read_blif_file(const std::string& path);

/// Serialize; every alive internal node becomes a .names block.
void write_blif(const Network& net, std::ostream& out);
std::string write_blif_string(const Network& net);

}  // namespace rarsub
