#pragma once
// Version-tracked cache of node-function complements (in each node's local
// variable space). Substitution passes consult every node's complement for
// the POS dual of every candidate pair; recomputing it per pair dominates
// run time on circuits with large collapsed nodes.

#include <unordered_map>
#include <utility>

#include "network/network.hpp"

namespace rarsub {

class ComplementCache {
 public:
  /// Complement of node `id`'s function over its own fanin variables.
  /// Recomputed only when the node's version changed since the last call.
  const Sop& get(const Network& net, NodeId id) {
    const Node& nd = net.node(id);
    auto it = cache_.find(id);
    if (it != cache_.end() && it->second.first == nd.version)
      return it->second.second;
    auto [pos, inserted] =
        cache_.insert_or_assign(id, std::make_pair(nd.version, nd.func.complement()));
    (void)inserted;
    return pos->second.second;
  }

  void clear() { cache_.clear(); }

  /// Nodes with a cached complement (tests / introspection).
  std::size_t size() const { return cache_.size(); }

 private:
  std::unordered_map<NodeId, std::pair<int, Sop>> cache_;
};

}  // namespace rarsub
