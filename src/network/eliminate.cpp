// SIS-style `eliminate` and network-wide `simplify`, the preprocessing
// commands of the paper's Scripts A/B/C ("The purpose of eliminate zero is
// to create complex gates by collapsing gates with single fanout since
// complex gates are more suitable for substitution").

#include "network/network.hpp"
#include "obs/obs.hpp"
#include "sop/espresso.hpp"
#include "sop/factor.hpp"

namespace rarsub {

int eliminate(Network& net, int threshold, int cube_limit) {
  OBS_PHASE("opt.eliminate");
  int eliminated = 0;
  // The collapse value of a node depends only on its own cover, its fanout
  // set and its fanouts' covers, all of which a collapse changes for a
  // handful of neighbours; memoize it so the while-changed rescans only
  // re-preview nodes a collapse actually touched. Same scan order and the
  // same per-node numbers as recomputing fresh => identical decisions and
  // an identical result network (the small-tier literal baselines gate
  // this).
  std::vector<signed char> cached(static_cast<std::size_t>(net.num_nodes()),
                                  -1);  // -1 unknown, 0 infeasible, 1 valued
  std::vector<int> cached_value(static_cast<std::size_t>(net.num_nodes()), 0);
  const auto invalidate = [&](NodeId x) {
    if (static_cast<std::size_t>(x) < cached.size())
      cached[static_cast<std::size_t>(x)] = -1;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      const Node& nd = net.node(id);
      if (!nd.alive || nd.is_pi) continue;
      if (net.num_po_refs(id) > 0) continue;  // keep PO drivers
      const int fo = net.fanout_refs(id);
      if (fo == 0) continue;  // sweep's job

      // SIS-style value: the ACTUAL factored-literal change of collapsing
      // this node into every fanout. Computed by previewing the
      // compositions; this is what keeps XOR trees from exploding (their
      // composed covers double, giving a large positive value).
      bool feasible;
      int value = 0;
      const std::size_t ci = static_cast<std::size_t>(id);
      if (ci < cached.size() && cached[ci] >= 0) {
        OBS_COUNT("eliminate.value_cache_hits", 1);
        feasible = cached[ci] == 1;
        value = cached_value[ci];
      } else {
        const int own = factored_literal_count(nd.func);
        value = -own;
        feasible = true;
        for (NodeId g : nd.fanouts) {
          const auto preview = net.compose_preview(g, id, cube_limit);
          if (!preview) {
            feasible = false;
            break;
          }
          value += factored_literal_count(preview->func) -
                   factored_literal_count(net.node(g).func);
        }
        if (ci < cached.size()) {
          cached[ci] = feasible ? 1 : 0;
          cached_value[ci] = value;
        }
      }
      if (!feasible || value > threshold) continue;

      // A collapse rewrites every fanout's cover and the fanout sets of
      // this node's fanins, so any cached value referring to those nodes
      // goes stale: the fanins (old and, post-collapse, new) of every
      // fanout, plus our own fanins. collapse_into_fanouts can mutate even
      // when it reports failure, so invalidate for the attempt, not the
      // outcome.
      std::vector<NodeId> stale(nd.fanins.begin(), nd.fanins.end());
      const std::vector<NodeId> fanouts(nd.fanouts.begin(), nd.fanouts.end());
      for (NodeId g : fanouts) {
        stale.push_back(g);
        const std::span<const NodeId> gf = net.fanins(g);
        stale.insert(stale.end(), gf.begin(), gf.end());
      }
      const bool collapsed = net.collapse_into_fanouts(id, cube_limit);
      for (NodeId g : fanouts) {
        const std::span<const NodeId> gf = net.fanins(g);
        stale.insert(stale.end(), gf.begin(), gf.end());
      }
      for (NodeId x : stale) invalidate(x);
      if (collapsed) {
        ++eliminated;
        changed = true;
      }
    }
  }
  net.sweep();
  return eliminated;
}

void simplify_network(Network& net) {
  OBS_PHASE("opt.simplify");
  for (NodeId id : net.topo_order()) {
    const Sop& func = net.func(id);
    if (func.num_cubes() == 0) continue;
    Sop simplified = espresso_lite(func, Sop::zero(func.num_vars()));
    if (simplified.num_literals() <= func.num_literals()) {
      const std::span<const NodeId> fanins = net.fanins(id);
      net.set_function(id, {fanins.begin(), fanins.end()},
                       std::move(simplified));
    }
  }
  net.sweep();
}

}  // namespace rarsub
