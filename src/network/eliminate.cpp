// SIS-style `eliminate` and network-wide `simplify`, the preprocessing
// commands of the paper's Scripts A/B/C ("The purpose of eliminate zero is
// to create complex gates by collapsing gates with single fanout since
// complex gates are more suitable for substitution").

#include "network/network.hpp"
#include "sop/espresso.hpp"
#include "sop/factor.hpp"

namespace rarsub {

int eliminate(Network& net, int threshold, int cube_limit) {
  int eliminated = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      const Node& nd = net.node(id);
      if (!nd.alive || nd.is_pi) continue;
      if (net.num_po_refs(id) > 0) continue;  // keep PO drivers
      const int fo = net.fanout_refs(id);
      if (fo == 0) continue;  // sweep's job

      // SIS-style value: the ACTUAL factored-literal change of collapsing
      // this node into every fanout. Computed by previewing the
      // compositions; this is what keeps XOR trees from exploding (their
      // composed covers double, giving a large positive value).
      const int own = factored_literal_count(nd.func);
      int value = -own;
      bool feasible = true;
      for (NodeId g : nd.fanouts) {
        const auto preview = net.compose_preview(g, id, cube_limit);
        if (!preview) {
          feasible = false;
          break;
        }
        value += factored_literal_count(preview->func) -
                 factored_literal_count(net.node(g).func);
      }
      if (!feasible || value > threshold) continue;
      if (net.collapse_into_fanouts(id, cube_limit)) {
        ++eliminated;
        changed = true;
      }
    }
  }
  net.sweep();
  return eliminated;
}

void simplify_network(Network& net) {
  for (NodeId id : net.topo_order()) {
    const Sop& func = net.func(id);
    if (func.num_cubes() == 0) continue;
    Sop simplified = espresso_lite(func, Sop::zero(func.num_vars()));
    if (simplified.num_literals() <= func.num_literals()) {
      const std::span<const NodeId> fanins = net.fanins(id);
      net.set_function(id, {fanins.begin(), fanins.end()},
                       std::move(simplified));
    }
  }
  net.sweep();
}

}  // namespace rarsub
