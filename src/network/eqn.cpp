#include "network/eqn.hpp"

#include <ostream>
#include <sstream>

#include "sop/factor.hpp"

namespace rarsub {

void write_eqn(const Network& net, std::ostream& out) {
  out << "INORDER =";
  for (NodeId pi : net.pis()) out << " " << net.node(pi).name;
  out << ";\nOUTORDER =";
  for (const Output& o : net.pos()) out << " " << o.name;
  out << ";\n";

  for (NodeId id : net.topo_order()) {
    const Node& nd = net.node(id);
    std::vector<std::string> names;
    names.reserve(nd.fanins.size());
    for (NodeId f : nd.fanins) names.emplace_back(net.node(f).name);
    const auto tree = quick_factor(nd.func);
    out << nd.name << " = " << factor_to_string(*tree, names) << ";\n";
  }
  // Output aliases (PO name differing from its driver node).
  for (const Output& o : net.pos())
    if (net.node(o.driver).name != o.name)
      out << o.name << " = " << net.node(o.driver).name << ";\n";
}

std::string write_eqn_string(const Network& net) {
  std::ostringstream ss;
  write_eqn(net, ss);
  return ss.str();
}

}  // namespace rarsub
