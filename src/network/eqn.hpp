#pragma once
// Equation-format writer (SIS `write_eqn` style): every internal node
// printed as a factored expression. Human-oriented output used by the CLI
// and the examples; parsing is not supported (BLIF/PLA are the machine
// formats).

#include <iosfwd>
#include <string>

#include "network/network.hpp"

namespace rarsub {

/// Print the network as factored equations, PIs first:
///   INORDER = a b c;
///   OUTORDER = f;
///   g = a*b + c';
void write_eqn(const Network& net, std::ostream& out);
std::string write_eqn_string(const Network& net);

}  // namespace rarsub
