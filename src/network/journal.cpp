#include "network/journal.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace rarsub {

const char* net_event_kind_name(NetEventKind k) {
  switch (k) {
    case NetEventKind::NodeAdded: return "node_added";
    case NetEventKind::FunctionChanged: return "function_changed";
    case NetEventKind::NodeDied: return "node_died";
    case NetEventKind::OutputChanged: return "output_changed";
  }
  return "?";
}

std::uint64_t MutationJournal::record(NetEventKind kind, NodeId node) {
  events_.push_back(NetEvent{++last_seq_, kind, node});
  OBS_COUNT("journal.events", 1);
  return last_seq_;
}

void MutationJournal::trim_to(std::uint64_t keep_after) {
  keep_after = std::min(keep_after, last_seq_);
  if (keep_after <= trimmed_) return;
  const std::size_t drop = static_cast<std::size_t>(keep_after - trimmed_);
  events_.erase(events_.begin(), events_.begin() + static_cast<std::ptrdiff_t>(drop));
  trimmed_ = keep_after;
}

}  // namespace rarsub
