#pragma once
// Mutation journal: the single typed record of every Network mutation.
//
// Every structural change — node creation, function replacement, node
// death, primary-output addition — appends one event with a monotone
// sequence number. Derived state that used to invalidate itself through
// ad-hoc mechanisms (Node::version, the global mutations() stamp, the
// ledger's NodeUpdate replay events) is now driven from this one stream:
// a consumer holds a cursor (the last sequence number it has consumed)
// and asks the journal for everything newer. Consumers never register
// themselves; a cursor is just an integer, so any number of subscribers
// can replay the same suffix independently.

#include <cstdint>
#include <vector>

namespace rarsub {

using NodeId = int;
inline constexpr NodeId kNoNode = -1;

enum class NetEventKind : std::uint8_t {
  NodeAdded,        ///< add_pi / add_node created `node`
  FunctionChanged,  ///< set_function replaced `node`'s fanins/function
  NodeDied,         ///< sweep / collapse_into_fanouts killed `node`
  OutputChanged,    ///< add_po made `node` (the driver) observable
};

/// Human-readable event-kind name (tests, tracing).
const char* net_event_kind_name(NetEventKind k);

struct NetEvent {
  std::uint64_t seq = 0;  ///< 1-based, strictly increasing
  NetEventKind kind = NetEventKind::NodeAdded;
  NodeId node = -1;  ///< subject node (the PO driver for OutputChanged)
};

class MutationJournal {
 public:
  /// Append an event; returns its sequence number.
  std::uint64_t record(NetEventKind kind, NodeId node);

  /// Sequence number of the newest event (0 when nothing was ever
  /// recorded). A consumer whose cursor equals seq() is up to date.
  std::uint64_t seq() const { return last_seq_; }

  /// Oldest event still retained (0 when the journal is empty or fully
  /// trimmed past its own tail).
  std::uint64_t first_retained() const {
    return events_.empty() ? 0 : events_.front().seq;
  }

  std::size_t size() const { return events_.size(); }

  /// Visit every event with sequence number in (cursor, seq()], oldest
  /// first. Returns false — visiting nothing — when events after `cursor`
  /// have been trimmed away; the consumer must then resync from scratch
  /// and restart its cursor at seq().
  template <class Fn>
  bool visit_since(std::uint64_t cursor, Fn&& fn) const {
    if (cursor >= last_seq_) return true;  // nothing new
    if (cursor < trimmed_) return false;   // suffix no longer available
    const std::size_t start = static_cast<std::size_t>(cursor - trimmed_);
    for (std::size_t i = start; i < events_.size(); ++i) fn(events_[i]);
    return true;
  }

  /// Drop events with seq <= keep_after. Consumers whose cursor is older
  /// will be told to resync by visit_since().
  void trim_to(std::uint64_t keep_after);

 private:
  std::vector<NetEvent> events_;
  std::uint64_t last_seq_ = 0;
  std::uint64_t trimmed_ = 0;  ///< highest sequence number dropped by trim_to
};

}  // namespace rarsub
