#include "network/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/ledger.hpp"
#include "sop/factor.hpp"

namespace rarsub {

NodeId Network::add_pi(std::string_view name) {
  const NodeId id = table_.create(name, /*is_pi=*/true);
  pis_.push_back(id);
  record_mutation(NetEventKind::NodeAdded, id, nullptr);
  return id;
}

void Network::record_mutation(NetEventKind kind, NodeId id, const char* reason,
                              std::int64_t lits_before) {
  if (kind == NetEventKind::FunctionChanged || kind == NetEventKind::NodeDied)
    table_.bump_version(id);
  journal_.record(kind, id);
  // The ledger's NodeUpdate replay contract covers internal nodes only;
  // PIs carry no cover and POs are observability, not function.
  if (kind == NetEventKind::OutputChanged || table_.is_pi(id)) return;
  if (!obs::ledger_active()) return;
  std::int64_t after = 0;
  switch (kind) {
    case NetEventKind::NodeAdded:
      after = factored_literal_count(table_.func(id));
      lits_before = 0;
      break;
    case NetEventKind::FunctionChanged:
      after = factored_literal_count(table_.func(id));
      break;
    case NetEventKind::NodeDied:
      // Dead nodes keep their last cover; the replay value is 0.
      lits_before = factored_literal_count(table_.func(id));
      break;
    case NetEventKind::OutputChanged:
      break;  // unreachable
  }
  OBS_EVENT(.kind = obs::EventKind::NodeUpdate, .node = id, .a = after,
            .b = lits_before, .reason = reason);
}

namespace {

// Every algorithm in the library assumes fanin lists are duplicate-free.
// Callers occasionally produce duplicates (e.g. an adder slice whose sum
// and xor signals coincide); canonicalize by merging the variables —
// remap() intersects clashing literal polarities, which is exactly the
// semantics of two cube positions naming the same signal.
void dedup_fanins(std::vector<NodeId>& fanins, Sop& func) {
  std::vector<NodeId> unique;
  std::vector<int> var_map(fanins.size(), 0);
  bool had_dup = false;
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    auto it = std::find(unique.begin(), unique.end(), fanins[i]);
    if (it == unique.end()) {
      unique.push_back(fanins[i]);
      var_map[i] = static_cast<int>(unique.size() - 1);
    } else {
      var_map[i] = static_cast<int>(it - unique.begin());
      had_dup = true;
    }
  }
  if (!had_dup) return;
  func = func.remap(static_cast<int>(unique.size()), var_map);
  func.scc_minimize();
  fanins = std::move(unique);
}

}  // namespace

NodeId Network::add_node(std::string_view name, std::vector<NodeId> fanins,
                         Sop func) {
  assert(func.num_vars() == static_cast<int>(fanins.size()));
  dedup_fanins(fanins, func);
  const NodeId id = table_.create(name, /*is_pi=*/false);
  table_.set_fanins(id, fanins);
  table_.set_func(id, std::move(func));
  add_fanout_refs(id);
  record_mutation(NetEventKind::NodeAdded, id, "new");
  return id;
}

void Network::add_po(const std::string& name, NodeId driver) {
  pos_.push_back(Output{name, driver});
  record_mutation(NetEventKind::OutputChanged, driver, nullptr);
}

void Network::add_fanout_refs(NodeId id) {
  // fanins(id) is a span into the pool; push_fanout may grow the pool and
  // invalidate it, so walk by index through the re-fetched span.
  const std::size_t n = table_.fanins(id).size();
  for (std::size_t i = 0; i < n; ++i)
    table_.push_fanout(table_.fanins(id)[i], id);
}

void Network::remove_fanout_refs(NodeId id) {
  // erase_fanout never reallocates the pool, but re-fetch per step anyway:
  // this path is cold and the symmetry with add_fanout_refs is worth it.
  const std::size_t n = table_.fanins(id).size();
  for (std::size_t i = 0; i < n; ++i)
    table_.erase_fanout(table_.fanins(id)[i], id);
}

void Network::set_function(NodeId id, std::vector<NodeId> fanins, Sop func) {
  assert(!table_.is_pi(id));
  assert(func.num_vars() == static_cast<int>(fanins.size()));
  // Flight recorder: factoring the old cover is only worth paying for
  // while a ledger session is recording.
  const std::int64_t lits_before =
      obs::ledger_active() ? factored_literal_count(table_.func(id)) : 0;
  dedup_fanins(fanins, func);
  remove_fanout_refs(id);
  table_.set_fanins(id, fanins);
  table_.set_func(id, std::move(func));
  add_fanout_refs(id);
  record_mutation(NetEventKind::FunctionChanged, id, nullptr, lits_before);
}

int Network::num_po_refs(NodeId id) const {
  int n = 0;
  for (const Output& o : pos_)
    if (o.driver == id) ++n;
  return n;
}

int Network::fanout_refs(NodeId id) const {
  return static_cast<int>(table_.fanouts(id).size()) + num_po_refs(id);
}

const std::vector<NodeId>& Network::topo_cached() const {
  std::lock_guard<std::mutex> lock(topo_.mu);
  const std::uint64_t now = journal_.seq();
  if (topo_.stamp == now) return topo_.order;
  std::vector<NodeId>& order = topo_.order;
  order.clear();
  const std::size_t n = static_cast<std::size_t>(table_.size());
  std::vector<int> state(n, 0);  // 0 new, 1 visiting, 2 done
  std::vector<NodeId> stack;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId root = static_cast<NodeId>(i);
    if (!table_.alive(root) || table_.is_pi(root) || state[i] == 2) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId nd = stack.back();
      if (state[static_cast<std::size_t>(nd)] == 2) {
        stack.pop_back();
        continue;
      }
      if (state[static_cast<std::size_t>(nd)] == 1) {
        state[static_cast<std::size_t>(nd)] = 2;
        order.push_back(nd);
        stack.pop_back();
        continue;
      }
      state[static_cast<std::size_t>(nd)] = 1;
      for (NodeId f : table_.fanins(nd)) {
        const auto fi = static_cast<std::size_t>(f);
        if (!table_.is_pi(f) && table_.alive(f) && state[fi] == 0)
          stack.push_back(f);
        assert(state[fi] != 1 && "cycle in network");
      }
    }
  }
  topo_.stamp = now;
  return topo_.order;
}

std::vector<NodeId> Network::topo_order() const { return topo_cached(); }

std::span<const NodeId> Network::topo_view() const {
  const std::vector<NodeId>& order = topo_cached();
  return {order.data(), order.size()};
}

bool Network::depends_on(NodeId a, NodeId b) const {
  if (a == b) return true;
  std::vector<bool> seen(static_cast<std::size_t>(table_.size()), false);
  std::vector<NodeId> stack{a};
  seen[static_cast<std::size_t>(a)] = true;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (NodeId f : table_.fanins(n)) {
      if (f == b) return true;
      if (!seen[static_cast<std::size_t>(f)]) {
        seen[static_cast<std::size_t>(f)] = true;
        stack.push_back(f);
      }
    }
  }
  return false;
}

int Network::sop_literals() const {
  int n = 0;
  for (NodeId id = 0; id < table_.size(); ++id)
    if (table_.alive(id) && !table_.is_pi(id))
      n += table_.func(id).num_literals();
  return n;
}

int Network::factored_literals() const {
  int n = 0;
  for (NodeId id = 0; id < table_.size(); ++id)
    if (table_.alive(id) && !table_.is_pi(id))
      n += factored_literal_count(table_.func(id));
  return n;
}

void Network::sweep() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = 0; id < table_.size(); ++id) {
      if (!table_.alive(id) || table_.is_pi(id)) continue;

      // Dead node removal.
      if (fanout_refs(id) == 0) {
        remove_fanout_refs(id);
        table_.kill(id);
        record_mutation(NetEventKind::NodeDied, id, "sweep");
        changed = true;
        continue;
      }

      // Drop fanins the function does not actually depend on.
      const Sop& f = table_.func(id);
      const std::vector<int> supp = f.support();
      if (static_cast<int>(supp.size()) != f.num_vars()) {
        const std::span<const NodeId> fanins = table_.fanins(id);
        std::vector<NodeId> new_fanins;
        std::vector<int> var_map(static_cast<std::size_t>(f.num_vars()), -1);
        for (std::size_t k = 0; k < supp.size(); ++k) {
          var_map[static_cast<std::size_t>(supp[k])] = static_cast<int>(k);
          new_fanins.push_back(fanins[static_cast<std::size_t>(supp[k])]);
        }
        // remap wants a full map; unused vars can map anywhere (no literal).
        for (auto& m : var_map)
          if (m < 0) m = 0;
        Sop nf(0);
        if (!supp.empty()) {
          nf = f.remap(static_cast<int>(supp.size()), var_map);
        } else {
          // Constant function.
          nf = f.is_zero() ? Sop::zero(0) : Sop::one(0);
        }
        set_function(id, std::move(new_fanins), std::move(nf));
        changed = true;
        continue;
      }

      // Collapse identity / inverter nodes into fanouts.
      if (f.num_vars() == 1 && f.num_cubes() == 1 &&
          f.cube(0).num_literals() == 1 && num_po_refs(id) == 0 &&
          !table_.fanouts(id).empty()) {
        if (collapse_into_fanouts(id)) {
          changed = true;
          continue;
        }
      }

      // Propagate constants into fanouts.
      if (table_.fanins(id).empty() && num_po_refs(id) == 0 &&
          !table_.fanouts(id).empty()) {
        if (collapse_into_fanouts(id)) {
          changed = true;
          continue;
        }
      }
    }
  }
}

std::optional<ComposedNode> Network::compose_preview(NodeId outer, NodeId inner,
                                                     int cube_limit) const {
  const std::span<const NodeId> out_fanins = table_.fanins(outer);
  const Sop& out_func = table_.func(outer);
  const std::span<const NodeId> in_fanins = table_.fanins(inner);
  const Sop& in_func = table_.func(inner);
  assert(!table_.is_pi(inner));

  auto it = std::find(out_fanins.begin(), out_fanins.end(), inner);
  if (it == out_fanins.end())  // nothing to do
    return ComposedNode{{out_fanins.begin(), out_fanins.end()}, out_func};
  const int v = static_cast<int>(it - out_fanins.begin());

  // New fanin list: outer's fanins minus `inner`, plus inner's fanins.
  std::vector<NodeId> new_fanins;
  std::vector<int> outer_map(out_fanins.size(), -1);
  for (std::size_t i = 0; i < out_fanins.size(); ++i) {
    if (static_cast<int>(i) == v) continue;
    new_fanins.push_back(out_fanins[i]);
    outer_map[i] = static_cast<int>(new_fanins.size() - 1);
  }
  std::vector<int> inner_map(in_fanins.size(), -1);
  for (std::size_t i = 0; i < in_fanins.size(); ++i) {
    auto jt = std::find(new_fanins.begin(), new_fanins.end(), in_fanins[i]);
    if (jt == new_fanins.end()) {
      new_fanins.push_back(in_fanins[i]);
      inner_map[i] = static_cast<int>(new_fanins.size() - 1);
    } else {
      inner_map[i] = static_cast<int>(jt - new_fanins.begin());
    }
  }
  const int nv = static_cast<int>(new_fanins.size());

  const Sop g = in_func.remap(nv, inner_map);
  const Sop gbar = in_func.complement().remap(nv, inner_map);

  Sop result(nv);
  for (const Cube& c : out_func.cubes()) {
    const Lit l = c.lit(v);
    Cube base(nv);
    for (std::size_t i = 0; i < out_fanins.size(); ++i) {
      if (static_cast<int>(i) == v) continue;
      const Lit li = c.lit(static_cast<int>(i));
      if (li != Lit::Absent) base.set_lit(outer_map[i], li);
    }
    if (l == Lit::Absent) {
      result.add_cube(std::move(base));
    } else {
      const Sop& sub = (l == Lit::Pos) ? g : gbar;
      for (const Cube& sc : sub.cubes()) {
        Cube p = base.intersect(sc);
        if (!p.is_empty()) result.add_cube(std::move(p));
      }
    }
    if (result.num_cubes() > cube_limit) return std::nullopt;
  }
  result.scc_minimize();
  return ComposedNode{std::move(new_fanins), std::move(result)};
}

bool Network::compose(NodeId outer, NodeId inner, int cube_limit) {
  std::optional<ComposedNode> preview = compose_preview(outer, inner, cube_limit);
  if (!preview) return false;
  set_function(outer, std::move(preview->fanins), std::move(preview->func));
  return true;
}

bool Network::collapse_into_fanouts(NodeId id, int cube_limit) {
  assert(!table_.is_pi(id));
  assert(num_po_refs(id) == 0);
  // Copy: compose() edits fanout lists while we iterate.
  const std::span<const NodeId> fo_span = table_.fanouts(id);
  const std::vector<NodeId> fanouts(fo_span.begin(), fo_span.end());
  // Dry-run feasibility first so we never leave a half-collapsed network.
  const int own_cubes = table_.func(id).num_cubes();
  const int own_lits = table_.func(id).num_literals();
  for (NodeId fo : fanouts) {
    const long pessimistic = static_cast<long>(table_.func(fo).num_cubes()) *
                             std::max(1, own_cubes + own_lits);
    if (pessimistic > static_cast<long>(cube_limit) * 4) return false;
  }
  for (NodeId fo : fanouts) {
    if (!compose(fo, id, cube_limit)) return false;
  }
  if (fanout_refs(id) == 0) {
    remove_fanout_refs(id);
    table_.kill(id);
    record_mutation(NetEventKind::NodeDied, id, "collapse");
  }
  return true;
}

bool Network::check() const {
  if (!table_.check_integrity()) return false;
  for (NodeId id = 0; id < table_.size(); ++id) {
    if (!table_.alive(id)) continue;
    const std::span<const NodeId> fanins = table_.fanins(id);
    if (!table_.is_pi(id) &&
        table_.func(id).num_vars() != static_cast<int>(fanins.size()))
      return false;
    for (std::size_t a = 0; a < fanins.size(); ++a)
      for (std::size_t b = a + 1; b < fanins.size(); ++b)
        if (fanins[a] == fanins[b]) return false;  // duplicate fanin
    for (NodeId f : fanins) {
      if (!table_.alive(f)) return false;
      const std::span<const NodeId> fo = table_.fanouts(f);
      if (std::find(fo.begin(), fo.end(), id) == fo.end()) return false;
    }
  }
  for (const Output& o : pos_)
    if (o.driver == kNoNode || !table_.alive(o.driver)) return false;
  (void)topo_order();  // asserts on cycles in debug builds
  return true;
}

std::vector<std::string> Network::outputs_affected_by(
    const std::vector<NodeId>& nodes) const {
  std::vector<bool> reach(static_cast<std::size_t>(table_.size()), false);
  std::vector<NodeId> stack;
  for (NodeId id : nodes) {
    if (id < 0 || id >= num_nodes() || reach[static_cast<std::size_t>(id)])
      continue;
    reach[static_cast<std::size_t>(id)] = true;
    stack.push_back(id);
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId fo : table_.fanouts(id))
      if (!reach[static_cast<std::size_t>(fo)]) {
        reach[static_cast<std::size_t>(fo)] = true;
        stack.push_back(fo);
      }
  }
  std::vector<std::string> out;
  for (const Output& o : pos_)
    if (o.driver != kNoNode && reach[static_cast<std::size_t>(o.driver)])
      out.push_back(o.name);
  return out;
}

std::string Network::fresh_name(const std::string& prefix) {
  for (;;) {
    std::string candidate = prefix + std::to_string(name_counter_++);
    if (find_node(candidate) == kNoNode) return candidate;
  }
}

}  // namespace rarsub
