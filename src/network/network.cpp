#include "network/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/ledger.hpp"
#include "sop/factor.hpp"

namespace rarsub {

NodeId Network::add_pi(const std::string& name) {
  Node n;
  n.name = name;
  n.is_pi = true;
  nodes_.push_back(std::move(n));
  const NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  pis_.push_back(id);
  record_mutation(NetEventKind::NodeAdded, id, nullptr);
  return id;
}

void Network::record_mutation(NetEventKind kind, NodeId id, const char* reason,
                              std::int64_t lits_before) {
  if (kind == NetEventKind::FunctionChanged || kind == NetEventKind::NodeDied)
    node(id).version++;
  journal_.record(kind, id);
  // The ledger's NodeUpdate replay contract covers internal nodes only;
  // PIs carry no cover and POs are observability, not function.
  if (kind == NetEventKind::OutputChanged || node(id).is_pi) return;
  if (!obs::ledger_active()) return;
  std::int64_t after = 0;
  switch (kind) {
    case NetEventKind::NodeAdded:
      after = factored_literal_count(node(id).func);
      lits_before = 0;
      break;
    case NetEventKind::FunctionChanged:
      after = factored_literal_count(node(id).func);
      break;
    case NetEventKind::NodeDied:
      // Dead nodes keep their last cover; the replay value is 0.
      lits_before = factored_literal_count(node(id).func);
      break;
    case NetEventKind::OutputChanged:
      break;  // unreachable
  }
  OBS_EVENT(.kind = obs::EventKind::NodeUpdate, .node = id, .a = after,
            .b = lits_before, .reason = reason);
}

namespace {

// Every algorithm in the library assumes fanin lists are duplicate-free.
// Callers occasionally produce duplicates (e.g. an adder slice whose sum
// and xor signals coincide); canonicalize by merging the variables —
// remap() intersects clashing literal polarities, which is exactly the
// semantics of two cube positions naming the same signal.
void dedup_fanins(std::vector<NodeId>& fanins, Sop& func) {
  std::vector<NodeId> unique;
  std::vector<int> var_map(fanins.size(), 0);
  bool had_dup = false;
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    auto it = std::find(unique.begin(), unique.end(), fanins[i]);
    if (it == unique.end()) {
      unique.push_back(fanins[i]);
      var_map[i] = static_cast<int>(unique.size() - 1);
    } else {
      var_map[i] = static_cast<int>(it - unique.begin());
      had_dup = true;
    }
  }
  if (!had_dup) return;
  func = func.remap(static_cast<int>(unique.size()), var_map);
  func.scc_minimize();
  fanins = std::move(unique);
}

}  // namespace

NodeId Network::add_node(const std::string& name, std::vector<NodeId> fanins,
                         Sop func) {
  assert(func.num_vars() == static_cast<int>(fanins.size()));
  dedup_fanins(fanins, func);
  Node n;
  n.name = name;
  n.fanins = std::move(fanins);
  n.func = std::move(func);
  nodes_.push_back(std::move(n));
  const NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  add_fanout_refs(id);
  record_mutation(NetEventKind::NodeAdded, id, "new");
  return id;
}

void Network::add_po(const std::string& name, NodeId driver) {
  pos_.push_back(Output{name, driver});
  record_mutation(NetEventKind::OutputChanged, driver, nullptr);
}

NodeId Network::find_node(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].alive && nodes_[i].name == name) return static_cast<NodeId>(i);
  return kNoNode;
}

void Network::add_fanout_refs(NodeId id) {
  for (NodeId f : nodes_[static_cast<std::size_t>(id)].fanins)
    nodes_[static_cast<std::size_t>(f)].fanouts.push_back(id);
}

void Network::remove_fanout_refs(NodeId id) {
  for (NodeId f : nodes_[static_cast<std::size_t>(id)].fanins) {
    auto& fo = nodes_[static_cast<std::size_t>(f)].fanouts;
    // A node may appear multiple times in a fanin list only once in ours
    // (we keep fanin lists duplicate-free), so erase the single entry.
    auto it = std::find(fo.begin(), fo.end(), id);
    if (it != fo.end()) fo.erase(it);
  }
}

void Network::set_function(NodeId id, std::vector<NodeId> fanins, Sop func) {
  assert(!node(id).is_pi);
  assert(func.num_vars() == static_cast<int>(fanins.size()));
  // Flight recorder: factoring the old cover is only worth paying for
  // while a ledger session is recording.
  const std::int64_t lits_before =
      obs::ledger_active() ? factored_literal_count(node(id).func) : 0;
  dedup_fanins(fanins, func);
  remove_fanout_refs(id);
  node(id).fanins = std::move(fanins);
  node(id).func = std::move(func);
  add_fanout_refs(id);
  record_mutation(NetEventKind::FunctionChanged, id, nullptr, lits_before);
}

int Network::num_po_refs(NodeId id) const {
  int n = 0;
  for (const Output& o : pos_)
    if (o.driver == id) ++n;
  return n;
}

int Network::fanout_refs(NodeId id) const {
  return static_cast<int>(node(id).fanouts.size()) + num_po_refs(id);
}

std::vector<NodeId> Network::topo_order() const {
  std::vector<NodeId> order;
  std::vector<int> state(nodes_.size(), 0);  // 0 new, 1 visiting, 2 done
  std::vector<NodeId> stack;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].alive || nodes_[i].is_pi || state[i] == 2) continue;
    stack.push_back(static_cast<NodeId>(i));
    while (!stack.empty()) {
      const NodeId n = stack.back();
      if (state[static_cast<std::size_t>(n)] == 2) {
        stack.pop_back();
        continue;
      }
      if (state[static_cast<std::size_t>(n)] == 1) {
        state[static_cast<std::size_t>(n)] = 2;
        order.push_back(n);
        stack.pop_back();
        continue;
      }
      state[static_cast<std::size_t>(n)] = 1;
      for (NodeId f : node(n).fanins) {
        const auto fi = static_cast<std::size_t>(f);
        if (!nodes_[fi].is_pi && nodes_[fi].alive && state[fi] == 0)
          stack.push_back(f);
        assert(state[fi] != 1 && "cycle in network");
      }
    }
  }
  return order;
}

bool Network::depends_on(NodeId a, NodeId b) const {
  if (a == b) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack{a};
  seen[static_cast<std::size_t>(a)] = true;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (NodeId f : node(n).fanins) {
      if (f == b) return true;
      if (!seen[static_cast<std::size_t>(f)]) {
        seen[static_cast<std::size_t>(f)] = true;
        stack.push_back(f);
      }
    }
  }
  return false;
}

int Network::sop_literals() const {
  int n = 0;
  for (const Node& nd : nodes_)
    if (nd.alive && !nd.is_pi) n += nd.func.num_literals();
  return n;
}

int Network::factored_literals() const {
  int n = 0;
  for (const Node& nd : nodes_)
    if (nd.alive && !nd.is_pi) n += factored_literal_count(nd.func);
  return n;
}

void Network::sweep() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& nd = nodes_[i];
      const NodeId id = static_cast<NodeId>(i);
      if (!nd.alive || nd.is_pi) continue;

      // Dead node removal.
      if (fanout_refs(id) == 0) {
        remove_fanout_refs(id);
        nd.alive = false;
        record_mutation(NetEventKind::NodeDied, id, "sweep");
        changed = true;
        continue;
      }

      // Drop fanins the function does not actually depend on.
      const std::vector<int> supp = nd.func.support();
      if (static_cast<int>(supp.size()) != nd.func.num_vars()) {
        std::vector<NodeId> new_fanins;
        std::vector<int> var_map(static_cast<std::size_t>(nd.func.num_vars()), -1);
        for (std::size_t k = 0; k < supp.size(); ++k) {
          var_map[static_cast<std::size_t>(supp[k])] = static_cast<int>(k);
          new_fanins.push_back(nd.fanins[static_cast<std::size_t>(supp[k])]);
        }
        // remap wants a full map; unused vars can map anywhere (no literal).
        for (auto& m : var_map)
          if (m < 0) m = 0;
        Sop nf = supp.empty() ? Sop(0) : nd.func;
        if (!supp.empty()) nf = nd.func.remap(static_cast<int>(supp.size()), var_map);
        if (supp.empty()) {
          // Constant function.
          nf = nd.func.is_zero() ? Sop::zero(0) : Sop::one(0);
        }
        set_function(id, std::move(new_fanins), std::move(nf));
        changed = true;
        continue;
      }

      // Collapse identity / inverter nodes into fanouts.
      if (nd.fanins.size() == 1 && nd.func.num_cubes() == 1 &&
          nd.func.cube(0).num_literals() == 1 && num_po_refs(id) == 0 &&
          !nd.fanouts.empty()) {
        if (collapse_into_fanouts(id)) {
          changed = true;
          continue;
        }
      }

      // Propagate constants into fanouts.
      if (nd.fanins.empty() && num_po_refs(id) == 0 && !nd.fanouts.empty()) {
        if (collapse_into_fanouts(id)) {
          changed = true;
          continue;
        }
      }
    }
  }
}

std::optional<ComposedNode> Network::compose_preview(NodeId outer, NodeId inner,
                                                     int cube_limit) const {
  const Node& out = node(outer);
  const Node& in = node(inner);
  assert(!in.is_pi);

  auto it = std::find(out.fanins.begin(), out.fanins.end(), inner);
  if (it == out.fanins.end())
    return ComposedNode{out.fanins, out.func};  // nothing to do
  const int v = static_cast<int>(it - out.fanins.begin());

  // New fanin list: outer's fanins minus `inner`, plus inner's fanins.
  std::vector<NodeId> new_fanins;
  std::vector<int> outer_map(out.fanins.size(), -1);
  for (std::size_t i = 0; i < out.fanins.size(); ++i) {
    if (static_cast<int>(i) == v) continue;
    new_fanins.push_back(out.fanins[i]);
    outer_map[i] = static_cast<int>(new_fanins.size() - 1);
  }
  std::vector<int> inner_map(in.fanins.size(), -1);
  for (std::size_t i = 0; i < in.fanins.size(); ++i) {
    auto jt = std::find(new_fanins.begin(), new_fanins.end(), in.fanins[i]);
    if (jt == new_fanins.end()) {
      new_fanins.push_back(in.fanins[i]);
      inner_map[i] = static_cast<int>(new_fanins.size() - 1);
    } else {
      inner_map[i] = static_cast<int>(jt - new_fanins.begin());
    }
  }
  const int nv = static_cast<int>(new_fanins.size());

  const Sop g = in.func.remap(nv, inner_map);
  const Sop gbar = in.func.complement().remap(nv, inner_map);

  Sop result(nv);
  for (const Cube& c : out.func.cubes()) {
    const Lit l = c.lit(v);
    Cube base(nv);
    for (std::size_t i = 0; i < out.fanins.size(); ++i) {
      if (static_cast<int>(i) == v) continue;
      const Lit li = c.lit(static_cast<int>(i));
      if (li != Lit::Absent) base.set_lit(outer_map[i], li);
    }
    if (l == Lit::Absent) {
      result.add_cube(std::move(base));
    } else {
      const Sop& sub = (l == Lit::Pos) ? g : gbar;
      for (const Cube& sc : sub.cubes()) {
        Cube p = base.intersect(sc);
        if (!p.is_empty()) result.add_cube(std::move(p));
      }
    }
    if (result.num_cubes() > cube_limit) return std::nullopt;
  }
  result.scc_minimize();
  return ComposedNode{std::move(new_fanins), std::move(result)};
}

bool Network::compose(NodeId outer, NodeId inner, int cube_limit) {
  std::optional<ComposedNode> preview = compose_preview(outer, inner, cube_limit);
  if (!preview) return false;
  set_function(outer, std::move(preview->fanins), std::move(preview->func));
  return true;
}

bool Network::collapse_into_fanouts(NodeId id, int cube_limit) {
  assert(!node(id).is_pi);
  assert(num_po_refs(id) == 0);
  // Copy: compose() edits fanout lists while we iterate.
  const std::vector<NodeId> fanouts = node(id).fanouts;
  // Dry-run feasibility first so we never leave a half-collapsed network.
  for (NodeId fo : fanouts) {
    const Node& out = node(fo);
    const long pessimistic = static_cast<long>(out.func.num_cubes()) *
                             std::max(1, node(id).func.num_cubes() +
                                             node(id).func.num_literals());
    if (pessimistic > static_cast<long>(cube_limit) * 4) return false;
  }
  for (NodeId fo : fanouts) {
    if (!compose(fo, id, cube_limit)) return false;
  }
  if (fanout_refs(id) == 0) {
    remove_fanout_refs(id);
    node(id).alive = false;
    record_mutation(NetEventKind::NodeDied, id, "collapse");
  }
  return true;
}

bool Network::check() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& nd = nodes_[i];
    if (!nd.alive) continue;
    if (!nd.is_pi &&
        nd.func.num_vars() != static_cast<int>(nd.fanins.size()))
      return false;
    for (std::size_t a = 0; a < nd.fanins.size(); ++a)
      for (std::size_t b = a + 1; b < nd.fanins.size(); ++b)
        if (nd.fanins[a] == nd.fanins[b]) return false;  // duplicate fanin
    for (NodeId f : nd.fanins) {
      const Node& fn = nodes_[static_cast<std::size_t>(f)];
      if (!fn.alive) return false;
      if (std::find(fn.fanouts.begin(), fn.fanouts.end(),
                    static_cast<NodeId>(i)) == fn.fanouts.end())
        return false;
    }
  }
  for (const Output& o : pos_)
    if (o.driver == kNoNode || !nodes_[static_cast<std::size_t>(o.driver)].alive)
      return false;
  (void)topo_order();  // asserts on cycles in debug builds
  return true;
}

std::vector<std::string> Network::outputs_affected_by(
    const std::vector<NodeId>& nodes) const {
  std::vector<bool> reach(nodes_.size(), false);
  std::vector<NodeId> stack;
  for (NodeId id : nodes) {
    if (id < 0 || id >= num_nodes() || reach[static_cast<std::size_t>(id)])
      continue;
    reach[static_cast<std::size_t>(id)] = true;
    stack.push_back(id);
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId fo : nodes_[static_cast<std::size_t>(id)].fanouts)
      if (!reach[static_cast<std::size_t>(fo)]) {
        reach[static_cast<std::size_t>(fo)] = true;
        stack.push_back(fo);
      }
  }
  std::vector<std::string> out;
  for (const Output& o : pos_)
    if (o.driver != kNoNode && reach[static_cast<std::size_t>(o.driver)])
      out.push_back(o.name);
  return out;
}

std::string Network::fresh_name(const std::string& prefix) {
  for (;;) {
    std::string candidate = prefix + std::to_string(name_counter_++);
    if (find_node(candidate) == kNoNode) return candidate;
  }
}

}  // namespace rarsub
