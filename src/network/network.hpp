#pragma once
// Multi-level Boolean network: a DAG of nodes, each carrying a
// sum-of-products function over its immediate fanins (the SIS network
// model). This is the object the optimization commands (eliminate,
// simplify, gcx, gkx, resub, and the paper's RAR-based substitution)
// transform.
//
// Storage is the flat struct-of-arrays NodeTable (network/nodetable.hpp):
// packed u32 info words, adjacency as offset+count ranges into one shared
// index pool with freelist recycling, interned names, and a flat Sop
// column. Node is a *view* — spans into the table, valid until the next
// structural mutation (any set_function / add_node / sweep may grow or
// recycle the shared pool, so do not hold a view across mutations; the
// same rule the old vector-of-structs layout already imposed for node
// references across add_node).

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "network/journal.hpp"
#include "network/nodetable.hpp"
#include "sop/sop.hpp"

namespace rarsub {

/// Read-only view of one node: flat-table spans behind the legacy field
/// names, so `net.node(id).fanins` keeps reading naturally at call sites.
/// Bind as `const Node nd = net.node(id)` (or `const Node&`, which
/// lifetime-extends the temporary).
struct Node {
  std::string_view name;
  bool is_pi = false;
  bool alive = false;
  int version = 0;
  /// Signals feeding this node; variable i of `func` refers to fanins[i].
  std::span<const NodeId> fanins;
  /// Local function over the fanins (on-set cover). Zero cubes = constant 0;
  /// a universe cube = constant 1. Unused for PIs.
  const Sop& func;
  /// Derived: nodes that list this node among their fanins.
  std::span<const NodeId> fanouts;
};

struct Output {
  std::string name;
  NodeId driver = kNoNode;
};

/// Result of a compose preview: the fanin list and function a node would
/// have after absorbing one of its fanin nodes.
struct ComposedNode {
  std::vector<NodeId> fanins;
  Sop func;
};

class Network {
 public:
  Network() = default;
  explicit Network(std::string model_name) : name_(std::move(model_name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  NodeId add_pi(std::string_view name);
  NodeId add_node(std::string_view name, std::vector<NodeId> fanins, Sop func);
  void add_po(const std::string& name, NodeId driver);

  int num_nodes() const { return table_.size(); }

  /// Composite view of one node (see struct Node). Prefer the direct
  /// accessors below in hot loops — they skip assembling the unused
  /// fields.
  Node node(NodeId id) const {
    return Node{table_.name(id),    table_.is_pi(id),
                table_.alive(id),   table_.version(id),
                table_.fanins(id),  table_.func(id),
                table_.fanouts(id)};
  }

  bool is_pi(NodeId id) const { return table_.is_pi(id); }
  bool alive(NodeId id) const { return table_.alive(id); }
  int version(NodeId id) const { return table_.version(id); }
  std::string_view node_name(NodeId id) const { return table_.name(id); }
  std::span<const NodeId> fanins(NodeId id) const { return table_.fanins(id); }
  std::span<const NodeId> fanouts(NodeId id) const {
    return table_.fanouts(id);
  }
  const Sop& func(NodeId id) const { return table_.func(id); }

  const std::vector<NodeId>& pis() const { return pis_; }
  const std::vector<Output>& pos() const { return pos_; }
  std::vector<Output>& pos() { return pos_; }

  /// First alive node with this name (interned-name hash lookup).
  NodeId find_node(std::string_view name) const { return table_.find(name); }

  /// Replace the function (and fanin list) of an internal node, keeping
  /// fanout bookkeeping consistent. The new fanins must not create a cycle.
  void set_function(NodeId id, std::vector<NodeId> fanins, Sop func);

  /// Number of primary outputs a node drives (counts as extra fanout).
  int num_po_refs(NodeId id) const;

  /// Total fanout references (node fanouts + PO refs).
  int fanout_refs(NodeId id) const;

  /// Internal (non-PI, alive) nodes in topological order (fanins first).
  /// Cached behind the journal stamp: recomputed only when mutations()
  /// has moved since the last call, otherwise a plain copy of the cache.
  std::vector<NodeId> topo_order() const;

  /// Zero-copy variant of topo_order() for read-only traversals
  /// (simulation, gate-net builds, printing): a span into the cache.
  /// Invalidated by any mutation *and* by the next topo_order()/
  /// topo_view() call after one — do not mutate the network or hold the
  /// span across mutations while iterating.
  std::span<const NodeId> topo_view() const;

  /// True if `b` is in the transitive fanin of `a` (a depends on b).
  bool depends_on(NodeId a, NodeId b) const;

  /// Sum over internal nodes of flat SOP literals.
  int sop_literals() const;

  /// Sum over internal nodes of quick-factored literals — the paper's
  /// reported metric.
  int factored_literals() const;

  /// Remove dead internal nodes (no fanouts, no PO refs), propagate
  /// constants and collapse single-input identity/inverter nodes.
  void sweep();

  /// Collapse node `id` into all of its fanouts and delete it. The node
  /// must be internal and must not drive a PO. Returns false (and leaves
  /// the network unchanged) if a composed cover would exceed `cube_limit`.
  bool collapse_into_fanouts(NodeId id, int cube_limit = 5000);

  /// Compose the function of `inner` into `outer` (outer gains inner's
  /// fanins in place of the literal). Exposed for eliminate and testing.
  bool compose(NodeId outer, NodeId inner, int cube_limit = 5000);

  /// Non-mutating preview of compose(): what `outer` would become. Used by
  /// eliminate to compute the TRUE literal value of a collapse instead of
  /// the crude (fanouts-1)*(lits-1)-1 estimate. nullopt when the composed
  /// cover would exceed `cube_limit`.
  std::optional<ComposedNode> compose_preview(NodeId outer, NodeId inner,
                                              int cube_limit = 5000) const;

  /// Run internal consistency checks (fanin/fanout symmetry, acyclicity,
  /// function arity, and the NodeTable's pool offset+count integrity);
  /// aborts via assert in debug builds, returns false on inconsistency
  /// otherwise.
  bool check() const;

  /// Arena bookkeeping of the underlying table (tests, diagnostics).
  NodeTable::PoolStats pool_stats() const { return table_.pool_stats(); }

  /// Names of primary outputs whose cone contains any of `nodes` (forward
  /// reachability over fanouts). This is the affected-cone set the
  /// paranoid self-verify mode (SubstituteOptions::verify_commits)
  /// replays equivalence on after each committed substitution.
  std::vector<std::string> outputs_affected_by(
      const std::vector<NodeId>& nodes) const;

  /// Fresh unique node name with the given prefix (probes the interned
  /// name index, no scan).
  std::string fresh_name(const std::string& prefix);

  /// The mutation journal: one typed event per structural change, in
  /// order. Incremental consumers (gate views, candidate filters) hold a
  /// cursor into it and patch themselves from the suffix.
  const MutationJournal& journal() const { return journal_; }

  /// Global structural mutation counter — the journal's newest sequence
  /// number. Bumped whenever a node is added, a function changes, a node
  /// dies, or an output is attached. Caches whose validity depends on
  /// network-wide state (cycle tests, whole-circuit gate views, global
  /// don't cares) stamp themselves with this value and rebuild when it
  /// moves; per-node caches use Node::version instead.
  std::uint64_t mutations() const { return journal_.seq(); }

 private:
  void add_fanout_refs(NodeId id);
  void remove_fanout_refs(NodeId id);

  /// The single mutation choke point: appends the journal event, bumps
  /// the node's packed version (FunctionChanged / NodeDied), and emits the
  /// ledger's NodeUpdate replay event. `lits_before` is the pre-change
  /// factored literal count (FunctionChanged only; the old cover is gone
  /// by the time this runs). `reason` must have static storage duration.
  void record_mutation(NetEventKind kind, NodeId id, const char* reason,
                       std::int64_t lits_before = 0);

  /// Rebuild-if-stale and return the cached topological order. The mutex
  /// makes concurrent first-reads after a mutation safe (read-only worker
  /// pools); an up-to-date cache costs one lock + stamp compare.
  const std::vector<NodeId>& topo_cached() const;

  /// journal-stamped topo_order cache; copied by value with the network,
  /// each copy gets its own mutex.
  struct TopoCache {
    std::mutex mu;
    std::vector<NodeId> order;
    std::uint64_t stamp = kNoStamp;
    static constexpr std::uint64_t kNoStamp = ~std::uint64_t{0};
    TopoCache() = default;
    TopoCache(const TopoCache& o) : order(o.order), stamp(o.stamp) {}
    TopoCache(TopoCache&& o) noexcept
        : order(std::move(o.order)), stamp(o.stamp) {}
    TopoCache& operator=(const TopoCache& o) {
      order = o.order;
      stamp = o.stamp;
      return *this;
    }
    TopoCache& operator=(TopoCache&& o) noexcept {
      order = std::move(o.order);
      stamp = o.stamp;
      return *this;
    }
  };

  std::string name_;
  NodeTable table_;
  std::vector<NodeId> pis_;
  std::vector<Output> pos_;
  int name_counter_ = 0;
  MutationJournal journal_;
  mutable TopoCache topo_;
};

/// SIS-style `eliminate`: repeatedly collapse internal nodes whose value
///   (fanout_refs - 1) * (factored_lits - 1) - 1
/// is <= `threshold` into their fanouts (nodes driving POs are kept).
/// Returns the number of nodes eliminated.
int eliminate(Network& net, int threshold, int cube_limit = 5000);

/// Run espresso-lite on every internal node function (SIS `simplify`).
void simplify_network(Network& net);

}  // namespace rarsub
