#pragma once
// Multi-level Boolean network: a DAG of nodes, each carrying a
// sum-of-products function over its immediate fanins (the SIS network
// model). This is the object the optimization commands (eliminate,
// simplify, gcx, gkx, resub, and the paper's RAR-based substitution)
// transform.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "network/journal.hpp"
#include "sop/sop.hpp"

namespace rarsub {

inline constexpr NodeId kNoNode = -1;

struct Node {
  std::string name;
  bool is_pi = false;
  bool alive = true;
  /// Bumped whenever the journal records a FunctionChanged or NodeDied
  /// event for this node (Network::record_mutation); lets per-node caches
  /// (e.g. node complements) invalidate cheaply.
  int version = 0;
  /// Signals feeding this node; variable i of `func` refers to fanins[i].
  std::vector<NodeId> fanins;
  /// Local function over the fanins (on-set cover). Zero cubes = constant 0;
  /// a universe cube = constant 1. Unused for PIs.
  Sop func;
  /// Derived: nodes that list this node among their fanins.
  std::vector<NodeId> fanouts;
};

struct Output {
  std::string name;
  NodeId driver = kNoNode;
};

/// Result of a compose preview: the fanin list and function a node would
/// have after absorbing one of its fanin nodes.
struct ComposedNode {
  std::vector<NodeId> fanins;
  Sop func;
};

class Network {
 public:
  Network() = default;
  explicit Network(std::string model_name) : name_(std::move(model_name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  NodeId add_pi(const std::string& name);
  NodeId add_node(const std::string& name, std::vector<NodeId> fanins, Sop func);
  void add_po(const std::string& name, NodeId driver);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  Node& node(NodeId id) { return nodes_[static_cast<std::size_t>(id)]; }

  const std::vector<NodeId>& pis() const { return pis_; }
  const std::vector<Output>& pos() const { return pos_; }
  std::vector<Output>& pos() { return pos_; }

  NodeId find_node(const std::string& name) const;

  /// Replace the function (and fanin list) of an internal node, keeping
  /// fanout bookkeeping consistent. The new fanins must not create a cycle.
  void set_function(NodeId id, std::vector<NodeId> fanins, Sop func);

  /// Number of primary outputs a node drives (counts as extra fanout).
  int num_po_refs(NodeId id) const;

  /// Total fanout references (node fanouts + PO refs).
  int fanout_refs(NodeId id) const;

  /// Internal (non-PI, alive) nodes in topological order (fanins first).
  std::vector<NodeId> topo_order() const;

  /// True if `b` is in the transitive fanin of `a` (a depends on b).
  bool depends_on(NodeId a, NodeId b) const;

  /// Sum over internal nodes of flat SOP literals.
  int sop_literals() const;

  /// Sum over internal nodes of quick-factored literals — the paper's
  /// reported metric.
  int factored_literals() const;

  /// Remove dead internal nodes (no fanouts, no PO refs), propagate
  /// constants and collapse single-input identity/inverter nodes.
  void sweep();

  /// Collapse node `id` into all of its fanouts and delete it. The node
  /// must be internal and must not drive a PO. Returns false (and leaves
  /// the network unchanged) if a composed cover would exceed `cube_limit`.
  bool collapse_into_fanouts(NodeId id, int cube_limit = 5000);

  /// Compose the function of `inner` into `outer` (outer gains inner's
  /// fanins in place of the literal). Exposed for eliminate and testing.
  bool compose(NodeId outer, NodeId inner, int cube_limit = 5000);

  /// Non-mutating preview of compose(): what `outer` would become. Used by
  /// eliminate to compute the TRUE literal value of a collapse instead of
  /// the crude (fanouts-1)*(lits-1)-1 estimate. nullopt when the composed
  /// cover would exceed `cube_limit`.
  std::optional<ComposedNode> compose_preview(NodeId outer, NodeId inner,
                                              int cube_limit = 5000) const;

  /// Run internal consistency checks (fanin/fanout symmetry, acyclicity,
  /// function arity); aborts via assert in debug builds, returns false on
  /// inconsistency otherwise.
  bool check() const;

  /// Names of primary outputs whose cone contains any of `nodes` (forward
  /// reachability over fanouts). This is the affected-cone set the
  /// paranoid self-verify mode (SubstituteOptions::verify_commits)
  /// replays equivalence on after each committed substitution.
  std::vector<std::string> outputs_affected_by(
      const std::vector<NodeId>& nodes) const;

  /// Fresh unique node name with the given prefix.
  std::string fresh_name(const std::string& prefix);

  /// The mutation journal: one typed event per structural change, in
  /// order. Incremental consumers (gate views, candidate filters) hold a
  /// cursor into it and patch themselves from the suffix.
  const MutationJournal& journal() const { return journal_; }

  /// Global structural mutation counter — the journal's newest sequence
  /// number. Bumped whenever a node is added, a function changes, a node
  /// dies, or an output is attached. Caches whose validity depends on
  /// network-wide state (cycle tests, whole-circuit gate views, global
  /// don't cares) stamp themselves with this value and rebuild when it
  /// moves; per-node caches use Node::version instead.
  std::uint64_t mutations() const { return journal_.seq(); }

 private:
  void add_fanout_refs(NodeId id);
  void remove_fanout_refs(NodeId id);

  /// The single mutation choke point: appends the journal event, bumps
  /// Node::version (FunctionChanged / NodeDied), and emits the ledger's
  /// NodeUpdate replay event. `lits_before` is the pre-change factored
  /// literal count (FunctionChanged only; the old cover is gone by the
  /// time this runs). `reason` must have static storage duration.
  void record_mutation(NetEventKind kind, NodeId id, const char* reason,
                       std::int64_t lits_before = 0);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> pis_;
  std::vector<Output> pos_;
  int name_counter_ = 0;
  MutationJournal journal_;
};

/// SIS-style `eliminate`: repeatedly collapse internal nodes whose value
///   (fanout_refs - 1) * (factored_lits - 1) - 1
/// is <= `threshold` into their fanouts (nodes driving POs are kept).
/// Returns the number of nodes eliminated.
int eliminate(Network& net, int threshold, int cube_limit = 5000);

/// Run espresso-lite on every internal node function (SIS `simplify`).
void simplify_network(Network& net);

}  // namespace rarsub
