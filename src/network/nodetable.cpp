#include "network/nodetable.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace rarsub {

namespace {

constexpr std::size_t kNameChunkBytes = 1 << 16;

int cap_class(std::uint32_t cap) {
  assert(cap > 0 && std::has_single_bit(cap));
  return std::countr_zero(cap);
}

std::uint32_t round_up_pow2(std::uint32_t need) {
  return std::bit_ceil(need);
}

}  // namespace

NodeTable::NodeTable(const NodeTable& other) { *this = other; }

NodeTable& NodeTable::operator=(const NodeTable& other) {
  if (this == &other) return *this;
  info_ = other.info_;
  fi_off_ = other.fi_off_;
  fi_cnt_ = other.fi_cnt_;
  fi_cap_ = other.fi_cap_;
  fo_off_ = other.fo_off_;
  fo_cnt_ = other.fo_cnt_;
  fo_cap_ = other.fo_cap_;
  funcs_ = other.funcs_;
  pool_ = other.pool_;
  free_ = other.free_;
  // Re-intern every name so the copy's views point into its own arena.
  names_.clear();
  names_.resize(other.names_.size());
  name_chunks_.clear();
  chunk_used_ = chunk_cap_ = 0;
  by_name_.clear();
  for (std::size_t i = 0; i < other.names_.size(); ++i)
    names_[i] = intern_name(other.names_[i], static_cast<NodeId>(i));
  return *this;
}

std::string_view NodeTable::intern_name(std::string_view name, NodeId id) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    it->second.push_back(id);
    return it->first;
  }
  if (chunk_used_ + name.size() > chunk_cap_) {
    chunk_cap_ = std::max(kNameChunkBytes, name.size());
    name_chunks_.push_back(std::make_unique<char[]>(chunk_cap_));
    chunk_used_ = 0;
  }
  char* dst = name_chunks_.back().get() + chunk_used_;
  std::memcpy(dst, name.data(), name.size());
  chunk_used_ += name.size();
  const std::string_view stable(dst, name.size());
  by_name_.emplace(stable, std::vector<NodeId>{id});
  return stable;
}

NodeId NodeTable::create(std::string_view name, bool is_pi) {
  const NodeId id = static_cast<NodeId>(info_.size());
  info_.push_back(kAliveBit | (is_pi ? kPiBit : 0u));
  fi_off_.push_back(0);
  fi_cnt_.push_back(0);
  fi_cap_.push_back(0);
  fo_off_.push_back(0);
  fo_cnt_.push_back(0);
  fo_cap_.push_back(0);
  funcs_.emplace_back();
  names_.push_back(intern_name(name, id));
  return id;
}

NodeId NodeTable::find(std::string_view name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return kNoNode;
  for (NodeId id : it->second)
    if (alive(id)) return id;
  return kNoNode;
}

std::uint32_t NodeTable::alloc_range(std::uint32_t need,
                                     std::uint32_t* cap_out) {
  if (need == 0) {
    *cap_out = 0;
    return 0;
  }
  const std::uint32_t cap = round_up_pow2(need);
  const int k = cap_class(cap);
  if (static_cast<int>(free_.size()) > k && !free_[static_cast<std::size_t>(k)].empty()) {
    auto& bucket = free_[static_cast<std::size_t>(k)];
    const std::uint32_t off = bucket.back();
    bucket.pop_back();
    *cap_out = cap;
    return off;
  }
  const std::uint32_t off = static_cast<std::uint32_t>(pool_.size());
  pool_.resize(pool_.size() + cap, kNoNode);
  *cap_out = cap;
  return off;
}

void NodeTable::free_range(std::uint32_t off, std::uint32_t cap) {
  if (cap == 0) return;
  const int k = cap_class(cap);
  if (static_cast<int>(free_.size()) <= k)
    free_.resize(static_cast<std::size_t>(k) + 1);
  free_[static_cast<std::size_t>(k)].push_back(off);
}

void NodeTable::set_fanins(NodeId id, std::span<const NodeId> fi) {
  const auto i = static_cast<std::size_t>(id);
  // The incoming span may alias the node's current range (callers pass
  // node(id).fanins back in); stage through a copy only in that case.
  const NodeId* src = fi.data();
  std::vector<NodeId> staged;
  if (!fi.empty() && src >= pool_.data() && src < pool_.data() + pool_.size()) {
    staged.assign(fi.begin(), fi.end());
    src = staged.data();
  }
  free_range(fi_off_[i], fi_cap_[i]);
  std::uint32_t cap = 0;
  const std::uint32_t off =
      alloc_range(static_cast<std::uint32_t>(fi.size()), &cap);
  if (!fi.empty())
    std::memcpy(pool_.data() + off, src, fi.size() * sizeof(NodeId));
  fi_off_[i] = off;
  fi_cnt_[i] = static_cast<std::uint32_t>(fi.size());
  fi_cap_[i] = cap;
}

void NodeTable::push_fanout(NodeId id, NodeId fo) {
  const auto i = static_cast<std::size_t>(id);
  if (fo_cnt_[i] == fo_cap_[i]) {
    std::uint32_t cap = 0;
    const std::uint32_t off = alloc_range(fo_cnt_[i] + 1, &cap);
    if (fo_cnt_[i] > 0)
      std::memmove(pool_.data() + off, pool_.data() + fo_off_[i],
                   fo_cnt_[i] * sizeof(NodeId));
    free_range(fo_off_[i], fo_cap_[i]);
    fo_off_[i] = off;
    fo_cap_[i] = cap;
  }
  pool_[fo_off_[i] + fo_cnt_[i]] = fo;
  ++fo_cnt_[i];
}

void NodeTable::erase_fanout(NodeId id, NodeId fo) {
  const auto i = static_cast<std::size_t>(id);
  NodeId* base = pool_.data() + fo_off_[i];
  NodeId* end = base + fo_cnt_[i];
  NodeId* it = std::find(base, end, fo);
  if (it == end) return;
  std::memmove(it, it + 1,
               static_cast<std::size_t>(end - it - 1) * sizeof(NodeId));
  --fo_cnt_[i];
}

void NodeTable::kill(NodeId id) {
  const auto i = static_cast<std::size_t>(id);
  assert(fo_cnt_[i] == 0 && "a node only dies once nothing references it");
  info(id) &= ~kAliveBit;
  free_range(fi_off_[i], fi_cap_[i]);
  fi_off_[i] = fi_cnt_[i] = fi_cap_[i] = 0;
  free_range(fo_off_[i], fo_cap_[i]);
  fo_off_[i] = fo_cnt_[i] = fo_cap_[i] = 0;
}

NodeTable::PoolStats NodeTable::pool_stats() const {
  PoolStats s;
  s.pool_slots = pool_.size();
  for (std::size_t i = 0; i < info_.size(); ++i)
    s.live_slots += fi_cap_[i] + fo_cap_[i];
  for (std::size_t k = 0; k < free_.size(); ++k)
    s.free_slots += free_[k].size() << k;
  return s;
}

bool NodeTable::check_integrity() const {
  // 0 = unclaimed, 1 = claimed: every pool slot belongs to at most one
  // live range or freelist entry.
  std::vector<std::uint8_t> claimed(pool_.size(), 0);
  auto claim = [&](std::uint32_t off, std::uint32_t cap) {
    if (cap == 0) return true;
    if (!std::has_single_bit(cap)) return false;
    if (static_cast<std::size_t>(off) + cap > pool_.size()) return false;
    for (std::uint32_t j = off; j < off + cap; ++j) {
      if (claimed[j]) return false;
      claimed[j] = 1;
    }
    return true;
  };
  for (std::size_t i = 0; i < info_.size(); ++i) {
    if (fi_cnt_[i] > fi_cap_[i] || fo_cnt_[i] > fo_cap_[i]) return false;
    if (!claim(fi_off_[i], fi_cap_[i])) return false;
    if (!claim(fo_off_[i], fo_cap_[i])) return false;
    if (!alive(static_cast<NodeId>(i)) && (fi_cap_[i] != 0 || fo_cap_[i] != 0))
      return false;  // dead slots must have returned their ranges
  }
  for (std::size_t k = 0; k < free_.size(); ++k)
    for (std::uint32_t off : free_[k])
      if (!claim(off, 1u << k)) return false;
  // Every carved slot is accounted for: claimed everywhere means no leak
  // between the live ranges and the freelists.
  for (std::size_t j = 0; j < claimed.size(); ++j)
    if (!claimed[j]) return false;
  return true;
}

}  // namespace rarsub
