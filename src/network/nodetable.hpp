#pragma once
// NodeTable: flat struct-of-arrays storage for the Boolean network core.
//
// The legacy layout was a vector of Node structs, each owning a heap
// std::string name and two heap std::vector<NodeId> adjacency lists —
// three pointer chases per node before a hot loop (simulation, implication
// support, cone reachability, topological ordering) touches a single
// neighbour. This table re-lays the same state as parallel flat arrays in
// the style of Formality-C's config_u32array:
//
//   info_      one packed u32 per node: bit0 alive, bit1 is_pi,
//              bits 2..31 the mutation version (wraps at 2^30)
//   fi_/fo_*   fanin / fanout adjacency as (offset, count, capacity)
//              triples into one shared NodeId pool with power-of-two
//              size-class freelist recycling for retired ranges
//   funcs_     per-node Sop headers in one flat column; cube payloads are
//              the PR-8 small-buffer Cubes, so a node's cover is a single
//              contiguous array of 24-byte inline-storage cube objects
//   names_     per-node string_view into a chunked, pointer-stable byte
//              arena; an interning hash map gives O(1) find() and keeps
//              Network::fresh_name() from re-scanning the node array
//
// The table is storage only: journaling, version semantics and invariants
// (duplicate-free fanins, fanin/fanout symmetry) remain the Network's
// job, and every mutation still flows through Network::record_mutation.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "network/journal.hpp"
#include "sop/sop.hpp"

namespace rarsub {

class NodeTable {
 public:
  NodeTable() = default;
  // Copying re-interns every name into a fresh arena so the views of the
  // copy never alias the source (networks are copied per bench method and
  // per fuzz leg; the arena chunks themselves are not shareable).
  NodeTable(const NodeTable& other);
  NodeTable& operator=(const NodeTable& other);
  NodeTable(NodeTable&&) noexcept = default;
  NodeTable& operator=(NodeTable&&) noexcept = default;

  int size() const { return static_cast<int>(info_.size()); }

  /// Append a node slot; adjacency ranges start empty, the function is the
  /// empty cover, the name is interned and indexed.
  NodeId create(std::string_view name, bool is_pi);

  bool alive(NodeId id) const { return (info(id) & kAliveBit) != 0; }
  bool is_pi(NodeId id) const { return (info(id) & kPiBit) != 0; }
  int version(NodeId id) const {
    return static_cast<int>(info(id) >> kVersionShift);
  }
  void bump_version(NodeId id) {
    // The version field wraps at 2^30; per-node caches compare for
    // equality only, so a wrap is harmless.
    info(id) += (1u << kVersionShift);
  }

  /// Clear the alive bit and return the node's adjacency ranges to the
  /// freelists (the fanout range is empty by the death invariant — a node
  /// only dies once nothing references it). Name and function stay: the
  /// ledger's NodeDied replay reads the final cover, and the name slot in
  /// the index is skipped by find() once dead.
  void kill(NodeId id);

  std::string_view name(NodeId id) const {
    return names_[static_cast<std::size_t>(id)];
  }

  /// First (lowest-id) alive node with this name, or kNoNode — the exact
  /// semantics of the legacy linear scan, via the interning map.
  NodeId find(std::string_view name) const;

  std::span<const NodeId> fanins(NodeId id) const {
    const auto i = static_cast<std::size_t>(id);
    return {pool_.data() + fi_off_[i], static_cast<std::size_t>(fi_cnt_[i])};
  }
  std::span<const NodeId> fanouts(NodeId id) const {
    const auto i = static_cast<std::size_t>(id);
    return {pool_.data() + fo_off_[i], static_cast<std::size_t>(fo_cnt_[i])};
  }

  const Sop& func(NodeId id) const {
    return funcs_[static_cast<std::size_t>(id)];
  }
  void set_func(NodeId id, Sop f) {
    funcs_[static_cast<std::size_t>(id)] = std::move(f);
  }

  /// Replace the fanin range (frees the old one, allocates an exact-class
  /// new one).
  void set_fanins(NodeId id, std::span<const NodeId> fi);

  /// Append `fo` to the fanout range, growing its capacity class when
  /// full.
  void push_fanout(NodeId id, NodeId fo);

  /// Remove the first occurrence of `fo`, preserving the order of the
  /// remaining entries (byte-identical iteration order with the legacy
  /// vector erase).
  void erase_fanout(NodeId id, NodeId fo);

  struct PoolStats {
    std::size_t pool_slots = 0;  ///< total slots ever carved from the pool
    std::size_t live_slots = 0;  ///< slots inside live (off,cap) ranges
    std::size_t free_slots = 0;  ///< slots parked on the freelists
  };
  PoolStats pool_stats() const;

  /// Structural integrity of the arena bookkeeping, independent of the
  /// graph invariants Network::check() owns: every live range in bounds
  /// with count <= capacity, capacities are powers of two, and no pool
  /// slot is claimed by two live ranges or by a live range and a freelist
  /// entry at once. O(pool) — debug/test tool, not a hot path.
  bool check_integrity() const;

 private:
  static constexpr std::uint32_t kAliveBit = 1u << 0;
  static constexpr std::uint32_t kPiBit = 1u << 1;
  static constexpr int kVersionShift = 2;

  std::uint32_t info(NodeId id) const {
    return info_[static_cast<std::size_t>(id)];
  }
  std::uint32_t& info(NodeId id) { return info_[static_cast<std::size_t>(id)]; }

  /// Allocate a range of capacity ceil_pow2(need); returns its offset.
  /// need == 0 allocates nothing and returns offset 0.
  std::uint32_t alloc_range(std::uint32_t need, std::uint32_t* cap_out);
  void free_range(std::uint32_t off, std::uint32_t cap);

  /// Copy `name` into the stable byte arena (or reuse the bytes of an
  /// earlier interning of the same string) and index it for find().
  std::string_view intern_name(std::string_view name, NodeId id);

  // --- parallel per-node columns ---
  std::vector<std::uint32_t> info_;
  std::vector<std::uint32_t> fi_off_, fi_cnt_, fi_cap_;
  std::vector<std::uint32_t> fo_off_, fo_cnt_, fo_cap_;
  std::vector<Sop> funcs_;
  std::vector<std::string_view> names_;

  // --- shared adjacency pool + pow2 size-class freelists ---
  std::vector<NodeId> pool_;
  std::vector<std::vector<std::uint32_t>> free_;  ///< free_[k]: caps of 1<<k

  // --- name arena + interning index ---
  std::vector<std::unique_ptr<char[]>> name_chunks_;
  std::size_t chunk_used_ = 0;
  std::size_t chunk_cap_ = 0;
  /// name -> every node ever created with it, in id order; find() returns
  /// the first alive entry.
  std::unordered_map<std::string_view, std::vector<NodeId>> by_name_;
};

}  // namespace rarsub
