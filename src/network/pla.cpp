#include "network/pla.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace rarsub {

Network read_pla(std::istream& in) {
  Network net("pla");
  int ni = -1, no = -1;
  std::vector<std::string> input_names, output_names;
  std::vector<std::pair<std::string, std::string>> rows;

  std::string line;
  while (std::getline(in, line)) {
    if (auto pos = line.find('#'); pos != std::string::npos) line.resize(pos);
    std::istringstream ss(line);
    std::string tok;
    if (!(ss >> tok)) continue;
    if (tok == ".i") {
      if (!(ss >> ni)) throw std::runtime_error("read_pla: bad .i");
    } else if (tok == ".o") {
      if (!(ss >> no)) throw std::runtime_error("read_pla: bad .o");
    } else if (tok == ".ilb") {
      std::string n;
      while (ss >> n) input_names.push_back(n);
    } else if (tok == ".ob") {
      std::string n;
      while (ss >> n) output_names.push_back(n);
    } else if (tok == ".p" || tok == ".type") {
      // cube count / type hints: accepted and ignored
      std::string rest;
      ss >> rest;
    } else if (tok == ".e" || tok == ".end") {
      break;
    } else if (tok[0] == '.') {
      throw std::runtime_error("read_pla: unsupported directive " + tok);
    } else {
      std::string out_plane;
      if (!(ss >> out_plane))
        throw std::runtime_error("read_pla: row missing output plane");
      rows.emplace_back(tok, out_plane);
    }
  }
  if (ni < 0 || no < 0) throw std::runtime_error("read_pla: missing .i/.o");

  std::vector<NodeId> pis;
  for (int i = 0; i < ni; ++i) {
    const std::string name = i < static_cast<int>(input_names.size())
                                 ? input_names[static_cast<std::size_t>(i)]
                                 : "i" + std::to_string(i);
    pis.push_back(net.add_pi(name));
  }

  std::vector<Sop> covers(static_cast<std::size_t>(no), Sop(ni));
  for (const auto& [in_plane, out_plane] : rows) {
    if (static_cast<int>(in_plane.size()) != ni ||
        static_cast<int>(out_plane.size()) != no)
      throw std::runtime_error("read_pla: row width mismatch");
    Cube c(ni);
    for (int v = 0; v < ni; ++v) {
      const char ch = in_plane[static_cast<std::size_t>(v)];
      if (ch == '1') c.set_lit(v, Lit::Pos);
      else if (ch == '0') c.set_lit(v, Lit::Neg);
      else if (ch != '-' && ch != '2')
        throw std::runtime_error("read_pla: bad input char");
    }
    for (int o = 0; o < no; ++o) {
      const char ch = out_plane[static_cast<std::size_t>(o)];
      if (ch == '1' || ch == '4') covers[static_cast<std::size_t>(o)].add_cube(c);
      else if (ch != '0' && ch != '-' && ch != '~' && ch != '2' && ch != '3')
        throw std::runtime_error("read_pla: bad output char");
    }
  }

  for (int o = 0; o < no; ++o) {
    const std::string name = o < static_cast<int>(output_names.size())
                                 ? output_names[static_cast<std::size_t>(o)]
                                 : "o" + std::to_string(o);
    const NodeId n = net.add_node(name, pis, covers[static_cast<std::size_t>(o)]);
    net.add_po(name, n);
  }
  return net;
}

Network read_pla_string(const std::string& text) {
  std::istringstream ss(text);
  return read_pla(ss);
}

Network read_pla_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_pla_file: cannot open " + path);
  return read_pla(f);
}

std::optional<Sop> collapse_to_pis(const Network& net, NodeId node,
                                   int cube_limit) {
  const int ni = static_cast<int>(net.pis().size());
  std::map<NodeId, int> pi_index;
  for (int i = 0; i < ni; ++i) pi_index[net.pis()[static_cast<std::size_t>(i)]] = i;

  // Covers over PI space per node, built bottom-up.
  std::map<NodeId, Sop> cover;
  for (NodeId id : net.topo_order()) {
    const Node& nd = net.node(id);
    Sop acc(ni);
    for (const Cube& c : nd.func.cubes()) {
      Sop term = Sop::one(ni);
      for (int v = 0; v < nd.func.num_vars() && !term.is_zero(); ++v) {
        const Lit l = c.lit(v);
        if (l == Lit::Absent) continue;
        const NodeId src = nd.fanins[static_cast<std::size_t>(v)];
        Sop src_cover(ni);
        if (net.node(src).is_pi) {
          Cube pc(ni);
          pc.set_lit(pi_index.at(src), Lit::Pos);
          src_cover.add_cube(pc);
        } else {
          src_cover = cover.at(src);
        }
        if (l == Lit::Neg) src_cover = src_cover.complement();
        term = term.boolean_and(src_cover);
        if (term.num_cubes() > cube_limit) return std::nullopt;
      }
      acc = acc.boolean_or(term);
      if (acc.num_cubes() > cube_limit) return std::nullopt;
    }
    cover.emplace(id, std::move(acc));
  }

  const Node& nd = net.node(node);
  if (nd.is_pi) {
    Sop f(ni);
    Cube pc(ni);
    pc.set_lit(pi_index.at(node), Lit::Pos);
    f.add_cube(pc);
    return f;
  }
  auto it = cover.find(node);
  if (it == cover.end()) return std::nullopt;
  return it->second;
}

void write_pla(const Network& net, std::ostream& out, int cube_limit) {
  const int ni = static_cast<int>(net.pis().size());
  const int no = static_cast<int>(net.pos().size());

  // One merged cube list: (input plane, output index).
  std::vector<std::pair<std::string, int>> rows;
  for (int o = 0; o < no; ++o) {
    const std::optional<Sop> f =
        collapse_to_pis(net, net.pos()[static_cast<std::size_t>(o)].driver, cube_limit);
    if (!f) throw std::runtime_error("write_pla: cover exceeds cube limit");
    for (const Cube& c : f->cubes()) rows.emplace_back(c.to_string(), o);
  }

  out << ".i " << ni << "\n.o " << no << "\n";
  out << ".ilb";
  for (NodeId pi : net.pis()) out << " " << net.node(pi).name;
  out << "\n.ob";
  for (const Output& o : net.pos()) out << " " << o.name;
  out << "\n.p " << rows.size() << "\n";
  for (const auto& [plane, o] : rows) {
    std::string outp(static_cast<std::size_t>(no), '0');
    outp[static_cast<std::size_t>(o)] = '1';
    out << plane << " " << outp << "\n";
  }
  out << ".e\n";
}

std::string write_pla_string(const Network& net, int cube_limit) {
  std::ostringstream ss;
  write_pla(net, ss, cube_limit);
  return ss.str();
}

}  // namespace rarsub
