#pragma once
// Espresso-format PLA reader/writer (.i/.o/.p/.ilb/.ob/.e): the two-level
// interchange format of the MCNC benchmark set. A PLA loads as a network
// with one node per output.

#include <iosfwd>
#include <string>

#include "network/network.hpp"

namespace rarsub {

/// Parse an espresso PLA (type f / fd); throws std::runtime_error on
/// malformed input. Output column '1' adds the row's input cube to that
/// output's on-set; '-' (type fd) is recorded as a don't care and dropped
/// (on-set semantics); '0' and '~' are ignored.
Network read_pla(std::istream& in);
Network read_pla_string(const std::string& text);
Network read_pla_file(const std::string& path);

/// Serialize a (two-level) view: every PO's node function collapsed to the
/// primary inputs. Intended for small networks (collapse guard applies);
/// throws std::runtime_error when a cover exceeds `cube_limit`.
void write_pla(const Network& net, std::ostream& out, int cube_limit = 4096);
std::string write_pla_string(const Network& net, int cube_limit = 4096);

/// Collapse a node's global function to a cover over the primary inputs
/// (variable i = i-th PI). nullopt when an intermediate cover exceeds
/// `cube_limit`. Also used by the two-level verification paths.
std::optional<Sop> collapse_to_pis(const Network& net, NodeId node,
                                   int cube_limit = 4096);

}  // namespace rarsub
