#include "network/simulate.hpp"

#include <bit>
#include <cassert>

namespace rarsub {

std::vector<std::uint64_t> simulate64(const Network& net,
                                      const std::vector<std::uint64_t>& pi_words) {
  assert(pi_words.size() == net.pis().size());
  std::vector<std::uint64_t> value(static_cast<std::size_t>(net.num_nodes()), 0);
  for (std::size_t i = 0; i < net.pis().size(); ++i)
    value[static_cast<std::size_t>(net.pis()[i])] = pi_words[i];

  // Word-parallel cube walk: one pass over each cube's raw 2-bit-pair
  // words classifies 32 variables at a time. With low = "may be 0" bits
  // and high = "may be 1" bits, positive literals are high&~low, negative
  // are low&~high; absent (11) and empty (00) pairs fall out of both
  // masks, exactly the pairs the per-variable lit() walk skipped.
  constexpr std::uint64_t kLow = 0x5555555555555555ULL;
  for (NodeId id : net.topo_view()) {
    const Sop& func = net.func(id);
    const std::span<const NodeId> fanins = net.fanins(id);
    const int num_words = (func.num_vars() + 31) / 32;
    std::uint64_t acc = 0;
    for (const Cube& c : func.cubes()) {
      const std::uint64_t* words = c.raw_words();
      std::uint64_t cube_val = ~0ULL;
      for (int wi = 0; wi < num_words && cube_val; ++wi) {
        const std::uint64_t w = words[wi];
        const std::uint64_t low = w & kLow;
        const std::uint64_t high = (w >> 1) & kLow;
        const int vbase = wi * 32;
        for (std::uint64_t m = high & ~low; m; m &= m - 1) {
          const int v = vbase + (std::countr_zero(m) >> 1);
          cube_val &= value[static_cast<std::size_t>(
              fanins[static_cast<std::size_t>(v)])];
        }
        for (std::uint64_t m = low & ~high; m; m &= m - 1) {
          const int v = vbase + (std::countr_zero(m) >> 1);
          cube_val &= ~value[static_cast<std::size_t>(
              fanins[static_cast<std::size_t>(v)])];
        }
      }
      acc |= cube_val;
    }
    value[static_cast<std::size_t>(id)] = acc;
  }

  std::vector<std::uint64_t> out;
  out.reserve(net.pos().size());
  for (const Output& o : net.pos())
    out.push_back(value[static_cast<std::size_t>(o.driver)]);
  return out;
}

std::vector<bool> simulate1(const Network& net, std::uint64_t assignment) {
  std::vector<std::uint64_t> pi_words(net.pis().size(), 0);
  for (std::size_t i = 0; i < pi_words.size(); ++i)
    pi_words[i] = ((assignment >> i) & 1) ? ~0ULL : 0ULL;
  const std::vector<std::uint64_t> words = simulate64(net, pi_words);
  std::vector<bool> out;
  out.reserve(words.size());
  for (std::uint64_t w : words) out.push_back((w & 1) != 0);
  return out;
}

}  // namespace rarsub
