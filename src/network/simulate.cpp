#include "network/simulate.hpp"

#include <cassert>

namespace rarsub {

std::vector<std::uint64_t> simulate64(const Network& net,
                                      const std::vector<std::uint64_t>& pi_words) {
  assert(pi_words.size() == net.pis().size());
  std::vector<std::uint64_t> value(static_cast<std::size_t>(net.num_nodes()), 0);
  for (std::size_t i = 0; i < net.pis().size(); ++i)
    value[static_cast<std::size_t>(net.pis()[i])] = pi_words[i];

  for (NodeId id : net.topo_order()) {
    const Node& nd = net.node(id);
    std::uint64_t acc = 0;
    for (const Cube& c : nd.func.cubes()) {
      std::uint64_t cube_val = ~0ULL;
      for (int v = 0; v < nd.func.num_vars() && cube_val; ++v) {
        const Lit l = c.lit(v);
        if (l == Lit::Absent) continue;
        const std::uint64_t w =
            value[static_cast<std::size_t>(nd.fanins[static_cast<std::size_t>(v)])];
        cube_val &= (l == Lit::Pos) ? w : ~w;
      }
      acc |= cube_val;
    }
    value[static_cast<std::size_t>(id)] = acc;
  }

  std::vector<std::uint64_t> out;
  out.reserve(net.pos().size());
  for (const Output& o : net.pos())
    out.push_back(value[static_cast<std::size_t>(o.driver)]);
  return out;
}

std::vector<bool> simulate1(const Network& net, std::uint64_t assignment) {
  std::vector<std::uint64_t> pi_words(net.pis().size(), 0);
  for (std::size_t i = 0; i < pi_words.size(); ++i)
    pi_words[i] = ((assignment >> i) & 1) ? ~0ULL : 0ULL;
  const std::vector<std::uint64_t> words = simulate64(net, pi_words);
  std::vector<bool> out;
  out.reserve(words.size());
  for (std::uint64_t w : words) out.push_back((w & 1) != 0);
  return out;
}

}  // namespace rarsub
