#pragma once
// Bit-parallel network simulation (64 patterns per word), used by the
// verification module and by tests to confirm that every optimization step
// preserves the primary-output functions.

#include <cstdint>
#include <vector>

#include "network/network.hpp"

namespace rarsub {

/// Evaluate the network on 64 parallel input patterns. `pi_words[i]` holds
/// the pattern bits of the i-th primary input (in pis() order). Returns one
/// word per primary output (in pos() order).
std::vector<std::uint64_t> simulate64(const Network& net,
                                      const std::vector<std::uint64_t>& pi_words);

/// Evaluate a single full assignment (bit i of `assignment` = i-th PI).
std::vector<bool> simulate1(const Network& net, std::uint64_t assignment);

}  // namespace rarsub
