#include "obs/hwc.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/obs.hpp"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace rarsub::obs {

namespace {

std::atomic<detail::PerfOpenFn> g_open_override{nullptr};

// Probe state: 0 unknown, 1 available, -1 unavailable. The status string
// is written once under the probe mutex before the flag flips, so readers
// that observe a decided probe see a complete reason.
std::atomic<int> g_probe{0};
std::mutex g_probe_mu;
std::string& probe_status() {
  static std::string s;
  return s;
}

#ifdef __linux__

long real_perf_open(void* attr, std::int32_t pid, std::int32_t cpu,
                    std::int32_t group_fd, unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

int open_event(std::uint64_t config, std::string* why) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  detail::PerfOpenFn open_fn = g_open_override.load(std::memory_order_acquire);
  if (open_fn == nullptr) open_fn = real_perf_open;
  const long fd = open_fn(&attr, /*pid=*/0, /*cpu=*/-1, /*group_fd=*/-1,
                          /*flags=*/0);
  if (fd < 0 && why != nullptr)
    *why = std::string("perf_event_open ") + std::strerror(errno);
  return static_cast<int>(fd);
}

#endif  // __linux__

void decide_probe() {
  if (g_probe.load(std::memory_order_acquire) != 0) return;
  std::lock_guard<std::mutex> lock(g_probe_mu);
  if (g_probe.load(std::memory_order_relaxed) != 0) return;

  if (env_flag("RARSUB_HWC_OFF")) {
    probe_status() = "disabled: RARSUB_HWC_OFF";
    g_probe.store(-1, std::memory_order_release);
    return;
  }
#ifndef __linux__
  probe_status() = "unavailable: not linux";
  g_probe.store(-1, std::memory_order_release);
#else
  std::string why;
  const int cyc = open_event(PERF_COUNT_HW_CPU_CYCLES, &why);
  if (cyc < 0) {
    probe_status() = "unavailable: " + why;
    g_probe.store(-1, std::memory_order_release);
    return;
  }
  const int ins = open_event(PERF_COUNT_HW_INSTRUCTIONS, &why);
  close(cyc);
  if (ins < 0) {
    probe_status() = "unavailable: " + why;
    g_probe.store(-1, std::memory_order_release);
    return;
  }
  close(ins);
  probe_status() = "ok";
  g_probe.store(1, std::memory_order_release);
#endif
}

#ifdef __linux__
std::int64_t read_fd(int fd) {
  if (fd < 0) return -1;
  std::uint64_t v = 0;
  if (::read(fd, &v, sizeof v) != static_cast<ssize_t>(sizeof v)) return -1;
  return static_cast<std::int64_t>(v);
}
#endif

}  // namespace

bool hwc_available() {
  decide_probe();
  return g_probe.load(std::memory_order_acquire) == 1;
}

std::string hwc_status() {
  decide_probe();
  std::lock_guard<std::mutex> lock(g_probe_mu);
  return probe_status();
}

namespace detail {
void set_perf_open_for_test(PerfOpenFn fn) {
  g_open_override.store(fn, std::memory_order_release);
  std::lock_guard<std::mutex> lock(g_probe_mu);
  g_probe.store(0, std::memory_order_release);  // re-arm the probe
  probe_status().clear();
}
}  // namespace detail

HwcGroup::HwcGroup() {
#ifdef __linux__
  if (!hwc_available()) return;
  fds_[0] = open_event(PERF_COUNT_HW_CPU_CYCLES, nullptr);
  fds_[1] = open_event(PERF_COUNT_HW_INSTRUCTIONS, nullptr);
  // Optional: many virtualized PMUs expose only the two events above.
  fds_[2] = open_event(PERF_COUNT_HW_CACHE_MISSES, nullptr);
  fds_[3] = open_event(PERF_COUNT_HW_BRANCH_MISSES, nullptr);
  if (!valid()) {  // lost the race against another consumer of the PMU
    for (int& fd : fds_) {
      if (fd >= 0) close(fd);
      fd = -1;
    }
  }
#endif
}

HwcGroup::~HwcGroup() {
#ifdef __linux__
  for (int fd : fds_)
    if (fd >= 0) close(fd);
#endif
}

void HwcGroup::start() {
#ifdef __linux__
  for (int fd : fds_) {
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
#endif
}

void HwcGroup::stop() {
#ifdef __linux__
  for (int fd : fds_)
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
#endif
}

HwcReading HwcGroup::read() const {
  HwcReading r;
#ifdef __linux__
  if (!valid()) return r;
  r.cycles = read_fd(fds_[0]);
  r.instructions = read_fd(fds_[1]);
  r.cache_misses = read_fd(fds_[2]);
  r.branch_misses = read_fd(fds_[3]);
  r.valid = r.cycles >= 0 && r.instructions >= 0;
#endif
  return r;
}

HwcScope::HwcScope() : group_(nullptr) {
  if (!hwc_available()) return;
  group_ = new HwcGroup();
  if (!group_->valid()) {
    delete group_;
    group_ = nullptr;
    return;
  }
  group_->start();
}

HwcScope::~HwcScope() {
  if (group_ == nullptr) return;
  group_->stop();
  const HwcReading r = group_->read();
  delete group_;
  if (r.valid) {
    OBS_COUNT("hwc.cycles", r.cycles);
    OBS_COUNT("hwc.instructions", r.instructions);
    if (r.cache_misses >= 0) OBS_COUNT("hwc.cache_misses", r.cache_misses);
    if (r.branch_misses >= 0) OBS_COUNT("hwc.branch_misses", r.branch_misses);
  }
}

}  // namespace rarsub::obs
