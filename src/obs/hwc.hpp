#pragma once
// Hardware performance counters via perf_event_open, with graceful
// degradation: on hosts where the syscall is denied (seccomp'd CI
// containers, perf_event_paranoid, non-Linux builds) everything still
// compiles and runs, hwc_available() reports false with a reason, and
// HwcScope/HwcGroup become no-ops — never an error.
//
// The group measures the calling process across all CPUs (pid=0, cpu=-1,
// user space only): cycles, instructions, cache misses, branch misses.
// Availability requires cycles+instructions; the miss counters are
// optional extras (virtualized PMUs often expose only the first two).
//
// Typical use — a scoped window that publishes into the obs registry as
// hwc.cycles / hwc.instructions / hwc.cache_misses / hwc.branch_misses:
//
//   { obs::HwcScope hwc; run_method(); }   // no-op when unavailable
//
// RARSUB_HWC_OFF=1 disables the probe outright (useful to silence perf
// noise or pin down interference).

#include <cstdint>
#include <string>

namespace rarsub::obs {

/// Process-wide probe: can we open the baseline cycles+instructions
/// events? First call performs the probe; later calls are a load.
bool hwc_available();

/// Human-readable availability status: "ok", or the degradation reason
/// ("unavailable: perf_event_open EACCES", "disabled: RARSUB_HWC_OFF",
/// "unavailable: not linux", ...). Never empty after hwc_available().
std::string hwc_status();

struct HwcReading {
  bool valid = false;  // false => all counts are meaningless
  std::int64_t cycles = -1;
  std::int64_t instructions = -1;
  std::int64_t cache_misses = -1;   // -1 when the event failed to open
  std::int64_t branch_misses = -1;  // -1 when the event failed to open
};

/// One set of counters, reusable across start/stop windows. Construction
/// on an unavailable host yields a group whose valid() is false and whose
/// operations are no-ops.
class HwcGroup {
 public:
  HwcGroup();
  ~HwcGroup();
  HwcGroup(const HwcGroup&) = delete;
  HwcGroup& operator=(const HwcGroup&) = delete;

  bool valid() const { return fds_[0] >= 0 && fds_[1] >= 0; }
  void start();  // reset + enable
  void stop();   // disable (counts hold until next start)
  HwcReading read() const;

 private:
  int fds_[4] = {-1, -1, -1, -1};  // cycles, instr, cache-miss, branch-miss
};

/// RAII measurement window: counts between construction and destruction
/// are published as OBS counters (hwc.cycles, hwc.instructions,
/// hwc.cache_misses, hwc.branch_misses). No-op when unavailable.
class HwcScope {
 public:
  HwcScope();
  ~HwcScope();
  HwcScope(const HwcScope&) = delete;
  HwcScope& operator=(const HwcScope&) = delete;

 private:
  HwcGroup* group_;  // null when hwc is unavailable
};

namespace detail {
/// Injectable syscall for tests: signature mirrors perf_event_open
/// (attr is an opaque pointer to keep <linux/perf_event.h> out of this
/// header). Setting it re-arms the availability probe; nullptr restores
/// the real syscall.
using PerfOpenFn = long (*)(void* attr, std::int32_t pid, std::int32_t cpu,
                            std::int32_t group_fd, unsigned long flags);
void set_perf_open_for_test(PerfOpenFn fn);
}  // namespace detail

}  // namespace rarsub::obs
