#pragma once
// Minimal streaming JSON writer used by the observability renderers and
// the bench report emitter. Commas are placed automatically; values are
// always well-formed JSON (strings escaped, non-finite doubles clamped).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace rarsub::obs {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

class JsonWriter {
 public:
  explicit JsonWriter(std::string* out) : out_(out) {}

  void begin_object() { pre(); *out_ += '{'; stack_.push_back(false); }
  void end_object() { *out_ += '}'; stack_.pop_back(); }
  void begin_array() { pre(); *out_ += '['; stack_.push_back(false); }
  void end_array() { *out_ += ']'; stack_.pop_back(); }

  void key(const std::string& k) {
    pre();
    *out_ += '"';
    *out_ += json_escape(k);
    *out_ += "\":";
    key_pending_ = true;
  }

  void value(const std::string& v) {
    pre();
    *out_ += '"';
    *out_ += json_escape(v);
    *out_ += '"';
  }
  void value(const char* v) { value(std::string(v)); }
  void value(std::int64_t v) {
    pre();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    *out_ += buf;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(double v) {
    pre();
    // JSON has no NaN/Infinity tokens; clamp to parseable stand-ins that
    // keep comparisons sane (NaN -> 0, +/-Inf -> huge finite sentinel).
    if (std::isnan(v)) {
      *out_ += '0';
      return;
    }
    if (std::isinf(v)) {
      *out_ += (v > 0 ? "1e308" : "-1e308");
      return;
    }
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    *out_ += buf;
  }
  void value(bool v) {
    pre();
    *out_ += v ? "true" : "false";
  }

 private:
  // Emit the separating comma unless this token follows a key or opens the
  // container.
  void pre() {
    if (key_pending_) {
      key_pending_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) *out_ += ',';
      stack_.back() = true;
    }
  }

  std::string* out_;
  std::vector<bool> stack_;  // per level: a sibling was already written
  bool key_pending_ = false;
};

}  // namespace rarsub::obs
