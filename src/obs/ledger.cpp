#include "obs/ledger.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <mutex>

#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace rarsub::obs {

namespace detail {
std::atomic<bool> g_ledger_on{false};
}

namespace {

constexpr const char* kKindNames[] = {
    "substitute_attempt", "substitute_commit", "substitute_reject",
    "node_update",        "division_region",   "core_divisor",
    "wire_add",           "wire_remove",       "redundancy_test",
    "pair_pruned",
};
constexpr std::size_t kNumKinds = sizeof(kKindNames) / sizeof(kKindNames[0]);

// All session state sits behind one mutex; the hot path never reaches it
// unless recording is on. Sequence numbers are assigned under the lock so
// the stream (file or ring) is strictly ordered by seq.
struct LedgerSession {
  std::mutex mu;
  std::FILE* file = nullptr;
  std::vector<Event> ring;  // capacity() fixed at begin; used as circular
  std::size_t capacity = 0;
  std::uint64_t emitted = 0;
  std::int64_t t0_ns = 0;
};

LedgerSession& session() {
  static LedgerSession s;
  return s;
}

}  // namespace

const char* event_kind_name(EventKind k) {
  const auto i = static_cast<std::size_t>(k);
  return i < kNumKinds ? kKindNames[i] : "unknown";
}

bool event_kind_from_name(const std::string& name, EventKind* out) {
  for (std::size_t i = 0; i < kNumKinds; ++i)
    if (name == kKindNames[i]) {
      *out = static_cast<EventKind>(i);
      return true;
    }
  return false;
}

namespace detail {

bool ledger_env_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("RARSUB_LEDGER");
    if (path != nullptr && *path != '\0') ledger_begin(path);
  });
  return true;
}

void ledger_emit(Event e) {
  LedgerSession& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!g_ledger_on.load(std::memory_order_relaxed)) return;  // raced end()
  e.seq = s.emitted++;
  e.t_ns = now_ns();
  if (s.file != nullptr) {
    const std::string line = event_to_jsonl(e, s.t0_ns);
    std::fputs(line.c_str(), s.file);
    std::fputc('\n', s.file);
  } else {
    s.ring[static_cast<std::size_t>(e.seq) % s.capacity] = e;
  }
}

}  // namespace detail

namespace {

bool begin_locked(std::FILE* file, std::size_t capacity) {
  LedgerSession& s = session();
  s.file = file;
  s.capacity = capacity;
  s.ring.assign(capacity > 0 ? capacity : 0, Event{});
  s.emitted = 0;
  s.t0_ns = now_ns();
  detail::g_ledger_on.store(true, std::memory_order_relaxed);
  // Flush and close even if the process exits without ledger_end().
  static bool at_exit_registered = false;
  if (!at_exit_registered) {
    at_exit_registered = true;
    std::atexit([] { ledger_end(); });
  }
  return true;
}

}  // namespace

bool ledger_begin(const std::string& path) {
  LedgerSession& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (detail::g_ledger_on.load(std::memory_order_relaxed)) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  return begin_locked(f, 0);
}

bool ledger_begin_memory(std::size_t capacity) {
  LedgerSession& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (detail::g_ledger_on.load(std::memory_order_relaxed)) return false;
  if (capacity == 0) return false;
  return begin_locked(nullptr, capacity);
}

void ledger_end() {
  LedgerSession& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!detail::g_ledger_on.load(std::memory_order_relaxed)) return;
  detail::g_ledger_on.store(false, std::memory_order_relaxed);
  if (s.file != nullptr) {
    std::fclose(s.file);
    s.file = nullptr;
  }
}

std::vector<Event> ledger_events() {
  LedgerSession& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<Event> out;
  if (s.capacity == 0) return out;
  const std::uint64_t kept =
      std::min<std::uint64_t>(s.emitted, s.capacity);
  out.reserve(static_cast<std::size_t>(kept));
  for (std::uint64_t i = s.emitted - kept; i < s.emitted; ++i)
    out.push_back(s.ring[static_cast<std::size_t>(i) % s.capacity]);
  return out;
}

std::uint64_t ledger_emitted() {
  LedgerSession& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.emitted;
}

std::uint64_t ledger_dropped() {
  LedgerSession& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.capacity == 0 || s.emitted <= s.capacity) return 0;
  return s.emitted - s.capacity;
}

// ---------------------------------------------------------------------
// Wire format.

std::string event_to_jsonl(const Event& e, std::int64_t t0_ns) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"seq\":%llu,\"t_us\":%.3f,\"kind\":\"%s\",\"node\":%d,"
                "\"divisor\":%d,\"a\":%lld,\"b\":%lld,\"c\":%lld",
                static_cast<unsigned long long>(e.seq),
                static_cast<double>(e.t_ns - t0_ns) / 1000.0,
                event_kind_name(e.kind), e.node, e.divisor,
                static_cast<long long>(e.a), static_cast<long long>(e.b),
                static_cast<long long>(e.c));
  std::string out = buf;
  if (e.reason != nullptr) {
    out += ",\"reason\":\"";
    out += json_escape(e.reason);
    out += '"';
  }
  out += '}';
  return out;
}

namespace {

// Minimal flat-object field extraction — the writer above is the only
// producer, so every value is a bare number or a quoted string.
bool find_number(const std::string& line, const char* key, double* out) {
  const std::string pat = std::string("\"") + key + "\":";
  const std::size_t at = line.find(pat);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + pat.size();
  char* end = nullptr;
  *out = std::strtod(start, &end);
  return end != start;
}

bool find_string(const std::string& line, const char* key, std::string* out) {
  const std::string pat = std::string("\"") + key + "\":\"";
  const std::size_t at = line.find(pat);
  if (at == std::string::npos) return false;
  out->clear();
  for (std::size_t i = at + pat.size(); i < line.size(); ++i) {
    const char ch = line[i];
    if (ch == '"') return true;
    if (ch == '\\' && i + 1 < line.size()) {
      const char nx = line[++i];
      switch (nx) {
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        default: *out += nx;
      }
    } else {
      *out += ch;
    }
  }
  return false;  // unterminated string
}

}  // namespace

bool ledger_parse_line(const std::string& line, ParsedEvent* out) {
  std::string kind;
  if (!find_string(line, "kind", &kind)) return false;
  if (!event_kind_from_name(kind, &out->event.kind)) return false;
  double seq = 0, t_us = 0, node = -1, divisor = -1, a = 0, b = 0, c = 0;
  if (!find_number(line, "seq", &seq)) return false;
  find_number(line, "t_us", &t_us);
  find_number(line, "node", &node);
  find_number(line, "divisor", &divisor);
  find_number(line, "a", &a);
  find_number(line, "b", &b);
  find_number(line, "c", &c);
  out->event.seq = static_cast<std::uint64_t>(seq);
  out->event.t_ns = static_cast<std::int64_t>(std::llround(t_us * 1000.0));
  out->event.node = static_cast<std::int32_t>(node);
  out->event.divisor = static_cast<std::int32_t>(divisor);
  out->event.a = static_cast<std::int64_t>(a);
  out->event.b = static_cast<std::int64_t>(b);
  out->event.c = static_cast<std::int64_t>(c);
  out->event.reason = nullptr;
  out->reason.clear();
  find_string(line, "reason", &out->reason);
  return true;
}

// ---------------------------------------------------------------------
// Offline aggregation.

LedgerSummary summarize_events(const std::vector<ParsedEvent>& events) {
  LedgerSummary s;
  for (const ParsedEvent& pe : events) {
    const Event& e = pe.event;
    ++s.total_events;
    ++s.by_kind[event_kind_name(e.kind)];
    switch (e.kind) {
      case EventKind::SubstituteReject:
        ++s.rejections[pe.reason.empty() ? "(unspecified)" : pe.reason];
        break;
      case EventKind::PairPruned:
        ++s.prunes[pe.reason.empty() ? "(unspecified)" : pe.reason];
        break;
      case EventKind::SubstituteCommit: {
        LedgerSummary::DivisorAgg& d = s.divisors[e.divisor];
        ++d.commits;
        d.gain += e.a;
        break;
      }
      case EventKind::NodeUpdate: {
        LedgerSummary::NodeAgg& n = s.nodes[e.node];
        // A "new" event enters at `a` with b = 0 (node did not exist);
        // attribute from the creation size, not the phantom 0.
        if (n.updates == 0)
          n.first_literals = pe.reason == "new" ? e.a : e.b;
        n.last_literals = e.a;
        ++n.updates;
        break;
      }
      case EventKind::WireAdd: ++s.wires_added; break;
      case EventKind::WireRemove: ++s.wires_removed; break;
      case EventKind::RedundancyTest:
        ++s.redundancy_tests;
        if (e.a != 0) ++s.redundancy_untestable;
        break;
      default: break;
    }
  }
  return s;
}

LedgerSummary summarize_ledger(std::istream& in) {
  std::vector<ParsedEvent> events;
  std::uint64_t parse_errors = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ParsedEvent pe;
    if (ledger_parse_line(line, &pe)) events.push_back(std::move(pe));
    else ++parse_errors;
  }
  LedgerSummary s = summarize_events(events);
  s.parse_errors = parse_errors;
  return s;
}

std::string render_ledger_summary(const LedgerSummary& s, int top_n) {
  std::string out;
  char buf[256];
  auto line = [&out, &buf](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
  };
  line("ledger summary: %llu events",
       static_cast<unsigned long long>(s.total_events));
  if (s.parse_errors > 0)
    line(" (%llu malformed lines skipped)",
         static_cast<unsigned long long>(s.parse_errors));
  out += '\n';

  if (!s.by_kind.empty()) {
    out += "by kind\n";
    for (const auto& [kind, n] : s.by_kind)
      line("  %-24s %10llu\n", kind.c_str(),
           static_cast<unsigned long long>(n));
  }
  if (!s.rejections.empty()) {
    out += "rejection reasons\n";
    for (const auto& [reason, n] : s.rejections)
      line("  %-24s %10llu\n", reason.c_str(),
           static_cast<unsigned long long>(n));
  }
  if (!s.prunes.empty()) {
    out += "pairs pruned before evaluation\n";
    for (const auto& [reason, n] : s.prunes)
      line("  %-24s %10llu\n", reason.c_str(),
           static_cast<unsigned long long>(n));
  }

  if (!s.divisors.empty()) {
    out += "top divisors (by committed literal gain)\n";
    std::vector<std::pair<std::int32_t, LedgerSummary::DivisorAgg>> top(
        s.divisors.begin(), s.divisors.end());
    std::sort(top.begin(), top.end(), [](const auto& x, const auto& y) {
      if (x.second.gain != y.second.gain) return x.second.gain > y.second.gain;
      return x.first < y.first;
    });
    if (static_cast<int>(top.size()) > top_n)
      top.resize(static_cast<std::size_t>(top_n));
    for (const auto& [node, agg] : top)
      line("  node %-6d %4lld commit%s  gain %+lld\n", node,
           static_cast<long long>(agg.commits), agg.commits == 1 ? " " : "s",
           static_cast<long long>(agg.gain));
  }

  // Literal attribution: nodes whose recorded literal count moved, biggest
  // reduction first.
  std::vector<std::pair<std::int32_t, LedgerSummary::NodeAgg>> moved;
  for (const auto& [node, agg] : s.nodes)
    if (agg.first_literals != agg.last_literals) moved.push_back({node, agg});
  if (!moved.empty()) {
    out += "per-node literal attribution (node_update)\n";
    std::sort(moved.begin(), moved.end(), [](const auto& x, const auto& y) {
      const std::int64_t dx = x.second.last_literals - x.second.first_literals;
      const std::int64_t dy = y.second.last_literals - y.second.first_literals;
      if (dx != dy) return dx < dy;
      return x.first < y.first;
    });
    if (static_cast<int>(moved.size()) > top_n)
      moved.resize(static_cast<std::size_t>(top_n));
    for (const auto& [node, agg] : moved)
      line("  node %-6d %4lld -> %-4lld (%+lld)\n", node,
           static_cast<long long>(agg.first_literals),
           static_cast<long long>(agg.last_literals),
           static_cast<long long>(agg.last_literals - agg.first_literals));
  }

  if (s.wires_added + s.wires_removed + s.redundancy_tests > 0)
    line("wires: %+lld added, -%lld removed; redundancy tests: %lld "
         "(%lld untestable)\n",
         static_cast<long long>(s.wires_added),
         static_cast<long long>(s.wires_removed),
         static_cast<long long>(s.redundancy_tests),
         static_cast<long long>(s.redundancy_untestable));

  if (out.empty()) out = "(empty ledger)\n";
  return out;
}

}  // namespace rarsub::obs
