#pragma once
// Optimization flight recorder: a low-overhead, thread-safe, append-only
// log of typed events emitted by the optimization pipeline — substitution
// attempts/commits/rejections, division regions and core-divisor
// selections, wire additions/removals, redundancy tests, and per-node
// function updates. Each event carries a process-wide, strictly
// monotonically increasing sequence number, so a recorded run can be
// replayed step by step (see docs/OBSERVABILITY.md for the schema and the
// replay contract).
//
// Cost model (mirrors the counter macros in obs.hpp):
//   - Disabled (the default): OBS_EVENT is one function-local-static guard
//     check plus one relaxed atomic load; the Event payload expression is
//     not even evaluated.
//   - Enabled: one mutex acquisition per event. Events either stream as
//     JSON Lines to the file named by RARSUB_LEDGER=<file> (or
//     ledger_begin(path) / rarsub_cli --ledger), or accumulate in a
//     bounded in-memory ring buffer (ledger_begin_memory) that tests and
//     embedders can read back with ledger_events().

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace rarsub::obs {

enum class EventKind : std::uint8_t {
  SubstituteAttempt = 0,  ///< (f, d) pair entered evaluation past the guards
  SubstituteCommit,       ///< a rewrite was accepted and applied
  SubstituteReject,       ///< a candidate was dropped; `reason` says why
  NodeUpdate,             ///< a network node's function changed (replay unit)
  DivisionRegion,         ///< a Lemma-1 division region was built
  CoreDivisor,            ///< extended division selected a core divisor
  WireAdd,                ///< RAR added a candidate connection
  WireRemove,             ///< a redundant wire was deleted (or retracted)
  RedundancyTest,         ///< one stuck-at fault analysis ran
  PairPruned,             ///< the candidate filter skipped a (f, d) pair
};

/// Stable wire-format name ("substitute_commit", "wire_remove", …).
const char* event_kind_name(EventKind k);
/// Reverse lookup; returns false when `name` is not a known kind.
bool event_kind_from_name(const std::string& name, EventKind* out);

/// One ledger record. The payload fields a/b/c are kind-specific; the
/// schema table in docs/OBSERVABILITY.md documents every kind. `reason`
/// must point to a string with static storage duration (string literals at
/// the emit sites) or be null.
struct Event {
  std::uint64_t seq = 0;   ///< assigned at emit, strictly increasing
  std::int64_t t_ns = 0;   ///< now_ns() at emit (serialized relative, µs)
  EventKind kind = EventKind::SubstituteAttempt;
  std::int32_t node = -1;     ///< primary subject (node / gate id)
  std::int32_t divisor = -1;  ///< secondary subject (divisor node / pin)
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  const char* reason = nullptr;
};

namespace detail {
extern std::atomic<bool> g_ledger_on;
/// One-time RARSUB_LEDGER environment gate; always returns true (the value
/// only feeds a function-local static initializer).
bool ledger_env_once();
/// Record `e` (seq and t_ns are assigned inside). Call only when active.
void ledger_emit(Event e);
}  // namespace detail

/// Is the recorder on? First call anywhere also honours RARSUB_LEDGER.
inline bool ledger_active() {
  static const bool env_checked = detail::ledger_env_once();
  (void)env_checked;
  return detail::g_ledger_on.load(std::memory_order_relaxed);
}

/// Start streaming events to `path` as JSON Lines (one object per line).
/// Returns false if the file cannot be opened or a session is active.
bool ledger_begin(const std::string& path);

/// Start recording into an in-memory ring that keeps the most recent
/// `capacity` events. Returns false if a session is already active.
bool ledger_begin_memory(std::size_t capacity = 1 << 16);

/// Stop recording and flush/close the stream. Ring contents remain
/// readable via ledger_events() until the next ledger_begin*().
void ledger_end();

/// Copy of the ring contents in sequence order (memory sessions only;
/// empty for streaming sessions).
std::vector<Event> ledger_events();

/// Events emitted in the current/last session.
std::uint64_t ledger_emitted();

/// Events overwritten by ring wrap-around in the current/last session.
std::uint64_t ledger_dropped();

// ---------------------------------------------------------------------
// Wire format and offline analysis (ledger-summary, tests).

/// Serialize one event as a single JSON object (no trailing newline).
/// Timestamps are written relative to `t0_ns` in microseconds.
std::string event_to_jsonl(const Event& e, std::int64_t t0_ns = 0);

/// An event read back from a JSONL file; `reason` owns its storage (the
/// Event::reason pointer is null after parsing).
struct ParsedEvent {
  Event event;
  std::string reason;
};

/// Parse one JSONL line. Returns false on malformed input or unknown kind.
bool ledger_parse_line(const std::string& line, ParsedEvent* out);

/// Aggregates computed from an event stream, ready to render.
struct LedgerSummary {
  std::uint64_t total_events = 0;
  std::uint64_t parse_errors = 0;
  std::map<std::string, std::uint64_t> by_kind;
  /// SubstituteReject reasons -> count.
  std::map<std::string, std::uint64_t> rejections;
  /// PairPruned reasons (sig "views"/"support", "memo", "cycle") -> count.
  std::map<std::string, std::uint64_t> prunes;
  struct DivisorAgg {
    std::int64_t commits = 0;
    std::int64_t gain = 0;  ///< summed committed literal gain
  };
  std::map<std::int32_t, DivisorAgg> divisors;
  struct NodeAgg {
    std::int64_t first_literals = -1;  ///< b of the node's first update
    std::int64_t last_literals = -1;   ///< a of the node's last update
    std::int64_t updates = 0;
  };
  /// Per-node literal attribution from NodeUpdate events.
  std::map<std::int32_t, NodeAgg> nodes;
  std::int64_t wires_added = 0;
  std::int64_t wires_removed = 0;
  std::int64_t redundancy_tests = 0;
  std::int64_t redundancy_untestable = 0;
};

LedgerSummary summarize_events(const std::vector<ParsedEvent>& events);
/// Line-by-line summary of a JSONL stream (malformed lines are counted,
/// not fatal).
LedgerSummary summarize_ledger(std::istream& in);

/// Human-readable report: per-kind totals, rejection-reason histogram, top
/// divisors by committed gain, and per-node literal attribution.
std::string render_ledger_summary(const LedgerSummary& s, int top_n = 10);

}  // namespace rarsub::obs

// Emit one flight-recorder event. The arguments are a designated
// initializer list for obs::Event and are only evaluated while a ledger
// session is active:
//   OBS_EVENT(.kind = obs::EventKind::WireRemove, .node = g, .divisor = p,
//             .reason = "pin");
#define OBS_EVENT(...)                                                  \
  do {                                                                  \
    if (::rarsub::obs::ledger_active())                                 \
      ::rarsub::obs::detail::ledger_emit(                               \
          ::rarsub::obs::Event{__VA_ARGS__});                           \
  } while (0)
