#include "obs/memstat.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <new>
#include <unordered_map>

#include "obs/obs.hpp"

// The allocation hooks are compiled in by default; a build can opt out
// with -DRARSUB_MEMSTAT_HOOKS=0. Under ASan/TSan we always opt out: the
// sanitizer runtimes own the allocator and interposing operator new on
// top of them forfeits their new/delete mismatch checking for no data we
// need in those jobs.
#ifndef RARSUB_MEMSTAT_HOOKS
#define RARSUB_MEMSTAT_HOOKS 1
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#undef RARSUB_MEMSTAT_HOOKS
#define RARSUB_MEMSTAT_HOOKS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#undef RARSUB_MEMSTAT_HOOKS
#define RARSUB_MEMSTAT_HOOKS 0
#endif
#endif

namespace rarsub::obs {

// ---------------------------------------------------------------------
// Per-thread phase stack. Constant-initialized TLS storage: no dynamic
// construction, so it is safe to touch from inside operator new on any
// thread at any point of the process lifetime.
//
// The stack is also read by the sampling profiler's SIGPROF handler
// (obs/prof.cpp), which interrupts the owning thread at arbitrary points
// — including mid-push and mid-pop. Signal-handler visibility needs no
// inter-thread synchronization (the handler runs on the interrupted
// thread), only defined ordering against the compiler: `depth` is a
// relaxed atomic and a signal fence orders the frame store before the
// depth store, so the handler always observes a consistent prefix —
// every slot below the depth it reads holds a valid frame.

namespace {

struct PhaseTls {
  const char* stack[kMaxPhaseDepth];
  std::atomic<int> depth;
};

thread_local PhaseTls tl_phase;  // constant-initialized to zero

}  // namespace

// Out-of-line on purpose: every OBS_SCOPED_TIMER call site references
// these, which forces the linker to pull this object file — and with it
// the operator new/delete replacements below — into every binary that
// links the static library.
void phase_push(const char* name) noexcept {
  PhaseTls& t = tl_phase;
  const int d = t.depth.load(std::memory_order_relaxed);
  if (d < kMaxPhaseDepth) t.stack[d] = name;
  std::atomic_signal_fence(std::memory_order_release);
  t.depth.store(d + 1,  // overflow depths are counted so pops stay balanced
                std::memory_order_relaxed);
}

void phase_pop() noexcept {
  PhaseTls& t = tl_phase;
  const int d = t.depth.load(std::memory_order_relaxed);
  if (d > 0) t.depth.store(d - 1, std::memory_order_relaxed);
}

const char* current_phase() noexcept {
  const PhaseTls& t = tl_phase;
  const int d = t.depth.load(std::memory_order_relaxed);
  if (d <= 0) return nullptr;
  const int top = d <= kMaxPhaseDepth ? d : kMaxPhaseDepth;
  return t.stack[top - 1];
}

int phase_depth() noexcept {
  return tl_phase.depth.load(std::memory_order_relaxed);
}

// Async-signal-safe by construction: TLS reads and a fixed-size copy,
// no locks, no allocation. The profiler's signal handler calls this on
// whatever thread the kernel interrupted.
PhasePath capture_phase_path() noexcept {
  PhasePath p;
  const PhaseTls& t = tl_phase;
  int d = t.depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  if (d > kMaxPhaseDepth) d = kMaxPhaseDepth;
  p.depth = d;
  for (int i = 0; i < d; ++i) p.frames[i] = t.stack[i];
  return p;
}

// ---------------------------------------------------------------------
// Attribution table: a fixed open-addressed map from phase-name pointer
// to a slot of atomic tallies. Slot 0 collects allocations outside any
// phase (and the overflow case of more than kSlots-1 distinct names).
// Names are interned by literal address here; snapshot() re-merges
// duplicates by string in case the same literal lands at two addresses
// across translation units.

namespace {

struct PhaseSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::int64_t> allocs{0}, frees{0};
  std::atomic<std::int64_t> alloc_bytes{0}, freed_bytes{0};
  std::atomic<std::int64_t> live_bytes{0}, peak_live_bytes{0};
};

constexpr std::uint32_t kSlots = 257;  // slot 0 reserved for "(none)"
PhaseSlot g_slots[kSlots];

struct Totals {
  std::atomic<std::int64_t> allocs{0}, frees{0};
  std::atomic<std::int64_t> alloc_bytes{0}, freed_bytes{0};
  std::atomic<std::int64_t> live_bytes{0}, peak_live_bytes{0};
};
Totals g_tot;

std::atomic<bool> g_enabled{false};
// Once tracking has ever been on, deletes keep consulting the side table
// so pointers recorded while enabled are still accounted after disable.
std::atomic<bool> g_ever_enabled{false};

void bump_peak(std::atomic<std::int64_t>& peak, std::int64_t live) {
  std::int64_t cur = peak.load(std::memory_order_relaxed);
  while (live > cur &&
         !peak.compare_exchange_weak(cur, live, std::memory_order_relaxed)) {
  }
}

std::uint32_t slot_for(const char* name) {
  if (name == nullptr) return 0;
  const std::size_t h = std::hash<const void*>{}(name);
  for (std::size_t probe = 0; probe < 64; ++probe) {
    const std::uint32_t idx =
        1 + static_cast<std::uint32_t>((h + probe) % (kSlots - 1));
    PhaseSlot& s = g_slots[idx];
    const char* cur = s.name.load(std::memory_order_acquire);
    if (cur == name) return idx;
    if (cur == nullptr) {
      const char* expected = nullptr;
      if (s.name.compare_exchange_strong(expected, name,
                                         std::memory_order_acq_rel))
        return idx;
      if (expected == name) return idx;
    }
  }
  return 0;  // table full: fold into the unattributed slot
}

// Pointer -> (slot, size) side table, sharded to keep delete-side lock
// contention negligible. The shard array is allocated once and leaked so
// it outlives any static-destruction-order games; its own allocations
// (and the maps' node allocations) happen under tl_in_hook and are
// excluded from tracking.

struct Shard {
  std::mutex mu;
  std::unordered_map<void*, std::pair<std::uint32_t, std::size_t>> live;
};

constexpr std::uint32_t kShards = 64;

Shard* shards() {
  static Shard* s = new Shard[kShards];
  return s;
}

Shard& shard_for(void* p) {
  const std::size_t h = std::hash<void*>{}(p);
  return shards()[(h >> 4) % kShards];
}

thread_local bool tl_in_hook = false;

void record_alloc(void* p, std::size_t size) {
  const std::uint32_t slot = slot_for(current_phase());
  {
    Shard& sh = shard_for(p);
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.live[p] = {slot, size};
  }
  const std::int64_t sz = static_cast<std::int64_t>(size);
  PhaseSlot& s = g_slots[slot];
  s.allocs.fetch_add(1, std::memory_order_relaxed);
  s.alloc_bytes.fetch_add(sz, std::memory_order_relaxed);
  bump_peak(s.peak_live_bytes,
            s.live_bytes.fetch_add(sz, std::memory_order_relaxed) + sz);
  g_tot.allocs.fetch_add(1, std::memory_order_relaxed);
  g_tot.alloc_bytes.fetch_add(sz, std::memory_order_relaxed);
  bump_peak(g_tot.peak_live_bytes,
            g_tot.live_bytes.fetch_add(sz, std::memory_order_relaxed) + sz);
}

void record_free(void* p) {
  std::uint32_t slot;
  std::size_t size;
  {
    Shard& sh = shard_for(p);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.live.find(p);
    if (it == sh.live.end()) return;  // allocated before tracking began
    slot = it->second.first;
    size = it->second.second;
    sh.live.erase(it);
  }
  const std::int64_t sz = static_cast<std::int64_t>(size);
  PhaseSlot& s = g_slots[slot];
  s.frees.fetch_add(1, std::memory_order_relaxed);
  s.freed_bytes.fetch_add(sz, std::memory_order_relaxed);
  s.live_bytes.fetch_sub(sz, std::memory_order_relaxed);
  g_tot.frees.fetch_add(1, std::memory_order_relaxed);
  g_tot.freed_bytes.fetch_add(sz, std::memory_order_relaxed);
  g_tot.live_bytes.fetch_sub(sz, std::memory_order_relaxed);
}

}  // namespace

// ---------------------------------------------------------------------
// Control.

bool memstat_available() noexcept { return RARSUB_MEMSTAT_HOOKS != 0; }

bool memstat_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

bool memstat_enable() {
  if (!memstat_available()) return false;
  shards();  // materialize the side table before the hooks consult it
  g_ever_enabled.store(true, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
  return true;
}

void memstat_disable() { g_enabled.store(false, std::memory_order_relaxed); }

void memstat_reset() {
  auto window = [](auto& s) {
    s.allocs.store(0, std::memory_order_relaxed);
    s.frees.store(0, std::memory_order_relaxed);
    s.alloc_bytes.store(0, std::memory_order_relaxed);
    s.freed_bytes.store(0, std::memory_order_relaxed);
    // Live bytes carry across the window boundary; the high-water mark
    // restarts from the current level.
    s.peak_live_bytes.store(s.live_bytes.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
  };
  for (std::uint32_t i = 0; i < kSlots; ++i) window(g_slots[i]);
  window(g_tot);
}

namespace {

// Latch the environment opt-in before main so even static-initialization
// allocations of later TUs are in scope. Defined after all tracker state
// (this TU's objects construct in order of definition).
const bool g_env_latch = [] {
  if (env_flag("RARSUB_MEMSTAT")) memstat_enable();
  return true;
}();

}  // namespace

// ---------------------------------------------------------------------
// /proc sampler.

namespace {

std::int64_t read_status_kb(const char* key) {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  const std::size_t klen = std::strlen(key);
  char line[256];
  std::int64_t out = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, klen) == 0) {
      out = std::atoll(line + klen);
      break;
    }
  }
  std::fclose(f);
  return out;
#else
  (void)key;
  return -1;
#endif
}

}  // namespace

std::int64_t read_rss_kb() { return read_status_kb("VmRSS:"); }
std::int64_t read_peak_rss_kb() { return read_status_kb("VmHWM:"); }

bool try_reset_peak_rss() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
#else
  return false;
#endif
}

// ---------------------------------------------------------------------
// Snapshot / render.

MemSnapshot memstat_snapshot() {
  MemSnapshot m;
  m.enabled = memstat_enabled();
  m.rss_kb = read_rss_kb();
  m.peak_rss_kb = read_peak_rss_kb();
  if (!g_ever_enabled.load(std::memory_order_relaxed)) return m;

  m.allocs = g_tot.allocs.load(std::memory_order_relaxed);
  m.frees = g_tot.frees.load(std::memory_order_relaxed);
  m.alloc_bytes = g_tot.alloc_bytes.load(std::memory_order_relaxed);
  m.freed_bytes = g_tot.freed_bytes.load(std::memory_order_relaxed);
  m.live_bytes = g_tot.live_bytes.load(std::memory_order_relaxed);
  m.peak_live_bytes = g_tot.peak_live_bytes.load(std::memory_order_relaxed);

  // Merge slots by phase *string*: the same literal can be interned at
  // two addresses across translation units.
  std::map<std::string, MemPhaseSnap> merged;
  for (std::uint32_t i = 0; i < kSlots; ++i) {
    const PhaseSlot& s = g_slots[i];
    const std::int64_t allocs = s.allocs.load(std::memory_order_relaxed);
    const std::int64_t frees = s.frees.load(std::memory_order_relaxed);
    if (allocs == 0 && frees == 0) continue;
    const char* name = s.name.load(std::memory_order_acquire);
    MemPhaseSnap& p = merged[i == 0 || name == nullptr ? "(none)" : name];
    p.allocs += allocs;
    p.frees += frees;
    p.alloc_bytes += s.alloc_bytes.load(std::memory_order_relaxed);
    p.freed_bytes += s.freed_bytes.load(std::memory_order_relaxed);
    p.live_bytes += s.live_bytes.load(std::memory_order_relaxed);
    p.peak_live_bytes += s.peak_live_bytes.load(std::memory_order_relaxed);
  }
  m.phases.reserve(merged.size());
  for (auto& [name, p] : merged) {
    p.phase = name;
    m.phases.push_back(std::move(p));
  }
  std::sort(m.phases.begin(), m.phases.end(),
            [](const MemPhaseSnap& a, const MemPhaseSnap& b) {
              if (a.alloc_bytes != b.alloc_bytes)
                return a.alloc_bytes > b.alloc_bytes;
              return a.phase < b.phase;
            });
  return m;
}

std::string render_mem_summary() {
  const MemSnapshot m = memstat_snapshot();
  char buf[256];
  std::string out = "mem:";
  if (m.peak_rss_kb >= 0) {
    std::snprintf(buf, sizeof buf, " peak_rss=%lld kB rss=%lld kB",
                  static_cast<long long>(m.peak_rss_kb),
                  static_cast<long long>(m.rss_kb));
    out += buf;
  } else {
    out += " rss=unavailable";
  }
  if (!m.enabled) {
    out += "  (allocation tracking off; RARSUB_MEMSTAT=1 or --memstat)";
    return out;
  }
  std::snprintf(buf, sizeof buf,
                "  allocs=%lld alloc_bytes=%lld peak_live=%lld",
                static_cast<long long>(m.allocs),
                static_cast<long long>(m.alloc_bytes),
                static_cast<long long>(m.peak_live_bytes));
  out += buf;
  int shown = 0;
  for (const MemPhaseSnap& p : m.phases) {
    if (p.phase == "(none)" || p.alloc_bytes <= 0) continue;
    out += shown == 0 ? "  top: " : ", ";
    const double pct =
        m.alloc_bytes > 0
            ? 100.0 * static_cast<double>(p.alloc_bytes) /
                  static_cast<double>(m.alloc_bytes)
            : 0.0;
    std::snprintf(buf, sizeof buf, "%s %.1f%%", p.phase.c_str(), pct);
    out += buf;
    if (++shown == 3) break;
  }
  return out;
}

}  // namespace rarsub::obs

// ---------------------------------------------------------------------
// Global operator new/delete replacements. Every form forwards to
// malloc/posix_memalign + free so any new/delete pairing is consistent;
// tracking adds one relaxed atomic load when disabled and a sharded map
// update when enabled. tl_in_hook excludes the tracker's own bookkeeping
// allocations (and makes reentrancy impossible).

#if RARSUB_MEMSTAT_HOOKS

namespace {

void* hooked_alloc(std::size_t size, std::size_t align) noexcept {
  void* p = nullptr;
  if (align > alignof(std::max_align_t)) {
    if (posix_memalign(&p, align, size) != 0) p = nullptr;
  } else {
    p = std::malloc(size);
  }
  if (p != nullptr &&
      rarsub::obs::g_enabled.load(std::memory_order_relaxed) &&
      !rarsub::obs::tl_in_hook) {
    rarsub::obs::tl_in_hook = true;
    rarsub::obs::record_alloc(p, size);
    rarsub::obs::tl_in_hook = false;
  }
  return p;
}

void hooked_free(void* p) noexcept {
  if (p == nullptr) return;
  if (rarsub::obs::g_ever_enabled.load(std::memory_order_relaxed) &&
      !rarsub::obs::tl_in_hook) {
    rarsub::obs::tl_in_hook = true;
    rarsub::obs::record_free(p);  // erases before free: no reuse race
    rarsub::obs::tl_in_hook = false;
  }
  std::free(p);
}

void* throwing_alloc(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  for (;;) {
    void* p = hooked_alloc(size, align);
    if (p != nullptr) return p;
    std::new_handler h = std::get_new_handler();
    if (h == nullptr) throw std::bad_alloc();
    h();
  }
}

}  // namespace

void* operator new(std::size_t size) { return throwing_alloc(size, 0); }
void* operator new[](std::size_t size) { return throwing_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t al) {
  return throwing_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return throwing_alloc(size, static_cast<std::size_t>(al));
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return hooked_alloc(size != 0 ? size : 1, 0);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return hooked_alloc(size != 0 ? size : 1, 0);
}
void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return hooked_alloc(size != 0 ? size : 1, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return hooked_alloc(size != 0 ? size : 1, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { hooked_free(p); }
void operator delete[](void* p) noexcept { hooked_free(p); }
void operator delete(void* p, std::size_t) noexcept { hooked_free(p); }
void operator delete[](void* p, std::size_t) noexcept { hooked_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { hooked_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { hooked_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  hooked_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  hooked_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  hooked_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  hooked_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  hooked_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  hooked_free(p);
}

#endif  // RARSUB_MEMSTAT_HOOKS
