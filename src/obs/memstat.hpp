#pragma once
// Memory observability: an opt-in allocation tracker plus a /proc-based
// RSS sampler.
//
// The tracker replaces the global operator new/delete (compiled in unless
// the build sets RARSUB_MEMSTAT_HOOKS=0) and attributes allocation counts,
// bytes, live bytes and high-water marks to the innermost phase on the
// calling thread's phase stack (obs.hpp: every OBS_SCOPED_TIMER and
// OBS_PHASE marks its extent there, per thread, so worker pools attribute
// to their own phases). Tracking is off by default: the hooks then cost a
// single relaxed atomic load per allocation. It turns on via the
// RARSUB_MEMSTAT environment variable (latched before main), the
// `rarsub_cli --memstat` flag, or memstat_enable().
//
// Accounting when on: operator new records the pointer's size and phase
// slot in a sharded side table; operator delete looks the pointer up and
// credits the *allocating* phase, so per-phase live bytes and high-water
// marks stay truthful no matter which thread or phase frees. Allocations
// made by the tracker's own bookkeeping are excluded through a TLS
// reentrancy guard. The tracker never changes allocation behavior —
// results with hooks on and off are byte-identical (MemstatTest).
//
// The RSS sampler (read_rss_kb / read_peak_rss_kb) is independent of the
// hooks and always available on Linux: it parses VmRSS/VmHWM out of
// /proc/self/status, cheap enough to call per bench method.

#include <cstdint>
#include <string>
#include <vector>

namespace rarsub::obs {

// ---------------------------------------------------------------------
// Allocation tracker control. Everything is safe to call whether or not
// the hooks are compiled in; enable simply fails when they are not.

/// True when the operator new/delete hooks are compiled into this binary
/// (build option RARSUB_MEMSTAT_HOOKS, default on).
bool memstat_available() noexcept;

/// Is allocation tracking currently recording?
bool memstat_enabled() noexcept;

/// Start tracking. Returns false (and stays off) when the hooks are
/// compiled out. Also triggered before main by env RARSUB_MEMSTAT=1.
bool memstat_enable();

/// Stop tracking. Frees of still-live tracked pointers keep being
/// accounted so live-byte attribution stays truthful.
void memstat_disable();

/// Zero every per-phase and total counter in place; live bytes carry over
/// and the high-water marks restart from the current live level. Called by
/// obs::reset() so bench per-method windows isolate memory too.
void memstat_reset();

// ---------------------------------------------------------------------
// Snapshot.

struct MemPhaseSnap {
  std::string phase;  // "(none)" for allocations outside any phase
  std::int64_t allocs = 0, frees = 0;
  std::int64_t alloc_bytes = 0, freed_bytes = 0;
  std::int64_t live_bytes = 0, peak_live_bytes = 0;
};

struct MemSnapshot {
  bool enabled = false;  // was the tracker recording at snapshot time?
  std::int64_t allocs = 0, frees = 0;
  std::int64_t alloc_bytes = 0, freed_bytes = 0;
  std::int64_t live_bytes = 0, peak_live_bytes = 0;
  std::int64_t rss_kb = -1, peak_rss_kb = -1;  // -1 when /proc is absent
  /// Per-phase attribution, sorted by alloc_bytes descending.
  std::vector<MemPhaseSnap> phases;
};

/// Consistent-enough copy of the tracker state plus an RSS sample.
/// Relaxed reads: totals may be a few allocations stale under concurrency,
/// which is fine for statistics.
MemSnapshot memstat_snapshot();

// ---------------------------------------------------------------------
// /proc sampler (Linux; -1 elsewhere). Peak RSS (VmHWM) is monotonic for
// the process; try_reset_peak_rss() arms per-window peaks where the
// kernel allows it (writing "5" to /proc/self/clear_refs).

std::int64_t read_rss_kb();
std::int64_t read_peak_rss_kb();
bool try_reset_peak_rss();

/// One-line human summary for `rarsub_cli --stats`: peak RSS always (from
/// /proc), plus total allocs and the top-3 allocating phases when the
/// tracker is recording.
std::string render_mem_summary();

}  // namespace rarsub::obs
