#include "obs/obs.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

#include "mem/arena.hpp"
#include "obs/json.hpp"
#include "obs/memstat.hpp"
#include "obs/prof.hpp"

namespace rarsub::obs {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool env_flag(const char* name) noexcept {
  const char* e = std::getenv(name);
  return e != nullptr && *e != '\0' && !(e[0] == '0' && e[1] == '\0');
}

const char* env_path(const char* name) noexcept {
  const char* e = std::getenv(name);
  return (e != nullptr && *e != '\0') ? e : nullptr;
}

void Distribution::record(std::int64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Distribution::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

void TimerStat::record(std::int64_t ns) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::int64_t cur = max_ns_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

void TimerStat::reset() {
  calls_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

namespace detail {
std::atomic<bool> g_trace_on{false};
}

namespace {

// std::map keeps node addresses stable across insertions, so the
// references handed out by counter()/distribution()/timer() (and cached in
// the macros' function-local statics) survive any later registration.
struct Registry {
  std::mutex mu;
  std::map<std::string, Counter> counters;
  std::map<std::string, Distribution> distributions;
  std::map<std::string, TimerStat> timers;
};

Registry& registry() {
  static Registry r;
  return r;
}

struct TraceSession {
  std::mutex mu;
  std::FILE* file = nullptr;
  bool first_event = true;
  std::int64_t t0_ns = 0;
  std::int64_t min_dur_ns = 0;
};

TraceSession& trace_session() {
  static TraceSession t;
  return t;
}

// One-time environment gate: RARSUB_TRACE=<file> turns tracing on for the
// whole process without touching any call site.
void env_init() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* path = env_path("RARSUB_TRACE")) trace_begin(path);
  });
}

}  // namespace

Counter& counter(const std::string& name) {
  env_init();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.counters[name];
}

Distribution& distribution(const std::string& name) {
  env_init();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.distributions[name];
}

TimerStat& timer(const std::string& name) {
  env_init();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.timers[name];
}

bool trace_begin(const std::string& path) {
  TraceSession& t = trace_session();
  std::lock_guard<std::mutex> lock(t.mu);
  if (t.file != nullptr) return false;
  t.file = std::fopen(path.c_str(), "w");
  if (t.file == nullptr) return false;
  t.first_event = true;
  t.t0_ns = now_ns();
  t.min_dur_ns = 0;
  if (const char* min_us = std::getenv("RARSUB_TRACE_MIN_US"))
    t.min_dur_ns = std::atoll(min_us) * 1000;
  std::fputs("{\"traceEvents\":[", t.file);
  detail::g_trace_on.store(true, std::memory_order_relaxed);
  // Close the JSON even if the process exits without calling trace_end().
  static bool at_exit_registered = false;
  if (!at_exit_registered) {
    at_exit_registered = true;
    std::atexit([] { trace_end(); });
  }
  return true;
}

void trace_end() {
  TraceSession& t = trace_session();
  std::lock_guard<std::mutex> lock(t.mu);
  if (t.file == nullptr) return;
  detail::g_trace_on.store(false, std::memory_order_relaxed);
  std::fputs("]}\n", t.file);
  std::fclose(t.file);
  t.file = nullptr;
}

void trace_emit(const char* name, std::int64_t start_ns, std::int64_t dur_ns) {
  TraceSession& t = trace_session();
  std::lock_guard<std::mutex> lock(t.mu);
  if (t.file == nullptr || dur_ns < t.min_dur_ns) return;
  const double ts_us = static_cast<double>(start_ns - t.t0_ns) / 1000.0;
  const double dur_us = static_cast<double>(dur_ns) / 1000.0;
  const unsigned tid = static_cast<unsigned>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffu);
  std::fprintf(t.file,
               "%s\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
               "\"pid\":1,\"tid\":%u}",
               t.first_event ? "" : ",", json_escape(name).c_str(), ts_us,
               dur_us, tid);
  t.first_event = false;
}

std::int64_t Snapshot::counter(const std::string& name) const {
  for (const CounterSnap& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

std::int64_t Snapshot::timer_calls(const std::string& name) const {
  for (const TimerSnap& t : timers)
    if (t.name == name) return t.calls;
  return 0;
}

namespace {

// Refresh the mem.* counters from the allocation tracker / RSS sampler so
// every snapshot (and thus every RARSUB_REPORT "obs" object) carries the
// memory picture. Stale mem.* entries are cleared first because these are
// gauges republished wholesale, not monotonic counts. Must run before
// snapshot() takes the registry lock — counter() locks it per call.
void publish_memstat() {
  const MemSnapshot m = memstat_snapshot();
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto& [name, c] : r.counters)
      if (name.rfind("mem.", 0) == 0) c.reset();
  }
  auto set = [](const std::string& name, std::int64_t v) {
    if (v <= 0) return;
    Counter& c = counter(name);
    c.reset();
    c.add(v);
  };
  set("mem.rss_kb", m.rss_kb);
  set("mem.peak_rss_kb", m.peak_rss_kb);
  if (!m.enabled) return;
  set("mem.allocs", m.allocs);
  set("mem.frees", m.frees);
  set("mem.alloc_bytes", m.alloc_bytes);
  set("mem.freed_bytes", m.freed_bytes);
  set("mem.live_bytes", m.live_bytes);
  set("mem.peak_live_bytes", m.peak_live_bytes);
  for (const MemPhaseSnap& p : m.phases) {
    set("mem.phase." + p.phase + ".allocs", p.allocs);
    set("mem.phase." + p.phase + ".alloc_bytes", p.alloc_bytes);
  }
}

// Same republish-wholesale contract for the sampling profiler: prof.*
// gauges describe the live window at snapshot time. Published only once
// the profiler has recorded something, so profiling off costs nothing
// and adds no metric noise.
void publish_prof() {
  const ProfSnapshot p = prof_snapshot();
  if (!p.enabled && p.samples == 0) return;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto& [name, c] : r.counters)
      if (name.rfind("prof.", 0) == 0) c.reset();
  }
  auto set = [](const std::string& name, std::int64_t v) {
    if (v <= 0) return;
    Counter& c = counter(name);
    c.reset();
    c.add(v);
  };
  set("prof.samples", p.samples);
  set("prof.samples_dropped", p.dropped);
  set("prof.interval_us", p.interval_us);
  for (const ProfPhaseSelf& s : prof_self_phases(p))
    set("prof.phase." + s.phase + ".samples", s.samples);
}

// Arena gauges ride in the same "mem." namespace, so this must run AFTER
// publish_memstat() — which clears every mem.* counter wholesale — and
// republishes from the live process-wide arena aggregates.
void publish_arena() {
  // Latched off (RARSUB_ARENA=0 / --no-arena): publish nothing. Scratch
  // frames still open and close — counting resets against an empty arena
  // — but reports must stay free of mem.arena.* so arena-off runs remain
  // comparable to pre-arena baselines (docs/OBSERVABILITY.md).
  if (!mem::arena_enabled()) return;
  const mem::ArenaStats a = mem::arena_stats();
  auto set = [](const std::string& name, std::int64_t v) {
    if (v <= 0) return;
    Counter& c = counter(name);
    c.reset();
    c.add(v);
  };
  set("mem.arena.chunks", static_cast<std::int64_t>(a.chunks));
  set("mem.arena.bytes_reserved", static_cast<std::int64_t>(a.bytes_reserved));
  set("mem.arena.high_water", static_cast<std::int64_t>(a.high_water));
  set("mem.arena.resets", static_cast<std::int64_t>(a.resets));
}

}  // namespace

Snapshot snapshot() {
  publish_memstat();
  publish_arena();
  publish_prof();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot s;
  for (const auto& [name, c] : r.counters)
    if (c.value() != 0) s.counters.push_back(CounterSnap{name, c.value()});
  for (const auto& [name, d] : r.distributions)
    if (d.count() != 0)
      s.distributions.push_back(
          DistSnap{name, d.count(), d.sum(), d.min(), d.max()});
  for (const auto& [name, t] : r.timers)
    if (t.calls() != 0)
      s.timers.push_back(TimerSnap{name, t.calls(), t.total_ns(), t.max_ns()});
  return s;
}

void reset() {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto& [name, c] : r.counters) c.reset();
    for (auto& [name, d] : r.distributions) d.reset();
    for (auto& [name, t] : r.timers) t.reset();
  }
  // Open a fresh allocation-attribution window alongside the instruments
  // so per-method bench windows isolate memory the same way they isolate
  // counters. The profiler folds its window into the whole-run
  // accumulation (the folded output must still span the process).
  memstat_reset();
  mem::arena_stats_reset();
  prof_reset();
}

std::string render_text(const Snapshot& s) {
  std::string out;
  char buf[256];
  auto line = [&out, &buf](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
  };
  if (!s.counters.empty()) {
    out += "counters\n";
    for (const CounterSnap& c : s.counters)
      line("  %-40s %12lld\n", c.name.c_str(),
           static_cast<long long>(c.value));
  }
  if (!s.distributions.empty()) {
    out += "distributions                              count      avg"
           "      min      max\n";
    for (const DistSnap& d : s.distributions)
      line("  %-40s %8lld %8.1f %8lld %8lld\n", d.name.c_str(),
           static_cast<long long>(d.count),
           static_cast<double>(d.sum) / static_cast<double>(d.count),
           static_cast<long long>(d.min), static_cast<long long>(d.max));
  }
  if (!s.timers.empty()) {
    out += "timers                                     calls total_ms"
           "   avg_ms   max_ms\n";
    for (const TimerSnap& t : s.timers)
      line("  %-40s %8lld %8.1f %8.3f %8.3f\n", t.name.c_str(),
           static_cast<long long>(t.calls),
           static_cast<double>(t.total_ns) / 1e6,
           static_cast<double>(t.total_ns) / 1e6 /
               static_cast<double>(t.calls),
           static_cast<double>(t.max_ns) / 1e6);
  }
  if (out.empty()) out = "(no observability data)\n";
  return out;
}

void snapshot_to_json(JsonWriter& w, const Snapshot& s) {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const CounterSnap& c : s.counters) {
    w.key(c.name);
    w.value(c.value);
  }
  w.end_object();
  w.key("distributions");
  w.begin_object();
  for (const DistSnap& d : s.distributions) {
    w.key(d.name);
    w.begin_object();
    w.key("count");
    w.value(d.count);
    w.key("sum");
    w.value(d.sum);
    w.key("min");
    w.value(d.min);
    w.key("max");
    w.value(d.max);
    w.end_object();
  }
  w.end_object();
  w.key("timers");
  w.begin_object();
  for (const TimerSnap& t : s.timers) {
    w.key(t.name);
    w.begin_object();
    w.key("calls");
    w.value(t.calls);
    w.key("total_ms");
    w.value(static_cast<double>(t.total_ns) / 1e6);
    w.key("max_ms");
    w.value(static_cast<double>(t.max_ns) / 1e6);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string render_json(const Snapshot& s) {
  std::string out;
  JsonWriter w(&out);
  snapshot_to_json(w, s);
  out += '\n';
  return out;
}

}  // namespace rarsub::obs
