#pragma once
// Process-wide observability: named monotonic counters, value
// distributions, per-phase scoped timers, an optional Chrome trace-event
// stream, and a snapshot/reset API with text and JSON renderers.
//
// The instruments are cheap enough to leave compiled in everywhere:
//   - OBS_COUNT / OBS_VALUE cost one relaxed atomic RMW per hit; the
//     name-to-handle lookup happens once per call site through a
//     function-local static reference (registry entries are never
//     destroyed or moved, so cached references stay valid across reset()).
//   - OBS_SCOPED_TIMER adds two steady_clock reads per scope.
//   - Tracing is off unless RARSUB_TRACE=<file> is set in the environment
//     (checked once) or trace_begin() is called; when off, a scoped timer
//     pays a single relaxed atomic load on top of the aggregation.
//
// There are no locks on any hot path: the registry mutex guards only
// first-use handle resolution, snapshot() and reset(); the trace mutex is
// taken only while tracing is enabled.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rarsub::obs {

/// Monotonic (steady_clock) nanoseconds — the one timing source every
/// bench and instrument shares.
std::int64_t now_ns();

// ---------------------------------------------------------------------
// Environment latches. Every RARSUB_* opt-in shares one semantics
// instead of each translation unit hand-rolling its getenv dance:
//   env_flag  — set, non-empty, and not "0"  (RARSUB_MEMSTAT=1,
//               RARSUB_HWC_OFF=1, RARSUB_SMALL=1, RARSUB_NO_PRUNE=1, …)
//   env_path  — the value when set and non-empty, else nullptr
//               (RARSUB_TRACE=<file>, RARSUB_PROF=<file>, …)
// Pure reads of the process environment: no locks, no allocation, safe
// from pre-main latches. The pointer env_path returns is the live
// environment storage — copy it if it must outlive later setenv calls.

bool env_flag(const char* name) noexcept;
const char* env_path(const char* name) noexcept;

/// Simple stopwatch over now_ns(); replaces the per-bench ad-hoc chrono
/// code.
class Timer {
 public:
  Timer() : start_ns_(now_ns()) {}
  void restart() { start_ns_ = now_ns(); }
  std::int64_t elapsed_ns() const { return now_ns() - start_ns_; }
  double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

 private:
  std::int64_t start_ns_;
};

// ---------------------------------------------------------------------
// Instruments. All operations are thread-safe; reads are relaxed and may
// be slightly stale under concurrency, which is fine for statistics.

class Counter {
 public:
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Value stream summarized as count/sum/min/max.
class Distribution {
 public:
  void record(std::int64_t v);
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t min() const { return min_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{INT64_MIN};
};

/// Per-phase wall-time aggregate fed by ScopedTimer.
class TimerStat {
 public:
  void record(std::int64_t ns);
  std::int64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  std::int64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::int64_t max_ns() const { return max_ns_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::atomic<std::int64_t> calls_{0};
  std::atomic<std::int64_t> total_ns_{0};
  std::atomic<std::int64_t> max_ns_{0};
};

/// Resolve a named instrument, creating it on first use. References stay
/// valid for the life of the process (entries are reset in place, never
/// erased).
Counter& counter(const std::string& name);
Distribution& distribution(const std::string& name);
TimerStat& timer(const std::string& name);

// ---------------------------------------------------------------------
// Phase stack: a per-thread stack of phase names that the allocation
// tracker (obs/memstat.hpp) samples to attribute bytes to phases. Every
// OBS_SCOPED_TIMER maintains it automatically; OBS_PHASE marks an extent
// without paying for a clock. `name` must outlive the scope (string
// literals in practice). Per-thread by construction, so worker pools
// attribute to their own phases — a worker that should inherit its
// spawner's phase opens a PhaseScope on the captured current_phase().
// (Defined in memstat.cpp: referencing them from the timer macros pulls
// the allocation hooks into every binary that links the library.)

void phase_push(const char* name) noexcept;
void phase_pop() noexcept;
/// Innermost phase on this thread, or nullptr outside any phase.
const char* current_phase() noexcept;
int phase_depth() noexcept;

/// Stack capacity. Deeper nesting is counted (pops stay balanced) but the
/// frames beyond this depth are not recorded.
inline constexpr int kMaxPhaseDepth = 64;

/// A copied phase stack, outermost frame first. The frames are the same
/// interned `const char*` pointers the stack holds, so a capture is valid
/// as long as the names are (string literals in practice).
struct PhasePath {
  const char* frames[kMaxPhaseDepth];
  int depth = 0;
};

/// Copy the calling thread's phase stack (clamped to kMaxPhaseDepth).
PhasePath capture_phase_path() noexcept;

/// RAII re-open of a captured phase path on another thread: pushes every
/// frame outermost-first so the sampling profiler and the allocation
/// tracker attribute the worker's activity to the *same full path* (and
/// the same innermost phase) as the spawner. An empty path is a no-op.
class PhasePathScope {
 public:
  explicit PhasePathScope(const PhasePath& path) : depth_(path.depth) {
    for (int i = 0; i < depth_; ++i) phase_push(path.frames[i]);
  }
  ~PhasePathScope() {
    for (int i = 0; i < depth_; ++i) phase_pop();
  }
  PhasePathScope(const PhasePathScope&) = delete;
  PhasePathScope& operator=(const PhasePathScope&) = delete;

 private:
  int depth_;
};

/// RAII phase marker; a nullptr name is a no-op, so a captured
/// current_phase() can be re-opened on another thread unconditionally.
class PhaseScope {
 public:
  explicit PhaseScope(const char* name) : active_(name != nullptr) {
    if (active_) phase_push(name);
  }
  ~PhaseScope() {
    if (active_) phase_pop();
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  bool active_;
};

// ---------------------------------------------------------------------
// Tracing: Chrome trace-event JSON (load the file in chrome://tracing or
// https://ui.perfetto.dev). Every OBS_SCOPED_TIMER scope becomes one
// complete ("ph":"X") event; nesting renders hierarchically per thread.

namespace detail {
extern std::atomic<bool> g_trace_on;
}

inline bool trace_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// Start writing trace events to `path`. Returns false if the file cannot
/// be opened or a trace is already active. Also triggered automatically by
/// the RARSUB_TRACE environment variable on first instrument use;
/// RARSUB_TRACE_MIN_US=<n> drops events shorter than n microseconds.
bool trace_begin(const std::string& path);

/// Finalize and close the trace file (also registered via atexit so an
/// env-var-initiated trace is always well-formed JSON).
void trace_end();

/// Emit one complete event (no-op unless tracing).
void trace_emit(const char* name, std::int64_t start_ns, std::int64_t dur_ns);

/// RAII phase timer: aggregates into a TimerStat and emits a trace event
/// when tracing is on. Use via OBS_SCOPED_TIMER.
class ScopedTimer {
 public:
  ScopedTimer(TimerStat& stat, const char* name)
      : stat_(stat), name_(name), start_ns_(now_ns()) {
    phase_push(name);
  }
  ~ScopedTimer() {
    phase_pop();
    const std::int64_t dur = now_ns() - start_ns_;
    stat_.record(dur);
    if (trace_enabled()) trace_emit(name_, start_ns_, dur);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerStat& stat_;
  const char* name_;
  std::int64_t start_ns_;
};

// ---------------------------------------------------------------------
// Snapshot / reset / render.

struct CounterSnap {
  std::string name;
  std::int64_t value = 0;
};
struct DistSnap {
  std::string name;
  std::int64_t count = 0, sum = 0, min = 0, max = 0;
};
struct TimerSnap {
  std::string name;
  std::int64_t calls = 0, total_ns = 0, max_ns = 0;
};

struct Snapshot {
  std::vector<CounterSnap> counters;
  std::vector<DistSnap> distributions;
  std::vector<TimerSnap> timers;

  /// Value of a counter in this snapshot; 0 when absent.
  std::int64_t counter(const std::string& name) const;
  /// Calls of a timer in this snapshot; 0 when absent.
  std::int64_t timer_calls(const std::string& name) const;
};

/// Copy out every instrument with activity (zero-valued entries are
/// skipped), sorted by name.
Snapshot snapshot();

/// Zero every instrument in place. Handles cached by the macros remain
/// valid.
void reset();

/// Human-readable table (counters, distributions, timers).
std::string render_text(const Snapshot& s);

/// The snapshot as a JSON object string:
///   {"counters":{..},"distributions":{..},"timers":{..}}
std::string render_json(const Snapshot& s);

class JsonWriter;  // obs/json.hpp
/// Append the snapshot object to an in-progress JsonWriter (for embedding
/// into larger reports).
void snapshot_to_json(JsonWriter& w, const Snapshot& s);

}  // namespace rarsub::obs

// ---------------------------------------------------------------------
// Instrumentation macros. `name` must be a string literal (or otherwise
// stable for the call site's lifetime): the handle is resolved once.

#define OBS_COUNT(name, n)                                              \
  do {                                                                  \
    static ::rarsub::obs::Counter& obs_counter_ =                       \
        ::rarsub::obs::counter(name);                                   \
    obs_counter_.add(static_cast<std::int64_t>(n));                     \
  } while (0)

#define OBS_VALUE(name, v)                                              \
  do {                                                                  \
    static ::rarsub::obs::Distribution& obs_dist_ =                     \
        ::rarsub::obs::distribution(name);                              \
    obs_dist_.record(static_cast<std::int64_t>(v));                     \
  } while (0)

#define OBS_SCOPED_TIMER(name) OBS_SCOPED_TIMER_IMPL_(name, __COUNTER__)
#define OBS_SCOPED_TIMER_IMPL_(name, id) OBS_SCOPED_TIMER_IMPL2_(name, id)
#define OBS_SCOPED_TIMER_IMPL2_(name, id)                               \
  static ::rarsub::obs::TimerStat& obs_timer_stat_##id =                \
      ::rarsub::obs::timer(name);                                       \
  ::rarsub::obs::ScopedTimer obs_scoped_timer_##id(obs_timer_stat_##id, name)

// Clock-free phase marker for allocation attribution (two TLS stores per
// scope) — use where a scoped timer's steady_clock reads would be
// measurable, e.g. per-gate-visit hot paths.
#define OBS_PHASE(name) OBS_PHASE_IMPL_(name, __COUNTER__)
#define OBS_PHASE_IMPL_(name, id) OBS_PHASE_IMPL2_(name, id)
#define OBS_PHASE_IMPL2_(name, id) \
  ::rarsub::obs::PhaseScope obs_phase_scope_##id(name)
