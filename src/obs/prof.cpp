#include "obs/prof.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "obs/obs.hpp"

#ifdef __linux__
#include <signal.h>
#include <sys/time.h>
#endif

// The signal-handler machinery is compiled in by default; under ASan/TSan
// we opt out entirely: the sanitizer runtimes interpose on sigaction and
// flag (or outright break on) asynchronous handlers firing at kHz rates,
// and those jobs gain nothing from a statistical profile.
#ifndef RARSUB_PROF_IMPL
#define RARSUB_PROF_IMPL 1
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#undef RARSUB_PROF_IMPL
#define RARSUB_PROF_IMPL 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#undef RARSUB_PROF_IMPL
#define RARSUB_PROF_IMPL 0
#endif
#endif

namespace rarsub::obs {

namespace {

// ---------------------------------------------------------------------
// Lock-free path histogram. Fixed open-addressed table keyed by the full
// phase path (array of interned const char* frames). The SIGPROF handler
// is the only writer of counts; it takes no locks and allocates nothing.
// Slots are claimed once (empty -> claiming -> ready) and never freed, so
// the path set is effectively interned for the life of the process —
// prof_reset() zeroes counts but keeps the claims. Two concurrent claims
// of the same path can land in two slots (the second claimer skips a
// slot it sees mid-claim); snapshot/render re-merge by path string, the
// same dodge memstat uses for cross-TU literal addresses.

constexpr int kSlotEmpty = 0, kSlotClaiming = 1, kSlotReady = 2;

struct ProfSlot {
  std::atomic<int> state{kSlotEmpty};
  std::uint64_t hash = 0;
  int depth = 0;
  const char* frames[kMaxPhaseDepth];
  std::atomic<std::int64_t> count{0};
};

constexpr std::uint32_t kProfSlots = 509;  // prime, ~fits every real path
constexpr int kProfMaxProbes = 32;
ProfSlot g_hist[kProfSlots];

std::atomic<std::int64_t> g_samples{0};  // window totals
std::atomic<std::int64_t> g_dropped{0};

std::atomic<bool> g_on{false};
std::atomic<std::int64_t> g_interval_us{0};

std::uint64_t path_hash(const PhasePath& p) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over frame pointers
  for (int i = 0; i < p.depth; ++i) {
    h ^= reinterpret_cast<std::uintptr_t>(p.frames[i]);
    h *= 1099511628211ull;
  }
  h ^= static_cast<std::uint64_t>(p.depth);
  h *= 1099511628211ull;
  return h;
}

// Async-signal-safe: TLS copy, bounded probe loop, relaxed/acq-rel
// atomics, no locks, no allocation, errno untouched.
void record_sample() noexcept {
  const PhasePath path = capture_phase_path();
  const std::uint64_t h = path_hash(path);
  g_samples.fetch_add(1, std::memory_order_relaxed);
  for (int probe = 0; probe < kProfMaxProbes; ++probe) {
    ProfSlot& s = g_hist[(h + static_cast<std::uint64_t>(probe)) % kProfSlots];
    int st = s.state.load(std::memory_order_acquire);
    if (st == kSlotEmpty) {
      int expected = kSlotEmpty;
      if (s.state.compare_exchange_strong(expected, kSlotClaiming,
                                          std::memory_order_acq_rel)) {
        s.hash = h;
        s.depth = path.depth;
        for (int i = 0; i < path.depth; ++i) s.frames[i] = path.frames[i];
        s.state.store(kSlotReady, std::memory_order_release);
        s.count.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      st = expected;  // lost the claim race; fall through on the winner
    }
    if (st == kSlotReady && s.hash == h && s.depth == path.depth) {
      bool same = true;
      for (int i = 0; i < path.depth; ++i)
        if (s.frames[i] != path.frames[i]) {
          same = false;
          break;
        }
      if (same) {
        s.count.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    // collision, or a slot another thread is still claiming: next probe
  }
  g_dropped.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Cumulative (whole-run) accumulation. prof_reset() folds the window's
// counts in here under a mutex the handler never touches, so per-method
// bench windows stay isolated while the folded output spans the run.
// Keys are frame-pointer vectors; merging by string happens at render.

struct Cumulative {
  std::mutex mu;
  std::map<std::vector<const char*>, std::int64_t> paths;
};

// Immortal (leaked): the RARSUB_PROF atexit writer renders the profile
// during process teardown, and this state is first constructed whenever
// the first obs::reset() happens — which can be *after* the latch
// registered the writer. A plain function-local static would then be
// destroyed before the writer runs (LIFO), and the writer would read a
// dead map. Leaking sidesteps teardown ordering entirely.
Cumulative& cumulative() {
  static Cumulative* c = new Cumulative;
  return *c;
}

// ---------------------------------------------------------------------
// Status, hwc-style: a reason string readable after a failed start.

struct Status {
  std::mutex mu;
  std::string text = "off";
};

Status& status() {
  static Status* s = new Status;  // immortal, same reason as cumulative()
  return *s;
}

void set_status(const std::string& text) {
  Status& s = status();
  std::lock_guard<std::mutex> lock(s.mu);
  s.text = text;
}

// ---------------------------------------------------------------------
// Timer/signal plumbing, injectable for tests.

#if RARSUB_PROF_IMPL && defined(__linux__)

struct sigaction g_old_sigaction;

void on_sigprof(int) {
  const int saved_errno = errno;
  if (g_on.load(std::memory_order_relaxed)) record_sample();
  errno = saved_errno;
}

bool real_setup(int hz, std::string* why) {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = &on_sigprof;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &sa, &g_old_sigaction) != 0) {
    *why = std::string("sigaction: ") + std::strerror(errno);
    return false;
  }
  const long us = std::max(1L, 1000000L / hz);
  struct itimerval tv;
  tv.it_interval.tv_sec = us / 1000000;
  tv.it_interval.tv_usec = us % 1000000;
  tv.it_value = tv.it_interval;
  if (setitimer(ITIMER_PROF, &tv, nullptr) != 0) {
    *why = std::string("setitimer: ") + std::strerror(errno);
    sigaction(SIGPROF, &g_old_sigaction, nullptr);
    return false;
  }
  g_interval_us.store(us, std::memory_order_relaxed);
  return true;
}

void real_teardown() {
  struct itimerval off;
  std::memset(&off, 0, sizeof off);
  setitimer(ITIMER_PROF, &off, nullptr);
  sigaction(SIGPROF, &g_old_sigaction, nullptr);
}

#else

bool real_setup(int hz, std::string* why) {
  (void)hz;
#if !RARSUB_PROF_IMPL
  *why = "disabled: sanitizer build";
#else
  *why = "unavailable: not linux";
#endif
  return false;
}

void real_teardown() {}

#endif

const detail::ProfTimerHooks* g_hooks = nullptr;

bool plumbing_setup(int hz, std::string* why) {
  if (g_hooks != nullptr) {
    const bool ok = g_hooks->setup(hz, why);
    if (ok) g_interval_us.store(std::max(1L, 1000000L / hz),
                                std::memory_order_relaxed);
    return ok;
  }
  return real_setup(hz, why);
}

void plumbing_teardown() {
  if (g_hooks != nullptr) {
    g_hooks->teardown();
    return;
  }
  real_teardown();
}

int default_hz() {
  if (const char* e = env_path("RARSUB_PROF_HZ")) {
    const int hz = std::atoi(e);
    if (hz > 0) return hz;
  }
  return 997;  // prime: cannot phase-lock to millisecond-periodic work
}

std::string frames_key(const std::vector<const char*>& frames) {
  if (frames.empty()) return "(none)";
  std::string key;
  for (const char* f : frames) {
    if (!key.empty()) key += ';';
    key += f != nullptr ? f : "(null)";
  }
  return key;
}

}  // namespace

// ---------------------------------------------------------------------
// Control.

bool prof_available() noexcept {
#if RARSUB_PROF_IMPL && defined(__linux__)
  return true;
#else
  return false;
#endif
}

bool prof_enabled() noexcept { return g_on.load(std::memory_order_relaxed); }

bool prof_start(int hz) {
  if (prof_enabled()) return true;
#if !RARSUB_PROF_IMPL
  if (g_hooks == nullptr) {  // test hooks may still drive fake sampling
    set_status("disabled: sanitizer build");
    return false;
  }
#endif
  if (hz <= 0) hz = default_hz();
  hz = std::min(hz, 10000);
  std::string why;
  if (!plumbing_setup(hz, &why)) {
    set_status(why);
    return false;
  }
  g_on.store(true, std::memory_order_relaxed);
  set_status("ok");
  return true;
}

void prof_stop() {
  if (!prof_enabled()) return;
  g_on.store(false, std::memory_order_relaxed);
  plumbing_teardown();
  g_interval_us.store(0, std::memory_order_relaxed);
  set_status("stopped");
}

std::string prof_status() {
  Status& s = status();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.text;
}

void prof_reset() {
  Cumulative& c = cumulative();
  std::lock_guard<std::mutex> lock(c.mu);
  for (std::uint32_t i = 0; i < kProfSlots; ++i) {
    ProfSlot& s = g_hist[i];
    if (s.state.load(std::memory_order_acquire) != kSlotReady) continue;
    const std::int64_t n = s.count.exchange(0, std::memory_order_relaxed);
    if (n == 0) continue;
    c.paths[std::vector<const char*>(s.frames, s.frames + s.depth)] += n;
  }
  g_samples.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Snapshot / render.

ProfSnapshot prof_snapshot() {
  ProfSnapshot snap;
  snap.enabled = prof_enabled();
  snap.samples = g_samples.load(std::memory_order_relaxed);
  snap.dropped = g_dropped.load(std::memory_order_relaxed);
  snap.interval_us = g_interval_us.load(std::memory_order_relaxed);
  // Merge live slots by path string (duplicate claims, cross-TU literal
  // addresses).
  std::map<std::string, ProfPathSnap> merged;
  for (std::uint32_t i = 0; i < kProfSlots; ++i) {
    const ProfSlot& s = g_hist[i];
    if (s.state.load(std::memory_order_acquire) != kSlotReady) continue;
    const std::int64_t n = s.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    std::vector<const char*> frames(s.frames, s.frames + s.depth);
    ProfPathSnap& p = merged[frames_key(frames)];
    if (p.frames.empty() && p.samples == 0)
      for (const char* f : frames) p.frames.push_back(f != nullptr ? f : "(null)");
    p.samples += n;
  }
  snap.paths.reserve(merged.size());
  for (auto& [key, p] : merged) snap.paths.push_back(std::move(p));
  std::sort(snap.paths.begin(), snap.paths.end(),
            [](const ProfPathSnap& a, const ProfPathSnap& b) {
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.frames < b.frames;
            });
  return snap;
}

std::vector<ProfPhaseSelf> prof_self_phases(const ProfSnapshot& snap) {
  std::map<std::string, std::int64_t> self;
  for (const ProfPathSnap& p : snap.paths)
    self[p.frames.empty() ? "(none)" : p.frames.back()] += p.samples;
  std::vector<ProfPhaseSelf> out;
  out.reserve(self.size());
  const double period_ms =
      static_cast<double>(snap.interval_us) / 1000.0;
  for (const auto& [phase, samples] : self)
    out.push_back(ProfPhaseSelf{
        phase, samples, static_cast<double>(samples) * period_ms});
  std::sort(out.begin(), out.end(),
            [](const ProfPhaseSelf& a, const ProfPhaseSelf& b) {
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.phase < b.phase;
            });
  return out;
}

std::string render_folded_profile() {
  // cumulative + live window, merged by path string; sorted by path for
  // deterministic diffs.
  std::map<std::string, std::int64_t> folded;
  {
    Cumulative& c = cumulative();
    std::lock_guard<std::mutex> lock(c.mu);
    for (const auto& [frames, n] : c.paths) folded[frames_key(frames)] += n;
  }
  for (std::uint32_t i = 0; i < kProfSlots; ++i) {
    const ProfSlot& s = g_hist[i];
    if (s.state.load(std::memory_order_acquire) != kSlotReady) continue;
    const std::int64_t n = s.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    folded[frames_key(
        std::vector<const char*>(s.frames, s.frames + s.depth))] += n;
  }
  std::string out;
  char buf[32];
  for (const auto& [path, n] : folded) {
    out += path;
    std::snprintf(buf, sizeof buf, " %lld\n", static_cast<long long>(n));
    out += buf;
  }
  return out;
}

bool write_folded_profile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string folded = render_folded_profile();
  const bool ok =
      std::fwrite(folded.data(), 1, folded.size(), f) == folded.size();
  return (std::fclose(f) == 0) && ok;
}

// ---------------------------------------------------------------------
// Test seams.

namespace detail {

void set_prof_timer_hooks_for_test(const ProfTimerHooks* hooks) {
  g_hooks = hooks;
}

void prof_sample_now_for_test() {
  if (prof_enabled()) record_sample();
}

}  // namespace detail

// ---------------------------------------------------------------------
// Environment latch: RARSUB_PROF=<file> starts sampling before main and
// writes the folded profile at exit. Defined after all profiler state
// (this TU's objects construct in order of definition). A failed start
// degrades silently — the reason stays readable via prof_status().

namespace {

std::string g_env_folded_path;

const bool g_env_latch = [] {
  const char* path = env_path("RARSUB_PROF");
  if (path == nullptr) return true;
  g_env_folded_path = path;
  if (prof_start()) {
    std::atexit([] {
      if (write_folded_profile(g_env_folded_path)) {
        std::fprintf(stderr, "prof: folded profile written to %s\n",
                     g_env_folded_path.c_str());
      } else {
        std::fprintf(stderr, "prof: cannot write %s\n",
                     g_env_folded_path.c_str());
      }
    });
  }
  return true;
}();

}  // namespace

}  // namespace rarsub::obs
