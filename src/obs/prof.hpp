#pragma once
// Sampling CPU profiler: attributes CPU-time samples to the per-thread
// phase stack (obs.hpp) that OBS_SCOPED_TIMER / OBS_PHASE maintain.
//
// Mechanism: setitimer(ITIMER_PROF) delivers SIGPROF as process CPU time
// elapses; the kernel delivers it to a currently-running thread, whose
// handler copies that thread's phase stack (async-signal-safe — see
// capture_phase_path in memstat.cpp) and bumps a slot in a lock-free
// open-addressed histogram keyed by the full phase path. Per-thread
// attribution falls out of the delivery model: each sample lands on the
// thread that burned the CPU and reads *its* TLS stack. snapshot()
// publishes the live window as prof.* gauges; the folded
// (flamegraph-collapsed) rendering accumulates across obs::reset()
// windows so one file covers a whole bench run.
//
// Robustness follows the hwc playbook:
//   - graceful degradation: when timer/signal setup fails (or the
//     platform has no setitimer), prof_start returns false,
//     prof_status() carries the reason, and everything else no-ops;
//   - compiled out under ASan/TSan (the sanitizer runtimes intercept
//     signals and dislike ours); prof_available() reports it;
//   - injectable timer plumbing + a synchronous sampling entry point so
//     tests get deterministic attribution without a real timer.
//
// Cost when off: none — no handler is installed and no instrument reads
// any profiler state. Cost when on: ~1 kHz of handler executions doing a
// TLS copy and one atomic increment (well under 1% CPU).
//
// Enable via RARSUB_PROF=<file> (folded profile written at exit),
// rarsub_cli --profile <file>, or prof_start() directly.
// RARSUB_PROF_HZ overrides the sampling rate.

#include <cstdint>
#include <string>
#include <vector>

namespace rarsub::obs {

/// Compiled in and the platform can plausibly deliver profiling signals.
/// False under sanitizers and on non-Linux hosts; a true return does not
/// guarantee prof_start succeeds (the syscalls can still fail — see
/// prof_status()).
bool prof_available() noexcept;

/// A sampling timer is currently installed and the handler is recording.
bool prof_enabled() noexcept;

/// Install the SIGPROF handler and start the CPU-time sampling timer at
/// `hz` samples per second of *process CPU time* (0 = default: the
/// RARSUB_PROF_HZ environment variable, else 997 Hz — prime, so the
/// sampler cannot phase-lock to millisecond-periodic work). Returns
/// false and records the reason in prof_status() on failure; calling
/// while already running is a no-op returning true.
bool prof_start(int hz = 0);

/// Stop the timer and restore the previous SIGPROF disposition. Counts
/// already recorded stay readable (and keep flowing into the folded
/// accumulation on the next reset/render).
void prof_stop();

/// "off" before any start, "ok" while sampling, "stopped" after a clean
/// stop, otherwise the reason the last start failed ("unavailable: …" /
/// "disabled: …" / "<syscall>: <errno string>").
std::string prof_status();

/// Fold the live window's counts into the cumulative (whole-run)
/// accumulation and zero the window. obs::reset() calls this, so
/// per-method bench windows see only their own samples while the folded
/// output still covers the entire process.
void prof_reset();

struct ProfPathSnap {
  /// Phase path, outermost first; empty = sample outside any phase.
  std::vector<std::string> frames;
  std::int64_t samples = 0;
};

struct ProfSnapshot {
  bool enabled = false;
  std::int64_t samples = 0;   // window total, including dropped
  std::int64_t dropped = 0;   // histogram-full samples (path not recorded)
  std::int64_t interval_us = 0;  // sampling period while running, else 0
  std::vector<ProfPathSnap> paths;  // sorted by samples descending
};

/// The current window (since the last prof_reset / obs::reset).
ProfSnapshot prof_snapshot();

struct ProfPhaseSelf {
  std::string phase;  // innermost frame, "(none)" outside any phase
  std::int64_t samples = 0;
  double est_ms = 0.0;  // samples x sampling period
};

/// Per-phase *self* CPU time of a snapshot: each sample is charged to its
/// innermost frame only. Sorted by samples descending.
std::vector<ProfPhaseSelf> prof_self_phases(const ProfSnapshot& snap);

/// Collapsed-stack rendering of everything sampled since the first
/// prof_start — cumulative across prof_reset windows. One line per
/// distinct path, flamegraph.pl / speedscope compatible:
///   outer;middle;inner <count>\n
/// Samples outside any phase render as "(none)".
std::string render_folded_profile();

/// Write render_folded_profile() to `path`; false if the file cannot be
/// written.
bool write_folded_profile(const std::string& path);

namespace detail {

/// Test seam for the timer/signal plumbing. `setup` arms sampling at
/// `hz` (return false + fill `why` to simulate a host where setitimer or
/// sigaction fails); `teardown` disarms it. Pass nullptr to restore the
/// real plumbing. Re-arms nothing by itself — call prof_stop() first.
struct ProfTimerHooks {
  bool (*setup)(int hz, std::string* why);
  void (*teardown)();
};
void set_prof_timer_hooks_for_test(const ProfTimerHooks* hooks);

/// Run the handler's sampling path synchronously on the calling thread:
/// records one sample against the thread's current phase stack exactly
/// as a SIGPROF delivery would. Requires prof_enabled(). Tests use this
/// for deterministic attribution.
void prof_sample_now_for_test();

}  // namespace detail

}  // namespace rarsub::obs
