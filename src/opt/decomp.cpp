#include "opt/decomp.hpp"

#include <algorithm>

#include "sop/algdiv.hpp"
#include "sop/factor.hpp"
#include "sop/kernel.hpp"

namespace rarsub {

namespace {

// Split node `id` once along its quick divisor: id = q·k + r with k (and q,
// when it has more than one cube) extracted as new nodes. Returns false if
// no useful kernel exists.
bool split_once(Network& net, NodeId id, const DecompOptions& opts) {
  // Copy everything needed up front: add_node below may reallocate the
  // node storage and invalidate references into it.
  const Sop func = net.node(id).func;
  const std::vector<NodeId> node_fanins(net.node(id).fanins.begin(),
                                        net.node(id).fanins.end());
  const std::string node_name(net.node(id).name);
  if (func.num_cubes() < opts.min_cubes) return false;
  if (func.num_literals() < opts.min_literals) return false;

  const Sop k = quick_divisor(func);
  if (k.num_cubes() < 2) return false;
  const AlgDivResult dv = weak_divide(func, k);
  if (dv.quotient.num_cubes() == 0) return false;

  const int m = func.num_vars();

  // Materialize the kernel on the support it actually uses.
  auto make_node = [&](const Sop& cover, const char* tag) {
    const std::vector<int> supp = cover.support();
    std::vector<NodeId> fanins;
    std::vector<int> back(static_cast<std::size_t>(m), 0);
    for (std::size_t i = 0; i < supp.size(); ++i) {
      back[static_cast<std::size_t>(supp[i])] = static_cast<int>(i);
      fanins.push_back(node_fanins[static_cast<std::size_t>(supp[i])]);
    }
    Sop local = cover.remap(static_cast<int>(supp.size()), back);
    return net.add_node(net.fresh_name(node_name + tag), fanins,
                        std::move(local));
  };
  const NodeId nk = make_node(k, "_k");
  const NodeId nq = dv.quotient.num_cubes() > 1 ? make_node(dv.quotient, "_q")
                                                : kNoNode;

  // id = y_q·y_k + r  (or  q_cube·y_k + r when the quotient is one cube).
  const std::span<const NodeId> cur = net.fanins(id);
  std::vector<NodeId> fanins(cur.begin(), cur.end());
  const int vk = static_cast<int>(fanins.size());
  fanins.push_back(nk);
  int vq = -1;
  if (nq != kNoNode) {
    vq = static_cast<int>(fanins.size());
    fanins.push_back(nq);
  }
  const int nv = static_cast<int>(fanins.size());
  std::vector<int> ext(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) ext[static_cast<std::size_t>(i)] = i;

  Sop newfunc(nv);
  if (nq != kNoNode) {
    Cube c(nv);
    c.set_lit(vk, Lit::Pos);
    c.set_lit(vq, Lit::Pos);
    newfunc.add_cube(c);
  } else {
    const Sop q_ext = dv.quotient.remap(nv, ext);
    for (Cube c : q_ext.cubes()) {
      c.set_lit(vk, Lit::Pos);
      newfunc.add_cube(std::move(c));
    }
  }
  const Sop r_ext = dv.remainder.remap(nv, ext);
  for (const Cube& c : r_ext.cubes()) newfunc.add_cube(c);
  newfunc.scc_minimize();
  net.set_function(id, std::move(fanins), std::move(newfunc));
  return true;
}

}  // namespace

DecompStats decomp_network(Network& net, const DecompOptions& opts) {
  DecompStats stats;
  stats.literals_before = net.factored_literals();
  int rounds = 0;
  bool changed = true;
  while (changed && rounds < opts.max_rounds) {
    changed = false;
    for (NodeId id : net.topo_order()) {
      if (!net.node(id).alive || net.node(id).is_pi) continue;
      if (split_once(net, id, opts)) {
        ++stats.nodes_created;
        changed = true;
        ++rounds;
        if (rounds >= opts.max_rounds) break;
      }
    }
  }
  net.sweep();
  stats.literals_after = net.factored_literals();
  return stats;
}

}  // namespace rarsub
