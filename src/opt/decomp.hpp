#pragma once
// SIS-style `decomp -g`: break large node functions apart along their best
// kernels, introducing new intermediate nodes (f = q·k + r with k and q as
// fresh nodes). The structural inverse of `eliminate` — useful before
// technology mapping and as a preprocessing alternative for substitution
// experiments (more, smaller divisors in the network).

#include "network/network.hpp"

namespace rarsub {

struct DecompOptions {
  /// Only nodes with at least this many cubes are considered.
  int min_cubes = 3;
  /// Stop splitting a node once its cover drops below this many literals.
  int min_literals = 6;
  int max_rounds = 200;
};

struct DecompStats {
  int nodes_created = 0;
  int literals_before = 0;
  int literals_after = 0;
};

/// Greedy kernel decomposition of every eligible node. Function-preserving.
DecompStats decomp_network(Network& net, const DecompOptions& opts = {});

}  // namespace rarsub
