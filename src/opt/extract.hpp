#pragma once
// Multi-node extraction commands: `gcx` (greedy common-cube extraction)
// and `gkx` (greedy kernel extraction) — the SIS preprocessing steps of
// the paper's Scripts B and C ("the commands gcx and gkx are also
// typically good steps before applying the resub command").
//
// Both work over a global literal space where a literal is a (node,
// polarity) pair, so sharing is discovered across node boundaries.

#include "network/network.hpp"

namespace rarsub {

struct ExtractOptions {
  int max_rounds = 50;       ///< extractions per call
  int max_kernels_per_node = 50;
};

struct ExtractStats {
  int extracted = 0;       ///< new nodes created
  int literals_before = 0;
  int literals_after = 0;
};

/// Greedy common-cube extraction: repeatedly pull out the best cube that
/// appears (as a literal subset) in several cubes of the network.
ExtractStats gcx(Network& net, const ExtractOptions& opts = {});

/// Greedy kernel extraction: repeatedly pull out the best level-0 kernel
/// shared across node functions, substituting it by algebraic division.
ExtractStats gkx(Network& net, const ExtractOptions& opts = {});

}  // namespace rarsub
