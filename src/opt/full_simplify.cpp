#include "opt/full_simplify.hpp"

#include <algorithm>

#include "network/simulate.hpp"
#include "sop/espresso.hpp"
#include "sop/factor.hpp"

namespace rarsub {

namespace {

// PIs in the transitive fanin of the given nodes; nullopt when more than
// `max_pis` are involved.
std::optional<std::vector<NodeId>> tfi_pis(const Network& net,
                                           std::span<const NodeId> roots,
                                           int max_pis) {
  std::vector<bool> seen(static_cast<std::size_t>(net.num_nodes()), false);
  std::vector<NodeId> stack(roots.begin(), roots.end());
  std::vector<NodeId> pis;
  for (NodeId r : roots) seen[static_cast<std::size_t>(r)] = true;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (net.node(n).is_pi) {
      pis.push_back(n);
      if (static_cast<int>(pis.size()) > max_pis) return std::nullopt;
      continue;
    }
    for (NodeId f : net.node(n).fanins)
      if (!seen[static_cast<std::size_t>(f)]) {
        seen[static_cast<std::size_t>(f)] = true;
        stack.push_back(f);
      }
  }
  return pis;
}

// Bit-parallel evaluation of the whole network; `forced` (if >= 0) is
// overridden with `forced_word` instead of being computed.
std::vector<std::uint64_t> eval_forced(const Network& net,
                                       const std::vector<NodeId>& topo,
                                       const std::vector<std::uint64_t>& pi_words,
                                       NodeId forced,
                                       std::uint64_t forced_word) {
  std::vector<std::uint64_t> value(static_cast<std::size_t>(net.num_nodes()), 0);
  for (std::size_t i = 0; i < net.pis().size(); ++i)
    value[static_cast<std::size_t>(net.pis()[i])] = pi_words[i];
  for (NodeId n : topo) {
    if (n == forced) {
      value[static_cast<std::size_t>(n)] = forced_word;
      continue;
    }
    const Node& g = net.node(n);
    std::uint64_t acc = 0;
    for (const Cube& c : g.func.cubes()) {
      std::uint64_t cube_val = ~0ULL;
      for (int v = 0; v < g.func.num_vars() && cube_val; ++v) {
        const Lit l = c.lit(v);
        if (l == Lit::Absent) continue;
        const std::uint64_t w =
            value[static_cast<std::size_t>(g.fanins[static_cast<std::size_t>(v)])];
        cube_val &= (l == Lit::Pos) ? w : ~w;
      }
      acc |= cube_val;
    }
    value[static_cast<std::size_t>(n)] = acc;
  }
  return value;
}

}  // namespace

FullSimplifyStats full_simplify_network(Network& net,
                                        const FullSimplifyOptions& opts) {
  FullSimplifyStats stats;
  stats.literals_before = net.factored_literals();

  const bool odc_possible =
      opts.use_observability &&
      static_cast<int>(net.pis().size()) <= opts.max_network_pis;

  for (NodeId id : net.topo_order()) {
    const Node& nd = net.node(id);
    const int k = static_cast<int>(nd.fanins.size());
    if (k == 0 || k > opts.max_fanins) continue;
    if (nd.func.num_cubes() == 0) continue;

    // Cut selection: SDC-only mode enumerates the joint fanin TFI; ODC
    // mode must sweep every PI (observability depends on side inputs).
    std::vector<NodeId> cut;
    if (odc_possible) {
      cut = net.pis();
    } else {
      const auto pis = tfi_pis(net, nd.fanins, opts.max_tfi_pis);
      if (!pis) continue;
      cut = *pis;
    }
    std::vector<std::size_t> pi_pos;
    for (NodeId p : cut) {
      const auto it = std::find(net.pis().begin(), net.pis().end(), p);
      pi_pos.push_back(static_cast<std::size_t>(it - net.pis().begin()));
    }

    // For every reachable local input vector, remember whether the node's
    // value is ever observable at a primary output while producing it.
    std::vector<bool> reachable(static_cast<std::size_t>(1) << k, false);
    std::vector<bool> observable_for(static_cast<std::size_t>(1) << k, false);
    const std::vector<NodeId> topo = net.topo_order();
    const std::uint64_t total = 1ULL << cut.size();
    std::vector<std::uint64_t> words(net.pis().size(), 0);
    for (std::uint64_t base = 0; base < total; base += 64) {
      for (std::size_t i = 0; i < cut.size(); ++i) {
        std::uint64_t w = 0;
        for (std::uint64_t m = 0; m < 64 && base + m < total; ++m)
          if (((base + m) >> i) & 1) w |= 1ULL << m;
        words[pi_pos[i]] = w;
      }
      const auto value = eval_forced(net, topo, words, kNoNode, 0);

      std::uint64_t observed = ~0ULL;
      if (odc_possible) {
        // Flip-visibility: evaluate with the node forced to 0 and to 1;
        // an assignment observes the node iff some PO differs.
        const auto v0 = eval_forced(net, topo, words, id, 0);
        const auto v1 = eval_forced(net, topo, words, id, ~0ULL);
        observed = 0;
        for (const Output& o : net.pos())
          observed |= v0[static_cast<std::size_t>(o.driver)] ^
                      v1[static_cast<std::size_t>(o.driver)];
      }

      const std::uint64_t limit = std::min<std::uint64_t>(64, total - base);
      for (std::uint64_t m = 0; m < limit; ++m) {
        unsigned vec = 0;
        for (int v = 0; v < k; ++v)
          if ((value[static_cast<std::size_t>(
                   nd.fanins[static_cast<std::size_t>(v)])] >>
               m) &
              1)
            vec |= 1u << v;
        reachable[vec] = true;
        if ((observed >> m) & 1) observable_for[vec] = true;
      }
    }

    // DC = unreachable vectors, plus (in ODC mode) reachable-but-never-
    // observable vectors.
    Sop dc(k);
    for (unsigned vec = 0; vec < (1u << k); ++vec) {
      if (reachable[vec] && (!odc_possible || observable_for[vec])) continue;
      Cube c(k);
      for (int v = 0; v < k; ++v)
        c.set_lit(v, ((vec >> v) & 1) ? Lit::Pos : Lit::Neg);
      dc.add_cube(c);
    }
    if (dc.num_cubes() == 0) continue;
    dc = simplify_cover(dc);

    Sop minimized = espresso_lite(nd.func, dc);
    if (factored_literal_count(minimized) < factored_literal_count(nd.func)) {
      net.set_function(id, {nd.fanins.begin(), nd.fanins.end()},
                       std::move(minimized));
      ++stats.nodes_simplified;
    }
  }

  net.sweep();
  stats.literals_after = net.factored_literals();
  return stats;
}

}  // namespace rarsub
