#pragma once
// full_simplify: node minimization against satisfiability don't cares, the
// strongest node-local cleanup in the SIS flow (script.algebraic ends with
// `full_simplify -m nocomp`).
//
// For each node, the local input vectors its fanins can actually produce
// are enumerated exhaustively over the joint transitive-fanin PI support
// (bounded); every unreachable local vector is a don't care handed to the
// two-level minimizer. This is the *exact* local SDC for nodes with small
// TFI cones — complementary to the paper's implication-based don't cares,
// which trade exactness for scalability.

#include "network/network.hpp"

namespace rarsub {

struct FullSimplifyOptions {
  /// Skip nodes whose joint fanin TFI touches more than this many PIs
  /// (the enumeration is 2^pis).
  int max_tfi_pis = 12;
  /// Skip nodes with more fanins than this (the reachable-set bitmap is
  /// 2^fanins wide).
  int max_fanins = 10;
  /// Also compute observability don't cares: a reachable local vector is
  /// still a don't care when flipping the node's output is invisible at
  /// every primary output for every producing PI assignment. Requires
  /// enumerating the FULL PI space of the network, so it only engages when
  /// the network has at most `max_network_pis` primary inputs.
  bool use_observability = false;
  int max_network_pis = 12;
};

struct FullSimplifyStats {
  int nodes_simplified = 0;
  int literals_before = 0;
  int literals_after = 0;
};

/// Run SDC-aware (and optionally ODC-aware) simplification over every
/// eligible node. Preserves all primary-output functions.
FullSimplifyStats full_simplify_network(Network& net,
                                        const FullSimplifyOptions& opts = {});

}  // namespace rarsub
