// Greedy common-cube extraction. Literals live in a global space of
// (node, polarity) pairs so a cube shared between different node functions
// is found regardless of local variable numbering.

#include <algorithm>
#include <cassert>
#include <map>

#include "opt/extract.hpp"
#include "sop/factor.hpp"

namespace rarsub {

namespace {

using GlobalLit = int;  // node id * 2 + (negated ? 1 : 0)

GlobalLit make_lit(NodeId n, bool neg) { return n * 2 + (neg ? 1 : 0); }
NodeId lit_node(GlobalLit l) { return l / 2; }
bool lit_neg(GlobalLit l) { return (l & 1) != 0; }

struct GlobalCube {
  NodeId owner;
  int cube_index;
  std::vector<GlobalLit> lits;  // sorted
};

std::vector<GlobalCube> collect_cubes(const Network& net) {
  std::vector<GlobalCube> out;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Node& nd = net.node(id);
    if (!nd.alive || nd.is_pi) continue;
    for (int ci = 0; ci < nd.func.num_cubes(); ++ci) {
      GlobalCube gc{id, ci, {}};
      const Cube& c = nd.func.cube(ci);
      for (int v = 0; v < c.num_vars(); ++v) {
        const Lit l = c.lit(v);
        if (l == Lit::Absent) continue;
        gc.lits.push_back(
            make_lit(nd.fanins[static_cast<std::size_t>(v)], l == Lit::Neg));
      }
      std::sort(gc.lits.begin(), gc.lits.end());
      out.push_back(std::move(gc));
    }
  }
  return out;
}

bool contains_all(const std::vector<GlobalLit>& cube,
                  const std::vector<GlobalLit>& sub) {
  return std::includes(cube.begin(), cube.end(), sub.begin(), sub.end());
}

// SIS-style value of extracting cube `s` occurring in `occ` cubes:
// each occurrence replaces |s| literals by one, and the new node costs |s|.
int cube_value(int occurrences, int size) {
  return occurrences * (size - 1) - size;
}

}  // namespace

ExtractStats gcx(Network& net, const ExtractOptions& opts) {
  ExtractStats stats;
  stats.literals_before = net.factored_literals();

  for (int round = 0; round < opts.max_rounds; ++round) {
    const std::vector<GlobalCube> cubes = collect_cubes(net);

    // Count co-occurring literal pairs.
    std::map<std::pair<GlobalLit, GlobalLit>, int> pair_count;
    for (const GlobalCube& gc : cubes)
      for (std::size_t i = 0; i < gc.lits.size(); ++i)
        for (std::size_t j = i + 1; j < gc.lits.size(); ++j)
          ++pair_count[{gc.lits[i], gc.lits[j]}];

    // Grow the most frequent pairs greedily into bigger common cubes.
    std::vector<std::pair<int, std::pair<GlobalLit, GlobalLit>>> seeds;
    for (const auto& [p, n] : pair_count)
      if (n >= 2) seeds.push_back({n, p});
    std::sort(seeds.begin(), seeds.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (seeds.size() > 12) seeds.resize(12);

    std::vector<GlobalLit> best_cube;
    int best_value = 0;
    for (const auto& [count, seed] : seeds) {
      (void)count;
      std::vector<GlobalLit> s{seed.first, seed.second};
      for (;;) {
        // Occurrences of s and the literal that would keep the most of
        // them when added.
        std::map<GlobalLit, int> extension_count;
        int occ = 0;
        for (const GlobalCube& gc : cubes) {
          if (!contains_all(gc.lits, s)) continue;
          ++occ;
          for (GlobalLit l : gc.lits)
            if (!std::binary_search(s.begin(), s.end(), l)) ++extension_count[l];
        }
        const int value = cube_value(occ, static_cast<int>(s.size()));
        if (value > best_value) {
          best_value = value;
          best_cube = s;
        }
        GlobalLit grow = -1;
        int grow_occ = 0;
        for (const auto& [l, n] : extension_count)
          if (n > grow_occ) {
            grow_occ = n;
            grow = l;
          }
        if (grow < 0 || grow_occ < 2) break;
        std::vector<GlobalLit> next = s;
        next.insert(std::lower_bound(next.begin(), next.end(), grow), grow);
        if (cube_value(grow_occ, static_cast<int>(next.size())) <
            cube_value(occ, static_cast<int>(s.size())) - 1)
          break;
        s = std::move(next);
      }
    }
    if (best_cube.empty() || best_value <= 0) break;

    // Plan the rewrite: for every node whose cubes contain the extracted
    // cube, compute the would-be function and its FACTORED literal delta.
    // Only nodes that actually get cheaper are rewritten, and the round is
    // committed only when the kept deltas pay for the new node — flat
    // cube counting alone can be a factored-form loss.
    struct Plan {
      NodeId node;
      std::vector<NodeId> fanins;
      Sop func;
      int delta;
    };
    std::vector<Plan> plans;
    const NodeId nc_placeholder = net.num_nodes();  // id the new node will get

    // The extracted cube's sources and everything they transitively read:
    // rewriting one of these to consume the new node would create a cycle.
    // One reverse DFS replaces a per-candidate depends_on() walk, which is
    // quadratic at large node counts.
    std::vector<char> cube_tfi(static_cast<std::size_t>(net.num_nodes()), 0);
    {
      std::vector<NodeId> stack;
      for (GlobalLit l : best_cube) {
        const NodeId src = lit_node(l);
        if (!cube_tfi[static_cast<std::size_t>(src)]) {
          cube_tfi[static_cast<std::size_t>(src)] = 1;
          stack.push_back(src);
        }
      }
      while (!stack.empty()) {
        const NodeId n = stack.back();
        stack.pop_back();
        for (NodeId f : net.node(n).fanins)
          if (!cube_tfi[static_cast<std::size_t>(f)]) {
            cube_tfi[static_cast<std::size_t>(f)] = 1;
            stack.push_back(f);
          }
      }
    }

    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      const Node& nd = net.node(id);
      if (!nd.alive || nd.is_pi) continue;
      if (cube_tfi[static_cast<std::size_t>(id)]) continue;  // would cycle

      bool any = false;
      std::vector<NodeId> nf(nd.fanins.begin(), nd.fanins.end());
      nf.push_back(nc_placeholder);
      const int nv = static_cast<int>(nf.size());
      Sop nfunc(nv);
      for (int ci = 0; ci < nd.func.num_cubes(); ++ci) {
        const Cube& cc = nd.func.cube(ci);
        Cube out(nv);
        std::vector<GlobalLit> lits;
        for (int v = 0; v < cc.num_vars(); ++v)
          if (cc.lit(v) != Lit::Absent)
            lits.push_back(make_lit(nd.fanins[static_cast<std::size_t>(v)],
                                    cc.lit(v) == Lit::Neg));
        std::sort(lits.begin(), lits.end());
        if (contains_all(lits, best_cube)) {
          for (int v = 0; v < cc.num_vars(); ++v) {
            const Lit l = cc.lit(v);
            if (l == Lit::Absent) continue;
            const GlobalLit gl =
                make_lit(nd.fanins[static_cast<std::size_t>(v)], l == Lit::Neg);
            if (!std::binary_search(best_cube.begin(), best_cube.end(), gl))
              out.set_lit(v, l);
          }
          out.set_lit(nv - 1, Lit::Pos);
          any = true;
        } else {
          for (int v = 0; v < cc.num_vars(); ++v) out.set_lit(v, cc.lit(v));
        }
        nfunc.add_cube(out);
      }
      if (!any) continue;
      nfunc.scc_minimize();
      const int delta = factored_literal_count(nfunc) -
                        factored_literal_count(nd.func);
      if (delta >= 0) continue;  // this node would not benefit
      plans.push_back(Plan{id, std::move(nf), std::move(nfunc), delta});
    }

    int total = static_cast<int>(best_cube.size());  // cost of the new node
    for (const Plan& p : plans) total += p.delta;
    if (plans.size() < 2 || total >= 0) break;  // round not profitable

    std::vector<NodeId> fanins;
    Sop func(static_cast<int>(best_cube.size()));
    Cube c(static_cast<int>(best_cube.size()));
    for (std::size_t i = 0; i < best_cube.size(); ++i) {
      fanins.push_back(lit_node(best_cube[i]));
      c.set_lit(static_cast<int>(i), lit_neg(best_cube[i]) ? Lit::Neg : Lit::Pos);
    }
    func.add_cube(c);
    const NodeId nc = net.add_node(net.fresh_name("cx"), fanins, func);
    assert(nc == nc_placeholder);
    for (Plan& p : plans)
      net.set_function(p.node, std::move(p.fanins), std::move(p.func));
    ++stats.extracted;
    net.sweep();
  }

  stats.literals_after = net.factored_literals();
  return stats;
}

}  // namespace rarsub
