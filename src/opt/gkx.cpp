// Greedy kernel extraction: gather level-0 kernels of every node in a
// global literal space, score each distinct kernel by the factored
// literals its extraction would save, extract the best one as a new node,
// and substitute it by algebraic division.

#include <algorithm>
#include <map>

#include "opt/extract.hpp"
#include "resub/algebraic_resub.hpp"
#include "sop/factor.hpp"
#include "sop/kernel.hpp"

namespace rarsub {

namespace {

using GlobalLit = int;  // node id * 2 + (negated ? 1 : 0)

// A kernel lifted to the global literal space: sorted cubes of sorted lits.
using GlobalKernel = std::vector<std::vector<GlobalLit>>;

GlobalKernel lift(const Sop& kernel, std::span<const NodeId> fanins) {
  GlobalKernel gk;
  for (const Cube& c : kernel.cubes()) {
    std::vector<GlobalLit> lits;
    for (int v = 0; v < c.num_vars(); ++v) {
      const Lit l = c.lit(v);
      if (l == Lit::Absent) continue;
      lits.push_back(fanins[static_cast<std::size_t>(v)] * 2 +
                     (l == Lit::Neg ? 1 : 0));
    }
    std::sort(lits.begin(), lits.end());
    gk.push_back(std::move(lits));
  }
  std::sort(gk.begin(), gk.end());
  return gk;
}

}  // namespace

ExtractStats gkx(Network& net, const ExtractOptions& opts) {
  ExtractStats stats;
  stats.literals_before = net.factored_literals();

  ResubOptions ropts;
  ropts.use_complement = false;

  for (int round = 0; round < opts.max_rounds; ++round) {
    // Gather kernels across the network.
    std::map<GlobalKernel, std::vector<NodeId>> occurrences;
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      const Node& nd = net.node(id);
      if (!nd.alive || nd.is_pi) continue;
      if (nd.func.num_cubes() < 2 || nd.func.num_cubes() > 48) continue;
      KernelOptions kopts;
      kopts.level0_only = true;
      kopts.max_kernels = opts.max_kernels_per_node;
      for (const KernelEntry& k : find_kernels(nd.func, kopts)) {
        auto& occ = occurrences[lift(k.kernel, nd.fanins)];
        if (occ.empty() || occ.back() != id) occ.push_back(id);
      }
    }

    // Rank kernels by a rough sharing heuristic, then confirm the top
    // candidates by dry-running the actual substitutions: the committed
    // value is the sum of real per-node factored gains minus the cost of
    // materializing the kernel as a node.
    std::vector<std::pair<int, const GlobalKernel*>> ranked;
    for (const auto& [gk, nodes] : occurrences) {
      int lits = 0;
      for (const auto& c : gk) lits += static_cast<int>(c.size());
      const int rough = static_cast<int>(nodes.size()) * (lits - 1) - lits;
      if (static_cast<int>(nodes.size()) >= 2 || rough > 0)
        ranked.push_back({rough, &gk});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (ranked.size() > 8) ranked.resize(8);

    bool committed = false;
    for (const auto& [rough, gk] : ranked) {
      (void)rough;
      // Materialize the kernel as a node.
      std::vector<NodeId> fanins;
      for (const auto& c : *gk)
        for (GlobalLit l : c) {
          const NodeId n = l / 2;
          if (std::find(fanins.begin(), fanins.end(), n) == fanins.end())
            fanins.push_back(n);
        }
      const int nv = static_cast<int>(fanins.size());
      Sop func(nv);
      for (const auto& c : *gk) {
        Cube cube(nv);
        for (GlobalLit l : c) {
          const auto it = std::find(fanins.begin(), fanins.end(), l / 2);
          cube.set_lit(static_cast<int>(it - fanins.begin()),
                       (l & 1) ? Lit::Neg : Lit::Pos);
        }
        func.add_cube(cube);
      }
      const NodeId nk = net.add_node(net.fresh_name("kx"), fanins, func);

      // TFI of the candidate: substituting into one of these nodes would
      // create a cycle. The set is invariant across the commit loop below
      // (a substitution rewires its target to *read* nk, adding only
      // edges downstream of nk), so one DFS replaces the former
      // per-target depends_on() walks — quadratic at large node counts.
      std::vector<char> nk_tfi(static_cast<std::size_t>(net.num_nodes()), 0);
      {
        std::vector<NodeId> stack{nk};
        nk_tfi[static_cast<std::size_t>(nk)] = 1;
        while (!stack.empty()) {
          const NodeId n = stack.back();
          stack.pop_back();
          for (NodeId f : net.node(n).fanins)
            if (!nk_tfi[static_cast<std::size_t>(f)]) {
              nk_tfi[static_cast<std::size_t>(f)] = 1;
              stack.push_back(f);
            }
        }
      }

      // Dry-run the real gains.
      int total = -factored_literal_count(func);
      const auto& nodes = occurrences.at(*gk);
      for (NodeId id : nodes) {
        if (!net.node(id).alive || nk_tfi[static_cast<std::size_t>(id)])
          continue;
        const auto gain = algebraic_substitute(net, id, nk, ropts, false);
        if (gain) total += *gain;
      }
      if (total <= 0) {
        net.sweep();  // removes the orphan candidate node
        continue;
      }
      int uses = 0;
      for (NodeId id : nodes) {
        if (!net.node(id).alive || nk_tfi[static_cast<std::size_t>(id)])
          continue;
        if (algebraic_substitute(net, id, nk, ropts, /*commit=*/true)) ++uses;
      }
      net.sweep();
      if (uses > 0) {
        ++stats.extracted;
        committed = true;
        break;
      }
    }
    if (!committed) break;
  }

  stats.literals_after = net.factored_literals();
  return stats;
}

}  // namespace rarsub
