#include "opt/scripts.hpp"

#include "division/substitute.hpp"
#include "opt/extract.hpp"
#include "opt/full_simplify.hpp"
#include "resub/algebraic_resub.hpp"

namespace rarsub {

std::string method_name(ResubMethod m) {
  switch (m) {
    case ResubMethod::None: return "none";
    case ResubMethod::SisAlgebraic: return "sis";
    case ResubMethod::Basic: return "basic";
    case ResubMethod::Extended: return "ext";
    case ResubMethod::ExtendedGdc: return "ext_gdc";
  }
  return "?";
}

void run_resub(Network& net, ResubMethod method, const ResubTuning& tuning) {
  switch (method) {
    case ResubMethod::None:
      return;
    case ResubMethod::SisAlgebraic: {
      ResubOptions opts;
      algebraic_resub(net, opts);
      return;
    }
    case ResubMethod::Basic: {
      SubstituteOptions opts;
      opts.method = SubstMethod::Basic;
      opts.jobs = tuning.jobs;
      opts.enable_prune = tuning.prune;
      opts.enable_incremental = tuning.incremental;
      opts.verify_commits = tuning.verify;
      substitute_network(net, opts);
      return;
    }
    case ResubMethod::Extended: {
      SubstituteOptions opts;
      opts.method = SubstMethod::Extended;
      opts.jobs = tuning.jobs;
      opts.enable_prune = tuning.prune;
      opts.enable_incremental = tuning.incremental;
      opts.verify_commits = tuning.verify;
      substitute_network(net, opts);
      return;
    }
    case ResubMethod::ExtendedGdc: {
      SubstituteOptions opts;
      opts.method = SubstMethod::ExtendedGdc;
      opts.jobs = tuning.jobs;
      opts.enable_prune = tuning.prune;
      opts.enable_incremental = tuning.incremental;
      opts.verify_commits = tuning.verify;
      substitute_network(net, opts);
      return;
    }
  }
}

void script_a(Network& net) {
  // "eliminate 0" creates complex gates by collapsing low-value nodes,
  // "since complex gates are more suitable for substitution".
  net.sweep();
  eliminate(net, 0);
  simplify_network(net);
}

void script_b(Network& net) {
  script_a(net);
  gcx(net);
}

void script_c(Network& net) {
  script_a(net);
  gkx(net);
}

void script_algebraic(Network& net, ResubMethod method,
                      const ResubTuning& tuning) {
  net.sweep();
  eliminate(net, -1);
  simplify_network(net);
  eliminate(net, -1);
  net.sweep();
  eliminate(net, 5);
  simplify_network(net);
  run_resub(net, method, tuning);
  gkx(net);
  run_resub(net, method, tuning);
  gcx(net);
  run_resub(net, method, tuning);
  net.sweep();
  eliminate(net, -1);
  net.sweep();
  // SIS ends the flow with full_simplify -m nocomp; our SDC-exact variant
  // (bounded TFI enumeration) plays that role.
  full_simplify_network(net);
  simplify_network(net);
}

}  // namespace rarsub
