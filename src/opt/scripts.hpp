#pragma once
// The SIS script setups of the paper's experiments (Sec. V):
//
//   Script A:  eliminate 0; simplify
//   Script B:  eliminate 0; simplify; gcx
//   Script C:  eliminate 0; simplify; gkx
//   script.algebraic: the full SIS flow, with every `resub` occurrence
//                     replaced by the method under test (Table V).
//
// The A/B/C scripts only *prepare* the initial circuit; the four
// resubstitution methods are then applied to fresh copies of it.

#include <string>

#include "network/network.hpp"

namespace rarsub {

/// The four columns of the paper's tables.
enum class ResubMethod {
  None,          ///< no resubstitution (for measuring initial literals)
  SisAlgebraic,  ///< the `resub -d` baseline
  Basic,
  Extended,
  ExtendedGdc,
};

std::string method_name(ResubMethod m);

/// Knobs forwarded to substitute_network by every resub site. Defaults
/// reproduce the paper flow; the CLI maps --jobs / --no-prune here.
struct ResubTuning {
  /// Worker threads for best-gain evaluation (substitute_network is
  /// deterministic for any value; 1 = serial).
  int jobs = 1;
  /// Candidate filter (signature pruning + negative-pair memo). Sound:
  /// turning it off changes only the run time, never the result.
  bool prune = true;
  /// Journal-driven incremental maintenance of the GDC method's gate
  /// view. Like prune: off changes only the run time, never the result.
  bool incremental = true;
  /// Paranoid self-verification (CLI --verify): replay an equivalence
  /// check on the affected output cone after every committed
  /// substitution; a bad commit throws at the commit site.
  bool verify = false;
};

/// Run the selected resubstitution method once over the network.
void run_resub(Network& net, ResubMethod method,
               const ResubTuning& tuning = {});

/// Scripts A/B/C preprocessing (paper Sec. V).
void script_a(Network& net);
void script_b(Network& net);
void script_c(Network& net);

/// Our rendition of SIS `script.algebraic` with `resub` replaced by
/// `method` (Table V). Chosen "because it is one of the scripts that
/// contain the most resub's".
void script_algebraic(Network& net, ResubMethod method,
                      const ResubTuning& tuning = {});

}  // namespace rarsub
