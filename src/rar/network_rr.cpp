#include "rar/network_rr.hpp"

#include <cassert>

#include "gatenet/build.hpp"
#include "gatenet/incremental.hpp"
#include "obs/obs.hpp"
#include "rar/redundancy.hpp"

namespace rarsub {

NetworkRrStats network_redundancy_removal(Network& net,
                                          const NetworkRrOptions& opts,
                                          IncrementalGateView* view) {
  OBS_SCOPED_TIMER("network_rr.run");
  OBS_COUNT("network_rr.runs", 1);
  NetworkRrStats stats;
  stats.literals_before = net.factored_literals();

  // ATPG mutates the gate array, so take a copy when working from a
  // live view; the copy is O(gates) versus build_gatenet's full
  // re-decomposition.
  GateNetMap map_local;
  const GateNetMap* mapp = &map_local;
  GateNet gn;
  if (view != nullptr) {
    view->refresh();
    gn = view->gatenet();
    mapp = &view->map();
  } else {
    gn = build_gatenet(net, map_local);
  }
  const GateNetMap& map = *mapp;

  RemoveOptions ropts;
  ropts.learning_depth = opts.learning_depth;
  ropts.both_polarities = opts.both_polarities;
  ropts.to_fixpoint = true;
  ropts.one_pass = opts.one_pass;
  ropts.implication_budget = opts.implication_budget;
  stats.wires_removed = remove_all_redundancies(gn, ropts);
  OBS_COUNT("network_rr.wires_removed", stats.wires_removed);
  if (stats.wires_removed == 0) {
    stats.literals_after = stats.literals_before;
    return stats;
  }

  // Fold the surviving gate structure back into node covers. By
  // construction every internal node is (cube AND gates) -> (one OR gate);
  // removals only delete pins or constant-ize gates, so the shape is
  // intact and each node can be read back independently.
  std::vector<int> gate_owner_var(static_cast<std::size_t>(gn.num_gates()), -1);
  for (NodeId id : net.topo_order()) {
    const Node& nd = net.node(id);
    const int root = map.node_out[static_cast<std::size_t>(id)];
    const int nv = static_cast<int>(nd.fanins.size());

    // Map source gates back to local variables of this node.
    for (int v = 0; v < nv; ++v)
      gate_owner_var[static_cast<std::size_t>(
          map.node_out[static_cast<std::size_t>(nd.fanins[static_cast<std::size_t>(v)])])] = v;

    Sop func(nv);
    const Gate& rg = gn.gate(root);
    bool valid = true;
    if (rg.type == GateType::Const0) {
      // func stays empty
    } else if (rg.type == GateType::Const1) {
      func.add_cube(Cube(nv));
    } else if (rg.type == GateType::Or) {
      for (const Signal& cs : rg.fanins) {
        const Gate& cg = gn.gate(cs.gate);
        if (!cs.neg && cg.type == GateType::Const0) continue;  // dead cube
        if (!cs.neg && cg.type == GateType::Const1) {
          func.add_cube(Cube(nv));  // constant-1 cube: node is tautology
          continue;
        }
        if (cs.neg || cg.type != GateType::And) {
          valid = false;  // unexpected shape; leave the node alone
          break;
        }
        Cube c(nv);
        bool cube_ok = true;
        for (const Signal& lit : cg.fanins) {
          const int v = gate_owner_var[static_cast<std::size_t>(lit.gate)];
          if (v < 0) {
            cube_ok = false;
            break;
          }
          // Merged literals intersect (clash -> empty cube).
          const Lit want = lit.neg ? Lit::Neg : Lit::Pos;
          const Lit cur = c.lit(v);
          if (cur != Lit::Absent && cur != want) {
            c = Cube(nv);
            cube_ok = false;  // contradictory literals: cube is empty
            break;
          }
          c.set_lit(v, want);
        }
        if (cube_ok) func.add_cube(std::move(c));
      }
    } else {
      valid = false;
    }

    // Undo the variable markers before moving on.
    for (int v = 0; v < nv; ++v)
      gate_owner_var[static_cast<std::size_t>(
          map.node_out[static_cast<std::size_t>(nd.fanins[static_cast<std::size_t>(v)])])] = -1;

    if (!valid) continue;
    func.scc_minimize();
    if (func == nd.func) continue;
    net.set_function(id, {nd.fanins.begin(), nd.fanins.end()},
                     std::move(func));
  }

  net.sweep();
  stats.literals_after = net.factored_literals();
  return stats;
}

}  // namespace rarsub
