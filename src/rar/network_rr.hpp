#pragma once
// Network-level redundancy removal: decompose the whole network into the
// two-level gate view, run ATPG-based redundancy removal over every wire
// (the classical use of the paper's Sec. II machinery), and fold the
// surviving structure back into the nodes' SOP covers.
//
// Removals are justified against primary-output observability, so — like
// the GDC substitution configuration — node functions may change on
// unobservable input combinations while every PO is preserved.

#include "network/network.hpp"

namespace rarsub {

class IncrementalGateView;

struct NetworkRrOptions {
  int learning_depth = 0;
  /// Also test the gate-constant-izing fault polarity.
  bool both_polarities = true;
  /// One-pass sweep (RemoveOptions::one_pass): the default. The legacy
  /// per-wire loop is kept as the byte-equality oracle — results are
  /// identical, so flipping this only changes the run time.
  bool one_pass = true;
  /// RemoveOptions::implication_budget: 0 = exact (the default); the
  /// large tier caps closure drains to keep 10^5-node sweeps linear.
  int implication_budget = 0;
};

struct NetworkRrStats {
  int wires_removed = 0;
  int literals_before = 0;
  int literals_after = 0;
};

/// Remove redundant literals and cubes everywhere in the network.
///
/// When the caller already maintains an `IncrementalGateView` of `net`,
/// pass it: the pass then refreshes the view (O(journal delta)) and runs
/// ATPG on a copy of its gate array instead of paying a from-scratch
/// `build_gatenet`. The view itself is never mutated — the fold-back's
/// `set_function` calls reach it through the mutation journal like any
/// other edit.
NetworkRrStats network_redundancy_removal(Network& net,
                                          const NetworkRrOptions& opts = {},
                                          IncrementalGateView* view = nullptr);

}  // namespace rarsub
