#include "rar/rar_opt.hpp"

#include <algorithm>

#include "atpg/fault.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "rar/redundancy.hpp"

namespace rarsub {

namespace {

int total_wires(const GateNet& net) {
  int n = 0;
  for (int g = 0; g < net.num_gates(); ++g) {
    const Gate& gd = net.gate(g);
    if (gd.type == GateType::And || gd.type == GateType::Or)
      n += static_cast<int>(gd.fanins.size());
  }
  return n;
}

}  // namespace

RarStats rar_optimize(GateNet& net, const RarOptions& opts) {
  OBS_SCOPED_TIMER("rar.optimize");
  RarStats stats;
  bool progress = true;
  int targets_tried = 0;

  while (progress && targets_tried < opts.max_targets) {
    progress = false;
    for (int g = 0; g < net.num_gates() && targets_tried < opts.max_targets; ++g) {
      const Gate& gd = net.gate(g);
      if (gd.type != GateType::And && gd.type != GateType::Or) continue;
      for (int p = 0; p < static_cast<int>(gd.fanins.size()); ++p) {
        if (targets_tried >= opts.max_targets) break;
        ++targets_tried;
        const WireRef target{g, p};
        const bool sv = removal_stuck_value(gd.type);
        const FaultResult fr = analyze_fault(net, target, sv, opts.learning_depth);
        if (fr.untestable) {  // already removable for free
          OBS_EVENT(.kind = obs::EventKind::WireRemove, .node = g,
                    .divisor = p, .reason = "untestable");
          net.remove_fanin(target);
          ++stats.wires_removed;
          progress = true;
          break;  // pin indices shifted; restart this gate
        }

        // Mandatory assignments of the target's test; try to contradict
        // one at a dominator by adding a candidate connection.
        const std::vector<bool> cone = net.tfo_mask(g);
        bool committed = false;
        for (int dom : propagation_dominators(net, g)) {
          const Gate& dg = net.gate(dom);
          if (dg.type != GateType::And && dg.type != GateType::Or) continue;
          const bool d_nctrl = (dg.type == GateType::And);
          for (int cand = 0; cand < net.num_gates() && !committed; ++cand) {
            if (cand == dom || cand == g) continue;
            if (cone[static_cast<std::size_t>(cand)]) continue;  // would cycle / carry fault
            if (fr.values[static_cast<std::size_t>(cand)] == TV::X) continue;
            // Skip if already an input of the dominator.
            bool present = false;
            for (const Signal& s : dg.fanins)
              if (s.gate == cand) present = true;
            if (present) continue;
            // Polarity such that the mandatory value is CONTROLLING at the
            // dominator: the target's test then conflicts => untestable.
            const bool mand = fr.values[static_cast<std::size_t>(cand)] == TV::One;
            const Signal add{cand, mand == d_nctrl};

            const WireRef added = net.add_fanin(dom, add);
            OBS_EVENT(.kind = obs::EventKind::WireAdd, .node = dom,
                      .divisor = cand, .a = add.neg ? 1 : 0, .b = g);
            // The added connection must itself be redundant.
            if (!wire_redundant(net, added, removal_stuck_value(dg.type),
                                opts.learning_depth)) {
              OBS_EVENT(.kind = obs::EventKind::WireRemove, .node = dom,
                        .divisor = added.pin, .reason = "not_redundant");
              net.remove_fanin(added);
              continue;
            }
            // Accept only if the removals beat the addition.
            const int before = total_wires(net);
            std::vector<WireRef> all;
            for (int x = 0; x < net.num_gates(); ++x) {
              const Gate& xg = net.gate(x);
              if (xg.type != GateType::And && xg.type != GateType::Or) continue;
              for (int q = 0; q < static_cast<int>(xg.fanins.size()); ++q) {
                if (x == added.gate && q == added.pin) continue;  // keep it
                all.push_back(WireRef{x, q});
              }
            }
            RemoveOptions ro;
            ro.learning_depth = opts.learning_depth;
            ro.to_fixpoint = false;
            const int removed = remove_redundant_wires(net, all, ro);
            if (total_wires(net) < before - 0 && removed >= 2) {
              stats.wires_added += 1;
              stats.wires_removed += removed;
              stats.transformations += 1;
              committed = true;
              progress = true;
            } else if (removed == 0) {
              // Nothing happened: retract the addition.
              const Gate& dg2 = net.gate(dom);
              for (int q = 0; q < static_cast<int>(dg2.fanins.size()); ++q)
                if (dg2.fanins[static_cast<std::size_t>(q)] == add) {
                  OBS_EVENT(.kind = obs::EventKind::WireRemove, .node = dom,
                            .divisor = q, .reason = "retract");
                  net.remove_fanin(WireRef{dom, q});
                  break;
                }
            } else {
              // Removed exactly one wire for one added: neutral; keep the
              // simpler accounting and retract nothing (function is intact)
              // but do not count it as a win.
              committed = true;
              progress = true;
              stats.wires_added += 1;
              stats.wires_removed += removed;
            }
          }
          if (committed) break;
        }
        if (committed) break;
      }
    }
  }
  // Publish the run's struct into the registry (RarStats stays the public
  // API; the counters make the run visible to --stats / RARSUB_REPORT).
  OBS_COUNT("rar.targets_tried", targets_tried);
  OBS_COUNT("rar.wires_added", stats.wires_added);
  OBS_COUNT("rar.wires_removed", stats.wires_removed);
  OBS_COUNT("rar.transformations", stats.transformations);
  return stats;
}

}  // namespace rarsub
