#pragma once
// Classic single-wire redundancy-addition-and-removal optimizer
// (Sec. II review; Entrena–Cheng / perturb-and-simplify style): pick a
// target wire, derive the mandatory assignments of its stuck-at test, add
// one redundant candidate connection that creates a conflict, and remove
// the target (plus anything else that became redundant). Kept as the
// general-purpose baseline the paper's *specialized, multiple-wire* RAR
// configuration is contrasted with.

#include "gatenet/gatenet.hpp"

namespace rarsub {

struct RarOptions {
  int learning_depth = 0;
  /// Give up after this many attempted target wires.
  int max_targets = 10000;
};

struct RarStats {
  int wires_added = 0;
  int wires_removed = 0;
  int transformations = 0;  ///< committed add+remove rounds
};

/// One pass of classic RAR over the circuit. Every committed transformation
/// strictly decreases the total wire count; the circuit function at the
/// observables is preserved.
RarStats rar_optimize(GateNet& net, const RarOptions& opts = {});

}  // namespace rarsub
