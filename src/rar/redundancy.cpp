#include "rar/redundancy.hpp"

#include <algorithm>

#include "obs/ledger.hpp"
#include "obs/obs.hpp"

namespace rarsub {

bool wire_redundant(const GateNet& net, WireRef w, bool stuck_value,
                    int learning_depth) {
  return analyze_fault(net, w, stuck_value, learning_depth).untestable;
}

namespace {

// Stable wire identity across pin removals: (gate, source signal, count of
// identical earlier pins).
struct WireKey {
  int gate;
  Signal src;
};

// Resolve a key back to a current pin index; -1 if gone.
int resolve(const GateNet& net, const WireKey& k) {
  const Gate& gd = net.gate(k.gate);
  for (int p = 0; p < static_cast<int>(gd.fanins.size()); ++p)
    if (gd.fanins[static_cast<std::size_t>(p)] == k.src) return p;
  return -1;
}

// The one-pass sweep: identical wire enumeration, resolution and removal
// actions as the legacy loop below, but all faults of a pass go through
// one persistent FaultAnalyzer that is kept exact across removals by the
// journal hooks. Same verdicts at every step => byte-identical results.
int remove_redundant_wires_onepass(GateNet& net,
                                   const std::vector<WireKey>& keys,
                                   const RemoveOptions& opts) {
  OBS_COUNT("rr.onepass.sweeps", 1);
  OBS_PHASE("rr.onepass.sweep");
  FaultAnalyzer fa(net, opts.learning_depth, opts.implication_budget);
  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const WireKey& k : keys) {
      const Gate& gd = net.gate(k.gate);
      if (gd.type != GateType::And && gd.type != GateType::Or) continue;
      const int pin = resolve(net, k);
      if (pin < 0) continue;
      const WireRef w{k.gate, pin};
      const bool del_val = removal_stuck_value(gd.type);
      if (fa.untestable(w, del_val)) {
        OBS_EVENT(.kind = obs::EventKind::WireRemove, .node = w.gate,
                  .divisor = w.pin, .reason = "pin");
        net.remove_fanin(w);
        fa.note_remove_fanin(w.gate, k.src.gate);
        ++removed;
        changed = true;
        continue;
      }
      if (opts.both_polarities && fa.untestable(w, !del_val)) {
        OBS_EVENT(.kind = obs::EventKind::WireRemove, .node = w.gate,
                  .divisor = w.pin, .reason = "const");
        const std::vector<Signal> former = gd.fanins;
        net.make_const(k.gate, gd.type == GateType::Or);
        fa.note_make_const(k.gate, former);
        ++removed;
        changed = true;
      }
    }
    if (!opts.to_fixpoint) break;
  }
  return removed;
}

}  // namespace

int remove_redundant_wires(GateNet& net, const std::vector<WireRef>& candidates,
                           const RemoveOptions& opts) {
  std::vector<WireKey> keys;
  keys.reserve(candidates.size());
  for (const WireRef& w : candidates) {
    const Gate& gd = net.gate(w.gate);
    keys.push_back(WireKey{w.gate, gd.fanins[static_cast<std::size_t>(w.pin)]});
  }
  if (opts.one_pass) return remove_redundant_wires_onepass(net, keys, opts);

  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const WireKey& k : keys) {
      const Gate& gd = net.gate(k.gate);
      if (gd.type != GateType::And && gd.type != GateType::Or) continue;
      const int pin = resolve(net, k);
      if (pin < 0) continue;
      const WireRef w{k.gate, pin};
      const bool del_val = removal_stuck_value(gd.type);
      if (wire_redundant(net, w, del_val, opts.learning_depth)) {
        OBS_EVENT(.kind = obs::EventKind::WireRemove, .node = w.gate,
                  .divisor = w.pin, .reason = "pin");
        net.remove_fanin(w);
        ++removed;
        changed = true;
        continue;
      }
      if (opts.both_polarities &&
          wire_redundant(net, w, !del_val, opts.learning_depth)) {
        // Input stuck at the controlling value: the whole gate is constant.
        OBS_EVENT(.kind = obs::EventKind::WireRemove, .node = w.gate,
                  .divisor = w.pin, .reason = "const");
        net.make_const(k.gate, gd.type == GateType::Or);
        ++removed;
        changed = true;
      }
    }
    if (!opts.to_fixpoint) break;
  }
  return removed;
}

int remove_all_redundancies(GateNet& net, const RemoveOptions& opts) {
  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<WireRef> all;
    for (int g = 0; g < net.num_gates(); ++g) {
      const Gate& gd = net.gate(g);
      if (gd.type != GateType::And && gd.type != GateType::Or) continue;
      for (int p = 0; p < static_cast<int>(gd.fanins.size()); ++p)
        all.push_back(WireRef{g, p});
    }
    RemoveOptions once = opts;
    once.to_fixpoint = false;
    const int n = remove_redundant_wires(net, all, once);
    removed += n;
    changed = opts.to_fixpoint && n > 0;
  }
  return removed;
}

}  // namespace rarsub
