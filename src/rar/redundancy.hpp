#pragma once
// Redundancy removal: test wires for untestable stuck-at faults and delete
// them. Inside the division configuration this is the step that "really
// performs the minimization process" (paper Sec. IV).

#include <vector>

#include "atpg/fault.hpp"
#include "gatenet/gatenet.hpp"

namespace rarsub {

/// Is the stuck-at-`stuck_value` fault on `w` untestable?
bool wire_redundant(const GateNet& net, WireRef w, bool stuck_value,
                    int learning_depth = 0);

struct RemoveOptions {
  int learning_depth = 0;
  /// Test the constant-izing polarity too (AND input s-a-0 => gate is
  /// constant 0), not just pin deletion.
  bool both_polarities = false;
  /// Iterate to fixpoint (a removal can expose further redundancies).
  bool to_fixpoint = true;
  /// Use the one-pass heuristic (Teslenko & Dubrova, PAPERS.md): one
  /// persistent FaultAnalyzer whose implication state is rewound by trail
  /// and patched from the removal journal, instead of a from-scratch ATPG
  /// per wire. Verdicts — and therefore results — are byte-identical to
  /// the legacy loop; only the cost per wire changes.
  bool one_pass = false;
  /// Implication-effort dial for the one-pass analyzer: cap each closure
  /// drain at this many gate visits (ImplicationEngine::set_visit_budget).
  /// 0 = exact/unlimited. A positive budget trades removals for linear
  /// per-fault cost — the large workload tier's setting. Ignored by the
  /// legacy loop, whose per-wire ATPG is always exact.
  int implication_budget = 0;
};

/// Remove redundant wires among `candidates` (pins are re-resolved by
/// (gate, source-signal) identity as earlier removals shift pin indices).
/// Returns the number of deleted pins / constant-ized gates.
int remove_redundant_wires(GateNet& net, const std::vector<WireRef>& candidates,
                           const RemoveOptions& opts = {});

/// Whole-circuit redundancy removal over every AND/OR input pin.
int remove_all_redundancies(GateNet& net, const RemoveOptions& opts = {});

}  // namespace rarsub
