#pragma once
// Redundancy removal: test wires for untestable stuck-at faults and delete
// them. Inside the division configuration this is the step that "really
// performs the minimization process" (paper Sec. IV).

#include <vector>

#include "atpg/fault.hpp"
#include "gatenet/gatenet.hpp"

namespace rarsub {

/// Is the stuck-at-`stuck_value` fault on `w` untestable?
bool wire_redundant(const GateNet& net, WireRef w, bool stuck_value,
                    int learning_depth = 0);

struct RemoveOptions {
  int learning_depth = 0;
  /// Test the constant-izing polarity too (AND input s-a-0 => gate is
  /// constant 0), not just pin deletion.
  bool both_polarities = false;
  /// Iterate to fixpoint (a removal can expose further redundancies).
  bool to_fixpoint = true;
};

/// Remove redundant wires among `candidates` (pins are re-resolved by
/// (gate, source-signal) identity as earlier removals shift pin indices).
/// Returns the number of deleted pins / constant-ized gates.
int remove_redundant_wires(GateNet& net, const std::vector<WireRef>& candidates,
                           const RemoveOptions& opts = {});

/// Whole-circuit redundancy removal over every AND/OR input pin.
int remove_all_redundancies(GateNet& net, const RemoveOptions& opts = {});

}  // namespace rarsub
