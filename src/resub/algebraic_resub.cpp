#include "resub/algebraic_resub.hpp"

#include <algorithm>

#include "network/complement_cache.hpp"
#include "sop/algdiv.hpp"
#include "sop/factor.hpp"

namespace rarsub {

namespace {

// Dividend/divisor covers aligned on the union of the two fanin lists.
struct Pair {
  std::vector<NodeId> vars;
  Sop f_sop;
  Sop d_sop;
};

Pair align(const Network& net, NodeId f, NodeId d) {
  Pair p;
  const Node& fn = net.node(f);
  const Node& dn = net.node(d);
  p.vars.assign(fn.fanins.begin(), fn.fanins.end());
  std::vector<int> dmap;
  for (NodeId x : dn.fanins) {
    auto it = std::find(p.vars.begin(), p.vars.end(), x);
    if (it == p.vars.end()) {
      p.vars.push_back(x);
      dmap.push_back(static_cast<int>(p.vars.size() - 1));
    } else {
      dmap.push_back(static_cast<int>(it - p.vars.begin()));
    }
  }
  const int nv = static_cast<int>(p.vars.size());
  std::vector<int> fmap(fn.fanins.size());
  for (std::size_t i = 0; i < fn.fanins.size(); ++i) fmap[i] = static_cast<int>(i);
  p.f_sop = fn.func.remap(nv, fmap);
  p.d_sop = dn.func.remap(nv, dmap);
  return p;
}

}  // namespace

// Attempt one algebraic division; returns the gain on success.
std::optional<int> algebraic_substitute_cached(Network& net, NodeId f, NodeId d,
                                               const ResubOptions& opts,
                                               bool commit,
                                               ComplementCache* comps) {
  const Node& fn = net.node(f);
  const Node& dn = net.node(d);
  if (fn.is_pi || dn.is_pi || !fn.alive || !dn.alive || f == d)
    return std::nullopt;
  if (fn.func.num_cubes() == 0 || dn.func.num_cubes() == 0) return std::nullopt;
  if (fn.func.num_cubes() > opts.max_node_cubes ||
      dn.func.num_cubes() > opts.max_divisor_cubes)
    return std::nullopt;
  if (net.depends_on(d, f)) return std::nullopt;

  const Pair p = align(net, f, d);
  const int nv = static_cast<int>(p.vars.size());

  int best_gain = 0;
  bool best_neg = false;
  AlgDivResult best_div;

  auto consider = [&](const Sop& divisor, bool negated) {
    const AlgDivResult r = weak_divide(p.f_sop, divisor);
    if (r.quotient.num_cubes() == 0) return;
    // new_f = q·y + r over nv+1 vars (y possibly complemented).
    std::vector<int> ext(static_cast<std::size_t>(nv));
    for (int i = 0; i < nv; ++i) ext[static_cast<std::size_t>(i)] = i;
    Sop g(nv + 1);
    const Sop q_ext = r.quotient.remap(nv + 1, ext);
    for (Cube c : q_ext.cubes()) {
      c.set_lit(nv, negated ? Lit::Neg : Lit::Pos);
      g.add_cube(std::move(c));
    }
    const Sop r_ext = r.remainder.remap(nv + 1, ext);
    for (const Cube& c : r_ext.cubes()) g.add_cube(c);
    const int gain =
        factored_literal_count(p.f_sop) - factored_literal_count(g);
    if (gain > best_gain) {
      best_gain = gain;
      best_neg = negated;
      best_div = r;
    }
  };

  consider(p.d_sop, false);
  if (opts.use_complement) {
    ComplementCache local;
    const Sop& d_comp_local = (comps ? *comps : local).get(net, d);
    if (d_comp_local.num_cubes() > 0 &&
        d_comp_local.num_cubes() <= opts.max_complement_cubes) {
      std::vector<int> dmap;
      for (NodeId x : dn.fanins) {
        auto it = std::find(p.vars.begin(), p.vars.end(), x);
        dmap.push_back(static_cast<int>(it - p.vars.begin()));
      }
      consider(d_comp_local.remap(nv, dmap), true);
    }
  }

  if (best_gain <= 0) return std::nullopt;
  if (!commit) return best_gain;

  // Commit: f = q·(y or !y) + r with y = d appended to the fanins.
  std::vector<int> ext(static_cast<std::size_t>(nv));
  for (int i = 0; i < nv; ++i) ext[static_cast<std::size_t>(i)] = i;
  Sop g(nv + 1);
  const Sop q_ext = best_div.quotient.remap(nv + 1, ext);
  for (Cube c : q_ext.cubes()) {
    c.set_lit(nv, best_neg ? Lit::Neg : Lit::Pos);
    g.add_cube(std::move(c));
  }
  const Sop r_ext = best_div.remainder.remap(nv + 1, ext);
  for (const Cube& c : r_ext.cubes()) g.add_cube(c);
  g.scc_minimize();

  std::vector<NodeId> fanins;
  std::vector<int> var_map(static_cast<std::size_t>(nv + 1), 0);
  for (int v : g.support()) {
    const NodeId node = (v == nv) ? d : p.vars[static_cast<std::size_t>(v)];
    auto it = std::find(fanins.begin(), fanins.end(), node);
    if (it == fanins.end()) {
      fanins.push_back(node);
      var_map[static_cast<std::size_t>(v)] = static_cast<int>(fanins.size() - 1);
    } else {
      var_map[static_cast<std::size_t>(v)] = static_cast<int>(it - fanins.begin());
    }
  }
  Sop func = g.remap(static_cast<int>(fanins.size()), var_map);
  func.scc_minimize();
  net.set_function(f, std::move(fanins), std::move(func));
  return best_gain;
}

std::optional<int> algebraic_substitute(Network& net, NodeId f, NodeId d,
                                        const ResubOptions& opts, bool commit) {
  return algebraic_substitute_cached(net, f, d, opts, commit, nullptr);
}

ResubStats algebraic_resub(Network& net, const ResubOptions& opts) {
  ResubStats stats;
  stats.literals_before = net.factored_literals();
  ComplementCache comps;
  for (int pass = 0; pass < opts.max_passes; ++pass) {
    bool changed = false;
    const std::vector<NodeId> order = net.topo_order();
    for (NodeId f : order) {
      if (!net.node(f).alive || net.node(f).is_pi) continue;
      NodeId best_d = kNoNode;
      int best_gain = 0;
      for (NodeId d : order) {
        if (!net.node(d).alive || d == f) continue;
        const std::optional<int> gain =
            algebraic_substitute_cached(net, f, d, opts, false, &comps);
        if (!gain || *gain <= 0) continue;
        if (opts.first_positive) {
          best_d = d;
          break;
        }
        if (*gain > best_gain) {
          best_gain = *gain;
          best_d = d;
        }
      }
      if (best_d != kNoNode) {
        if (algebraic_substitute_cached(net, f, best_d, opts, true, &comps)) {
          ++stats.substitutions;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  net.sweep();
  stats.literals_after = net.factored_literals();
  return stats;
}

}  // namespace rarsub
