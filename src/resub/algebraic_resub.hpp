#pragma once
// Algebraic resubstitution — the SIS `resub -d` baseline of the paper's
// experiments. Each node is weak-divided by every other node (and by its
// complement, when small); a rewrite is committed when it saves factored
// literals.

#include <optional>

#include "network/network.hpp"

namespace rarsub {

struct ResubOptions {
  /// Also try dividing by the complement of the divisor node (`-d` uses
  /// node functions and their complements in SIS).
  bool use_complement = true;
  /// Commit the first positive-gain division per node (matching the greedy
  /// setup of the paper's own configurations).
  bool first_positive = true;
  int max_passes = 4;
  int max_node_cubes = 64;
  int max_divisor_cubes = 24;
  int max_complement_cubes = 24;
};

struct ResubStats {
  int substitutions = 0;
  int literals_before = 0;
  int literals_after = 0;
};

ResubStats algebraic_resub(Network& net, const ResubOptions& opts = {});

/// One dividend/divisor attempt: weak-divide node `f` by node `d` (and by
/// its complement when `opts.use_complement`), committing the rewrite when
/// the factored-literal gain is positive and `commit` is set. Returns the
/// gain, or nullopt when no division applies. Shared with `gkx`, which
/// substitutes freshly extracted kernels the same way.
std::optional<int> algebraic_substitute(Network& net, NodeId f, NodeId d,
                                        const ResubOptions& opts, bool commit);

}  // namespace rarsub
