#include "resub/boolean_baselines.hpp"

#include <algorithm>

#include "bdd/bdd_div.hpp"
#include "sop/espresso.hpp"
#include "sop/factor.hpp"

namespace rarsub {

std::optional<Sop> espresso_boolean_divide(const Sop& f, const Sop& d) {
  if (d.num_cubes() == 0 || d.is_tautology()) return std::nullopt;
  const int nv = f.num_vars();

  // Lift both covers to nv+1 variables; y is variable nv.
  std::vector<int> ext(static_cast<std::size_t>(nv));
  for (int i = 0; i < nv; ++i) ext[static_cast<std::size_t>(i)] = i;
  const Sop f_ext = f.remap(nv + 1, ext);
  const Sop d_ext = d.remap(nv + 1, ext);

  // DC = y ⊕ d(x) = y·d' + y'·d : assignments where the fresh input
  // disagrees with the divisor can never happen in the circuit.
  const Sop d_comp = d_ext.complement();
  Sop dc(nv + 1);
  for (Cube c : d_comp.cubes()) {
    c.set_lit(nv, Lit::Pos);
    dc.add_cube(std::move(c));
  }
  for (Cube c : d_ext.cubes()) {
    c.set_lit(nv, Lit::Neg);
    dc.add_cube(std::move(c));
  }

  Sop result = espresso_lite(f_ext, dc);
  // Useful only when the divisor literal actually appears.
  for (const Cube& c : result.cubes())
    if (c.lit(nv) != Lit::Absent) return result;
  return std::nullopt;
}

namespace {

// Aligned covers over the union of the two fanin lists (same convention as
// the other substitution drivers).
struct Pair {
  std::vector<NodeId> vars;
  Sop f_sop;
  Sop d_sop;
};

Pair align(const Network& net, NodeId f, NodeId d) {
  Pair p;
  const Node& fn = net.node(f);
  const Node& dn = net.node(d);
  p.vars.assign(fn.fanins.begin(), fn.fanins.end());
  std::vector<int> dmap;
  for (NodeId x : dn.fanins) {
    auto it = std::find(p.vars.begin(), p.vars.end(), x);
    if (it == p.vars.end()) {
      p.vars.push_back(x);
      dmap.push_back(static_cast<int>(p.vars.size() - 1));
    } else {
      dmap.push_back(static_cast<int>(it - p.vars.begin()));
    }
  }
  const int nv = static_cast<int>(p.vars.size());
  std::vector<int> fmap(fn.fanins.size());
  for (std::size_t i = 0; i < fn.fanins.size(); ++i) fmap[i] = static_cast<int>(i);
  p.f_sop = fn.func.remap(nv, fmap);
  p.d_sop = dn.func.remap(nv, dmap);
  return p;
}

// f re-expressed with the y literal using generalized cofactors.
std::optional<Sop> bdd_boolean_divide(const Sop& f, const Sop& d) {
  const BddDivResult r = bdd_divide(f, d);
  if (!r.success || r.quotient.num_cubes() == 0) return std::nullopt;
  const int nv = f.num_vars();
  std::vector<int> ext(static_cast<std::size_t>(nv));
  for (int i = 0; i < nv; ++i) ext[static_cast<std::size_t>(i)] = i;
  Sop g(nv + 1);
  const Sop q_ext = r.quotient.remap(nv + 1, ext);
  for (Cube c : q_ext.cubes()) {
    c.set_lit(nv, Lit::Pos);
    g.add_cube(std::move(c));
  }
  const Sop r_ext = r.remainder.remap(nv + 1, ext);
  for (const Cube& c : r_ext.cubes()) g.add_cube(c);
  g.scc_minimize();
  for (const Cube& c : g.cubes())
    if (c.lit(nv) != Lit::Absent) return g;
  return std::nullopt;
}

}  // namespace

std::optional<int> baseline_substitute(Network& net, NodeId f, NodeId d,
                                       const BaselineOptions& opts, bool commit) {
  const Node& fn = net.node(f);
  const Node& dn = net.node(d);
  if (fn.is_pi || dn.is_pi || !fn.alive || !dn.alive || f == d)
    return std::nullopt;
  if (fn.func.num_cubes() == 0 || dn.func.num_cubes() == 0) return std::nullopt;
  if (fn.func.num_cubes() > opts.max_node_cubes ||
      dn.func.num_cubes() > opts.max_divisor_cubes)
    return std::nullopt;
  if (net.depends_on(d, f)) return std::nullopt;

  const Pair p = align(net, f, d);
  const int nv = static_cast<int>(p.vars.size());
  if (nv > opts.max_common_vars) return std::nullopt;

  std::optional<Sop> g = (opts.kind == BooleanBaseline::EspressoDc)
                             ? espresso_boolean_divide(p.f_sop, p.d_sop)
                             : bdd_boolean_divide(p.f_sop, p.d_sop);
  if (!g) return std::nullopt;

  const int gain =
      factored_literal_count(p.f_sop) - factored_literal_count(*g);
  if (gain <= 0) return std::nullopt;
  if (!commit) return gain;

  std::vector<NodeId> fanins;
  std::vector<int> var_map(static_cast<std::size_t>(nv + 1), 0);
  for (int v : g->support()) {
    const NodeId node = (v == nv) ? d : p.vars[static_cast<std::size_t>(v)];
    auto it = std::find(fanins.begin(), fanins.end(), node);
    if (it == fanins.end()) {
      fanins.push_back(node);
      var_map[static_cast<std::size_t>(v)] = static_cast<int>(fanins.size() - 1);
    } else {
      var_map[static_cast<std::size_t>(v)] = static_cast<int>(it - fanins.begin());
    }
  }
  Sop func = g->remap(static_cast<int>(fanins.size()), var_map);
  func.scc_minimize();
  net.set_function(f, std::move(fanins), std::move(func));
  return gain;
}

BaselineStats boolean_baseline_resub(Network& net, const BaselineOptions& opts) {
  BaselineStats stats;
  stats.literals_before = net.factored_literals();
  for (int pass = 0; pass < opts.max_passes; ++pass) {
    bool changed = false;
    const std::vector<NodeId> order = net.topo_order();
    for (NodeId f : order) {
      if (!net.node(f).alive || net.node(f).is_pi) continue;
      NodeId best_d = kNoNode;
      int best_gain = 0;
      for (NodeId d : order) {
        if (!net.node(d).alive || d == f) continue;
        const std::optional<int> gain = baseline_substitute(net, f, d, opts, false);
        if (!gain || *gain <= 0) continue;
        if (opts.first_positive) {
          best_d = d;
          break;
        }
        if (*gain > best_gain) {
          best_gain = *gain;
          best_d = d;
        }
      }
      if (best_d != kNoNode &&
          baseline_substitute(net, f, best_d, opts, true)) {
        ++stats.substitutions;
        changed = true;
      }
    }
    if (!changed) break;
  }
  net.sweep();
  stats.literals_after = net.factored_literals();
  return stats;
}

}  // namespace rarsub
