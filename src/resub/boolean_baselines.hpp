#pragma once
// The two prior Boolean-division approaches the paper reviews in Sec. I,
// implemented as network-level substitution baselines:
//
//  * Espresso-with-don't-cares (the "ad-hoc setup ... based on a good
//    two-level optimizer"): to divide f by d, minimize f over the extended
//    space (vars ∪ y) with the don't-care set y ⊕ d(vars) — every
//    assignment where the new input y disagrees with the divisor function
//    can never occur, and the minimizer exploits it, producing a cover of
//    f that uses the y literal.
//
//  * BDD division (Stanion–Sechen [14]): quotient = f ⇓ d via generalized
//    cofactors (see bdd/bdd_div.hpp), lifted from cover pairs to network
//    substitution.
//
// Both commit on positive factored-literal gain, mirroring the RAR-based
// driver, so `bench/ablation_baselines` compares all four Boolean division
// engines from identical starting points.

#include <optional>

#include "network/network.hpp"

namespace rarsub {

enum class BooleanBaseline {
  EspressoDc,  ///< two-level minimization against y ⊕ d don't cares
  BddDivision, ///< generalized-cofactor quotient/remainder
};

struct BaselineOptions {
  BooleanBaseline kind = BooleanBaseline::EspressoDc;
  bool first_positive = true;
  int max_passes = 4;
  int max_node_cubes = 64;
  int max_divisor_cubes = 24;
  int max_common_vars = 22;  ///< both baselines enumerate the joint space
};

struct BaselineStats {
  int substitutions = 0;
  int literals_before = 0;
  int literals_after = 0;
};

/// One dividend/divisor attempt with the selected baseline engine.
std::optional<int> baseline_substitute(Network& net, NodeId f, NodeId d,
                                       const BaselineOptions& opts, bool commit);

/// Greedy whole-network pass, same protocol as the other drivers.
BaselineStats boolean_baseline_resub(Network& net, const BaselineOptions& opts = {});

/// Cover-level Espresso-DC division: returns f re-expressed over
/// num_vars+1 variables (the extra variable y is the divisor literal), or
/// nullopt when the divisor is constant or the result does not use y.
std::optional<Sop> espresso_boolean_divide(const Sop& f, const Sop& d);

}  // namespace rarsub
