#pragma once
// Algebraic (weak) division and related helpers (Brayton–McMullen).
//
// Algebraic division treats covers as polynomials over literals: f = q·d + r
// where the product q·d is restricted to variable-disjoint factors. This is
// the machinery behind the SIS `resub` baseline the paper compares against,
// and behind kernel/cube extraction (`gkx`/`gcx`).

#include <utility>

#include "sop/sop.hpp"

namespace rarsub {

struct AlgDivResult {
  Sop quotient;
  Sop remainder;
};

/// Weak division of `f` by `d`: the unique maximal algebraic quotient
/// q = f / d and remainder r = f − q·d. Returns an empty quotient when no
/// cube of `d` algebraically divides any cube of `f`.
AlgDivResult weak_divide(const Sop& f, const Sop& d);

/// Divide by a single cube (fast path of weak division).
AlgDivResult divide_by_cube(const Sop& f, const Cube& d);

/// Largest cube dividing every cube of `f` (the "common cube"); universe
/// cube if none.
Cube largest_common_cube(const Sop& f);

/// True if no single cube divides every cube of `f` and f has >= 2 cubes
/// (the standard kernel precondition).
bool is_cube_free(const Sop& f);

/// Remove the largest common cube, making the cover cube-free.
Sop make_cube_free(const Sop& f);

/// Algebraic product q·d (assumes variable-disjointness is acceptable;
/// cubes with clashing polarities are dropped as empty).
Sop algebraic_product(const Sop& q, const Sop& d);

}  // namespace rarsub
