// Cover complement via the unate-recursive paradigm:
//   comp(F) = x'·comp(F_x') + x·comp(F_x)
// with De-Morgan base case for single-cube covers, plus single-cube-
// containment minimization of intermediate results to keep sizes in check.

#include <cassert>

#include "sop/sop.hpp"

namespace rarsub {

namespace {

// Complement of a single cube by De Morgan: one cube per literal.
Sop complement_cube(const Cube& c) {
  Sop r(c.num_vars());
  for (int v = 0; v < c.num_vars(); ++v) {
    const Lit l = c.lit(v);
    if (l == Lit::Absent) continue;
    Cube nc(c.num_vars());
    nc.set_lit(v, l == Lit::Pos ? Lit::Neg : Lit::Pos);
    r.add_cube(std::move(nc));
  }
  return r;
}

// r := r OR (literal AND g), merging the literal into every cube of g.
void or_literal_and(Sop& r, int var, bool value, const Sop& g) {
  for (const Cube& c : g.cubes()) {
    Cube nc = c;
    const Lit cur = nc.lit(var);
    const Lit want = value ? Lit::Pos : Lit::Neg;
    if (cur != Lit::Absent && cur != want) continue;  // empty product
    nc.set_lit(var, want);
    r.add_cube(std::move(nc));
  }
}

Sop comp_rec(const Sop& f) {
  // Base cases.
  bool all_empty = true;
  for (const Cube& c : f.cubes()) {
    if (c.is_empty()) continue;
    all_empty = false;
    if (c.is_universe()) return Sop::zero(f.num_vars());
  }
  if (all_empty) return Sop::one(f.num_vars());

  int n_nonempty = 0;
  const Cube* single = nullptr;
  for (const Cube& c : f.cubes())
    if (!c.is_empty()) {
      ++n_nonempty;
      single = &c;
    }
  if (n_nonempty == 1) return complement_cube(*single);

  // Split on the most binate variable, or the most frequent one if unate.
  std::optional<int> v = most_binate_var(f);
  if (!v.has_value()) v = most_frequent_var(f);
  assert(v.has_value());

  const Sop f0 = f.cofactor(*v, false);
  const Sop f1 = f.cofactor(*v, true);
  Sop c0 = comp_rec(f0);
  Sop c1 = comp_rec(f1);

  Sop r(f.num_vars());
  r.cubes().reserve(c0.cubes().size() + c1.cubes().size());
  or_literal_and(r, *v, false, c0);
  or_literal_and(r, *v, true, c1);
  r.scc_minimize();
  return r;
}

}  // namespace

Sop Sop::complement() const {
  Sop r = comp_rec(*this);
  r.scc_minimize();
  return r;
}

}  // namespace rarsub
