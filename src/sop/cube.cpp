#include "sop/cube.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace rarsub {

namespace {

// Mask with the low bit of every pair set: 01 01 01 ...
constexpr std::uint64_t kLoMask = 0x5555555555555555ULL;

// Mask covering the pairs of the first `n` variables in a word.
std::uint64_t tail_mask(int n) {
  return n >= 32 ? ~0ULL : ((1ULL << (2 * n)) - 1);
}

}  // namespace

Cube::Cube(int num_vars) : num_vars_(num_vars) {
  assert(num_vars >= 0);
  const int nw = num_words();
  std::uint64_t* w = inline_;
  if (!inline_rep()) w = heap_ = new std::uint64_t[static_cast<std::size_t>(nw)];
  std::fill_n(w, nw, ~0ULL);
  if (num_vars > 0) {
    const int rem = num_vars % kVarsPerWord;
    if (rem != 0) w[nw - 1] = tail_mask(rem);
  }
}

Cube::Cube(const Cube& other) : num_vars_(other.num_vars_) {
  const int nw = num_words();
  std::uint64_t* w = inline_;
  if (!inline_rep()) w = heap_ = new std::uint64_t[static_cast<std::size_t>(nw)];
  std::copy_n(other.words(), nw, w);
}

Cube::Cube(Cube&& other) noexcept : num_vars_(other.num_vars_) {
  if (inline_rep()) {
    std::copy_n(other.inline_, num_words(), inline_);
  } else {
    heap_ = other.heap_;
    other.num_vars_ = 0;  // donor collapses to the empty inline cube
  }
}

Cube& Cube::operator=(const Cube& other) {
  if (this == &other) return *this;
  const int nw = other.num_words();
  if (other.inline_rep()) {
    if (!inline_rep()) delete[] heap_;
    num_vars_ = other.num_vars_;
    std::copy_n(other.inline_, nw, inline_);
  } else {
    std::uint64_t* dst;
    if (!inline_rep() && num_words() == nw) {
      dst = heap_;  // reuse the existing buffer
    } else {
      dst = new std::uint64_t[static_cast<std::size_t>(nw)];
      if (!inline_rep()) delete[] heap_;
      heap_ = dst;
    }
    num_vars_ = other.num_vars_;
    std::copy_n(other.heap_, nw, dst);
  }
  return *this;
}

Cube& Cube::operator=(Cube&& other) noexcept {
  if (this == &other) return *this;
  if (!inline_rep()) delete[] heap_;
  num_vars_ = other.num_vars_;
  if (inline_rep()) {
    std::copy_n(other.inline_, num_words(), inline_);
  } else {
    heap_ = other.heap_;
    other.num_vars_ = 0;
  }
  return *this;
}

Cube Cube::from_string(const std::string& s) {
  Cube c(static_cast<int>(s.size()));
  for (int i = 0; i < static_cast<int>(s.size()); ++i) {
    switch (s[static_cast<std::size_t>(i)]) {
      case '1': c.set_lit(i, Lit::Pos); break;
      case '0': c.set_lit(i, Lit::Neg); break;
      case '-': break;
      default: throw std::invalid_argument("Cube::from_string: bad char");
    }
  }
  return c;
}

int Cube::num_literals() const {
  // A literal is a pair with exactly one bit set; absent pairs are 11.
  int count = 0;
  const std::uint64_t* ws = words();
  for (int i = 0, nw = num_words(); i < nw; ++i) {
    const std::uint64_t w = ws[i];
    const std::uint64_t both = (w >> 1) & w & kLoMask;  // 11 pairs
    const std::uint64_t any = ((w >> 1) | w) & kLoMask;  // non-00 pairs
    count += std::popcount(any & ~both);
  }
  return count;
}

Lit Cube::lit(int var) const {
  assert(var >= 0 && var < num_vars_);
  const std::uint64_t pair = (words()[word_index(var)] >> bit_shift(var)) & 3;
  switch (pair) {
    case 0b11: return Lit::Absent;
    case 0b10: return Lit::Pos;  // only value-1 bit set
    case 0b01: return Lit::Neg;  // only value-0 bit set
    default: return Lit::Absent;  // 00 empty pair reads as Absent for lit()
  }
}

void Cube::set_lit(int var, Lit l) {
  assert(var >= 0 && var < num_vars_);
  std::uint64_t pair = 0b11;
  if (l == Lit::Pos) pair = 0b10;
  if (l == Lit::Neg) pair = 0b01;
  std::uint64_t& w = words()[word_index(var)];
  w = (w & ~(3ULL << bit_shift(var))) | (pair << bit_shift(var));
}

bool Cube::is_empty() const {
  if (num_vars_ == 0) return false;
  const std::uint64_t* ws = words();
  const int nw = num_words();
  for (int i = 0; i < nw; ++i) {
    const std::uint64_t w = ws[i];
    const std::uint64_t any = ((w >> 1) | w) & kLoMask;
    // Only inspect pairs belonging to real variables: trailing pairs beyond
    // num_vars_ were initialized to 0 by tail_mask and must be ignored.
    std::uint64_t valid = kLoMask;
    if (i + 1 == nw && num_vars_ % kVarsPerWord != 0)
      valid &= tail_mask(num_vars_ % kVarsPerWord) & kLoMask;
    if ((any & valid) != valid) return true;
  }
  return false;
}

bool Cube::is_universe() const {
  const std::uint64_t* ws = words();
  const int nw = num_words();
  for (int i = 0; i < nw; ++i) {
    std::uint64_t full = ~0ULL;
    if (i + 1 == nw && num_vars_ % kVarsPerWord != 0)
      full = tail_mask(num_vars_ % kVarsPerWord);
    if (ws[i] != full) return false;
  }
  return true;
}

bool Cube::contains(const Cube& other) const {
  assert(num_vars_ == other.num_vars_);
  const std::uint64_t* a = words();
  const std::uint64_t* b = other.words();
  for (int i = 0, nw = num_words(); i < nw; ++i)
    if ((b[i] & a[i]) != b[i]) return false;
  return true;
}

Cube Cube::intersect(const Cube& other) const {
  assert(num_vars_ == other.num_vars_);
  Cube r(*this);
  std::uint64_t* rw = r.words();
  const std::uint64_t* b = other.words();
  for (int i = 0, nw = num_words(); i < nw; ++i) rw[i] &= b[i];
  return r;
}

int Cube::distance(const Cube& other) const {
  assert(num_vars_ == other.num_vars_);
  int d = 0;
  const std::uint64_t* a = words();
  const std::uint64_t* b = other.words();
  const int nw = num_words();
  for (int i = 0; i < nw; ++i) {
    const std::uint64_t w = a[i] & b[i];
    std::uint64_t none = ~((w >> 1) | w) & kLoMask;  // pairs that became 00
    if (i + 1 == nw && num_vars_ % kVarsPerWord != 0)
      none &= tail_mask(num_vars_ % kVarsPerWord);
    d += std::popcount(none);
  }
  return d;
}

Cube Cube::consensus(const Cube& other) const {
  assert(distance(other) == 1);
  Cube r(*this);
  std::uint64_t* rw = r.words();
  const std::uint64_t* b = other.words();
  const int nw = num_words();
  for (int i = 0; i < nw; ++i) {
    const std::uint64_t w = rw[i] & b[i];
    std::uint64_t none = ~((w >> 1) | w) & kLoMask;
    if (i + 1 == nw && num_vars_ % kVarsPerWord != 0)
      none &= tail_mask(num_vars_ % kVarsPerWord);
    // Raise the single conflicting pair to 11; AND elsewhere.
    rw[i] = w | none | (none << 1);
  }
  return r;
}

Cube Cube::supercube(const Cube& other) const {
  assert(num_vars_ == other.num_vars_);
  Cube r(*this);
  std::uint64_t* rw = r.words();
  const std::uint64_t* b = other.words();
  for (int i = 0, nw = num_words(); i < nw; ++i) rw[i] |= b[i];
  return r;
}

Cube Cube::cofactor(int var, bool value) const {
  const Lit l = lit(var);
  Cube r(*this);
  if (l == Lit::Absent) {
    return r;  // variable not constrained; nothing to drop
  }
  if ((l == Lit::Pos) != value) {
    // Cube requires the opposite value: empty cofactor (pair forced to 00).
    r.words()[word_index(var)] &= ~(3ULL << bit_shift(var));
    return r;
  }
  r.set_lit(var, Lit::Absent);
  return r;
}

bool Cube::has_all_literals_of(const Cube& other) const {
  // *this must constrain at least as much: bitwise subset in this direction.
  assert(num_vars_ == other.num_vars_);
  const std::uint64_t* a = words();
  const std::uint64_t* b = other.words();
  for (int i = 0, nw = num_words(); i < nw; ++i)
    if ((a[i] & b[i]) != a[i]) return false;
  return true;
}

Cube Cube::remove_literals_of(const Cube& other) const {
  assert(has_all_literals_of(other));
  Cube r(*this);
  std::uint64_t* rw = r.words();
  const std::uint64_t* b = other.words();
  for (int i = 0, nw = num_words(); i < nw; ++i) {
    const std::uint64_t w = b[i];
    // Pairs where `other` has a literal (exactly one bit set): raise to 11.
    const std::uint64_t both = (w >> 1) & w & kLoMask;
    const std::uint64_t any = ((w >> 1) | w) & kLoMask;
    const std::uint64_t litp = any & ~both;
    rw[i] |= litp | (litp << 1);
  }
  return r;
}

Cube Cube::product(const Cube& other) const { return intersect(other); }

bool Cube::shares_literal_with(const Cube& other) const {
  assert(num_vars_ == other.num_vars_);
  const std::uint64_t* aw = words();
  const std::uint64_t* bw = other.words();
  for (int i = 0, nw = num_words(); i < nw; ++i) {
    const std::uint64_t a = aw[i], b = bw[i];
    // Pairs where `a` holds a literal (exactly one bit of the pair set).
    const std::uint64_t lit_a = (((a >> 1) | a) & ~((a >> 1) & a)) & kLoMask;
    // Pairs where the two words agree bit-for-bit.
    const std::uint64_t diff = a ^ b;
    const std::uint64_t same = ~((diff >> 1) | diff) & kLoMask;
    if ((lit_a & same) != 0) return true;
  }
  return false;
}

Cube Cube::common_literals(const Cube& other) const {
  assert(num_vars_ == other.num_vars_);
  Cube r(num_vars_);
  for (int v = 0; v < num_vars_; ++v) {
    const Lit a = lit(v);
    if (a != Lit::Absent && a == other.lit(v)) r.set_lit(v, a);
  }
  return r;
}

bool Cube::operator==(const Cube& other) const {
  if (num_vars_ != other.num_vars_) return false;
  const std::uint64_t* a = words();
  const std::uint64_t* b = other.words();
  for (int i = 0, nw = num_words(); i < nw; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

bool Cube::operator<(const Cube& other) const {
  if (num_vars_ != other.num_vars_) return num_vars_ < other.num_vars_;
  const std::uint64_t* a = words();
  const std::uint64_t* b = other.words();
  for (int i = 0, nw = num_words(); i < nw; ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

bool Cube::eval(std::uint64_t assignment) const {
  assert(num_vars_ <= 64);
  for (int v = 0; v < num_vars_; ++v) {
    const bool val = (assignment >> v) & 1;
    const Lit l = lit(v);
    if (l == Lit::Pos && !val) return false;
    if (l == Lit::Neg && val) return false;
  }
  return !is_empty();
}

std::string Cube::to_string() const {
  std::string s(static_cast<std::size_t>(num_vars_), '-');
  for (int v = 0; v < num_vars_; ++v) {
    switch (lit(v)) {
      case Lit::Pos: s[static_cast<std::size_t>(v)] = '1'; break;
      case Lit::Neg: s[static_cast<std::size_t>(v)] = '0'; break;
      case Lit::Absent: break;
    }
  }
  return s;
}

std::size_t Cube::hash() const {
  std::size_t h = static_cast<std::size_t>(num_vars_) * 0x9e3779b97f4a7c15ULL;
  const std::uint64_t* ws = words();
  for (int i = 0, nw = num_words(); i < nw; ++i)
    h = (h ^ ws[i]) * 0x100000001b3ULL;
  return h;
}

}  // namespace rarsub
