#pragma once
// Cube: a product term in espresso-style positional cube notation.
//
// Each variable occupies a pair of bits. Within the pair, the low bit set
// means "the variable may take value 0" and the high bit set means "the
// variable may take value 1":
//
//   11  variable absent from the cube (don't care)
//   01  negative literal  !x   (only value 0 allowed)
//   10  positive literal   x   (only value 1 allowed)
//   00  empty              the cube denotes the empty set of minterms
//
// With this encoding cube intersection is bitwise AND and cube containment
// is a bitwise subset test, which is what makes the SOS/POS checks of the
// paper (single-cube containment) cheap.
//
// Storage uses a two-word inline buffer (small-buffer optimization):
// cubes over up to 64 variables — every cube of the benchmark suite —
// live entirely inside the object, so copying one is a 24-byte memcpy and
// allocates nothing. Wider cubes fall back to a heap array. The
// representation is fully determined by num_vars(), so no discriminator
// is stored and equality/order/hash are representation-independent.

#include <cstdint>
#include <string>

namespace rarsub {

/// Ternary literal polarity of one variable inside a cube.
enum class Lit : std::uint8_t {
  Absent = 0,  ///< variable does not appear (bit pair 11)
  Pos = 1,     ///< positive literal x      (bit pair 10)
  Neg = 2,     ///< negative literal !x     (bit pair 01)
};

class Cube {
 public:
  Cube() noexcept : num_vars_(0) {}

  /// Universe cube (no literals) over `num_vars` variables.
  explicit Cube(int num_vars);

  Cube(const Cube& other);
  Cube(Cube&& other) noexcept;
  Cube& operator=(const Cube& other);
  Cube& operator=(Cube&& other) noexcept;
  ~Cube() {
    if (!inline_rep()) delete[] heap_;
  }

  /// Parse from a character string, one char per variable:
  /// '1' positive literal, '0' negative literal, '-' absent.
  static Cube from_string(const std::string& s);

  int num_vars() const { return num_vars_; }

  /// Number of literals (variables that appear).
  int num_literals() const;

  Lit lit(int var) const;
  void set_lit(int var, Lit l);

  /// True if some variable pair is 00 (the cube denotes no minterm).
  bool is_empty() const;

  /// True if no variable appears (the cube is the universe / tautology).
  bool is_universe() const;

  /// Set-containment: does this cube's minterm set contain `other`'s?
  /// (Equivalent to: every literal of *this appears identically in `other`.)
  bool contains(const Cube& other) const;

  /// Intersection of minterm sets (bitwise AND); may be empty.
  Cube intersect(const Cube& other) const;

  /// Number of variables on which the two cubes have disjoint value sets
  /// (pair-wise AND == 00). Distance 0 means the cubes intersect;
  /// distance 1 enables consensus.
  int distance(const Cube& other) const;

  /// Consensus on the unique conflicting variable; only valid when
  /// distance(other) == 1. The result contains the shared boundary.
  Cube consensus(const Cube& other) const;

  /// Smallest cube containing both (bitwise OR).
  Cube supercube(const Cube& other) const;

  /// Cofactor with respect to a single literal: the cube restricted to the
  /// subspace var=value, expressed over the same variable set with `var`
  /// removed (set to Absent). Returns an empty cube if the cube requires
  /// the opposite value.
  Cube cofactor(int var, bool value) const;

  /// Algebraic view: does this cube's literal set include all literals of
  /// `other` with identical polarity? (e.g. abc ⊇_lit ab). Used by weak
  /// division and kernel extraction.
  bool has_all_literals_of(const Cube& other) const;

  /// Algebraic quotient: this cube with the literals of `other` removed.
  /// Precondition: has_all_literals_of(other).
  Cube remove_literals_of(const Cube& other) const;

  /// Literal-wise union: cube whose literal set is the union (product of the
  /// two cubes as an algebraic product). Empty if polarities clash.
  Cube product(const Cube& other) const;

  /// True if the two cubes share at least one identical literal.
  bool shares_literal_with(const Cube& other) const;

  /// The common literals of the two cubes (largest common sub-cube in the
  /// algebraic sense); may be the universe cube when nothing is shared.
  Cube common_literals(const Cube& other) const;

  bool operator==(const Cube& other) const;

  /// Lexicographic order on the raw words; any total order works for
  /// canonicalization.
  bool operator<(const Cube& other) const;

  /// Evaluate on a complete assignment (bit i of `assignment` = var i).
  bool eval(std::uint64_t assignment) const;

  /// '1'/'0'/'-' string, one char per variable.
  std::string to_string() const;

  std::size_t hash() const;

  /// Widest cube the inline buffer holds; above this the words live on the
  /// heap. Exposed for the SBO boundary tests.
  static constexpr int kInlineVars = 64;

  /// Raw positional-cube words, read-only: variable v occupies bits
  /// (2*(v%32), 2*(v%32)+1) of word v/32, low bit "may be 0", high bit
  /// "may be 1" (see the header comment). For word-parallel kernels
  /// (simulation) that classify all 32 variables of a word at once
  /// instead of calling lit() per variable.
  const std::uint64_t* raw_words() const { return words(); }

 private:
  static constexpr int kVarsPerWord = 32;  // 2 bits per variable
  static constexpr int kInlineWords = kInlineVars / kVarsPerWord;

  static int word_count(int num_vars) {
    return (num_vars + kVarsPerWord - 1) / kVarsPerWord;
  }

  bool inline_rep() const { return num_vars_ <= kInlineVars; }
  int num_words() const { return word_count(num_vars_); }
  std::uint64_t* words() { return inline_rep() ? inline_ : heap_; }
  const std::uint64_t* words() const { return inline_rep() ? inline_ : heap_; }

  int word_index(int var) const { return var / kVarsPerWord; }
  int bit_shift(int var) const { return 2 * (var % kVarsPerWord); }

  int num_vars_ = 0;
  union {
    std::uint64_t inline_[kInlineWords];
    std::uint64_t* heap_;
  };

  friend struct CubeHash;
};

struct CubeHash {
  std::size_t operator()(const Cube& c) const { return c.hash(); }
};

}  // namespace rarsub
