#include "sop/espresso.hpp"

#include <algorithm>
#include <cassert>

#include "mem/arena.hpp"
#include "obs/obs.hpp"

namespace rarsub {

Sop espresso_expand(const Sop& f, const Sop& fun) {
  OBS_COUNT("espresso.expand", 1);
  Sop out(f.num_vars());
  out.cubes().reserve(f.cubes().size());
  mem::ScratchScope scratch;
  mem::ScratchVector<Cube> cubes(f.cubes().begin(), f.cubes().end());
  // Expanding big cubes first tends to let them swallow the small ones.
  std::sort(cubes.begin(), cubes.end(), [](const Cube& a, const Cube& b) {
    return a.num_literals() < b.num_literals();
  });
  for (Cube c : cubes) {
    if (c.is_empty()) continue;
    for (int v = 0; v < f.num_vars(); ++v) {
      const Lit l = c.lit(v);
      if (l == Lit::Absent) continue;
      Cube raised = c;
      raised.set_lit(v, Lit::Absent);
      if (fun.contains_cube(raised)) c = raised;
    }
    out.add_cube(std::move(c));
  }
  out.scc_minimize();
  return out;
}

Sop espresso_irredundant(const Sop& f, const Sop& dc) {
  OBS_COUNT("espresso.irredundant", 1);
  mem::ScratchScope scratch;
  mem::ScratchVector<Cube> cubes(f.cubes().begin(), f.cubes().end());
  // Drop small cubes first: they are the most likely to be covered.
  std::sort(cubes.begin(), cubes.end(), [](const Cube& a, const Cube& b) {
    return a.num_literals() > b.num_literals();
  });
  mem::ScratchVector<unsigned char> keep(cubes.size(), 1);
  // One `rest` cover reused across iterations: clear() keeps the capacity,
  // so the rebuild below allocates only on the first pass.
  Sop rest(f.num_vars());
  rest.cubes().reserve(cubes.size() + dc.cubes().size());
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    rest.cubes().clear();
    for (std::size_t j = 0; j < cubes.size(); ++j)
      if (j != i && keep[j]) rest.add_cube(cubes[j]);
    for (const Cube& d : dc.cubes()) rest.add_cube(d);
    if (rest.contains_cube(cubes[i])) keep[i] = 0;
  }
  Sop out(f.num_vars());
  out.cubes().reserve(cubes.size());
  for (std::size_t i = 0; i < cubes.size(); ++i)
    if (keep[i]) out.add_cube(cubes[i]);
  return out;
}

Sop espresso_reduce(const Sop& f, const Sop& dc) {
  OBS_COUNT("espresso.reduce", 1);
  // REDUCE is order-dependent and must be computed against the CURRENT
  // cover: once a cube has been reduced, later cubes see its reduced form.
  // Reducing every cube against the original cover lets two cubes that
  // jointly cover a minterm both retreat from it, losing the on-set.
  mem::ScratchScope scratch;
  mem::ScratchVector<Cube> cubes(f.cubes().begin(), f.cubes().end());
  // Espresso heuristic: shrink the biggest cubes first.
  std::sort(cubes.begin(), cubes.end(), [](const Cube& a, const Cube& b) {
    return a.num_literals() < b.num_literals();
  });
  mem::ScratchVector<unsigned char> dropped(cubes.size(), 0);
  Sop g(f.num_vars());
  g.cubes().reserve(cubes.size() + dc.cubes().size());
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    const Cube c = cubes[i];
    // Part of the function covered by the other cubes (plus dc), seen from
    // inside c: G = (F_current \ c  |  dc) cofactored by c.
    g.cubes().clear();
    for (std::size_t j = 0; j < cubes.size(); ++j)
      if (j != i && !dropped[j]) g.add_cube(cubes[j]);
    for (const Cube& d : dc.cubes()) g.add_cube(d);
    const Sop gc = g.cofactor(c);
    const Sop need = gc.complement();  // minterms only c covers
    if (need.is_zero()) {
      dropped[i] = 1;  // cube fully covered by the rest: drop it
      continue;
    }
    // Smallest cube containing `need`, intersected back with c.
    Cube sc = need.cube(0);
    for (int k = 1; k < need.num_cubes(); ++k) sc = sc.supercube(need.cube(k));
    cubes[i] = c.intersect(sc);
  }
  Sop out(f.num_vars());
  out.cubes().reserve(cubes.size());
  for (std::size_t i = 0; i < cubes.size(); ++i)
    if (!dropped[i]) out.add_cube(cubes[i]);
  return out;
}

Sop espresso_lite(const Sop& on, const Sop& dc) {
  OBS_SCOPED_TIMER("espresso.lite");
  if (on.is_zero()) return Sop::zero(on.num_vars());
  Sop fun = on;
  for (const Cube& d : dc.cubes()) fun.add_cube(d);
  if (fun.is_tautology()) return Sop::one(on.num_vars());

  Sop cur = on;
  cur.scc_minimize();
  int best_cost = cur.num_literals() + 1000000;
  Sop best = cur;
  for (int iter = 0; iter < 3; ++iter) {
    OBS_COUNT("espresso.iterations", 1);
    cur = espresso_expand(cur, fun);
    cur = espresso_irredundant(cur, dc);
    const int cost = cur.num_literals() * 8 + cur.num_cubes();
    if (cost < best_cost) {
      best_cost = cost;
      best = cur;
    } else {
      break;  // no improvement from the last reduce/expand round
    }
    cur = espresso_reduce(cur, dc);
  }
  return best;
}

Sop simplify_cover(const Sop& on) { return espresso_lite(on, Sop::zero(on.num_vars())); }

}  // namespace rarsub
