#pragma once
// Espresso-lite: a compact EXPAND / IRREDUNDANT / REDUCE loop giving a prime
// and irredundant cover of `on` against the don't-care set `dc`.
//
// This is the substrate for the SIS `simplify` command used by the paper's
// Scripts A/B/C, and the "good two-level optimizer" the paper contrasts
// against as the ad-hoc way of doing Boolean division (Sec. I).

#include "sop/sop.hpp"

namespace rarsub {

/// Minimize `on` using `dc` as don't cares. The result covers `on`, is
/// covered by `on | dc`, and is prime and irredundant with respect to it.
Sop espresso_lite(const Sop& on, const Sop& dc);

/// Minimize without don't cares.
Sop simplify_cover(const Sop& on);

/// EXPAND each cube of `f` to a prime of `fun` (= on | dc); assumes every
/// cube of `f` is contained in `fun`. Exposed for testing.
Sop espresso_expand(const Sop& f, const Sop& fun);

/// Remove relatively redundant cubes (each removed cube is covered by the
/// remaining cover plus `dc`). Exposed for testing.
Sop espresso_irredundant(const Sop& f, const Sop& dc);

/// REDUCE each cube to the smallest cube that still covers its share of the
/// on-set; enables subsequent re-expansion in a different direction.
Sop espresso_reduce(const Sop& f, const Sop& dc);

}  // namespace rarsub
