#include "sop/factor.hpp"

#include <cassert>

#include "sop/algdiv.hpp"
#include "sop/kernel.hpp"

namespace rarsub {

namespace {

std::unique_ptr<FactorNode> make_const(bool one) {
  auto n = std::make_unique<FactorNode>();
  n->kind = one ? FactorNode::Kind::Const1 : FactorNode::Kind::Const0;
  return n;
}

std::unique_ptr<FactorNode> make_literal(int var, bool positive) {
  auto n = std::make_unique<FactorNode>();
  n->kind = FactorNode::Kind::Literal;
  n->var = var;
  n->positive = positive;
  return n;
}

std::unique_ptr<FactorNode> factor_cube(const Cube& c) {
  auto n = std::make_unique<FactorNode>();
  n->kind = FactorNode::Kind::And;
  for (int v = 0; v < c.num_vars(); ++v) {
    const Lit l = c.lit(v);
    if (l != Lit::Absent) n->children.push_back(make_literal(v, l == Lit::Pos));
  }
  if (n->children.empty()) return make_const(true);
  if (n->children.size() == 1) return std::move(n->children.front());
  return n;
}

std::unique_ptr<FactorNode> make_or(std::unique_ptr<FactorNode> a,
                                    std::unique_ptr<FactorNode> b) {
  if (a->kind == FactorNode::Kind::Const0) return b;
  if (b->kind == FactorNode::Kind::Const0) return a;
  auto n = std::make_unique<FactorNode>();
  n->kind = FactorNode::Kind::Or;
  n->children.push_back(std::move(a));
  n->children.push_back(std::move(b));
  return n;
}

std::unique_ptr<FactorNode> make_and(std::unique_ptr<FactorNode> a,
                                     std::unique_ptr<FactorNode> b) {
  if (a->kind == FactorNode::Kind::Const1) return b;
  if (b->kind == FactorNode::Kind::Const1) return a;
  auto n = std::make_unique<FactorNode>();
  n->kind = FactorNode::Kind::And;
  n->children.push_back(std::move(a));
  n->children.push_back(std::move(b));
  return n;
}

std::unique_ptr<FactorNode> qf_rec(const Sop& f, int depth) {
  if (f.num_cubes() == 0) return make_const(false);
  if (f.num_cubes() == 1) return factor_cube(f.cube(0));
  for (const Cube& c : f.cubes())
    if (c.is_universe()) return make_const(true);

  // Safety valve for pathological recursion.
  if (depth > 64) {
    auto n = std::make_unique<FactorNode>();
    n->kind = FactorNode::Kind::Or;
    for (const Cube& c : f.cubes()) n->children.push_back(factor_cube(c));
    return n;
  }

  // Pull out the common cube first: f = common * (f / common).
  const Cube common = largest_common_cube(f);
  if (common.num_literals() > 0) {
    Sop cf = make_cube_free(f);
    return make_and(factor_cube(common), qf_rec(cf, depth + 1));
  }

  Sop d = quick_divisor(f);
  if (d.num_cubes() < 2) {
    // No kernel: divide by the most frequent literal l: f = l*q + r.
    const std::vector<int> counts = f.literal_counts();
    int best = -1, best_count = 1;
    Lit pol = Lit::Pos;
    for (int v = 0; v < f.num_vars(); ++v) {
      if (counts[static_cast<std::size_t>(2 * v)] > best_count) {
        best = v;
        best_count = counts[static_cast<std::size_t>(2 * v)];
        pol = Lit::Pos;
      }
      if (counts[static_cast<std::size_t>(2 * v + 1)] > best_count) {
        best = v;
        best_count = counts[static_cast<std::size_t>(2 * v + 1)];
        pol = Lit::Neg;
      }
    }
    if (best < 0) {
      // Every literal appears at most once: the SOP is its own best form.
      auto n = std::make_unique<FactorNode>();
      n->kind = FactorNode::Kind::Or;
      for (const Cube& c : f.cubes()) n->children.push_back(factor_cube(c));
      return n;
    }
    Cube lc(f.num_vars());
    lc.set_lit(best, pol);
    AlgDivResult dv = divide_by_cube(f, lc);
    return make_or(make_and(make_literal(best, pol == Lit::Pos),
                            qf_rec(dv.quotient, depth + 1)),
                   qf_rec(dv.remainder, depth + 1));
  }

  AlgDivResult dv = weak_divide(f, d);
  if (dv.quotient.num_cubes() == 0) {
    // Shouldn't happen for a true kernel, but stay safe.
    auto n = std::make_unique<FactorNode>();
    n->kind = FactorNode::Kind::Or;
    for (const Cube& c : f.cubes()) n->children.push_back(factor_cube(c));
    return n;
  }
  return make_or(
      make_and(qf_rec(dv.quotient, depth + 1), qf_rec(d, depth + 1)),
      qf_rec(dv.remainder, depth + 1));
}

}  // namespace

int FactorNode::literal_count() const {
  switch (kind) {
    case Kind::Literal: return 1;
    case Kind::Const0:
    case Kind::Const1: return 0;
    case Kind::And:
    case Kind::Or: {
      int n = 0;
      for (const auto& c : children) n += c->literal_count();
      return n;
    }
  }
  return 0;
}

std::unique_ptr<FactorNode> quick_factor(const Sop& f) { return qf_rec(f, 0); }

int factored_literal_count(const Sop& f) { return quick_factor(f)->literal_count(); }

std::string factor_to_string(const FactorNode& n,
                             const std::vector<std::string>& var_names) {
  switch (n.kind) {
    case FactorNode::Kind::Const0: return "0";
    case FactorNode::Kind::Const1: return "1";
    case FactorNode::Kind::Literal: {
      std::string s = n.var < static_cast<int>(var_names.size())
                          ? var_names[static_cast<std::size_t>(n.var)]
                          : "v" + std::to_string(n.var);
      if (!n.positive) s += "'";
      return s;
    }
    case FactorNode::Kind::And: {
      std::string s;
      for (const auto& c : n.children) {
        if (!s.empty()) s += "*";
        const bool paren = c->kind == FactorNode::Kind::Or;
        s += paren ? "(" + factor_to_string(*c, var_names) + ")"
                   : factor_to_string(*c, var_names);
      }
      return s.empty() ? "1" : s;
    }
    case FactorNode::Kind::Or: {
      std::string s;
      for (const auto& c : n.children) {
        if (!s.empty()) s += " + ";
        s += factor_to_string(*c, var_names);
      }
      return s.empty() ? "0" : s;
    }
  }
  return "?";
}

}  // namespace rarsub
