#pragma once
// Factored-form literal counting (quick-factor style), the cost metric of
// the paper's experiments: "All literal counts are in factor form".
//
// quick_factor recursively divides by a quick divisor (a level-0 kernel) or
// the best literal, mirroring SIS's quick_factor; the returned tree is used
// both for counting and for pretty-printing factored expressions in the
// examples.

#include <memory>
#include <string>
#include <vector>

#include "sop/sop.hpp"

namespace rarsub {

/// Node of a factored expression tree.
struct FactorNode {
  enum class Kind { Literal, And, Or, Const0, Const1 };
  Kind kind = Kind::Const0;
  int var = -1;          ///< for Literal
  bool positive = true;  ///< for Literal
  std::vector<std::unique_ptr<FactorNode>> children;

  int literal_count() const;
};

/// Quick-factor the cover; never null.
std::unique_ptr<FactorNode> quick_factor(const Sop& f);

/// Number of literals in the quick-factored form of `f`.
int factored_literal_count(const Sop& f);

/// Render with the given variable names ("a*b + c*(d + e)" style).
std::string factor_to_string(const FactorNode& n,
                             const std::vector<std::string>& var_names);

}  // namespace rarsub
