#include "sop/kernel.hpp"

#include <algorithm>
#include <set>

#include "sop/algdiv.hpp"

namespace rarsub {

namespace {

struct KernelCtx {
  const KernelOptions* opts;
  std::vector<KernelEntry>* out;
  std::set<std::vector<Cube>>* seen;
  int num_vars;
};

// Literals (var, polarity) appearing in >= 2 cubes of f.
std::vector<std::pair<int, Lit>> frequent_literals(const Sop& f) {
  std::vector<std::pair<int, Lit>> lits;
  const std::vector<int> counts = f.literal_counts();
  for (int v = 0; v < f.num_vars(); ++v) {
    if (counts[static_cast<std::size_t>(2 * v)] >= 2) lits.emplace_back(v, Lit::Pos);
    if (counts[static_cast<std::size_t>(2 * v + 1)] >= 2) lits.emplace_back(v, Lit::Neg);
  }
  return lits;
}

// Record the kernel if new; returns false when the cap was hit.
bool record(KernelCtx& ctx, Sop kernel, const Cube& cokernel, int level) {
  if (static_cast<int>(ctx.out->size()) >= ctx.opts->max_kernels) return false;
  // Canonical order WITHOUT containment minimization: a kernel is an
  // algebraic object, its cube list must stay intact.
  std::sort(kernel.cubes().begin(), kernel.cubes().end());
  kernel.cubes().erase(
      std::unique(kernel.cubes().begin(), kernel.cubes().end()),
      kernel.cubes().end());
  if (kernel.num_cubes() < 2) return true;
  if (!ctx.seen->insert(kernel.cubes()).second) return true;
  // Exact level-0 test: a kernel is level 0 iff no literal appears in two
  // or more of its cubes (then it has no kernel other than itself). The
  // literal-index pruning of the search can otherwise under-report levels.
  if (frequent_literals(kernel).empty()) level = 0;
  else if (level == 0) level = 1;
  ctx.out->push_back(KernelEntry{std::move(kernel), cokernel, level});
  return true;
}

// Returns the depth of kernels found below; level assignment follows the
// convention that kernels with no sub-kernels are level 0.
int kernel_rec(KernelCtx& ctx, const Sop& f, int min_lit_index) {
  const auto lits = frequent_literals(f);
  int depth = 0;
  bool found_sub = false;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (static_cast<int>(i) < min_lit_index) continue;
    Cube lc(ctx.num_vars);
    lc.set_lit(lits[i].first, lits[i].second);
    Sop q = divide_by_cube(f, lc).quotient;
    if (q.num_cubes() < 2) continue;
    const Cube common = largest_common_cube(q);
    Sop cf = make_cube_free(q);
    const int sub_depth = kernel_rec(ctx, cf, static_cast<int>(i) + 1);
    if (!record(ctx, cf, lc.product(common), sub_depth)) return depth;
    found_sub = true;
    depth = std::max(depth, sub_depth + 1);
  }
  (void)found_sub;
  return depth;
}

}  // namespace

std::vector<KernelEntry> find_kernels(const Sop& f, const KernelOptions& opts) {
  std::vector<KernelEntry> out;
  std::set<std::vector<Cube>> seen;
  KernelCtx ctx{&opts, &out, &seen, f.num_vars()};

  Sop cf = make_cube_free(f);
  const int depth = kernel_rec(ctx, cf, 0);
  if (cf.num_cubes() >= 2 && is_cube_free(cf))
    record(ctx, cf, largest_common_cube(f), depth);

  if (opts.level0_only) {
    std::vector<KernelEntry> l0;
    for (KernelEntry& k : out)
      if (k.level == 0) l0.push_back(std::move(k));
    return l0;
  }
  return out;
}

Sop quick_divisor(const Sop& f) {
  // Descend along the first frequent literal until a cube-free quotient with
  // no further sub-kernels is found.
  Sop cur = make_cube_free(f);
  if (cur.num_cubes() < 2) return Sop(f.num_vars());
  for (;;) {
    const auto lits = frequent_literals(cur);
    bool descended = false;
    for (const auto& [v, pol] : lits) {
      Cube lc(f.num_vars());
      lc.set_lit(v, pol);
      Sop q = divide_by_cube(cur, lc).quotient;
      if (q.num_cubes() >= 2) {
        cur = make_cube_free(q);
        descended = true;
        break;
      }
    }
    if (!descended) break;
  }
  return cur.num_cubes() >= 2 ? cur : Sop(f.num_vars());
}

}  // namespace rarsub
