#pragma once
// Kernel / co-kernel extraction (Brayton–McMullen): the cube-free primary
// divisors of a cover. Substrate for `gkx` (kernel extraction) and for the
// quick-factor literal-count metric.

#include <vector>

#include "sop/sop.hpp"

namespace rarsub {

struct KernelEntry {
  Sop kernel;     ///< cube-free divisor
  Cube cokernel;  ///< cube c such that kernel = (f / c) made cube-free
  int level = 0;  ///< 0 = innermost (level-0) kernel
};

struct KernelOptions {
  bool level0_only = false;  ///< stop at level-0 kernels (cheaper, gkx-style)
  int max_kernels = 2000;    ///< safety cap
};

/// All kernels of `f` (including f itself made cube-free, when cube-free
/// with >= 2 cubes). Deduplicated by canonical cover.
std::vector<KernelEntry> find_kernels(const Sop& f, const KernelOptions& opts = {});

/// A cheap "quick divisor": one level-0 kernel (the first found), or an
/// empty Sop if the cover has none (e.g. a single cube).
Sop quick_divisor(const Sop& f);

}  // namespace rarsub
