#include "sop/sop.hpp"

#include <algorithm>
#include <cassert>

#include "mem/arena.hpp"

namespace rarsub {

Sop::Sop(int num_vars, std::vector<Cube> cubes)
    : num_vars_(num_vars), cubes_(std::move(cubes)) {
  for (const Cube& c : cubes_) {
    (void)c;
    assert(c.num_vars() == num_vars_);
  }
}

Sop Sop::from_strings(const std::vector<std::string>& cube_strings) {
  assert(!cube_strings.empty());
  Sop f(static_cast<int>(cube_strings.front().size()));
  for (const std::string& s : cube_strings) f.add_cube(Cube::from_string(s));
  return f;
}

Sop Sop::one(int num_vars) {
  Sop f(num_vars);
  f.add_cube(Cube(num_vars));
  return f;
}

void Sop::add_cube(Cube c) {
  assert(c.num_vars() == num_vars_);
  if (!c.is_empty()) cubes_.push_back(std::move(c));
}

int Sop::num_literals() const {
  int n = 0;
  for (const Cube& c : cubes_) n += c.num_literals();
  return n;
}

bool Sop::is_zero() const {
  for (const Cube& c : cubes_)
    if (!c.is_empty()) return false;
  return true;
}

bool Sop::contains_cube(const Cube& c) const {
  if (c.is_empty()) return true;
  return cofactor(c).is_tautology();
}

bool Sop::scc_contains(const Cube& c) const {
  for (const Cube& d : cubes_)
    if (d.contains(c)) return true;
  return false;
}

bool Sop::is_sos_of(const Sop& d) const {
  for (const Cube& c : cubes_)
    if (!d.scc_contains(c)) return false;
  return true;
}

bool Sop::equals(const Sop& other) const {
  assert(num_vars_ == other.num_vars_);
  for (const Cube& c : cubes_)
    if (!other.contains_cube(c)) return false;
  for (const Cube& c : other.cubes_)
    if (!contains_cube(c)) return false;
  return true;
}

Sop Sop::cofactor(int var, bool value) const {
  Sop r(num_vars_);
  r.cubes_.reserve(cubes_.size());
  for (const Cube& c : cubes_) {
    Cube cc = c.cofactor(var, value);
    if (!cc.is_empty()) r.cubes_.push_back(std::move(cc));
  }
  return r;
}

Sop Sop::cofactor(const Cube& c) const {
  Sop r(num_vars_);
  r.cubes_.reserve(cubes_.size());
  for (const Cube& f : cubes_) {
    if (f.distance(c) > 0) continue;  // disjoint from the cofactor cube
    // Standard cofactor: drop the literals that c fixes.
    Cube g = f;
    for (int v = 0; v < num_vars_; ++v) {
      const Lit l = c.lit(v);
      if (l != Lit::Absent) g.set_lit(v, Lit::Absent);
    }
    r.cubes_.push_back(std::move(g));
  }
  return r;
}

Sop Sop::boolean_and(const Sop& other) const {
  assert(num_vars_ == other.num_vars_);
  Sop r(num_vars_);
  r.cubes_.reserve(cubes_.size() * other.cubes_.size());
  for (const Cube& a : cubes_)
    for (const Cube& b : other.cubes_) {
      Cube p = a.intersect(b);
      if (!p.is_empty()) r.cubes_.push_back(std::move(p));
    }
  r.scc_minimize();
  return r;
}

Sop Sop::boolean_or(const Sop& other) const {
  assert(num_vars_ == other.num_vars_);
  Sop r = *this;
  r.cubes_.insert(r.cubes_.end(), other.cubes_.begin(), other.cubes_.end());
  r.scc_minimize();
  return r;
}

namespace {

// a # b: append the part of cube a outside cube b (a disjoint cube list).
void cube_sharp_into(const Cube& a, const Cube& b,
                     mem::ScratchVector<Cube>& out) {
  if (a.distance(b) > 0) {  // disjoint: nothing removed
    out.push_back(a);
    return;
  }
  Cube prefix = a;
  for (int v = 0; v < a.num_vars(); ++v) {
    const Lit lb = b.lit(v);
    if (lb == Lit::Absent) continue;
    const Lit la = prefix.lit(v);
    if (la == lb) continue;          // b does not cut a on this variable
    if (la != Lit::Absent) return;   // opposite literal: a already outside
    Cube piece = prefix;
    piece.set_lit(v, lb == Lit::Pos ? Lit::Neg : Lit::Pos);
    out.push_back(std::move(piece));
    prefix.set_lit(v, lb);           // continue inside b on this variable
  }
  // prefix now lies fully inside b: dropped
}

}  // namespace

Sop Sop::sharp(const Sop& other) const {
  assert(num_vars_ == other.num_vars_);
  mem::ScratchScope scratch;
  mem::ScratchVector<Cube> cur(cubes_.begin(), cubes_.end());
  for (const Cube& b : other.cubes_) {
    mem::ScratchVector<Cube> next;
    for (const Cube& a : cur) cube_sharp_into(a, b, next);
    cur = std::move(next);
  }
  Sop r(num_vars_);
  r.cubes_.assign(cur.begin(), cur.end());
  r.scc_minimize();
  return r;
}

void Sop::scc_minimize() {
  mem::ScratchScope scratch;
  mem::ScratchVector<Cube> keep;
  keep.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    const Cube& c = cubes_[i];
    if (c.is_empty()) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < cubes_.size() && !dominated; ++j) {
      if (i == j) continue;
      if (cubes_[j].is_empty()) continue;
      if (cubes_[j].contains(c)) {
        // Break ties (equal cubes) by index so exactly one copy survives.
        if (!c.contains(cubes_[j]) || j < i) dominated = true;
      }
    }
    if (!dominated) keep.push_back(c);
  }
  // assign() reuses the existing capacity: in steady state scc_minimize
  // performs no heap allocation at all.
  cubes_.assign(keep.begin(), keep.end());
}

void Sop::canonicalize() {
  scc_minimize();
  std::sort(cubes_.begin(), cubes_.end());
  cubes_.erase(std::unique(cubes_.begin(), cubes_.end()), cubes_.end());
}

bool Sop::eval(std::uint64_t assignment) const {
  for (const Cube& c : cubes_)
    if (c.eval(assignment)) return true;
  return false;
}

std::vector<int> Sop::support() const {
  std::vector<int> vars;
  for (int v = 0; v < num_vars_; ++v) {
    for (const Cube& c : cubes_) {
      if (c.lit(v) != Lit::Absent) {
        vars.push_back(v);
        break;
      }
    }
  }
  return vars;
}

std::vector<int> Sop::literal_counts() const {
  std::vector<int> counts(static_cast<std::size_t>(2 * num_vars_), 0);
  for (const Cube& c : cubes_)
    for (int v = 0; v < num_vars_; ++v) {
      const Lit l = c.lit(v);
      if (l == Lit::Pos) ++counts[static_cast<std::size_t>(2 * v)];
      if (l == Lit::Neg) ++counts[static_cast<std::size_t>(2 * v + 1)];
    }
  return counts;
}

Sop Sop::remap(int new_num_vars, std::span<const int> var_map) const {
  assert(static_cast<int>(var_map.size()) == num_vars_);
  Sop r(new_num_vars);
  r.cubes_.reserve(cubes_.size());
  for (const Cube& c : cubes_) {
    Cube nc(new_num_vars);
    bool empty = false;
    for (int v = 0; v < num_vars_ && !empty; ++v) {
      const Lit l = c.lit(v);
      if (l == Lit::Absent) continue;
      const int t = var_map[static_cast<std::size_t>(v)];
      assert(t >= 0 && t < new_num_vars);
      // Two source variables may land on the same target (e.g. the divisor
      // appears both as an old fanin and as the new divisor literal during
      // substitution commits): literals must be INTERSECTED, not
      // overwritten — clashing polarities empty the cube.
      const Lit cur = nc.lit(t);
      if (cur == Lit::Absent) nc.set_lit(t, l);
      else if (cur != l) empty = true;
    }
    if (!empty) r.cubes_.push_back(std::move(nc));
  }
  return r;
}

std::string Sop::to_string() const {
  if (cubes_.empty()) return "<zero>";
  std::string s;
  for (const Cube& c : cubes_) {
    if (!s.empty()) s += " | ";
    s += c.to_string();
  }
  return s;
}

namespace {

// literal_counts() into arena scratch: the unate-recursive complement and
// tautology routines call the variable selectors at every recursion node,
// so the counts buffer must not hit the heap.
void literal_counts_into(const Sop& f, mem::ScratchVector<int>& counts) {
  counts.assign(static_cast<std::size_t>(2 * f.num_vars()), 0);
  for (const Cube& c : f.cubes())
    for (int v = 0; v < f.num_vars(); ++v) {
      const Lit l = c.lit(v);
      if (l == Lit::Pos) ++counts[static_cast<std::size_t>(2 * v)];
      if (l == Lit::Neg) ++counts[static_cast<std::size_t>(2 * v + 1)];
    }
}

}  // namespace

std::optional<int> most_binate_var(const Sop& f) {
  mem::ScratchScope scratch;
  mem::ScratchVector<int> counts;
  literal_counts_into(f, counts);
  int best = -1, best_count = -1;
  for (int v = 0; v < f.num_vars(); ++v) {
    const int pos = counts[static_cast<std::size_t>(2 * v)];
    const int neg = counts[static_cast<std::size_t>(2 * v + 1)];
    if (pos > 0 && neg > 0 && pos + neg > best_count) {
      best = v;
      best_count = pos + neg;
    }
  }
  if (best < 0) return std::nullopt;
  return best;
}

std::optional<int> most_frequent_var(const Sop& f) {
  mem::ScratchScope scratch;
  mem::ScratchVector<int> counts;
  literal_counts_into(f, counts);
  int best = -1, best_count = 0;
  for (int v = 0; v < f.num_vars(); ++v) {
    const int n = counts[static_cast<std::size_t>(2 * v)] +
                  counts[static_cast<std::size_t>(2 * v + 1)];
    if (n > best_count) {
      best = v;
      best_count = n;
    }
  }
  if (best < 0) return std::nullopt;
  return best;
}

}  // namespace rarsub
