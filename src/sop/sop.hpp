#pragma once
// Sop: a sum-of-products cover (list of cubes over a fixed variable count).
//
// This is the two-level representation every node of the Boolean network
// carries, and the object the paper's SOS/POS machinery manipulates:
//   - SOS test (every cube contained by some cube of the divisor, Def. SOS)
//   - remainder split for basic division (Sec. III-B)
//   - complement / tautology (unate-recursive), used by espresso-lite,
//     POS duality (Lemma 2) and verification.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sop/cube.hpp"

namespace rarsub {

class Sop {
 public:
  Sop() = default;
  explicit Sop(int num_vars) : num_vars_(num_vars) {}
  Sop(int num_vars, std::vector<Cube> cubes);

  /// Parse "101-\n-01-\n..." style text (one cube string per line, '|' or
  /// whitespace separated also accepted).
  static Sop from_strings(const std::vector<std::string>& cubes);

  /// Constant-zero / constant-one covers.
  static Sop zero(int num_vars) { return Sop(num_vars); }
  static Sop one(int num_vars);

  int num_vars() const { return num_vars_; }
  int num_cubes() const { return static_cast<int>(cubes_.size()); }
  bool empty() const { return cubes_.empty(); }

  const std::vector<Cube>& cubes() const { return cubes_; }
  std::vector<Cube>& cubes() { return cubes_; }
  const Cube& cube(int i) const { return cubes_[static_cast<std::size_t>(i)]; }

  void add_cube(Cube c);

  /// Total number of literals over all cubes (flat / SOP literal count).
  int num_literals() const;

  /// True if the cover is functionally the constant 1 (tautology check,
  /// unate-recursive paradigm).
  bool is_tautology() const;

  /// True if the cover denotes the empty function (no non-empty cube).
  bool is_zero() const;

  /// Does the cover contain the single cube `c` (i.e. c implies the cover)?
  /// Decided by tautology of the cofactor — a *functional* test, unlike
  /// single-cube containment.
  bool contains_cube(const Cube& c) const;

  /// Single-cube containment: is `c` contained by at least one cube of this
  /// cover? This is the paper's SOS building block (cheap, structural).
  bool scc_contains(const Cube& c) const;

  /// Paper Def. SOS: every cube of *this is contained by >= 1 cube of `d`.
  /// (States "*this is a sum-of-subproducts of d"; Lemma 1 then gives
  /// (*this AND d) == *this.)
  bool is_sos_of(const Sop& d) const;

  /// Functional equality via mutual containment (tautology based).
  bool equals(const Sop& other) const;

  /// Cofactor of the whole cover by literal (var=value).
  Sop cofactor(int var, bool value) const;

  /// Shannon cofactor by a cube (generalized for espresso routines).
  Sop cofactor(const Cube& c) const;

  /// Complement via the unate-recursive paradigm; result is SCC-minimal.
  Sop complement() const;

  /// Boolean AND / OR of covers (OR is concatenation + SCC minimization;
  /// AND is pairwise intersection + SCC minimization).
  Sop boolean_and(const Sop& other) const;
  Sop boolean_or(const Sop& other) const;

  /// Sharp (set difference): this AND NOT other, via the classic
  /// cube-by-cube disjoint sharp. SCC-minimal result.
  Sop sharp(const Sop& other) const;

  /// Remove cubes contained in other cubes of the same cover and empty
  /// cubes (single-cube-containment minimization). Stable order.
  void scc_minimize();

  /// Sort cubes canonically and deduplicate.
  void canonicalize();

  /// Evaluate on a complete assignment (num_vars() <= 64).
  bool eval(std::uint64_t assignment) const;

  /// Variables actually appearing in some cube.
  std::vector<int> support() const;

  /// Count of occurrences of each literal: result[2*v] = positive literal
  /// count of var v, result[2*v+1] = negative.
  std::vector<int> literal_counts() const;

  /// Re-express over a larger variable space: variable i becomes
  /// `var_map[i]` in a cover with `new_num_vars` variables. The span
  /// overload lets the hot substitution path pass arena-scratch index
  /// buffers without materializing a std::vector.
  Sop remap(int new_num_vars, std::span<const int> var_map) const;
  Sop remap(int new_num_vars, const std::vector<int>& var_map) const {
    return remap(new_num_vars, std::span<const int>(var_map));
  }

  std::string to_string() const;

  bool operator==(const Sop& other) const = default;

 private:
  int num_vars_ = 0;
  std::vector<Cube> cubes_;
};

/// The most binate variable of a cover (appears in both polarities, with
/// maximal total count); returns nullopt if the cover is unate.
std::optional<int> most_binate_var(const Sop& f);

/// A variable appearing in the most cubes (for unate splitting); nullopt
/// when no cube has any literal.
std::optional<int> most_frequent_var(const Sop& f);

}  // namespace rarsub
