// Tautology check using the unate-recursive paradigm (Brayton et al.,
// "Logic Minimization Algorithms for VLSI Synthesis").

#include <cassert>

#include "sop/sop.hpp"

namespace rarsub {

namespace {

// Quick structural answers; returns -1 when undecided.
int taut_special_cases(const Sop& f) {
  bool any = false;
  for (const Cube& c : f.cubes()) {
    if (c.is_empty()) continue;
    any = true;
    if (c.is_universe()) return 1;  // a row of all don't-cares
  }
  if (!any) return 0;  // empty cover
  return -1;
}

bool taut_rec(const Sop& f) {
  const int special = taut_special_cases(f);
  if (special >= 0) return special == 1;

  // Unate shortcut: a unate cover is a tautology iff it has a universe row
  // (already checked above), so if unate we can answer 'no'.
  const std::optional<int> binate = most_binate_var(f);
  if (!binate.has_value()) {
    // Unate cover with no universe cube. A single-literal check: if some
    // variable appears in every cube with the same polarity the cover cannot
    // be a tautology; in general a unate cover without the universe cube is
    // never a tautology.
    return false;
  }

  const int v = *binate;
  return taut_rec(f.cofactor(v, false)) && taut_rec(f.cofactor(v, true));
}

}  // namespace

bool Sop::is_tautology() const {
  if (num_vars_ == 0) {
    for (const Cube& c : cubes_)
      if (!c.is_empty()) return true;
    return false;
  }
  return taut_rec(*this);
}

}  // namespace rarsub
