#include "verify/equivalence.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <random>

#include "network/simulate.hpp"

namespace rarsub {

namespace {

// b's PI words arranged to match a's PI order via names.
struct PinMap {
  bool ok = false;
  std::vector<std::size_t> pi_of_a;  // index into b's PI list
  std::vector<std::size_t> po_of_a;  // index into b's PO list
  std::string error;
};

PinMap match_pins(const Network& a, const Network& b) {
  PinMap m;
  if (a.pis().size() != b.pis().size() || a.pos().size() != b.pos().size()) {
    m.error = "PI/PO count mismatch";
    return m;
  }
  std::map<std::string, std::size_t> b_pi, b_po;
  for (std::size_t i = 0; i < b.pis().size(); ++i)
    b_pi[b.node(b.pis()[i]).name] = i;
  for (std::size_t i = 0; i < b.pos().size(); ++i) b_po[b.pos()[i].name] = i;
  for (NodeId pi : a.pis()) {
    auto it = b_pi.find(a.node(pi).name);
    if (it == b_pi.end()) {
      m.error = "missing PI " + a.node(pi).name;
      return m;
    }
    m.pi_of_a.push_back(it->second);
  }
  for (const Output& po : a.pos()) {
    auto it = b_po.find(po.name);
    if (it == b_po.end()) {
      m.error = "missing PO " + po.name;
      return m;
    }
    m.po_of_a.push_back(it->second);
  }
  m.ok = true;
  return m;
}

}  // namespace

EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    const EquivalenceOptions& opts) {
  EquivalenceResult res;
  const PinMap pins = match_pins(a, b);
  if (!pins.ok) {
    res.message = pins.error;
    return res;
  }
  const std::size_t n = a.pis().size();

  auto run_words = [&](const std::vector<std::uint64_t>& words_a,
                       std::uint64_t base_assignment,
                       bool exhaustive) -> bool {
    std::vector<std::uint64_t> words_b(n);
    for (std::size_t i = 0; i < n; ++i) words_b[pins.pi_of_a[i]] = words_a[i];
    const auto out_a = simulate64(a, words_a);
    const auto out_b = simulate64(b, words_b);
    for (std::size_t o = 0; o < out_a.size(); ++o) {
      const std::uint64_t diff = out_a[o] ^ out_b[pins.po_of_a[o]];
      if (diff == 0) continue;
      res.message = "PO " + a.pos()[o].name + " differs";
      if (exhaustive) {
        const int bit = std::countr_zero(diff);
        res.counterexample = base_assignment + static_cast<std::uint64_t>(bit);
      }
      return false;
    }
    return true;
  };

  if (static_cast<int>(n) <= opts.max_exhaustive_pis) {
    // Exhaustive: 64 assignments per block, PIs 0..5 cycle inside a word.
    const std::uint64_t total = 1ULL << n;
    for (std::uint64_t base = 0; base < total; base += 64) {
      std::vector<std::uint64_t> words(n);
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t w = 0;
        for (std::uint64_t m = 0; m < 64 && base + m < total; ++m) {
          const std::uint64_t assignment = base + m;
          if ((assignment >> i) & 1) w |= 1ULL << m;
        }
        words[i] = w;
      }
      if (!run_words(words, base, true)) return res;
    }
    res.equivalent = true;
    return res;
  }

  std::mt19937_64 rng(opts.seed);
  for (int round = 0; round < opts.random_rounds; ++round) {
    std::vector<std::uint64_t> words(n);
    for (std::size_t i = 0; i < n; ++i) words[i] = rng();
    if (!run_words(words, 0, false)) return res;
  }
  res.equivalent = true;
  res.message = "random simulation only (" + std::to_string(n) + " PIs)";
  return res;
}

}  // namespace rarsub
