#include "verify/equivalence.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <random>

#include "network/simulate.hpp"

namespace rarsub {

namespace {

constexpr std::size_t kUnmapped = static_cast<std::size_t>(-1);

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

// The comparison plan: a union input-variable space (PIs matched by name;
// a PI carried by only one network is admitted when it drives nothing
// there) plus the list of PO index pairs to compare.
struct PinPlan {
  bool ok = false;
  std::string error;
  struct Var {
    std::size_t a = kUnmapped;  // index into a's PI list
    std::size_t b = kUnmapped;  // index into b's PI list
  };
  std::vector<Var> vars;  // a's PIs in order, then b-only PIs
  std::vector<std::pair<std::size_t, std::size_t>> po_pairs;
};

PinPlan match_pins(const Network& a, const Network& b,
                   const EquivalenceOptions& opts) {
  PinPlan m;

  // --- Inputs: union by name; only *driven* mismatches are fatal. A
  // dangling PI cannot influence any output, so fuzz-generated inputs
  // that one side dropped are treated consistently on both sides.
  std::map<std::string, std::size_t> b_pi;
  for (std::size_t i = 0; i < b.pis().size(); ++i)
    b_pi[std::string(b.node(b.pis()[i]).name)] = i;
  std::vector<bool> b_matched(b.pis().size(), false);
  std::vector<std::string> driven_only_a, driven_only_b;
  for (std::size_t i = 0; i < a.pis().size(); ++i) {
    PinPlan::Var v;
    v.a = i;
    const std::string name(a.node(a.pis()[i]).name);
    auto it = b_pi.find(name);
    if (it != b_pi.end()) {
      v.b = it->second;
      b_matched[it->second] = true;
    } else if (a.fanout_refs(a.pis()[i]) != 0) {
      driven_only_a.push_back(name);
    }
    m.vars.push_back(v);
  }
  for (std::size_t i = 0; i < b.pis().size(); ++i) {
    if (b_matched[i]) continue;
    if (b.fanout_refs(b.pis()[i]) != 0)
      driven_only_b.emplace_back(b.node(b.pis()[i]).name);
    m.vars.push_back(PinPlan::Var{kUnmapped, i});
  }
  if (!driven_only_a.empty() || !driven_only_b.empty()) {
    m.error = "PI name sets differ";
    if (!driven_only_a.empty())
      m.error += " — driven only in first: " + join_names(driven_only_a);
    if (!driven_only_b.empty())
      m.error += (driven_only_a.empty() ? " — " : "; ") +
                 std::string("driven only in second: ") +
                 join_names(driven_only_b);
    return m;
  }

  // --- Outputs: matched by name; either the caller's cone filter or the
  // full (exact) name sets.
  std::map<std::string, std::size_t> a_po, b_po;
  for (std::size_t i = 0; i < a.pos().size(); ++i) a_po[a.pos()[i].name] = i;
  for (std::size_t i = 0; i < b.pos().size(); ++i) b_po[b.pos()[i].name] = i;
  if (!opts.only_pos.empty()) {
    for (const std::string& name : opts.only_pos) {
      auto ia = a_po.find(name);
      auto ib = b_po.find(name);
      if (ia == a_po.end() || ib == b_po.end()) {
        m.error = "filtered PO '" + name + "' not present in both networks";
        return m;
      }
      m.po_pairs.emplace_back(ia->second, ib->second);
    }
  } else {
    std::vector<std::string> only_a, only_b;
    for (const auto& [name, i] : a_po)
      if (!b_po.count(name)) only_a.push_back(name);
    for (const auto& [name, i] : b_po)
      if (!a_po.count(name)) only_b.push_back(name);
    if (!only_a.empty() || !only_b.empty()) {
      m.error = "PO name sets differ";
      if (!only_a.empty()) m.error += " — only in first: " + join_names(only_a);
      if (!only_b.empty())
        m.error += (only_a.empty() ? " — " : "; ") +
                   std::string("only in second: ") + join_names(only_b);
      return m;
    }
    if (a.pos().size() != b.pos().size()) {
      // Same name sets but different multiplicity (duplicated PO names).
      m.error = "PO count mismatch (first has " +
                std::to_string(a.pos().size()) + ", second has " +
                std::to_string(b.pos().size()) + ")";
      return m;
    }
    for (std::size_t i = 0; i < a.pos().size(); ++i)
      m.po_pairs.emplace_back(i, b_po[a.pos()[i].name]);
  }
  m.ok = true;
  return m;
}

}  // namespace

EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    const EquivalenceOptions& opts) {
  EquivalenceResult res;
  const PinPlan pins = match_pins(a, b, opts);
  if (!pins.ok) {
    res.message = pins.error;
    return res;
  }
  const std::size_t n = pins.vars.size();

  auto run_words = [&](const std::vector<std::uint64_t>& words,
                       std::uint64_t base_assignment,
                       bool exhaustive) -> bool {
    std::vector<std::uint64_t> words_a(a.pis().size());
    std::vector<std::uint64_t> words_b(b.pis().size());
    for (std::size_t i = 0; i < n; ++i) {
      if (pins.vars[i].a != kUnmapped) words_a[pins.vars[i].a] = words[i];
      if (pins.vars[i].b != kUnmapped) words_b[pins.vars[i].b] = words[i];
    }
    const auto out_a = simulate64(a, words_a);
    const auto out_b = simulate64(b, words_b);
    for (const auto& [oa, ob] : pins.po_pairs) {
      const std::uint64_t diff = out_a[oa] ^ out_b[ob];
      if (diff == 0) continue;
      res.message = "PO " + a.pos()[oa].name + " differs";
      if (exhaustive) {
        const int bit = std::countr_zero(diff);
        res.counterexample = base_assignment + static_cast<std::uint64_t>(bit);
      }
      return false;
    }
    return true;
  };

  if (static_cast<int>(n) <= opts.max_exhaustive_pis) {
    // Exhaustive: 64 assignments per block, vars 0..5 cycle inside a word.
    const std::uint64_t total = 1ULL << n;
    for (std::uint64_t base = 0; base < total; base += 64) {
      std::vector<std::uint64_t> words(n);
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t w = 0;
        for (std::uint64_t m = 0; m < 64 && base + m < total; ++m) {
          const std::uint64_t assignment = base + m;
          if ((assignment >> i) & 1) w |= 1ULL << m;
        }
        words[i] = w;
      }
      if (!run_words(words, base, true)) return res;
    }
    res.equivalent = true;
    return res;
  }

  std::mt19937_64 rng(opts.seed);
  for (int round = 0; round < opts.random_rounds; ++round) {
    std::vector<std::uint64_t> words(n);
    for (std::size_t i = 0; i < n; ++i) words[i] = rng();
    if (!run_words(words, 0, false)) return res;
  }
  res.equivalent = true;
  res.message = "random simulation only (" + std::to_string(n) + " PIs)";
  return res;
}

}  // namespace rarsub
