#pragma once
// Combinational equivalence checking used as the safety net of the whole
// project: every optimization pass is validated (in tests and optionally
// in the benches) by comparing primary-output functions before and after.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "network/network.hpp"

namespace rarsub {

struct EquivalenceResult {
  bool equivalent = false;
  /// A distinguishing PI assignment when not equivalent and one was found.
  /// Bit i corresponds to the i-th union input variable: `a`'s PIs in
  /// order, followed by any PIs present only in `b`.
  std::optional<std::uint64_t> counterexample;
  std::string message;
};

struct EquivalenceOptions {
  /// Exhaustive simulation up to this many PIs; random beyond.
  int max_exhaustive_pis = 14;
  /// 64-pattern random rounds for larger circuits.
  int random_rounds = 512;
  std::uint64_t seed = 0x5eedULL;
  /// When non-empty, compare only the named primary outputs (the
  /// affected-cone replay of SubstituteOptions::verify_commits); every
  /// name must exist in both networks. Empty = compare all POs.
  std::vector<std::string> only_pos;
};

/// Compare two networks' primary outputs. PIs and POs are matched by name
/// (order-independent). A PI present in only one network is tolerated as
/// long as it drives nothing there (fuzz-generated and shrunk circuits
/// routinely carry dangling inputs); a *driven* PI mismatch — or any PO
/// name-set mismatch — is reported with the offending names spelled out
/// rather than a bare "non-equivalent".
EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    const EquivalenceOptions& opts = {});

}  // namespace rarsub
