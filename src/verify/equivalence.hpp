#pragma once
// Combinational equivalence checking used as the safety net of the whole
// project: every optimization pass is validated (in tests and optionally
// in the benches) by comparing primary-output functions before and after.

#include <cstdint>
#include <optional>
#include <string>

#include "network/network.hpp"

namespace rarsub {

struct EquivalenceResult {
  bool equivalent = false;
  /// A distinguishing PI assignment (bit i = i-th PI of `a`) when not
  /// equivalent and one was found.
  std::optional<std::uint64_t> counterexample;
  std::string message;
};

struct EquivalenceOptions {
  /// Exhaustive simulation up to this many PIs; random beyond.
  int max_exhaustive_pis = 14;
  /// 64-pattern random rounds for larger circuits.
  int random_rounds = 512;
  std::uint64_t seed = 0x5eedULL;
};

/// Compare two networks' primary outputs. PIs and POs are matched by name
/// (order-independent); a name mismatch is reported as non-equivalent.
EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    const EquivalenceOptions& opts = {});

}  // namespace rarsub
