#include "sop/algdiv.hpp"

#include <gtest/gtest.h>

#include "sop/kernel.hpp"
#include "test_util.hpp"

namespace rarsub {
namespace {

using testutil::random_sop;
using testutil::same_function;

// Variable order used in string cubes below: a,b,c,d,e -> 0..4.

TEST(AlgDiv, DivideByCube) {
  // f = abc + abd + e ; divide by ab -> q = c + d, r = e.
  const Sop f = Sop::from_strings({"111--", "11-1-", "----1"});
  const Cube ab = Cube::from_string("11---");
  const AlgDivResult res = divide_by_cube(f, ab);
  EXPECT_TRUE(same_function(res.quotient, Sop::from_strings({"--1--", "---1-"})));
  EXPECT_TRUE(same_function(res.remainder, Sop::from_strings({"----1"})));
}

TEST(AlgDiv, WeakDivisionTextbook) {
  // f = ac + ad + bc + bd + e, d = a + b -> q = c + d(var), r = e.
  const Sop f =
      Sop::from_strings({"1-1--", "1--1-", "-11--", "-1-1-", "----1"});
  const Sop d = Sop::from_strings({"1----", "-1---"});
  const AlgDivResult res = weak_divide(f, d);
  EXPECT_TRUE(same_function(res.quotient, Sop::from_strings({"--1--", "---1-"})));
  EXPECT_TRUE(same_function(res.remainder, Sop::from_strings({"----1"})));
}

TEST(AlgDiv, PaperIntroAlgebraicExample) {
  // Paper Sec. I: algebraic division of f by d gives a weaker result than
  // Boolean division. The algebraic identity f = q*d + r must still hold.
  // Use f = ab + ac + bc with d = a + b: q = c, r = ab.
  const Sop f = Sop::from_strings({"11-", "1-1", "-11"});
  const Sop d = Sop::from_strings({"1--", "-1-"});
  const AlgDivResult res = weak_divide(f, d);
  EXPECT_TRUE(same_function(res.quotient, Sop::from_strings({"--1"})));
  EXPECT_TRUE(same_function(res.remainder, Sop::from_strings({"11-"})));
}

TEST(AlgDiv, QuotientZeroWhenDivisorSharesNothing) {
  // Paper Sec. I: dividing f (no dependence on e) by a divisor containing e
  // yields quotient zero under basic/algebraic division.
  const Sop f = Sop::from_strings({"11---"});
  const Sop d = Sop::from_strings({"----1"});
  const AlgDivResult res = weak_divide(f, d);
  EXPECT_EQ(res.quotient.num_cubes(), 0);
  EXPECT_TRUE(same_function(res.remainder, f));
}

TEST(AlgDivProperty, ReconstructionIdentity) {
  // f == q*d + r as an algebraic identity (set of cubes), hence as functions.
  std::mt19937 rng(41);
  for (int iter = 0; iter < 200; ++iter) {
    const Sop f = random_sop(rng, 6, 6, 0.4);
    const Sop d = random_sop(rng, 6, 2, 0.3);
    if (d.num_cubes() == 0) continue;
    const AlgDivResult res = weak_divide(f, d);
    const Sop rebuilt =
        algebraic_product(res.quotient, d).boolean_or(res.remainder);
    EXPECT_TRUE(same_function(rebuilt, f)) << f.to_string() << " / " << d.to_string();
  }
}

TEST(AlgDiv, CommonCubeAndCubeFree) {
  const Sop f = Sop::from_strings({"111-", "11-1"});
  EXPECT_EQ(largest_common_cube(f).to_string(), "11--");
  EXPECT_FALSE(is_cube_free(f));
  const Sop cf = make_cube_free(f);
  EXPECT_TRUE(is_cube_free(cf));
  EXPECT_TRUE(same_function(cf, Sop::from_strings({"--1-", "---1"})));
}

TEST(Kernel, TextbookKernels) {
  // f = adf + aef + bdf + bef + cdf + cef + g  (vars a..g -> 0..6)
  // kernels include (a+b+c) with cokernel df/ef, (d+e) with cokernels af..cf,
  // and the cube-free f itself.
  const Sop f = Sop::from_strings({
      "1--1-1-", "1---11-", "-1-1-1-", "-1--11-", "--11-1-", "--1-11-",
      "------1"});
  const auto kernels = find_kernels(f);
  bool found_abc = false, found_de = false;
  const Sop abc = Sop::from_strings({"1------", "-1-----", "--1----"});
  const Sop de = Sop::from_strings({"---1---", "----1--"});
  for (const KernelEntry& k : kernels) {
    if (same_function(k.kernel, abc)) found_abc = true;
    if (same_function(k.kernel, de)) found_de = true;
  }
  EXPECT_TRUE(found_abc);
  EXPECT_TRUE(found_de);
}

TEST(Kernel, Level0AreLeaves) {
  const Sop f = Sop::from_strings({
      "1--1-1-", "1---11-", "-1-1-1-", "-1--11-", "--11-1-", "--1-11-",
      "------1"});
  const auto l0 = find_kernels(f, KernelOptions{.level0_only = true});
  for (const KernelEntry& k : l0) {
    EXPECT_EQ(k.level, 0);
    // A level-0 kernel has no kernels other than itself.
    const auto sub = find_kernels(k.kernel);
    for (const KernelEntry& s : sub)
      EXPECT_TRUE(same_function(s.kernel, make_cube_free(k.kernel)));
  }
  EXPECT_FALSE(l0.empty());
}

TEST(Kernel, SingleCubeHasNoKernels) {
  const Sop f = Sop::from_strings({"111"});
  EXPECT_TRUE(find_kernels(f).empty());
  EXPECT_EQ(quick_divisor(f).num_cubes(), 0);
}

TEST(KernelProperty, QuickDivisorDividesWithNonTrivialQuotient) {
  std::mt19937 rng(43);
  for (int iter = 0; iter < 100; ++iter) {
    const Sop f = random_sop(rng, 6, 6, 0.45);
    const Sop d = quick_divisor(f);
    if (d.num_cubes() < 2) continue;
    const AlgDivResult res = weak_divide(f, d);
    EXPECT_GE(res.quotient.num_cubes(), 1) << f.to_string();
    const Sop rebuilt = algebraic_product(res.quotient, d).boolean_or(res.remainder);
    EXPECT_TRUE(same_function(rebuilt, f));
  }
}

}  // namespace
}  // namespace rarsub
