// Unit tests for the substitution scratch arena (src/mem/arena.hpp) and
// the cube small-buffer optimization boundary (src/sop/cube.hpp): the two
// halves of the allocation-churn work described in docs/PERFORMANCE.md.

#include "mem/arena.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sop/cube.hpp"
#include "sop/sop.hpp"

namespace rarsub {
namespace {

// ---------------------------------------------------------------------
// Arena core.

TEST(Arena, AllocationsAreAligned) {
  mem::Arena a;
  for (std::size_t align : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{8}, std::size_t{16}}) {
    void* p = a.allocate(3, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "allocation not aligned to " << align;
    EXPECT_TRUE(a.owns(p));
  }
}

TEST(Arena, ZeroByteAllocationsAreDistinct) {
  mem::Arena a;
  void* p = a.allocate(0, 1);
  void* q = a.allocate(0, 1);
  EXPECT_NE(p, q);
}

TEST(Arena, GrowsAcrossChunksAndKeepsThemOnReset) {
  mem::Arena a;
  // Force several chunk spills: each allocation is bigger than the 64 KiB
  // first chunk can hold twice.
  for (int i = 0; i < 8; ++i) (void)a.allocate(48 * 1024, 8);
  const std::size_t chunks = a.chunk_count();
  const std::size_t reserved = a.bytes_reserved();
  EXPECT_GE(chunks, 2u);
  EXPECT_GT(a.bytes_used(), 0u);

  a.reset();
  EXPECT_EQ(a.chunk_count(), chunks) << "reset must keep chunks for reuse";
  EXPECT_EQ(a.bytes_reserved(), reserved);
  EXPECT_EQ(a.bytes_used(), 0u);

  // Refilling after reset reuses the kept chunks: no new reservation.
  for (int i = 0; i < 8; ++i) (void)a.allocate(48 * 1024, 8);
  EXPECT_EQ(a.bytes_reserved(), reserved);
}

TEST(Arena, OversizedRequestGetsItsOwnChunk) {
  mem::Arena a;
  void* p = a.allocate(4 * 1024 * 1024, 8);  // bigger than the 1 MiB cap
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(a.owns(p));
  EXPECT_GE(a.bytes_reserved(), std::size_t{4 * 1024 * 1024});
}

TEST(Arena, MarkRewindReclaimsInO1AndMemoryIsReused) {
  mem::Arena a;
  (void)a.allocate(64, 8);
  const mem::Arena::Mark m = a.mark();
  void* p1 = a.allocate(1024, 8);
  const std::size_t used_after = a.bytes_used();
  a.rewind(m);
  EXPECT_LT(a.bytes_used(), used_after);
  void* p2 = a.allocate(1024, 8);
  EXPECT_EQ(p1, p2) << "rewind must hand back the same region";
}

TEST(Arena, OwnsRejectsForeignPointers) {
  mem::Arena a;
  (void)a.allocate(16, 8);
  int heap_obj = 0;
  EXPECT_FALSE(a.owns(&heap_obj));
  mem::Arena b;
  void* p = b.allocate(16, 8);
  EXPECT_FALSE(a.owns(p));
  EXPECT_TRUE(b.owns(p));
}

// ---------------------------------------------------------------------
// ScratchScope frames over the thread-local arena.

TEST(ScratchScope, NestedFramesRewindToTheirOwnMarks) {
  mem::Arena& a = mem::scratch_arena();
  const std::size_t base = a.bytes_used();
  {
    mem::ScratchScope outer;
    (void)a.allocate(256, 8);
    const std::size_t outer_used = a.bytes_used();
    {
      mem::ScratchScope inner;
      (void)a.allocate(512, 8);
      EXPECT_GT(a.bytes_used(), outer_used);
    }
    EXPECT_EQ(a.bytes_used(), outer_used) << "inner frame must rewind";
    (void)a.allocate(128, 8);
  }
  EXPECT_EQ(a.bytes_used(), base) << "outer frame must rewind";
}

TEST(ScratchScope, StatsCountResetsAndHighWater) {
  mem::arena_stats_reset();
  const mem::ArenaStats before = mem::arena_stats();
  {
    mem::ScratchScope scope;
    (void)mem::scratch_arena().allocate(4096, 8);
  }
  const mem::ArenaStats after = mem::arena_stats();
  EXPECT_GT(after.resets, before.resets);
  EXPECT_GE(after.high_water, before.high_water + 4096);
}

// ---------------------------------------------------------------------
// ArenaAllocator + standard containers, across latch states.

// Save/restore the process latch so these tests pass under any ambient
// RARSUB_ARENA setting (the arena-off CI leg runs the whole suite).
class LatchGuard {
 public:
  LatchGuard() : prev_(mem::arena_enabled()) {}
  ~LatchGuard() { mem::set_arena_enabled(prev_); }

 private:
  bool prev_;
};

TEST(ArenaAllocator, VectorGrowsInsideArena) {
  LatchGuard guard;
  mem::set_arena_enabled(true);
  mem::ScratchScope scope;
  mem::ScratchVector<int> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_TRUE(mem::scratch_arena().owns(v.data()));
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(ArenaAllocator, FallsBackToHeapWhenDisabled) {
  LatchGuard guard;
  mem::ScratchScope scope;
  mem::set_arena_enabled(false);
  {
    mem::ScratchVector<int> v;
    for (int i = 0; i < 100; ++i) v.push_back(i);
    EXPECT_FALSE(mem::scratch_arena().owns(v.data()));
  }  // deallocate() must route the heap pointer to operator delete
}

TEST(ArenaAllocator, SurvivesLatchFlipMidContainerLifetime) {
  LatchGuard guard;
  mem::set_arena_enabled(true);
  mem::ScratchScope scope;
  mem::ScratchVector<int> v;
  v.reserve(8);
  for (int i = 0; i < 8; ++i) v.push_back(i);
  EXPECT_TRUE(mem::scratch_arena().owns(v.data()));
  // Disable the arena, then force a regrow: the old arena buffer must be
  // left alone (owns() check) and the new one comes from the heap.
  mem::set_arena_enabled(false);
  for (int i = 8; i < 1000; ++i) v.push_back(i);
  EXPECT_FALSE(mem::scratch_arena().owns(v.data()));
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
}

// ---------------------------------------------------------------------
// Cube small-buffer boundary: 64 variables inline, 65 on the heap. The
// representation must be invisible to every observable operation.

Cube pattern_cube(int nv) {
  Cube c(nv);
  for (int v = 0; v < nv; v += 3)
    c.set_lit(v, (v % 2) == 0 ? Lit::Pos : Lit::Neg);
  return c;
}

TEST(CubeSbo, BoundaryWidthsBehaveIdentically) {
  for (int nv : {1, 31, 32, 33, 63, Cube::kInlineVars, Cube::kInlineVars + 1,
                 96, 128, 200}) {
    SCOPED_TRACE("nv=" + std::to_string(nv));
    Cube c = pattern_cube(nv);
    EXPECT_EQ(c.num_vars(), nv);
    for (int v = 0; v < nv; ++v) {
      const Lit expect =
          (v % 3 == 0) ? ((v % 2) == 0 ? Lit::Pos : Lit::Neg) : Lit::Absent;
      ASSERT_EQ(c.lit(v), expect) << "var " << v;
    }
    // Round trip through the string form is representation-independent.
    EXPECT_EQ(Cube::from_string(c.to_string()), c);
    EXPECT_EQ(Cube::from_string(c.to_string()).hash(), c.hash());
  }
}

TEST(CubeSbo, CopyAndMoveAcrossTheBoundary) {
  const Cube small = pattern_cube(Cube::kInlineVars);      // inline rep
  const Cube large = pattern_cube(Cube::kInlineVars + 1);  // heap rep

  // Copy construction preserves value for both representations.
  Cube small_copy(small);
  Cube large_copy(large);
  EXPECT_EQ(small_copy, small);
  EXPECT_EQ(large_copy, large);

  // Cross-representation copy assignment (inline <- heap and heap <- inline).
  Cube x = small;
  x = large;
  EXPECT_EQ(x, large);
  Cube y = large;
  y = small;
  EXPECT_EQ(y, small);

  // Self-consistent move: moved-to holds the value; moved-from is reusable.
  Cube ms = small;
  Cube moved_small(std::move(ms));
  EXPECT_EQ(moved_small, small);
  Cube ml = large;
  Cube moved_large(std::move(ml));
  EXPECT_EQ(moved_large, large);
  ml = moved_large;  // move-from must stay assignable
  EXPECT_EQ(ml, large);

  // Cross-representation move assignment.
  Cube z = pattern_cube(Cube::kInlineVars);
  z = pattern_cube(Cube::kInlineVars + 1);
  EXPECT_EQ(z, large);
  z = pattern_cube(Cube::kInlineVars);
  EXPECT_EQ(z, small);
}

TEST(CubeSbo, HashEqualityAndOrderAgreeAcrossWidths) {
  for (int nv : {Cube::kInlineVars, Cube::kInlineVars + 1}) {
    SCOPED_TRACE("nv=" + std::to_string(nv));
    Cube a = pattern_cube(nv);
    Cube b = pattern_cube(nv);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_FALSE(a < b);
    EXPECT_FALSE(b < a);
    b.set_lit(nv - 1, Lit::Pos);
    EXPECT_NE(a, b);
    EXPECT_TRUE((a < b) != (b < a));
  }
}

TEST(CubeSbo, SetOperationsAcrossTheBoundary) {
  const int nv = Cube::kInlineVars + 1;  // heap representation
  Cube a(nv), b(nv);
  a.set_lit(0, Lit::Pos);
  a.set_lit(nv - 1, Lit::Neg);  // the literal in the spill word
  b.set_lit(0, Lit::Pos);
  EXPECT_TRUE(b.contains(a));
  EXPECT_FALSE(a.contains(b));
  EXPECT_EQ(a.num_literals(), 2);
  EXPECT_EQ(a.intersect(b), a);
  EXPECT_EQ(a.supercube(b), b);
  EXPECT_EQ(a.distance(b), 0);
  Cube c(nv);
  c.set_lit(nv - 1, Lit::Pos);  // conflicts with a on the spill word
  EXPECT_EQ(a.distance(c), 1);
  EXPECT_TRUE(a.intersect(c).is_empty());
}

TEST(CubeSbo, SopOverWideCubesStillMinimizes) {
  const int nv = Cube::kInlineVars + 1;
  Sop f(nv);
  Cube wide(nv);
  wide.set_lit(nv - 1, Lit::Pos);
  Cube narrow = wide;
  narrow.set_lit(0, Lit::Neg);  // contained in `wide`
  f.add_cube(narrow);
  f.add_cube(wide);
  f.add_cube(wide);  // duplicate
  f.scc_minimize();
  ASSERT_EQ(f.num_cubes(), 1);
  EXPECT_EQ(f.cube(0), wide);
}

}  // namespace
}  // namespace rarsub
