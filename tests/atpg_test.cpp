#include "atpg/fault.hpp"
#include "atpg/implication.hpp"

#include <gtest/gtest.h>

#include <random>

namespace rarsub {
namespace {

// ---------------------------------------------------------------------
// Random circuit generator for the soundness properties.
GateNet random_gatenet(std::mt19937& rng, int num_pis, int num_gates) {
  GateNet gn;
  for (int i = 0; i < num_pis; ++i) gn.add_pi("x" + std::to_string(i));
  std::uniform_int_distribution<int> nfan(1, 3);
  for (int i = 0; i < num_gates; ++i) {
    const int existing = gn.num_gates();
    std::uniform_int_distribution<int> pick(0, existing - 1);
    std::vector<Signal> fanins;
    const int k = nfan(rng);
    for (int j = 0; j < k; ++j) fanins.push_back({pick(rng), (rng() & 1) != 0});
    gn.add_gate((rng() & 1) ? GateType::And : GateType::Or, std::move(fanins));
  }
  // Last couple of gates observable.
  gn.add_output(gn.num_gates() - 1);
  if (num_gates >= 2) gn.add_output(gn.num_gates() - 2);
  return gn;
}

// Enumerate all PI assignments (num PIs <= 16) and return gate values.
std::vector<std::vector<bool>> all_evals(const GateNet& gn) {
  std::vector<std::vector<bool>> evals;
  const std::size_t n = gn.pis().size();
  for (std::uint64_t a = 0; a < (1ULL << n); ++a) {
    std::vector<bool> pi(n);
    for (std::size_t i = 0; i < n; ++i) pi[i] = (a >> i) & 1;
    evals.push_back(gn.eval(pi));
  }
  return evals;
}

// ---------------------------------------------------------------------

TEST(Implication, ForwardAnd) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int g = gn.add_gate(GateType::And, {{a, false}, {b, false}});
  ImplicationEngine eng(gn);
  ASSERT_TRUE(eng.assign(a, false));
  EXPECT_EQ(eng.value(g), TV::Zero);

  eng.reset();
  ASSERT_TRUE(eng.assign(a, true));
  EXPECT_EQ(eng.value(g), TV::X);
  ASSERT_TRUE(eng.assign(b, true));
  EXPECT_EQ(eng.value(g), TV::One);
}

TEST(Implication, BackwardAnd) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int g = gn.add_gate(GateType::And, {{a, false}, {b, false}});
  ImplicationEngine eng(gn);
  ASSERT_TRUE(eng.assign(g, true));
  EXPECT_EQ(eng.value(a), TV::One);
  EXPECT_EQ(eng.value(b), TV::One);

  eng.reset();
  ASSERT_TRUE(eng.assign(g, false));
  ASSERT_TRUE(eng.assign(a, true));
  EXPECT_EQ(eng.value(b), TV::Zero);  // last-free-input rule
}

TEST(Implication, NegatedEdges) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int g = gn.add_gate(GateType::Or, {{a, true}});  // g = !a
  ImplicationEngine eng(gn);
  ASSERT_TRUE(eng.assign(a, true));
  EXPECT_EQ(eng.value(g), TV::Zero);
  eng.reset();
  ASSERT_TRUE(eng.assign(g, true));
  EXPECT_EQ(eng.value(a), TV::Zero);
}

TEST(Implication, ConflictDetected) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int g = gn.add_gate(GateType::And, {{a, false}, {b, false}});
  ImplicationEngine eng(gn);
  ASSERT_TRUE(eng.assign(g, true));  // forces a=b=1
  EXPECT_FALSE(eng.assign(a, false));
  EXPECT_TRUE(eng.in_conflict());
}

TEST(Implication, PaperFig2ConflictExample) {
  // Sec. III-B: the wire-u stuck-at-one test conflicts because the bold
  // AND demands divisor=1 while activation+side values force it to 0.
  // Model: q = OR(c1, c2) with c1 = a&b, c2 = a&c; bold = AND(q, d) with
  // d = OR(k1, k2), k1 = a&b, k2 = a&c. Fault: pin b of c1 s-a-1:
  // activation b=0, side a=1; propagation via q: c2 must be 0 -> with a=1
  // implies c=0; through bold: d must be 1, but k1=(a&b)=0 and k2=(a&c)=0
  // force d=0 — conflict.
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int c = gn.add_pi("c");
  const int c1 = gn.add_gate(GateType::And, {{a, false}, {b, false}});
  const int c2 = gn.add_gate(GateType::And, {{a, false}, {c, false}});
  const int q = gn.add_gate(GateType::Or, {{c1, false}, {c2, false}});
  const int k1 = gn.add_gate(GateType::And, {{a, false}, {b, false}});
  const int k2 = gn.add_gate(GateType::And, {{a, false}, {c, false}});
  const int d = gn.add_gate(GateType::Or, {{k1, false}, {k2, false}});
  const int bold = gn.add_gate(GateType::And, {{q, false}, {d, false}});
  gn.add_output(bold);

  const FaultResult fr = analyze_fault(gn, WireRef{c1, 1}, /*stuck=*/true);
  EXPECT_TRUE(fr.untestable);
}

TEST(Fault, DominatorsOfChain) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int g1 = gn.add_gate(GateType::And, {{a, false}, {b, false}});
  const int g2 = gn.add_gate(GateType::Or, {{g1, false}, {b, false}});
  const int g3 = gn.add_gate(GateType::And, {{g2, false}, {a, false}});
  gn.add_output(g3);
  const auto doms = propagation_dominators(gn, g1);
  EXPECT_EQ(doms, (std::vector<int>{g2, g3}));
}

TEST(Fault, DominatorsWithReconvergence) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int g = gn.add_gate(GateType::And, {{a, false}});
  const int p1 = gn.add_gate(GateType::And, {{g, false}});
  const int p2 = gn.add_gate(GateType::Or, {{g, false}});
  const int m = gn.add_gate(GateType::And, {{p1, false}, {p2, false}});
  gn.add_output(m);
  const auto doms = propagation_dominators(gn, g);
  EXPECT_EQ(doms, (std::vector<int>{m}));  // p1, p2 are on parallel paths
}

TEST(Fault, UnobservableWireIsRedundant) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int g = gn.add_gate(GateType::And, {{a, false}});
  (void)g;
  const int h = gn.add_gate(GateType::Or, {{a, false}});
  gn.add_output(h);  // g never reaches an output
  const FaultResult fr = analyze_fault(gn, WireRef{g, 0}, true);
  EXPECT_TRUE(fr.untestable);
  EXPECT_TRUE(fr.unobservable);
}

TEST(Fault, DuplicatedLiteralIsRedundant) {
  // g = a & a: either pin's s-a-1 is untestable.
  GateNet gn;
  const int a = gn.add_pi("a");
  const int g = gn.add_gate(GateType::And, {{a, false}, {a, false}});
  gn.add_output(g);
  EXPECT_TRUE(analyze_fault(gn, WireRef{g, 0}, true).untestable);
  EXPECT_TRUE(analyze_fault(gn, WireRef{g, 1}, true).untestable);
}

TEST(Fault, IrredundantWireIsNotReported) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int g = gn.add_gate(GateType::And, {{a, false}, {b, false}});
  gn.add_output(g);
  EXPECT_FALSE(analyze_fault(gn, WireRef{g, 0}, true).untestable);
  EXPECT_FALSE(analyze_fault(gn, WireRef{g, 0}, false).untestable);
}

TEST(Implication, RecursiveLearningFindsCommonImplication) {
  // g = (x·y1) + (x·y2): justifying g=1 has two choices, but BOTH imply
  // x=1 — exactly what depth-1 recursive learning (Kunz–Pradhan) extracts
  // and direct implications cannot.
  GateNet gn;
  const int x = gn.add_pi("x");
  const int y1 = gn.add_pi("y1");
  const int y2 = gn.add_pi("y2");
  const int a1 = gn.add_gate(GateType::And, {{x, false}, {y1, false}});
  const int a2 = gn.add_gate(GateType::And, {{x, false}, {y2, false}});
  const int g = gn.add_gate(GateType::Or, {{a1, false}, {a2, false}});
  gn.add_output(g);

  ImplicationEngine direct(gn, /*learning_depth=*/0);
  ASSERT_TRUE(direct.assign(g, true));
  EXPECT_EQ(direct.value(x), TV::X);  // direct implications see nothing

  ImplicationEngine learning(gn, /*learning_depth=*/1);
  ASSERT_TRUE(learning.assign(g, true));
  EXPECT_EQ(learning.value(x), TV::One);  // learned across the case split
}

TEST(Implication, RecursiveLearningDetectsDeepConflict) {
  // Same circuit plus x forced 0: g=1 is then unsatisfiable; learning
  // notices (all justification branches conflict).
  GateNet gn;
  const int x = gn.add_pi("x");
  const int y1 = gn.add_pi("y1");
  const int y2 = gn.add_pi("y2");
  const int a1 = gn.add_gate(GateType::And, {{x, false}, {y1, false}});
  const int a2 = gn.add_gate(GateType::And, {{x, false}, {y2, false}});
  const int g = gn.add_gate(GateType::Or, {{a1, false}, {a2, false}});
  gn.add_output(g);

  ImplicationEngine eng(gn, /*learning_depth=*/1);
  ASSERT_TRUE(eng.assign(x, false));
  EXPECT_FALSE(eng.assign(g, true));
  EXPECT_TRUE(eng.in_conflict());
}

// ---------------------------------------------------------------------
// Soundness properties on random circuits.

struct SoundnessParam {
  int seed;
  int pis;
  int gates;
  int learning;
};

class FaultSoundness : public ::testing::TestWithParam<SoundnessParam> {};

// If analyze_fault says untestable, then forcing the wire to its stuck
// value must not change any observable output, for every input pattern.
TEST_P(FaultSoundness, UntestableImpliesSafeRemoval) {
  const auto p = GetParam();
  std::mt19937 rng(static_cast<unsigned>(p.seed));
  for (int iter = 0; iter < 25; ++iter) {
    GateNet gn = random_gatenet(rng, p.pis, p.gates);
    const auto before = all_evals(gn);
    for (int g = 0; g < gn.num_gates(); ++g) {
      const Gate& gd = gn.gate(g);
      if (gd.type != GateType::And && gd.type != GateType::Or) continue;
      for (int pin = 0; pin < static_cast<int>(gd.fanins.size()); ++pin) {
        for (const bool stuck : {false, true}) {
          const FaultResult fr =
              analyze_fault(gn, WireRef{g, pin}, stuck, p.learning);
          if (!fr.untestable) continue;
          // Emulate the stuck wire on a copy and compare all outputs.
          GateNet copy = gn;
          const int cgate = copy.add_const(stuck);
          copy.gate(g).fanins[static_cast<std::size_t>(pin)] =
              Signal{cgate, false};
          copy.gate(cgate).fanouts.push_back(g);
          const auto after = all_evals(copy);
          for (std::size_t a = 0; a < before.size(); ++a)
            for (int o : gn.outputs())
              ASSERT_EQ(before[a][static_cast<std::size_t>(o)],
                        after[a][static_cast<std::size_t>(o)])
                  << "seed=" << p.seed << " iter=" << iter << " gate=" << g
                  << " pin=" << pin << " stuck=" << stuck;
        }
      }
    }
  }
}

// Values implied by the engine must hold in every consistent completion.
TEST_P(FaultSoundness, ImpliedValuesAreNecessary) {
  const auto p = GetParam();
  std::mt19937 rng(static_cast<unsigned>(p.seed) + 500);
  for (int iter = 0; iter < 25; ++iter) {
    GateNet gn = random_gatenet(rng, p.pis, p.gates);
    const auto evals = all_evals(gn);
    // Random assumptions on up to 2 gates.
    std::uniform_int_distribution<int> pickg(0, gn.num_gates() - 1);
    const int g1 = pickg(rng), g2 = pickg(rng);
    const bool v1 = (rng() & 1) != 0, v2 = (rng() & 1) != 0;
    ImplicationEngine eng(gn, p.learning);
    bool ok = eng.assign(g1, v1);
    if (ok) ok = eng.assign(g2, v2);

    // Collect completions consistent with the assumptions.
    std::vector<const std::vector<bool>*> models;
    for (const auto& ev : evals)
      if (ev[static_cast<std::size_t>(g1)] == v1 &&
          ev[static_cast<std::size_t>(g2)] == v2)
        models.push_back(&ev);

    if (!ok) {
      EXPECT_TRUE(models.empty())
          << "conflict reported but a consistent completion exists";
      continue;
    }
    for (int g = 0; g < gn.num_gates(); ++g) {
      const TV v = eng.value(g);
      if (v == TV::X) continue;
      for (const auto* m : models)
        ASSERT_EQ((*m)[static_cast<std::size_t>(g)], v == TV::One)
            << "gate " << g << " implied wrongly";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultSoundness,
    ::testing::Values(SoundnessParam{1, 4, 8, 0}, SoundnessParam{2, 5, 12, 0},
                      SoundnessParam{3, 6, 16, 0}, SoundnessParam{4, 5, 10, 1},
                      SoundnessParam{5, 6, 14, 1},
                      SoundnessParam{6, 7, 20, 0}));

}  // namespace
}  // namespace rarsub
