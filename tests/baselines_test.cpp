#include "resub/boolean_baselines.hpp"

#include <gtest/gtest.h>

#include "opt/full_simplify.hpp"
#include "test_util.hpp"
#include "verify/equivalence.hpp"

namespace rarsub {
namespace {

using testutil::random_sop;

// g(x, y=d(x)) must equal f(x): the substitution identity every Boolean
// division must satisfy.
void expect_substitution_identity(const Sop& f, const Sop& d, const Sop& g) {
  ASSERT_EQ(g.num_vars(), f.num_vars() + 1);
  for (std::uint64_t x = 0; x < (1ULL << f.num_vars()); ++x) {
    const bool dv = d.eval(x);
    const std::uint64_t a =
        x | (static_cast<std::uint64_t>(dv) << f.num_vars());
    ASSERT_EQ(g.eval(a), f.eval(x))
        << "x=" << x << "\nf=" << f.to_string() << "\nd=" << d.to_string()
        << "\ng=" << g.to_string();
  }
}

TEST(EspressoDivide, IntroExample) {
  // The paper's Sec. I setup: force the divisor literal into the result
  // via don't cares.
  const Sop f = Sop::from_strings({"10-", "1-1", "-10", "-01"});
  const Sop d = Sop::from_strings({"11-", "-01"});
  const auto g = espresso_boolean_divide(f, d);
  ASSERT_TRUE(g.has_value());
  expect_substitution_identity(f, d, *g);
}

TEST(EspressoDivide, RejectsConstantDivisors) {
  const Sop f = Sop::from_strings({"11"});
  EXPECT_EQ(espresso_boolean_divide(f, Sop::zero(2)), std::nullopt);
  EXPECT_EQ(espresso_boolean_divide(f, Sop::one(2)), std::nullopt);
}

TEST(EspressoDivideProperty, SubstitutionIdentityOnRandomPairs) {
  std::mt19937 rng(331);
  int used = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const Sop f = random_sop(rng, 5, 4, 0.45);
    const Sop d = random_sop(rng, 5, 2, 0.4);
    if (f.num_cubes() == 0 || d.num_cubes() == 0) continue;
    const auto g = espresso_boolean_divide(f, d);
    if (!g) continue;
    ++used;
    expect_substitution_identity(f, d, *g);
  }
  EXPECT_GT(used, 5);
}

TEST(Baselines, NetworkPassPreservesPOs) {
  std::mt19937 rng(337);
  for (const BooleanBaseline kind :
       {BooleanBaseline::EspressoDc, BooleanBaseline::BddDivision}) {
    for (int iter = 0; iter < 6; ++iter) {
      // Reuse the shared-structure generator from test_util-ish inline.
      Network net("b");
      std::vector<NodeId> pool;
      for (int i = 0; i < 5; ++i)
        pool.push_back(net.add_pi("x" + std::to_string(i)));
      for (int i = 0; i < 8; ++i) {
        const int k = 2 + static_cast<int>(rng() % 3);
        std::vector<NodeId> fanins;
        while (static_cast<int>(fanins.size()) < k) {
          const NodeId cand = pool[rng() % pool.size()];
          if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
            fanins.push_back(cand);
        }
        Sop func = random_sop(rng, k, 3, 0.6);
        if (func.num_cubes() == 0) func = Sop::one(k);
        pool.push_back(net.add_node("n" + std::to_string(i), fanins, func));
      }
      net.add_po("o0", pool[pool.size() - 1]);
      net.add_po("o1", pool[pool.size() - 2]);
      const Network before = net;
      BaselineOptions opts;
      opts.kind = kind;
      boolean_baseline_resub(net, opts);
      ASSERT_TRUE(net.check());
      EXPECT_TRUE(check_equivalence(before, net).equivalent)
          << "kind=" << static_cast<int>(kind) << " iter=" << iter;
    }
  }
}

TEST(FullSimplify, ExploitsUnreachableFaninVectors) {
  // u = a&b, v = a|b feed f = u&!v + ... ; the combination u=1,v=0 can
  // never occur, so f's cover can use it as a don't care.
  Network net("fs");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId u = net.add_node("u", {a, b}, Sop::from_strings({"11"}));
  const NodeId v = net.add_node("v", {a, b}, Sop::from_strings({"1-", "-1"}));
  // f = u·v (over fanins u, v); since u=1 implies v=1, f == u.
  const NodeId f = net.add_node("f", {u, v}, Sop::from_strings({"11"}));
  net.add_po("f", f);
  net.add_po("v", v);

  const Network before = net;
  const FullSimplifyStats st = full_simplify_network(net);
  EXPECT_GE(st.nodes_simplified, 1);
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
  const NodeId f2 = net.find_node("f");
  // f shrank to the single literal u.
  EXPECT_EQ(net.node(f2).func.num_literals(), 1);
}

TEST(FullSimplify, SkipsWideTfiCones) {
  Network net("wide");
  std::vector<NodeId> pis;
  for (int i = 0; i < 20; ++i) pis.push_back(net.add_pi("x" + std::to_string(i)));
  // One node whose fanins' TFI covers all 20 PIs via two big ORs.
  Sop wide(10);
  Cube c(10);
  for (int i = 0; i < 10; ++i) c.set_lit(i, Lit::Pos);
  wide.add_cube(c);
  const NodeId u = net.add_node("u", {pis.begin(), pis.begin() + 10}, wide);
  const NodeId v = net.add_node("v", {pis.begin() + 10, pis.end()}, wide);
  const NodeId f = net.add_node("f", {u, v}, Sop::from_strings({"11"}));
  net.add_po("f", f);
  FullSimplifyOptions opts;
  opts.max_tfi_pis = 12;
  const FullSimplifyStats st = full_simplify_network(net, opts);
  EXPECT_EQ(st.nodes_simplified, 0);  // guard trips, nothing changes
  EXPECT_TRUE(net.check());
}

TEST(FullSimplify, ObservabilityDontCares) {
  // n = b XOR c feeds f = n & a, with a == b (a is a copy of b): whenever
  // b = 0, a = 0 and n is unobservable, so n may treat every b=0 local
  // vector as a don't care and simplify to n = b·c' (1 fewer literal,
  // from XOR's 4 to 2).
  Network net("odc");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId a = net.add_node("a", {b}, Sop::from_strings({"1"}));
  const NodeId n = net.add_node("n", {b, c}, Sop::from_strings({"10", "01"}));
  const NodeId f = net.add_node("f", {n, a}, Sop::from_strings({"11"}));
  net.add_po("f", f);

  const Network before = net;
  FullSimplifyOptions opts;
  opts.use_observability = true;
  const FullSimplifyStats st = full_simplify_network(net, opts);
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
  EXPECT_GE(st.nodes_simplified, 1);
  // The XOR's 4 literals shrink (n may even collapse into a single
  // inverter literal that sweep absorbs into f).
  EXPECT_LT(net.factored_literals(), before.factored_literals());

  // Without observability the XOR stays: every (b, c) vector is reachable.
  Network net2 = before;
  FullSimplifyOptions sdc_only;
  full_simplify_network(net2, sdc_only);
  const NodeId n3 = net2.find_node("n");
  ASSERT_NE(n3, kNoNode);
  EXPECT_EQ(net2.node(n3).func.num_literals(), 4);
}

TEST(FullSimplify, OdcPropertyPreservesPOs) {
  std::mt19937 rng(353);
  for (int iter = 0; iter < 5; ++iter) {
    Network net("op");
    std::vector<NodeId> pool;
    for (int i = 0; i < 5; ++i) pool.push_back(net.add_pi("x" + std::to_string(i)));
    for (int i = 0; i < 8; ++i) {
      const int k = 2 + static_cast<int>(rng() % 3);
      std::vector<NodeId> fanins;
      while (static_cast<int>(fanins.size()) < k) {
        const NodeId cand = pool[rng() % pool.size()];
        if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
          fanins.push_back(cand);
      }
      Sop func = random_sop(rng, k, 3, 0.55);
      if (func.num_cubes() == 0) func = Sop::one(k);
      pool.push_back(net.add_node("n" + std::to_string(i), fanins, func));
    }
    net.add_po("o0", pool.back());
    const Network before = net;
    FullSimplifyOptions opts;
    opts.use_observability = true;
    full_simplify_network(net, opts);
    ASSERT_TRUE(net.check());
    EXPECT_TRUE(check_equivalence(before, net).equivalent) << iter;
  }
}

TEST(FullSimplify, PropertyPreservesPOs) {
  std::mt19937 rng(347);
  for (int iter = 0; iter < 6; ++iter) {
    Network net("p");
    std::vector<NodeId> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(net.add_pi("x" + std::to_string(i)));
    for (int i = 0; i < 10; ++i) {
      const int k = 2 + static_cast<int>(rng() % 3);
      std::vector<NodeId> fanins;
      while (static_cast<int>(fanins.size()) < k) {
        const NodeId cand = pool[rng() % pool.size()];
        if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
          fanins.push_back(cand);
      }
      Sop func = random_sop(rng, k, 3, 0.55);
      if (func.num_cubes() == 0) func = Sop::one(k);
      pool.push_back(net.add_node("n" + std::to_string(i), fanins, func));
    }
    net.add_po("o0", pool.back());
    net.add_po("o1", pool[pool.size() - 3]);
    const Network before = net;
    full_simplify_network(net);
    ASSERT_TRUE(net.check());
    EXPECT_TRUE(check_equivalence(before, net).equivalent) << iter;
  }
}

}  // namespace
}  // namespace rarsub
