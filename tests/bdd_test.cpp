#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include "bdd/bdd_div.hpp"
#include "test_util.hpp"

namespace rarsub {
namespace {

using testutil::random_sop;
using testutil::same_function;

TEST(Bdd, Terminals) {
  BddManager m(3);
  EXPECT_NE(m.zero(), m.one());
  EXPECT_EQ(m.bdd_not(m.zero()), m.one());
  EXPECT_EQ(m.bdd_and(m.one(), m.zero()), m.zero());
}

TEST(Bdd, VarSemantics) {
  BddManager m(3);
  const BddRef x = m.var(1);
  EXPECT_TRUE(m.eval(x, 0b010));
  EXPECT_FALSE(m.eval(x, 0b101));
  EXPECT_FALSE(m.eval(m.nvar(1), 0b010));
}

TEST(Bdd, CanonicityGivesPointerEquality) {
  BddManager m(4);
  // (a & b) | (a & c) == a & (b | c)
  const BddRef l = m.bdd_or(m.bdd_and(m.var(0), m.var(1)),
                            m.bdd_and(m.var(0), m.var(2)));
  const BddRef r = m.bdd_and(m.var(0), m.bdd_or(m.var(1), m.var(2)));
  EXPECT_EQ(l, r);
}

TEST(Bdd, XorAndNot) {
  BddManager m(2);
  const BddRef x = m.bdd_xor(m.var(0), m.var(1));
  EXPECT_FALSE(m.eval(x, 0b00));
  EXPECT_TRUE(m.eval(x, 0b01));
  EXPECT_TRUE(m.eval(x, 0b10));
  EXPECT_FALSE(m.eval(x, 0b11));
}

TEST(Bdd, RestrictAndExists) {
  BddManager m(3);
  const BddRef f = m.bdd_and(m.var(0), m.var(1));
  EXPECT_EQ(m.restrict_var(f, 0, true), m.var(1));
  EXPECT_EQ(m.restrict_var(f, 0, false), m.zero());
  EXPECT_EQ(m.exists(f, 0), m.var(1));
}

TEST(Bdd, FromToSopRoundTrip) {
  std::mt19937 rng(53);
  for (int iter = 0; iter < 100; ++iter) {
    const Sop f = random_sop(rng, 6, 5, 0.4);
    BddManager m(6);
    const BddRef b = m.from_sop(f);
    const Sop back = m.to_sop(b);
    EXPECT_TRUE(same_function(back, f)) << f.to_string();
  }
}

TEST(Bdd, CountMinterms) {
  BddManager m(4);
  EXPECT_DOUBLE_EQ(m.count_minterms(m.one()), 16.0);
  EXPECT_DOUBLE_EQ(m.count_minterms(m.var(0)), 8.0);
  EXPECT_DOUBLE_EQ(m.count_minterms(m.bdd_and(m.var(0), m.var(1))), 4.0);
}

TEST(Bdd, ConstrainIdentity) {
  // Generalized cofactor identity: f = c·(f ⇓ c) + c'·(f ⇓ c').
  std::mt19937 rng(59);
  for (int iter = 0; iter < 100; ++iter) {
    const Sop fs = random_sop(rng, 5, 4, 0.45);
    const Sop cs = random_sop(rng, 5, 2, 0.45);
    BddManager m(5);
    const BddRef f = m.from_sop(fs);
    const BddRef c = m.from_sop(cs);
    if (c == m.zero() || c == m.one()) continue;
    const BddRef rebuilt =
        m.bdd_or(m.bdd_and(c, m.constrain(f, c)),
                 m.bdd_and(m.bdd_not(c), m.constrain(f, m.bdd_not(c))));
    EXPECT_EQ(rebuilt, f);
  }
}

TEST(Bdd, ConstrainAgreesOnCareSet) {
  std::mt19937 rng(61);
  for (int iter = 0; iter < 50; ++iter) {
    const Sop fs = random_sop(rng, 5, 4, 0.45);
    const Sop cs = random_sop(rng, 5, 2, 0.45);
    BddManager m(5);
    const BddRef f = m.from_sop(fs);
    const BddRef c = m.from_sop(cs);
    if (c == m.zero()) continue;
    const BddRef g = m.constrain(f, c);
    for (std::uint64_t a = 0; a < 32; ++a)
      if (m.eval(c, a)) {
        EXPECT_EQ(m.eval(g, a), m.eval(f, a));
      }
  }
}

TEST(BddDiv, StanionSechenDivision) {
  // f = ab + cd divided by d = ab: q covers ab, and f == q·d + r.
  const Sop f = Sop::from_strings({"11--", "--11"});
  const Sop d = Sop::from_strings({"11--"});
  const BddDivResult res = bdd_divide(f, d);
  ASSERT_TRUE(res.success);
  const Sop rebuilt = res.quotient.boolean_and(d).boolean_or(res.remainder);
  EXPECT_TRUE(same_function(rebuilt, f));
}

TEST(BddDiv, FailsOnConstantDivisor) {
  const Sop f = Sop::from_strings({"11"});
  EXPECT_FALSE(bdd_divide(f, Sop::zero(2)).success);
  EXPECT_FALSE(bdd_divide(f, Sop::one(2)).success);
}

TEST(BddDivProperty, ReconstructionOnRandomPairs) {
  std::mt19937 rng(67);
  for (int iter = 0; iter < 100; ++iter) {
    const Sop f = random_sop(rng, 6, 5, 0.4);
    const Sop d = random_sop(rng, 6, 2, 0.4);
    const BddDivResult res = bdd_divide(f, d);
    if (!res.success) continue;
    const Sop rebuilt = res.quotient.boolean_and(d).boolean_or(res.remainder);
    EXPECT_TRUE(same_function(rebuilt, f)) << f.to_string() << " / " << d.to_string();
  }
}

}  // namespace
}  // namespace rarsub
