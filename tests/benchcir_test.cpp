#include "benchcir/classics.hpp"
#include "benchcir/suite.hpp"
#include "benchcir/synth.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "network/simulate.hpp"

namespace rarsub {
namespace {

TEST(Classics, C17TruthTable) {
  Network net = make_c17();
  // c17: out22 = nand(nand(1,3), nand(2, nand(3,6)))
  //      out23 = nand(nand(2,nand(3,6)), nand(nand(3,6),7))
  for (std::uint64_t x = 0; x < 32; ++x) {
    const bool i1 = x & 1, i2 = x & 2, i3 = x & 4, i6 = x & 8, i7 = x & 16;
    const bool n10 = !(i1 && i3);
    const bool n11 = !(i3 && i6);
    const bool n16 = !(i2 && n11);
    const bool n19 = !(n11 && i7);
    const bool o22 = !(n10 && n16);
    const bool o23 = !(n16 && n19);
    const auto out = simulate1(net, x);
    EXPECT_EQ(out[0], o22) << x;
    EXPECT_EQ(out[1], o23) << x;
  }
}

TEST(Classics, AdderAddsCorrectly) {
  const int bits = 5;
  Network net = make_adder(bits);
  for (std::uint64_t x = 0; x < (1u << (2 * bits)); ++x) {
    const std::uint64_t a = x & ((1u << bits) - 1);
    const std::uint64_t b = x >> bits;
    const std::uint64_t sum = a + b;
    const auto out = simulate1(net, x);  // PIs: a0..a4 then b0..b4
    for (int i = 0; i < bits; ++i)
      ASSERT_EQ(out[static_cast<std::size_t>(i)], ((sum >> i) & 1) != 0)
          << "a=" << a << " b=" << b << " bit " << i;
    ASSERT_EQ(out[static_cast<std::size_t>(bits)], ((sum >> bits) & 1) != 0);
  }
}

TEST(Classics, ParityCounts) {
  Network net = make_parity(7);
  for (std::uint64_t x = 0; x < 128; ++x)
    EXPECT_EQ(simulate1(net, x)[0], (std::popcount(x) & 1) != 0);
}

TEST(Classics, MajorityVotes) {
  Network net = make_majority(5);
  for (std::uint64_t x = 0; x < 32; ++x)
    EXPECT_EQ(simulate1(net, x)[0], std::popcount(x) >= 3);
}

TEST(Classics, SymThresholdProfile) {
  Network net = make_sym_threshold(9, 3, 6);
  std::mt19937_64 rng(5);
  for (int iter = 0; iter < 200; ++iter) {
    const std::uint64_t x = rng() & 0x1FF;
    const int ones = std::popcount(x);
    EXPECT_EQ(simulate1(net, x)[0], ones >= 3 && ones <= 6);
  }
}

TEST(Classics, DecoderOneHot) {
  Network net = make_decoder(3);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const auto out = simulate1(net, x);
    for (std::uint64_t o = 0; o < 8; ++o)
      EXPECT_EQ(out[o], o == x);
  }
}

TEST(Classics, MuxSelects) {
  Network net = make_mux(2);  // PIs: s0 s1 d0..d3
  for (std::uint64_t x = 0; x < 64; ++x) {
    const std::uint64_t sel = x & 3;
    const bool expected = (x >> (2 + sel)) & 1;
    EXPECT_EQ(simulate1(net, x)[0], expected);
  }
}

TEST(Classics, ComparatorOrders) {
  const int bits = 4;
  Network net = make_comparator(bits);
  for (std::uint64_t x = 0; x < (1u << (2 * bits)); ++x) {
    const std::uint64_t a = x & 0xF, b = x >> bits;
    const auto out = simulate1(net, x);  // lt, eq, gt
    EXPECT_EQ(out[0], a < b);
    EXPECT_EQ(out[1], a == b);
    EXPECT_EQ(out[2], a > b);
  }
}

TEST(Classics, AluSliceOps) {
  const int bits = 3;
  Network net = make_alu_slice(bits);  // PIs: op0 op1 a0..a2 b0..b2
  for (std::uint64_t x = 0; x < (1u << (2 + 2 * bits)); ++x) {
    const bool op0 = x & 1, op1 = x & 2;
    const std::uint64_t a = (x >> 2) & 7, b = (x >> (2 + bits)) & 7;
    const auto out = simulate1(net, x);
    std::uint64_t expect = 0;
    if (!op1 && !op0) expect = a & b;
    else if (!op1 && op0) expect = a | b;
    else if (op1 && !op0) expect = a ^ b;
    else expect = (a + b) & 7;
    for (int i = 0; i < bits; ++i)
      ASSERT_EQ(out[static_cast<std::size_t>(i)], ((expect >> i) & 1) != 0)
          << "x=" << x;
  }
}

TEST(Classics, MultiplierMultiplies) {
  const int bits = 3;
  Network net = make_multiplier(bits);
  for (std::uint64_t x = 0; x < (1u << (2 * bits)); ++x) {
    const std::uint64_t a = x & 7, b = x >> bits;
    const std::uint64_t p = a * b;
    const auto out = simulate1(net, x);
    for (int i = 0; i < 2 * bits; ++i)
      ASSERT_EQ(out[static_cast<std::size_t>(i)], ((p >> i) & 1) != 0)
          << a << "*" << b << " bit " << i;
  }
}

TEST(Classics, Bcd7SegDigits) {
  Network net = make_bcd7seg();
  // Digit 8 lights every segment; digit 1 lights only b and c.
  const auto d8 = simulate1(net, 8);
  for (bool seg : d8) EXPECT_TRUE(seg);
  const auto d1 = simulate1(net, 1);
  EXPECT_FALSE(d1[0]);  // a
  EXPECT_TRUE(d1[1]);   // b
  EXPECT_TRUE(d1[2]);   // c
  EXPECT_FALSE(d1[6]);  // g
}

TEST(Classics, PriorityEncoderPicksLowestLine) {
  const int lines = 6;
  Network net = make_priority_encoder(lines);
  for (std::uint64_t x = 0; x < (1u << lines); ++x) {
    const auto out = simulate1(net, x);
    int expect = -1;
    for (int i = 0; i < lines; ++i)
      if ((x >> i) & 1) {
        expect = i;
        break;
      }
    const bool valid = out.back();
    EXPECT_EQ(valid, expect >= 0);
    if (expect >= 0) {
      int got = 0;
      for (std::size_t b = 0; b + 1 < out.size(); ++b)
        if (out[b]) got |= 1 << b;
      EXPECT_EQ(got, expect) << "x=" << x;
    }
  }
}

TEST(Synth, DeterministicForSameSpec) {
  SynthSpec spec;
  spec.seed = 42;
  Network a = make_synthetic(spec);
  Network b = make_synthetic(spec);
  EXPECT_EQ(a.factored_literals(), b.factored_literals());
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
}

TEST(Synth, DifferentSeedsDiffer) {
  SynthSpec s1, s2;
  s1.seed = 1;
  s2.seed = 2;
  EXPECT_NE(make_synthetic(s1).factored_literals(),
            make_synthetic(s2).factored_literals());
}

TEST(Synth, ProducesValidNonTrivialNetworks) {
  SynthSpec spec;
  spec.seed = 7;
  Network net = make_synthetic(spec);
  EXPECT_TRUE(net.check());
  EXPECT_GT(net.factored_literals(), 20);
  EXPECT_FALSE(net.pos().empty());
}

TEST(Suite, AllEntriesBuildAndCheck) {
  for (const BenchmarkEntry& e : benchmark_suite()) {
    Network net = e.build();
    EXPECT_TRUE(net.check()) << e.name;
    EXPECT_FALSE(net.pos().empty()) << e.name;
  }
}

TEST(Suite, LookupByName) {
  EXPECT_NO_THROW(build_benchmark("c17"));
  EXPECT_THROW(build_benchmark("nope"), std::out_of_range);
}

}  // namespace
}  // namespace rarsub
