#include "division/candidates.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "benchcir/suite.hpp"
#include "division/substitute.hpp"
#include "network/blif.hpp"
#include "network/complement_cache.hpp"
#include "network/network.hpp"
#include "opt/scripts.hpp"
#include "sop/sop.hpp"

namespace rarsub {
namespace {

// ---------------------------------------------------------------------
// Soundness: whatever the filter rejects must be genuinely worthless.
// Force-attempt every pruned pair through the unfiltered single-pair
// entry point and demand that none yields a positive gain. This is the
// property that makes pruning a pure optimization: a false kill here
// would silently change optimization results.

void check_filter_soundness(Network net, SubstMethod method) {
  SubstituteOptions opts;
  opts.method = method;
  ComplementCache comps;
  CandidateFilter filter(net, opts, &comps);

  const std::vector<NodeId> targets = net.topo_order();
  int pruned = 0;
  for (const NodeId f : targets) {
    filter.begin_target(f);
    for (const NodeId d : targets) {
      if (f == d) continue;
      const PairDecision dec = filter.check(f, d);
      if (dec.verdict != PairDecision::Verdict::PrunedSig &&
          dec.verdict != PairDecision::Verdict::PrunedCycle)
        continue;
      ++pruned;
      const auto gain = try_substitution(net, f, d, opts, /*commit=*/false);
      EXPECT_FALSE(gain && *gain > 0)
          << "filter pruned (" << net.node(f).name << ", " << net.node(d).name
          << ") [" << (dec.reason ? dec.reason : "?")
          << "] but a forced attempt gained " << *gain;
    }
  }
  // The filter must actually be doing something on a real circuit, or
  // this test is vacuous.
  EXPECT_GT(pruned, 0);
}

TEST(Candidates, PrunedPairsNeverHavePositiveGain_Basic) {
  Network net = build_benchmark("syn_c432");
  script_a(net);
  check_filter_soundness(std::move(net), SubstMethod::Basic);
}

TEST(Candidates, PrunedPairsNeverHavePositiveGain_Extended) {
  Network net = build_benchmark("syn_t481");
  script_a(net);
  check_filter_soundness(std::move(net), SubstMethod::Extended);
}

// ---------------------------------------------------------------------
// Prune equivalence: enable_prune toggles run time only. The optimized
// network must be byte-identical with the filter on and off, for every
// method.

TEST(Candidates, PruningDoesNotChangeTheResult) {
  for (const SubstMethod method :
       {SubstMethod::Basic, SubstMethod::Extended, SubstMethod::ExtendedGdc}) {
    Network pruned = build_benchmark("syn_c432");
    script_a(pruned);
    Network plain = pruned;

    SubstituteOptions opts;
    opts.method = method;
    opts.enable_prune = true;
    const SubstituteStats sp = substitute_network(pruned, opts);
    opts.enable_prune = false;
    const SubstituteStats so = substitute_network(plain, opts);

    EXPECT_EQ(write_blif_string(pruned), write_blif_string(plain))
        << "method " << static_cast<int>(method);
    EXPECT_EQ(sp.substitutions, so.substitutions);
    EXPECT_EQ(sp.pos_substitutions, so.pos_substitutions);
    EXPECT_EQ(sp.literals_after, so.literals_after);
    // And the filter must have skipped a meaningful share of the sweep.
    EXPECT_GT(sp.pairs_pruned_sig + sp.pairs_pruned_memo, 0);
    EXPECT_EQ(so.pairs_tried, 0);  // accounting is off with the filter
  }
}

// ---------------------------------------------------------------------
// Parallel determinism: best-gain evaluation with any --jobs value must
// produce the same network and the same stats as the serial sweep.

TEST(Candidates, ParallelBestGainIsDeterministic) {
  SubstituteOptions opts;
  opts.method = SubstMethod::Extended;
  opts.first_positive = false;  // jobs only matter in best-gain mode

  Network serial = build_benchmark("syn_c432");
  script_a(serial);
  Network threaded = serial;

  opts.jobs = 1;
  const SubstituteStats s1 = substitute_network(serial, opts);
  opts.jobs = 4;
  const SubstituteStats s4 = substitute_network(threaded, opts);

  EXPECT_EQ(write_blif_string(serial), write_blif_string(threaded));
  EXPECT_EQ(s1.substitutions, s4.substitutions);
  EXPECT_EQ(s1.pos_substitutions, s4.pos_substitutions);
  EXPECT_EQ(s1.decompositions, s4.decompositions);
  EXPECT_EQ(s1.literals_after, s4.literals_after);
  EXPECT_EQ(s1.pairs_tried, s4.pairs_tried);
  EXPECT_EQ(s1.pairs_pruned_sig, s4.pairs_pruned_sig);
  EXPECT_EQ(s1.pairs_pruned_memo, s4.pairs_pruned_memo);
}

// ---------------------------------------------------------------------
// Negative-pair memo: a failed pair is skipped while both endpoints are
// unchanged and revisited as soon as one of them mutates.

TEST(Candidates, MemoInvalidatesWhenAnEndpointChanges) {
  Network net("memo");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  // f contains the cube a·c, so SOS division by d = a·c is structurally
  // possible and the filter must classify the pair as Try.
  const NodeId f = net.add_node(
      "f", {a, b, c}, Sop::from_strings({"10-", "1-1", "-10", "-01"}));
  const NodeId d = net.add_node("d", {a, c}, Sop::from_strings({"11"}));
  net.add_po("f", f);
  net.add_po("d", d);

  SubstituteOptions opts;
  ComplementCache comps;
  CandidateFilter filter(net, opts, &comps);
  filter.begin_target(f);

  ASSERT_EQ(filter.check(f, d).verdict, PairDecision::Verdict::Try);
  filter.record_failure(f, d);
  EXPECT_EQ(filter.check(f, d).verdict, PairDecision::Verdict::PrunedMemo);
  EXPECT_EQ(filter.memo_size(), 1u);

  // Changing the divisor's function bumps its version: the memo entry no
  // longer applies.
  net.set_function(d, {a, b, c}, Sop::from_strings({"1-1", "-01"}));
  EXPECT_EQ(filter.check(f, d).verdict, PairDecision::Verdict::Try);
}

TEST(Candidates, GdcMemoInvalidatesOnAnyNetworkMutation) {
  Network net("memo_gdc");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId f = net.add_node(
      "f", {a, b, c}, Sop::from_strings({"10-", "1-1", "-10", "-01"}));
  const NodeId d = net.add_node("d", {a, c}, Sop::from_strings({"11"}));
  net.add_po("f", f);
  net.add_po("d", d);

  SubstituteOptions opts;
  opts.method = SubstMethod::ExtendedGdc;
  ComplementCache comps;
  CandidateFilter filter(net, opts, &comps);
  filter.begin_target(f);

  ASSERT_EQ(filter.check(f, d).verdict, PairDecision::Verdict::Try);
  filter.record_failure(f, d);
  EXPECT_EQ(filter.check(f, d).verdict, PairDecision::Verdict::PrunedMemo);

  // A mutation elsewhere in the circuit changes the global don't cares, so
  // the GDC outcome may change even though f and d did not.
  const NodeId g = net.add_node("g", {a, b}, Sop::from_strings({"11"}));
  net.add_po("g", g);
  EXPECT_EQ(filter.check(f, d).verdict, PairDecision::Verdict::Try);
}

// ---------------------------------------------------------------------
// The mutation counter underpinning the memo and the cached GDC base.

TEST(Candidates, NetworkMutationCounterTracksEveryChange) {
  Network net("mut");
  const std::uint64_t m0 = net.mutations();
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId f = net.add_node("f", {a, b}, Sop::from_strings({"11"}));
  // h has no fanouts and no PO ref: dead on arrival, sweep must kill it.
  net.add_node("h", {a, b}, Sop::from_strings({"1-", "-1"}));
  net.add_po("f", f);
  const std::uint64_t m1 = net.mutations();
  EXPECT_GT(m1, m0);

  net.set_function(f, {a, b}, Sop::from_strings({"11", "00"}));
  const std::uint64_t m2 = net.mutations();
  EXPECT_GT(m2, m1);

  net.sweep();
  EXPECT_GT(net.mutations(), m2);
}

// ---------------------------------------------------------------------
// The cheap guards stay live through the filter: pairs that attempt()'s
// own guards reject are passed through as Try, not silently eaten.

TEST(Candidates, CheapGuardRejectionsPassThrough) {
  Network net("guards");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId f = net.add_node("f", {a, b}, Sop::from_strings({"11", "0-"}));
  const NodeId d = net.add_node("d", {a, b}, Sop::from_strings({"1-", "-1"}));
  net.add_po("f", f);
  net.add_po("d", d);

  SubstituteOptions opts;
  opts.max_node_cubes = 1;  // attempt() would reject f for size
  ComplementCache comps;
  CandidateFilter filter(net, opts, &comps);
  filter.begin_target(f);
  EXPECT_EQ(filter.check(f, d).verdict, PairDecision::Verdict::Try);
}

}  // namespace
}  // namespace rarsub
