#include "sop/cube.hpp"

#include <gtest/gtest.h>

#include <random>

namespace rarsub {
namespace {

TEST(Cube, UniverseHasNoLiterals) {
  Cube c(5);
  EXPECT_EQ(c.num_literals(), 0);
  EXPECT_TRUE(c.is_universe());
  EXPECT_FALSE(c.is_empty());
}

TEST(Cube, FromStringRoundTrip) {
  const Cube c = Cube::from_string("10-1-");
  EXPECT_EQ(c.to_string(), "10-1-");
  EXPECT_EQ(c.num_literals(), 3);
  EXPECT_EQ(c.lit(0), Lit::Pos);
  EXPECT_EQ(c.lit(1), Lit::Neg);
  EXPECT_EQ(c.lit(2), Lit::Absent);
  EXPECT_EQ(c.lit(3), Lit::Pos);
}

TEST(Cube, SetLitOverwrites) {
  Cube c(3);
  c.set_lit(1, Lit::Pos);
  EXPECT_EQ(c.lit(1), Lit::Pos);
  c.set_lit(1, Lit::Neg);
  EXPECT_EQ(c.lit(1), Lit::Neg);
  c.set_lit(1, Lit::Absent);
  EXPECT_EQ(c.lit(1), Lit::Absent);
  EXPECT_TRUE(c.is_universe());
}

TEST(Cube, ContainmentMatchesPaperExamples) {
  // Paper Sec. III-A: cube ab contains cube abc'.
  const Cube ab = Cube::from_string("11-");
  const Cube abc_bar = Cube::from_string("110");
  EXPECT_TRUE(ab.contains(abc_bar));
  EXPECT_FALSE(abc_bar.contains(ab));
  EXPECT_TRUE(ab.contains(ab));
}

TEST(Cube, IntersectionAndDistance) {
  const Cube a = Cube::from_string("1-0");
  const Cube b = Cube::from_string("-10");
  const Cube i = a.intersect(b);
  EXPECT_EQ(i.to_string(), "110");
  EXPECT_EQ(a.distance(b), 0);

  const Cube c = Cube::from_string("0--");
  EXPECT_EQ(a.distance(c), 1);
  EXPECT_TRUE(a.intersect(c).is_empty());
}

TEST(Cube, ConsensusAtDistanceOne) {
  const Cube a = Cube::from_string("11-");
  const Cube b = Cube::from_string("0-1");
  ASSERT_EQ(a.distance(b), 1);
  EXPECT_EQ(a.consensus(b).to_string(), "-11");
}

TEST(Cube, SupercubeIsSmallestContaining) {
  const Cube a = Cube::from_string("110");
  const Cube b = Cube::from_string("100");
  const Cube s = a.supercube(b);
  EXPECT_EQ(s.to_string(), "1-0");
  EXPECT_TRUE(s.contains(a));
  EXPECT_TRUE(s.contains(b));
}

TEST(Cube, CofactorDropsOrEmpties) {
  const Cube a = Cube::from_string("10-");
  EXPECT_EQ(a.cofactor(0, true).to_string(), "-0-");
  EXPECT_TRUE(a.cofactor(0, false).is_empty());
  EXPECT_EQ(a.cofactor(2, true).to_string(), "10-");
}

TEST(Cube, AlgebraicLiteralOps) {
  const Cube abc = Cube::from_string("111");
  const Cube ab = Cube::from_string("11-");
  EXPECT_TRUE(abc.has_all_literals_of(ab));
  EXPECT_FALSE(ab.has_all_literals_of(abc));
  EXPECT_EQ(abc.remove_literals_of(ab).to_string(), "--1");

  const Cube a_bbar = Cube::from_string("10-");
  EXPECT_FALSE(a_bbar.has_all_literals_of(ab));  // polarity mismatch
}

TEST(Cube, SharesLiteral) {
  EXPECT_TRUE(Cube::from_string("1-0").shares_literal_with(Cube::from_string("1-1")));
  EXPECT_FALSE(Cube::from_string("1--").shares_literal_with(Cube::from_string("0--")));
  EXPECT_FALSE(Cube::from_string("1--").shares_literal_with(Cube::from_string("-1-")));
}

TEST(Cube, CommonLiterals) {
  const Cube a = Cube::from_string("110-");
  const Cube b = Cube::from_string("1-00");
  EXPECT_EQ(a.common_literals(b).to_string(), "1-0-");
}

TEST(Cube, EvalAgainstDefinition) {
  const Cube c = Cube::from_string("1-0");
  EXPECT_TRUE(c.eval(0b001));   // a=1, b=0, c=0
  EXPECT_TRUE(c.eval(0b011));   // a=1, b=1, c=0
  EXPECT_FALSE(c.eval(0b101));  // c=1 violates
  EXPECT_FALSE(c.eval(0b000));  // a=0 violates
}

TEST(Cube, WideCubesCrossWordBoundary) {
  // 70 variables spans three 64-bit words (32 vars per word).
  Cube c(70);
  c.set_lit(0, Lit::Pos);
  c.set_lit(31, Lit::Neg);
  c.set_lit(32, Lit::Pos);
  c.set_lit(69, Lit::Neg);
  EXPECT_EQ(c.num_literals(), 4);
  EXPECT_EQ(c.lit(31), Lit::Neg);
  EXPECT_EQ(c.lit(32), Lit::Pos);
  EXPECT_EQ(c.lit(69), Lit::Neg);
  EXPECT_FALSE(c.is_empty());
  EXPECT_FALSE(c.is_universe());
  Cube u(70);
  EXPECT_TRUE(u.contains(c));
  EXPECT_FALSE(c.contains(u));
}

// Property: containment agrees with minterm-set containment on random cubes.
TEST(CubeProperty, ContainmentMatchesSemantics) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> pick(0, 2);
  const int n = 6;
  for (int iter = 0; iter < 300; ++iter) {
    Cube a(n), b(n);
    for (int v = 0; v < n; ++v) {
      a.set_lit(v, static_cast<Lit>(pick(rng)));
      b.set_lit(v, static_cast<Lit>(pick(rng)));
    }
    bool semantic = true;
    for (std::uint64_t m = 0; m < (1u << n); ++m)
      if (b.eval(m) && !a.eval(m)) {
        semantic = false;
        break;
      }
    EXPECT_EQ(a.contains(b), semantic) << a.to_string() << " vs " << b.to_string();
  }
}

// Property: intersection semantics.
TEST(CubeProperty, IntersectionMatchesSemantics) {
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> pick(0, 2);
  const int n = 5;
  for (int iter = 0; iter < 300; ++iter) {
    Cube a(n), b(n);
    for (int v = 0; v < n; ++v) {
      a.set_lit(v, static_cast<Lit>(pick(rng)));
      b.set_lit(v, static_cast<Lit>(pick(rng)));
    }
    const Cube i = a.intersect(b);
    for (std::uint64_t m = 0; m < (1u << n); ++m)
      EXPECT_EQ(i.eval(m), a.eval(m) && b.eval(m));
  }
}

}  // namespace
}  // namespace rarsub
