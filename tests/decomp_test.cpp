#include "opt/decomp.hpp"

#include <gtest/gtest.h>

#include "benchcir/classics.hpp"
#include "network/eqn.hpp"
#include "verify/equivalence.hpp"

namespace rarsub {
namespace {

TEST(Decomp, SplitsKernelableNode) {
  // f = ae + af + be + bf + g: kernel (e+f) or (a+b) gets its own node.
  Network net("d");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId e = net.add_pi("e");
  const NodeId f = net.add_pi("f");
  const NodeId g = net.add_pi("g");
  const NodeId n = net.add_node(
      "n", {a, b, e, f, g},
      Sop::from_strings({"1-1--", "1--1-", "-11--", "-1-1-", "----1"}));
  net.add_po("n", n);
  const Network before = net;
  const DecompStats st = decomp_network(net);
  EXPECT_GE(st.nodes_created, 1);
  EXPECT_TRUE(net.check());
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
  // The root shrank; total factored literals never grow under decomp by
  // more than bookkeeping noise.
  EXPECT_LE(st.literals_after, st.literals_before + 2);
}

TEST(Decomp, LeavesSmallNodesAlone) {
  Network net("s");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId n = net.add_node("n", {a, b}, Sop::from_strings({"11", "00"}));
  net.add_po("n", n);
  const DecompStats st = decomp_network(net);
  EXPECT_EQ(st.nodes_created, 0);
}

TEST(Decomp, BenchmarkCircuitSound) {
  Network net = make_sym_threshold(9, 3, 6);
  const Network before = net;
  const DecompStats st = decomp_network(net);
  EXPECT_GE(st.nodes_created, 1);
  EXPECT_TRUE(net.check());
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
}

TEST(Eqn, WriterProducesReadableEquations) {
  Network net("e");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId g =
      net.add_node("g", {a, b, c}, Sop::from_strings({"11-", "--0"}));
  net.add_po("out", g);
  const std::string s = write_eqn_string(net);
  EXPECT_NE(s.find("INORDER = a b c;"), std::string::npos);
  EXPECT_NE(s.find("OUTORDER = out;"), std::string::npos);
  EXPECT_NE(s.find("g = "), std::string::npos);
  EXPECT_NE(s.find("out = g;"), std::string::npos);
  EXPECT_NE(s.find("c'"), std::string::npos);
}

}  // namespace
}  // namespace rarsub
