#include "division/division.hpp"

#include <gtest/gtest.h>

#include "division/clique.hpp"
#include "test_util.hpp"

namespace rarsub {
namespace {

using testutil::random_sop;
using testutil::same_function;

// f == q·d + r must hold after any Boolean division.
void expect_reconstruction(const Sop& f, const Sop& d, const Sop& q,
                           const Sop& r) {
  const Sop rebuilt = q.boolean_and(d).boolean_or(r);
  EXPECT_TRUE(same_function(rebuilt, f))
      << "f=" << f.to_string() << "\nd=" << d.to_string()
      << "\nq=" << q.to_string() << "\nr=" << r.to_string();
}

// ---------------------------------------------------------------------
// Paper Sec. I intro example. With f = ab' + ac + bc' + b'c (6 literals in
// factored form) and divisor d = ab + b'c + ac (any cover of the right
// function), Boolean division can reach a 4-literal result while algebraic
// division cannot. We check our division finds a strictly better-than-
// algebraic rewrite: f = q·d + r with small q, r.
TEST(BasicDivision, BooleanBeatsAlgebraicShape) {
  // f = a'b + ab' + bc (vars a,b,c), d = a'b + ab' (XOR-like divisor).
  // No algebraic quotient exists beyond trivial; Boolean division gives
  // f = d·(a'+b'+...) forms. At minimum the reconstruction must hold and
  // the quotient must be non-trivial.
  const Sop f = Sop::from_strings({"01-", "10-", "-11"});
  const Sop d = Sop::from_strings({"01-", "10-"});
  const DivisionResult res = basic_boolean_divide(f, d);
  ASSERT_TRUE(res.success);
  expect_reconstruction(f, d, res.quotient, res.remainder);
}

TEST(BasicDivision, Fig2Walkthrough) {
  // Fig. 2 structure: f has cubes contained by divisor cubes plus one
  // remainder cube; division keeps the remainder intact and shrinks the
  // contained cubes to a quotient.
  // f = abc + abd' + a'bc + e ; d = ab + a'c... use d = ab + bc.
  const Sop f = Sop::from_strings({"111--", "110--", "-11--", "----1"});
  const Sop d = Sop::from_strings({"11---", "-11--"});
  const DivisionResult res = basic_boolean_divide(f, d);
  ASSERT_TRUE(res.success);
  // Remainder = the e cube only (not contained by any divisor cube).
  EXPECT_TRUE(same_function(res.remainder, Sop::from_strings({"----1"})));
  expect_reconstruction(f, d, res.quotient, res.remainder);
  // The quotient must be cheaper than the region it replaced.
  const Sop region = Sop::from_strings({"111--", "110--", "-11--"});
  EXPECT_LT(res.quotient.num_literals(), region.num_literals());
}

TEST(BasicDivision, QuotientOneWhenDividendContainsDivisor) {
  // f = ab + cd + e, d = ab + cd: q should collapse to 1 (f = d + e).
  const Sop f = Sop::from_strings({"11---", "--11-", "----1"});
  const Sop d = Sop::from_strings({"11---", "--11-"});
  const DivisionResult res = basic_boolean_divide(f, d);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(res.quotient.is_tautology());
  expect_reconstruction(f, d, res.quotient, res.remainder);
}

TEST(BasicDivision, FailsWhenNoCubeContained) {
  // Paper Sec. I: dividing by a divisor on disjoint variables gives
  // quotient zero under basic division.
  const Sop f = Sop::from_strings({"11---"});
  const Sop d = Sop::from_strings({"---11"});
  const DivisionResult res = basic_boolean_divide(f, d);
  EXPECT_FALSE(res.success);
  EXPECT_TRUE(same_function(res.remainder, f));
}

TEST(BasicDivision, EmptyDivisor) {
  const Sop f = Sop::from_strings({"11"});
  const DivisionResult res = basic_boolean_divide(f, Sop::zero(2));
  EXPECT_FALSE(res.success);
}

TEST(BasicDivision, UsesBooleanIdentities) {
  // f = ab, d = a: q = b (algebraic too). But f = a, d = a + b:
  // remainder split puts cube a in F' (contained by cube a); the quotient
  // may keep literal a. Reconstruction is what matters.
  const Sop f = Sop::from_strings({"1-"});
  const Sop d = Sop::from_strings({"1-", "-1"});
  const DivisionResult res = basic_boolean_divide(f, d);
  ASSERT_TRUE(res.success);
  expect_reconstruction(f, d, res.quotient, res.remainder);
}

struct DivParam {
  int seed;
  int vars;
  int fcubes;
  int dcubes;
  double density;
};

class BasicDivisionProperty : public ::testing::TestWithParam<DivParam> {};

TEST_P(BasicDivisionProperty, ReconstructionOnRandomPairs) {
  const DivParam p = GetParam();
  std::mt19937 rng(static_cast<unsigned>(p.seed));
  int successes = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const Sop f = random_sop(rng, p.vars, p.fcubes, p.density);
    Sop d = random_sop(rng, p.vars, p.dcubes, p.density * 0.7);
    if (f.num_cubes() == 0 || d.num_cubes() == 0) continue;
    const DivisionResult res = basic_boolean_divide(f, d);
    if (!res.success) continue;
    ++successes;
    expect_reconstruction(f, d, res.quotient, res.remainder);
    // The rewrite never uses more literals in the region than F' had.
    EXPECT_LE(res.quotient.num_literals() + res.remainder.num_literals(),
              f.num_literals());
  }
  EXPECT_GT(successes, 0);
}

TEST_P(BasicDivisionProperty, DeeperLearningStillSound) {
  const DivParam p = GetParam();
  std::mt19937 rng(static_cast<unsigned>(p.seed) + 77);
  DivisionOptions opts;
  opts.learning_depth = 1;
  for (int iter = 0; iter < 25; ++iter) {
    const Sop f = random_sop(rng, p.vars, p.fcubes, p.density);
    Sop d = random_sop(rng, p.vars, p.dcubes, p.density * 0.7);
    if (f.num_cubes() == 0 || d.num_cubes() == 0) continue;
    const DivisionResult res = basic_boolean_divide(f, d, opts);
    if (!res.success) continue;
    expect_reconstruction(f, d, res.quotient, res.remainder);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BasicDivisionProperty,
    ::testing::Values(DivParam{1, 4, 4, 2, 0.6}, DivParam{2, 5, 6, 3, 0.5},
                      DivParam{3, 6, 8, 3, 0.45}, DivParam{4, 6, 5, 4, 0.4},
                      DivParam{5, 7, 8, 4, 0.35}));

// ---------------------------------------------------------------------
// Vote table (paper Table I shape).

TEST(VoteTable, WiresVoteForCubesTheyWouldZero) {
  // f = abc, d = ab + cd. Wire a (in cube abc): activation a=0, b=c=1.
  // Divisor cube ab gets value 0 (a=0); cube cd stays unknown (d free).
  const Sop f = Sop::from_strings({"111-"});
  const Sop d = Sop::from_strings({"11--", "--11"});
  const auto table = vote_table(f, d);
  ASSERT_EQ(table.size(), 3u);
  // Entry for var 0 (a).
  const VoteEntry& ea = table[0];
  EXPECT_EQ(ea.var, 0);
  EXPECT_EQ(ea.candidates, (std::vector<int>{0}));
  EXPECT_TRUE(ea.valid);  // cube ab contains abc
  // Entry for var 2 (c): zeroes cube cd only; cd does not contain abc.
  const VoteEntry& ec = table[2];
  EXPECT_EQ(ec.var, 2);
  EXPECT_EQ(ec.candidates, (std::vector<int>{1}));
  EXPECT_FALSE(ec.valid);
}

TEST(VoteTable, EmptyWhenNoDivisorCubeZeroed) {
  // Divisor over disjoint variables never implies to zero.
  const Sop f = Sop::from_strings({"11--"});
  const Sop d = Sop::from_strings({"--1-", "---1"});
  const auto table = vote_table(f, d);
  for (const VoteEntry& e : table) {
    EXPECT_TRUE(e.candidates.empty());
    EXPECT_FALSE(e.valid);
  }
}

// ---------------------------------------------------------------------
// Extended division.

TEST(ExtendedDivision, CoreDivisorExposesEmbeddedSubexpression) {
  // Paper Sec. I/IV motivating scenario: divisor g = ab + cd + e-cube has
  // a useful part (ab + cd) for dividend f = abx + cdx; extended division
  // should pick the core {ab, cd} and not give up like basic-with-zero-
  // quotient.
  const Sop f = Sop::from_strings({"11--1-", "--111-"});       // abx + cdx
  const Sop d = Sop::from_strings({"11----", "--11--", "-----1"});  // ab+cd+y
  const ExtendedResult res = extended_boolean_divide(f, d);
  ASSERT_TRUE(res.success);
  // Wires of abx vote {ab}, wires of cdx vote {cd}: the vote sets do not
  // intersect, so the clique picks one group and the chosen core must be a
  // proper subset that excludes the useless y cube (index 2).
  EXPECT_LT(res.core_cubes.size(), 3u);
  for (int k : res.core_cubes) EXPECT_NE(k, 2);
  // f == q·core + r.
  Sop core(6);
  for (int k : res.core_cubes) core.add_cube(d.cube(k));
  expect_reconstruction(f, core, res.quotient, res.remainder);
  // The quotient isolates x: exactly one literal.
  EXPECT_EQ(res.quotient.num_literals(), 1);
  EXPECT_LE(res.remainder.num_cubes(), 1);
}

TEST(ExtendedDivision, DegeneratesToBasicWhenWholeDivisorUseful) {
  const Sop f = Sop::from_strings({"111--", "110--", "-11--", "----1"});
  const Sop d = Sop::from_strings({"11---", "-11--"});
  const ExtendedResult res = extended_boolean_divide(f, d);
  ASSERT_TRUE(res.success);
  Sop core(5);
  for (int k : res.core_cubes) core.add_cube(d.cube(k));
  expect_reconstruction(f, core, res.quotient, res.remainder);
}

TEST(ExtendedDivisionProperty, ReconstructionAgainstCore) {
  std::mt19937 rng(211);
  int successes = 0;
  for (int iter = 0; iter < 80; ++iter) {
    const Sop f = random_sop(rng, 6, 5, 0.5);
    Sop d = random_sop(rng, 6, 4, 0.35);
    if (f.num_cubes() == 0 || d.num_cubes() == 0) continue;
    const ExtendedResult res = extended_boolean_divide(f, d);
    if (!res.success) continue;
    ++successes;
    Sop core(6);
    for (int k : res.core_cubes) {
      ASSERT_LT(k, d.num_cubes());
      core.add_cube(d.cube(k));
    }
    expect_reconstruction(f, core, res.quotient, res.remainder);
  }
  EXPECT_GT(successes, 0);
}

// ---------------------------------------------------------------------
// Max clique.

TEST(Clique, Triangle) {
  std::vector<std::vector<bool>> adj{{0, 1, 1, 0},
                                     {1, 0, 1, 0},
                                     {1, 1, 0, 0},
                                     {0, 0, 0, 0}};
  EXPECT_EQ(max_clique(adj), (std::vector<int>{0, 1, 2}));
}

TEST(Clique, EmptyAndSingleton) {
  EXPECT_TRUE(max_clique({}).empty());
  std::vector<std::vector<bool>> one{{false}};
  EXPECT_EQ(max_clique(one), (std::vector<int>{0}));
}

TEST(Clique, GreedyFallbackFindsAClique) {
  // 70 vertices: exact limit (64) exceeded, greedy path.
  const int n = 70;
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  // Clique on vertices 0..9.
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 10; ++j)
      if (i != j) adj[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
  const auto c = max_clique(adj);
  EXPECT_GE(c.size(), 9u);
  for (std::size_t i = 0; i < c.size(); ++i)
    for (std::size_t j = i + 1; j < c.size(); ++j)
      EXPECT_TRUE(adj[static_cast<std::size_t>(c[i])][static_cast<std::size_t>(c[j])]);
}

TEST(CliqueProperty, ExactMatchesBruteForceOnSmallGraphs) {
  std::mt19937 rng(311);
  for (int iter = 0; iter < 60; ++iter) {
    const int n = 8;
    std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng() % 3 == 0) adj[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            adj[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = true;
    // Brute force maximum clique size.
    int best = 0;
    for (int mask = 0; mask < (1 << n); ++mask) {
      bool ok = true;
      for (int i = 0; i < n && ok; ++i)
        for (int j = i + 1; j < n && ok; ++j)
          if ((mask >> i & 1) && (mask >> j & 1) &&
              !adj[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)])
            ok = false;
      if (ok) best = std::max(best, std::popcount(static_cast<unsigned>(mask)));
    }
    const auto c = max_clique(adj);
    EXPECT_EQ(static_cast<int>(c.size()), best);
    for (std::size_t i = 0; i < c.size(); ++i)
      for (std::size_t j = i + 1; j < c.size(); ++j)
        EXPECT_TRUE(adj[static_cast<std::size_t>(c[i])][static_cast<std::size_t>(c[j])]);
  }
}

}  // namespace
}  // namespace rarsub
