#include "sop/espresso.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rarsub {
namespace {

using testutil::random_sop;
using testutil::truth_table;

TEST(Espresso, MergesAdjacentCubes) {
  // ab + ab' == a.
  const Sop f = Sop::from_strings({"11", "10"});
  const Sop m = simplify_cover(f);
  EXPECT_EQ(m.num_cubes(), 1);
  EXPECT_EQ(m.num_literals(), 1);
}

TEST(Espresso, ClassicXorStaysTwoCubes) {
  const Sop f = Sop::from_strings({"10", "01"});
  const Sop m = simplify_cover(f);
  EXPECT_EQ(m.num_cubes(), 2);
  EXPECT_EQ(m.num_literals(), 4);
}

TEST(Espresso, RemovesRedundantConsensusCube) {
  // ab + a'c + bc: the bc cube is redundant.
  const Sop f = Sop::from_strings({"11-", "0-1", "-11"});
  const Sop m = simplify_cover(f);
  EXPECT_EQ(m.num_cubes(), 2);
  EXPECT_TRUE(testutil::same_function(m, f));
}

TEST(Espresso, UsesDontCaresForBooleanDivisionSetup) {
  // The paper's Sec. I Espresso trick: minimizing f with dc can shrink the
  // cover below what the on-set alone allows.
  const Sop on = Sop::from_strings({"110", "011"});
  const Sop dc = Sop::from_strings({"111"});
  const Sop m = espresso_lite(on, dc);
  EXPECT_LE(m.num_literals(), 4);
  // Result covers on-set and stays inside on|dc.
  const auto t_on = truth_table(on);
  const auto t_dc = truth_table(dc);
  const auto t_m = truth_table(m);
  for (std::size_t i = 0; i < t_on.size(); ++i) {
    if (t_on[i]) {
      EXPECT_TRUE(t_m[i]);
    }
    if (t_m[i]) {
      EXPECT_TRUE(t_on[i] || t_dc[i]);
    }
  }
}

TEST(Espresso, ConstantResults) {
  EXPECT_TRUE(simplify_cover(Sop::zero(3)).is_zero());
  EXPECT_TRUE(simplify_cover(Sop::one(3)).is_tautology());
  // Covering tautology in pieces collapses to the universe cube.
  const Sop f = Sop::from_strings({"1-", "0-"});
  const Sop m = simplify_cover(f);
  EXPECT_EQ(m.num_literals(), 0);
}

TEST(Espresso, TautologyViaDontCares) {
  const Sop on = Sop::from_strings({"1-"});
  const Sop dc = Sop::from_strings({"0-"});
  EXPECT_TRUE(espresso_lite(on, dc).is_tautology());
}

TEST(Espresso, ExpandProducesContainedPrimes) {
  const Sop f = Sop::from_strings({"110", "111"});
  const Sop fun = f;  // no dc
  const Sop e = espresso_expand(f, fun);
  for (const Cube& c : e.cubes()) EXPECT_TRUE(fun.contains_cube(c));
  EXPECT_TRUE(testutil::same_function(e, f));
}

TEST(Espresso, IrredundantKeepsFunction) {
  const Sop f = Sop::from_strings({"11-", "0-1", "-11"});
  const Sop r = espresso_irredundant(f, Sop::zero(3));
  EXPECT_TRUE(testutil::same_function(r, f));
  EXPECT_LT(r.num_cubes(), f.num_cubes());
}

struct EspressoParam {
  int seed;
  int vars;
  int cubes;
  double density;
};

class EspressoProperty : public ::testing::TestWithParam<EspressoParam> {};

TEST_P(EspressoProperty, PreservesFunctionAndNeverGrows) {
  const EspressoParam p = GetParam();
  std::mt19937 rng(static_cast<unsigned>(p.seed));
  for (int iter = 0; iter < 30; ++iter) {
    const Sop f = random_sop(rng, p.vars, p.cubes, p.density);
    const Sop m = simplify_cover(f);
    EXPECT_EQ(truth_table(m), truth_table(f)) << f.to_string();
    EXPECT_LE(m.num_literals(), std::max(f.num_literals(), 1));
  }
}

TEST_P(EspressoProperty, RespectsDontCares) {
  const EspressoParam p = GetParam();
  std::mt19937 rng(static_cast<unsigned>(p.seed) + 1000);
  for (int iter = 0; iter < 20; ++iter) {
    const Sop on = random_sop(rng, p.vars, p.cubes, p.density);
    const Sop dc = random_sop(rng, p.vars, 2, p.density);
    const Sop m = espresso_lite(on, dc);
    const auto t_on = truth_table(on);
    const auto t_dc = truth_table(dc);
    const auto t_m = truth_table(m);
    for (std::size_t i = 0; i < t_on.size(); ++i) {
      if (t_on[i] && !t_dc[i]) {
        EXPECT_TRUE(t_m[i]) << "lost on-set minterm";
      }
      if (t_m[i]) {
        EXPECT_TRUE(t_on[i] || t_dc[i]) << "grew beyond on|dc";
      }
    }
  }
}

TEST(Espresso, ReduceRegressionJointlyCoveredMinterm) {
  // Regression: two cubes jointly covering an on-set minterm must not both
  // retreat from it during REDUCE (found via the espresso-DC division
  // baseline; on and dc overlap here).
  const Sop on = Sop::from_strings({"0-----", "1101--", "-10-0-", "10----"});
  const Sop dc =
      Sop::from_strings({"01---1", "10---1", "11---0", "00---0"});
  const Sop m = espresso_lite(on, dc);
  const auto t_on = truth_table(on);
  const auto t_dc = truth_table(dc);
  const auto t_m = truth_table(m);
  for (std::size_t i = 0; i < t_on.size(); ++i) {
    if (t_on[i] && !t_dc[i]) {
      EXPECT_TRUE(t_m[i]) << "lost minterm " << i;
    }
    if (t_m[i]) {
      EXPECT_TRUE(t_on[i] || t_dc[i]);
    }
  }
}

TEST(Espresso, ReduceAloneKeepsCoverage) {
  std::mt19937 rng(401);
  for (int iter = 0; iter < 120; ++iter) {
    const Sop on = random_sop(rng, 6, 5, 0.4);
    const Sop dc = random_sop(rng, 6, 3, 0.4);  // may overlap the on-set
    const Sop r = espresso_reduce(on, dc);
    const auto t_on = truth_table(on);
    const auto t_dc = truth_table(dc);
    const auto t_r = truth_table(r);
    for (std::size_t i = 0; i < t_on.size(); ++i)
      if (t_on[i] && !t_dc[i]) {
        ASSERT_TRUE(t_r[i]) << "reduce lost minterm " << i;
      }
  }
}

TEST_P(EspressoProperty, RespectsOverlappingDontCares) {
  // on and dc intentionally overlap — the configuration the Boolean
  // division baselines produce.
  const EspressoParam p = GetParam();
  std::mt19937 rng(static_cast<unsigned>(p.seed) + 2000);
  for (int iter = 0; iter < 25; ++iter) {
    const Sop on = random_sop(rng, p.vars, p.cubes, p.density);
    Sop dc = random_sop(rng, p.vars, 3, p.density);
    if (on.num_cubes() > 0) dc.add_cube(on.cube(0));  // force overlap
    const Sop m = espresso_lite(on, dc);
    const auto t_on = truth_table(on);
    const auto t_dc = truth_table(dc);
    const auto t_m = truth_table(m);
    for (std::size_t i = 0; i < t_on.size(); ++i) {
      if (t_on[i] && !t_dc[i]) {
        ASSERT_TRUE(t_m[i]) << "lost on-set minterm " << i;
      }
      if (t_m[i]) {
        ASSERT_TRUE(t_on[i] || t_dc[i]) << "grew beyond on|dc";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EspressoProperty,
    ::testing::Values(EspressoParam{1, 4, 4, 0.5}, EspressoParam{2, 5, 6, 0.4},
                      EspressoParam{3, 6, 8, 0.35}, EspressoParam{4, 6, 3, 0.6},
                      EspressoParam{5, 7, 10, 0.3},
                      EspressoParam{6, 5, 12, 0.5}));

}  // namespace
}  // namespace rarsub
