#include "sop/factor.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rarsub {
namespace {

using testutil::random_sop;

// Evaluate a factor tree on a complete assignment; ground truth for the
// "factoring preserves the function" property.
bool eval_factor(const FactorNode& n, std::uint64_t a) {
  switch (n.kind) {
    case FactorNode::Kind::Const0: return false;
    case FactorNode::Kind::Const1: return true;
    case FactorNode::Kind::Literal: {
      const bool v = (a >> n.var) & 1;
      return n.positive ? v : !v;
    }
    case FactorNode::Kind::And:
      for (const auto& c : n.children)
        if (!eval_factor(*c, a)) return false;
      return true;
    case FactorNode::Kind::Or:
      for (const auto& c : n.children)
        if (eval_factor(*c, a)) return true;
      return false;
  }
  return false;
}

TEST(Factor, SingleCube) {
  const Sop f = Sop::from_strings({"110"});
  EXPECT_EQ(factored_literal_count(f), 3);
}

TEST(Factor, ConstantCovers) {
  EXPECT_EQ(factored_literal_count(Sop::zero(3)), 0);
  EXPECT_EQ(factored_literal_count(Sop::one(3)), 0);
}

TEST(Factor, PaperIntroSixLiteralExample) {
  // Paper Sec. I: "function f has six literals before substitution" —
  // a function like f = ac + bc + ad' + bd' factors to (a+b)(c+d') = 4 lits;
  // its flat form has 8. Quick factor must do no worse than 6.
  const Sop f = Sop::from_strings({"1-1-", "-11-", "1--0", "-1-0"});
  EXPECT_EQ(f.num_literals(), 8);
  EXPECT_LE(factored_literal_count(f), 6);
  EXPECT_GE(factored_literal_count(f), 4);
}

TEST(Factor, CommonCubeIsShared) {
  // ab c + ab d = ab(c+d): 4 literals factored, 6 flat.
  const Sop f = Sop::from_strings({"111-", "11-1"});
  EXPECT_EQ(f.num_literals(), 6);
  EXPECT_EQ(factored_literal_count(f), 4);
}

TEST(Factor, KernelIsShared) {
  // ac + ad + bc + bd = (a+b)(c+d): 4 literals factored, 8 flat.
  const Sop f = Sop::from_strings({"1-1-", "1--1", "-11-", "-1-1"});
  EXPECT_EQ(factored_literal_count(f), 4);
}

TEST(Factor, ToStringRendersTree) {
  const Sop f = Sop::from_strings({"111-", "11-1"});
  const auto tree = quick_factor(f);
  const std::string s = factor_to_string(*tree, {"a", "b", "c", "d"});
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
}

class FactorProperty : public ::testing::TestWithParam<int> {};

TEST_P(FactorProperty, TreeMatchesCoverAndNeverBeatenByFlat) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int iter = 0; iter < 60; ++iter) {
    const Sop f = random_sop(rng, 6, 6, 0.45);
    const auto tree = quick_factor(f);
    for (std::uint64_t a = 0; a < (1u << 6); ++a)
      ASSERT_EQ(eval_factor(*tree, a), f.eval(a)) << f.to_string();
    EXPECT_LE(tree->literal_count(), std::max(1, f.num_literals()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactorProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace rarsub
