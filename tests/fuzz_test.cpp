// Tests for the differential fuzzing harness: generator determinism and
// shape coverage, the delta-debugging shrinker, the paranoid per-commit
// self-verification, and the end-to-end catch → shrink → persist → replay
// loop on a planted bug.

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <stdexcept>

#include "division/substitute.hpp"
#include "fuzz/driver.hpp"
#include "fuzz/gen.hpp"
#include "fuzz/shrink.hpp"
#include "network/blif.hpp"
#include "verify/equivalence.hpp"

namespace rarsub {
namespace {

using fuzz::FuzzConfig;
using fuzz::FuzzOptions;
using fuzz::FuzzReport;
using fuzz::GenOptions;

TEST(FuzzGen, DeterministicForFixedSeed) {
  for (std::uint64_t seed : {1ULL, 42ULL, 977ULL}) {
    std::mt19937_64 r1(seed), r2(seed);
    const Network a = fuzz::random_network(r1);
    const Network b = fuzz::random_network(r2);
    EXPECT_EQ(write_blif_string(a), write_blif_string(b)) << "seed " << seed;
    const SubstituteOptions oa = fuzz::random_substitute_options(r1);
    const SubstituteOptions ob = fuzz::random_substitute_options(r2);
    EXPECT_EQ(oa.method, ob.method);
    EXPECT_EQ(oa.try_pos, ob.try_pos);
    EXPECT_EQ(oa.first_positive, ob.first_positive);
    EXPECT_EQ(oa.max_passes, ob.max_passes);
  }
  std::mt19937_64 r1(5), r2(6);
  EXPECT_NE(write_blif_string(fuzz::random_network(r1)),
            write_blif_string(fuzz::random_network(r2)));
}

TEST(FuzzGen, ProducesValidAndDiverseNetworks) {
  bool saw_const = false, saw_single_lit = false, saw_dead = false;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    std::mt19937_64 rng(seed);
    const Network net = fuzz::random_network(rng);
    ASSERT_TRUE(net.check()) << "seed " << seed;
    EXPECT_FALSE(net.pos().empty());
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      const Node& nd = net.node(id);
      if (!nd.alive || nd.is_pi) continue;
      if (nd.fanins.empty()) saw_const = true;
      if (nd.fanins.size() == 1 && nd.func.num_cubes() == 1)
        saw_single_lit = true;
      if (net.fanout_refs(id) == 0) saw_dead = true;
    }
  }
  EXPECT_TRUE(saw_const);
  EXPECT_TRUE(saw_single_lit);
  EXPECT_TRUE(saw_dead);
}

TEST(FuzzShrink, CompactDropsUnreachableStructure) {
  Network net("t");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  net.add_pi("dangling");
  const NodeId g = net.add_node("g", {a, b}, Sop::from_strings({"11"}));
  net.add_node("dead", {a, b}, Sop::from_strings({"10"}));
  net.add_po("z", g);
  const Network out = fuzz::compact_network(net);
  EXPECT_TRUE(out.check());
  EXPECT_EQ(out.find_node("dead"), kNoNode);
  EXPECT_EQ(out.find_node("dangling"), kNoNode);
  EXPECT_NE(out.find_node("g"), kNoNode);
  const EquivalenceResult eq = check_equivalence(net, out);
  EXPECT_TRUE(eq.equivalent) << eq.message;
}

TEST(FuzzShrink, MinimizesWhilePreservingPredicate) {
  // Predicate: the network still computes a&b on PO "z" for input 11...;
  // the shrinker must keep that behavior while deleting everything else.
  std::mt19937_64 rng(11);
  GenOptions gen;
  gen.min_pis = 4;
  gen.max_pis = 6;
  Network net = fuzz::random_network(rng, gen);
  // Make the predicate about structure: at least one node with >= 2 cubes.
  auto pred = [](const Network& n) {
    for (NodeId id = 0; id < n.num_nodes(); ++id) {
      const Node& nd = n.node(id);
      if (nd.alive && !nd.is_pi && nd.func.num_cubes() >= 2) return true;
    }
    return false;
  };
  if (!pred(net)) GTEST_SKIP() << "generator produced no multi-cube node";
  fuzz::ShrinkStats stats;
  const Network small = fuzz::shrink_network(net, pred, {}, &stats);
  EXPECT_TRUE(small.check());
  EXPECT_TRUE(pred(small));
  EXPECT_LE(stats.nodes_after, stats.nodes_before);
  // The minimal witness is one 2-cube node (plus whatever drives a PO).
  EXPECT_LE(stats.nodes_after, 3);
}

/// A small network where Boolean substitution finds a division with a
/// non-trivial remainder: f = ab + cd + e, d = ab + cd → f = y + e with
/// remainder e. Skipping the remainder re-attach miscompiles it.
Network remainder_case() {
  Network net("rem");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId d = net.add_pi("d");
  const NodeId e = net.add_pi("e");
  const NodeId dv = net.add_node("dv", {a, b, c, d},
                                 Sop::from_strings({"11--", "--11"}));
  const NodeId f = net.add_node("f", {a, b, c, d, e},
                                Sop::from_strings({"11---", "--11-", "----1"}));
  net.add_po("zf", f);
  net.add_po("zd", dv);
  return net;
}

TEST(FuzzVerify, CommitVerifierCatchesCorruptedCommit) {
  Network net = remainder_case();
  SubstituteOptions opts;
  opts.method = SubstMethod::Basic;
  opts.verify_commits = true;
  opts.inject_skip_remainder = true;
  EXPECT_THROW(substitute_network(net, opts), std::runtime_error);
}

TEST(FuzzVerify, CleanRunPassesUnderVerify) {
  Network net = remainder_case();
  const Network original = net;
  SubstituteOptions opts;
  opts.method = SubstMethod::Basic;
  opts.verify_commits = true;
  const SubstituteStats st = substitute_network(net, opts);
  EXPECT_GE(st.substitutions, 1);
  const EquivalenceResult eq = check_equivalence(original, net);
  EXPECT_TRUE(eq.equivalent) << eq.message;
}

TEST(FuzzVerify, InjectionAloneBreaksEquivalence) {
  Network net = remainder_case();
  const Network original = net;
  SubstituteOptions opts;
  opts.method = SubstMethod::Basic;
  opts.inject_skip_remainder = true;
  substitute_network(net, opts);
  const EquivalenceResult eq = check_equivalence(original, net);
  EXPECT_FALSE(eq.equivalent);
}

TEST(FuzzVerify, DanglingPiToleratedDrivenPiReported) {
  Network x("x");
  const NodeId a = x.add_pi("a");
  x.add_pi("unused");
  x.add_po("z", x.add_node("f", {a}, Sop::from_strings({"1"})));
  Network y("y");
  const NodeId a2 = y.add_pi("a");
  y.add_po("z", y.add_node("f", {a2}, Sop::from_strings({"1"})));
  // `unused` drives nothing in x and is absent from y: tolerated.
  const EquivalenceResult ok = check_equivalence(x, y);
  EXPECT_TRUE(ok.equivalent) << ok.message;

  // A *driven* PI existing on one side only is a clear, named error.
  Network w("w");
  const NodeId aw = w.add_pi("a");
  const NodeId bw = w.add_pi("b");
  w.add_po("z", w.add_node("f", {aw, bw}, Sop::from_strings({"11"})));
  const EquivalenceResult bad = check_equivalence(w, y);
  EXPECT_FALSE(bad.equivalent);
  EXPECT_NE(bad.message.find("PI name sets differ"), std::string::npos);
  EXPECT_NE(bad.message.find("b"), std::string::npos);
}

TEST(FuzzDriver, CleanBatteryOnSmallBatch) {
  FuzzOptions opts;
  opts.iters = 12;
  opts.seed = 3;
  opts.corpus_dir =
      (std::filesystem::path(::testing::TempDir()) / "fuzz-clean").string();
  const FuzzReport report = fuzz::run_fuzz(opts);
  EXPECT_EQ(report.iterations, 12);
  EXPECT_TRUE(report.clean()) << report.failures.front().check << ": "
                              << report.failures.front().detail;
}

TEST(FuzzDriver, PlantedBugCaughtShrunkAndReplayed) {
  FuzzOptions opts;
  opts.iters = 60;
  opts.seed = 1;
  opts.plant = fuzz::PlantedBug::SkipRemainder;
  opts.max_failures = 1;
  opts.corpus_dir =
      (std::filesystem::path(::testing::TempDir()) / "fuzz-plant").string();
  const FuzzReport report = fuzz::run_fuzz(opts);
  ASSERT_FALSE(report.clean())
      << "planted skip-remainder bug escaped " << report.iterations
      << " iterations";
  const fuzz::FuzzFailure& f = report.failures.front();
  EXPECT_LE(f.repro_nodes, 8) << "shrinker left a big repro";
  ASSERT_FALSE(f.repro_path.empty());
  EXPECT_TRUE(f.repro_confirmed)
      << "corpus repro did not reproduce from disk: " << f.repro_path;
  // And the artifact really is a parseable BLIF with the config header.
  const Network reread = read_blif_file(f.repro_path);
  EXPECT_TRUE(reread.check());
  EXPECT_EQ(fuzz::differential_check(reread, f.config).check, f.check);
}

}  // namespace
}  // namespace rarsub
