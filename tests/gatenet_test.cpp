#include "gatenet/gatenet.hpp"

#include <gtest/gtest.h>

#include "gatenet/build.hpp"
#include "network/network.hpp"
#include "network/simulate.hpp"

namespace rarsub {
namespace {

TEST(GateNet, BasicEval) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int g = gn.add_gate(GateType::And, {{a, false}, {b, true}});  // a & !b
  const int h = gn.add_gate(GateType::Or, {{g, false}, {b, false}});  // g | b
  gn.add_output(h);

  auto v = gn.eval({true, false});
  EXPECT_TRUE(v[static_cast<std::size_t>(g)]);
  EXPECT_TRUE(v[static_cast<std::size_t>(h)]);
  v = gn.eval({false, false});
  EXPECT_FALSE(v[static_cast<std::size_t>(h)]);
  v = gn.eval({false, true});
  EXPECT_TRUE(v[static_cast<std::size_t>(h)]);
}

TEST(GateNet, EmptyGatesAreConstants) {
  GateNet gn;
  const int t = gn.add_gate(GateType::And, {});
  const int f = gn.add_gate(GateType::Or, {});
  const auto v = gn.eval({});
  EXPECT_TRUE(v[static_cast<std::size_t>(t)]);
  EXPECT_FALSE(v[static_cast<std::size_t>(f)]);
}

TEST(GateNet, AddRemoveFaninKeepsBookkeeping) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int g = gn.add_gate(GateType::And, {{a, false}});
  const WireRef w = gn.add_fanin(g, {b, false});
  EXPECT_EQ(gn.gate(g).fanins.size(), 2u);
  EXPECT_EQ(gn.gate(b).fanouts.size(), 1u);
  gn.remove_fanin(w);
  EXPECT_EQ(gn.gate(g).fanins.size(), 1u);
  EXPECT_TRUE(gn.gate(b).fanouts.empty());
}

TEST(GateNet, MakeConstDetachesInputs) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int g = gn.add_gate(GateType::And, {{a, false}});
  gn.make_const(g, false);
  EXPECT_EQ(gn.gate(g).type, GateType::Const0);
  EXPECT_TRUE(gn.gate(a).fanouts.empty());
  EXPECT_FALSE(gn.eval({true})[static_cast<std::size_t>(g)]);
}

TEST(GateNet, TopoOrderAndTfo) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int g = gn.add_gate(GateType::And, {{a, false}});
  const int h = gn.add_gate(GateType::Or, {{g, false}});
  const auto mask = gn.tfo_mask(a);
  EXPECT_TRUE(mask[static_cast<std::size_t>(g)]);
  EXPECT_TRUE(mask[static_cast<std::size_t>(h)]);
  EXPECT_FALSE(mask[static_cast<std::size_t>(a)]);
}

TEST(GateNet, ReachesOutputRespectsBlocking) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int g = gn.add_gate(GateType::And, {{a, false}});
  const int h = gn.add_gate(GateType::Or, {{g, false}});
  gn.add_output(h);
  std::vector<bool> blocked(static_cast<std::size_t>(gn.num_gates()), false);
  EXPECT_TRUE(gn.reaches_output(a, blocked));
  blocked[static_cast<std::size_t>(g)] = true;
  EXPECT_FALSE(gn.reaches_output(a, blocked));
}

TEST(Build, NetworkDecompositionMatchesSimulation) {
  Network net("t");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId g =
      net.add_node("g", {a, b, c}, Sop::from_strings({"11-", "0-1"}));
  const NodeId h = net.add_node("h", {g, c}, Sop::from_strings({"10"}));
  net.add_po("h", h);

  GateNetMap map;
  GateNet gn = build_gatenet(net, map);
  ASSERT_EQ(map.node_cubes[static_cast<std::size_t>(g)].size(), 2u);

  for (std::uint64_t x = 0; x < 8; ++x) {
    std::vector<bool> pi_vals{(x & 1) != 0, (x & 2) != 0, (x & 4) != 0};
    const auto gv = gn.eval(pi_vals);
    const auto nv = simulate1(net, x);
    EXPECT_EQ(gv[static_cast<std::size_t>(map.node_out[static_cast<std::size_t>(h)])],
              nv[0])
        << x;
  }
}

TEST(Build, CubeGatePinsFollowVariableOrder) {
  Network net("t");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId g = net.add_node("g", {a, b}, Sop::from_strings({"10"}));
  net.add_po("g", g);
  GateNetMap map;
  GateNet gn = build_gatenet(net, map);
  const int cg = map.node_cubes[static_cast<std::size_t>(g)][0];
  ASSERT_EQ(gn.gate(cg).fanins.size(), 2u);
  EXPECT_FALSE(gn.gate(cg).fanins[0].neg);  // a positive
  EXPECT_TRUE(gn.gate(cg).fanins[1].neg);   // b negative
}

TEST(Build, ConstantNodes) {
  Network net("t");
  const NodeId k0 = net.add_node("k0", {}, Sop::zero(0));
  const NodeId k1 = net.add_node("k1", {}, Sop::one(0));
  net.add_po("k0", k0);
  net.add_po("k1", k1);
  GateNetMap map;
  GateNet gn = build_gatenet(net, map);
  const auto v = gn.eval({});
  EXPECT_FALSE(v[static_cast<std::size_t>(map.node_out[static_cast<std::size_t>(k0)])]);
  EXPECT_TRUE(v[static_cast<std::size_t>(map.node_out[static_cast<std::size_t>(k1)])]);
}

}  // namespace
}  // namespace rarsub
