// Targeted tests of the global-don't-care configuration: cases where
// region-local implications cannot justify a removal but whole-circuit
// implications can (the paper's third experimental configuration), plus
// the eliminate value model that feeds Script A.

#include <algorithm>
#include <gtest/gtest.h>

#include "division/substitute.hpp"
#include "network/simulate.hpp"
#include "verify/equivalence.hpp"

namespace rarsub {
namespace {

// f = a·b·g1·x where g1 is a node computing a·b (the expanded product and
// the node literal coexist — a satisfiability don't care). Dividing f by
// the node d = ab: region-local implications remove the a and b literal
// wires (the divisor cube ab conflicts), but only GLOBAL implications can
// also remove the g1 literal — the conflict needs g1's own definition
// (d=1 forces a=b=1 forces g1=1 while the fault demands g1=0).
Network sdc_network() {
  Network net("sdc");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId x = net.add_pi("x");
  const NodeId g1 = net.add_node("g1", {a, b}, Sop::from_strings({"11"}));
  const NodeId d = net.add_node("d", {a, b}, Sop::from_strings({"11"}));
  const NodeId f =
      net.add_node("f", {a, b, g1, x}, Sop::from_strings({"1111"}));
  net.add_po("f", f);
  net.add_po("g1", g1);
  net.add_po("d", d);
  return net;
}

TEST(Gdc, RegionModeLeavesCorrelatedLiteral) {
  Network net = sdc_network();
  SubstituteOptions opts;
  opts.method = SubstMethod::Extended;  // region-local
  const std::optional<int> gain = try_substitution(
      net, net.find_node("f"), net.find_node("d"), opts, /*commit=*/false);
  // Region mode removes a and b but must keep g1: gain at most 1.
  ASSERT_TRUE(gain.has_value());
  EXPECT_LE(*gain, 1);
}

TEST(Gdc, GlobalModeRemovesCorrelatedLiteral) {
  Network net = sdc_network();
  const Network before = net;
  SubstituteOptions opts;
  opts.method = SubstMethod::ExtendedGdc;
  const std::optional<int> gain = try_substitution(
      net, net.find_node("f"), net.find_node("d"), opts, /*commit=*/true);
  ASSERT_TRUE(gain.has_value());
  EXPECT_EQ(*gain, 2);  // both ab and the g1 literal disappear
  EXPECT_TRUE(net.check());
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
  // f now reads the divisor and x only: 2 literals.
  const NodeId f = net.find_node("f");
  EXPECT_EQ(net.node(f).func.num_literals(), 2);
}

TEST(Gdc, SubstituteNetworkGdcFindsTheWin) {
  Network net = sdc_network();
  const Network before = net;
  SubstituteOptions opts;
  opts.method = SubstMethod::ExtendedGdc;
  const SubstituteStats st = substitute_network(net, opts);
  EXPECT_GE(st.substitutions, 1);
  EXPECT_LT(st.literals_after, st.literals_before);
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
}

// ---------------------------------------------------------------------
// eliminate's true-value model.

TEST(Eliminate, ComposePreviewMatchesCompose) {
  Network net("p");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId g = net.add_node("g", {a, b}, Sop::from_strings({"10", "01"}));
  const NodeId h = net.add_node("h", {g, c}, Sop::from_strings({"10", "01"}));
  net.add_po("h", h);
  const auto preview = net.compose_preview(h, g);
  ASSERT_TRUE(preview.has_value());
  ASSERT_TRUE(net.compose(h, g));
  EXPECT_TRUE(std::equal(net.node(h).fanins.begin(),
                         net.node(h).fanins.end(),
                         preview->fanins.begin(), preview->fanins.end()));
  EXPECT_TRUE(net.node(h).func.equals(preview->func));
}

TEST(Eliminate, DoesNotExplodeXorTrees) {
  // A chain of XOR nodes: collapsing doubles the cover each time, so the
  // true-value eliminate must stop early instead of flattening the parity
  // function into 2^(n-1) cubes.
  Network net("xors");
  std::vector<NodeId> pis;
  for (int i = 0; i < 8; ++i) pis.push_back(net.add_pi("x" + std::to_string(i)));
  NodeId acc = net.add_node("p0", {pis[0], pis[1]}, Sop::from_strings({"10", "01"}));
  for (int i = 2; i < 8; ++i)
    acc = net.add_node("p" + std::to_string(i - 1), {acc, pis[static_cast<std::size_t>(i)]},
                       Sop::from_strings({"10", "01"}));
  net.add_po("parity", acc);
  const Network before = net;
  const int lits_before = net.factored_literals();
  eliminate(net, 0);
  EXPECT_TRUE(net.check());
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
  // 2-3 levels may merge (xor of 3 inputs is still cheap); wholesale
  // flattening would cost hundreds of literals.
  EXPECT_LE(net.factored_literals(), lits_before * 2);
}

TEST(Eliminate, CollapsesCheapAndChains) {
  Network net("ands");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId d = net.add_pi("d");
  const NodeId g1 = net.add_node("g1", {a, b}, Sop::from_strings({"11"}));
  const NodeId g2 = net.add_node("g2", {g1, c}, Sop::from_strings({"11"}));
  const NodeId g3 = net.add_node("g3", {g2, d}, Sop::from_strings({"11"}));
  net.add_po("g3", g3);
  const Network before = net;
  const int n = eliminate(net, 0);
  EXPECT_GE(n, 2);  // g1 and g2 fold into g3
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
  const NodeId g3b = net.find_node("g3");
  EXPECT_EQ(net.node(g3b).func.num_literals(), 4);  // abcd in one cube
}

TEST(Eliminate, KeepsValuableMultiFanoutNodes) {
  // A 3-literal node with three fanouts over disjoint extra inputs:
  // collapsing would triplicate its literals (value +6 at threshold 0).
  Network net("fan");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId g = net.add_node("g", {a, b, c}, Sop::from_strings({"111"}));
  for (int i = 0; i < 3; ++i) {
    const NodeId e = net.add_pi("e" + std::to_string(i));
    const NodeId u = net.add_node("u" + std::to_string(i), {g, e},
                                  Sop::from_strings({"11"}));
    net.add_po("u" + std::to_string(i), u);
  }
  eliminate(net, 0);
  EXPECT_NE(net.find_node("g"), kNoNode);
}

}  // namespace
}  // namespace rarsub
