#include "obs/hwc.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <string>

#include "obs/obs.hpp"

namespace rarsub {
namespace {

long fake_perf_open_eacces(void*, std::int32_t, std::int32_t, std::int32_t,
                           unsigned long) {
  errno = EACCES;  // what perf_event_paranoid / seccomp'd CI returns
  return -1;
}

long fake_perf_open_enosys(void*, std::int32_t, std::int32_t, std::int32_t,
                           unsigned long) {
  errno = ENOSYS;
  return -1;
}

// gtest_discover_tests runs each TEST in its own process, so re-arming
// the probe with an injected syscall cannot bleed into other tests.

TEST(Hwc, DegradesGracefullyOnEacces) {
  obs::detail::set_perf_open_for_test(&fake_perf_open_eacces);
  EXPECT_FALSE(obs::hwc_available());
  const std::string status = obs::hwc_status();
  EXPECT_NE(status.find("unavailable"), std::string::npos) << status;
#ifdef __linux__
  // The degradation reason names the syscall and carries the errno text.
  EXPECT_NE(status.find("perf_event_open"), std::string::npos) << status;
  EXPECT_NE(status.find("Permission denied"), std::string::npos) << status;
#endif

  // Every HWC object stays usable as a no-op: nothing throws, nothing
  // crashes, readings just report invalid.
  obs::HwcGroup group;
  EXPECT_FALSE(group.valid());
  group.start();
  group.stop();
  const obs::HwcReading r = group.read();
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.cycles, -1);
  EXPECT_EQ(r.instructions, -1);
  { obs::HwcScope scope; }  // constructs and destructs cleanly

  // And no hwc.* counters leak into the registry from no-op scopes.
  obs::reset();
  { obs::HwcScope scope; }
  EXPECT_EQ(obs::snapshot().counter("hwc.cycles"), 0);

  obs::detail::set_perf_open_for_test(nullptr);
}

TEST(Hwc, DegradesGracefullyOnEnosys) {
  obs::detail::set_perf_open_for_test(&fake_perf_open_enosys);
  EXPECT_FALSE(obs::hwc_available());
  EXPECT_NE(obs::hwc_status().find("unavailable"), std::string::npos);
  obs::detail::set_perf_open_for_test(nullptr);
}

TEST(Hwc, EnvKillSwitchDisablesProbe) {
#ifdef __linux__
  ::setenv("RARSUB_HWC_OFF", "1", 1);
  obs::detail::set_perf_open_for_test(nullptr);  // re-arm the probe
  EXPECT_FALSE(obs::hwc_available());
  EXPECT_NE(obs::hwc_status().find("RARSUB_HWC_OFF"), std::string::npos);
  ::unsetenv("RARSUB_HWC_OFF");
  obs::detail::set_perf_open_for_test(nullptr);  // re-arm with it unset
#else
  GTEST_SKIP() << "env kill switch is a Linux concern";
#endif
}

TEST(Hwc, RealProbeNeverFailsHard) {
  // Whatever this host offers — bare metal with a PMU, a container where
  // perf_event_open is seccomp-filtered away — the probe must settle on a
  // definite answer with a non-empty status, and measurement objects must
  // behave accordingly.
  obs::detail::set_perf_open_for_test(nullptr);
  const bool avail = obs::hwc_available();
  EXPECT_FALSE(obs::hwc_status().empty());

  obs::HwcGroup group;
  EXPECT_EQ(group.valid(), avail);
  group.start();
  // Burn enough work that real counters cannot plausibly read zero.
  volatile std::uint64_t sink = 1;
  for (int i = 0; i < 1000000; ++i) sink = sink * 2862933555777941757ull + 3;
  group.stop();
  const obs::HwcReading r = group.read();
  EXPECT_EQ(r.valid, avail);
  if (avail) {
    EXPECT_GT(r.cycles, 0);
    EXPECT_GT(r.instructions, 0);
    // Miss counters are optional extras: -1 (failed to open) or >= 0.
    EXPECT_GE(r.cache_misses, -1);
    EXPECT_GE(r.branch_misses, -1);

    // A scope over real work publishes into the obs registry.
    obs::reset();
    {
      obs::HwcScope scope;
      for (int i = 0; i < 1000000; ++i) sink = sink * 6364136223846793005ull + 1;
    }
    const obs::Snapshot s = obs::snapshot();
    EXPECT_GT(s.counter("hwc.cycles"), 0);
    EXPECT_GT(s.counter("hwc.instructions"), 0);
  } else {
    EXPECT_NE(obs::hwc_status().find("ok"), 0u) << obs::hwc_status();
  }
}

TEST(Hwc, GroupIsReusableAcrossWindows) {
  obs::detail::set_perf_open_for_test(nullptr);
  if (!obs::hwc_available())
    GTEST_SKIP() << "hwc unavailable on this host: " << obs::hwc_status();
  obs::HwcGroup group;
  volatile std::uint64_t sink = 1;
  group.start();
  for (int i = 0; i < 100000; ++i) sink += i;
  group.stop();
  const std::int64_t first = group.read().instructions;
  group.start();  // start resets: second window is independent
  for (int i = 0; i < 100000; ++i) sink += i;
  group.stop();
  const std::int64_t second = group.read().instructions;
  EXPECT_GT(first, 0);
  EXPECT_GT(second, 0);
  // Same loop, same order of magnitude — not an accumulating total.
  EXPECT_LT(second, first * 10);
}

}  // namespace
}  // namespace rarsub
