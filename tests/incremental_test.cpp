#include "gatenet/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "benchcir/classics.hpp"
#include "benchcir/suite.hpp"
#include "division/substitute.hpp"
#include "gatenet/build.hpp"
#include "network/blif.hpp"
#include "network/network.hpp"
#include "opt/scripts.hpp"
#include "rar/network_rr.hpp"

namespace rarsub {
namespace {

Sop random_sop(std::mt19937& rng, int nv) {
  std::uniform_int_distribution<int> ncube(1, 4);
  Sop func(nv);
  const int cubes = ncube(rng);
  for (int ci = 0; ci < cubes; ++ci) {
    Cube c(nv);
    for (int v = 0; v < nv; ++v) {
      const int r = static_cast<int>(rng() % 3);
      if (r == 0) c.set_lit(v, Lit::Pos);
      if (r == 1) c.set_lit(v, Lit::Neg);
    }
    func.add_cube(c);
  }
  if (func.num_cubes() == 0) func = Sop::one(nv);
  func.scc_minimize();
  return func;
}

Network random_network(std::mt19937& rng, int num_pis, int num_nodes) {
  Network net("rand");
  std::vector<NodeId> pool;
  for (int i = 0; i < num_pis; ++i)
    pool.push_back(net.add_pi("x" + std::to_string(i)));
  std::uniform_int_distribution<int> nfan(2, 4);
  for (int i = 0; i < num_nodes; ++i) {
    const int k = std::min<int>(nfan(rng), static_cast<int>(pool.size()));
    std::vector<NodeId> fanins;
    while (static_cast<int>(fanins.size()) < k) {
      const NodeId cand = pool[rng() % pool.size()];
      if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
        fanins.push_back(cand);
    }
    pool.push_back(net.add_node("n" + std::to_string(i), fanins,
                                random_sop(rng, k)));
  }
  for (int i = 0; i < 3; ++i)
    net.add_po("o" + std::to_string(i),
               pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
  return net;
}

std::vector<NodeId> alive_internal(const Network& net) {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < net.num_nodes(); ++id)
    if (net.node(id).alive && !net.node(id).is_pi) out.push_back(id);
  return out;
}

// Semantic oracle: on 64 random input samples, the view's gate values at
// every alive node's root must match a from-scratch build_gatenet.
void expect_semantically_equal(const Network& net,
                               const IncrementalGateView& view,
                               std::mt19937& rng) {
  GateNetMap oracle_map;
  const GateNet oracle = build_gatenet(net, oracle_map);
  ASSERT_EQ(view.gatenet().pis().size(), oracle.pis().size());
  std::vector<std::uint64_t> words(oracle.pis().size());
  for (auto& w : words)
    w = (static_cast<std::uint64_t>(rng()) << 32) ^ rng();
  const auto val_v = view.gatenet().eval64(words);
  const auto val_o = oracle.eval64(words);
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (!net.node(id).alive) continue;
    const int gv = view.map().node_out[static_cast<std::size_t>(id)];
    const int go = oracle_map.node_out[static_cast<std::size_t>(id)];
    ASSERT_GE(gv, 0);
    EXPECT_EQ(val_v[static_cast<std::size_t>(gv)],
              val_o[static_cast<std::size_t>(go)])
        << "node " << net.node(id).name;
  }
  ASSERT_EQ(view.gatenet().outputs().size(), oracle.outputs().size());
  for (std::size_t i = 0; i < oracle.outputs().size(); ++i)
    EXPECT_EQ(val_v[static_cast<std::size_t>(view.gatenet().outputs()[i])],
              val_o[static_cast<std::size_t>(oracle.outputs()[i])]);
}

// Random mutation sequences (add / set_function / sweep / collapse /
// add_po) must leave the view structurally equal to the canonical
// decomposition and semantically equal to a scratch build.
TEST(IncrementalGateView, FuzzedMutationsMatchScratchBuild) {
  std::mt19937 rng(77);
  for (int iter = 0; iter < 8; ++iter) {
    Network net = random_network(rng, 4 + iter % 3, 8 + iter);
    IncrementalGateView view(net);
    for (int op = 0; op < 40; ++op) {
      const int what = static_cast<int>(rng() % 10);
      const std::vector<NodeId> pool = alive_internal(net);
      if (what < 5 && !pool.empty()) {
        // set_function on a random node with cycle-safe fanins.
        const NodeId f = pool[rng() % pool.size()];
        std::vector<NodeId> cands;
        for (NodeId id = 0; id < net.num_nodes(); ++id)
          if (net.node(id).alive && id != f && !net.depends_on(id, f))
            cands.push_back(id);
        if (cands.empty()) continue;
        const int k = 1 + static_cast<int>(rng() % 3);
        std::vector<NodeId> fanins;
        while (static_cast<int>(fanins.size()) < k) {
          const NodeId c = cands[rng() % cands.size()];
          if (std::find(fanins.begin(), fanins.end(), c) == fanins.end())
            fanins.push_back(c);
        }
        net.set_function(f, fanins, random_sop(rng, k));
      } else if (what < 7) {
        // add a node (sometimes making it observable).
        std::vector<NodeId> cands;
        for (NodeId id = 0; id < net.num_nodes(); ++id)
          if (net.node(id).alive) cands.push_back(id);
        const int k = std::min<int>(2 + static_cast<int>(rng() % 2),
                                    static_cast<int>(cands.size()));
        std::vector<NodeId> fanins;
        while (static_cast<int>(fanins.size()) < k) {
          const NodeId c = cands[rng() % cands.size()];
          if (std::find(fanins.begin(), fanins.end(), c) == fanins.end())
            fanins.push_back(c);
        }
        const NodeId g =
            net.add_node(net.fresh_name("f"), fanins, random_sop(rng, k));
        if (rng() % 2) net.add_po(net.fresh_name("po"), g);
      } else if (what < 9) {
        net.sweep();
      } else if (!pool.empty()) {
        // collapse a random collapsible node.
        for (int tries = 0; tries < 4; ++tries) {
          const NodeId id = pool[rng() % pool.size()];
          if (!net.node(id).alive || net.num_po_refs(id) != 0 ||
              net.node(id).fanouts.empty())
            continue;
          net.collapse_into_fanouts(id);
          break;
        }
      }
      if (op % 3 == 0 || op == 39) {
        view.refresh();
        std::string why;
        ASSERT_TRUE(view.check(&why)) << "iter " << iter << " op " << op
                                      << ": " << why;
      }
    }
    view.refresh();
    std::string why;
    ASSERT_TRUE(view.check(&why)) << "iter " << iter << ": " << why;
    expect_semantically_equal(net, view, rng);
    ASSERT_TRUE(net.check());
  }
}

TEST(IncrementalGateView, RefreshIsNoOpWhenUpToDate) {
  Network net = make_adder(4);
  IncrementalGateView view(net);
  EXPECT_TRUE(view.up_to_date());
  EXPECT_EQ(view.refresh(), 0);
  const std::uint64_t cur = view.cursor();
  EXPECT_EQ(view.refresh(), 0);
  EXPECT_EQ(view.cursor(), cur);
}

// A function change recycles the node's cube gates through the freelist:
// repeated edits must not grow the gate array.
TEST(IncrementalGateView, FreelistBoundsGateGrowth) {
  Network net = make_adder(4);
  IncrementalGateView view(net);
  const std::vector<NodeId> pool = alive_internal(net);
  const NodeId f = pool[pool.size() / 2];
  const std::vector<NodeId> fanins(net.fanins(f).begin(),
                                   net.fanins(f).end());
  const Sop original = net.node(f).func;

  net.set_function(f, fanins, original);  // same cover, new event
  view.refresh();
  const int gates_after_first = view.gatenet().num_gates();
  for (int i = 0; i < 20; ++i) {
    net.set_function(f, fanins, original);
    view.refresh();
    std::string why;
    ASSERT_TRUE(view.check(&why)) << why;
  }
  EXPECT_EQ(view.gatenet().num_gates(), gates_after_first);
}

TEST(IncrementalGateView, NetworkRrAcceptsALiveView) {
  Network with_view = build_benchmark("syn_c432");
  script_a(with_view);
  Network plain = with_view;

  IncrementalGateView view(with_view);
  NetworkRrOptions opts;
  const NetworkRrStats s1 = network_redundancy_removal(with_view, opts, &view);
  const NetworkRrStats s2 = network_redundancy_removal(plain, opts);
  EXPECT_EQ(write_blif_string(with_view), write_blif_string(plain));
  EXPECT_EQ(s1.wires_removed, s2.wires_removed);
  EXPECT_EQ(s1.literals_after, s2.literals_after);

  // The fold-back edits flowed through the journal: the view can catch
  // up and still match the canonical decomposition.
  view.refresh();
  std::string why;
  EXPECT_TRUE(view.check(&why)) << why;
}

// The escape hatch: script A/B/C optimization results must be
// byte-identical with the incremental view on vs. off.
TEST(IncrementalGateView, GdcResultsAreByteIdenticalWithIncrementalOff) {
  for (const char script : {'a', 'b', 'c'}) {
    Network inc = build_benchmark("syn_c432");
    if (script == 'a') script_a(inc);
    if (script == 'b') script_b(inc);
    if (script == 'c') script_c(inc);
    Network full = inc;

    SubstituteOptions opts;
    opts.method = SubstMethod::ExtendedGdc;
    opts.enable_incremental = true;
    const SubstituteStats si = substitute_network(inc, opts);
    opts.enable_incremental = false;
    const SubstituteStats sf = substitute_network(full, opts);

    EXPECT_EQ(write_blif_string(inc), write_blif_string(full))
        << "script " << script;
    EXPECT_EQ(si.substitutions, sf.substitutions) << "script " << script;
    EXPECT_EQ(si.literals_after, sf.literals_after) << "script " << script;
  }
}

}  // namespace
}  // namespace rarsub
