// End-to-end pipelines over real benchmark circuits: every script and
// every resubstitution method must preserve primary-output functions, and
// optimized networks must survive a BLIF round trip.

#include <gtest/gtest.h>

#include "benchcir/suite.hpp"
#include "network/blif.hpp"
#include "opt/scripts.hpp"
#include "verify/equivalence.hpp"

namespace rarsub {
namespace {

struct PipelineParam {
  const char* circuit;
  ResubMethod method;
};

class Pipeline : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(Pipeline, ScriptAThenMethodIsSound) {
  const PipelineParam p = GetParam();
  Network net = build_benchmark(p.circuit);
  const Network original = net;
  script_a(net);
  run_resub(net, p.method);
  ASSERT_TRUE(net.check());
  const EquivalenceResult eq = check_equivalence(original, net);
  EXPECT_TRUE(eq.equivalent) << p.circuit << "/" << method_name(p.method)
                             << ": " << eq.message;
}

TEST_P(Pipeline, OptimizedNetworkSurvivesBlifRoundTrip) {
  const PipelineParam p = GetParam();
  Network net = build_benchmark(p.circuit);
  script_a(net);
  run_resub(net, p.method);
  Network back = read_blif_string(write_blif_string(net));
  EXPECT_TRUE(back.check());
  const EquivalenceResult eq = check_equivalence(net, back);
  EXPECT_TRUE(eq.equivalent) << eq.message;
}

INSTANTIATE_TEST_SUITE_P(
    Methods, Pipeline,
    ::testing::Values(
        PipelineParam{"c17", ResubMethod::SisAlgebraic},
        PipelineParam{"c17", ResubMethod::ExtendedGdc},
        PipelineParam{"add8", ResubMethod::Basic},
        PipelineParam{"alu4", ResubMethod::Extended},
        PipelineParam{"alu4", ResubMethod::ExtendedGdc},
        PipelineParam{"syn_c432", ResubMethod::SisAlgebraic},
        PipelineParam{"syn_c432", ResubMethod::Basic},
        PipelineParam{"syn_c432", ResubMethod::Extended},
        PipelineParam{"syn_c432", ResubMethod::ExtendedGdc},
        PipelineParam{"syn_t481", ResubMethod::Extended},
        PipelineParam{"syn_t481", ResubMethod::ExtendedGdc}),
    [](const ::testing::TestParamInfo<PipelineParam>& info) {
      return std::string(info.param.circuit) + "_" +
             method_name(info.param.method);
    });

TEST(Integration, FullAlgebraicScriptOnSuite) {
  for (const BenchmarkEntry& e : benchmark_suite_small()) {
    Network net = e.build();
    const Network original = net;
    script_algebraic(net, ResubMethod::Extended);
    ASSERT_TRUE(net.check()) << e.name;
    const EquivalenceResult eq = check_equivalence(original, net);
    EXPECT_TRUE(eq.equivalent) << e.name << ": " << eq.message;
  }
}

TEST(Integration, MethodsImproveOrMatchOnSyntheticSuite) {
  // The headline ordering on circuits with substitution opportunities:
  // Boolean methods never lose to the initial count, and extended+GDC is
  // at least as good as algebraic resub in total.
  long init = 0, sis = 0, ext_gdc = 0;
  for (const char* name : {"syn_c432", "syn_t481"}) {
    Network prepared = build_benchmark(name);
    script_a(prepared);
    init += prepared.factored_literals();
    {
      Network n = prepared;
      run_resub(n, ResubMethod::SisAlgebraic);
      sis += n.factored_literals();
    }
    {
      Network n = prepared;
      run_resub(n, ResubMethod::ExtendedGdc);
      ext_gdc += n.factored_literals();
    }
  }
  EXPECT_LE(sis, init);
  EXPECT_LE(ext_gdc, sis);
}

TEST(Integration, RepeatedOptimizationIsIdempotentEnough) {
  // Running the same substitution twice must not diverge or break.
  Network net = build_benchmark("syn_c432");
  const Network original = net;
  script_a(net);
  run_resub(net, ResubMethod::Extended);
  const int once = net.factored_literals();
  run_resub(net, ResubMethod::Extended);
  EXPECT_LE(net.factored_literals(), once);
  EXPECT_TRUE(check_equivalence(original, net).equivalent);
}

}  // namespace
}  // namespace rarsub
