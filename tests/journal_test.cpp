#include "network/journal.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "network/network.hpp"
#include "obs/ledger.hpp"
#include "sop/factor.hpp"

namespace rarsub {
namespace {

Sop sop_and2() {
  Sop f(2);
  Cube c(2);
  c.set_lit(0, Lit::Pos);
  c.set_lit(1, Lit::Pos);
  f.add_cube(std::move(c));
  return f;
}

Sop sop_or2() {
  Sop f(2);
  Cube a(2), b(2);
  a.set_lit(0, Lit::Pos);
  b.set_lit(1, Lit::Pos);
  f.add_cube(std::move(a));
  f.add_cube(std::move(b));
  return f;
}

Sop sop_buf() {
  Sop f(1);
  Cube c(1);
  c.set_lit(0, Lit::Pos);
  f.add_cube(std::move(c));
  return f;
}

std::vector<NetEvent> events_since(const MutationJournal& j, std::uint64_t cur) {
  std::vector<NetEvent> out;
  EXPECT_TRUE(j.visit_since(cur, [&](const NetEvent& e) { out.push_back(e); }));
  return out;
}

TEST(Journal, RecordsEveryMutationKindInOrder) {
  Network net("j");
  const std::uint64_t start = net.journal().seq();
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId g = net.add_node("g", {a, b}, sop_and2());
  net.add_po("out", g);
  net.set_function(g, {a, b}, sop_or2());

  const auto evs = events_since(net.journal(), start);
  ASSERT_EQ(evs.size(), 5u);
  EXPECT_EQ(evs[0].kind, NetEventKind::NodeAdded);
  EXPECT_EQ(evs[0].node, a);
  EXPECT_EQ(evs[1].kind, NetEventKind::NodeAdded);
  EXPECT_EQ(evs[1].node, b);
  EXPECT_EQ(evs[2].kind, NetEventKind::NodeAdded);
  EXPECT_EQ(evs[2].node, g);
  EXPECT_EQ(evs[3].kind, NetEventKind::OutputChanged);
  EXPECT_EQ(evs[3].node, g);
  EXPECT_EQ(evs[4].kind, NetEventKind::FunctionChanged);
  EXPECT_EQ(evs[4].node, g);
  // Strictly increasing sequence numbers; mutations() mirrors the newest.
  for (std::size_t i = 1; i < evs.size(); ++i)
    EXPECT_GT(evs[i].seq, evs[i - 1].seq);
  EXPECT_EQ(net.mutations(), net.journal().seq());
  EXPECT_EQ(evs.back().seq, net.journal().seq());
}

TEST(Journal, NodeVersionIsJournalBacked) {
  Network net("v");
  const NodeId a = net.add_pi("a");
  const NodeId g = net.add_node("g", {a}, sop_buf());
  const int v0 = net.node(g).version;
  net.set_function(g, {a}, sop_buf());
  EXPECT_EQ(net.node(g).version, v0 + 1);
  net.add_po("out", g);  // output events do not touch node versions
  EXPECT_EQ(net.node(g).version, v0 + 1);
}

// Two subscribers with independent cursors see identical suffixes
// regardless of when each catches up.
TEST(Journal, CursorIsolationAcrossSubscribers) {
  Network net("c");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  std::uint64_t cur1 = net.journal().seq();
  std::uint64_t cur2 = net.journal().seq();

  const NodeId g = net.add_node("g", {a, b}, sop_and2());
  const auto seen1 = events_since(net.journal(), cur1);
  cur1 = net.journal().seq();
  ASSERT_EQ(seen1.size(), 1u);
  EXPECT_EQ(seen1[0].node, g);

  net.set_function(g, {a, b}, sop_or2());
  net.add_po("o", g);

  // Subscriber 1 consumes only the delta; subscriber 2 sees everything.
  const auto more1 = events_since(net.journal(), cur1);
  const auto all2 = events_since(net.journal(), cur2);
  ASSERT_EQ(more1.size(), 2u);
  ASSERT_EQ(all2.size(), 3u);
  EXPECT_EQ(all2[0].seq, seen1[0].seq);
  EXPECT_EQ(all2[1].seq, more1[0].seq);
  EXPECT_EQ(all2[2].seq, more1[1].seq);
  // Consuming is idempotent: the journal is not drained by reads.
  EXPECT_EQ(events_since(net.journal(), cur2).size(), 3u);
}

TEST(Journal, SweepEmitsDeathEventsForDeadNodes) {
  Network net("s");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId dead = net.add_node("dead", {a, b}, sop_and2());
  const NodeId kept = net.add_node("kept", {a, b}, sop_or2());
  net.add_po("o", kept);
  const std::uint64_t cur = net.journal().seq();

  net.sweep();
  ASSERT_FALSE(net.node(dead).alive);
  ASSERT_TRUE(net.node(kept).alive);
  bool saw_death = false;
  for (const NetEvent& e : events_since(net.journal(), cur)) {
    if (e.kind == NetEventKind::NodeDied) {
      EXPECT_EQ(e.node, dead);
      saw_death = true;
    }
  }
  EXPECT_TRUE(saw_death);
}

// collapse_into_fanouts rewrites every fanout *before* the collapsed node
// dies, so a consumer replaying the journal never sees a live node whose
// fanin is already gone.
TEST(Journal, CollapseOrdersFunctionChangesBeforeDeath) {
  Network net("k");
  const NodeId a = net.add_pi("a");
  const NodeId mid = net.add_node("mid", {a}, sop_buf());
  const NodeId out1 = net.add_node("out1", {mid}, sop_buf());
  const NodeId out2 = net.add_node("out2", {mid}, sop_buf());
  net.add_po("o1", out1);
  net.add_po("o2", out2);
  const std::uint64_t cur = net.journal().seq();

  ASSERT_TRUE(net.collapse_into_fanouts(mid));
  const auto evs = events_since(net.journal(), cur);
  std::uint64_t death_seq = 0;
  std::vector<std::uint64_t> change_seqs;
  for (const NetEvent& e : evs) {
    if (e.kind == NetEventKind::NodeDied && e.node == mid) death_seq = e.seq;
    if (e.kind == NetEventKind::FunctionChanged &&
        (e.node == out1 || e.node == out2))
      change_seqs.push_back(e.seq);
  }
  ASSERT_NE(death_seq, 0u);
  ASSERT_EQ(change_seqs.size(), 2u);
  for (std::uint64_t s : change_seqs) EXPECT_LT(s, death_seq);
}

TEST(Journal, TrimForcesStaleCursorsToResync) {
  MutationJournal j;
  j.record(NetEventKind::NodeAdded, 0);
  j.record(NetEventKind::NodeAdded, 1);
  j.record(NetEventKind::FunctionChanged, 0);
  ASSERT_EQ(j.seq(), 3u);
  ASSERT_EQ(j.size(), 3u);

  j.trim_to(2);
  EXPECT_EQ(j.size(), 1u);
  EXPECT_EQ(j.first_retained(), 3u);
  // A cursor at/after the trim point still replays incrementally...
  EXPECT_EQ(events_since(j, 2).size(), 1u);
  // ...an older one is told to resync (visit_since returns false and
  // visits nothing).
  int visited = 0;
  EXPECT_FALSE(j.visit_since(1, [&](const NetEvent&) { ++visited; }));
  EXPECT_EQ(visited, 0);
  // Trimming never rewinds and caps at the newest event.
  j.trim_to(1);
  EXPECT_EQ(j.first_retained(), 3u);
  j.trim_to(99);
  EXPECT_EQ(j.size(), 0u);
}

TEST(Journal, KindNamesAreDistinct) {
  EXPECT_STREQ(net_event_kind_name(NetEventKind::NodeAdded), "node_added");
  EXPECT_STREQ(net_event_kind_name(NetEventKind::FunctionChanged),
               "function_changed");
  EXPECT_STREQ(net_event_kind_name(NetEventKind::NodeDied), "node_died");
  EXPECT_STREQ(net_event_kind_name(NetEventKind::OutputChanged),
               "output_changed");
}

// Regression for the ledger replay contract now that NodeUpdate events are
// emitted from the journal choke point: a mutation history with function
// changes, a sweep death and a collapse death must still replay to the
// exact per-node factored literal counts.
TEST(Journal, LedgerReplayStillReproducesLiteralCounts) {
  obs::ledger_end();
  ASSERT_TRUE(obs::ledger_begin_memory(1 << 12));

  Network net("r");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId dead = net.add_node("dead", {a, b}, sop_and2());
  const NodeId mid = net.add_node("mid", {a}, sop_buf());
  const NodeId out1 = net.add_node("out1", {mid}, sop_buf());
  const NodeId keep = net.add_node("keep", {a, b}, sop_or2());
  net.add_po("o1", out1);
  net.add_po("o2", keep);
  net.set_function(keep, {a, b}, sop_and2());
  ASSERT_TRUE(net.collapse_into_fanouts(mid));  // "collapse" death
  net.sweep();                                  // kills `dead` ("sweep")
  ASSERT_FALSE(net.node(dead).alive);

  obs::ledger_end();
  std::map<std::int32_t, std::int64_t> replay;
  for (const obs::Event& e : obs::ledger_events())
    if (e.kind == obs::EventKind::NodeUpdate) replay[e.node] = e.a;

  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Node& nd = net.node(id);
    if (nd.is_pi) continue;
    const std::int64_t want = nd.alive ? factored_literal_count(nd.func) : 0;
    const auto it = replay.find(id);
    EXPECT_EQ(it == replay.end() ? 0 : it->second, want) << "node " << id;
  }
  // PIs must not enter the replay stream.
  EXPECT_EQ(replay.count(a), 0u);
  EXPECT_EQ(replay.count(b), 0u);
}

}  // namespace
}  // namespace rarsub
