#include "obs/ledger.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>

#include "division/substitute.hpp"
#include "network/network.hpp"
#include "sop/factor.hpp"

namespace rarsub {
namespace {

// Every test owns the process-wide session: close any leftover first.
class LedgerTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::ledger_end(); }
  void TearDown() override { obs::ledger_end(); }
};

TEST_F(LedgerTest, KindNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(obs::EventKind::RedundancyTest); ++i) {
    const auto k = static_cast<obs::EventKind>(i);
    obs::EventKind back;
    ASSERT_TRUE(obs::event_kind_from_name(obs::event_kind_name(k), &back))
        << obs::event_kind_name(k);
    EXPECT_EQ(back, k);
  }
  obs::EventKind dummy;
  EXPECT_FALSE(obs::event_kind_from_name("not_a_kind", &dummy));
}

TEST_F(LedgerTest, DisabledRecorderEvaluatesNothing) {
  ASSERT_FALSE(obs::ledger_active());
  int evaluated = 0;
  OBS_EVENT(.kind = obs::EventKind::WireAdd,
            .a = ++evaluated);  // must not run while disabled
  EXPECT_EQ(evaluated, 0);
}

TEST_F(LedgerTest, MemorySessionRecordsInOrder) {
  ASSERT_TRUE(obs::ledger_begin_memory(64));
  EXPECT_TRUE(obs::ledger_active());
  EXPECT_FALSE(obs::ledger_begin_memory(64));  // no double-begin

  OBS_EVENT(.kind = obs::EventKind::WireAdd, .node = 3, .divisor = 7, .a = 1);
  OBS_EVENT(.kind = obs::EventKind::WireRemove, .node = 3, .divisor = 7,
            .reason = "pin");
  obs::ledger_end();
  EXPECT_FALSE(obs::ledger_active());

  const std::vector<obs::Event> ev = obs::ledger_events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].seq, 0u);
  EXPECT_EQ(ev[0].kind, obs::EventKind::WireAdd);
  EXPECT_EQ(ev[0].node, 3);
  EXPECT_EQ(ev[0].divisor, 7);
  EXPECT_EQ(ev[1].seq, 1u);
  EXPECT_STREQ(ev[1].reason, "pin");
  EXPECT_GE(ev[1].t_ns, ev[0].t_ns);
  EXPECT_EQ(obs::ledger_emitted(), 2u);
  EXPECT_EQ(obs::ledger_dropped(), 0u);
}

TEST_F(LedgerTest, RingKeepsTheMostRecentEvents) {
  ASSERT_TRUE(obs::ledger_begin_memory(4));
  for (int i = 0; i < 10; ++i)
    OBS_EVENT(.kind = obs::EventKind::RedundancyTest, .node = i);
  obs::ledger_end();
  EXPECT_EQ(obs::ledger_emitted(), 10u);
  EXPECT_EQ(obs::ledger_dropped(), 6u);
  const std::vector<obs::Event> ev = obs::ledger_events();
  ASSERT_EQ(ev.size(), 4u);
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].seq, 6 + i);
    EXPECT_EQ(ev[i].node, static_cast<std::int32_t>(6 + i));
  }
}

TEST_F(LedgerTest, ConcurrentEmittersGetUniqueOrderedSeqs) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  ASSERT_TRUE(obs::ledger_begin_memory(kThreads * kPerThread));
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        OBS_EVENT(.kind = obs::EventKind::RedundancyTest, .node = t, .a = i);
    });
  for (std::thread& w : workers) w.join();
  obs::ledger_end();

  EXPECT_EQ(obs::ledger_emitted(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(obs::ledger_dropped(), 0u);
  const std::vector<obs::Event> ev = obs::ledger_events();
  ASSERT_EQ(ev.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  // Sequence numbers are dense, unique, and ordered: event i has seq i.
  for (std::size_t i = 0; i < ev.size(); ++i)
    ASSERT_EQ(ev[i].seq, i);
  // Per thread, payloads arrive in the order that thread emitted them.
  std::vector<std::int64_t> next(kThreads, 0);
  for (const obs::Event& e : ev) {
    ASSERT_GE(e.node, 0);
    ASSERT_LT(e.node, kThreads);
    EXPECT_EQ(e.a, next[static_cast<std::size_t>(e.node)]++);
  }
}

TEST_F(LedgerTest, JsonlRoundTripPreservesEveryField) {
  obs::Event e;
  e.seq = 42;
  e.t_ns = 1234567;
  e.kind = obs::EventKind::SubstituteReject;
  e.node = 9;
  e.divisor = 4;
  e.a = -3;
  e.b = 17;
  e.c = 1;
  e.reason = "max_node_cubes";
  const std::string line = obs::event_to_jsonl(e);
  obs::ParsedEvent p;
  ASSERT_TRUE(obs::ledger_parse_line(line, &p)) << line;
  EXPECT_EQ(p.event.seq, 42u);
  EXPECT_EQ(p.event.t_ns, 1234567);
  EXPECT_EQ(p.event.kind, obs::EventKind::SubstituteReject);
  EXPECT_EQ(p.event.node, 9);
  EXPECT_EQ(p.event.divisor, 4);
  EXPECT_EQ(p.event.a, -3);
  EXPECT_EQ(p.event.b, 17);
  EXPECT_EQ(p.event.c, 1);
  EXPECT_EQ(p.reason, "max_node_cubes");

  obs::ParsedEvent bad;
  EXPECT_FALSE(obs::ledger_parse_line("not json", &bad));
  EXPECT_FALSE(obs::ledger_parse_line("{\"kind\":\"nope\",\"seq\":0}", &bad));
}

Network intro_example() {
  Network net("intro");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId f = net.add_node(
      "f", {a, b, c}, Sop::from_strings({"10-", "1-1", "-10", "-01"}));
  const NodeId d =
      net.add_node("d", {a, b, c}, Sop::from_strings({"11-", "-01"}));
  net.add_po("f", f);
  net.add_po("d", d);
  return net;
}

TEST_F(LedgerTest, FileSessionStreamsParseableJsonl) {
  const std::string path = testing::TempDir() + "rarsub_ledger.jsonl";
  ASSERT_TRUE(obs::ledger_begin(path));

  Network net = intro_example();
  SubstituteOptions opts;
  opts.method = SubstMethod::Extended;
  const SubstituteStats st = substitute_network(net, opts);
  obs::ledger_end();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t lines = 0, commits = 0, updates = 0, attempts = 0;
  std::uint64_t expected_seq = 0;
  while (std::getline(in, line)) {
    obs::ParsedEvent p;
    ASSERT_TRUE(obs::ledger_parse_line(line, &p)) << line;
    EXPECT_EQ(p.event.seq, expected_seq++);
    ++lines;
    if (p.event.kind == obs::EventKind::SubstituteCommit) ++commits;
    if (p.event.kind == obs::EventKind::NodeUpdate) ++updates;
    if (p.event.kind == obs::EventKind::SubstituteAttempt) ++attempts;
  }
  EXPECT_GT(lines, 0u);
  EXPECT_GT(attempts, 0u);
  EXPECT_EQ(commits, static_cast<std::uint64_t>(st.substitutions));
  if (st.substitutions > 0) {
    EXPECT_GT(updates, 0u);
  }

  // The offline summarizer digests the same stream.
  std::ifstream again(path);
  const obs::LedgerSummary s = obs::summarize_ledger(again);
  EXPECT_EQ(s.total_events, lines);
  EXPECT_EQ(s.parse_errors, 0u);
  EXPECT_EQ(s.by_kind.at("substitute_attempt"), attempts);
}

Network random_network(std::mt19937& rng, int num_pis, int num_nodes) {
  Network net("rand");
  std::vector<NodeId> pool;
  for (int i = 0; i < num_pis; ++i)
    pool.push_back(net.add_pi("x" + std::to_string(i)));
  std::uniform_int_distribution<int> nfan(2, 4);
  std::uniform_int_distribution<int> ncube(1, 4);
  for (int i = 0; i < num_nodes; ++i) {
    const int k = std::min<int>(nfan(rng), static_cast<int>(pool.size()));
    std::vector<NodeId> fanins;
    while (static_cast<int>(fanins.size()) < k) {
      const NodeId cand = pool[rng() % pool.size()];
      if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
        fanins.push_back(cand);
    }
    Sop func(k);
    const int cubes = ncube(rng);
    for (int cidx = 0; cidx < cubes; ++cidx) {
      Cube c(k);
      for (int v = 0; v < k; ++v) {
        const int r = static_cast<int>(rng() % 3);
        if (r == 0) c.set_lit(v, Lit::Pos);
        if (r == 1) c.set_lit(v, Lit::Neg);
      }
      func.add_cube(c);
    }
    if (func.num_cubes() == 0) func = Sop::one(k);
    pool.push_back(net.add_node("n" + std::to_string(i), fanins, func));
  }
  for (int i = 0; i < 3; ++i)
    net.add_po("o" + std::to_string(i),
               pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
  return net;
}

// The replay contract: applying the recorded node_update stream to an
// empty model reproduces the final per-node factored literal counts
// exactly (new nodes enter at `a`, updates move b -> a, swept nodes drop
// to 0), so sum(a) over live nodes equals Network::factored_literals().
TEST_F(LedgerTest, ReplayReproducesPerNodeLiteralCounts) {
  std::mt19937 rng(2024);
  for (int iter = 0; iter < 6; ++iter) {
    ASSERT_TRUE(obs::ledger_begin_memory(1 << 16));
    Network net = random_network(rng, 5, 10);  // add_node events recorded
    SubstituteOptions opts;
    opts.method = (iter % 2) ? SubstMethod::Extended : SubstMethod::Basic;
    opts.try_pos = true;
    opts.max_passes = 2;
    substitute_network(net, opts);
    net.sweep();
    obs::ledger_end();
    ASSERT_EQ(obs::ledger_dropped(), 0u);

    std::map<std::int32_t, std::int64_t> replay;
    for (const obs::Event& e : obs::ledger_events())
      if (e.kind == obs::EventKind::NodeUpdate) replay[e.node] = e.a;

    std::int64_t total = 0;
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      const Node& nd = net.node(id);
      if (nd.is_pi) continue;
      const std::int64_t want =
          nd.alive ? factored_literal_count(nd.func) : 0;
      const auto it = replay.find(id);
      const std::int64_t got = it == replay.end() ? 0 : it->second;
      EXPECT_EQ(got, want) << "node " << id << " iter " << iter;
      if (nd.alive) total += want;
    }
    EXPECT_EQ(total, net.factored_literals()) << "iter " << iter;
  }
}

TEST_F(LedgerTest, SummaryAggregatesAndRenders) {
  auto mk = [](obs::EventKind k, std::int32_t node, std::int32_t divisor,
               std::int64_t a, std::int64_t b, const std::string& reason) {
    obs::ParsedEvent p;
    p.event.kind = k;
    p.event.node = node;
    p.event.divisor = divisor;
    p.event.a = a;
    p.event.b = b;
    p.reason = reason;
    return p;
  };
  std::vector<obs::ParsedEvent> ev;
  ev.push_back(mk(obs::EventKind::SubstituteAttempt, 5, 6, 4, 2, ""));
  ev.push_back(mk(obs::EventKind::SubstituteReject, 5, 7, 0, 0, "cycle"));
  ev.push_back(mk(obs::EventKind::SubstituteReject, 5, 8, 0, 0, "no_gain"));
  ev.push_back(mk(obs::EventKind::SubstituteReject, 6, 8, 0, 0, "no_gain"));
  ev.push_back(mk(obs::EventKind::SubstituteCommit, 5, 6, 3, 2, "sos"));
  ev.push_back(mk(obs::EventKind::SubstituteCommit, 9, 6, 2, 1, "pos"));
  ev.push_back(mk(obs::EventKind::NodeUpdate, 5, -1, 8, 11, ""));
  ev.push_back(mk(obs::EventKind::NodeUpdate, 5, -1, 6, 8, ""));
  ev.push_back(mk(obs::EventKind::WireAdd, 2, 3, 0, 0, ""));
  ev.push_back(mk(obs::EventKind::WireRemove, 2, 0, 0, 0, "pin"));
  ev.push_back(mk(obs::EventKind::RedundancyTest, 2, 0, 1, 0, ""));
  ev.push_back(mk(obs::EventKind::RedundancyTest, 2, 1, 0, 0, ""));

  const obs::LedgerSummary s = obs::summarize_events(ev);
  EXPECT_EQ(s.total_events, ev.size());
  EXPECT_EQ(s.by_kind.at("substitute_reject"), 3u);
  EXPECT_EQ(s.rejections.at("no_gain"), 2u);
  EXPECT_EQ(s.rejections.at("cycle"), 1u);
  ASSERT_TRUE(s.divisors.count(6));
  EXPECT_EQ(s.divisors.at(6).commits, 2);
  EXPECT_EQ(s.divisors.at(6).gain, 5);
  ASSERT_TRUE(s.nodes.count(5));
  EXPECT_EQ(s.nodes.at(5).first_literals, 11);
  EXPECT_EQ(s.nodes.at(5).last_literals, 6);
  EXPECT_EQ(s.nodes.at(5).updates, 2);
  EXPECT_EQ(s.wires_added, 1);
  EXPECT_EQ(s.wires_removed, 1);
  EXPECT_EQ(s.redundancy_tests, 2);
  EXPECT_EQ(s.redundancy_untestable, 1);

  const std::string text = obs::render_ledger_summary(s);
  EXPECT_NE(text.find("substitute_commit"), std::string::npos);
  EXPECT_NE(text.find("no_gain"), std::string::npos);
  EXPECT_NE(text.find("top divisors"), std::string::npos);
  EXPECT_NE(text.find("node 6"), std::string::npos) << text;
  EXPECT_NE(text.find("11 -> 6"), std::string::npos) << text;
}

}  // namespace
}  // namespace rarsub
