#include "obs/memstat.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "benchcir/suite.hpp"
#include "network/blif.hpp"
#include "obs/obs.hpp"
#include "opt/scripts.hpp"

namespace rarsub {
namespace {

const obs::MemPhaseSnap* find_phase(const obs::MemSnapshot& m,
                                    const std::string& name) {
  for (const obs::MemPhaseSnap& p : m.phases)
    if (p.phase == name) return &p;
  return nullptr;
}

// Every tracker test runs in its own process (gtest_discover_tests), so
// enabling tracking here cannot leak into another test's timings.
#define REQUIRE_HOOKS()                                            \
  do {                                                             \
    if (!obs::memstat_available())                                 \
      GTEST_SKIP() << "allocation hooks compiled out "             \
                      "(RARSUB_MEMSTAT_HOOKS=0 or sanitizer)";     \
  } while (0)

TEST(Memstat, PhaseAttributionIsExact) {
  REQUIRE_HOOKS();
  ASSERT_TRUE(obs::memstat_enable());
  constexpr int kAllocs = 10;
  constexpr std::size_t kSize = 1000;
  std::vector<char*> keep;
  keep.reserve(kAllocs);  // the vector's own buffer lands outside the phase
  obs::memstat_reset();
  {
    obs::PhaseScope phase("test.mem.exact");
    for (int i = 0; i < kAllocs; ++i) {
      char* p = new char[kSize];
      p[0] = static_cast<char>(i);  // escape so the allocation can't fold
      keep.push_back(p);
    }
  }
  const obs::MemSnapshot mid = obs::memstat_snapshot();
  const obs::MemPhaseSnap* ph = find_phase(mid, "test.mem.exact");
  ASSERT_NE(ph, nullptr);
  EXPECT_EQ(ph->allocs, kAllocs);
  EXPECT_EQ(ph->alloc_bytes, kAllocs * static_cast<std::int64_t>(kSize));
  EXPECT_EQ(ph->frees, 0);
  EXPECT_EQ(ph->live_bytes, kAllocs * static_cast<std::int64_t>(kSize));
  EXPECT_EQ(ph->peak_live_bytes, ph->live_bytes);

  // Frees outside the phase still credit the allocating phase.
  for (char* p : keep) delete[] p;
  const obs::MemSnapshot after = obs::memstat_snapshot();
  ph = find_phase(after, "test.mem.exact");
  ASSERT_NE(ph, nullptr);
  EXPECT_EQ(ph->frees, kAllocs);
  EXPECT_EQ(ph->freed_bytes, kAllocs * static_cast<std::int64_t>(kSize));
  EXPECT_EQ(ph->live_bytes, 0);
  EXPECT_EQ(ph->peak_live_bytes, kAllocs * static_cast<std::int64_t>(kSize));
  obs::memstat_disable();
}

TEST(Memstat, NestedPhasesAttributeToInnermost) {
  REQUIRE_HOOKS();
  ASSERT_TRUE(obs::memstat_enable());
  obs::memstat_reset();
  std::vector<char*> keep;
  keep.reserve(2);
  {
    obs::PhaseScope outer("test.mem.outer");
    keep.push_back(new char[100]);
    {
      obs::PhaseScope inner("test.mem.inner");
      keep.push_back(new char[200]);
      EXPECT_STREQ(obs::current_phase(), "test.mem.inner");
    }
    EXPECT_STREQ(obs::current_phase(), "test.mem.outer");
  }
  const obs::MemSnapshot m = obs::memstat_snapshot();
  const obs::MemPhaseSnap* outer = find_phase(m, "test.mem.outer");
  const obs::MemPhaseSnap* inner = find_phase(m, "test.mem.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->allocs, 1);
  EXPECT_EQ(outer->alloc_bytes, 100);
  EXPECT_EQ(inner->allocs, 1);
  EXPECT_EQ(inner->alloc_bytes, 200);
  for (char* p : keep) delete[] p;
  obs::memstat_disable();
}

TEST(Memstat, PhaseStackIsPerThread) {
  REQUIRE_HOOKS();
  ASSERT_TRUE(obs::memstat_enable());
  obs::memstat_reset();

  // Four workers, each in its own phase with a distinctive allocation
  // count/size; a per-thread TLS stack must keep them fully separate even
  // though they run concurrently.
  constexpr int kThreads = 4;
  static const char* kNames[kThreads] = {"test.mem.t0", "test.mem.t1",
                                         "test.mem.t2", "test.mem.t3"};
  std::vector<std::vector<char*>> keep(kThreads);
  std::vector<bool> phase_ok(kThreads, false);
  {
    obs::PhaseScope main_phase("test.mem.main");
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      keep[t].reserve(static_cast<std::size_t>((t + 1) * 50));
      pool.emplace_back([t, &keep, &phase_ok] {
        // A fresh thread starts outside every phase.
        bool ok = obs::current_phase() == nullptr;
        obs::PhaseScope phase(kNames[t]);
        ok = ok && std::strcmp(obs::current_phase(), kNames[t]) == 0;
        for (int i = 0; i < (t + 1) * 50; ++i) {
          char* p = new char[64];
          p[0] = static_cast<char>(t);
          keep[t].push_back(p);
        }
        phase_ok[t] = ok && obs::phase_depth() == 1;
      });
    }
    for (std::thread& th : pool) th.join();
    // The spawner's own stack is untouched by the workers.
    EXPECT_STREQ(obs::current_phase(), "test.mem.main");
  }
  const obs::MemSnapshot m = obs::memstat_snapshot();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(phase_ok[t]) << kNames[t];
    const obs::MemPhaseSnap* ph = find_phase(m, kNames[t]);
    ASSERT_NE(ph, nullptr) << kNames[t];
    EXPECT_EQ(ph->allocs, (t + 1) * 50) << kNames[t];
    EXPECT_EQ(ph->alloc_bytes, (t + 1) * 50 * 64) << kNames[t];
    for (char* p : keep[t]) delete[] p;
  }
  obs::memstat_disable();
}

TEST(Memstat, HooksOnOffGiveByteIdenticalResults) {
  // The tracker observes; it must never steer. Same workload with
  // tracking off and on has to produce the identical network.
  auto run = [] {
    Network net = build_benchmark("add8");
    script_a(net);
    run_resub(net, ResubMethod::Extended, ResubTuning{});
    return write_blif_string(net);
  };
  obs::memstat_disable();
  const std::string off = run();
  const bool enabled = obs::memstat_enable();
  const std::string on = run();
  obs::memstat_disable();
  if (obs::memstat_available()) EXPECT_TRUE(enabled);
  EXPECT_EQ(off, on);
}

TEST(Memstat, ResetOpensFreshWindowButCarriesLiveBytes) {
  REQUIRE_HOOKS();
  ASSERT_TRUE(obs::memstat_enable());
  obs::memstat_reset();
  char* p = nullptr;
  {
    obs::PhaseScope phase("test.mem.window");
    p = new char[512];
    p[0] = 1;
  }
  obs::MemSnapshot m = obs::memstat_snapshot();
  EXPECT_GE(m.allocs, 1);
  obs::memstat_reset();
  m = obs::memstat_snapshot();
  EXPECT_EQ(m.allocs, 0);
  EXPECT_EQ(m.alloc_bytes, 0);
  EXPECT_GE(m.live_bytes, 512);  // live survives the window boundary
  EXPECT_EQ(m.peak_live_bytes, m.live_bytes);
  delete[] p;
  obs::memstat_disable();
}

TEST(Memstat, FreesAfterDisableStayAccounted) {
  REQUIRE_HOOKS();
  ASSERT_TRUE(obs::memstat_enable());
  obs::memstat_reset();
  char* p = new char[256];
  p[0] = 1;
  const std::int64_t live_before = obs::memstat_snapshot().live_bytes;
  obs::memstat_disable();
  delete[] p;  // pointer was recorded while enabled: still resolves
  const obs::MemSnapshot m = obs::memstat_snapshot();
  EXPECT_LE(m.live_bytes, live_before - 256);
}

TEST(Memstat, ObsSnapshotPublishesMemCounters) {
  REQUIRE_HOOKS();
  ASSERT_TRUE(obs::memstat_enable());
  obs::reset();
  std::vector<char*> keep;
  keep.reserve(8);
  {
    obs::PhaseScope phase("test.mem.publish");
    for (int i = 0; i < 8; ++i) {
      keep.push_back(new char[128]);
      keep.back()[0] = 1;
    }
  }
  const obs::Snapshot s = obs::snapshot();
  EXPECT_GT(s.counter("mem.allocs"), 0);
  EXPECT_GT(s.counter("mem.alloc_bytes"), 0);
  EXPECT_GT(s.counter("mem.peak_live_bytes"), 0);
  EXPECT_EQ(s.counter("mem.phase.test.mem.publish.allocs"), 8);
  EXPECT_EQ(s.counter("mem.phase.test.mem.publish.alloc_bytes"), 8 * 128);
  for (char* p : keep) delete[] p;
  obs::memstat_disable();
}

TEST(Memstat, RssSamplerReadsProc) {
  const std::int64_t rss = obs::read_rss_kb();
  const std::int64_t peak = obs::read_peak_rss_kb();
  if (rss < 0) GTEST_SKIP() << "/proc/self/status not available";
  EXPECT_GT(rss, 0);
  EXPECT_GE(peak, rss);  // VmHWM is the high-water mark of VmRSS
}

TEST(Memstat, SummaryLineWorksWithTrackingOff) {
  obs::memstat_disable();
  const std::string line = obs::render_mem_summary();
  EXPECT_NE(line.find("mem:"), std::string::npos);
  if (obs::read_rss_kb() >= 0)
    EXPECT_NE(line.find("peak_rss="), std::string::npos);
  EXPECT_NE(line.find("tracking off"), std::string::npos);
}

TEST(Memstat, SummaryLineListsTopPhasesWhenTracking) {
  REQUIRE_HOOKS();
  ASSERT_TRUE(obs::memstat_enable());
  obs::memstat_reset();
  std::vector<char*> keep;
  keep.reserve(4);
  {
    obs::PhaseScope phase("test.mem.top");
    for (int i = 0; i < 4; ++i) {
      keep.push_back(new char[4096]);
      keep.back()[0] = 1;
    }
  }
  const std::string line = obs::render_mem_summary();
  EXPECT_NE(line.find("allocs="), std::string::npos);
  EXPECT_NE(line.find("top: "), std::string::npos);
  EXPECT_NE(line.find("test.mem.top"), std::string::npos);
  for (char* p : keep) delete[] p;
  obs::memstat_disable();
}

TEST(Memstat, ScopedTimerMaintainsPhaseStack) {
  EXPECT_EQ(obs::current_phase(), nullptr);
  {
    OBS_SCOPED_TIMER("test.mem.timer_phase");
    EXPECT_STREQ(obs::current_phase(), "test.mem.timer_phase");
    EXPECT_EQ(obs::phase_depth(), 1);
  }
  EXPECT_EQ(obs::current_phase(), nullptr);
  EXPECT_EQ(obs::phase_depth(), 0);
}

TEST(Memstat, PhaseStackOverflowStaysBalanced) {
  // Deeper than the fixed TLS capacity: extra levels are counted but not
  // stored, and unwinding restores the stack exactly.
  constexpr int kDeep = 200;
  for (int i = 0; i < kDeep; ++i) obs::phase_push("test.mem.deep");
  EXPECT_EQ(obs::phase_depth(), kDeep);
  EXPECT_STREQ(obs::current_phase(), "test.mem.deep");
  for (int i = 0; i < kDeep; ++i) obs::phase_pop();
  EXPECT_EQ(obs::phase_depth(), 0);
  EXPECT_EQ(obs::current_phase(), nullptr);
}

}  // namespace
}  // namespace rarsub
