// Cross-cutting coverage: bit-parallel simulation consistency, wide
// (multi-word) covers, the verification module's random path, and factored
// form rendering.

#include <gtest/gtest.h>

#include <random>

#include "benchcir/classics.hpp"
#include "network/simulate.hpp"
#include "sop/factor.hpp"
#include "test_util.hpp"
#include "verify/equivalence.hpp"

namespace rarsub {
namespace {

using testutil::random_sop;

TEST(Simulate, Parallel64MatchesScalar) {
  Network net = make_alu_slice(3);
  std::mt19937_64 rng(3);
  std::vector<std::uint64_t> words(net.pis().size());
  for (auto& w : words) w = rng();
  const auto par = simulate64(net, words);
  for (int bit = 0; bit < 64; bit += 7) {
    std::uint64_t assignment = 0;
    for (std::size_t i = 0; i < words.size(); ++i)
      if ((words[i] >> bit) & 1) assignment |= 1ULL << i;
    const auto scalar = simulate1(net, assignment);
    for (std::size_t o = 0; o < par.size(); ++o)
      EXPECT_EQ(((par[o] >> bit) & 1) != 0, scalar[o]) << "bit " << bit;
  }
}

TEST(WideCovers, OperationsAcrossWordBoundaries) {
  // 70-variable covers exercise the multi-word cube paths end to end.
  Sop f(70), g(70);
  Cube a(70), b(70), c(70);
  a.set_lit(0, Lit::Pos);
  a.set_lit(40, Lit::Neg);
  b.set_lit(40, Lit::Neg);
  b.set_lit(69, Lit::Pos);
  c.set_lit(69, Lit::Pos);
  f.add_cube(a);
  f.add_cube(b);
  g.add_cube(c);

  EXPECT_EQ(f.num_literals(), 4);
  EXPECT_TRUE(g.scc_contains(b));   // x69 alone contains x40'·x69
  EXPECT_FALSE(g.scc_contains(a));  // but not the x0·x40' cube
  EXPECT_TRUE(g.cube(0).contains(b));
  const Sop h = f.boolean_and(g);
  for (const Cube& x : h.cubes()) EXPECT_EQ(x.lit(69), Lit::Pos);
  EXPECT_FALSE(f.is_tautology());

  // Algebraic ops.
  EXPECT_TRUE(b.has_all_literals_of(c));
  EXPECT_EQ(b.remove_literals_of(c).lit(69), Lit::Absent);
  EXPECT_EQ(b.remove_literals_of(c).lit(40), Lit::Neg);
}

TEST(WideCovers, FactoredCountOnWideFunctions) {
  Sop f(70);
  for (int i = 0; i < 5; ++i) {
    Cube c(70);
    c.set_lit(0, Lit::Pos);
    c.set_lit(10 + i * 12, Lit::Pos);
    f.add_cube(c);
  }
  // f = x0 * (a + b + c + d + e): 6 literals factored, 10 flat.
  EXPECT_EQ(f.num_literals(), 10);
  EXPECT_EQ(factored_literal_count(f), 6);
}

TEST(Verify, RandomPathOnWideCircuits) {
  // 16 PIs: past the exhaustive limit, the checker switches to random
  // rounds and reports so.
  Network a = make_parity(16);
  Network b = make_parity(16);
  const EquivalenceResult eq = check_equivalence(a, b);
  EXPECT_TRUE(eq.equivalent);
  EXPECT_NE(eq.message.find("random"), std::string::npos);

  // Break one node and expect detection.
  const NodeId n = b.topo_order().front();
  b.set_function(n, {b.fanins(n).begin(), b.fanins(n).end()},
                 Sop::from_strings({"11"}));
  const EquivalenceResult neq = check_equivalence(a, b);
  EXPECT_FALSE(neq.equivalent);
}

TEST(Factor, RenderingCoversAllNodeKinds) {
  const Sop f = Sop::from_strings({"11--", "--10"});
  const auto tree = quick_factor(f);
  const std::string s = factor_to_string(*tree, {"a", "b", "c", "d"});
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);
  EXPECT_NE(s.find('\''), std::string::npos);  // the d' literal

  FactorNode c0;
  c0.kind = FactorNode::Kind::Const0;
  EXPECT_EQ(factor_to_string(c0, {}), "0");
  FactorNode c1;
  c1.kind = FactorNode::Kind::Const1;
  EXPECT_EQ(factor_to_string(c1, {}), "1");
}

TEST(FactorProperty, CountIsInvariantUnderCubePermutation) {
  std::mt19937 rng(443);
  for (int iter = 0; iter < 40; ++iter) {
    Sop f = random_sop(rng, 6, 6, 0.5);
    if (f.num_cubes() < 2) continue;
    const int before = factored_literal_count(f);
    std::reverse(f.cubes().begin(), f.cubes().end());
    // Quick-factor is heuristic; permutation may change the tree but the
    // function is identical, so a sanity band applies.
    const int after = factored_literal_count(f);
    EXPECT_LE(std::abs(before - after), std::max(2, before / 2))
        << f.to_string();
  }
}

TEST(Network, FreshNameAvoidsCollisions) {
  Network net("n");
  const NodeId a = net.add_pi("a");
  net.add_node("tmp0", {a}, Sop::from_strings({"1"}));
  const std::string fresh = net.fresh_name("tmp");
  EXPECT_NE(fresh, "tmp0");
  EXPECT_EQ(net.find_node(fresh), kNoNode);
}

TEST(Network, CheckRejectsDuplicateFaninsIfForced) {
  // The public API dedups, so build a pathological node and confirm
  // check() would flag raw duplicates.
  Network net("d");
  const NodeId a = net.add_pi("a");
  const NodeId g = net.add_node("g", {a, a}, Sop::from_strings({"11"}));
  // add_node canonicalized it:
  EXPECT_EQ(net.node(g).fanins.size(), 1u);
  EXPECT_EQ(net.node(g).func.num_vars(), 1);
  EXPECT_TRUE(net.check());
}

TEST(Network, DedupMergesClashingPolarities) {
  Network net("d2");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  // g = a & !a & b == 0 after canonicalization.
  const NodeId g = net.add_node("g", {a, a, b}, Sop::from_strings({"101"}));
  EXPECT_TRUE(net.node(g).func.is_zero());
}

}  // namespace
}  // namespace rarsub
