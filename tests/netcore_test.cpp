// Flat network-core storage: adjacency-pool freelist recycling, the
// offset+count integrity leg of Network::check(), span non-aliasing under
// range recycling, interned-name lookup semantics, and the journal-stamped
// topo_order cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "sop/sop.hpp"

namespace rarsub {
namespace {

Sop and2() { return Sop::from_strings({"11"}); }
Sop or2() { return Sop::from_strings({"1-", "-1"}); }
Sop buf1() { return Sop::from_strings({"1"}); }

// A small base network whose PIs the churn tests build on top of.
Network base_net(int num_pis) {
  Network net("netcore");
  for (int i = 0; i < num_pis; ++i) net.add_pi("pi" + std::to_string(i));
  return net;
}

std::vector<NodeId> snapshot_fanins(const Network& net, NodeId id) {
  const auto fi = net.fanins(id);
  return {fi.begin(), fi.end()};
}

TEST(NetCore, PoolStatsAccountForEverySlot) {
  Network net = base_net(6);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 20; ++i) {
    const NodeId a = net.pis()[static_cast<std::size_t>(i % 6)];
    const NodeId b = net.pis()[static_cast<std::size_t>((i + 1) % 6)];
    nodes.push_back(net.add_node("n" + std::to_string(i), {a, b}, and2()));
    const auto s = net.pool_stats();
    EXPECT_EQ(s.live_slots + s.free_slots, s.pool_slots);
    EXPECT_TRUE(net.check());
  }
  // Retire half of them and re-check the accounting after recycling.
  for (std::size_t i = 0; i < nodes.size(); i += 2) net.add_po("z" + std::to_string(i), nodes[i]);
  net.sweep();
  const auto s = net.pool_stats();
  EXPECT_EQ(s.live_slots + s.free_slots, s.pool_slots);
  EXPECT_GT(s.free_slots, 0u);  // the dead nodes' ranges went to freelists
  EXPECT_TRUE(net.check());
}

TEST(NetCore, KillReaddChurnIsBounded) {
  Network net = base_net(8);
  // Persistent consumer so the network never becomes empty.
  const NodeId keep =
      net.add_node("keep", {net.pis()[0], net.pis()[1]}, or2());
  net.add_po("z", keep);

  std::size_t high_water = 0;
  for (int round = 0; round < 50; ++round) {
    // Grow a disposable two-level cone...
    std::vector<NodeId> layer;
    for (int i = 0; i < 8; ++i) {
      const NodeId a = net.pis()[static_cast<std::size_t>(i)];
      const NodeId b = net.pis()[static_cast<std::size_t>((i + 3) % 8)];
      layer.push_back(
          net.add_node("t" + std::to_string(round) + "_" + std::to_string(i),
                       {a, b}, and2()));
    }
    for (int i = 0; i < 4; ++i)
      net.add_node("u" + std::to_string(round) + "_" + std::to_string(i),
                   {layer[static_cast<std::size_t>(2 * i)],
                    layer[static_cast<std::size_t>(2 * i + 1)]},
                   or2());
    // ...then drop it: nothing references the cone, sweep reclaims it.
    net.sweep();
    const auto s = net.pool_stats();
    EXPECT_EQ(s.live_slots + s.free_slots, s.pool_slots);
    EXPECT_TRUE(net.check());
    if (round == 4) high_water = s.pool_slots;
    // After a warm-up the freelists satisfy every allocation of the next
    // round: the pool must stop growing.
    if (round > 4) {
      EXPECT_EQ(s.pool_slots, high_water) << "round " << round;
    }
  }
}

TEST(NetCore, RecycledRangesNeverAliasLiveSpans) {
  Network net = base_net(8);
  const NodeId stable = net.add_node(
      "stable", {net.pis()[0], net.pis()[1], net.pis()[2], net.pis()[3]},
      Sop::from_strings({"1111"}));
  net.add_po("z", stable);
  const std::vector<NodeId> stable_before = snapshot_fanins(net, stable);

  // Churn ranges of every size class around the stable node. If a
  // recycled range overlapped the stable node's live range, its fanin
  // contents would be overwritten.
  for (int round = 0; round < 30; ++round) {
    std::vector<NodeId> fi;
    for (int i = 0; i <= round % 7; ++i)
      fi.push_back(net.pis()[static_cast<std::size_t>(i)]);
    net.add_node("tmp" + std::to_string(round), fi,
                 Sop::one(static_cast<int>(fi.size())));
    net.sweep();
    EXPECT_EQ(snapshot_fanins(net, stable), stable_before) << "round " << round;
    EXPECT_TRUE(net.check());
  }
}

TEST(NetCore, CheckValidatesOffsetCountIntegrityUnderMutation) {
  Network net = base_net(5);
  const NodeId a = net.add_node("a", {net.pis()[0], net.pis()[1]}, and2());
  const NodeId b = net.add_node("b", {a, net.pis()[2]}, or2());
  net.add_po("z", b);
  ASSERT_TRUE(net.check());
  // Grow and shrink one node's fanin range through several size classes;
  // every intermediate state must keep the pool bookkeeping consistent.
  for (int n = 1; n <= 5; ++n) {
    std::vector<NodeId> fi(net.pis().begin(),
                           net.pis().begin() + n);
    net.set_function(a, std::move(fi), Sop::one(n));
    ASSERT_TRUE(net.check()) << "grow to " << n;
  }
  for (int n = 5; n >= 1; --n) {
    std::vector<NodeId> fi(net.pis().begin(), net.pis().begin() + n);
    net.set_function(a, std::move(fi), Sop::one(n));
    ASSERT_TRUE(net.check()) << "shrink to " << n;
  }
}

TEST(NetCore, SetFanoutOrderSurvivesRecycling) {
  // Fanout iteration order is observable (sweep, collapse, gate views):
  // the flat erase must preserve the legacy vector-erase order.
  Network net = base_net(1);
  const NodeId pi = net.pis()[0];
  std::vector<NodeId> sinks;
  for (int i = 0; i < 6; ++i)
    sinks.push_back(net.add_node("s" + std::to_string(i), {pi}, buf1()));
  for (int i = 0; i < 6; ++i) net.add_po("z" + std::to_string(i), sinks[static_cast<std::size_t>(i)]);
  // Detach s2 (retarget it to s0): pi's fanout list drops s2 in place.
  net.set_function(sinks[2], {sinks[0]}, buf1());
  const auto fo = net.fanouts(pi);
  const std::vector<NodeId> expect{sinks[0], sinks[1], sinks[3],
                                   sinks[4], sinks[5]};
  EXPECT_TRUE(std::equal(fo.begin(), fo.end(), expect.begin(), expect.end()));
  EXPECT_TRUE(net.check());
}

TEST(NetCore, FindNodeReturnsFirstAliveAmongDuplicateNames) {
  Network net = base_net(2);
  const NodeId first = net.add_node("dup", {net.pis()[0]}, buf1());
  EXPECT_EQ(net.find_node("dup"), first);
  net.sweep();  // kills `dup`: nothing references it
  EXPECT_FALSE(net.alive(first));
  EXPECT_EQ(net.find_node("dup"), kNoNode);
  const NodeId second = net.add_node("dup", {net.pis()[1]}, buf1());
  net.add_po("z", second);
  EXPECT_EQ(net.find_node("dup"), second);
  EXPECT_EQ(net.find_node("nonexistent"), kNoNode);
}

TEST(NetCore, FreshNameProbesInternedIndex) {
  Network net = base_net(1);
  const NodeId taken = net.add_node("g0", {net.pis()[0]}, buf1());
  net.add_po("z", taken);
  const std::string fresh = net.fresh_name("g");
  EXPECT_EQ(fresh, "g1");  // g0 exists; the probe must skip it
  EXPECT_EQ(net.find_node(fresh), kNoNode);
}

TEST(NetCore, TopoCacheTracksJournalStamp) {
  Network net = base_net(3);
  const NodeId a = net.add_node("a", {net.pis()[0], net.pis()[1]}, and2());
  const NodeId b = net.add_node("b", {a, net.pis()[2]}, or2());
  net.add_po("z", b);
  const std::vector<NodeId> o1 = net.topo_order();
  const std::vector<NodeId> o2 = net.topo_order();  // cache hit
  EXPECT_EQ(o1, o2);
  const auto view = net.topo_view();
  EXPECT_TRUE(std::equal(view.begin(), view.end(), o1.begin(), o1.end()));
  // A mutation moves the journal; the next order reflects the new graph.
  const NodeId c = net.add_node("c", {b}, buf1());
  net.add_po("z2", c);
  const std::vector<NodeId> o3 = net.topo_order();
  EXPECT_EQ(o3.size(), o1.size() + 1);
  EXPECT_NE(std::find(o3.begin(), o3.end(), c), o3.end());
}

TEST(NetCore, CopiedNetworkHasIndependentStorage) {
  Network net = base_net(2);
  const NodeId a = net.add_node("a", {net.pis()[0], net.pis()[1]}, and2());
  net.add_po("z", a);
  (void)net.topo_order();  // warm the cache so the copy inherits it

  Network copy = net;
  EXPECT_TRUE(copy.check());
  EXPECT_EQ(copy.find_node("a"), a);
  EXPECT_EQ(copy.node_name(a), net.node_name(a));
  // Views of the copy must not alias the original's arenas.
  EXPECT_NE(copy.node_name(a).data(), net.node_name(a).data());
  EXPECT_NE(copy.fanins(a).data(), net.fanins(a).data());
  // Diverge the copy; the original is untouched.
  copy.set_function(a, {copy.pis()[0]}, buf1());
  EXPECT_EQ(net.fanins(a).size(), 2u);
  EXPECT_EQ(copy.fanins(a).size(), 1u);
  EXPECT_TRUE(net.check());
  EXPECT_TRUE(copy.check());
}

TEST(NetCore, NodeViewMatchesDirectAccessors) {
  Network net = base_net(2);
  const NodeId a = net.add_node("a", {net.pis()[0], net.pis()[1]}, and2());
  net.add_po("z", a);
  const Node nd = net.node(a);
  EXPECT_EQ(nd.name, net.node_name(a));
  EXPECT_EQ(nd.is_pi, net.is_pi(a));
  EXPECT_EQ(nd.alive, net.alive(a));
  EXPECT_EQ(nd.version, net.version(a));
  EXPECT_EQ(nd.fanins.data(), net.fanins(a).data());
  EXPECT_EQ(nd.fanouts.data(), net.fanouts(a).data());
  EXPECT_EQ(&nd.func, &net.func(a));
}

}  // namespace
}  // namespace rarsub
