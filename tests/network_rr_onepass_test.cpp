// The one-pass redundancy remover (Teslenko & Dubrova heuristic) claims
// byte-identical results to the legacy per-wire loop — the legacy loop is
// kept precisely as this oracle. Three angles:
//   1. network-level byte equality (BLIF text) on the small benchmark
//      suite and on fuzzed networks, across polarity/learning variants;
//   2. the persistent FaultAnalyzer against from-scratch analyze_fault
//      verdicts while removals mutate the net under it (the
//      journal-incremental implication state);
//   3. a planted-redundancy circuit where the one-pass must remove every
//      known-redundant wire.
#include <gtest/gtest.h>

#include <random>

#include "atpg/fault.hpp"
#include "benchcir/suite.hpp"
#include "fuzz/gen.hpp"
#include "gatenet/build.hpp"
#include "network/blif.hpp"
#include "opt/scripts.hpp"
#include "rar/network_rr.hpp"
#include "rar/redundancy.hpp"
#include "verify/equivalence.hpp"

namespace rarsub {
namespace {

NetworkRrOptions variant(bool both, int depth, bool one_pass) {
  NetworkRrOptions o;
  o.both_polarities = both;
  o.learning_depth = depth;
  o.one_pass = one_pass;
  return o;
}

void expect_byte_equal(const Network& prepared, bool both, int depth,
                       const std::string& tag) {
  Network fast = prepared;
  Network slow = prepared;
  const NetworkRrStats sf =
      network_redundancy_removal(fast, variant(both, depth, true));
  const NetworkRrStats ss =
      network_redundancy_removal(slow, variant(both, depth, false));
  EXPECT_EQ(sf.wires_removed, ss.wires_removed) << tag;
  EXPECT_EQ(write_blif_string(fast), write_blif_string(slow)) << tag;
}

TEST(NetworkRrOnepass, SmallSuiteByteEquality) {
  for (const BenchmarkEntry& e : benchmark_suite_small()) {
    Network prepared = e.build();
    script_a(prepared);
    expect_byte_equal(prepared, true, 0, e.name);
    expect_byte_equal(prepared, false, 0, e.name + "/pin-only");
    expect_byte_equal(prepared, true, 1, e.name + "/learning");
  }
}

TEST(NetworkRrOnepass, FuzzedNetworksByteEquality) {
  std::mt19937_64 rng(20260807);
  for (int iter = 0; iter < 40; ++iter) {
    Network net = fuzz::random_network(rng);
    const bool both = iter % 2 == 0;
    const int depth = iter % 5 == 0 ? 1 : 0;
    expect_byte_equal(net, both, depth,
                      "iter " + std::to_string(iter));
  }
}

TEST(NetworkRrOnepass, SoundOnBenchmarks) {
  for (const char* name : {"alu4", "add8", "syn_c432"}) {
    Network net = build_benchmark(name);
    const Network before = net;
    network_redundancy_removal(net);
    EXPECT_TRUE(net.check()) << name;
    EXPECT_TRUE(check_equivalence(before, net).equivalent) << name;
  }
}

// The FaultAnalyzer must return analyze_fault's verdict for every wire at
// every point of a removal sequence — its structures are invalidated and
// its engine re-based through the journal hooks, never rebuilt by hand.
TEST(NetworkRrOnepass, AnalyzerMatchesFromScratchOracleAcrossRemovals) {
  std::mt19937_64 rng(4811);
  for (int iter = 0; iter < 12; ++iter) {
    Network net = fuzz::random_network(rng);
    GateNetMap map;
    GateNet gn = build_gatenet(net, map);
    FaultAnalyzer fa(gn);
    for (int round = 0; round < 6; ++round) {
      int removable = -1;
      bool removable_stuck = false;
      for (int g = 0; g < gn.num_gates(); ++g) {
        const Gate& gd = gn.gate(g);
        if (gd.type != GateType::And && gd.type != GateType::Or) continue;
        for (int p = 0; p < static_cast<int>(gd.fanins.size()); ++p) {
          const WireRef w{g, p};
          for (bool stuck : {removal_stuck_value(gd.type),
                             !removal_stuck_value(gd.type)}) {
            const bool expect = analyze_fault(gn, w, stuck).untestable;
            ASSERT_EQ(fa.untestable(w, stuck), expect)
                << "iter " << iter << " round " << round << " gate " << g
                << " pin " << p << " stuck " << stuck;
            if (expect && removable < 0) {
              removable = g;
              removable_stuck = stuck;
            }
          }
        }
      }
      if (removable < 0) break;
      // Apply one proven-redundant mutation and notify the analyzer, the
      // way the one-pass sweep does.
      const Gate& gd = gn.gate(removable);
      if (removable_stuck == removal_stuck_value(gd.type)) {
        const int src = gd.fanins[0].gate;
        gn.remove_fanin(WireRef{removable, 0});
        fa.note_remove_fanin(removable, src);
      } else {
        const std::vector<Signal> former = gd.fanins;
        gn.make_const(removable, gd.type == GateType::Or);
        fa.note_make_const(removable, former);
      }
    }
  }
}

TEST(NetworkRrOnepass, PlantedRedundanciesAllRemoved) {
  // f = a·b + a·b' + a·c == a: the b pin, the b' pin and the whole third
  // cube's c pin are redundant; the one-pass must strip the function down
  // to a single-literal cover.
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int c = gn.add_pi("c");
  const int c1 = gn.add_gate(GateType::And, {{a, false}, {b, false}});
  const int c2 = gn.add_gate(GateType::And, {{a, false}, {b, true}});
  const int c3 = gn.add_gate(GateType::And, {{a, false}, {c, false}});
  const int f = gn.add_gate(
      GateType::Or, {{c1, false}, {c2, false}, {c3, false}});
  gn.add_output(f);

  RemoveOptions opts;
  opts.one_pass = true;
  opts.both_polarities = true;
  const int removed = remove_all_redundancies(gn, opts);
  EXPECT_GE(removed, 3);
  // Every surviving cube gate must be the bare literal a; f == a.
  std::vector<std::uint64_t> pis(3);
  pis[0] = 0xF0F0F0F0F0F0F0F0ULL;
  pis[1] = 0xCCCCCCCCCCCCCCCCULL;
  pis[2] = 0xAAAAAAAAAAAAAAAAULL;
  const auto vals = gn.eval64(pis);
  EXPECT_EQ(vals[static_cast<std::size_t>(f)], pis[0]);
  for (int cube : {c1, c2, c3}) {
    const Gate& gd = gn.gate(cube);
    for (const Signal& s : gd.fanins) EXPECT_EQ(s.gate, a);
  }
}

// A removal that empties a gate must re-base the persistent engine: the
// emptied AND is constant 1 from then on, which a later fault analysis
// relies on. Exercised explicitly because it is the journal patch with
// the subtlest semantics.
TEST(NetworkRrOnepass, EmptiedGateRebasesEngine) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int u = gn.add_gate(GateType::And, {{a, false}});
  const int f = gn.add_gate(GateType::And, {{u, false}, {b, false}});
  gn.add_output(f);

  FaultAnalyzer fa(gn);
  // Force the baseline structures to exist.
  (void)fa.untestable(WireRef{f, 1}, removal_stuck_value(GateType::And));
  // Empty u by hand (not redundant — this is a state test, not a sweep).
  gn.remove_fanin(WireRef{u, 0});
  fa.note_remove_fanin(u, a);
  for (int g : {f}) {
    const Gate& gd = gn.gate(g);
    for (int p = 0; p < static_cast<int>(gd.fanins.size()); ++p)
      for (bool stuck : {false, true})
        EXPECT_EQ(fa.untestable(WireRef{g, p}, stuck),
                  analyze_fault(gn, WireRef{g, p}, stuck).untestable)
            << "pin " << p << " stuck " << stuck;
  }
}

}  // namespace
}  // namespace rarsub
