#include "rar/network_rr.hpp"

#include <gtest/gtest.h>

#include <random>

#include "benchcir/classics.hpp"
#include "benchcir/suite.hpp"
#include "test_util.hpp"
#include "verify/equivalence.hpp"

namespace rarsub {
namespace {

using testutil::random_sop;

TEST(NetworkRr, RemovesConsensusCube) {
  Network net("rr");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  // f = ab + a'c + bc: the consensus cube bc is redundant.
  const NodeId f = net.add_node(
      "f", {a, b, c}, Sop::from_strings({"11-", "0-1", "-11"}));
  net.add_po("f", f);
  const Network before = net;
  const NetworkRrStats st = network_redundancy_removal(net);
  EXPECT_GE(st.wires_removed, 1);
  EXPECT_LT(st.literals_after, st.literals_before);
  EXPECT_TRUE(net.check());
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
  EXPECT_EQ(net.node(net.find_node("f")).func.num_cubes(), 2);
}

TEST(NetworkRr, ExploitsUnobservability) {
  // u = a&b and f = u&a: the a literal in f is redundant (u=1 implies a=1).
  Network net("obs");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId u = net.add_node("u", {a, b}, Sop::from_strings({"11"}));
  const NodeId f = net.add_node("f", {u, a}, Sop::from_strings({"11"}));
  net.add_po("f", f);
  net.add_po("u", u);
  const Network before = net;
  const NetworkRrStats st = network_redundancy_removal(net);
  EXPECT_GE(st.wires_removed, 1);
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
  const NodeId f2 = net.find_node("f");
  EXPECT_EQ(net.node(f2).func.num_literals(), 1);  // f == u
}

TEST(NetworkRr, IrredundantNetworkUntouched) {
  Network net = make_c17();
  const int lits = net.factored_literals();
  const NetworkRrStats st = network_redundancy_removal(net);
  EXPECT_EQ(st.wires_removed, 0);
  EXPECT_EQ(net.factored_literals(), lits);
}

TEST(NetworkRr, PropertyPreservesPOs) {
  std::mt19937 rng(421);
  for (int iter = 0; iter < 10; ++iter) {
    Network net("p");
    std::vector<NodeId> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(net.add_pi("x" + std::to_string(i)));
    for (int i = 0; i < 10; ++i) {
      const int k = 2 + static_cast<int>(rng() % 3);
      std::vector<NodeId> fanins;
      while (static_cast<int>(fanins.size()) < k) {
        const NodeId cand = pool[rng() % pool.size()];
        if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
          fanins.push_back(cand);
      }
      Sop func = random_sop(rng, k, 3, 0.55);
      if (func.num_cubes() == 0) func = Sop::one(k);
      pool.push_back(net.add_node("n" + std::to_string(i), fanins, func));
    }
    net.add_po("o0", pool.back());
    net.add_po("o1", pool[pool.size() - 2]);
    const Network before = net;
    NetworkRrOptions opts;
    opts.both_polarities = (iter % 2) == 0;
    opts.learning_depth = (iter % 3) == 0 ? 1 : 0;
    const NetworkRrStats st = network_redundancy_removal(net, opts);
    EXPECT_LE(st.literals_after, st.literals_before);
    ASSERT_TRUE(net.check());
    EXPECT_TRUE(check_equivalence(before, net).equivalent) << iter;
  }
}

TEST(NetworkRr, BenchmarkCircuitsSound) {
  for (const char* name : {"alu4", "add8", "syn_c432"}) {
    Network net = build_benchmark(name);
    const Network before = net;
    const NetworkRrStats st = network_redundancy_removal(net);
    EXPECT_LE(st.literals_after, st.literals_before);
    EXPECT_TRUE(check_equivalence(before, net).equivalent) << name;
  }
}

}  // namespace
}  // namespace rarsub
