#include "network/network.hpp"

#include <gtest/gtest.h>

#include "network/blif.hpp"
#include "network/simulate.hpp"
#include "test_util.hpp"

namespace rarsub {
namespace {

// A small two-level network: g = a&b, h = g | c, POs: h.
Network make_small() {
  Network net("small");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId g = net.add_node("g", {a, b}, Sop::from_strings({"11"}));
  const NodeId h = net.add_node("h", {g, c}, Sop::from_strings({"1-", "-1"}));
  net.add_po("h", h);
  return net;
}

std::vector<bool> po_truth_table(const Network& net) {
  std::vector<bool> tt;
  const std::size_t n = net.pis().size();
  for (std::uint64_t a = 0; a < (1ULL << n); ++a) {
    const auto out = simulate1(net, a);
    for (bool b : out) tt.push_back(b);
  }
  return tt;
}

TEST(Network, BuildAndQuery) {
  Network net = make_small();
  EXPECT_TRUE(net.check());
  EXPECT_EQ(net.pis().size(), 3u);
  EXPECT_EQ(net.pos().size(), 1u);
  const NodeId g = net.find_node("g");
  ASSERT_NE(g, kNoNode);
  EXPECT_EQ(net.fanout_refs(g), 1);
  const NodeId h = net.find_node("h");
  EXPECT_EQ(net.num_po_refs(h), 1);
  EXPECT_TRUE(net.depends_on(h, g));
  EXPECT_FALSE(net.depends_on(g, h));
}

TEST(Network, TopoOrderRespectsDependencies) {
  Network net = make_small();
  const auto order = net.topo_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(net.node(order[0]).name, "g");
  EXPECT_EQ(net.node(order[1]).name, "h");
}

TEST(Network, SimulationMatchesSemantics) {
  Network net = make_small();
  // h = ab + c.
  for (std::uint64_t a = 0; a < 8; ++a) {
    const bool expect = (((a & 1) && (a & 2)) || (a & 4));
    EXPECT_EQ(simulate1(net, a)[0], expect) << a;
  }
}

TEST(Network, LiteralCounts) {
  Network net = make_small();
  EXPECT_EQ(net.sop_literals(), 4);
  EXPECT_EQ(net.factored_literals(), 4);
}

TEST(Network, SetFunctionRewiresFanouts) {
  Network net = make_small();
  const NodeId h = net.find_node("h");
  const NodeId a = net.pis()[0];
  const NodeId c = net.pis()[2];
  net.set_function(h, {a, c}, Sop::from_strings({"11"}));
  EXPECT_TRUE(net.check());
  const NodeId g = net.find_node("g");
  EXPECT_EQ(net.fanout_refs(g), 0);
}

TEST(Network, ComposeCollapsesInnerIntoOuter) {
  Network net = make_small();
  const auto before = po_truth_table(net);
  const NodeId g = net.find_node("g");
  const NodeId h = net.find_node("h");
  ASSERT_TRUE(net.compose(h, g));
  EXPECT_TRUE(net.check());
  EXPECT_EQ(po_truth_table(net), before);
  // h no longer references g.
  for (NodeId f : net.node(h).fanins) EXPECT_NE(f, g);
}

TEST(Network, ComposeHandlesNegativeLiteral) {
  Network net("neg");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId g = net.add_node("g", {a, b}, Sop::from_strings({"11"}));
  // h = !g.
  const NodeId h = net.add_node("h", {g}, Sop::from_strings({"0"}));
  net.add_po("h", h);
  const auto before = po_truth_table(net);
  ASSERT_TRUE(net.compose(h, g));
  EXPECT_EQ(po_truth_table(net), before);  // h = !(ab) = a' + b'
  EXPECT_TRUE(net.check());
}

TEST(Network, SweepRemovesDeadAndConstants) {
  Network net = make_small();
  // Add a dead node and a constant node feeding h'.
  const NodeId a = net.pis()[0];
  net.add_node("dead", {a}, Sop::from_strings({"1"}));
  const auto before = po_truth_table(net);
  net.sweep();
  EXPECT_EQ(net.find_node("dead"), kNoNode);
  EXPECT_EQ(po_truth_table(net), before);
  EXPECT_TRUE(net.check());
}

TEST(Network, EliminateCollapsesSingleFanout) {
  Network net = make_small();
  const auto before = po_truth_table(net);
  const int n = eliminate(net, 0);
  EXPECT_GE(n, 1);  // g collapses into h
  EXPECT_EQ(net.find_node("g"), kNoNode);
  EXPECT_EQ(po_truth_table(net), before);
  EXPECT_TRUE(net.check());
}

TEST(Network, SimplifyNetworkPreservesPOs) {
  Network net("s");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId g =
      net.add_node("g", {a, b}, Sop::from_strings({"11", "10"}));  // == a
  net.add_po("g", g);
  const auto before = po_truth_table(net);
  simplify_network(net);
  EXPECT_EQ(po_truth_table(net), before);
  const NodeId g2 = net.find_node("g");
  ASSERT_NE(g2, kNoNode);
  EXPECT_LE(net.node(g2).func.num_literals(), 1);
}

TEST(Blif, ParseSmall) {
  const std::string blif = R"(
.model test
.inputs a b c
.outputs f
.names a b g
11 1
.names g c f
1- 1
-1 1
.end
)";
  Network net = read_blif_string(blif);
  EXPECT_TRUE(net.check());
  EXPECT_EQ(net.pis().size(), 3u);
  EXPECT_EQ(net.pos().size(), 1u);
  for (std::uint64_t a = 0; a < 8; ++a) {
    const bool expect = (((a & 1) && (a & 2)) || (a & 4));
    EXPECT_EQ(simulate1(net, a)[0], expect);
  }
}

TEST(Blif, ParseOffsetCover) {
  const std::string blif = R"(
.model t
.inputs a b
.outputs f
.names a b f
11 0
.end
)";
  Network net = read_blif_string(blif);
  // f = !(ab)
  EXPECT_TRUE(simulate1(net, 0b00)[0]);
  EXPECT_FALSE(simulate1(net, 0b11)[0]);
}

TEST(Blif, ParseConstantsAndComments) {
  const std::string blif = R"(
# a comment
.model t
.inputs a
.outputs f z
.names one
1
.names a one f
11 1
.names z
.end
)";
  Network net = read_blif_string(blif);
  EXPECT_TRUE(simulate1(net, 0b1)[0]);
  EXPECT_FALSE(simulate1(net, 0b0)[0]);
  EXPECT_FALSE(simulate1(net, 0b1)[1]);  // z = const 0
}

TEST(Blif, RoundTripPreservesFunction) {
  Network net = make_small();
  const auto before = po_truth_table(net);
  Network back = read_blif_string(write_blif_string(net));
  EXPECT_EQ(po_truth_table(back), before);
  EXPECT_TRUE(back.check());
}

TEST(Blif, RejectsMalformed) {
  EXPECT_THROW(read_blif_string(".model t\n.latch a b\n.end\n"), std::runtime_error);
  EXPECT_THROW(read_blif_string("11 1\n"), std::runtime_error);
  EXPECT_THROW(read_blif_string(".model t\n.inputs a\n.outputs f\n.end\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace rarsub
