#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>
#include <thread>

#include "benchcir/suite.hpp"
#include "division/substitute.hpp"
#include "fuzz/driver.hpp"
#include "mem/arena.hpp"
#include "network/network.hpp"
#include "obs/hwc.hpp"
#include "obs/json.hpp"
#include "obs/memstat.hpp"
#include "obs/prof.hpp"
#include "opt/scripts.hpp"
#include "rar/network_rr.hpp"
#include "rar/rar_opt.hpp"
#include "rar/redundancy.hpp"

namespace rarsub {
namespace {

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON well-formedness checker — enough to
// assert that the emitted trace files and reports parse as strict JSON.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (peek() != ':') return false;
      ++pos_;
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Obs, CounterAggregatesAndSurvivesReresolution) {
  obs::reset();
  OBS_COUNT("test.counter", 3);
  OBS_COUNT("test.counter", 4);
  EXPECT_EQ(obs::snapshot().counter("test.counter"), 7);
  // A fresh handle resolution sees the same instrument.
  EXPECT_EQ(obs::counter("test.counter").value(), 7);
}

TEST(Obs, CounterIsThreadSafe) {
  obs::reset();
  constexpr int kPerThread = 10000;
  auto bump = [] {
    for (int i = 0; i < kPerThread; ++i) OBS_COUNT("test.mt", 1);
  };
  std::thread a(bump), b(bump);
  a.join();
  b.join();
  EXPECT_EQ(obs::snapshot().counter("test.mt"), 2 * kPerThread);
}

TEST(Obs, DistributionTracksCountSumMinMax) {
  obs::reset();
  OBS_VALUE("test.dist", 5);
  OBS_VALUE("test.dist", -2);
  OBS_VALUE("test.dist", 9);
  const obs::Snapshot s = obs::snapshot();
  ASSERT_EQ(s.distributions.size(), 1u);
  EXPECT_EQ(s.distributions[0].name, "test.dist");
  EXPECT_EQ(s.distributions[0].count, 3);
  EXPECT_EQ(s.distributions[0].sum, 12);
  EXPECT_EQ(s.distributions[0].min, -2);
  EXPECT_EQ(s.distributions[0].max, 9);
}

TEST(Obs, ScopedTimerAggregatesCallsAndBounds) {
  obs::reset();
  for (int i = 0; i < 5; ++i) {
    OBS_SCOPED_TIMER("test.phase");
  }
  const obs::Snapshot s = obs::snapshot();
  ASSERT_EQ(s.timers.size(), 1u);
  EXPECT_EQ(s.timers[0].name, "test.phase");
  EXPECT_EQ(s.timers[0].calls, 5);
  EXPECT_GE(s.timers[0].total_ns, 0);
  EXPECT_GE(s.timers[0].max_ns, 0);
  EXPECT_LE(s.timers[0].max_ns, s.timers[0].total_ns);
  EXPECT_EQ(s.timer_calls("test.phase"), 5);
}

TEST(Obs, ResetIsolatesSnapshots) {
  obs::reset();
  OBS_COUNT("test.isolated", 1);
  OBS_VALUE("test.isolated.dist", 10);
  {
    OBS_SCOPED_TIMER("test.isolated.timer");
  }
  EXPECT_EQ(obs::snapshot().counter("test.isolated"), 1);
  obs::reset();
  const obs::Snapshot s = obs::snapshot();
  EXPECT_EQ(s.counter("test.isolated"), 0);
  EXPECT_EQ(s.timer_calls("test.isolated.timer"), 0);
  for (const obs::DistSnap& d : s.distributions)
    EXPECT_NE(d.name, "test.isolated.dist");
  // The instrument is still usable after reset.
  OBS_COUNT("test.isolated", 2);
  EXPECT_EQ(obs::snapshot().counter("test.isolated"), 2);
}

TEST(Obs, MonotonicTimerNeverGoesBackwards) {
  obs::Timer t;
  const std::int64_t a = t.elapsed_ns();
  const std::int64_t b = t.elapsed_ns();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  t.restart();
  EXPECT_GE(t.elapsed_ms(), 0.0);
}

TEST(Json, NonFiniteDoublesStayParseable) {
  std::string out;
  obs::JsonWriter w(&out);
  w.begin_object();
  w.key("nan");
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.key("pinf");
  w.value(std::numeric_limits<double>::infinity());
  w.key("ninf");
  w.value(-std::numeric_limits<double>::infinity());
  w.key("fin");
  w.value(1.5);
  w.end_object();
  JsonChecker checker(out);
  EXPECT_TRUE(checker.valid()) << out;
  EXPECT_NE(out.find("\"nan\":0"), std::string::npos) << out;
  EXPECT_NE(out.find("\"pinf\":1e308"), std::string::npos) << out;
  EXPECT_NE(out.find("\"ninf\":-1e308"), std::string::npos) << out;
  EXPECT_NE(out.find("\"fin\":1.5"), std::string::npos) << out;
}

TEST(Obs, RenderJsonIsWellFormed) {
  obs::reset();
  OBS_COUNT("test.json \"quoted\"", 1);  // name needing escaping
  OBS_VALUE("test.json.dist", 42);
  {
    OBS_SCOPED_TIMER("test.json.timer");
  }
  const std::string json = obs::render_json(obs::snapshot());
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("counters"), std::string::npos);
  EXPECT_NE(json.find("timers"), std::string::npos);
}

TEST(Obs, RenderTextListsEverySection) {
  obs::reset();
  OBS_COUNT("test.text.counter", 2);
  OBS_VALUE("test.text.dist", 7);
  {
    OBS_SCOPED_TIMER("test.text.timer");
  }
  const std::string text = obs::render_text(obs::snapshot());
  EXPECT_NE(text.find("test.text.counter"), std::string::npos);
  EXPECT_NE(text.find("test.text.dist"), std::string::npos);
  EXPECT_NE(text.find("test.text.timer"), std::string::npos);
}

TEST(Obs, TraceFileIsWellFormedChromeJson) {
  const std::string path = testing::TempDir() + "rarsub_obs_trace.json";
  ASSERT_TRUE(obs::trace_begin(path));
  EXPECT_TRUE(obs::trace_enabled());
  EXPECT_FALSE(obs::trace_begin(path));  // no double-begin
  {
    OBS_SCOPED_TIMER("trace.outer");
    OBS_SCOPED_TIMER("trace.inner");
  }
  obs::trace_end();
  EXPECT_FALSE(obs::trace_enabled());

  const std::string trace = read_file(path);
  JsonChecker checker(trace);
  EXPECT_TRUE(checker.valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"trace.outer\""), std::string::npos);
  EXPECT_NE(trace.find("\"trace.inner\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end: a substitution run must feed the registry.

Network intro_example() {
  Network net("intro");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId f = net.add_node(
      "f", {a, b, c}, Sop::from_strings({"10-", "1-1", "-10", "-01"}));
  const NodeId d =
      net.add_node("d", {a, b, c}, Sop::from_strings({"11-", "-01"}));
  net.add_po("f", f);
  net.add_po("d", d);
  return net;
}

TEST(Obs, SubstituteNetworkPublishesCounters) {
  obs::reset();
  Network net = intro_example();
  SubstituteOptions opts;
  opts.method = SubstMethod::Extended;
  const SubstituteStats st = substitute_network(net, opts);

  const obs::Snapshot s = obs::snapshot();
  EXPECT_GT(s.counter("subst.attempts"), 0);
  EXPECT_GT(s.counter("subst.passes"), 0);
  EXPECT_GT(s.counter("atpg.assigns"), 0);
  EXPECT_GT(s.counter("atpg.implications"), 0);
  EXPECT_GT(s.counter("atpg.faults"), 0);
  EXPECT_GT(s.counter("division.regions"), 0);
  // The struct and the registry tell the same story.
  EXPECT_EQ(s.counter("subst.commits"), st.substitutions);
  EXPECT_EQ(s.counter("subst.commits.pos"), st.pos_substitutions);
  EXPECT_EQ(s.counter("subst.decompositions"), st.decompositions);
  EXPECT_GT(s.timer_calls("subst.network"), 0);
  EXPECT_GT(s.timer_calls("division.basic"), 0);
}

TEST(Obs, SizeGuardRejectionsAreCounted) {
  obs::reset();
  Network net = intro_example();
  SubstituteOptions opts;
  opts.method = SubstMethod::Basic;
  opts.max_node_cubes = 1;  // both nodes have >1 cube: every pair rejected
  const SubstituteStats st = substitute_network(net, opts);
  EXPECT_EQ(st.substitutions, 0);
  EXPECT_GT(obs::snapshot().counter("subst.reject.max_node_cubes"), 0);

  obs::reset();
  Network net2 = intro_example();
  SubstituteOptions opts2;
  opts2.method = SubstMethod::Basic;
  opts2.max_common_vars = 1;  // common space is 3 vars wide
  // substitute_network's candidate filter prunes such pairs before the
  // guard (counted as subst.pairs_pruned_sig); the guard itself stays
  // reachable through the direct single-pair entry point.
  const SubstituteStats st2 = substitute_network(net2, opts2);
  EXPECT_GT(st2.pairs_pruned_sig, 0);
  const NodeId fn = net2.find_node("f");
  const NodeId dn = net2.find_node("d");
  ASSERT_NE(fn, kNoNode);
  ASSERT_NE(dn, kNoNode);
  try_substitution(net2, fn, dn, opts2, /*commit=*/false);
  EXPECT_GT(obs::snapshot().counter("subst.reject.max_common_vars"), 0);
}

// ---------------------------------------------------------------------
// Shared environment-variable helpers. Every RARSUB_* latch goes through
// these, so the semantics are pinned once: a flag is on when set,
// non-empty, and not exactly "0"; a path is any set, non-empty value
// (including "0", which is a legal file name).

TEST(Obs, EnvFlagAndEnvPathSemantics) {
  const char* kName = "RARSUB_TEST_ENV_HELPER";
  ::unsetenv(kName);
  EXPECT_FALSE(obs::env_flag(kName));
  EXPECT_EQ(obs::env_path(kName), nullptr);

  ::setenv(kName, "", 1);
  EXPECT_FALSE(obs::env_flag(kName));
  EXPECT_EQ(obs::env_path(kName), nullptr);

  ::setenv(kName, "0", 1);
  EXPECT_FALSE(obs::env_flag(kName));  // explicit opt-out
  ASSERT_NE(obs::env_path(kName), nullptr);
  EXPECT_STREQ(obs::env_path(kName), "0");  // "0" is a valid path

  ::setenv(kName, "1", 1);
  EXPECT_TRUE(obs::env_flag(kName));

  ::setenv(kName, "01", 1);  // only the exact string "0" opts out
  EXPECT_TRUE(obs::env_flag(kName));

  ::setenv(kName, "/tmp/some/file", 1);
  EXPECT_TRUE(obs::env_flag(kName));
  EXPECT_STREQ(obs::env_path(kName), "/tmp/some/file");

  ::unsetenv(kName);
}

// ---------------------------------------------------------------------
// The metric catalogue in docs/OBSERVABILITY.md must stay live: every
// documented counter/distribution/timer name has to show up (non-zero) in
// the snapshot of a real run. A renamed or dropped instrument fails here
// instead of silently rotting the docs.

std::vector<std::string> doc_metric_names(const std::string& doc,
                                          const std::string& section_start,
                                          const std::string& section_end) {
  std::vector<std::string> names;
  const std::size_t begin = doc.find(section_start);
  if (begin == std::string::npos) return names;
  std::size_t end = doc.find(section_end, begin);
  if (end == std::string::npos) end = doc.size();
  std::istringstream ss(doc.substr(begin, end - begin));
  std::string line;
  while (std::getline(ss, line)) {
    if (line.rfind("| `", 0) != 0) continue;  // table rows only
    const std::string cell = line.substr(0, line.find('|', 1));
    std::size_t pos = 0;
    while (true) {
      const std::size_t open = cell.find('`', pos);
      if (open == std::string::npos) break;
      const std::size_t close = cell.find('`', open + 1);
      if (close == std::string::npos) break;
      names.push_back(cell.substr(open + 1, close - open - 1));
      pos = close + 1;
    }
  }
  return names;
}

GateNet random_gatenet(std::mt19937& rng, int num_pis, int num_gates) {
  GateNet gn;
  for (int i = 0; i < num_pis; ++i) gn.add_pi("x" + std::to_string(i));
  std::uniform_int_distribution<int> nfan(1, 3);
  for (int i = 0; i < num_gates; ++i) {
    const int existing = gn.num_gates();
    std::uniform_int_distribution<int> pick(0, existing - 1);
    std::vector<Signal> fanins;
    const int k = nfan(rng);
    for (int j = 0; j < k; ++j) fanins.push_back({pick(rng), (rng() & 1) != 0});
    gn.add_gate((rng() & 1) ? GateType::And : GateType::Or, std::move(fanins));
  }
  gn.add_output(gn.num_gates() - 1);
  return gn;
}

// One composed scenario that makes every documented instrument fire.
void exercise_every_subsystem() {
  // Allocation tracking on (no-op when the hooks are compiled out, e.g.
  // sanitizer builds) so the mem.* gauges publish; one HwcScope around
  // the first workload so the hwc.* counters publish where the PMU is
  // reachable.
  obs::memstat_enable();
  // Sampling profiler on (degrades to a no-op where the host or build
  // cannot deliver SIGPROF — the required() gate below checks
  // prof_enabled) so the prof.* gauges publish from real samples.
  obs::prof_start();
  // Extended division with global don't cares: atpg.* (incl. recursive
  // learning), division.*, subst.* core counters.
  {
    obs::HwcScope hwc;
    Network net = intro_example();
    SubstituteOptions o;
    o.method = SubstMethod::ExtendedGdc;
    o.try_pos = true;
    substitute_network(net, o);
  }
  // A real circuit drives the rarer paths: on syn_c432 after script A,
  // extended substitution with the POS dual commits at least one POS
  // rewrite and one divisor decomposition (~65 ms).
  {
    Network net = build_benchmark("syn_c432");
    script_a(net);
    SubstituteOptions o;
    o.method = SubstMethod::Extended;
    o.try_pos = true;
    substitute_network(net, o);
  }
  // Every size guard rejects at least once (one tight guard per run).
  for (int guard = 0; guard < 4; ++guard) {
    Network net = intro_example();
    SubstituteOptions o;
    o.method = SubstMethod::Basic;
    if (guard == 0) o.max_node_cubes = 1;
    if (guard == 1) o.max_divisor_cubes = 1;
    if (guard == 2) o.max_common_vars = 1;
    if (guard == 3) o.max_complement_cubes = 1;
    substitute_network(net, o);
    if (guard == 2) {
      // The candidate filter's support prune intercepts wide pairs before
      // this guard; hit it through the unfiltered single-pair entry point.
      (void)try_substitution(net, net.find_node("f"), net.find_node("d"), o,
                             /*commit=*/false);
    }
  }
  // Multi-divisor pool attempt.
  {
    Network net("pool");
    const NodeId a = net.add_pi("a");
    const NodeId b = net.add_pi("b");
    const NodeId c = net.add_pi("c");
    const NodeId d = net.add_pi("d");
    const NodeId e = net.add_pi("e");
    const NodeId x = net.add_pi("x");
    const NodeId y = net.add_pi("y");
    const NodeId z = net.add_pi("z");
    const NodeId f = net.add_node(
        "f", {a, b, x, y, z}, Sop::from_strings({"111--", "11-1-", "11--1"}));
    const NodeId d1 =
        net.add_node("d1", {a, b, e}, Sop::from_strings({"11-", "--1"}));
    const NodeId d2 = net.add_node("d2", {c, d}, Sop::from_strings({"11"}));
    net.add_po("f", f);
    net.add_po("d1", d1);
    net.add_po("d2", d2);
    SubstituteOptions o;
    o.method = SubstMethod::Extended;
    (void)try_pool_substitution(net, f, {d1, d2}, o);
  }
  // Espresso-lite: simplify non-minimal covers.
  {
    Network net = intro_example();
    simplify_network(net);
  }
  // Classic RAR + ATPG redundancy removal over random gate-level circuits
  // (wires get added and removed; recursive learning exercised).
  std::mt19937 rng(101);
  for (int iter = 0; iter < 25; ++iter) {
    GateNet gn = random_gatenet(rng, 5, 12);
    RarOptions ro;
    ro.learning_depth = iter % 2;
    rar_optimize(gn, ro);
  }
  {
    std::mt19937 rng2(97);
    for (int iter = 0; iter < 10; ++iter) {
      GateNet gn = random_gatenet(rng2, 5, 14);
      RemoveOptions ro;
      ro.both_polarities = true;
      ro.learning_depth = 1;
      remove_all_redundancies(gn, ro);
    }
  }
  // The implication visit budget (the large tier's escape hatch): a
  // 1-visit cap guarantees truncated closure drains.
  {
    std::mt19937 rng3(43);
    GateNet gn = random_gatenet(rng3, 5, 14);
    RemoveOptions ro;
    ro.both_polarities = true;
    ro.one_pass = true;  // the budget is a one-pass analyzer dial
    ro.implication_budget = 1;
    remove_all_redundancies(gn, ro);
  }
  // Network-level redundancy removal: f = ab + a'c + bc has a redundant
  // consensus cube.
  {
    Network net("rr");
    const NodeId a = net.add_pi("a");
    const NodeId b = net.add_pi("b");
    const NodeId c = net.add_pi("c");
    const NodeId f = net.add_node(
        "f", {a, b, c}, Sop::from_strings({"11-", "0-1", "-11"}));
    net.add_po("f", f);
    network_redundancy_removal(net);
  }
  // Differential fuzzing with the planted skip-remainder bug: fires the
  // fuzz.* generator/driver/shrinker instruments and, through the
  // always-on paranoid mode of the canonical run, the verify.* ones —
  // including verify.failures when the planted bug is caught.
  {
    fuzz::FuzzOptions fo;
    fo.iters = 40;
    fo.seed = 1;
    fo.max_failures = 1;
    fo.plant = fuzz::PlantedBug::SkipRemainder;
    fo.corpus_dir = testing::TempDir() + "rarsub_obs_fuzz_corpus";
    fuzz::run_fuzz(fo);
  }
}

TEST(Obs, DocumentedMetricCatalogueIsLive) {
  const std::string doc =
      read_file(std::string(RARSUB_SOURCE_DIR) + "/docs/OBSERVABILITY.md");
  ASSERT_FALSE(doc.empty()) << "docs/OBSERVABILITY.md not found";
  const std::vector<std::string> counters =
      doc_metric_names(doc, "Counters (monotonic):", "Distributions (");
  const std::vector<std::string> dists =
      doc_metric_names(doc, "Distributions (", "Timers (");
  const std::vector<std::string> timers =
      doc_metric_names(doc, "Timers (", "## Bench report");
  ASSERT_GT(counters.size(), 20u);  // the parser found the tables
  ASSERT_GT(dists.size(), 3u);
  ASSERT_GT(timers.size(), 6u);

  obs::reset();
  exercise_every_subsystem();
  const obs::Snapshot s = obs::snapshot();

  // Conditionally-available instruments: the docs list them, but a host
  // can legitimately lack them — hooks compiled out (sanitizer builds),
  // no /proc (non-Linux), perf_event_open denied (CI containers). The
  // miss counters are lenient even with a PMU: virtualized hosts often
  // expose only cycles+instructions.
  auto required = [](const std::string& name) {
    if (name.rfind("hwc.", 0) == 0) {
      if (!obs::hwc_available()) return false;
      return name != "hwc.cache_misses" && name != "hwc.branch_misses";
    }
    if (name.rfind("mem.arena.", 0) == 0) return mem::arena_enabled();
    if (name.rfind("mem.", 0) == 0) {
      if (name == "mem.rss_kb" || name == "mem.peak_rss_kb")
        return obs::read_rss_kb() >= 0;
      return obs::memstat_available();
    }
    if (name == "fuzz.peak_rss_kb") return obs::read_rss_kb() >= 0;
    if (name == "fuzz.arena_high_water") return mem::arena_enabled();
    // prof.* gauges need a running sampler (real SIGPROF timer — absent
    // under sanitizers or where setitimer fails).
    if (name.rfind("prof.", 0) == 0) return obs::prof_enabled();
    return true;
  };

  for (const std::string& name : counters) {
    if (!required(name)) continue;
    EXPECT_GT(s.counter(name), 0) << "documented counter never fired: " << name;
  }
  for (const std::string& name : dists) {
    if (!required(name)) continue;
    bool found = false;
    for (const obs::DistSnap& d : s.distributions) found |= (d.name == name);
    EXPECT_TRUE(found) << "documented distribution never fired: " << name;
  }
  for (const std::string& name : timers)
    EXPECT_GT(s.timer_calls(name), 0)
        << "documented timer never fired: " << name;
}

}  // namespace
}  // namespace rarsub
