#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <thread>

#include "division/substitute.hpp"
#include "network/network.hpp"
#include "obs/json.hpp"

namespace rarsub {
namespace {

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON well-formedness checker — enough to
// assert that the emitted trace files and reports parse as strict JSON.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (peek() != ':') return false;
      ++pos_;
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Obs, CounterAggregatesAndSurvivesReresolution) {
  obs::reset();
  OBS_COUNT("test.counter", 3);
  OBS_COUNT("test.counter", 4);
  EXPECT_EQ(obs::snapshot().counter("test.counter"), 7);
  // A fresh handle resolution sees the same instrument.
  EXPECT_EQ(obs::counter("test.counter").value(), 7);
}

TEST(Obs, CounterIsThreadSafe) {
  obs::reset();
  constexpr int kPerThread = 10000;
  auto bump = [] {
    for (int i = 0; i < kPerThread; ++i) OBS_COUNT("test.mt", 1);
  };
  std::thread a(bump), b(bump);
  a.join();
  b.join();
  EXPECT_EQ(obs::snapshot().counter("test.mt"), 2 * kPerThread);
}

TEST(Obs, DistributionTracksCountSumMinMax) {
  obs::reset();
  OBS_VALUE("test.dist", 5);
  OBS_VALUE("test.dist", -2);
  OBS_VALUE("test.dist", 9);
  const obs::Snapshot s = obs::snapshot();
  ASSERT_EQ(s.distributions.size(), 1u);
  EXPECT_EQ(s.distributions[0].name, "test.dist");
  EXPECT_EQ(s.distributions[0].count, 3);
  EXPECT_EQ(s.distributions[0].sum, 12);
  EXPECT_EQ(s.distributions[0].min, -2);
  EXPECT_EQ(s.distributions[0].max, 9);
}

TEST(Obs, ScopedTimerAggregatesCallsAndBounds) {
  obs::reset();
  for (int i = 0; i < 5; ++i) {
    OBS_SCOPED_TIMER("test.phase");
  }
  const obs::Snapshot s = obs::snapshot();
  ASSERT_EQ(s.timers.size(), 1u);
  EXPECT_EQ(s.timers[0].name, "test.phase");
  EXPECT_EQ(s.timers[0].calls, 5);
  EXPECT_GE(s.timers[0].total_ns, 0);
  EXPECT_GE(s.timers[0].max_ns, 0);
  EXPECT_LE(s.timers[0].max_ns, s.timers[0].total_ns);
  EXPECT_EQ(s.timer_calls("test.phase"), 5);
}

TEST(Obs, ResetIsolatesSnapshots) {
  obs::reset();
  OBS_COUNT("test.isolated", 1);
  OBS_VALUE("test.isolated.dist", 10);
  {
    OBS_SCOPED_TIMER("test.isolated.timer");
  }
  EXPECT_EQ(obs::snapshot().counter("test.isolated"), 1);
  obs::reset();
  const obs::Snapshot s = obs::snapshot();
  EXPECT_EQ(s.counter("test.isolated"), 0);
  EXPECT_EQ(s.timer_calls("test.isolated.timer"), 0);
  for (const obs::DistSnap& d : s.distributions)
    EXPECT_NE(d.name, "test.isolated.dist");
  // The instrument is still usable after reset.
  OBS_COUNT("test.isolated", 2);
  EXPECT_EQ(obs::snapshot().counter("test.isolated"), 2);
}

TEST(Obs, MonotonicTimerNeverGoesBackwards) {
  obs::Timer t;
  const std::int64_t a = t.elapsed_ns();
  const std::int64_t b = t.elapsed_ns();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  t.restart();
  EXPECT_GE(t.elapsed_ms(), 0.0);
}

TEST(Obs, RenderJsonIsWellFormed) {
  obs::reset();
  OBS_COUNT("test.json \"quoted\"", 1);  // name needing escaping
  OBS_VALUE("test.json.dist", 42);
  {
    OBS_SCOPED_TIMER("test.json.timer");
  }
  const std::string json = obs::render_json(obs::snapshot());
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("counters"), std::string::npos);
  EXPECT_NE(json.find("timers"), std::string::npos);
}

TEST(Obs, RenderTextListsEverySection) {
  obs::reset();
  OBS_COUNT("test.text.counter", 2);
  OBS_VALUE("test.text.dist", 7);
  {
    OBS_SCOPED_TIMER("test.text.timer");
  }
  const std::string text = obs::render_text(obs::snapshot());
  EXPECT_NE(text.find("test.text.counter"), std::string::npos);
  EXPECT_NE(text.find("test.text.dist"), std::string::npos);
  EXPECT_NE(text.find("test.text.timer"), std::string::npos);
}

TEST(Obs, TraceFileIsWellFormedChromeJson) {
  const std::string path = testing::TempDir() + "rarsub_obs_trace.json";
  ASSERT_TRUE(obs::trace_begin(path));
  EXPECT_TRUE(obs::trace_enabled());
  EXPECT_FALSE(obs::trace_begin(path));  // no double-begin
  {
    OBS_SCOPED_TIMER("trace.outer");
    OBS_SCOPED_TIMER("trace.inner");
  }
  obs::trace_end();
  EXPECT_FALSE(obs::trace_enabled());

  const std::string trace = read_file(path);
  JsonChecker checker(trace);
  EXPECT_TRUE(checker.valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"trace.outer\""), std::string::npos);
  EXPECT_NE(trace.find("\"trace.inner\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end: a substitution run must feed the registry.

Network intro_example() {
  Network net("intro");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId f = net.add_node(
      "f", {a, b, c}, Sop::from_strings({"10-", "1-1", "-10", "-01"}));
  const NodeId d =
      net.add_node("d", {a, b, c}, Sop::from_strings({"11-", "-01"}));
  net.add_po("f", f);
  net.add_po("d", d);
  return net;
}

TEST(Obs, SubstituteNetworkPublishesCounters) {
  obs::reset();
  Network net = intro_example();
  SubstituteOptions opts;
  opts.method = SubstMethod::Extended;
  const SubstituteStats st = substitute_network(net, opts);

  const obs::Snapshot s = obs::snapshot();
  EXPECT_GT(s.counter("subst.attempts"), 0);
  EXPECT_GT(s.counter("subst.passes"), 0);
  EXPECT_GT(s.counter("atpg.assigns"), 0);
  EXPECT_GT(s.counter("atpg.implications"), 0);
  EXPECT_GT(s.counter("atpg.faults"), 0);
  EXPECT_GT(s.counter("division.regions"), 0);
  // The struct and the registry tell the same story.
  EXPECT_EQ(s.counter("subst.commits"), st.substitutions);
  EXPECT_EQ(s.counter("subst.commits.pos"), st.pos_substitutions);
  EXPECT_EQ(s.counter("subst.decompositions"), st.decompositions);
  EXPECT_GT(s.timer_calls("subst.network"), 0);
  EXPECT_GT(s.timer_calls("division.basic"), 0);
}

TEST(Obs, SizeGuardRejectionsAreCounted) {
  obs::reset();
  Network net = intro_example();
  SubstituteOptions opts;
  opts.method = SubstMethod::Basic;
  opts.max_node_cubes = 1;  // both nodes have >1 cube: every pair rejected
  const SubstituteStats st = substitute_network(net, opts);
  EXPECT_EQ(st.substitutions, 0);
  EXPECT_GT(obs::snapshot().counter("subst.reject.max_node_cubes"), 0);

  obs::reset();
  Network net2 = intro_example();
  SubstituteOptions opts2;
  opts2.method = SubstMethod::Basic;
  opts2.max_common_vars = 1;  // common space is 3 vars wide
  substitute_network(net2, opts2);
  EXPECT_GT(obs::snapshot().counter("subst.reject.max_common_vars"), 0);
}

}  // namespace
}  // namespace rarsub
