#include "opt/extract.hpp"
#include "opt/scripts.hpp"

#include <gtest/gtest.h>

#include "benchcir/classics.hpp"
#include "verify/equivalence.hpp"

namespace rarsub {
namespace {

Network shared_cube_network() {
  // Three nodes each containing the cube a·b·c somewhere: gcx should
  // extract it once.
  Network net("gcx");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId d = net.add_pi("d");
  const NodeId e = net.add_pi("e");
  net.add_po("f1", net.add_node("f1", {a, b, c, d},
                                Sop::from_strings({"1111", "---0"})));
  net.add_po("f2", net.add_node("f2", {a, b, c, e},
                                Sop::from_strings({"1110", "---1"})));
  net.add_po("f3", net.add_node("f3", {a, b, c},
                                Sop::from_strings({"111"})));
  return net;
}

TEST(Gcx, ExtractsSharedCube) {
  Network net = shared_cube_network();
  Network before = net;
  const ExtractStats st = gcx(net);
  EXPECT_TRUE(net.check());
  EXPECT_GE(st.extracted, 1);
  EXPECT_LT(st.literals_after, st.literals_before);
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
}

TEST(Gcx, NoExtractionWithoutSharing) {
  Network net("none");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  net.add_po("f", net.add_node("f", {a, b}, Sop::from_strings({"11"})));
  net.add_po("g", net.add_node("g", {b, c}, Sop::from_strings({"01"})));
  const ExtractStats st = gcx(net);
  EXPECT_EQ(st.extracted, 0);
}

Network shared_kernel_network() {
  // f1 = ae + be, f2 = af + bf, f3 = ag' + bg': kernel (a + b) shared.
  Network net("gkx");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId e = net.add_pi("e");
  const NodeId f = net.add_pi("f");
  const NodeId g = net.add_pi("g");
  net.add_po("f1", net.add_node("f1", {a, b, e},
                                Sop::from_strings({"1-1", "-11"})));
  net.add_po("f2", net.add_node("f2", {a, b, f},
                                Sop::from_strings({"1-1", "-11"})));
  net.add_po("f3", net.add_node("f3", {a, b, g},
                                Sop::from_strings({"1-0", "-10"})));
  return net;
}

TEST(Gkx, ExtractsSharedKernel) {
  Network net = shared_kernel_network();
  Network before = net;
  const ExtractStats st = gkx(net);
  EXPECT_TRUE(net.check());
  EXPECT_GE(st.extracted, 1);
  EXPECT_LT(st.literals_after, st.literals_before);
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
  // A new node computing a + b must exist and feed all three functions.
  bool found = false;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Node& nd = net.node(id);
    if (!nd.alive || nd.is_pi) continue;
    if (nd.fanins.size() == 2 && nd.func.num_cubes() == 2 &&
        net.fanout_refs(id) >= 3)
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Scripts, ScriptAPreservesFunctionAndShrinks) {
  Network net = make_adder(6);
  Network before = net;
  const int lits = net.factored_literals();
  script_a(net);
  EXPECT_TRUE(net.check());
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
  EXPECT_LE(net.factored_literals(), lits + 8);  // eliminate may restructure
}

TEST(Scripts, ScriptBAndCPreserveFunction) {
  for (auto* fn : {&script_b, &script_c}) {
    Network net = make_comparator(5);
    Network before = net;
    (*fn)(net);
    EXPECT_TRUE(net.check());
    EXPECT_TRUE(check_equivalence(before, net).equivalent);
  }
}

TEST(Scripts, FullAlgebraicFlowAllMethods) {
  for (ResubMethod m : {ResubMethod::SisAlgebraic, ResubMethod::Basic,
                        ResubMethod::Extended}) {
    Network net = make_alu_slice(2);
    Network before = net;
    script_algebraic(net, m);
    EXPECT_TRUE(net.check()) << method_name(m);
    EXPECT_TRUE(check_equivalence(before, net).equivalent) << method_name(m);
  }
}

TEST(Scripts, MethodNames) {
  EXPECT_EQ(method_name(ResubMethod::SisAlgebraic), "sis");
  EXPECT_EQ(method_name(ResubMethod::ExtendedGdc), "ext_gdc");
}

}  // namespace
}  // namespace rarsub
