// The paper's worked examples and lemmas, one test per claim, in paper
// order. These are the figure-level reproductions DESIGN.md §3 indexes
// (Figures 1-4 carry no measured data, so they live here rather than in
// the bench harness).

#include <gtest/gtest.h>

#include "division/division.hpp"
#include "division/substitute.hpp"
#include "rar/redundancy.hpp"
#include "resub/algebraic_resub.hpp"
#include "sop/algdiv.hpp"
#include "sop/factor.hpp"
#include "test_util.hpp"
#include "verify/equivalence.hpp"

namespace rarsub {
namespace {

using testutil::same_function;

// ---------------------------------------------------------------------
// Sec. I: "Boolean division, and hence Boolean substitution, in theory
// produces better results" — an instance where the Boolean rewrite uses
// strictly fewer literals than the algebraic one.
TEST(PaperSec1, BooleanSubstitutionBeatsAlgebraic) {
  // f = a + bd + cd = (a+b+c)(a+d); divisor d = a + b + c.
  // Algebraic: quotient empty (shared support). Boolean: f = y·(a+d).
  const Sop f = Sop::from_strings({"1---", "-1-1", "--11"});
  const Sop d = Sop::from_strings({"1---", "-1--", "--1-"});

  const AlgDivResult alg = weak_divide(f, d);
  EXPECT_EQ(alg.quotient.num_cubes(), 0);  // algebraic fails outright

  const DivisionResult boolean = basic_boolean_divide(f, d);
  ASSERT_TRUE(boolean.success);
  const Sop rebuilt =
      boolean.quotient.boolean_and(d).boolean_or(boolean.remainder);
  EXPECT_TRUE(same_function(rebuilt, f));
  // f as y·q + r costs fewer factored literals than f alone.
  const int before = factored_literal_count(f);
  const int after = factored_literal_count(boolean.quotient) +
                    factored_literal_count(boolean.remainder) + 1;
  EXPECT_LT(after, before);
}

// Sec. I: the quotient of f/d is zero under basic division when d brings
// only foreign variables — the scenario motivating extended division.
TEST(PaperSec1, ForeignDivisorGivesZeroQuotient) {
  const Sop f = Sop::from_strings({"11----"});
  const Sop d = Sop::from_strings({"----1-", "-----1"});
  EXPECT_FALSE(basic_boolean_divide(f, d).success);
  EXPECT_EQ(weak_divide(f, d).quotient.num_cubes(), 0);
}

// ---------------------------------------------------------------------
// Sec. III-A: the SOS and POS definitions with the paper's own examples.
TEST(PaperSec3A, SosDefinitionExamples) {
  // "abc + bcd is a SOS of ab + cd because every cube ... is contained by
  // either cube ab or cube cd".
  const Sop d = Sop::from_strings({"11--", "--11"});
  EXPECT_TRUE(Sop::from_strings({"111-", "-111"}).is_sos_of(d));
  // Adding more (still contained) cubes keeps the property...
  EXPECT_TRUE(Sop::from_strings({"111-", "-111", "1111"}).is_sos_of(d));
  // ...while a cube contained by neither breaks it.
  EXPECT_FALSE(Sop::from_strings({"111-", "1--1"}).is_sos_of(d));
}

// Lemma 1: F an SOS of D  =>  F·D == F.
TEST(PaperSec3A, Lemma1) {
  const Sop d = Sop::from_strings({"11--", "--11"});
  const Sop f = Sop::from_strings({"111-", "-111", "11-0"});
  ASSERT_TRUE(f.is_sos_of(d));
  EXPECT_TRUE(same_function(f.boolean_and(d), f));
}

// Lemma 2 (the POS dual): if every sum term of F contains a sum term of
// D, then F + D == F. Stated on complements: comp(F) SOS of comp(D).
TEST(PaperSec3A, Lemma2ViaDuality) {
  // F = (a+b+c)(a+d)  D = (a+b)  — each sum term of F contains one of D?
  // Dually: comp(F) = a'b'c' + a'd', comp(D) = a'b'. Every cube of
  // comp(F) contained by a cube of comp(D)? a'b'c' ⊆ a'b' yes; a'd' no —
  // so first fix F = (a+b+c)(a+b+d): comp = a'b'c' + a'b'd'.
  const Sop f_comp = Sop::from_strings({"000-", "00-0"});
  const Sop d_comp = Sop::from_strings({"00--"});
  ASSERT_TRUE(f_comp.is_sos_of(d_comp));
  // Lemma 1 on the complements == Lemma 2 on the originals:
  // comp(F)·comp(D) == comp(F)  <=>  F + D == F.
  EXPECT_TRUE(same_function(f_comp.boolean_and(d_comp), f_comp));
  const Sop f = f_comp.complement();
  const Sop d = d_comp.complement();
  EXPECT_TRUE(same_function(f.boolean_or(d), f));
}

// ---------------------------------------------------------------------
// Sec. III-B / Fig. 2: the three steps of basic division. The remainder is
// exactly the cubes not contained by any divisor cube; ANDing d into the
// region is redundant; removal shrinks the region.
TEST(PaperSec3B, BasicDivisionThreeSteps) {
  const Sop f = Sop::from_strings({"111--", "110--", "-11--", "----1"});
  const Sop d = Sop::from_strings({"11---", "-11--"});

  Sop fprime, remainder;
  split_remainder(f, d, &fprime, &remainder);
  EXPECT_EQ(remainder.num_cubes(), 1);  // the lone e-cube
  EXPECT_TRUE(fprime.is_sos_of(d));     // Lemma 1 precondition by construction

  // Step 2 is redundant a priori: region output == f before any removal.
  const DivisionRegion region = build_division_region(fprime, remainder, d);
  for (std::uint64_t x = 0; x < 32; ++x) {
    std::vector<bool> pi(5);
    for (int i = 0; i < 5; ++i) pi[static_cast<std::size_t>(i)] = (x >> i) & 1;
    const auto v = region.gn.eval(pi);
    EXPECT_EQ(v[static_cast<std::size_t>(region.out_or)], f.eval(x)) << x;
  }

  // Step 3: removal strictly shrinks the region.
  const DivisionResult res = basic_boolean_divide(f, d);
  ASSERT_TRUE(res.success);
  EXPECT_LT(res.quotient.num_literals(), fprime.num_literals());
}

// ---------------------------------------------------------------------
// Sec. IV / Table I: wires vote for divisor cubes their fault implies to
// zero; entries whose cube is not contained by a voted cube are deleted.
TEST(PaperSec4, VoteTableSemantics) {
  const Sop f = Sop::from_strings({"11---1", "--11-1"});
  const Sop d = Sop::from_strings({"11----", "--11--", "----1-"});
  int valid = 0, invalid = 0;
  for (const VoteEntry& e : vote_table(f, d)) {
    // Every voted cube really is implied to zero: it must contain the
    // falsified literal (or deeper implications knocked it out).
    for (int k : e.candidates) {
      const Cube& kc = d.cube(k);
      (void)kc;
      EXPECT_LT(k, d.num_cubes());
    }
    if (e.valid) {
      ++valid;
      bool contained = false;
      for (int k : e.candidates)
        if (d.cube(k).contains(f.cube(e.cube))) contained = true;
      EXPECT_TRUE(contained);
    } else {
      ++invalid;
    }
  }
  EXPECT_GT(valid, 0);
  EXPECT_GT(invalid, 0);  // the x-literal wires vote for nothing useful
}

// Sec. IV: choosing the core divisor exposes an embedded subexpression and
// the divisor is decomposed as d = d_core + d_rest.
TEST(PaperSec4, ExtendedDivisionDecomposesDivisor) {
  const Sop f = Sop::from_strings({"11---1", "--11-1"});
  const Sop d = Sop::from_strings({"11----", "--11--", "----1-"});
  const ExtendedResult res = extended_boolean_divide(f, d);
  ASSERT_TRUE(res.success);
  EXPECT_LT(res.core_cubes.size(), static_cast<std::size_t>(d.num_cubes()));
  Sop core(6);
  for (int k : res.core_cubes) core.add_cube(d.cube(k));
  const Sop rebuilt = res.quotient.boolean_and(core).boolean_or(res.remainder);
  EXPECT_TRUE(same_function(rebuilt, f));
}

// ---------------------------------------------------------------------
// Sec. II / Fig. 1 shape: adding one redundant connection can make other
// wires redundant. Constructed instance: f = ab + a'c, g = bc redundant
// consensus; adding is the reverse move of removing.
TEST(PaperSec2, RedundancyAdditionIsInverseOfRemoval) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int c = gn.add_pi("c");
  const int c1 = gn.add_gate(GateType::And, {{a, false}, {b, false}});
  const int c2 = gn.add_gate(GateType::And, {{a, true}, {c, false}});
  const int f = gn.add_gate(GateType::Or, {{c1, false}, {c2, false}});
  gn.add_output(f);

  // The consensus cube bc is redundant: adding it must be detected as such.
  const int c3 = gn.add_gate(GateType::And, {{b, false}, {c, false}});
  const WireRef added = gn.add_fanin(f, {c3, false});
  EXPECT_TRUE(wire_redundant(gn, added, removal_stuck_value(GateType::Or)));
  // And removing it again is sound by the same analysis. The detached
  // consensus gate's own pins are unobservable (trivially redundant), but
  // the live circuit must stay untouched.
  gn.remove_fanin(added);
  remove_all_redundancies(gn);
  EXPECT_EQ(gn.gate(f).fanins.size(), 2u);
  EXPECT_EQ(gn.gate(c1).fanins.size(), 2u);
  EXPECT_EQ(gn.gate(c2).fanins.size(), 2u);
}

}  // namespace
}  // namespace rarsub
