#include "network/pla.hpp"

#include <gtest/gtest.h>

#include "benchcir/classics.hpp"
#include "network/simulate.hpp"
#include "verify/equivalence.hpp"

namespace rarsub {
namespace {

TEST(Pla, ParseBasic) {
  const std::string pla = R"(
# a 2-output example
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
11- 10
--1 10
0-0 01
.e
)";
  Network net = read_pla_string(pla);
  EXPECT_TRUE(net.check());
  ASSERT_EQ(net.pis().size(), 3u);
  ASSERT_EQ(net.pos().size(), 2u);
  EXPECT_EQ(net.node(net.pis()[0]).name, "a");
  EXPECT_EQ(net.pos()[1].name, "g");
  for (std::uint64_t x = 0; x < 8; ++x) {
    const bool a = x & 1, b = x & 2, c = x & 4;
    const auto out = simulate1(net, x);
    EXPECT_EQ(out[0], (a && b) || c);
    EXPECT_EQ(out[1], !a && !c);
  }
}

TEST(Pla, DefaultNamesAndDontCareOutputs) {
  const std::string pla = ".i 2\n.o 1\n11 1\n00 -\n.e\n";
  Network net = read_pla_string(pla);
  EXPECT_EQ(net.node(net.pis()[0]).name, "i0");
  EXPECT_TRUE(simulate1(net, 0b11)[0]);
  EXPECT_FALSE(simulate1(net, 0b00)[0]);  // dc rows drop to off-set
}

TEST(Pla, RejectsMalformed) {
  EXPECT_THROW(read_pla_string("11 1\n"), std::runtime_error);        // no .i/.o
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n111 1\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n1x 1\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n.kiss\n"), std::runtime_error);
}

TEST(Pla, RoundTripPreservesFunction) {
  Network net = make_comparator(3);
  Network back = read_pla_string(write_pla_string(net));
  EXPECT_TRUE(check_equivalence(net, back).equivalent);
}

TEST(Pla, CollapseToPisMatchesSimulation) {
  Network net = make_adder(3);
  for (const Output& o : net.pos()) {
    const auto cover = collapse_to_pis(net, o.driver);
    ASSERT_TRUE(cover.has_value()) << o.name;
    for (std::uint64_t x = 0; x < 64; ++x) {
      const auto out = simulate1(net, x);
      std::size_t po_index = 0;
      for (std::size_t i = 0; i < net.pos().size(); ++i)
        if (net.pos()[i].name == o.name) po_index = i;
      EXPECT_EQ(cover->eval(x), out[po_index]) << o.name << " x=" << x;
    }
  }
}

TEST(Pla, CollapseRespectsCubeLimit) {
  Network net = make_parity(12);
  // Parity of 12 inputs needs 2^11 cubes; a small limit must refuse.
  EXPECT_EQ(collapse_to_pis(net, net.pos()[0].driver, 100), std::nullopt);
}

}  // namespace
}  // namespace rarsub
