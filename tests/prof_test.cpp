#include "obs/prof.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace rarsub {
namespace {

// gtest_discover_tests runs each TEST in its own process, so injected
// timer hooks, started samplers and cumulative folded state cannot bleed
// between tests.

// Fake plumbing: sampling "runs" but no timer is armed — tests drive
// samples deterministically through prof_sample_now_for_test(). Works in
// every build, including sanitizer builds where the real signal
// machinery is compiled out.
bool fake_setup_ok(int, std::string*) { return true; }
bool fake_setup_fail(int, std::string* why) {
  *why = "setitimer: Function not implemented";
  return false;
}
void fake_teardown() {}

constexpr obs::detail::ProfTimerHooks kFakeHooks{&fake_setup_ok,
                                                 &fake_teardown};
constexpr obs::detail::ProfTimerHooks kFailHooks{&fake_setup_fail,
                                                 &fake_teardown};

std::int64_t samples_for_path(const obs::ProfSnapshot& snap,
                              const std::vector<std::string>& frames) {
  for (const obs::ProfPathSnap& p : snap.paths)
    if (p.frames == frames) return p.samples;
  return 0;
}

TEST(Prof, OffByDefaultZeroSamples) {
  EXPECT_FALSE(obs::prof_enabled());
  EXPECT_EQ(obs::prof_status(), "off");

  // Burn CPU in a phase: with no sampler started, nothing is recorded.
  obs::PhaseScope phase("prof.test.spin");
  volatile std::uint64_t sink = 1;
  for (int i = 0; i < 2000000; ++i) sink = sink * 2862933555777941757ull + 3;
  const obs::ProfSnapshot snap = obs::prof_snapshot();
  EXPECT_EQ(snap.samples, 0);
  EXPECT_TRUE(snap.paths.empty());

  // And a driven sample without a running sampler is a no-op.
  obs::detail::prof_sample_now_for_test();
  EXPECT_EQ(obs::prof_snapshot().samples, 0);

  // No prof.* gauges leak into the obs snapshot.
  for (const obs::CounterSnap& c : obs::snapshot().counters)
    EXPECT_NE(c.name.rfind("prof.", 0), 0u) << c.name;
}

TEST(Prof, DegradesGracefullyWhenTimerSetupFails) {
  obs::detail::set_prof_timer_hooks_for_test(&kFailHooks);
  EXPECT_FALSE(obs::prof_start());
  EXPECT_FALSE(obs::prof_enabled());
  // The status carries the injected syscall failure verbatim.
  EXPECT_EQ(obs::prof_status(), "setitimer: Function not implemented");
  // Everything stays a no-op.
  obs::detail::prof_sample_now_for_test();
  EXPECT_EQ(obs::prof_snapshot().samples, 0);
  EXPECT_TRUE(obs::render_folded_profile().empty());
  obs::prof_stop();  // stopping a never-started sampler is harmless
  EXPECT_EQ(obs::prof_status(), "setitimer: Function not implemented");
  obs::detail::set_prof_timer_hooks_for_test(nullptr);
}

TEST(Prof, KnownPhaseAttributionIsExact) {
  obs::detail::set_prof_timer_hooks_for_test(&kFakeHooks);
  ASSERT_TRUE(obs::prof_start());
  {
    obs::PhaseScope outer("prof.test.outer");
    {
      obs::PhaseScope inner("prof.test.inner");
      for (int i = 0; i < 5; ++i) obs::detail::prof_sample_now_for_test();
    }
    for (int i = 0; i < 3; ++i) obs::detail::prof_sample_now_for_test();
  }
  obs::detail::prof_sample_now_for_test();  // outside any phase

  const obs::ProfSnapshot snap = obs::prof_snapshot();
  EXPECT_EQ(snap.samples, 9);
  EXPECT_EQ(snap.dropped, 0);
  EXPECT_EQ(samples_for_path(snap, {"prof.test.outer", "prof.test.inner"}), 5);
  EXPECT_EQ(samples_for_path(snap, {"prof.test.outer"}), 3);
  EXPECT_EQ(samples_for_path(snap, {}), 1);

  // Self-time charges each sample to its innermost frame only.
  const std::vector<obs::ProfPhaseSelf> self = obs::prof_self_phases(snap);
  ASSERT_FALSE(self.empty());
  EXPECT_EQ(self[0].phase, "prof.test.inner");
  EXPECT_EQ(self[0].samples, 5);

  // The obs snapshot republishes the window as prof.* gauges.
  const obs::Snapshot s = obs::snapshot();
  EXPECT_EQ(s.counter("prof.samples"), 9);
  EXPECT_EQ(s.counter("prof.phase.prof.test.inner.samples"), 5);
  EXPECT_EQ(s.counter("prof.phase.(none).samples"), 1);

  obs::prof_stop();
  EXPECT_EQ(obs::prof_status(), "stopped");
  obs::detail::set_prof_timer_hooks_for_test(nullptr);
}

TEST(Prof, MultiThreadSamplesStaySeparated) {
  obs::detail::set_prof_timer_hooks_for_test(&kFakeHooks);
  ASSERT_TRUE(obs::prof_start());
  // Per-thread phase stacks: concurrent samples on different threads must
  // attribute to each thread's own path, never to a sibling's.
  auto worker = [](const char* phase, int n) {
    obs::PhaseScope scope(phase);
    for (int i = 0; i < n; ++i) obs::detail::prof_sample_now_for_test();
  };
  std::thread a(worker, "prof.test.a", 7);
  std::thread b(worker, "prof.test.b", 4);
  worker("prof.test.main", 2);
  a.join();
  b.join();

  const obs::ProfSnapshot snap = obs::prof_snapshot();
  EXPECT_EQ(snap.samples, 13);
  EXPECT_EQ(samples_for_path(snap, {"prof.test.a"}), 7);
  EXPECT_EQ(samples_for_path(snap, {"prof.test.b"}), 4);
  EXPECT_EQ(samples_for_path(snap, {"prof.test.main"}), 2);
  obs::prof_stop();
  obs::detail::set_prof_timer_hooks_for_test(nullptr);
}

TEST(Prof, WorkerInheritsSpawnerFullPath) {
  // The mechanism behind "jobs=1 and jobs=4 attribute to the same phase
  // paths": a worker re-opening the spawner's captured path produces
  // byte-identical sample keys.
  obs::detail::set_prof_timer_hooks_for_test(&kFakeHooks);
  ASSERT_TRUE(obs::prof_start());
  {
    obs::PhaseScope outer("subst.pass");
    obs::PhaseScope inner("subst.attempt");
    obs::detail::prof_sample_now_for_test();  // spawner's own sample
    const obs::PhasePath path = obs::capture_phase_path();
    ASSERT_EQ(path.depth, 2);
    std::thread t([&path] {
      obs::PhasePathScope inherit(path);
      obs::detail::prof_sample_now_for_test();
    });
    t.join();
  }
  const obs::ProfSnapshot snap = obs::prof_snapshot();
  // Both samples land on one path — not one path plus a worker variant.
  EXPECT_EQ(samples_for_path(snap, {"subst.pass", "subst.attempt"}), 2);
  EXPECT_EQ(snap.paths.size(), 1u);
  obs::prof_stop();
  obs::detail::set_prof_timer_hooks_for_test(nullptr);
}

TEST(Prof, ResetFoldsWindowIntoCumulativeProfile) {
  obs::detail::set_prof_timer_hooks_for_test(&kFakeHooks);
  ASSERT_TRUE(obs::prof_start());
  {
    obs::PhaseScope scope("prof.test.first");
    for (int i = 0; i < 3; ++i) obs::detail::prof_sample_now_for_test();
  }
  obs::reset();  // per-method bench window boundary
  EXPECT_EQ(obs::prof_snapshot().samples, 0) << "window must restart";
  {
    obs::PhaseScope scope("prof.test.second");
    for (int i = 0; i < 2; ++i) obs::detail::prof_sample_now_for_test();
  }
  EXPECT_EQ(obs::prof_snapshot().samples, 2);

  // The folded rendering spans both windows.
  const std::string folded = obs::render_folded_profile();
  EXPECT_NE(folded.find("prof.test.first 3\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("prof.test.second 2\n"), std::string::npos) << folded;
  obs::prof_stop();
  obs::detail::set_prof_timer_hooks_for_test(nullptr);
}

TEST(Prof, FoldedFileIsFlamegraphCollapsedFormat) {
  obs::detail::set_prof_timer_hooks_for_test(&kFakeHooks);
  ASSERT_TRUE(obs::prof_start());
  {
    obs::PhaseScope outer("prof.test.outer");
    obs::PhaseScope inner("prof.test.inner");
    for (int i = 0; i < 6; ++i) obs::detail::prof_sample_now_for_test();
  }
  const std::string path =
      ::testing::TempDir() + "/prof_test_folded.txt";
  ASSERT_TRUE(obs::write_folded_profile(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  bool found = false;
  while (std::getline(in, line)) {
    ++lines;
    // "frame;frame;... count": a space-separated trailing integer.
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(std::atoll(line.c_str() + sp + 1), 0) << line;
    if (line == "prof.test.outer;prof.test.inner 6") found = true;
  }
  EXPECT_GE(lines, 1);
  EXPECT_TRUE(found);
  std::remove(path.c_str());
  obs::prof_stop();
  obs::detail::set_prof_timer_hooks_for_test(nullptr);
}

TEST(Prof, RealTimerSamplesABusyPhase) {
  // End-to-end through the real SIGPROF plumbing. Hosts (or builds) where
  // profiling timers are unavailable skip with the reason on record —
  // that path is itself the degradation contract.
  if (!obs::prof_available())
    GTEST_SKIP() << "profiler unavailable: " << obs::prof_status();
  if (!obs::prof_start())
    GTEST_SKIP() << "timer setup failed: " << obs::prof_status();
  EXPECT_EQ(obs::prof_status(), "ok");
  {
    obs::PhaseScope scope("prof.test.spin");
    obs::Timer t;
    volatile std::uint64_t sink = 1;
    // ~300 ms of pure CPU at ~1 kHz => a few hundred samples.
    while (t.elapsed_ms() < 300.0)
      for (int i = 0; i < 10000; ++i) sink = sink * 6364136223846793005ull + 1;
  }
  obs::prof_stop();
  const obs::ProfSnapshot snap = obs::prof_snapshot();
  EXPECT_GT(snap.samples, 10) << "expected ~300 samples from 300 ms of CPU";
  // The spin dominates this process's CPU time, so it must dominate the
  // profile.
  ASSERT_FALSE(snap.paths.empty());
  EXPECT_EQ(samples_for_path(snap, {"prof.test.spin"}), snap.paths[0].samples);
  EXPECT_GT(snap.paths[0].samples, snap.samples / 2);
}

TEST(Prof, StartIsIdempotentAndStopRestoresState) {
  obs::detail::set_prof_timer_hooks_for_test(&kFakeHooks);
  ASSERT_TRUE(obs::prof_start());
  EXPECT_TRUE(obs::prof_start());  // already running: no-op success
  EXPECT_TRUE(obs::prof_enabled());
  obs::prof_stop();
  EXPECT_FALSE(obs::prof_enabled());
  obs::prof_stop();  // double stop is harmless
  EXPECT_EQ(obs::prof_status(), "stopped");
  // Restartable after a stop.
  ASSERT_TRUE(obs::prof_start());
  EXPECT_EQ(obs::prof_status(), "ok");
  obs::prof_stop();
  obs::detail::set_prof_timer_hooks_for_test(nullptr);
}

}  // namespace
}  // namespace rarsub
