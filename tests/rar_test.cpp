#include "rar/rar_opt.hpp"
#include "rar/redundancy.hpp"

#include <gtest/gtest.h>

#include <random>

namespace rarsub {
namespace {

GateNet random_gatenet(std::mt19937& rng, int num_pis, int num_gates) {
  GateNet gn;
  for (int i = 0; i < num_pis; ++i) gn.add_pi("x" + std::to_string(i));
  std::uniform_int_distribution<int> nfan(1, 3);
  for (int i = 0; i < num_gates; ++i) {
    const int existing = gn.num_gates();
    std::uniform_int_distribution<int> pick(0, existing - 1);
    std::vector<Signal> fanins;
    const int k = nfan(rng);
    for (int j = 0; j < k; ++j) fanins.push_back({pick(rng), (rng() & 1) != 0});
    gn.add_gate((rng() & 1) ? GateType::And : GateType::Or, std::move(fanins));
  }
  gn.add_output(gn.num_gates() - 1);
  return gn;
}

std::vector<std::uint64_t> output_signature(const GateNet& gn) {
  // Exhaustive signature over <= 6 PIs packed into words.
  std::vector<std::uint64_t> pi_words(gn.pis().size());
  for (std::size_t i = 0; i < pi_words.size(); ++i) {
    std::uint64_t w = 0;
    for (int m = 0; m < 64; ++m)
      if ((m >> i) & 1) w |= 1ULL << m;
    pi_words[i] = w;
  }
  const auto vals = gn.eval64(pi_words);
  std::vector<std::uint64_t> out;
  for (int o : gn.outputs()) out.push_back(vals[static_cast<std::size_t>(o)]);
  return out;
}

TEST(Redundancy, RemovesDuplicateLiteral) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int g =
      gn.add_gate(GateType::And, {{a, false}, {a, false}, {b, false}});
  gn.add_output(g);
  const int removed = remove_all_redundancies(gn);
  EXPECT_EQ(removed, 1);
  EXPECT_EQ(gn.gate(g).fanins.size(), 2u);
}

TEST(Redundancy, ConsensusCubeIsRemovedFromSop) {
  // f = ab + a'c + bc: the bc cube is redundant; removing either of its
  // literal wires (or the cube wire) is safe and RR should find a win.
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int c = gn.add_pi("c");
  const int c1 = gn.add_gate(GateType::And, {{a, false}, {b, false}});
  const int c2 = gn.add_gate(GateType::And, {{a, true}, {c, false}});
  const int c3 = gn.add_gate(GateType::And, {{b, false}, {c, false}});
  const int f =
      gn.add_gate(GateType::Or, {{c1, false}, {c2, false}, {c3, false}});
  gn.add_output(f);

  const auto before = output_signature(gn);
  const int removed = remove_all_redundancies(gn);
  EXPECT_GE(removed, 1);
  EXPECT_EQ(output_signature(gn), before);
}

TEST(Redundancy, BothPolaritiesConstantizesGate) {
  // g = a & !a == 0: with both_polarities the gate becomes Const0.
  GateNet gn;
  const int a = gn.add_pi("a");
  const int g = gn.add_gate(GateType::And, {{a, false}, {a, true}});
  const int f = gn.add_gate(GateType::Or, {{g, false}});
  gn.add_output(f);
  const auto before = output_signature(gn);
  RemoveOptions opts;
  opts.both_polarities = true;
  remove_all_redundancies(gn, opts);
  EXPECT_EQ(output_signature(gn), before);
  // g is constant now (either polarity-removal or pin-removal route).
  EXPECT_TRUE(gn.gate(g).fanins.size() < 2 || gn.gate(g).type == GateType::Const0);
}

TEST(Redundancy, IrredundantCircuitUntouched) {
  GateNet gn;
  const int a = gn.add_pi("a");
  const int b = gn.add_pi("b");
  const int c = gn.add_pi("c");
  const int c1 = gn.add_gate(GateType::And, {{a, false}, {b, false}});
  const int c2 = gn.add_gate(GateType::And, {{a, true}, {c, false}});
  const int f = gn.add_gate(GateType::Or, {{c1, false}, {c2, false}});
  gn.add_output(f);
  EXPECT_EQ(remove_all_redundancies(gn), 0);
}

TEST(RedundancyProperty, RemovalPreservesOutputs) {
  std::mt19937 rng(97);
  for (int iter = 0; iter < 40; ++iter) {
    GateNet gn = random_gatenet(rng, 5, 14);
    const auto before = output_signature(gn);
    RemoveOptions opts;
    opts.both_polarities = (iter % 2) == 0;
    opts.learning_depth = (iter % 3) == 0 ? 1 : 0;
    remove_all_redundancies(gn, opts);
    EXPECT_EQ(output_signature(gn), before) << "iter " << iter;
  }
}

// Paper Fig. 1: the classic RAR example — adding one redundant connection
// makes two other wires redundant, shrinking the circuit.
TEST(RarOpt, AddOneRemoveTwoShape) {
  // A known instance of the pattern (from the RAR literature): adding a
  // connection creates a conflict on two reconvergent wires. We verify the
  // optimizer preserves function and never increases the wire count.
  std::mt19937 rng(101);
  for (int iter = 0; iter < 25; ++iter) {
    GateNet gn = random_gatenet(rng, 5, 12);
    const auto before = output_signature(gn);
    int wires_before = 0;
    for (int g = 0; g < gn.num_gates(); ++g)
      wires_before += static_cast<int>(gn.gate(g).fanins.size());
    const RarStats st = rar_optimize(gn);
    int wires_after = 0;
    for (int g = 0; g < gn.num_gates(); ++g)
      wires_after += static_cast<int>(gn.gate(g).fanins.size());
    EXPECT_EQ(output_signature(gn), before) << "iter " << iter;
    EXPECT_LE(wires_after, wires_before);
    EXPECT_EQ(wires_after, wires_before - st.wires_removed + st.wires_added);
  }
}

}  // namespace
}  // namespace rarsub
