#include "resub/algebraic_resub.hpp"

#include <gtest/gtest.h>

#include "network/simulate.hpp"
#include "verify/equivalence.hpp"

namespace rarsub {
namespace {

Network textbook() {
  // f = ac + ad + bc + bd + e, g = a + b  =>  resub gives f = g(c+d) + e.
  Network net("t");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId d = net.add_pi("d");
  const NodeId e = net.add_pi("e");
  const NodeId f = net.add_node(
      "f", {a, b, c, d, e},
      Sop::from_strings({"1-1--", "1--1-", "-11--", "-1-1-", "----1"}));
  const NodeId g = net.add_node("g", {a, b}, Sop::from_strings({"1-", "-1"}));
  net.add_po("f", f);
  net.add_po("g", g);
  return net;
}

TEST(Resub, TextbookSubstitution) {
  Network net = textbook();
  Network before = net;
  const int lits_before = net.factored_literals();
  const ResubStats st = algebraic_resub(net);
  EXPECT_TRUE(net.check());
  EXPECT_GE(st.substitutions, 1);
  EXPECT_LT(net.factored_literals(), lits_before);
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
  // f must now use g.
  const NodeId f = net.find_node("f");
  const NodeId g = net.find_node("g");
  bool reads = false;
  for (NodeId x : net.node(f).fanins) reads |= (x == g);
  EXPECT_TRUE(reads);
}

TEST(Resub, ComplementDivisor) {
  // f = a'b' + c, g = a + b: f = g' + c via the complement divisor.
  Network net("t");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId f =
      net.add_node("f", {a, b, c}, Sop::from_strings({"00-", "--1"}));
  const NodeId g = net.add_node("g", {a, b}, Sop::from_strings({"1-", "-1"}));
  net.add_po("f", f);
  net.add_po("g", g);
  Network before = net;

  ResubOptions opts;
  opts.use_complement = true;
  const std::optional<int> gain =
      algebraic_substitute(net, f, g, opts, /*commit=*/true);
  ASSERT_TRUE(gain.has_value());
  EXPECT_GT(*gain, 0);
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
}

TEST(Resub, NoSubstitutionWhenNothingShared) {
  Network net("t");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId d = net.add_pi("d");
  const NodeId f = net.add_node("f", {a, b}, Sop::from_strings({"11"}));
  const NodeId g = net.add_node("g", {c, d}, Sop::from_strings({"1-", "-1"}));
  net.add_po("f", f);
  net.add_po("g", g);
  const ResubStats st = algebraic_resub(net);
  EXPECT_EQ(st.substitutions, 0);
}

TEST(Resub, RespectsCycleConstraint) {
  Network net("t");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId f = net.add_node("f", {a, b}, Sop::from_strings({"1-", "-1"}));
  const NodeId g = net.add_node("g", {f, a}, Sop::from_strings({"11"}));
  net.add_po("g", g);
  ResubOptions opts;
  EXPECT_EQ(algebraic_substitute(net, f, g, opts, true), std::nullopt);
  EXPECT_TRUE(net.check());
}

TEST(Verify, EquivalenceCatchesDifferences) {
  Network x("x");
  const NodeId a = x.add_pi("a");
  const NodeId b = x.add_pi("b");
  x.add_po("f", x.add_node("f", {a, b}, Sop::from_strings({"11"})));
  Network y("y");
  const NodeId a2 = y.add_pi("a");
  const NodeId b2 = y.add_pi("b");
  y.add_po("f", y.add_node("f", {a2, b2}, Sop::from_strings({"1-", "-1"})));
  const EquivalenceResult r = check_equivalence(x, y);
  EXPECT_FALSE(r.equivalent);
  ASSERT_TRUE(r.counterexample.has_value());
  // The counterexample distinguishes AND from OR.
  const std::uint64_t cex = *r.counterexample;
  const bool va = cex & 1, vb = cex & 2;
  EXPECT_NE(va && vb, va || vb);
}

TEST(Verify, NameMismatchReported) {
  Network x("x");
  x.add_po("f", x.add_node("f", {x.add_pi("a")}, Sop::from_strings({"1"})));
  Network y("y");
  y.add_po("g", y.add_node("g", {y.add_pi("a")}, Sop::from_strings({"1"})));
  const EquivalenceResult r = check_equivalence(x, y);
  EXPECT_FALSE(r.equivalent);
  EXPECT_NE(r.message.find("PO name sets differ"), std::string::npos);
  EXPECT_NE(r.message.find("f"), std::string::npos);
  EXPECT_NE(r.message.find("g"), std::string::npos);
}

}  // namespace
}  // namespace rarsub
