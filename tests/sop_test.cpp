#include "sop/sop.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace rarsub {
namespace {

using testutil::random_sop;
using testutil::same_function;
using testutil::truth_table;

TEST(Sop, BasicConstruction) {
  Sop f = Sop::from_strings({"11-", "0-1"});
  EXPECT_EQ(f.num_vars(), 3);
  EXPECT_EQ(f.num_cubes(), 2);
  EXPECT_EQ(f.num_literals(), 4);
  EXPECT_FALSE(f.is_zero());
}

TEST(Sop, ZeroAndOne) {
  EXPECT_TRUE(Sop::zero(4).is_zero());
  EXPECT_TRUE(Sop::one(4).is_tautology());
  EXPECT_FALSE(Sop::zero(4).is_tautology());
  EXPECT_FALSE(Sop::one(4).is_zero());
}

TEST(Sop, EmptyCubesAreDropped) {
  Sop f(3);
  Cube c = Cube::from_string("1--").intersect(Cube::from_string("0--"));
  ASSERT_TRUE(c.is_empty());
  f.add_cube(c);
  EXPECT_EQ(f.num_cubes(), 0);
}

TEST(Sop, SccContainsIsStructural) {
  const Sop f = Sop::from_strings({"11-", "0-1"});
  EXPECT_TRUE(f.scc_contains(Cube::from_string("111")));
  EXPECT_FALSE(f.scc_contains(Cube::from_string("1-1")));  // needs two cubes
}

TEST(Sop, ContainsCubeIsFunctional) {
  // f = ab + ab' contains cube a even though no single cube does.
  const Sop f = Sop::from_strings({"11", "10"});
  EXPECT_FALSE(f.scc_contains(Cube::from_string("1-")));
  EXPECT_TRUE(f.contains_cube(Cube::from_string("1-")));
}

TEST(Sop, SosDefinitionFromPaper) {
  // Paper Sec. III-A example family: every cube of g is contained by at
  // least one cube of d.
  const Sop d = Sop::from_strings({"11--", "--11"});   // ab + cd
  const Sop g = Sop::from_strings({"111-", "-111"});   // abc + bcd
  EXPECT_TRUE(g.is_sos_of(d));
  const Sop h = Sop::from_strings({"111-", "1--1"});   // abc + ad
  EXPECT_FALSE(h.is_sos_of(d));
}

TEST(Sop, Lemma1SosImpliesAndInvariance) {
  // Lemma 1: if F is an SOS of D then F & D == F.
  const Sop d = Sop::from_strings({"11--", "--11"});
  const Sop f = Sop::from_strings({"111-", "-111", "11-0"});
  ASSERT_TRUE(f.is_sos_of(d));
  EXPECT_TRUE(same_function(f.boolean_and(d), f));
}

TEST(SopProperty, Lemma1OnRandomCovers) {
  std::mt19937 rng(17);
  for (int iter = 0; iter < 100; ++iter) {
    const Sop d = random_sop(rng, 6, 4, 0.4);
    if (d.num_cubes() == 0) continue;
    // Build F as random sub-cubes of cubes of d -> F is an SOS of D.
    Sop f(6);
    std::uniform_int_distribution<int> pick_cube(0, d.num_cubes() - 1);
    std::uniform_int_distribution<int> pick_var(0, 5);
    for (int k = 0; k < 5; ++k) {
      Cube c = d.cube(pick_cube(rng));
      for (int j = 0; j < 2; ++j) {
        const int v = pick_var(rng);
        if (c.lit(v) == Lit::Absent)
          c.set_lit(v, (rng() & 1) ? Lit::Pos : Lit::Neg);
      }
      f.add_cube(c);
    }
    ASSERT_TRUE(f.is_sos_of(d));
    EXPECT_TRUE(same_function(f.boolean_and(d), f));
  }
}

TEST(Sop, CofactorByVar) {
  const Sop f = Sop::from_strings({"11-", "0-1"});
  const Sop f1 = f.cofactor(0, true);
  EXPECT_TRUE(same_function(f1, Sop::from_strings({"-1-"})));
  const Sop f0 = f.cofactor(0, false);
  EXPECT_TRUE(same_function(f0, Sop::from_strings({"--1"})));
}

TEST(Sop, TautologyKnownCases) {
  EXPECT_TRUE(Sop::from_strings({"1-", "0-"}).is_tautology());
  EXPECT_TRUE(Sop::from_strings({"1-", "01", "00"}).is_tautology());
  EXPECT_FALSE(Sop::from_strings({"1-", "01"}).is_tautology());
  EXPECT_TRUE(Sop::from_strings({"--"}).is_tautology());
}

TEST(SopProperty, TautologyMatchesTruthTable) {
  std::mt19937 rng(23);
  for (int iter = 0; iter < 200; ++iter) {
    const Sop f = random_sop(rng, 5, 6, 0.35);
    const auto tt = truth_table(f);
    const bool taut = std::all_of(tt.begin(), tt.end(), [](bool b) { return b; });
    EXPECT_EQ(f.is_tautology(), taut) << f.to_string();
  }
}

TEST(Sop, ComplementKnownCases) {
  const Sop f = Sop::from_strings({"1-", "-1"});  // a + b
  const Sop fc = f.complement();                  // a'b'
  EXPECT_TRUE(same_function(fc, Sop::from_strings({"00"})));
  EXPECT_TRUE(Sop::zero(3).complement().is_tautology());
  EXPECT_TRUE(Sop::one(3).complement().is_zero());
}

TEST(SopProperty, ComplementMatchesTruthTable) {
  std::mt19937 rng(29);
  for (int iter = 0; iter < 150; ++iter) {
    const Sop f = random_sop(rng, 6, 5, 0.4);
    const Sop fc = f.complement();
    const auto tf = truth_table(f);
    const auto tc = truth_table(fc);
    for (std::size_t m = 0; m < tf.size(); ++m)
      ASSERT_NE(tf[m], tc[m]) << "minterm " << m << " of " << f.to_string();
  }
}

TEST(SopProperty, BooleanOpsMatchTruthTable) {
  std::mt19937 rng(31);
  for (int iter = 0; iter < 100; ++iter) {
    const Sop f = random_sop(rng, 5, 4, 0.45);
    const Sop g = random_sop(rng, 5, 4, 0.45);
    const auto tf = truth_table(f), tg = truth_table(g);
    const auto ta = truth_table(f.boolean_and(g));
    const auto to = truth_table(f.boolean_or(g));
    for (std::size_t m = 0; m < tf.size(); ++m) {
      ASSERT_EQ(ta[m], tf[m] && tg[m]);
      ASSERT_EQ(to[m], tf[m] || tg[m]);
    }
  }
}

TEST(Sop, SccMinimizeRemovesContainedAndDuplicate) {
  Sop f = Sop::from_strings({"11-", "111", "11-"});
  f.scc_minimize();
  EXPECT_EQ(f.num_cubes(), 1);
  EXPECT_EQ(f.cube(0).to_string(), "11-");
}

TEST(Sop, SupportAndLiteralCounts) {
  const Sop f = Sop::from_strings({"1-0-", "-10-"});
  EXPECT_EQ(f.support(), (std::vector<int>{0, 1, 2}));
  const auto counts = f.literal_counts();
  EXPECT_EQ(counts[0], 1);  // var0 positive
  EXPECT_EQ(counts[5], 2);  // var2 negative
}

TEST(Sop, RemapMovesVariables) {
  const Sop f = Sop::from_strings({"10"});
  const Sop g = f.remap(4, {3, 1});
  EXPECT_EQ(g.cube(0).to_string(), "-0-1");
}

TEST(Sop, SharpKnownCases) {
  // (a) # (ab) = ab'.
  const Sop a = Sop::from_strings({"1-"});
  const Sop ab = Sop::from_strings({"11"});
  EXPECT_TRUE(same_function(a.sharp(ab), Sop::from_strings({"10"})));
  // x # x = 0; x # 0 = x; 1 # x = complement(x).
  EXPECT_TRUE(a.sharp(a).is_zero());
  EXPECT_TRUE(same_function(a.sharp(Sop::zero(2)), a));
  EXPECT_TRUE(same_function(Sop::one(2).sharp(a), a.complement()));
}

TEST(SopProperty, SharpMatchesTruthTable) {
  std::mt19937 rng(467);
  for (int iter = 0; iter < 120; ++iter) {
    const Sop f = random_sop(rng, 6, 5, 0.4);
    const Sop g = random_sop(rng, 6, 4, 0.4);
    const Sop s = f.sharp(g);
    const auto tf = truth_table(f), tg = truth_table(g), ts = truth_table(s);
    for (std::size_t m = 0; m < tf.size(); ++m)
      ASSERT_EQ(ts[m], tf[m] && !tg[m]) << m;
  }
}

TEST(Sop, EqualsIsFunctional) {
  const Sop f = Sop::from_strings({"11", "10"});
  const Sop g = Sop::from_strings({"1-"});
  EXPECT_TRUE(f.equals(g));
  EXPECT_FALSE(f == g);
}

}  // namespace
}  // namespace rarsub
