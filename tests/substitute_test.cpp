#include "division/substitute.hpp"

#include <gtest/gtest.h>

#include <random>

#include "network/complement_cache.hpp"
#include "network/simulate.hpp"
#include "obs/ledger.hpp"
#include "test_util.hpp"

namespace rarsub {
namespace {

std::vector<std::uint64_t> po_signature(const Network& net) {
  // Exhaustive over up to 6 PIs using one 64-bit word; beyond that, a
  // fixed set of random patterns.
  const std::size_t n = net.pis().size();
  std::vector<std::uint64_t> pi_words(n);
  if (n <= 6) {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t w = 0;
      for (int m = 0; m < 64; ++m)
        if ((m >> i) & 1) w |= 1ULL << m;
      pi_words[i] = w;
    }
    return simulate64(net, pi_words);
  }
  std::mt19937_64 rng(12345);
  std::vector<std::uint64_t> sig;
  for (int round = 0; round < 8; ++round) {
    for (std::size_t i = 0; i < n; ++i) pi_words[i] = rng();
    const auto out = simulate64(net, pi_words);
    sig.insert(sig.end(), out.begin(), out.end());
  }
  return sig;
}

// Paper Sec. I example: f = ab' + ac + bc' + b'c, node d with the function
// ab + b'c (SOS substitution makes f cheaper).
Network intro_example() {
  Network net("intro");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId f = net.add_node(
      "f", {a, b, c}, Sop::from_strings({"10-", "1-1", "-10", "-01"}));
  const NodeId d =
      net.add_node("d", {a, b, c}, Sop::from_strings({"11-", "-01"}));
  net.add_po("f", f);
  net.add_po("d", d);
  return net;
}

TEST(Substitute, BasicCommitsPositiveGainAndPreservesPOs) {
  Network net = intro_example();
  const auto before = po_signature(net);
  const int lits_before = net.factored_literals();

  SubstituteOptions opts;
  opts.method = SubstMethod::Basic;
  const SubstituteStats st = substitute_network(net, opts);
  EXPECT_TRUE(net.check());
  EXPECT_EQ(po_signature(net), before);
  EXPECT_LE(net.factored_literals(), lits_before);
  EXPECT_EQ(st.literals_after, net.factored_literals());
  if (st.substitutions > 0) {
    // f must now read d.
    const NodeId f = net.find_node("f");
    const NodeId d = net.find_node("d");
    bool reads = false;
    for (NodeId x : net.node(f).fanins) reads |= (x == d);
    EXPECT_TRUE(reads);
  }
}

TEST(Substitute, PosSubstitutionOnProductOfSums) {
  // Paper Sec. I: h = (a+b)(c+d) and x = a+b exist; POS substitution
  // rewrites h = x(c+d) — "completely not possible in the traditional
  // approaches".
  Network net("pos");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId d = net.add_pi("d");
  // h = (a+b)(c+d) as SOP: ac + ad + bc + bd.
  const NodeId h = net.add_node(
      "h", {a, b, c, d},
      Sop::from_strings({"1-1-", "1--1", "-11-", "-1-1"}));
  const NodeId x = net.add_node("x", {a, b}, Sop::from_strings({"1-", "-1"}));
  net.add_po("h", h);
  net.add_po("x", x);

  const auto before = po_signature(net);
  const int lits_before = net.factored_literals();  // 4 (h factored) + 2

  SubstituteOptions opts;
  opts.method = SubstMethod::Basic;
  opts.try_pos = true;
  const SubstituteStats st = substitute_network(net, opts);
  EXPECT_TRUE(net.check());
  EXPECT_EQ(po_signature(net), before);
  EXPECT_LT(net.factored_literals(), lits_before);
  EXPECT_GE(st.substitutions, 1);
  // h = x(c+d): 3 literals.
  const NodeId h2 = net.find_node("h");
  EXPECT_LE(net.node(h2).func.num_literals(), 4);
  bool reads_x = false;
  for (NodeId y : net.node(h2).fanins) reads_x |= (y == net.find_node("x"));
  EXPECT_TRUE(reads_x);
}

TEST(Substitute, ExtendedDecomposesDivisor) {
  // Divisor g = ab + cd + e; dividend f = abx + cdx. Basic division by g
  // fails (no cube of f is contained by cube e... actually by any g cube
  // it is: abx ⊆ ab). The win: extended division splits g so f = x·g_c.
  Network net("ext");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId d = net.add_pi("d");
  const NodeId e = net.add_pi("e");
  const NodeId x = net.add_pi("x");
  const NodeId g = net.add_node(
      "g", {a, b, c, d, e}, Sop::from_strings({"11---", "--11-", "----1"}));
  const NodeId f = net.add_node(
      "f", {a, b, c, d, x}, Sop::from_strings({"11--1", "--111"}));
  net.add_po("f", f);
  net.add_po("g", g);

  const auto before = po_signature(net);
  SubstituteOptions opts;
  opts.method = SubstMethod::Extended;
  const SubstituteStats st = substitute_network(net, opts);
  EXPECT_TRUE(net.check());
  EXPECT_EQ(po_signature(net), before);
  if (st.substitutions > 0 && st.decompositions > 0) {
    // g must now be an OR of the new core node and its rest.
    const NodeId g2 = net.find_node("g");
    EXPECT_GE(net.node(g2).fanins.size(), 1u);
  }
}

TEST(Substitute, GdcModeUsesDontCaresAndPreservesPOs) {
  Network net = intro_example();
  const auto before = po_signature(net);
  SubstituteOptions opts;
  opts.method = SubstMethod::ExtendedGdc;
  const SubstituteStats st = substitute_network(net, opts);
  (void)st;
  EXPECT_TRUE(net.check());
  EXPECT_EQ(po_signature(net), before);
}

TEST(Substitute, RejectsCyclicDivisor) {
  Network net("cyc");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId f = net.add_node("f", {a, b}, Sop::from_strings({"11"}));
  const NodeId g = net.add_node("g", {f, a}, Sop::from_strings({"11"}));
  net.add_po("g", g);
  SubstituteOptions opts;
  // g depends on f: substituting g into f would create a cycle.
  EXPECT_EQ(try_substitution(net, f, g, opts, true), std::nullopt);
  EXPECT_TRUE(net.check());
}

TEST(Substitute, TrySubstitutionDryRunDoesNotMutate) {
  Network net = intro_example();
  const std::string before = [&] {
    std::string s;
    for (NodeId id = 0; id < net.num_nodes(); ++id)
      if (net.node(id).alive && !net.node(id).is_pi)
        s += net.node(id).func.to_string() + ";";
    return s;
  }();
  SubstituteOptions opts;
  (void)try_substitution(net, net.find_node("f"), net.find_node("d"), opts,
                         /*commit=*/false);
  const std::string after = [&] {
    std::string s;
    for (NodeId id = 0; id < net.num_nodes(); ++id)
      if (net.node(id).alive && !net.node(id).is_pi)
        s += net.node(id).func.to_string() + ";";
    return s;
  }();
  EXPECT_EQ(before, after);
}

TEST(Substitute, TrySubstitutionReusesCallerComplementCache) {
  // A caller-owned cache is filled by the first dry-run attempt and
  // reused (not re-derived) by later ones; results match the throwaway-
  // cache default exactly.
  Network net = intro_example();
  const NodeId f = net.find_node("f");
  const NodeId d = net.find_node("d");
  SubstituteOptions opts;

  ComplementCache shared;
  const auto cached1 = try_substitution(net, f, d, opts, false, &shared);
  const std::size_t filled = shared.size();
  EXPECT_GT(filled, 0u);  // POS views forced the complements in
  const auto cached2 = try_substitution(net, f, d, opts, false, &shared);
  EXPECT_EQ(shared.size(), filled);  // second call hit the cache
  const auto fresh = try_substitution(net, f, d, opts, false);
  EXPECT_EQ(cached1, fresh);
  EXPECT_EQ(cached2, fresh);
}

// ---------------------------------------------------------------------
// Property: every method preserves PO functions on random multi-level
// networks with shared structure.

Network random_network(std::mt19937& rng, int num_pis, int num_nodes) {
  Network net("rand");
  std::vector<NodeId> pool;
  for (int i = 0; i < num_pis; ++i)
    pool.push_back(net.add_pi("x" + std::to_string(i)));
  std::uniform_int_distribution<int> nfan(2, 4);
  std::uniform_int_distribution<int> ncube(1, 4);
  for (int i = 0; i < num_nodes; ++i) {
    const int k = std::min<int>(nfan(rng), static_cast<int>(pool.size()));
    std::vector<NodeId> fanins;
    while (static_cast<int>(fanins.size()) < k) {
      const NodeId cand = pool[rng() % pool.size()];
      if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
        fanins.push_back(cand);
    }
    Sop func(k);
    const int cubes = ncube(rng);
    for (int cidx = 0; cidx < cubes; ++cidx) {
      Cube c(k);
      for (int v = 0; v < k; ++v) {
        const int r = static_cast<int>(rng() % 3);
        if (r == 0) c.set_lit(v, Lit::Pos);
        if (r == 1) c.set_lit(v, Lit::Neg);
      }
      func.add_cube(c);
    }
    if (func.num_cubes() == 0) func = Sop::one(k);
    pool.push_back(net.add_node("n" + std::to_string(i), fanins, func));
  }
  // A few POs from the deepest nodes.
  for (int i = 0; i < 3; ++i)
    net.add_po("o" + std::to_string(i),
               pool[pool.size() - 1 - static_cast<std::size_t>(i)]);
  return net;
}

struct MethodParam {
  int seed;
  SubstMethod method;
  bool pos;
};

class SubstituteProperty : public ::testing::TestWithParam<MethodParam> {};

TEST_P(SubstituteProperty, PreservesPrimaryOutputs) {
  const MethodParam p = GetParam();
  std::mt19937 rng(static_cast<unsigned>(p.seed));
  for (int iter = 0; iter < 8; ++iter) {
    Network net = random_network(rng, 5, 10);
    const auto before = po_signature(net);
    SubstituteOptions opts;
    opts.method = p.method;
    opts.try_pos = p.pos;
    opts.max_passes = 2;
    substitute_network(net, opts);
    ASSERT_TRUE(net.check());
    EXPECT_EQ(po_signature(net), before) << "seed=" << p.seed << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, SubstituteProperty,
    ::testing::Values(MethodParam{11, SubstMethod::Basic, false},
                      MethodParam{12, SubstMethod::Basic, true},
                      MethodParam{13, SubstMethod::Extended, false},
                      MethodParam{14, SubstMethod::Extended, true},
                      MethodParam{15, SubstMethod::ExtendedGdc, true},
                      MethodParam{16, SubstMethod::ExtendedGdc, false}));


TEST(Substitute, DivisorPoolMechanics) {
  // Fig. 3(c) generalization: the useful core (ab) is buried inside d1
  // (= ab + e) while d2 contributes pool context. The pooled vote table
  // selects {ab}. Under per-node factored accounting the new node cannot
  // pay for itself for a single dividend (see substitute.hpp), so the
  // call declines — and must leave the network untouched.
  Network net("pool");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId d = net.add_pi("d");
  const NodeId e = net.add_pi("e");
  const NodeId x = net.add_pi("x");
  const NodeId y = net.add_pi("y");
  const NodeId z = net.add_pi("z");
  const NodeId f = net.add_node(
      "f", {a, b, x, y, z},
      Sop::from_strings({"111--", "11-1-", "11--1"}));
  const NodeId d1 =
      net.add_node("d1", {a, b, e}, Sop::from_strings({"11-", "--1"}));
  const NodeId d2 = net.add_node("d2", {c, d}, Sop::from_strings({"11"}));
  net.add_po("f", f);
  net.add_po("d1", d1);
  net.add_po("d2", d2);

  const Network before = net;
  SubstituteOptions opts;
  opts.method = SubstMethod::Extended;
  const std::optional<int> gain = try_pool_substitution(net, f, {d1, d2}, opts);
  EXPECT_TRUE(net.check());
  EXPECT_EQ(po_signature(net), po_signature(before));
  if (gain.has_value()) {
    // If it does commit, the gain is positive and a fresh core node feeds f.
    EXPECT_GT(*gain, 0);
    const NodeId f2 = net.find_node("f");
    bool has_new_fanin = false;
    for (NodeId nf : net.node(f2).fanins) {
      const Node& nd = net.node(nf);
      if (!nd.is_pi && nd.name != "d1" && nd.name != "d2") has_new_fanin = true;
    }
    EXPECT_TRUE(has_new_fanin);
  } else {
    // Declined: the node functions are untouched.
    const NodeId f2 = net.find_node("f");
    EXPECT_EQ(net.node(f2).func, before.node(before.find_node("f")).func);
  }
}

// Flight-recorder contract: the commit events of a run agree with the
// published stats, and the node_update deltas account for the network's
// literal-count change exactly — nothing mutates covers off the record.
TEST(Substitute, LedgerCommitEventsReconcileWithLiteralDelta) {
  std::mt19937 rng(77);
  for (int iter = 0; iter < 6; ++iter) {
    Network net = random_network(rng, 5, 10);
    const int lits_before = net.factored_literals();

    obs::ledger_end();  // take over any stray session
    ASSERT_TRUE(obs::ledger_begin_memory(1 << 16));
    SubstituteOptions opts;
    opts.method = (iter % 2) ? SubstMethod::Extended : SubstMethod::Basic;
    opts.try_pos = true;
    opts.max_passes = 2;
    const SubstituteStats st = substitute_network(net, opts);
    obs::ledger_end();
    ASSERT_EQ(obs::ledger_dropped(), 0u);

    std::int64_t delta = 0;
    int commits = 0;
    for (const obs::Event& e : obs::ledger_events()) {
      if (e.kind == obs::EventKind::NodeUpdate) delta += e.a - e.b;
      if (e.kind == obs::EventKind::SubstituteCommit) ++commits;
    }
    EXPECT_EQ(commits, st.substitutions) << "iter " << iter;
    EXPECT_EQ(lits_before + delta, net.factored_literals()) << "iter " << iter;
    EXPECT_EQ(st.literals_before, lits_before);
    EXPECT_EQ(st.literals_after, net.factored_literals());
  }
}

TEST(Substitute, DivisorPoolRejectsUnprofitableAndSingleDivisor) {
  Network net("pool2");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId f = net.add_node("f", {a, b}, Sop::from_strings({"11"}));
  const NodeId d1 = net.add_node("d1", {a, b}, Sop::from_strings({"1-", "-1"}));
  net.add_po("f", f);
  net.add_po("d1", d1);
  SubstituteOptions opts;
  // Fewer than two usable divisors: pool declines.
  EXPECT_EQ(try_pool_substitution(net, f, {d1}, opts), std::nullopt);
  EXPECT_TRUE(net.check());
}

}  // namespace
}  // namespace rarsub
