#pragma once
// Shared helpers for the test suites: deterministic random cover
// generation and exhaustive truth-table comparison (the ground truth all
// property tests check against).

#include <cstdint>
#include <random>
#include <vector>

#include "sop/sop.hpp"

namespace rarsub::testutil {

/// Deterministic random cover: `num_cubes` cubes over `num_vars` variables;
/// each variable appears in a cube with probability ~`density` (split
/// between polarities).
inline Sop random_sop(std::mt19937& rng, int num_vars, int num_cubes,
                      double density = 0.5) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Sop f(num_vars);
  for (int i = 0; i < num_cubes; ++i) {
    Cube c(num_vars);
    for (int v = 0; v < num_vars; ++v) {
      const double r = coin(rng);
      if (r < density / 2) c.set_lit(v, Lit::Pos);
      else if (r < density) c.set_lit(v, Lit::Neg);
    }
    f.add_cube(c);
  }
  return f;
}

/// Truth table of a cover as a bit vector of length 2^num_vars.
inline std::vector<bool> truth_table(const Sop& f) {
  const int n = f.num_vars();
  std::vector<bool> tt(static_cast<std::size_t>(1) << n);
  for (std::uint64_t a = 0; a < tt.size(); ++a) tt[a] = f.eval(a);
  return tt;
}

inline bool same_function(const Sop& a, const Sop& b) {
  return truth_table(a) == truth_table(b);
}

}  // namespace rarsub::testutil
