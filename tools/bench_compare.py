#!/usr/bin/env python3
"""Compare two RARSUB_REPORT bench JSONs and gate on regressions.

Usage:
  bench_compare.py BASELINE CURRENT [--cpu-threshold PCT]
                   [--alloc-threshold PCT] [--rss-threshold PCT]
                   [--budget-scale FACTOR] [--require-mem] [--out FILE]
  bench_compare.py CPU_REPORT MEM_REPORT --merge-out FILE
  bench_compare.py --self-test

Reads the JSON reports written by the bench tables (bench/table_common.cpp,
env RARSUB_REPORT=<file>), matches per-(circuit, method) rows by name, and
prints a delta table of literal counts, CPU times, and memory.

Exit status:
  0  no regression
  1  regression: any per-row literal-count increase, a per-method total CPU
     increase beyond --cpu-threshold percent, a per-method total allocation
     increase beyond --alloc-threshold percent, a per-method peak-RSS
     increase beyond --rss-threshold percent, any row over its committed
     time budget, missing coverage in CURRENT, or equivalence failures in
     CURRENT
  2  bad invocation / unreadable or malformed report

Literal counts are deterministic, so the literal gate is strict (any
increase fails). CPU time is noisy, so it is gated on per-method *totals*
with a percentage threshold (default 5%; CI uses a larger value to absorb
machine-to-machine variance). Allocation counts are deterministic per
libstdc++ version but not across them, so they get their own (tighter
than CPU) default threshold; peak RSS includes allocator/kernel slack and
gets a looser one. The memory gates only engage when both reports carry
the fields (RARSUB_MEMSTAT=1 runs) — pass --require-mem to fail instead
of skip when CURRENT lacks them, so CI can't silently lose the gate.

Time budgets are the large tier's hard gate: rows whose BASELINE copy
carries a `time_budget_s` field (committed when the bench binary declares
one, see bench/table_large.cpp) fail outright when the CURRENT run's
cpu_ms exceeds budget * --budget-scale. Unlike the relative CPU gate this
is an absolute ceiling — it catches the "baseline quietly re-blessed
slower" drift a percentage gate can never see. --budget-scale exists for
slow machines (local laptops, emulation); CI runs at 1.0.

--merge-out grafts the memory fields of MEM_REPORT (a RARSUB_MEMSTAT=1
run) onto the rows of CPU_REPORT (a memstat-off run, whose timings are
untainted by tracking overhead) and writes the combined report: the
blessing path for bench/baseline_small.json.
"""

import argparse
import json
import sys


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    rows = {}
    for circuit in report.get("circuits", []):
        cname = circuit["name"]
        for m in circuit.get("methods", []):
            counters = m.get("obs", {}).get("counters", {})
            tried = counters.get("subst.pairs_tried")
            pruned = None
            if tried is not None:
                pruned = sum(counters.get("subst.pairs_pruned_" + r, 0)
                             for r in ("sig", "memo", "cycle"))
            rows[(cname, m["method"])] = {
                "literals": int(m["literals"]),
                "cpu_ms": float(m["cpu_ms"]),
                "equivalent": bool(m.get("equivalent", True)),
                # Committed wall-clock ceiling in seconds (None for rows
                # whose bench binary declares no budget).
                "time_budget_s": m.get("time_budget_s"),
                # Candidate-filter accounting (None for reports predating
                # the filter or for methods that don't run it).
                "pairs_tried": tried,
                "pairs_pruned": pruned,
                # Memory telemetry (None for reports predating it, or for
                # runs without RARSUB_MEMSTAT=1 / without /proc).
                "allocs": m.get("allocs"),
                "alloc_bytes": m.get("alloc_bytes"),
                "peak_rss_kb": m.get("peak_rss_kb"),
                # CPU self-time profile (None without RARSUB_PROF).
                "prof_phases": m.get("prof_phases"),
                # Scratch-arena telemetry (None for pre-arena reports or
                # runs with the arena latched off via RARSUB_ARENA=0).
                "arena": m.get("arena"),
            }
    return report, rows


def prune_rate_lines(base_rows, cur_rows):
    """Informational candidate-filter table: per method, how many (f, d)
    pairs the substitution sweep screened and what share the filter pruned
    (subst.pairs_pruned_{sig,memo,cycle} / screened). Not a gate — reports
    without the counters (pre-filter baselines) show '-'."""

    def totals(rows):
        agg = {}  # method -> [tried, pruned] or None
        for (_, method), r in rows.items():
            if r.get("pairs_tried") is None:
                agg.setdefault(method, None)
                continue
            t = agg.setdefault(method, [0, 0])
            if t is None:
                agg[method] = t = [0, 0]
            t[0] += r["pairs_tried"]
            t[1] += r["pairs_pruned"]
        return agg

    def cell(t):
        if not t or t[0] + t[1] == 0:
            return "%9s %9s %7s" % ("-", "-", "-")
        return "%9d %9d %6.1f%%" % (
            t[0], t[1], 100.0 * t[1] / (t[0] + t[1]))

    base, cur = totals(base_rows), totals(cur_rows)
    lines = [""]
    lines.append("%-10s %9s %9s %7s   %9s %9s %7s  (candidate filter)" % (
        "method", "b_tried", "b_pruned", "b_rate",
        "c_tried", "c_pruned", "c_rate"))
    for method in sorted(set(base) | set(cur)):
        lines.append("%-10s %s   %s" % (
            method, cell(base.get(method)), cell(cur.get(method))))
    return lines


def prof_drift_lines(base_rows, cur_rows):
    """Informational hot-phase table: per method, the self-time share of
    each sampled phase (the bench report's prof_phases block, produced by
    RARSUB_PROF runs) in baseline vs current, biggest movers first. Not a
    gate — sampling shares are statistics, and tools/prof_report.py owns
    the full folded-profile diff (gateable there via --gate). Reports
    without profiling data show '-'."""

    def totals(rows):
        agg = {}  # method -> {phase: samples} or None
        for (_, method), r in rows.items():
            phases = r.get("prof_phases")
            if phases is None:
                agg.setdefault(method, None)
                continue
            t = agg.setdefault(method, {})
            if t is None:
                agg[method] = t = {}
            for phase, d in phases.items():
                t[phase] = t.get(phase, 0) + d.get("samples", 0)
        return agg

    def shares(t):
        total = sum(t.values()) if t else 0
        if total == 0:
            return None
        return {p: 100.0 * n / total for p, n in t.items()}

    base, cur = totals(base_rows), totals(cur_rows)
    lines = [""]
    lines.append("%-10s %-30s %7s %7s %9s  (hot-phase self-time, "
                 "informational)" % ("method", "phase", "base", "cur",
                                     "drift_pp"))
    for method in sorted(set(base) | set(cur)):
        b = shares(base.get(method))
        c = shares(cur.get(method))
        if b is None and c is None:
            lines.append("%-10s %-30s %7s %7s %9s" % (method, "-", "-", "-",
                                                      "-"))
            continue
        movers = []
        for phase in sorted(set(b or {}) | set(c or {})):
            bs = (b or {}).get(phase)
            cs = (c or {}).get(phase)
            movers.append((phase, bs, cs, (cs or 0.0) - (bs or 0.0)))
        movers.sort(key=lambda m: (-abs(m[3]), m[0]))
        for phase, bs, cs, d in movers[:5]:
            lines.append("%-10s %-30s %7s %7s %+8.1f " % (
                method, phase,
                "-" if bs is None else "%.1f%%" % bs,
                "-" if cs is None else "%.1f%%" % cs, d))
    return lines


def arena_util_lines(base_rows, cur_rows):
    """Informational scratch-arena table: per method, the reserved chunk
    capacity, the window high-water mark, the utilization ratio between
    them, and the number of scratch frames (resets). Not a gate — reserved
    capacity plateaus after warm-up and high-water is workload-shaped, so
    this column exists to catch gross over-reservation by eye, not to fail
    CI. Reports without the block (pre-arena baselines, RARSUB_ARENA=0
    runs) show '-'."""

    def totals(rows):
        agg = {}  # method -> [max_reserved, max_high, sum_resets] or None
        for (_, method), r in rows.items():
            a = r.get("arena")
            if a is None:
                agg.setdefault(method, None)
                continue
            t = agg.setdefault(method, [0, 0, 0])
            if t is None:
                agg[method] = t = [0, 0, 0]
            t[0] = max(t[0], a.get("bytes_reserved", 0))
            t[1] = max(t[1], a.get("high_water", 0))
            t[2] += a.get("resets", 0)
        return agg

    def cell(t):
        if not t or t[0] == 0:
            return "%9s %9s %6s %9s" % ("-", "-", "-", "-")
        return "%8dk %8dk %5.1f%% %9d" % (
            t[0] // 1024, t[1] // 1024, 100.0 * t[1] / t[0], t[2])

    base, cur = totals(base_rows), totals(cur_rows)
    lines = [""]
    lines.append("%-10s %9s %9s %6s %9s   %9s %9s %6s %9s  "
                 "(scratch arena, informational)" % (
                     "method", "b_resv", "b_high", "b_util", "b_frames",
                     "c_resv", "c_high", "c_util", "c_frames"))
    for method in sorted(set(base) | set(cur)):
        lines.append("%-10s %s   %s" % (
            method, cell(base.get(method)), cell(cur.get(method))))
    return lines


def budget_gate(base_rows, cur_rows, budget_scale):
    """Hard per-row time-budget gate. The budget is the BASELINE's
    time_budget_s (the committed contract travels with the committed
    numbers; a current run cannot relax its own ceiling), falling back to
    the CURRENT row's copy so a freshly added circuit is gated from its
    first run. Rows without a budget on either side are not gated."""
    lines = [""]
    failures = []
    header = "%-12s %-10s %10s %10s %8s  (time budgets, scale %.2f)" % (
        "circuit", "method", "cur_ms", "budget_s", "used%", budget_scale)
    printed = False
    for key in sorted(cur_rows):
        c = cur_rows[key]
        b = base_rows.get(key, {})
        budget = b.get("time_budget_s")
        if budget is None:
            budget = c.get("time_budget_s")
        if budget is None or budget <= 0:
            continue
        if not printed:
            lines.append(header)
            printed = True
        limit_ms = float(budget) * budget_scale * 1000.0
        used = 100.0 * c["cpu_ms"] / limit_ms if limit_ms > 0 else 0.0
        mark = ""
        if c["cpu_ms"] > limit_ms:
            mark = "  <-- OVER BUDGET"
            failures.append(
                "%s/%s: %.1fms exceeds time budget %.1fs (scale %.2f)"
                % (key[0], key[1], c["cpu_ms"], float(budget), budget_scale))
        lines.append("%-12s %-10s %10.1f %10.1f %7.1f%%%s" % (
            key[0], key[1], c["cpu_ms"], float(budget), used, mark))
    if not printed:
        return [], []
    return lines, failures


def mem_gate(base_rows, cur_rows, alloc_threshold, rss_threshold,
             require_mem):
    """Memory gate over per-method aggregates: total allocation count
    (deterministic within one toolchain) and max peak RSS (noisy, looser
    threshold). Engages only where both reports carry the fields; with
    require_mem a missing side is itself a failure, so CI notices when the
    memstat run silently stops producing data."""
    lines = [""]
    failures = []

    methods = sorted({m for (_, m) in base_rows} | {m for (_, m) in cur_rows})
    header = "%-10s %11s %11s %9s %9s %9s %8s  (alloc gate %.1f%%, rss gate %.1f%%)" % (
        "method", "b_allocs", "c_allocs", "d_alloc%",
        "b_rss_kb", "c_rss_kb", "d_rss%", alloc_threshold, rss_threshold)
    lines.append(header)

    for method in methods:
        ba = ca = 0
        has_pair = False
        base_has = cur_has = False
        b_rss = c_rss = None
        for key in base_rows:
            if key[1] != method or key not in cur_rows:
                continue
            b, c = base_rows[key], cur_rows[key]
            base_has = base_has or b["allocs"] is not None
            cur_has = cur_has or c["allocs"] is not None
            if b["allocs"] is not None and c["allocs"] is not None:
                has_pair = True
                ba += b["allocs"]
                ca += c["allocs"]
            if b["peak_rss_kb"] is not None:
                b_rss = max(b_rss or 0, b["peak_rss_kb"])
            if c["peak_rss_kb"] is not None:
                c_rss = max(c_rss or 0, c["peak_rss_kb"])

        def pct_cell(bv, cv):
            if bv is None or cv is None or bv <= 0:
                return None, "%7s " % "-"
            d = 100.0 * (cv - bv) / bv
            return d, "%+7.1f%%" % d

        d_alloc, alloc_cell = pct_cell(ba if has_pair else None,
                                       ca if has_pair else None)
        d_rss, rss_cell = pct_cell(b_rss, c_rss)
        mark = ""
        if d_alloc is not None and d_alloc > alloc_threshold:
            mark += "  <-- allocation regression"
            failures.append(
                "method %s: allocations %d -> %d (%+.1f%% > %.1f%%)"
                % (method, ba, ca, d_alloc, alloc_threshold))
        if d_rss is not None and d_rss > rss_threshold:
            mark += "  <-- peak RSS regression"
            failures.append(
                "method %s: peak RSS %dkB -> %dkB (%+.1f%% > %.1f%%)"
                % (method, b_rss, c_rss, d_rss, rss_threshold))
        if base_has and not cur_has:
            mark += "  (current lacks allocation data)"
            if require_mem:
                failures.append(
                    "method %s: baseline has allocation data but current "
                    "does not (--require-mem)" % method)
        elif require_mem and not has_pair:
            failures.append(
                "method %s: allocation gate could not engage "
                "(--require-mem)" % method)
        if require_mem and c_rss is None:
            failures.append(
                "method %s: current lacks peak_rss_kb (--require-mem)"
                % method)

        def n_cell(v):
            return "%11s" % "-" if v is None else "%11d" % v

        lines.append("%-10s %s %s %s %s %s %s%s" % (
            method, n_cell(ba if has_pair else None),
            n_cell(ca if has_pair else None), alloc_cell,
            "%9s" % "-" if b_rss is None else "%9d" % b_rss,
            "%9s" % "-" if c_rss is None else "%9d" % c_rss,
            rss_cell, mark))

    return lines, failures


def compare(base_report, base_rows, cur_report, cur_rows, cpu_threshold,
            alloc_threshold=10.0, rss_threshold=30.0, require_mem=False,
            budget_scale=1.0):
    """Returns (lines, failures) where lines is the rendered delta table
    and failures is a list of human-readable regression descriptions."""
    lines = []
    failures = []

    header = "%-12s %-10s %9s %9s %7s %10s %10s %8s" % (
        "circuit", "method", "base_lit", "cur_lit", "d_lit",
        "base_ms", "cur_ms", "d_cpu%")
    lines.append(header)
    lines.append("-" * len(header))

    missing = sorted(set(base_rows) - set(cur_rows))
    extra = sorted(set(cur_rows) - set(base_rows))
    for key in missing:
        failures.append("missing in current: %s/%s" % key)
    for key in extra:
        lines.append("(new, not in baseline: %s/%s)" % key)

    method_cpu = {}  # method -> [base_total, cur_total]
    for key in sorted(base_rows):
        if key not in cur_rows:
            continue
        b, c = base_rows[key], cur_rows[key]
        d_lit = c["literals"] - b["literals"]
        d_cpu = (100.0 * (c["cpu_ms"] - b["cpu_ms"]) / b["cpu_ms"]
                 if b["cpu_ms"] > 0 else 0.0)
        mark = ""
        if d_lit > 0:
            mark = "  <-- literal regression"
            failures.append("%s/%s: literals %d -> %d" %
                            (key[0], key[1], b["literals"], c["literals"]))
        if not c["equivalent"]:
            mark += "  <-- NOT EQUIVALENT"
        lines.append("%-12s %-10s %9d %9d %+7d %10.1f %10.1f %+7.1f%%%s" % (
            key[0], key[1], b["literals"], c["literals"], d_lit,
            b["cpu_ms"], c["cpu_ms"], d_cpu, mark))
        totals = method_cpu.setdefault(key[1], [0.0, 0.0])
        totals[0] += b["cpu_ms"]
        totals[1] += c["cpu_ms"]

    lines.append("")
    lines.append("%-10s %12s %12s %8s  (threshold %.1f%%)" % (
        "method", "base_ms", "cur_ms", "d_cpu%", cpu_threshold))
    for method in sorted(method_cpu):
        bt, ct = method_cpu[method]
        d = 100.0 * (ct - bt) / bt if bt > 0 else 0.0
        mark = ""
        if d > cpu_threshold:
            mark = "  <-- CPU regression"
            failures.append("method %s: total CPU %.1fms -> %.1fms (%+.1f%% > %.1f%%)"
                            % (method, bt, ct, d, cpu_threshold))
        lines.append("%-10s %12.1f %12.1f %+7.1f%%%s" % (method, bt, ct, d, mark))

    bud_l, bud_f = budget_gate(base_rows, cur_rows, budget_scale)
    lines.extend(bud_l)
    failures.extend(bud_f)

    lines.extend(prune_rate_lines(base_rows, cur_rows))
    lines.extend(prof_drift_lines(base_rows, cur_rows))
    lines.extend(arena_util_lines(base_rows, cur_rows))

    mem_l, mem_f = mem_gate(base_rows, cur_rows, alloc_threshold,
                            rss_threshold, require_mem)
    lines.extend(mem_l)
    failures.extend(mem_f)

    eq_fail = int(cur_report.get("equivalence_failures", 0))
    if eq_fail > 0:
        failures.append("current report has %d equivalence failure(s)" % eq_fail)

    return lines, failures


def run_compare(args):
    try:
        base_report, base_rows = load_report(args.baseline)
        cur_report, cur_rows = load_report(args.current)
    except (OSError, ValueError, KeyError) as e:
        print("bench_compare: cannot read report: %s" % e, file=sys.stderr)
        return 2
    if not base_rows:
        print("bench_compare: baseline has no circuit rows", file=sys.stderr)
        return 2

    lines, failures = compare(base_report, base_rows, cur_report, cur_rows,
                              args.cpu_threshold, args.alloc_threshold,
                              args.rss_threshold, args.require_mem,
                              args.budget_scale)
    text = "\n".join(lines) + "\n"
    if failures:
        text += "\nREGRESSIONS:\n" + "\n".join("  - " + f for f in failures) + "\n"
    else:
        text += "\nno regressions (literal gate strict, CPU gate %.1f%%, " \
                "alloc gate %.1f%%, rss gate %.1f%%)\n" \
                % (args.cpu_threshold, args.alloc_threshold,
                   args.rss_threshold)
    print(text, end="")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
    return 1 if failures else 0


# "arena" rides along so every memory field of the blessed baseline —
# allocator telemetry and scratch-arena gauges alike — describes the same
# (memstat-on) run. The workload is deterministic, so the arena numbers of
# the two runs agree anyway; taking the memstat run's copy just keeps the
# provenance uniform.
MERGE_KEYS = ("peak_rss_kb", "allocs", "alloc_bytes", "peak_live_bytes",
              "mem_phases", "arena")


def run_merge(args):
    """Graft the memory fields of a memstat-on report onto the rows of a
    memstat-off report (whose CPU numbers are untainted by tracking) and
    write the result: the blessing path for the committed baseline."""
    try:
        with open(args.baseline, "r", encoding="utf-8") as f:
            cpu_report = json.load(f)
        with open(args.current, "r", encoding="utf-8") as f:
            mem_report = json.load(f)
    except (OSError, ValueError) as e:
        print("bench_compare: cannot read report: %s" % e, file=sys.stderr)
        return 2

    mem_rows = {}
    for circuit in mem_report.get("circuits", []):
        for m in circuit.get("methods", []):
            mem_rows[(circuit["name"], m["method"])] = m

    merged = 0
    missing = []
    for circuit in cpu_report.get("circuits", []):
        for m in circuit.get("methods", []):
            src = mem_rows.get((circuit["name"], m["method"]))
            if src is None or src.get("allocs") is None:
                missing.append("%s/%s" % (circuit["name"], m["method"]))
                continue
            for k in MERGE_KEYS:
                if k in src:
                    m[k] = src[k]
            merged += 1
    if missing:
        print("bench_compare: no memory data for: %s" % ", ".join(missing),
              file=sys.stderr)
        return 2

    with open(args.merge_out, "w", encoding="utf-8") as f:
        json.dump(cpu_report, f, separators=(",", ":"))
        f.write("\n")
    print("merged memory fields into %d row(s) -> %s"
          % (merged, args.merge_out))
    return 0


# ----------------------------------------------------------------------
# Self test: synthesizes reports in memory and checks the gate logic,
# including that an injected 10% CPU regression fails at the default
# threshold. Run from ctest so the comparator itself is covered.

def _report(rows, eq_failures=0, mem=None, prof=None, arena=None,
            budget=None):
    circuits = {}
    for (circuit, method), row in rows.items():
        lits, ms = row[0], row[1]
        entry = {"method": method, "literals": lits, "cpu_ms": ms,
                 "equivalent": True}
        if budget is not None and (circuit, method) in budget:
            entry["time_budget_s"] = budget[(circuit, method)]
        if len(row) > 2:  # (lits, ms, pairs_tried, pairs_pruned_sig)
            entry["obs"] = {"counters": {
                "subst.pairs_tried": row[2],
                "subst.pairs_pruned_sig": row[3]}}
        if mem is not None and (circuit, method) in mem:
            # (allocs, alloc_bytes, peak_rss_kb)
            allocs, alloc_bytes, rss = mem[(circuit, method)]
            entry["allocs"] = allocs
            entry["alloc_bytes"] = alloc_bytes
            entry["peak_rss_kb"] = rss
        if arena is not None and (circuit, method) in arena:
            # (chunks, bytes_reserved, high_water, resets)
            ch, resv, high, resets = arena[(circuit, method)]
            entry["arena"] = {"chunks": ch, "bytes_reserved": resv,
                              "high_water": high, "resets": resets}
        if prof is not None and (circuit, method) in prof:
            # {phase: samples}
            entry["prof_phases"] = {
                p: {"samples": n, "self_ms": float(n)}
                for p, n in prof[(circuit, method)].items()}
        circuits.setdefault(circuit, []).append(entry)
    return {
        "table": "self-test", "suite": "small",
        "circuits": [{"name": c, "init_literals": 0, "methods": ms}
                     for c, ms in sorted(circuits.items())],
        "total_init_literals": 0,
        "equivalence_failures": eq_failures,
    }


def _rows_of(report):
    rows = {}
    for circuit in report["circuits"]:
        for m in circuit["methods"]:
            counters = m.get("obs", {}).get("counters", {})
            tried = counters.get("subst.pairs_tried")
            pruned = None
            if tried is not None:
                pruned = sum(counters.get("subst.pairs_pruned_" + r, 0)
                             for r in ("sig", "memo", "cycle"))
            rows[(circuit["name"], m["method"])] = {
                "literals": m["literals"], "cpu_ms": m["cpu_ms"],
                "equivalent": m["equivalent"],
                "time_budget_s": m.get("time_budget_s"),
                "pairs_tried": tried, "pairs_pruned": pruned,
                "allocs": m.get("allocs"),
                "alloc_bytes": m.get("alloc_bytes"),
                "peak_rss_kb": m.get("peak_rss_kb"),
                "prof_phases": m.get("prof_phases"),
                "arena": m.get("arena")}
    return rows


def self_test():
    base = _report({("c432", "ext"): (200, 100.0), ("c880", "ext"): (300, 200.0)})

    BASE_MEM = {("c432", "ext"): (1000, 50000, 4000),
                ("c880", "ext"): (2000, 90000, 6000)}
    LITS = {("c432", "ext"): (200, 100.0), ("c880", "ext"): (300, 200.0)}
    base_mem = _report(LITS, mem=BASE_MEM)

    def prune_text(report):
        return "\n".join(prune_rate_lines(_rows_of(base), _rows_of(report)))

    def verdict(cur, threshold):
        _, failures = compare(base, _rows_of(base), cur, _rows_of(cur), threshold)
        return failures

    def mem_verdict(b, cur, alloc_threshold=10.0, rss_threshold=30.0,
                    require_mem=False):
        _, failures = compare(b, _rows_of(b), cur, _rows_of(cur), 50.0,
                              alloc_threshold, rss_threshold, require_mem)
        return failures

    # A 20% allocation regression in every row (the injected-regression
    # scenario the CI self-test step documents).
    mem_plus20 = _report(LITS, mem={k: (int(a * 1.2), by, rss)
                                    for k, (a, by, rss) in BASE_MEM.items()})
    rss_plus50 = _report(LITS, mem={k: (a, by, int(rss * 1.5))
                                    for k, (a, by, rss) in BASE_MEM.items()})

    # Profiled reports: the hot phase moves from subst.attempt (80%) to
    # atpg.fault-dominant between base and drifted.
    BASE_PROF = {("c432", "ext"): {"subst.attempt": 80, "atpg.fault": 20},
                 ("c880", "ext"): {"subst.attempt": 80, "atpg.fault": 20}}
    DRIFT_PROF = {("c432", "ext"): {"subst.attempt": 30, "atpg.fault": 70},
                  ("c880", "ext"): {"subst.attempt": 30, "atpg.fault": 70}}
    base_prof = _report(LITS, prof=BASE_PROF)
    drift_prof = _report(LITS, prof=DRIFT_PROF)

    def prof_text(b, cur):
        return "\n".join(prof_drift_lines(_rows_of(b), _rows_of(cur)))

    # Arena-instrumented reports: 2 MiB reserved, 512 KiB high water
    # (25% utilization), 1000 scratch frames per row.
    ARENA = {("c432", "ext"): (3, 2 * 1024 * 1024, 512 * 1024, 1000),
             ("c880", "ext"): (3, 2 * 1024 * 1024, 512 * 1024, 1000)}
    base_arena = _report(LITS, arena=ARENA)

    def arena_text(b, cur):
        return "\n".join(arena_util_lines(_rows_of(b), _rows_of(cur)))

    # Budgeted reports: 1s ceiling on every row; "fast" stays under it,
    # "slow" blows through on one circuit only.
    BUDGET = {("c432", "ext"): 1.0, ("c880", "ext"): 1.0}
    base_budget = _report(LITS, budget=BUDGET)
    slow_one = _report({("c432", "ext"): (200, 100.0),
                        ("c880", "ext"): (300, 1500.0)}, budget=BUDGET)

    def budget_verdict(b, cur, scale=1.0):
        _, failures = compare(b, _rows_of(b), cur, _rows_of(cur), 5000.0,
                              budget_scale=scale)
        return failures

    checks = [
        ("identical reports pass",
         not verdict(base, 5.0)),
        ("literal improvement passes",
         not verdict(_report({("c432", "ext"): (195, 100.0),
                              ("c880", "ext"): (300, 200.0)}), 5.0)),
        ("single literal regression fails",
         bool(verdict(_report({("c432", "ext"): (201, 100.0),
                               ("c880", "ext"): (300, 200.0)}), 5.0))),
        ("10% CPU regression fails at default threshold",
         bool(verdict(_report({("c432", "ext"): (200, 110.0),
                               ("c880", "ext"): (300, 220.0)}), 5.0))),
        ("10% CPU regression passes at 50% threshold",
         not verdict(_report({("c432", "ext"): (200, 110.0),
                              ("c880", "ext"): (300, 220.0)}), 50.0)),
        ("missing coverage fails",
         bool(verdict(_report({("c432", "ext"): (200, 100.0)}), 5.0))),
        ("equivalence failure fails",
         bool(verdict(_report({("c432", "ext"): (200, 100.0),
                               ("c880", "ext"): (300, 200.0)},
                              eq_failures=1), 5.0))),
        ("prune columns render from obs counters",
         "75.0%" in prune_text(
             _report({("c432", "ext"): (200, 100.0, 25, 75),
                      ("c880", "ext"): (300, 200.0)}))),
        ("reports without prune counters show '-'",
         "-" in prune_text(base) and not verdict(base, 5.0)),
        ("identical memory reports pass",
         not mem_verdict(base_mem, base_mem)),
        ("injected 20% allocation regression fails at default threshold",
         any("allocation" in f for f in mem_verdict(base_mem, mem_plus20))),
        ("20% allocation regression passes at 25% threshold",
         not mem_verdict(base_mem, mem_plus20, alloc_threshold=25.0)),
        ("50% peak-RSS regression fails at default threshold",
         any("peak RSS" in f for f in mem_verdict(base_mem, rss_plus50))),
        ("memstat-off current skips the gate without --require-mem",
         not mem_verdict(base_mem, base)),
        ("memstat-off current fails with --require-mem",
         bool(mem_verdict(base_mem, base, require_mem=True))),
        ("memstat-off baseline never gates allocations",
         not mem_verdict(base, mem_plus20)),
        ("prof drift columns render from prof_phases",
         "subst.attempt" in prof_text(base_prof, drift_prof)
         and "+50.0" in prof_text(base_prof, drift_prof)),
        ("reports without prof data show '-'",
         "-" in prof_text(base, base)),
        ("hot-phase drift is informational, never a gate",
         not mem_verdict(base_prof, drift_prof)),
        ("prof on one side only still renders",
         "80.0%" in prof_text(base_prof, base)),
        ("arena utilization column renders from arena block",
         "25.0%" in arena_text(base_arena, base_arena)
         and "2048k" in arena_text(base_arena, base_arena)),
        ("reports without arena data show '-'",
         "-" in arena_text(base, base)),
        ("arena utilization is informational, never a gate",
         not mem_verdict(base_arena, base)
         and not mem_verdict(base, base_arena)),
        ("rows under their time budget pass",
         not budget_verdict(base_budget, base_budget)),
        ("row over its time budget fails and is named",
         any("c880/ext" in f and "time budget" in f
             for f in budget_verdict(base_budget, slow_one))),
        ("--budget-scale relaxes the ceiling",
         not budget_verdict(base_budget, slow_one, scale=2.0)),
        ("baseline budget gates a budget-less current run",
         any("time budget" in f for f in budget_verdict(
             base_budget, _report({("c432", "ext"): (200, 100.0),
                                   ("c880", "ext"): (300, 1500.0)})))),
        ("fresh current-side budget engages without a baseline copy",
         any("time budget" in f for f in budget_verdict(base, slow_one))),
        ("reports without budgets are not gated",
         not budget_verdict(base, base)),
    ]
    ok = True
    for name, passed in checks:
        print("%-45s %s" % (name, "PASS" if passed else "FAIL"))
        ok = ok and passed
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?", help="baseline RARSUB_REPORT JSON")
    ap.add_argument("current", nargs="?", help="current RARSUB_REPORT JSON")
    ap.add_argument("--cpu-threshold", type=float, default=5.0,
                    help="max allowed per-method total CPU increase, percent "
                         "(default %(default)s)")
    ap.add_argument("--alloc-threshold", type=float, default=10.0,
                    help="max allowed per-method total allocation-count "
                         "increase, percent (default %(default)s)")
    ap.add_argument("--rss-threshold", type=float, default=30.0,
                    help="max allowed per-method peak-RSS increase, percent "
                         "(default %(default)s)")
    ap.add_argument("--budget-scale", type=float, default=1.0,
                    help="multiply committed time_budget_s ceilings by this "
                         "factor before gating (slow-machine override; "
                         "default %(default)s)")
    ap.add_argument("--require-mem", action="store_true",
                    help="fail (instead of skip) when CURRENT lacks the "
                         "memory fields the baseline has")
    ap.add_argument("--out", help="also write the delta table to this file")
    ap.add_argument("--merge-out", metavar="FILE",
                    help="instead of comparing, graft CURRENT's memory "
                         "fields onto BASELINE's rows and write FILE "
                         "(baseline blessing)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in gate-logic checks and exit")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.current:
        ap.print_usage(sys.stderr)
        sys.exit(2)
    if args.merge_out:
        sys.exit(run_merge(args))
    sys.exit(run_compare(args))


if __name__ == "__main__":
    main()
