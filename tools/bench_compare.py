#!/usr/bin/env python3
"""Compare two RARSUB_REPORT bench JSONs and gate on regressions.

Usage:
  bench_compare.py BASELINE CURRENT [--cpu-threshold PCT] [--out FILE]
  bench_compare.py --self-test

Reads the JSON reports written by the bench tables (bench/table_common.cpp,
env RARSUB_REPORT=<file>), matches per-(circuit, method) rows by name, and
prints a delta table of literal counts and CPU times.

Exit status:
  0  no regression
  1  regression: any per-row literal-count increase, a per-method total CPU
     increase beyond --cpu-threshold percent, missing coverage in CURRENT,
     or equivalence failures in CURRENT
  2  bad invocation / unreadable or malformed report

Literal counts are deterministic, so the literal gate is strict (any
increase fails). CPU time is noisy, so it is gated on per-method *totals*
with a percentage threshold (default 5%; CI uses a larger value to absorb
machine-to-machine variance).
"""

import argparse
import json
import sys


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    rows = {}
    for circuit in report.get("circuits", []):
        cname = circuit["name"]
        for m in circuit.get("methods", []):
            counters = m.get("obs", {}).get("counters", {})
            tried = counters.get("subst.pairs_tried")
            pruned = None
            if tried is not None:
                pruned = sum(counters.get("subst.pairs_pruned_" + r, 0)
                             for r in ("sig", "memo", "cycle"))
            rows[(cname, m["method"])] = {
                "literals": int(m["literals"]),
                "cpu_ms": float(m["cpu_ms"]),
                "equivalent": bool(m.get("equivalent", True)),
                # Candidate-filter accounting (None for reports predating
                # the filter or for methods that don't run it).
                "pairs_tried": tried,
                "pairs_pruned": pruned,
            }
    return report, rows


def prune_rate_lines(base_rows, cur_rows):
    """Informational candidate-filter table: per method, how many (f, d)
    pairs the substitution sweep screened and what share the filter pruned
    (subst.pairs_pruned_{sig,memo,cycle} / screened). Not a gate — reports
    without the counters (pre-filter baselines) show '-'."""

    def totals(rows):
        agg = {}  # method -> [tried, pruned] or None
        for (_, method), r in rows.items():
            if r.get("pairs_tried") is None:
                agg.setdefault(method, None)
                continue
            t = agg.setdefault(method, [0, 0])
            if t is None:
                agg[method] = t = [0, 0]
            t[0] += r["pairs_tried"]
            t[1] += r["pairs_pruned"]
        return agg

    def cell(t):
        if not t or t[0] + t[1] == 0:
            return "%9s %9s %7s" % ("-", "-", "-")
        return "%9d %9d %6.1f%%" % (
            t[0], t[1], 100.0 * t[1] / (t[0] + t[1]))

    base, cur = totals(base_rows), totals(cur_rows)
    lines = [""]
    lines.append("%-10s %9s %9s %7s   %9s %9s %7s  (candidate filter)" % (
        "method", "b_tried", "b_pruned", "b_rate",
        "c_tried", "c_pruned", "c_rate"))
    for method in sorted(set(base) | set(cur)):
        lines.append("%-10s %s   %s" % (
            method, cell(base.get(method)), cell(cur.get(method))))
    return lines


def compare(base_report, base_rows, cur_report, cur_rows, cpu_threshold):
    """Returns (lines, failures) where lines is the rendered delta table
    and failures is a list of human-readable regression descriptions."""
    lines = []
    failures = []

    header = "%-12s %-10s %9s %9s %7s %10s %10s %8s" % (
        "circuit", "method", "base_lit", "cur_lit", "d_lit",
        "base_ms", "cur_ms", "d_cpu%")
    lines.append(header)
    lines.append("-" * len(header))

    missing = sorted(set(base_rows) - set(cur_rows))
    extra = sorted(set(cur_rows) - set(base_rows))
    for key in missing:
        failures.append("missing in current: %s/%s" % key)
    for key in extra:
        lines.append("(new, not in baseline: %s/%s)" % key)

    method_cpu = {}  # method -> [base_total, cur_total]
    for key in sorted(base_rows):
        if key not in cur_rows:
            continue
        b, c = base_rows[key], cur_rows[key]
        d_lit = c["literals"] - b["literals"]
        d_cpu = (100.0 * (c["cpu_ms"] - b["cpu_ms"]) / b["cpu_ms"]
                 if b["cpu_ms"] > 0 else 0.0)
        mark = ""
        if d_lit > 0:
            mark = "  <-- literal regression"
            failures.append("%s/%s: literals %d -> %d" %
                            (key[0], key[1], b["literals"], c["literals"]))
        if not c["equivalent"]:
            mark += "  <-- NOT EQUIVALENT"
        lines.append("%-12s %-10s %9d %9d %+7d %10.1f %10.1f %+7.1f%%%s" % (
            key[0], key[1], b["literals"], c["literals"], d_lit,
            b["cpu_ms"], c["cpu_ms"], d_cpu, mark))
        totals = method_cpu.setdefault(key[1], [0.0, 0.0])
        totals[0] += b["cpu_ms"]
        totals[1] += c["cpu_ms"]

    lines.append("")
    lines.append("%-10s %12s %12s %8s  (threshold %.1f%%)" % (
        "method", "base_ms", "cur_ms", "d_cpu%", cpu_threshold))
    for method in sorted(method_cpu):
        bt, ct = method_cpu[method]
        d = 100.0 * (ct - bt) / bt if bt > 0 else 0.0
        mark = ""
        if d > cpu_threshold:
            mark = "  <-- CPU regression"
            failures.append("method %s: total CPU %.1fms -> %.1fms (%+.1f%% > %.1f%%)"
                            % (method, bt, ct, d, cpu_threshold))
        lines.append("%-10s %12.1f %12.1f %+7.1f%%%s" % (method, bt, ct, d, mark))

    lines.extend(prune_rate_lines(base_rows, cur_rows))

    eq_fail = int(cur_report.get("equivalence_failures", 0))
    if eq_fail > 0:
        failures.append("current report has %d equivalence failure(s)" % eq_fail)

    return lines, failures


def run_compare(args):
    try:
        base_report, base_rows = load_report(args.baseline)
        cur_report, cur_rows = load_report(args.current)
    except (OSError, ValueError, KeyError) as e:
        print("bench_compare: cannot read report: %s" % e, file=sys.stderr)
        return 2
    if not base_rows:
        print("bench_compare: baseline has no circuit rows", file=sys.stderr)
        return 2

    lines, failures = compare(base_report, base_rows, cur_report, cur_rows,
                              args.cpu_threshold)
    text = "\n".join(lines) + "\n"
    if failures:
        text += "\nREGRESSIONS:\n" + "\n".join("  - " + f for f in failures) + "\n"
    else:
        text += "\nno regressions (literal gate strict, CPU gate %.1f%%)\n" \
                % args.cpu_threshold
    print(text, end="")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
    return 1 if failures else 0


# ----------------------------------------------------------------------
# Self test: synthesizes reports in memory and checks the gate logic,
# including that an injected 10% CPU regression fails at the default
# threshold. Run from ctest so the comparator itself is covered.

def _report(rows, eq_failures=0):
    circuits = {}
    for (circuit, method), row in rows.items():
        lits, ms = row[0], row[1]
        entry = {"method": method, "literals": lits, "cpu_ms": ms,
                 "equivalent": True}
        if len(row) > 2:  # (lits, ms, pairs_tried, pairs_pruned_sig)
            entry["obs"] = {"counters": {
                "subst.pairs_tried": row[2],
                "subst.pairs_pruned_sig": row[3]}}
        circuits.setdefault(circuit, []).append(entry)
    return {
        "table": "self-test", "suite": "small",
        "circuits": [{"name": c, "init_literals": 0, "methods": ms}
                     for c, ms in sorted(circuits.items())],
        "total_init_literals": 0,
        "equivalence_failures": eq_failures,
    }


def _rows_of(report):
    rows = {}
    for circuit in report["circuits"]:
        for m in circuit["methods"]:
            counters = m.get("obs", {}).get("counters", {})
            tried = counters.get("subst.pairs_tried")
            pruned = None
            if tried is not None:
                pruned = sum(counters.get("subst.pairs_pruned_" + r, 0)
                             for r in ("sig", "memo", "cycle"))
            rows[(circuit["name"], m["method"])] = {
                "literals": m["literals"], "cpu_ms": m["cpu_ms"],
                "equivalent": m["equivalent"],
                "pairs_tried": tried, "pairs_pruned": pruned}
    return rows


def self_test():
    base = _report({("c432", "ext"): (200, 100.0), ("c880", "ext"): (300, 200.0)})

    def prune_text(report):
        return "\n".join(prune_rate_lines(_rows_of(base), _rows_of(report)))

    def verdict(cur, threshold):
        _, failures = compare(base, _rows_of(base), cur, _rows_of(cur), threshold)
        return failures

    checks = [
        ("identical reports pass",
         not verdict(base, 5.0)),
        ("literal improvement passes",
         not verdict(_report({("c432", "ext"): (195, 100.0),
                              ("c880", "ext"): (300, 200.0)}), 5.0)),
        ("single literal regression fails",
         bool(verdict(_report({("c432", "ext"): (201, 100.0),
                               ("c880", "ext"): (300, 200.0)}), 5.0))),
        ("10% CPU regression fails at default threshold",
         bool(verdict(_report({("c432", "ext"): (200, 110.0),
                               ("c880", "ext"): (300, 220.0)}), 5.0))),
        ("10% CPU regression passes at 50% threshold",
         not verdict(_report({("c432", "ext"): (200, 110.0),
                              ("c880", "ext"): (300, 220.0)}), 50.0)),
        ("missing coverage fails",
         bool(verdict(_report({("c432", "ext"): (200, 100.0)}), 5.0))),
        ("equivalence failure fails",
         bool(verdict(_report({("c432", "ext"): (200, 100.0),
                               ("c880", "ext"): (300, 200.0)},
                              eq_failures=1), 5.0))),
        ("prune columns render from obs counters",
         "75.0%" in prune_text(
             _report({("c432", "ext"): (200, 100.0, 25, 75),
                      ("c880", "ext"): (300, 200.0)}))),
        ("reports without prune counters show '-'",
         "-" in prune_text(base) and not verdict(base, 5.0)),
    ]
    ok = True
    for name, passed in checks:
        print("%-45s %s" % (name, "PASS" if passed else "FAIL"))
        ok = ok and passed
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?", help="baseline RARSUB_REPORT JSON")
    ap.add_argument("current", nargs="?", help="current RARSUB_REPORT JSON")
    ap.add_argument("--cpu-threshold", type=float, default=5.0,
                    help="max allowed per-method total CPU increase, percent "
                         "(default %(default)s)")
    ap.add_argument("--out", help="also write the delta table to this file")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in gate-logic checks and exit")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.current:
        ap.print_usage(sys.stderr)
        sys.exit(2)
    sys.exit(run_compare(args))


if __name__ == "__main__":
    main()
