#!/usr/bin/env python3
"""Render and diff folded (flamegraph-collapsed) CPU profiles.

The profiles come from the sampling phase profiler (RARSUB_PROF=<file>,
rarsub_cli --profile; see docs/OBSERVABILITY.md). Each line is
"outer;inner <count>" — the full phase path and its sample count.

  prof_report.py top  PROFILE            top phases by self time
  prof_report.py diff BASE CURRENT       hot-phase drift between two runs
  prof_report.py --self-test

`diff` compares *shares* (percent of total samples), not raw counts, so
two runs of different lengths or sampling rates stay comparable. It is
informational by default; --gate turns drift above --threshold-pp
percentage points into a nonzero exit, mirroring how the bench gates
started out informational before being enforced.

Output is Markdown (tables render in GitHub step summaries and read fine
in a terminal).
"""

import argparse
import sys


def parse_folded(text):
    """Folded text -> {path_tuple: count}. Ignores blank/malformed lines."""
    out = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        path, sep, count = line.rpartition(" ")
        if not sep:
            continue
        try:
            n = int(count)
        except ValueError:
            continue
        key = tuple(path.split(";"))
        out[key] = out.get(key, 0) + n
    return out


def self_counts(folded):
    """Charge each sample to its innermost frame -> {leaf: count}."""
    out = {}
    for path, n in folded.items():
        leaf = path[-1] if path else "(none)"
        out[leaf] = out.get(leaf, 0) + n
    return out


def shares(counts):
    total = sum(counts.values())
    if total == 0:
        return {}
    return {k: 100.0 * v / total for k, v in counts.items()}


def load(path):
    with open(path) as f:
        return parse_folded(f.read())


def cmd_top(args):
    folded = load(args.profile)
    total = sum(folded.values())
    print(f"**{args.profile}** — {total} samples, "
          f"{len(folded)} distinct paths\n")
    if total == 0:
        print("(empty profile)")
        return 0
    print("| phase (self) | samples | share |")
    print("|---|---:|---:|")
    selfs = self_counts(folded)
    for leaf, n in sorted(selfs.items(), key=lambda kv: (-kv[1], kv[0]))[
            : args.top]:
        print(f"| `{leaf}` | {n} | {100.0 * n / total:.1f}% |")
    print()
    print("| hottest paths | samples | share |")
    print("|---|---:|---:|")
    for path, n in sorted(folded.items(), key=lambda kv: (-kv[1], kv[0]))[
            : args.top]:
        print(f"| `{';'.join(path)}` | {n} | {100.0 * n / total:.1f}% |")
    return 0


def diff_rows(base, cur):
    """Per-leaf self-share drift, sorted by |delta| desc.

    Returns (rows, base_total, cur_total); each row is
    (leaf, base_share, cur_share, delta_pp) with None for a side where
    the phase never appeared.
    """
    bshare = shares(self_counts(base))
    cshare = shares(self_counts(cur))
    rows = []
    for leaf in sorted(set(bshare) | set(cshare)):
        b = bshare.get(leaf)
        c = cshare.get(leaf)
        delta = (c or 0.0) - (b or 0.0)
        rows.append((leaf, b, c, delta))
    rows.sort(key=lambda r: (-abs(r[3]), r[0]))
    return rows, sum(base.values()), sum(cur.values())


def fmt_share(v):
    return f"{v:.1f}%" if v is not None else "-"


def cmd_diff(args):
    base = load(args.base)
    cur = load(args.current)
    rows, btot, ctot = diff_rows(base, cur)
    print(f"**Hot-phase drift** — base {btot} samples, "
          f"current {ctot} samples (self-time shares)\n")
    if btot == 0 and ctot == 0:
        print("(both profiles empty)")
        return 0
    print("| phase (self) | base | current | drift (pp) |")
    print("|---|---:|---:|---:|")
    shown = 0
    worst = 0.0
    for leaf, b, c, delta in rows:
        worst = max(worst, abs(delta))
        if shown < args.top:
            print(f"| `{leaf}` | {fmt_share(b)} | {fmt_share(c)} "
                  f"| {delta:+.1f} |")
            shown += 1
    print()
    if args.gate and worst > args.threshold_pp:
        print(f"DRIFT GATE FAILED: worst self-share drift {worst:.1f} pp "
              f"exceeds {args.threshold_pp:.1f} pp")
        return 1
    print(f"worst self-share drift: {worst:.1f} pp"
          + (f" (gate at {args.threshold_pp:.1f} pp)" if args.gate else
             " (informational)"))
    return 0


def self_test():
    checks = []

    def check(name, cond):
        checks.append((name, cond))

    base_text = "a;b 30\na 10\n(none) 10\n\nbogus-line\na;b 10\n"
    base = parse_folded(base_text)
    check("parse merges duplicate paths", base[("a", "b")] == 40)
    check("parse keeps single frames", base[("a",)] == 10)
    check("parse skips malformed lines", len(base) == 3)

    selfs = self_counts(base)
    check("self time charges the leaf", selfs == {"b": 40, "a": 10,
                                                  "(none)": 10})
    sh = shares(selfs)
    check("shares sum to 100", abs(sum(sh.values()) - 100.0) < 1e-9)
    check("share of b", abs(sh["b"] - 66.666) < 0.01)
    check("empty profile has no shares", shares({}) == {})

    cur = parse_folded("a;b 10\na 25\nc 15\n")
    rows, btot, ctot = diff_rows(base, cur)
    check("diff totals", (btot, ctot) == (60, 50))
    by_leaf = {r[0]: r for r in rows}
    # b: 66.7% -> 20%; a: 16.7% -> 50%; c: absent -> 30%; none: 16.7% -> 0
    check("drift for b", abs(by_leaf["b"][3] - (20.0 - 200.0 / 3)) < 0.01)
    check("new phase has no base share", by_leaf["c"][1] is None)
    check("vanished phase has no current share", by_leaf["(none)"][2] == 0.0
          or by_leaf["(none)"][2] is None)
    check("sorted by |drift| desc",
          [abs(r[3]) for r in rows]
          == sorted([abs(r[3]) for r in rows], reverse=True))

    identical, _, _ = diff_rows(base, base)
    check("identical profiles have zero drift",
          all(abs(r[3]) < 1e-9 for r in identical))

    ok = all(c for _, c in checks)
    for name, cond in checks:
        print(f"  {'ok' if cond else 'FAIL'}  {name}")
    print("self-test", "PASSED" if ok else "FAILED")
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--self-test", action="store_true")
    sub = ap.add_subparsers(dest="cmd")
    top = sub.add_parser("top", help="top phases of one folded profile")
    top.add_argument("profile")
    top.add_argument("--top", type=int, default=15)
    dif = sub.add_parser("diff", help="hot-phase drift between two profiles")
    dif.add_argument("base")
    dif.add_argument("current")
    dif.add_argument("--top", type=int, default=15)
    dif.add_argument("--threshold-pp", type=float, default=10.0,
                     help="drift gate in percentage points (with --gate)")
    dif.add_argument("--gate", action="store_true",
                     help="fail (exit 1) when drift exceeds --threshold-pp")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if args.cmd == "top":
        return cmd_top(args)
    if args.cmd == "diff":
        return cmd_diff(args)
    ap.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
